(* Tests for the rendering and diagnostics modules. *)

open Linear_layout

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let layout_a =
  Blocked.make
    {
      shape = [| 16; 16 |];
      size_per_thread = [| 2; 2 |];
      threads_per_warp = [| 4; 8 |];
      warps_per_cta = [| 2; 1 |];
      order = [| 1; 0 |];
    }

(* {1 Render} *)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_grid () =
  let g = Render.grid layout_a in
  let lines = String.split_on_char '\n' g |> List.filter (fun l -> l <> "") in
  check_int "16 rows" 16 (List.length lines);
  (* Figure 1a's corners: (0,0) is w0 t0 r0; row 8 starts warp 1. *)
  check_bool "top-left" true (contains (List.hd lines) "w0:t00:r0");
  check_bool "warp 1 in lower half" true (contains (List.nth lines 8) "w1:t00:r0");
  (* Table 1: (2,3) held by r1 of t9. *)
  let row2 = List.nth lines 2 in
  check_bool "(2,3) = w0:t09:r1" true (contains row2 "w0:t09:r1")

let test_memory_grid () =
  let g = Render.memory_grid (Shared.mma_swizzle ~vec:2 ~per_phase:1 ~max_phase:4 ~rows:4 ~cols:8) in
  let lines = String.split_on_char '\n' g |> List.filter (fun l -> l <> "") in
  check_int "4 rows" 4 (List.length lines);
  (* Row 0 is unswizzled: offsets 0..7. *)
  check_bool "row 0 starts at 0" true (contains (List.hd lines) "   0    1    2");
  (* Row 1 is phase-xored: it starts at offset 10, not 8. *)
  check_bool "row 1 swizzled" true
    (String.length (List.nth lines 1) >= 4 && String.sub (List.nth lines 1) 0 4 = "  10")

let test_render_rejects () =
  (match Render.grid (Layout.identity1d 3 ~in_dim:Dims.register ~out_dim:(Dims.dim 0)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "1-D layout must be rejected");
  match
    Render.grid (Blocked.default ~elems_per_thread:4 ~warp_size:32 ~num_warps:4 [| 128; 128 |])
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized grid must be rejected"

(* {1 Check} *)

let test_check_distributed_ok () =
  check_int "layout A is clean" 0 (List.length (Check.distributed layout_a))

let test_check_broadcast_warns () =
  let l =
    Blocked.make
      {
        shape = [| 8; 8 |];
        size_per_thread = [| 2; 2 |];
        threads_per_warp = [| 4; 8 |];
        warps_per_cta = [| 2; 1 |];
        order = [| 1; 0 |];
      }
  in
  let issues = Check.distributed l in
  check_bool "broadcast warnings" true
    (List.exists (fun i -> i.Check.severity = Check.Warning) issues);
  check_int "no errors" 0 (List.length (Check.errors issues))

let test_check_bad_columns () =
  (* A column with two set bits: not a distributed layout. *)
  let l =
    Layout.make
      ~ins:[ (Dims.register, 2) ]
      ~outs:[ (Dims.dim 0, 2) ]
      ~bases:[ (Dims.register, [ [ (Dims.dim 0, 3) ]; [ (Dims.dim 0, 2) ] ]) ]
  in
  let issues = Check.errors (Check.distributed l) in
  check_bool "two-bit column reported" true
    (List.exists (fun i -> contains i.Check.message "2 set bits") issues);
  (* Duplicated columns. *)
  let dup =
    Layout.make
      ~ins:[ (Dims.register, 1); (Dims.lane, 1) ]
      ~outs:[ (Dims.dim 0, 1) ]
      ~bases:
        [
          (Dims.register, [ [ (Dims.dim 0, 1) ] ]);
          (Dims.lane, [ [ (Dims.dim 0, 1) ] ]);
        ]
  in
  check_bool "duplicate reported" true
    (List.exists
       (fun i -> contains i.Check.message "both map to")
       (Check.errors (Check.distributed dup)))

let test_check_not_surjective () =
  let l =
    Layout.make
      ~ins:[ (Dims.register, 1) ]
      ~outs:[ (Dims.dim 0, 2) ]
      ~bases:[ (Dims.register, [ [ (Dims.dim 0, 1) ] ]) ]
  in
  let issues = Check.errors (Check.distributed l) in
  check_bool "missing element named" true
    (List.exists (fun i -> contains i.Check.message "not surjective") issues)

let test_check_memory () =
  check_int "row major clean" 0
    (List.length (Check.errors (Check.memory (Shared.row_major ~shape:[| 8; 8 |]))));
  check_int "swizzle clean" 0
    (List.length
       (Check.errors
          (Check.memory (Shared.mma_swizzle ~vec:2 ~per_phase:1 ~max_phase:4 ~rows:8 ~cols:8))));
  (* An aliasing map. *)
  let bad =
    Layout.make
      ~ins:[ (Dims.offset, 2) ]
      ~outs:[ (Dims.dim 0, 2) ]
      ~bases:[ (Dims.offset, [ [ (Dims.dim 0, 1) ]; [ (Dims.dim 0, 1) ] ]) ]
  in
  check_bool "aliasing reported" true (Check.errors (Check.memory bad) <> [])

let test_check_convertible () =
  let a = Blocked.default ~elems_per_thread:4 ~warp_size:32 ~num_warps:4 [| 32; 32 |] in
  let b = Blocked.default ~elems_per_thread:2 ~warp_size:32 ~num_warps:4 [| 32; 32 |] in
  check_int "same CTA fine" 0 (List.length (Check.errors (Check.convertible ~src:a ~dst:b)));
  let c = Blocked.default ~elems_per_thread:4 ~warp_size:32 ~num_warps:2 [| 32; 32 |] in
  check_bool "warp count mismatch reported" true
    (Check.errors (Check.convertible ~src:a ~dst:c) <> []);
  let d = Blocked.default ~elems_per_thread:4 ~warp_size:32 ~num_warps:4 [| 32; 64 |] in
  check_bool "different spaces reported" true
    (Check.errors (Check.convertible ~src:a ~dst:d) <> [])

(* {1 Parse} *)

let test_parse_roundtrip () =
  let check_rt l =
    match Parse.of_string (Parse.to_string l) with
    | Ok l' -> check_bool "roundtrip" true (Layout.equal l' l)
    | Error e -> Alcotest.fail e
  in
  check_rt layout_a;
  check_rt (Mma.output ~bitwidth:32 ~warps:[| 2; 2 |] ~shape:[| 32; 32 |] ());
  check_rt (Shared.mma_swizzle ~vec:4 ~per_phase:2 ~max_phase:4 ~rows:16 ~cols:32);
  check_rt (Sliced.make layout_a ~dim:1)

let test_parse_literal () =
  let s =
    "register=[(dim1:1),(dim0:1)] lane=[(dim1:2),(dim1:4),(dim1:8),(dim0:2),(dim0:4)] \
     warp=[(dim0:8)] -> dim0:16, dim1:16"
  in
  match Parse.of_string s with
  | Ok l -> check_bool "parses to layout A" true (Layout.equal l layout_a)
  | Error e -> Alcotest.fail e

let test_parse_errors () =
  let bad =
    [
      "register=[(dim0:1) -> dim0:2";
      "-> dim0:3";
      "register=[(nope:1)] -> dim0:2";
      "register=[(dim0:4)] -> dim0:2";
      "";
    ]
  in
  List.iter
    (fun s ->
      match Parse.of_string s with
      | Ok _ -> Alcotest.failf "should reject %S" s
      | Error _ -> ())
    bad

let () =
  Alcotest.run "diagnostics"
    [
      ( "render",
        [
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "memory grid" `Quick test_memory_grid;
          Alcotest.test_case "rejects bad inputs" `Quick test_render_rejects;
        ] );
      ( "check",
        [
          Alcotest.test_case "clean distributed" `Quick test_check_distributed_ok;
          Alcotest.test_case "broadcast warns" `Quick test_check_broadcast_warns;
          Alcotest.test_case "bad columns" `Quick test_check_bad_columns;
          Alcotest.test_case "not surjective" `Quick test_check_not_surjective;
          Alcotest.test_case "memory layouts" `Quick test_check_memory;
          Alcotest.test_case "convertible" `Quick test_check_convertible;
        ] );
      ( "parse",
        [
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "literal layout A" `Quick test_parse_literal;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
    ]
