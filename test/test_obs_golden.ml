(* Deterministic traces: running the engine under a fixed clock on every
   shipped kernel (GH200, linear mode) must reproduce the span-tree
   shape and the set of metric names below exactly.  Durations are
   deliberately NOT pinned — only structure and naming, so the table is
   stable across machines.  Every kernel's trace is also schema-checked
   as Chrome trace_event JSON.

   Regenerate after a deliberate pipeline/metric change with
     OBS_GOLDEN_REGEN=1 dune exec test/test_obs_golden.exe 2>/dev/null
   and paste the lines between the markers. *)

let golden = {golden|
gemm|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.shared_memory,codegen.shared_cache.misses,codegen.staging.ldmatrix,codegen.staging.planned,codegen.staging.vec,codegen.swizzle.conflict_free,codegen.swizzle.load_wavefronts,codegen.swizzle.store_wavefronts,codegen.swizzle.vec_bits
bf16xint16_gemm|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.shared_memory,codegen.shared_cache.misses,codegen.staging.ldmatrix,codegen.staging.planned,codegen.staging.vec,codegen.swizzle.conflict_free,codegen.swizzle.load_wavefronts,codegen.swizzle.store_wavefronts,codegen.swizzle.vec_bits
int4_gemm|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.shared_memory,codegen.shared_cache.misses,codegen.staging.ldmatrix,codegen.staging.planned,codegen.staging.vec,codegen.swizzle.conflict_free,codegen.swizzle.load_wavefronts,codegen.swizzle.store_wavefronts,codegen.swizzle.vec_bits
fp8_gemm|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.shared_memory,codegen.shared_cache.misses,codegen.staging.ldmatrix,codegen.staging.planned,codegen.staging.vec,codegen.swizzle.conflict_free,codegen.swizzle.load_wavefronts,codegen.swizzle.store_wavefronts,codegen.swizzle.vec_bits
grouped_gemm|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.shared_memory,codegen.shared_cache.misses,codegen.staging.ldmatrix,codegen.staging.planned,codegen.staging.vec,codegen.swizzle.load_wavefronts,codegen.swizzle.store_wavefronts,codegen.swizzle.vec_bits
addmm|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.shared_memory,codegen.shared_cache.misses,codegen.staging.ldmatrix,codegen.staging.planned,codegen.staging.vec,codegen.swizzle.load_wavefronts,codegen.swizzle.store_wavefronts,codegen.swizzle.vec_bits
bmm|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.shared_memory,codegen.shared_cache.misses,codegen.staging.ldmatrix,codegen.staging.planned,codegen.staging.vec,codegen.swizzle.conflict_free,codegen.swizzle.load_wavefronts,codegen.swizzle.store_wavefronts,codegen.swizzle.vec_bits
template_attention|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.shared_memory,codegen.conversion.warp_shuffle,codegen.shared_cache.misses,codegen.shuffle.rounds,codegen.shuffle.vec_bits,codegen.staging.ldmatrix,codegen.staging.planned,codegen.staging.vec,codegen.swizzle.conflict_free,codegen.swizzle.load_wavefronts,codegen.swizzle.store_wavefronts,codegen.swizzle.vec_bits
flex_attention|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.shared_memory,codegen.conversion.warp_shuffle,codegen.shared_cache.misses,codegen.shuffle.rounds,codegen.shuffle.vec_bits,codegen.staging.ldmatrix,codegen.staging.planned,codegen.staging.vec,codegen.swizzle.conflict_free,codegen.swizzle.load_wavefronts,codegen.swizzle.store_wavefronts,codegen.swizzle.vec_bits
attention_bwd|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.shared_memory,codegen.conversion.warp_shuffle,codegen.shared_cache.misses,codegen.shuffle.rounds,codegen.shuffle.vec_bits,codegen.staging.ldmatrix,codegen.staging.planned,codegen.staging.vec,codegen.swizzle.conflict_free,codegen.swizzle.load_wavefronts,codegen.swizzle.store_wavefronts,codegen.swizzle.vec_bits
welford|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.noop,codegen.shared_cache.misses
gather_gemv|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.shared_memory,codegen.shared_cache.misses,codegen.swizzle.conflict_free,codegen.swizzle.load_wavefronts,codegen.swizzle.store_wavefronts,codegen.swizzle.vec_bits
rope|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.warp_shuffle,codegen.shared_cache.misses,codegen.shuffle.rounds,codegen.shuffle.vec_bits
embedding|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.noop,codegen.conversion.shared_memory,codegen.shared_cache.misses,codegen.swizzle.load_wavefronts,codegen.swizzle.store_wavefronts,codegen.swizzle.vec_bits
softmax|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.noop,codegen.shared_cache.misses
layer_norm|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.noop,codegen.shared_cache.misses
rms_norm|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.noop,codegen.shared_cache.misses
cross_entropy|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.shared_memory,codegen.shared_cache.misses,codegen.swizzle.conflict_free,codegen.swizzle.load_wavefronts,codegen.swizzle.store_wavefronts,codegen.swizzle.vec_bits
fused_linear_cross_entropy|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.shared_memory,codegen.shared_cache.misses,codegen.staging.ldmatrix,codegen.staging.planned,codegen.staging.vec,codegen.swizzle.conflict_free,codegen.swizzle.load_wavefronts,codegen.swizzle.store_wavefronts,codegen.swizzle.vec_bits
cumsum|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.noop,codegen.shared_cache.misses
jagged_sum|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.noop,codegen.shared_cache.misses
softmax_bwd|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.noop,codegen.shared_cache.misses
jagged_mean|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.noop,codegen.shared_cache.misses
low_mem_dropout|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.noop,codegen.conversion.shared_memory,codegen.shared_cache.misses,codegen.swizzle.load_wavefronts,codegen.swizzle.store_wavefronts,codegen.swizzle.vec_bits
swiglu|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.noop,codegen.conversion.shared_memory,codegen.shared_cache.misses,codegen.swizzle.load_wavefronts,codegen.swizzle.store_wavefronts,codegen.swizzle.vec_bits
geglu|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.noop,codegen.conversion.shared_memory,codegen.shared_cache.misses,codegen.swizzle.load_wavefronts,codegen.swizzle.store_wavefronts,codegen.swizzle.vec_bits
vector_add|pipeline(pass/anchor pass/forward_propagate pass/simplify pass/backward_remat pass/insert_conversions pass/lower)|codegen.conversion.noop,codegen.conversion.shared_memory,codegen.shared_cache.misses,codegen.swizzle.load_wavefronts,codegen.swizzle.store_wavefronts,codegen.swizzle.vec_bits
|golden}

let machine = Gpusim.Machine.gh200

(* The caches are cleared per kernel so every planner actually runs
   (plan-cache hits would skip the metric sites and make the name set
   depend on kernel order). *)
let trace_kernel (k : Tir.Kernels.kernel) =
  Linear_layout.Layout.Memo.clear ();
  Codegen.Plan_cache.clear ();
  Codegen.Shared_cache.clear ();
  Codegen.Shared_cache.reset_stats ();
  Obs.Metrics.reset ();
  let t = Obs.Trace.create () in
  let prog = k.Tir.Kernels.build ~size:(List.hd k.Tir.Kernels.sizes) in
  let (_ : Tir.Engine.result) =
    Tir.Engine.run machine ~mode:Tir.Engine.Linear ~trace:t prog
  in
  t

let line_of_kernel k =
  let t = trace_kernel k in
  let forest = Obs.Export.tree_of_events (Obs.Trace.events t) in
  let names = Obs.Metrics.names (Obs.Metrics.snapshot ()) in
  Printf.sprintf "%s|%s|%s" k.Tir.Kernels.name
    (Obs.Export.render_forest forest)
    (String.concat "," names)

(* {1 The golden table} *)

let test_golden () =
  Fun.protect ~finally:Obs.Clock.reset @@ fun () ->
  Obs.Clock.fixed ();
  let actual = List.map line_of_kernel Tir.Kernels.all in
  if Sys.getenv_opt "OBS_GOLDEN_REGEN" <> None then begin
    print_endline "=== OBS GOLDEN BEGIN ===";
    List.iter print_endline actual;
    print_endline "=== OBS GOLDEN END ==="
  end;
  let expected =
    String.split_on_char '\n' golden |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int)
    "table covers every kernel" (List.length Tir.Kernels.all) (List.length expected);
  List.iter2
    (fun want got ->
      let kernel = List.hd (String.split_on_char '|' want) in
      Alcotest.(check string) (kernel ^ " span tree + metric names") want got)
    expected actual

(* {1 Chrome trace_event schema} *)

let check_event_schema kernel = function
  | Obs.Export.Obj fields ->
      let str k =
        match List.assoc_opt k fields with Some (Obs.Export.Str s) -> Some s | _ -> None
      in
      let num k =
        match List.assoc_opt k fields with Some (Obs.Export.Num _) -> true | _ -> false
      in
      (match str "name" with
      | Some _ -> ()
      | None -> Alcotest.failf "%s: event without a string name" kernel);
      (match str "ph" with
      | Some ("B" | "E" | "i") -> ()
      | Some ph -> Alcotest.failf "%s: unexpected phase %S" kernel ph
      | None -> Alcotest.failf "%s: event without a phase" kernel);
      List.iter
        (fun k -> if not (num k) then Alcotest.failf "%s: event missing numeric %S" kernel k)
        [ "ts"; "pid"; "tid" ];
      (match List.assoc_opt "args" fields with
      | None | Some (Obs.Export.Obj _) -> ()
      | Some _ -> Alcotest.failf "%s: args is not an object" kernel)
  | _ -> Alcotest.failf "%s: traceEvents element is not an object" kernel

let test_chrome_schema () =
  Fun.protect ~finally:Obs.Clock.reset @@ fun () ->
  Obs.Clock.fixed ();
  List.iter
    (fun (k : Tir.Kernels.kernel) ->
      let name = k.Tir.Kernels.name in
      let t = trace_kernel k in
      let events = Obs.Trace.events t in
      if events = [] then Alcotest.failf "%s: empty trace" name;
      let json = Obs.Export.chrome_json events in
      match Obs.Export.parse_json json with
      | Error e -> Alcotest.failf "%s: invalid JSON: %s" name e
      | Ok (Obs.Export.Obj fields) -> (
          match List.assoc_opt "traceEvents" fields with
          | Some (Obs.Export.Arr elems) ->
              Alcotest.(check int)
                (name ^ " event count") (List.length events) (List.length elems);
              List.iter (check_event_schema name) elems
          | _ -> Alcotest.failf "%s: no traceEvents array" name)
      | Ok _ -> Alcotest.failf "%s: top level is not an object" name)
    Tir.Kernels.all

(* Timestamps under the fixed clock are strictly increasing, so B/E
   pairs are well-nested for the Chrome viewer. *)
let test_monotonic_timestamps () =
  Fun.protect ~finally:Obs.Clock.reset @@ fun () ->
  Obs.Clock.fixed ();
  let t = trace_kernel (Tir.Kernels.find "gemm") in
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) ->
        a.Obs.Trace.ts < b.Obs.Trace.ts && strictly_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly increasing" true (strictly_increasing (Obs.Trace.events t))

let () =
  Alcotest.run "obs_golden"
    (Shuffle_support.maybe_shuffle
       [
         ( "golden",
           [
             Alcotest.test_case "span trees + metric names vs seed" `Quick test_golden;
             Alcotest.test_case "chrome trace_event schema, all kernels" `Quick
               test_chrome_schema;
             Alcotest.test_case "monotonic timestamps" `Quick test_monotonic_timestamps;
           ] );
       ])
