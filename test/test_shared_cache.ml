(* The process-wide sharded plan cache (Codegen.Shared_cache) under
   concurrency: hammer it from 2-8 domains with overlapping keysets and
   check that (a) every plan handed back is structurally identical to
   what a fresh single-domain planner produces, (b) the hit/miss/insert
   counters stay consistent with the traffic, and (c) stripe statistics
   merge like Obs.Metrics snapshots — commutatively and associatively
   with a zero identity. *)

open Linear_layout

let m = Gpusim.Machine.gh200
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Structurally deduped so "distinct keys" below is exactly the pair
   count: two parameter combinations can build the same layout. *)
let pairs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (a, b) ->
      let k = Layout.to_string a ^ "|" ^ Layout.to_string b in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    (Plan_support.cta_pairs ())

(* Overlapping slice for domain [d]: drop every third key, phase-shifted
   by the domain index, so every pair of domains shares ~half its keys. *)
let slice d = List.filteri (fun i _ -> (i + d) mod 3 <> 0) pairs

let fresh_start () =
  Codegen.Plan_cache.clear ();
  Codegen.Shared_cache.clear ();
  Codegen.Shared_cache.reset_stats ()

let distinct_keys slices =
  List.sort_uniq compare (List.concat_map (List.map (fun (a, b) -> (Layout.to_string a, Layout.to_string b))) slices)

let hammer domains =
  fresh_start ();
  let slices = List.init domains slice in
  let handles =
    List.map
      (fun sl ->
        Domain.spawn (fun () ->
            List.map
              (fun (src, dst) ->
                (* The repeat exercises the worker's L1 without touching
                   the shared stripes a second time. *)
                let p1 = Codegen.Plan_cache.conversion m ~src ~dst ~byte_width:4 in
                let p2 = Codegen.Plan_cache.conversion m ~src ~dst ~byte_width:4 in
                (src, dst, p1, p2))
              sl))
      slices
  in
  let results = List.map Domain.join handles in
  (slices, results)

let test_plans_match_fresh_planning domains () =
  let _, results = hammer domains in
  List.iter
    (List.iter (fun (src, dst, p1, p2) ->
         let fresh = Codegen.Conversion.plan m ~src ~dst ~byte_width:4 in
         check_bool "cached plan = fresh single-domain plan" true
           (Plan_support.plan_equal p1 fresh);
         check_bool "repeat lookup returns the same plan" true (Plan_support.plan_equal p1 p2)))
    results

let test_counters_consistent domains () =
  let slices, _ = hammer domains in
  let s = Codegen.Shared_cache.stats () in
  let distinct = List.length (distinct_keys slices) in
  let probes = List.fold_left (fun acc sl -> acc + List.length sl) 0 slices in
  (* Each domain's L1 dedups its own repeats, so the shared cache sees
     exactly one probe per (domain, key). *)
  check_int "L2 probes = sum of per-domain keysets" probes (s.Codegen.Shared_cache.hits + s.Codegen.Shared_cache.misses);
  (* First writer wins: exactly one insert per distinct key, however
     many domains raced on it. *)
  check_int "one insert per distinct key" distinct s.Codegen.Shared_cache.inserts;
  check_int "cache holds the distinct keys" distinct (Codegen.Shared_cache.length ());
  check_bool "at least one miss per distinct key" true (s.Codegen.Shared_cache.misses >= distinct);
  check_bool "hits account for the overlap" true
    (s.Codegen.Shared_cache.hits <= probes - distinct)

let test_l1_falls_through_to_l2 () =
  fresh_start ();
  let src, dst = List.nth pairs 1 in
  let p1 = Codegen.Plan_cache.conversion m ~src ~dst ~byte_width:4 in
  let s1 = Codegen.Shared_cache.stats () in
  check_int "cold lookup misses the L2 (planner ran)" 1 s1.Codegen.Shared_cache.misses;
  check_int "cold lookup published the plan" 1 s1.Codegen.Shared_cache.inserts;
  (* Clearing the L1 must not force a re-plan: the next lookup is an L2
     hit, i.e. a simulated new domain reuses the process's work. *)
  Codegen.Plan_cache.clear ();
  let p2 = Codegen.Plan_cache.conversion m ~src ~dst ~byte_width:4 in
  let s2 = Codegen.Shared_cache.stats () in
  check_int "no second planner invocation" 1 s2.Codegen.Shared_cache.misses;
  check_int "L1 refill served from the L2" 1 s2.Codegen.Shared_cache.hits;
  check_bool "same plan through both paths" true (Plan_support.plan_equal p1 p2);
  (* An L1 hit leaves the L2 counters alone entirely. *)
  let (_ : Codegen.Conversion.plan) = Codegen.Plan_cache.conversion m ~src ~dst ~byte_width:4 in
  let s3 = Codegen.Shared_cache.stats () in
  check_int "L1 hit does not probe the L2" s2.Codegen.Shared_cache.hits s3.Codegen.Shared_cache.hits

let test_all_kinds_cached () =
  fresh_start ();
  let src, dst = List.hd pairs in
  let sh = Codegen.Plan_cache.shuffle m ~src ~dst ~byte_width:4 in
  let sw = Codegen.Plan_cache.swizzle m ~src ~dst ~byte_width:4 in
  let st = Codegen.Plan_cache.staging m ~src ~dst ~byte_width:4 in
  Codegen.Plan_cache.clear ();
  let misses_before = (Codegen.Shared_cache.stats ()).Codegen.Shared_cache.misses in
  let sh2 = Codegen.Plan_cache.shuffle m ~src ~dst ~byte_width:4 in
  let sw2 = Codegen.Plan_cache.swizzle m ~src ~dst ~byte_width:4 in
  let st2 = Codegen.Plan_cache.staging m ~src ~dst ~byte_width:4 in
  let misses_after = (Codegen.Shared_cache.stats ()).Codegen.Shared_cache.misses in
  check_int "no re-planning for any plan kind" misses_before misses_after;
  check_bool "shuffle survives the L2" true (Plan_support.shuffle_result_equal sh sh2);
  check_bool "swizzle survives the L2" true (Plan_support.swizzle_equal sw sw2);
  check_bool "staging survives the L2" true (Plan_support.staging_equal st st2)

(* {1 Stripe statistics merge like Obs.Metrics} *)

let arb_stats =
  QCheck.map
    (fun (h, m, i) -> { Codegen.Shared_cache.hits = h; misses = m; inserts = i })
    QCheck.(triple small_nat small_nat small_nat)

let stats_eq (a : Codegen.Shared_cache.stats) (b : Codegen.Shared_cache.stats) =
  a.Codegen.Shared_cache.hits = b.Codegen.Shared_cache.hits
  && a.Codegen.Shared_cache.misses = b.Codegen.Shared_cache.misses
  && a.Codegen.Shared_cache.inserts = b.Codegen.Shared_cache.inserts

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge_stats is commutative" ~count:200 (QCheck.pair arb_stats arb_stats)
    (fun (a, b) ->
      stats_eq (Codegen.Shared_cache.merge_stats a b) (Codegen.Shared_cache.merge_stats b a))

let prop_merge_associative =
  QCheck.Test.make ~name:"merge_stats is associative" ~count:200
    (QCheck.triple arb_stats arb_stats arb_stats)
    (fun (a, b, c) ->
      stats_eq
        (Codegen.Shared_cache.merge_stats (Codegen.Shared_cache.merge_stats a b) c)
        (Codegen.Shared_cache.merge_stats a (Codegen.Shared_cache.merge_stats b c)))

let prop_merge_zero_identity =
  QCheck.Test.make ~name:"zero_stats is the identity" ~count:200 arb_stats (fun a ->
      stats_eq (Codegen.Shared_cache.merge_stats a Codegen.Shared_cache.zero_stats) a
      && stats_eq (Codegen.Shared_cache.merge_stats Codegen.Shared_cache.zero_stats a) a)

let test_stats_is_stripe_fold () =
  fresh_start ();
  let _ = hammer 3 in
  let folded =
    Array.fold_left Codegen.Shared_cache.merge_stats Codegen.Shared_cache.zero_stats
      (Codegen.Shared_cache.stripe_stats ())
  in
  check_bool "stats () = fold of stripe_stats ()" true
    (stats_eq folded (Codegen.Shared_cache.stats ()))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "shared_cache"
    (Shuffle_support.maybe_shuffle
       [
         ( "concurrency",
           List.concat_map
             (fun d ->
               [
                 Alcotest.test_case
                   (Printf.sprintf "plans match fresh planning (%d domains)" d)
                   `Quick
                   (test_plans_match_fresh_planning d);
                 Alcotest.test_case
                   (Printf.sprintf "counters consistent (%d domains)" d)
                   `Quick (test_counters_consistent d);
               ])
             [ 2; 4; 8 ] );
         ( "two-level",
           [
             Alcotest.test_case "L1 falls through to L2, planner runs once" `Quick
               test_l1_falls_through_to_l2;
             Alcotest.test_case "all four plan kinds round through the L2" `Quick
               test_all_kinds_cached;
             Alcotest.test_case "stats () folds the stripes" `Quick test_stats_is_stripe_fold;
           ] );
         ( "stats-merge",
           q [ prop_merge_commutative; prop_merge_associative; prop_merge_zero_identity ] );
       ])
