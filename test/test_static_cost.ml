(* The static≡dynamic cost contract (ISSUE 7): Static_cost must price
   every ISA program exactly as the interpreter accounts it, and
   Resource_check must flag ill-resourced programs.  Three layers:

   - a 216-row golden sweep (27 kernels x 4 machines x 2 modes) running
     the differential on every lowered conversion plan;
   - randomized programs, both engine-lowered (the interp-fuzz TIR
     motifs: elementwise chains, the reduce/broadcast softmax motif,
     gathers, dots) and raw random ISA streams, seed-replayable with
     STATIC_COST_FUZZ_SEED=N;
   - fault injection: perturbing an address immediate or dropping an
     instruction must produce a cost the differential machinery
     distinguishes from the original's. *)

open Linear_layout
module Isa = Gpusim.Isa
module Static_cost = Analysis.Static_cost
module Resource_check = Analysis.Resource_check

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let m = Gpusim.Machine.rtx4090

let cost_pp c = Format.asprintf "%a" Gpusim.Cost.pp c

let check_cost_eq what a b =
  if a <> b then Alcotest.failf "%s: static %s <> interpreted %s" what (cost_pp a) (cost_pp b)

(* {1 The 216-row golden differential} *)

let test_golden_differential () =
  let rows = ref 0 and lowered = ref 0 in
  List.iter
    (fun (machine : Gpusim.Machine.t) ->
      List.iter
        (fun (k : Tir.Kernels.kernel) ->
          List.iter
            (fun mode ->
              incr rows;
              let prog = k.Tir.Kernels.build ~size:(List.hd k.Tir.Kernels.sizes) in
              let r = Tir.Engine.run machine ~mode prog in
              List.iter
                (fun (c : Tir.Engine.conversion_info) ->
                  match c.Tir.Engine.plan with
                  | None -> ()
                  | Some plan -> (
                      match Static_cost.plan machine plan with
                      | None -> ()
                      | Some low ->
                          incr lowered;
                          let slots = low.Static_cost.slots.Codegen.Lower.total_slots in
                          (match
                             Static_cost.differential machine ~slots
                               low.Static_cost.program
                           with
                          | [] -> ()
                          | d :: _ ->
                              Alcotest.failf "%s/%s/%s: %s" k.Tir.Kernels.name
                                machine.Gpusim.Machine.name c.Tir.Engine.mechanism
                                (Format.asprintf "%a" Diagnostics.pp d));
                          (* The attribution table must sum to the total. *)
                          let sum = Gpusim.Cost.zero () in
                          List.iter
                            (fun (a : Static_cost.attribution) ->
                              Gpusim.Cost.add sum a.Static_cost.cost)
                            low.Static_cost.analysis.Static_cost.per_instr;
                          check_cost_eq
                            (Printf.sprintf "%s attribution sum" k.Tir.Kernels.name)
                            sum low.Static_cost.analysis.Static_cost.total))
                r.Tir.Engine.conversions)
            [ Tir.Engine.Linear; Tir.Engine.Legacy_mode ])
        Tir.Kernels.all)
    Gpusim.Machine.all_with_extras;
  check_int "216 rows" 216 !rows;
  check_bool "some plans lowered" true (!lowered > 100)

(* {1 Randomized programs} *)

let fuzz_seed =
  match Sys.getenv_opt "STATIC_COST_FUZZ_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None -> failwith (Printf.sprintf "STATIC_COST_FUZZ_SEED=%S is not an integer" s))
  | None ->
      Random.self_init ();
      Random.bits ()

(* The interp-fuzz TIR motifs (elementwise chains, reduce/broadcast,
   gather, dot), driven through the engine so the analyzer sees
   realistic lowered conversion streams. *)
let fuzz_tir_program st =
  let p = Tir.Program.create () in
  let shape = [| 32; 32 |] in
  let counter = ref 0 in
  let fresh pfx =
    incr counter;
    Printf.sprintf "%s%d" pfx !counter
  in
  let load ~dtype pfx = Tir.Program.load p ~name:(fresh pfx) ~shape ~dtype () in
  let pool = ref [ load ~dtype:Tensor_lib.Dtype.F32 "x" ] in
  let pick () = List.nth !pool (Random.State.int st (List.length !pool)) in
  let push id = pool := id :: !pool in
  let steps = 4 + Random.State.int st 5 in
  for _ = 1 to steps do
    match Random.State.int st 5 with
    | 0 -> push (Tir.Program.elementwise p ~name:"exp" [ pick () ])
    | 1 -> push (Tir.Program.elementwise p ~name:"add" [ pick (); pick () ])
    | 2 ->
        let axis = Random.State.int st 2 in
        let r = Tir.Program.reduce p (pick ()) ~axis in
        let b = Tir.Program.broadcast p (Tir.Program.expand_dims p r ~axis) ~shape in
        push (Tir.Program.elementwise p ~name:"div" [ pick (); b ])
    | 3 ->
        let idx = load ~dtype:Tensor_lib.Dtype.I32 "idx" in
        push (Tir.Program.gather p ~src:(pick ()) ~index:idx ~axis:(Random.State.int st 2))
    | _ ->
        let a = load ~dtype:Tensor_lib.Dtype.F16 "a" in
        let b = load ~dtype:Tensor_lib.Dtype.F16 "b" in
        push (Tir.Program.dot p ~a ~b ~acc:Tensor_lib.Dtype.F32)
  done;
  ignore (Tir.Program.store p (pick ()));
  p

let test_fuzz_engine_lowered () =
  Printf.printf "static-cost fuzz seed: %d (replay with STATIC_COST_FUZZ_SEED=%d)\n%!"
    fuzz_seed fuzz_seed;
  let st = Random.State.make [| fuzz_seed |] in
  for i = 1 to 10 do
    let prog = fuzz_tir_program st in
    let r = Tir.Engine.run m ~mode:Tir.Engine.Linear prog in
    List.iter
      (fun (c : Tir.Engine.conversion_info) ->
        match c.Tir.Engine.plan with
        | None -> ()
        | Some plan -> (
            match Static_cost.plan m plan with
            | None -> ()
            | Some low -> (
                let slots = low.Static_cost.slots.Codegen.Lower.total_slots in
                match Static_cost.differential m ~slots low.Static_cost.program with
                | [] -> ()
                | d :: _ ->
                    Alcotest.failf
                      "fuzz tir #%d (replay with STATIC_COST_FUZZ_SEED=%d): %s" i fuzz_seed
                      (Format.asprintf "%a" Diagnostics.pp d))))
      r.Tir.Engine.conversions
  done

(* Raw random ISA programs exercising every instruction class with
   valid immediates. *)
let tbl warps lanes f = Array.init warps (fun w -> Array.init lanes (fun l -> f w l))

let fuzz_isa_program st =
  let warps = 1 + Random.State.int st 4 in
  let lanes = [| 8; 16; 32 |].(Random.State.int st 3) in
  let smem_elems = 64 + Random.State.int st 512 in
  let slots = 4 + Random.State.int st 8 in
  let slot () = Random.State.int st slots in
  let steps = 3 + Random.State.int st 12 in
  let body =
    List.init steps (fun _ ->
        match Random.State.int st 8 with
        | 0 -> Isa.Mov { dst = slot (); src = slot () }
        | 1 ->
            Isa.Sel
              {
                dst = slot ();
                src_slot =
                  tbl warps lanes (fun _ _ ->
                      if Random.State.bool st then slot () else -1);
              }
        | 2 ->
            Isa.Scatter
              {
                src = slot ();
                dst_slot =
                  tbl warps lanes (fun _ _ ->
                      if Random.State.bool st then slot () else -1);
              }
        | 3 ->
            Isa.Shfl_idx
              {
                dst = slot ();
                src = slot ();
                src_lane = tbl warps lanes (fun _ _ -> Random.State.int st lanes);
                keep = tbl warps lanes (fun _ _ -> Random.State.bool st);
              }
        | 4 | 5 ->
            let nvec = 1 lsl Random.State.int st 2 in
            let base = slot () in
            let slots_l = List.init nvec (fun i -> (base + i) mod slots) in
            let addr =
              tbl warps lanes (fun _ _ -> Random.State.int st (smem_elems - nvec + 1))
            in
            let byte_width = [| 1; 2; 4 |].(Random.State.int st 3) in
            if Random.State.bool st then
              Isa.St_shared { slots = slots_l; addr; byte_width }
            else Isa.Ld_shared { slots = slots_l; addr; byte_width }
        | 6 ->
            Isa.Bin
              {
                op = (if Random.State.bool st then `Add else `Max);
                dst = slot ();
                a = slot ();
                b = slot ();
              }
        | _ -> Isa.Bar_sync)
  in
  ({ Isa.warps; lanes; smem_elems; body }, slots)

let test_fuzz_raw_isa () =
  let st = Random.State.make [| fuzz_seed + 1 |] in
  List.iter
    (fun machine ->
      for i = 1 to 50 do
        let p, slots = fuzz_isa_program st in
        let static_c = Static_cost.cost machine p in
        let interp = Isa.run machine p (Isa.make_state p ~slots) in
        check_cost_eq
          (Printf.sprintf "raw isa #%d on %s (replay with STATIC_COST_FUZZ_SEED=%d)" i
             machine.Gpusim.Machine.name fuzz_seed)
          static_c interp;
        check_int
          (Printf.sprintf "differential clean #%d" i)
          0
          (List.length (Static_cost.differential machine ~slots p))
      done)
    Gpusim.Machine.all_with_extras

(* {1 Fault injection} *)

(* A conflict-free single-warp store: lane l writes element l. *)
let store_program ~lanes ~smem_elems =
  {
    Isa.warps = 1;
    lanes;
    smem_elems;
    body =
      [
        Isa.St_shared
          { slots = [ 0 ]; addr = tbl 1 lanes (fun _ l -> l); byte_width = 4 };
      ];
  }

let test_perturbed_address_detected () =
  let p = store_program ~lanes:32 ~smem_elems:64 in
  (* Collide lane 1 with lane 0's bank: word 32 lands in bank 0 next to
     word 0, so the interpreter now measures an extra wavefront. *)
  let p' =
    {
      p with
      Isa.body =
        [
          Isa.St_shared
            {
              slots = [ 0 ];
              addr = tbl 1 32 (fun _ l -> if l = 1 then 32 else l);
              byte_width = 4;
            };
        ];
    }
  in
  let static_orig = Static_cost.cost m p in
  let interp_perturbed = Isa.run m p' (Isa.make_state p' ~slots:1) in
  check_bool "divergence detected" true (static_orig <> interp_perturbed);
  (* And the analyzer tracks the perturbation exactly: on the perturbed
     program itself, static and interpreted still agree. *)
  check_cost_eq "perturbed program still exact" (Static_cost.cost m p')
    (Isa.run m p' (Isa.make_state p' ~slots:1))

let all_classes_program =
  let lanes = 8 in
  {
    Isa.warps = 2;
    lanes;
    smem_elems = 64;
    body =
      [
        Isa.Mov { dst = 1; src = 0 };
        Isa.Bin { op = `Add; dst = 2; a = 0; b = 1 };
        Isa.Sel { dst = 3; src_slot = tbl 2 lanes (fun _ l -> if l mod 2 = 0 then 2 else -1) };
        Isa.Scatter { src = 3; dst_slot = tbl 2 lanes (fun _ l -> if l mod 2 = 0 then 4 else -1) };
        Isa.Shfl_idx
          {
            dst = 5;
            src = 2;
            src_lane = tbl 2 lanes (fun _ l -> (l + 1) mod lanes);
            keep = tbl 2 lanes (fun _ _ -> true);
          };
        Isa.St_shared { slots = [ 5 ]; addr = tbl 2 lanes (fun w l -> (w * lanes) + l); byte_width = 4 };
        Isa.Bar_sync;
        Isa.Ld_shared { slots = [ 6 ]; addr = tbl 2 lanes (fun w l -> (w * lanes) + l); byte_width = 4 };
      ];
  }

let test_dropped_instruction_detected () =
  let p = all_classes_program in
  let full = Static_cost.cost m p in
  check_cost_eq "full program exact" full (Isa.run m p (Isa.make_state p ~slots:8));
  List.iteri
    (fun i _ ->
      let body' = List.filteri (fun j _ -> j <> i) p.Isa.body in
      let p' = { p with Isa.body = body' } in
      let static' = Static_cost.cost m p' in
      check_bool
        (Printf.sprintf "dropping instr %d changes the static cost" i)
        true (static' <> full);
      check_cost_eq
        (Printf.sprintf "dropped-instr program %d still exact" i)
        static' (Isa.run m p' (Isa.make_state p' ~slots:8)))
    p.Isa.body

(* {1 Resource diagnostics (LL8xx)} *)

let codes (r : Resource_check.report) =
  List.map (fun (d : Diagnostics.t) -> d.Diagnostics.code) r.Resource_check.diagnostics

let has_code c r = List.mem c (codes r)

let test_clean_program () =
  let p = all_classes_program in
  let r = Resource_check.program m ~live_in:[ 0 ] ~live_out:[ 4; 6 ] p in
  check_int "no diagnostics on a clean program" 0 (List.length r.Resource_check.diagnostics);
  check_int "footprint" (16 * 4) r.Resource_check.footprint_bytes;
  (match r.Resource_check.regions with
  | [ rg ] ->
      check_int "region start" 0 rg.Resource_check.first_elem;
      check_int "region end" 15 rg.Resource_check.last_elem;
      check_bool "region defined" true (rg.Resource_check.first_def = Some 5);
      check_bool "region used" true (rg.Resource_check.last_use = Some 7)
  | rs -> Alcotest.failf "expected one region, got %d" (List.length rs));
  check_bool "peak pressure positive" true (r.Resource_check.peak_live_slots > 0)

let single ~smem_elems body = { Isa.warps = 1; lanes = 4; smem_elems; body }

let test_smem_out_of_range () =
  let p =
    single ~smem_elems:4
      [ Isa.Ld_shared { slots = [ 0 ]; addr = tbl 1 4 (fun _ l -> l + 2); byte_width = 4 } ]
  in
  let r = Resource_check.program m p in
  check_bool "LL801" true (has_code "LL801" r);
  check_bool "LL801 is an error" true
    (Diagnostics.has_errors r.Resource_check.diagnostics)

let test_smem_overflow () =
  (* 32Ki elements x 4 bytes = 128 KiB > the RTX4090's 99 KiB. *)
  let elems = 32 * 1024 in
  let p =
    single ~smem_elems:elems
      [
        Isa.St_shared
          { slots = [ 0 ]; addr = tbl 1 4 (fun _ l -> elems - 4 + l); byte_width = 4 };
      ]
  in
  let r = Resource_check.program m p in
  check_bool "LL802" true (has_code "LL802" r);
  check_int "footprint" (elems * 4) r.Resource_check.footprint_bytes

let test_read_before_store () =
  let p =
    single ~smem_elems:16
      [ Isa.Ld_shared { slots = [ 0 ]; addr = tbl 1 4 (fun _ l -> l); byte_width = 4 } ]
  in
  check_bool "LL803" true (has_code "LL803" (Resource_check.program m p))

let test_dead_store () =
  let p =
    single ~smem_elems:16
      [
        Isa.St_shared { slots = [ 0 ]; addr = tbl 1 4 (fun _ l -> l); byte_width = 4 };
        Isa.St_shared { slots = [ 0 ]; addr = tbl 1 4 (fun _ l -> l); byte_width = 4 };
        Isa.Ld_shared { slots = [ 1 ]; addr = tbl 1 4 (fun _ l -> l); byte_width = 4 };
      ]
  in
  let r = Resource_check.program m ~live_in:[ 0 ] ~live_out:[ 1 ] p in
  (* The first store is fully overwritten before any load: dead. *)
  match
    List.filter (fun (d : Diagnostics.t) -> d.Diagnostics.code = "LL804")
      r.Resource_check.diagnostics
  with
  | [ d ] -> check_bool "at instr 0" true (d.Diagnostics.loc = Diagnostics.Isa_instr 0)
  | ds -> Alcotest.failf "expected exactly one LL804, got %d" (List.length ds)

let test_use_before_def () =
  let p = single ~smem_elems:16 [ Isa.Bin { op = `Add; dst = 1; a = 0; b = 0 } ] in
  check_bool "LL805" true (has_code "LL805" (Resource_check.program m p));
  (* Declaring slot 0 live-in silences it. *)
  check_bool "live_in silences" false
    (has_code "LL805" (Resource_check.program m ~live_in:[ 0 ] p))

let test_dead_write () =
  let p =
    single ~smem_elems:16
      [ Isa.Mov { dst = 2; src = 0 }; Isa.Mov { dst = 2; src = 1 } ]
  in
  let r = Resource_check.program m ~live_in:[ 0; 1 ] ~live_out:[ 2 ] p in
  (match
     List.filter (fun (d : Diagnostics.t) -> d.Diagnostics.code = "LL806")
       r.Resource_check.diagnostics
   with
  | [ d ] -> check_bool "at instr 0" true (d.Diagnostics.loc = Diagnostics.Isa_instr 0)
  | ds -> Alcotest.failf "expected exactly one LL806, got %d" (List.length ds));
  (* Without a live-out contract the analysis stays silent. *)
  check_bool "no live_out, no LL806" false
    (has_code "LL806" (Resource_check.program m ~live_in:[ 0; 1 ] p))

let test_shape_and_lane_errors () =
  let bad_shape =
    single ~smem_elems:16 [ Isa.Sel { dst = 0; src_slot = [| [| 0 |] |] } ]
  in
  check_bool "LL800" true (has_code "LL800" (Resource_check.program m bad_shape));
  let bad_lane =
    single ~smem_elems:16
      [
        Isa.Shfl_idx
          {
            dst = 1;
            src = 0;
            src_lane = tbl 1 4 (fun _ _ -> 4);
            keep = tbl 1 4 (fun _ _ -> true);
          };
      ]
  in
  check_bool "LL807" true (has_code "LL807" (Resource_check.program m ~live_in:[ 0 ] bad_lane))

let test_predicated_lanes_no_false_positives () =
  (* A value staged only in serving lanes (Sel with -1 elsewhere), then
     shuffled out of exactly those lanes: no LL805/LL806 may fire. *)
  let lanes = 4 in
  let p =
    single ~smem_elems:16
      [
        (* Lanes 0 and 2 stage slot 0 into slot 1. *)
        Isa.Sel { dst = 1; src_slot = tbl 1 lanes (fun _ l -> if l mod 2 = 0 then 0 else -1) };
        (* Every lane pulls from an even (= staged) lane. *)
        Isa.Shfl_idx
          {
            dst = 2;
            src = 1;
            src_lane = tbl 1 lanes (fun _ l -> l land lnot 1);
            keep = tbl 1 lanes (fun _ _ -> true);
          };
      ]
  in
  let r = Resource_check.program m ~live_in:[ 0 ] ~live_out:[ 2 ] p in
  check_int "no diagnostics" 0 (List.length r.Resource_check.diagnostics)

let test_plan_analysis_clean () =
  (* Lowered conversion plans must be LL8xx-clean (this is what the
     lint sweep now runs per materialized conversion). *)
  let blocked ~spt ~tpw shape =
    Blocked.make
      {
        shape;
        size_per_thread = spt;
        threads_per_warp = tpw;
        warps_per_cta = [| 1; 1 |];
        order = [| 1; 0 |];
      }
  in
  let src = blocked ~spt:[| 1; 4 |] ~tpw:[| 8; 4 |] [| 16; 16 |] in
  let dst = blocked ~spt:[| 4; 1 |] ~tpw:[| 4; 8 |] [| 16; 16 |] in
  let plan = Codegen.Conversion.plan m ~src ~dst ~byte_width:4 in
  match Resource_check.plan m plan with
  | None -> Alcotest.fail "expected a lowerable plan"
  | Some r ->
      check_bool "no errors" false (Diagnostics.has_errors r.Resource_check.diagnostics)

(* {1 The satellite fixes} *)

let test_gmem_inst_pricing () =
  let c = Gpusim.Cost.zero () in
  c.Gpusim.Cost.gmem_insts <- 3;
  (* Priced by cost_gmem_inst, NOT by cost_smem_inst (the bug this
     pins): an absurd smem weight must not leak into the estimate. *)
  let machine = { m with Gpusim.Machine.cost_gmem_inst = 7.0; cost_smem_inst = 1000.0 } in
  Alcotest.(check (float 1e-9)) "gmem_insts priced by cost_gmem_inst" 21.0
    (Gpusim.Cost.estimate machine c);
  (* All four machines carry weight 1.0, keeping golden estimates put. *)
  List.iter
    (fun (mm : Gpusim.Machine.t) ->
      Alcotest.(check (float 1e-9))
        (mm.Gpusim.Machine.name ^ " weight")
        1.0 mm.Gpusim.Machine.cost_gmem_inst)
    Gpusim.Machine.all_with_extras

let test_count_classes () =
  let c = Isa.count_classes all_classes_program in
  check_int "movs" 1 c.Isa.movs;
  check_int "sels" 1 c.Isa.sels;
  check_int "scatters" 1 c.Isa.scatters;
  check_int "shuffles" 1 c.Isa.shuffles;
  check_int "stores" 1 c.Isa.shared_stores;
  check_int "loads" 1 c.Isa.shared_loads;
  check_int "bins" 1 c.Isa.bins;
  check_int "barriers" 1 c.Isa.barriers

(* {1 Autotune ranking} *)

let test_autotune_static_matches_interp () =
  List.iter
    (fun (k : Tir.Kernels.kernel) ->
      let build = k.Tir.Kernels.build and size = List.hd k.Tir.Kernels.sizes in
      let cfg_s, r_s =
        Tir.Autotune.best ~rank:`Static m ~mode:Tir.Engine.Linear ~build ~size
      in
      let cfg_i, r_i =
        Tir.Autotune.best ~rank:`Interp m ~mode:Tir.Engine.Linear ~build ~size
      in
      check_int
        (k.Tir.Kernels.name ^ ": same winner")
        cfg_i.Tir.Autotune.num_warps cfg_s.Tir.Autotune.num_warps;
      Alcotest.(check (float 1e-9))
        (k.Tir.Kernels.name ^ ": same candidate time")
        (Tir.Autotune.candidate_time ~rank:`Interp m r_i)
        (Tir.Autotune.candidate_time ~rank:`Static m r_s))
    Tir.Kernels.all

let () =
  Alcotest.run "static_cost"
    (Shuffle_support.maybe_shuffle
       [
         ( "golden",
           [
             Alcotest.test_case "static = interpreted on all 216 rows" `Quick
               test_golden_differential;
           ] );
         ( "fuzz",
           [
             Alcotest.test_case "engine-lowered fuzz programs" `Quick
               test_fuzz_engine_lowered;
             Alcotest.test_case "raw ISA fuzz programs" `Quick test_fuzz_raw_isa;
           ] );
         ( "fault injection",
           [
             Alcotest.test_case "perturbed address immediate" `Quick
               test_perturbed_address_detected;
             Alcotest.test_case "dropped instruction" `Quick
               test_dropped_instruction_detected;
           ] );
         ( "resources",
           [
             Alcotest.test_case "clean program" `Quick test_clean_program;
             Alcotest.test_case "LL801 address out of range" `Quick test_smem_out_of_range;
             Alcotest.test_case "LL802 footprint overflow" `Quick test_smem_overflow;
             Alcotest.test_case "LL803 read before store" `Quick test_read_before_store;
             Alcotest.test_case "LL804 dead store" `Quick test_dead_store;
             Alcotest.test_case "LL805 use before def" `Quick test_use_before_def;
             Alcotest.test_case "LL806 dead write" `Quick test_dead_write;
             Alcotest.test_case "LL800/LL807 structural errors" `Quick
               test_shape_and_lane_errors;
             Alcotest.test_case "predicated lanes, no false positives" `Quick
               test_predicated_lanes_no_false_positives;
             Alcotest.test_case "lowered plan is clean" `Quick test_plan_analysis_clean;
           ] );
         ( "satellites",
           [
             Alcotest.test_case "gmem_insts pricing" `Quick test_gmem_inst_pricing;
             Alcotest.test_case "count_classes" `Quick test_count_classes;
           ] );
         ( "autotune",
           [
             Alcotest.test_case "rank `Static = rank `Interp winners" `Quick
               test_autotune_static_matches_interp;
           ] );
       ])
