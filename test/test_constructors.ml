(* Tests for the Triton layout-family constructors: Blocked, MMA,
   Sliced and Shared (swizzled) layouts. *)

open Linear_layout

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 Blocked} *)

let test_blocked_replication () =
  (* Tile (2x2 regs, 4x8 threads, 2x1 warps) covers 16x16; a 32x16
     tensor needs 2x the registers. *)
  let l =
    Blocked.make
      {
        shape = [| 32; 16 |];
        size_per_thread = [| 2; 2 |];
        threads_per_warp = [| 4; 8 |];
        warps_per_cta = [| 2; 1 |];
        order = [| 1; 0 |];
      }
  in
  check_int "registers doubled" 8 (Layout.in_size l Dims.register);
  check_bool "still distributed" true (Layout.is_distributed l);
  check_bool "bijective" true (Layout.is_invertible l)

let test_blocked_broadcast () =
  (* Tile larger than the tensor: an 8x8 tensor on a 16x16 tile
     broadcasts threads and warps. *)
  let l =
    Blocked.make
      {
        shape = [| 8; 8 |];
        size_per_thread = [| 2; 2 |];
        threads_per_warp = [| 4; 8 |];
        warps_per_cta = [| 2; 1 |];
        order = [| 1; 0 |];
      }
  in
  check_int "lanes keep nominal size" 32 (Layout.in_size l Dims.lane);
  check_bool "surjective" true (Layout.is_surjective l);
  check_bool "not injective" false (Layout.is_injective l);
  let masks = Layout.free_variable_masks l in
  check_bool "lane broadcast bits" true (List.assoc Dims.lane masks <> 0);
  check_bool "warp broadcast bits" true (List.assoc Dims.warp masks <> 0)

let test_blocked_default () =
  let l = Blocked.default ~elems_per_thread:4 ~warp_size:32 ~num_warps:4 [| 128; 64 |] in
  check_int "full lanes" 32 (Layout.in_size l Dims.lane);
  check_int "full warps" 4 (Layout.in_size l Dims.warp);
  check_bool "distributed" true (Layout.is_distributed l);
  check_int "contiguous" 4 (Layout.num_consecutive l ~in_dim:Dims.register);
  (* Total points = tensor size. *)
  check_int "covers tensor" (128 * 64)
    (Layout.in_size l Dims.register * 32 * 4)

let test_blocked_default_small () =
  (* A tensor smaller than a warp: extra lanes broadcast. *)
  let l = Blocked.default ~warp_size:32 ~num_warps:2 [| 4; 4 |] in
  check_int "full lanes" 32 (Layout.in_size l Dims.lane);
  check_int "full warps" 2 (Layout.in_size l Dims.warp);
  check_bool "surjective" true (Layout.is_surjective l)

(* {1 MMA} *)

let test_mma_output_tile () =
  (* f32 accumulator: the m16n8 tile with 4 values per thread. *)
  let t = Mma.output_tile ~bitwidth:32 in
  check_int "regs" 4 (Layout.in_size t Dims.register);
  check_int "lanes" 32 (Layout.in_size t Dims.lane);
  check_int "rows" 16 (Layout.out_size t (Dims.dim 0));
  check_int "cols" 8 (Layout.out_size t (Dims.dim 1));
  check_bool "distributed" true (Layout.is_distributed t);
  check_bool "bijective" true (Layout.is_invertible t)

let test_mma_operand_tiles () =
  (* f16 operands: lhs is 16x16 with 8 values/thread, rhs its transpose
     with half the registers (appendix, Prop 9.2). *)
  let lhs = Mma.operand_tile ~idx:0 ~bitwidth:16 in
  check_int "lhs regs" 8 (Layout.in_size lhs Dims.register);
  check_int "lhs rows" 16 (Layout.out_size lhs (Dims.dim 0));
  check_int "lhs cols" 16 (Layout.out_size lhs (Dims.dim 1));
  let rhs = Mma.operand_tile ~idx:1 ~bitwidth:16 in
  check_int "rhs regs" 4 (Layout.in_size rhs Dims.register);
  check_bool "lhs distributed" true (Layout.is_distributed lhs);
  check_bool "rhs distributed" true (Layout.is_distributed rhs)

let test_mma_output_distribution () =
  let l = Mma.output ~bitwidth:32 ~warps:[| 2; 2 |] ~shape:[| 64; 64 |] () in
  check_int "warps" 4 (Layout.in_size l Dims.warp);
  check_bool "distributed" true (Layout.is_distributed l);
  check_bool "bijective" true (Layout.is_invertible l);
  (* 64*64 elements / (32 lanes * 4 warps) = 32 registers. *)
  check_int "regs" 32 (Layout.in_size l Dims.register)

let test_mma_operand_broadcast () =
  (* lhs operand of a dot with warps over N: those warp bits broadcast. *)
  let l = Mma.operand ~idx:0 ~bitwidth:16 ~warps:[| 2; 2 |] ~shape:[| 32; 32 |] () in
  check_int "warps" 4 (Layout.in_size l Dims.warp);
  check_bool "surjective" true (Layout.is_surjective l);
  let masks = Layout.free_variable_masks l in
  check_bool "warp broadcast" true (List.assoc Dims.warp masks <> 0);
  (* The warp bit along M is not free; the one along N is. *)
  check_int "one free warp bit" 1 (F2.Bitvec.popcount (List.assoc Dims.warp masks))

let test_wgmma_tile () =
  let t = Mma.wgmma_output_tile ~bitwidth:32 in
  check_int "warp-group" 4 (Layout.in_size t Dims.warp);
  check_int "rows" 64 (Layout.out_size t (Dims.dim 0));
  check_bool "distributed" true (Layout.is_distributed t)

let test_xmx_tile () =
  (* Intel's dpas tile: 8x16 on a 16-lane subgroup. *)
  let t = Mma.xmx_output_tile () in
  check_int "lanes" 16 (Layout.in_size t Dims.lane);
  check_int "regs" 8 (Layout.in_size t Dims.register);
  check_int "rows" 8 (Layout.out_size t (Dims.dim 0));
  check_int "cols" 16 (Layout.out_size t (Dims.dim 1));
  check_bool "bijective" true (Layout.is_invertible t);
  (* Distributing it is the ordinary generic machinery. *)
  let l = Mma.xmx_output ~warps:[| 4; 1 |] ~shape:[| 64; 64 |] () in
  check_bool "distributed" true (Layout.is_distributed l)

let test_mfma_tiles () =
  let t16 = Mma.mfma_output_tile ~m:16 in
  check_int "lanes" 64 (Layout.in_size t16 Dims.lane);
  check_int "16x16" (16 * 16) (Layout.out_size t16 (Dims.dim 0) * Layout.out_size t16 (Dims.dim 1));
  check_bool "bijective" true (Layout.is_invertible t16);
  let t32 = Mma.mfma_output_tile ~m:32 in
  check_int "32x32" (32 * 32) (Layout.out_size t32 (Dims.dim 0) * Layout.out_size t32 (Dims.dim 1));
  check_bool "distributed" true (Layout.is_distributed t32)

(* {1 Shared memory layouts} *)

let test_row_major () =
  let l = Shared.row_major ~shape:[| 4; 8 |] in
  check_bool "memory layout" true (Layout.is_memory l);
  (* Offset 10 = row 1, col 2. *)
  let out = Layout.apply l [ (Dims.offset, 10) ] in
  check_int "row" 1 (List.assoc (Dims.dim 0) out);
  check_int "col" 2 (List.assoc (Dims.dim 1) out)

let test_column_major () =
  let l = Shared.column_major ~shape:[| 4; 8 |] in
  let out = Layout.apply l [ (Dims.offset, 10) ] in
  (* Offset 10 = col 2 (10 / 4), row 2 (10 mod 4). *)
  check_int "row" 2 (List.assoc (Dims.dim 0) out);
  check_int "col" 2 (List.assoc (Dims.dim 1) out)

let test_mma_swizzle_matches_formula () =
  (* The layout construction must agree with the raw offset formula of
     Definition 4.11 for every element. *)
  List.iter
    (fun (vec, per_phase, max_phase) ->
      let rows = 16 and cols = 32 in
      let l = Shared.mma_swizzle ~vec ~per_phase ~max_phase ~rows ~cols in
      check_bool "is memory layout (Def 4.14)" true (Layout.is_memory l);
      let li = Layout.invert l in
      for i = 0 to rows - 1 do
        for j = 0 to cols - 1 do
          let off =
            List.assoc Dims.offset
              (Layout.apply li [ (Dims.dim 0, i); (Dims.dim 1, j) ])
          in
          let expected = Shared.swizzle_offset ~vec ~per_phase ~max_phase ~cols i j in
          if off <> expected then
            Alcotest.failf "vec=%d pp=%d mp=%d (%d,%d): got %d want %d" vec per_phase
              max_phase i j off expected
        done
      done)
    [ (1, 1, 1); (2, 1, 8); (4, 2, 4); (8, 1, 4); (1, 4, 4); (4, 4, 1) ]

let test_swizzle_identity_case () =
  (* vec=1, per_phase=1, max_phase=1 is the unswizzled row-major layout. *)
  let l = Shared.mma_swizzle ~vec:1 ~per_phase:1 ~max_phase:1 ~rows:8 ~cols:8 in
  check_bool "unswizzled" true (Layout.equal l (Shared.row_major ~shape:[| 8; 8 |]))

let test_of_basis_columns () =
  let l = Shared.of_basis_columns ~shape:[| 4; 8 |] [ 1; 2; 4; 8; 16 ] in
  check_bool "row major" true (Layout.equal l (Shared.row_major ~shape:[| 4; 8 |]))

(* {1 Properties} *)

let arb_swizzle =
  let gen =
    QCheck.Gen.(
      let pow2 hi = map (fun k -> 1 lsl k) (int_range 0 hi) in
      let* vec = pow2 3 and* per_phase = pow2 2 and* max_phase = pow2 3 in
      return (vec, per_phase, max_phase))
  in
  QCheck.make gen ~print:(fun (v, p, m) -> Printf.sprintf "vec=%d per_phase=%d max_phase=%d" v p m)

let prop_swizzle_memory_layout =
  QCheck.Test.make ~name:"mma swizzles are memory layouts (Thm 4.13)" ~count:100 arb_swizzle
    (fun (vec, per_phase, max_phase) ->
      let l = Shared.mma_swizzle ~vec ~per_phase ~max_phase ~rows:32 ~cols:64 in
      Layout.is_memory l)

let prop_swizzle_bijective_offsets =
  QCheck.Test.make ~name:"swizzle offsets are a permutation" ~count:50 arb_swizzle
    (fun (vec, per_phase, max_phase) ->
      let rows = 16 and cols = 32 in
      let seen = Hashtbl.create 512 in
      let ok = ref true in
      for i = 0 to rows - 1 do
        for j = 0 to cols - 1 do
          let o = Shared.swizzle_offset ~vec ~per_phase ~max_phase ~cols i j in
          if o < 0 || o >= rows * cols || Hashtbl.mem seen o then ok := false
          else Hashtbl.add seen o ()
        done
      done;
      !ok)

let arb_mma =
  let gen =
    QCheck.Gen.(
      let* bitwidth = oneofl [ 8; 16; 32 ] in
      let* wm = oneofl [ 1; 2 ] and* wn = oneofl [ 1; 2 ] in
      let* m = oneofl [ 32; 64 ] and* n = oneofl [ 32; 64 ] in
      return (bitwidth, [| wm; wn |], [| m; n |]))
  in
  QCheck.make gen ~print:(fun (b, w, s) ->
      Printf.sprintf "bw=%d warps=[%d,%d] shape=[%d,%d]" b w.(0) w.(1) s.(0) s.(1))

let prop_mma_distributed =
  QCheck.Test.make ~name:"mma outputs are distributed (Prop 4.7)" ~count:100 arb_mma
    (fun (bitwidth, warps, shape) ->
      Layout.is_distributed (Mma.output ~bitwidth ~warps ~shape ()))

let prop_mma_operand_surjective =
  QCheck.Test.make ~name:"mma operands are surjective" ~count:100 arb_mma
    (fun (bitwidth, warps, shape) ->
      Layout.is_surjective (Mma.operand ~idx:0 ~bitwidth ~warps ~shape ())
      && Layout.is_surjective (Mma.operand ~idx:1 ~bitwidth ~warps ~shape ()))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "constructors"
    [
      ( "blocked",
        [
          Alcotest.test_case "register replication" `Quick test_blocked_replication;
          Alcotest.test_case "broadcast when tile too large" `Quick test_blocked_broadcast;
          Alcotest.test_case "default encoding" `Quick test_blocked_default;
          Alcotest.test_case "default on small tensor" `Quick test_blocked_default_small;
        ] );
      ( "mma",
        [
          Alcotest.test_case "output tile m16n8" `Quick test_mma_output_tile;
          Alcotest.test_case "operand tiles" `Quick test_mma_operand_tiles;
          Alcotest.test_case "output distribution" `Quick test_mma_output_distribution;
          Alcotest.test_case "operand warp broadcast" `Quick test_mma_operand_broadcast;
          Alcotest.test_case "wgmma tile" `Quick test_wgmma_tile;
          Alcotest.test_case "mfma tiles" `Quick test_mfma_tiles;
          Alcotest.test_case "xmx tile (out-of-tree backend)" `Quick test_xmx_tile;
        ] );
      ( "shared",
        [
          Alcotest.test_case "row major" `Quick test_row_major;
          Alcotest.test_case "column major" `Quick test_column_major;
          Alcotest.test_case "swizzle matches Def 4.11" `Quick test_mma_swizzle_matches_formula;
          Alcotest.test_case "identity swizzle" `Quick test_swizzle_identity_case;
          Alcotest.test_case "of basis columns" `Quick test_of_basis_columns;
        ] );
      ( "properties",
        q
          [
            prop_swizzle_memory_layout;
            prop_swizzle_bijective_offsets;
            prop_mma_distributed;
            prop_mma_operand_surjective;
          ] );
    ]
