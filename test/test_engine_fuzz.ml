(* Random-program fuzzing: generate small op DAGs, run the engine in
   both modes, and check the layout-path interpreter agrees with the
   reference on every generated program. *)

open Tir

let m = Gpusim.Machine.gh200

(* Generate a random program over 2-D f32 values.  Shapes are tracked
   so every op is well-formed; reductions produce rank-1 values that
   only feed expand+broadcast chains. *)
let gen_program =
  QCheck.Gen.(
    let* rows = oneofl [ 16; 32 ] in
    let* cols = oneofl [ 32; 64 ] in
    let shape = [| rows; cols |] in
    let* n_ops = int_range 3 12 in
    let* seeds = list_repeat n_ops (pair (int_bound 9) (int_bound 1000)) in
    return
      (let p = Program.create () in
       let x = Program.load p ~name:"x" ~shape ~dtype:Tensor_lib.Dtype.F32 () in
       let y = Program.load p ~name:"y" ~shape ~dtype:Tensor_lib.Dtype.F32 () in
       (* [live] holds ids whose shape is [shape]. *)
       let live = ref [ x; y ] in
       let pick k = List.nth !live (k mod List.length !live) in
       List.iter
         (fun (op, k) ->
           let v = pick k in
           let id =
             match op with
             | 0 | 1 -> Program.elementwise p ~name:"exp" [ v ]
             | 2 -> Program.elementwise p ~name:"add" [ v; pick (k + 1) ]
             | 3 -> Program.elementwise p ~name:"mul" [ v; pick (k + 7) ]
             | 4 ->
                 (* reduce + broadcast back to shape *)
                 let r = Program.reduce p v ~axis:1 in
                 let e = Program.expand_dims p r ~axis:1 in
                 Program.broadcast p e ~shape
             | 5 ->
                 (* transpose there and back *)
                 let t = Program.trans p v ~perm:[| 1; 0 |] in
                 Program.trans p t ~perm:[| 1; 0 |]
             | 6 ->
                 (* reshape roundtrip *)
                 let r = Program.reshape p v ~shape:[| rows * cols |] in
                 Program.reshape p r ~shape
             | 7 -> Program.scan p v ~axis:1 ~reverse:(k land 1 = 1)
             | 8 ->
                 let j = Program.join p ~a:v ~b:(pick (k + 3)) in
                 Program.split p j ~half:(k land 1)
             | _ -> Program.elementwise p ~name:"sub" [ v; pick (k + 13) ]
           in
           live := id :: !live)
         seeds;
       ignore (Program.store p (List.hd !live));
       p))

let arb_program =
  QCheck.make gen_program ~print:(fun p -> Format.asprintf "%a" Program.pp p)

let prop_engine_total =
  QCheck.Test.make ~name:"engine runs on random programs in both modes" ~count:150 arb_program
    (fun p ->
      let lin = Engine.run m ~mode:Engine.Linear p in
      let leg = Engine.run m ~mode:Engine.Legacy_mode p in
      Engine.time m lin > 0. && Engine.time m leg > 0.)

(* Individual adversarial programs can favour the legacy system by a
   few percent (e.g. register-replicated scans our cost model does not
   charge for register pressure; the paper likewise reports sub-1.0
   cases in Figure 9).  The claim that holds is statistical: across a
   random sample, linear layouts win on (geometric) average and never
   lose badly. *)
let prop_linear_not_slower =
  QCheck.Test.make ~name:"linear wins on average over random programs" ~count:1
    (QCheck.make QCheck.Gen.(list_repeat 120 gen_program))
    (fun programs ->
      let ratios =
        List.map
          (fun p ->
            let lin = Engine.time m (Engine.run m ~mode:Engine.Linear p) in
            let leg = Engine.time m (Engine.run m ~mode:Engine.Legacy_mode p) in
            leg /. lin)
          programs
      in
      let geomean =
        exp (List.fold_left (fun a r -> a +. log r) 0. ratios /. float_of_int (List.length ratios))
      in
      let worst = List.fold_left Float.min infinity ratios in
      geomean >= 1.0 && worst >= 0.85)

let prop_interp_agrees =
  QCheck.Test.make ~name:"layout interpreter agrees with reference on random programs"
    ~count:60 arb_program (fun p ->
      let inputs = Interp.synth_inputs p in
      let r = Interp.reference p ~inputs in
      let l = Interp.through_layouts m p ~inputs in
      List.for_all2
        (fun (_, a) (_, b) -> Tensor_lib.Tensor.max_abs_diff a b = 0.)
        r l)

let prop_layouts_valid =
  QCheck.Test.make ~name:"the verifier accepts every random assignment" ~count:100 arb_program
    (fun p ->
      ignore (Engine.run m ~mode:Engine.Linear p);
      Validate.program p = [])

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "engine_fuzz"
    [
      ( "random programs",
        q [ prop_engine_total; prop_linear_not_slower; prop_interp_agrees; prop_layouts_valid ]
      );
    ]
