(* Tests for the lib/analysis static-analysis subsystem: fault
   injection (dropped barriers, perturbed swizzles), certifier
   agreement with the brute-force bank simulator, and cleanliness of
   every shipped kernel's layout assignment. *)

open Linear_layout

let check_bool = Alcotest.(check bool)
let m = Gpusim.Machine.gh200
let has_code c ds = List.exists (fun (d : Diagnostics.t) -> d.Diagnostics.code = c) ds

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* A layout pair whose conversion must go through shared memory: the
   warps tile rows on one side and columns on the other. *)
let smem_pair () =
  let shape = [| 32; 32 |] in
  let src = Blocked.default ~elems_per_thread:4 ~warp_size:32 ~num_warps:4 shape in
  let dst =
    Blocked.make
      {
        shape;
        size_per_thread = [| 4; 1 |];
        threads_per_warp = [| 8; 4 |];
        warps_per_cta = [| 1; 4 |];
        order = [| 0; 1 |];
      }
  in
  (src, dst)

let smem_plan () =
  let src, dst = smem_pair () in
  let plan = Codegen.Conversion.plan m ~src ~dst ~byte_width:4 in
  (match plan.Codegen.Conversion.mechanism with
  | Codegen.Conversion.Shared_memory _ -> ()
  | _ -> Alcotest.fail "expected a shared-memory plan");
  plan

(* {1 Races} *)

let test_clean_plan () =
  let plan = smem_plan () in
  let ds = Analysis.Races.check_plan m plan @ Analysis.Bank_check.conversion m plan in
  check_bool "clean plan has no analysis errors" true (Diagnostics.errors ds = [])

let test_dropped_barrier () =
  let plan = smem_plan () in
  let program, _ = Codegen.Lower.conversion m plan in
  check_bool "lowering emits a barrier" true
    (List.mem Gpusim.Isa.Bar_sync program.Gpusim.Isa.body);
  check_bool "intact program is race-free" true
    (Diagnostics.errors (Analysis.Races.check program) = []);
  let stripped =
    {
      program with
      Gpusim.Isa.body =
        List.filter (fun i -> i <> Gpusim.Isa.Bar_sync) program.Gpusim.Isa.body;
    }
  in
  check_bool "dropped barrier is flagged as LL201" true
    (has_code "LL201" (Analysis.Races.check stripped))

let test_waw_flagged_and_suppressed () =
  (* Two warps store to the same address: a race in general, benign
     when the caller proves both write the same value. *)
  let st =
    Gpusim.Isa.St_shared { slots = [ 0 ]; addr = [| [| 0 |]; [| 0 |] |]; byte_width = 4 }
  in
  let p = { Gpusim.Isa.warps = 2; lanes = 1; smem_elems = 4; body = [ st ] } in
  check_bool "cross-warp WAW flagged" true (has_code "LL202" (Analysis.Races.check p));
  check_bool "suppressed when proven same-value" true
    (Analysis.Races.check ~duplicate_stores_benign:true p = [])

let test_same_instr_lane_overlap () =
  let st =
    Gpusim.Isa.St_shared { slots = [ 0 ]; addr = [| [| 3; 3 |] |]; byte_width = 4 }
  in
  let p = { Gpusim.Isa.warps = 1; lanes = 2; smem_elems = 4; body = [ st ] } in
  check_bool "two lanes, one address, one instruction -> LL203" true
    (has_code "LL203" (Analysis.Races.check p))

let test_redundant_barrier () =
  let p =
    { Gpusim.Isa.warps = 1; lanes = 32; smem_elems = 4; body = [ Gpusim.Isa.Bar_sync ] }
  in
  check_bool "barrier with no traffic -> LL210 warning" true
    (has_code "LL210" (Analysis.Races.check p));
  check_bool "LL210 is only a warning" true
    (Diagnostics.errors (Analysis.Races.check p) = [])

(* {1 Bank certification} *)

let test_perturbed_swizzle () =
  let src, dst = smem_pair () in
  let byte_width = 4 in
  let s = Codegen.Swizzle_opt.optimal m ~src ~dst ~byte_width in
  check_bool "the optimal swizzle certifies" true
    (Diagnostics.errors (Analysis.Bank_check.swizzle m ~src ~dst ~byte_width s) = []);
  (* Un-swizzle the memory layout (keep the vectorization columns, lay
     the rest out linearly): the stored prediction no longer matches
     the simulator, which the certifier must treat as an analyzer
     error. *)
  let vec = s.Codegen.Swizzle_opt.vec in
  let span = F2.Subspace.echelon_basis vec in
  let rest =
    List.init 10 (fun i -> 1 lsl i)
    |> List.filter (fun c -> not (F2.Subspace.mem span c))
  in
  let plain = Shared.of_basis_columns ~shape:[| 32; 32 |] (vec @ rest) in
  let s' = { s with Codegen.Swizzle_opt.mem = plain } in
  let ds = Analysis.Bank_check.swizzle m ~src ~dst ~byte_width s' in
  check_bool "perturbed swizzle -> LL301" true (has_code "LL301" ds)

(* {1 TIR wiring} *)

let test_kernels_clean () =
  List.iter
    (fun (k : Tir.Kernels.kernel) ->
      let prog = k.Tir.Kernels.build ~size:(List.hd k.Tir.Kernels.sizes) in
      let result = Tir.Engine.run m ~mode:Tir.Engine.Linear prog in
      let ds = Tir.Validate.analyze m prog ~result in
      check_bool (k.Tir.Kernels.name ^ " has no analysis errors") true
        (Diagnostics.errors ds = []))
    Tir.Kernels.all

let test_run_and_validate_analyze () =
  let k = Tir.Kernels.find "softmax" in
  let prog = k.Tir.Kernels.build ~size:(List.hd k.Tir.Kernels.sizes) in
  ignore (Tir.Validate.run_and_validate m ~mode:Tir.Engine.Linear ~analyze:true prog)

let test_validate_codes () =
  (* A corrupted transpose assignment gets the dedicated code and the
     instruction id survives into the rendered exception. *)
  let p = Tir.Program.create () in
  let x = Tir.Program.load p ~shape:[| 16; 16 |] ~dtype:Tensor_lib.Dtype.F32 () in
  let t = Tir.Program.trans p x ~perm:[| 1; 0 |] in
  ignore (Tir.Program.store p t);
  ignore (Tir.Engine.run m ~mode:Tir.Engine.Linear p);
  (Tir.Program.instr p t).Tir.Program.layout <- (Tir.Program.instr p x).Tir.Program.layout;
  let ds = Tir.Validate.program p in
  check_bool "corrupted transpose -> LL605" true (has_code "LL605" ds);
  let rendered = Printexc.to_string (Tir.Validate.Invalid ds) in
  check_bool "rendered exception carries the code" true (contains rendered "LL605");
  check_bool "rendered exception carries the instruction id" true
    (contains rendered (Printf.sprintf "%%%d" t))

(* {1 Properties} *)

(* Random CTA-wide blocked pairs: warps tile the tensor differently on
   each side, so conversions regularly go through shared memory. *)
let arb_cta_pair =
  let gen =
    QCheck.Gen.(
      let* size = oneofl [ 32; 64 ] in
      let layout_gen =
        let* spt1 = oneofl [ 1; 2; 4 ] in
        let* ord = oneofl [ [| 1; 0 |]; [| 0; 1 |] ] in
        let* wpc = oneofl [ [| 1; 4 |]; [| 4; 1 |]; [| 2; 2 |] ] in
        let spt = if ord.(0) = 1 then [| 1; spt1 |] else [| spt1; 1 |] in
        let tpw = if ord.(0) = 1 then [| 4; 8 |] else [| 8; 4 |] in
        return
          (Blocked.make
             {
               shape = [| size; size |];
               size_per_thread = spt;
               threads_per_warp = tpw;
               warps_per_cta = wpc;
               order = ord;
             })
      in
      let* a = layout_gen and* b = layout_gen in
      return (a, b))
  in
  QCheck.make gen ~print:(fun (a, b) -> Layout.to_string a ^ "\n->\n" ^ Layout.to_string b)

let prop_plans_race_clean =
  QCheck.Test.make ~name:"every planned conversion is race- and error-free" ~count:60
    arb_cta_pair (fun (src, dst) ->
      let plan = Codegen.Conversion.plan m ~src ~dst ~byte_width:4 in
      Diagnostics.errors
        (Analysis.Races.check_plan m plan @ Analysis.Bank_check.conversion m plan)
      = [])

let prop_certifier_agrees =
  (* The certifier re-derives Lemma 9.4 and must agree with the bank
     simulator on every shared-memory plan: an LL301 is by definition
     an analyzer (or planner) bug. *)
  QCheck.Test.make ~name:"bank certifier agrees with Gpusim.Banks" ~count:60 arb_cta_pair
    (fun (src, dst) ->
      let plan = Codegen.Conversion.plan m ~src ~dst ~byte_width:4 in
      match plan.Codegen.Conversion.mechanism with
      | Codegen.Conversion.Shared_memory _ ->
          not (has_code "LL301" (Analysis.Bank_check.conversion m plan))
      | _ -> QCheck.assume_fail ())

(* Ground truth for the RAW checker, recomputed naively. *)
let raw_exists (p : Gpusim.Isa.program) =
  let writer = Hashtbl.create 64 in
  let found = ref false in
  List.iter
    (fun i ->
      match i with
      | Gpusim.Isa.Bar_sync -> Hashtbl.reset writer
      | Gpusim.Isa.St_shared { slots; addr; _ } ->
          Array.iteri
            (fun w lanes ->
              Array.iter
                (fun a0 -> List.iteri (fun k _ -> Hashtbl.replace writer (a0 + k) w) slots)
                lanes)
            addr
      | Gpusim.Isa.Ld_shared { slots; addr; _ } ->
          Array.iteri
            (fun w lanes ->
              Array.iter
                (fun a0 ->
                  List.iteri
                    (fun k _ ->
                      match Hashtbl.find_opt writer (a0 + k) with
                      | Some w' when w' <> w -> found := true
                      | _ -> ())
                    slots)
                lanes)
            addr
      | _ -> ())
    p.Gpusim.Isa.body;
  !found

let prop_raw_checker_exact =
  (* Differential test: strip the barriers from a lowered plan and the
     checker must report LL201 exactly when a naive replay finds a
     cross-warp store->load edge. *)
  QCheck.Test.make ~name:"RAW checker matches naive replay on stripped programs" ~count:40
    arb_cta_pair (fun (src, dst) ->
      let plan = Codegen.Conversion.plan m ~src ~dst ~byte_width:4 in
      match plan.Codegen.Conversion.mechanism with
      | Codegen.Conversion.Shared_memory _ ->
          let program, _ = Codegen.Lower.conversion m plan in
          let stripped =
            {
              program with
              Gpusim.Isa.body =
                List.filter (fun i -> i <> Gpusim.Isa.Bar_sync) program.Gpusim.Isa.body;
            }
          in
          Bool.equal (raw_exists stripped)
            (has_code "LL201" (Analysis.Races.check stripped))
      | _ -> QCheck.assume_fail ())

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "analysis"
    [
      ( "races",
        [
          Alcotest.test_case "clean plan" `Quick test_clean_plan;
          Alcotest.test_case "dropped barrier" `Quick test_dropped_barrier;
          Alcotest.test_case "waw flagged and suppressed" `Quick test_waw_flagged_and_suppressed;
          Alcotest.test_case "same-instr lane overlap" `Quick test_same_instr_lane_overlap;
          Alcotest.test_case "redundant barrier" `Quick test_redundant_barrier;
        ] );
      ("banks", [ Alcotest.test_case "perturbed swizzle" `Quick test_perturbed_swizzle ]);
      ( "tir",
        [
          Alcotest.test_case "all kernels clean" `Quick test_kernels_clean;
          Alcotest.test_case "run_and_validate ~analyze" `Quick test_run_and_validate_analyze;
          Alcotest.test_case "validate codes" `Quick test_validate_codes;
        ] );
      ( "properties",
        [ q prop_plans_race_clean; q prop_certifier_agrees; q prop_raw_checker_exact ] );
    ]
