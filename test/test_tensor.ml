(* Tests for dtypes, mxfp4 emulation, and tensors. *)

open Tensor_lib

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let test_dtype_bits () =
  check_int "f8" 8 (Dtype.bits Dtype.F8E4M3);
  check_int "f16" 16 (Dtype.bits Dtype.F16);
  check_int "bf16" 16 (Dtype.bits Dtype.BF16);
  check_int "mxfp4" 4 (Dtype.bits Dtype.MXFP4);
  check_int "f8 bytes" 1 (Dtype.byte_width Dtype.F8E4M3);
  check_bool "i32 is int" true (Dtype.is_int Dtype.I32);
  check_bool "f16 is float" true (Dtype.is_float Dtype.F16);
  Alcotest.(check (option string)) "roundtrip names" (Some "f8e4m3")
    (Option.map Dtype.name (Dtype.of_name "f8"))

let test_quantize_exact_values () =
  (* Values exactly representable in every small-float format. *)
  List.iter
    (fun t ->
      List.iter
        (fun v -> check_float (Dtype.name t ^ " exact") v (Dtype.quantize t v))
        [ 0.; 1.; -1.; 0.5; 2.; -4. ])
    [ Dtype.F8E4M3; Dtype.F8E5M2; Dtype.F16; Dtype.BF16; Dtype.F32 ]

let test_quantize_rounds () =
  (* f16 has 10 mantissa bits: 1 + 2^-11 rounds to 1 or 1+2^-10. *)
  let q = Dtype.quantize Dtype.F16 (1. +. (1. /. 4096.)) in
  check_bool "rounds to representable" true (q = 1.0 || q = 1. +. (1. /. 1024.));
  (* bf16 keeps only 7 mantissa bits. *)
  let q2 = Dtype.quantize Dtype.BF16 1.01 in
  check_bool "bf16 coarse" true (Float.abs (q2 -. 1.01) < 1. /. 64.);
  (* e2m1 (fp4) values: 0, 0.5, 1, 1.5, 2, 3, 4, 6. *)
  check_float "fp4 3" 3. (Dtype.quantize Dtype.MXFP4 3.1);
  check_float "fp4 max" 6. (Dtype.quantize Dtype.MXFP4 100.)

let test_quantize_saturates () =
  check_float "f8e4m3 max" 480. (Dtype.quantize Dtype.F8E4M3 1.0e9);
  check_bool "f8 negative saturate" true (Dtype.quantize Dtype.F8E4M3 (-1.0e9) < -100.);
  check_float "i8 max" 127. (Dtype.decode Dtype.I8 (Dtype.encode Dtype.I8 1000.));
  check_float "i8 min" (-128.) (Dtype.decode Dtype.I8 (Dtype.encode Dtype.I8 (-1000.)))

let test_encode_decode_roundtrip () =
  List.iter
    (fun t ->
      for i = 0 to (1 lsl Dtype.bits t) - 1 do
        let v = Dtype.decode t i in
        let i' = Dtype.encode t v in
        if Dtype.decode t i' <> v then
          Alcotest.failf "%s: code %d decodes to %f but re-encodes to %d" (Dtype.name t) i v i'
      done)
    [ Dtype.MXFP4; Dtype.F8E4M3; Dtype.F8E5M2 ]

let test_mxfp4_quantize () =
  let xs = Array.init 64 (fun i -> Float.of_int (i - 32) /. 4.) in
  let q = Mxfp4.quantize xs in
  check_int "two blocks" 2 (Array.length q.Mxfp4.scales);
  let back = Mxfp4.dequantize q in
  (* Relative error bounded by the e2m1 spacing (half step of 1/2 at
     scale): coarse but monotone-ish. *)
  Array.iteri
    (fun i v ->
      let err = Float.abs (back.(i) -. v) in
      let bound = (Float.abs v /. 4.) +. (8. /. 4. /. 2.) in
      if err > bound then Alcotest.failf "mxfp4 error too large at %d: %f vs %f" i back.(i) v)
    xs

let test_mxfp4_scales_powers_of_two () =
  let xs = Array.make 32 96.0 in
  let q = Mxfp4.quantize xs in
  (* 96 = 6 * 16: scale must be 16 = 2^4. *)
  check_int "scale exponent" (127 + 4) q.Mxfp4.scales.(0);
  check_float "exact at scale" 96. (Mxfp4.get q 0)

let test_tensor_indexing () =
  let t = Tensor.init Dtype.F32 [| 4; 8 |] ~f:(fun c -> Float.of_int ((c.(0) * 10) + c.(1))) in
  check_float "get" 23. (Tensor.get t [| 2; 3 |]);
  Tensor.set t [| 2; 3 |] 7.;
  check_float "set" 7. (Tensor.get t [| 2; 3 |]);
  check_int "numel" 32 (Tensor.numel t)

let test_tensor_matmul () =
  let a = Tensor.init Dtype.F32 [| 2; 3 |] ~f:(fun c -> Float.of_int ((c.(0) * 3) + c.(1))) in
  let b = Tensor.init Dtype.F32 [| 3; 2 |] ~f:(fun c -> Float.of_int ((c.(0) * 2) + c.(1))) in
  let c = Tensor.matmul a b ~acc:Dtype.F32 in
  (* a = [[0 1 2];[3 4 5]]; b = [[0 1];[2 3];[4 5]]; c = [[10 13];[28 40]] *)
  check_float "c00" 10. (Tensor.get c [| 0; 0 |]);
  check_float "c01" 13. (Tensor.get c [| 0; 1 |]);
  check_float "c10" 28. (Tensor.get c [| 1; 0 |]);
  check_float "c11" 40. (Tensor.get c [| 1; 1 |])

let test_tensor_transpose_reduce () =
  let t = Tensor.init Dtype.F32 [| 2; 4 |] ~f:(fun c -> Float.of_int ((c.(0) * 4) + c.(1))) in
  let tt = Tensor.transpose t in
  check_float "transposed" 1. (Tensor.get tt [| 1; 0 |]);
  let s = Tensor.reduce_sum t ~axis:1 in
  check_float "row sum" 6. (Tensor.get s [| 0 |]);
  check_float "row sum 2" 22. (Tensor.get s [| 1 |])

let test_tensor_shape_ops () =
  let t = Tensor.init Dtype.F32 [| 2; 3; 4 |] ~f:(fun c -> Float.of_int ((c.(0) * 12) + (c.(1) * 4) + c.(2))) in
  (* transpose_perm moves data, not just metadata. *)
  let p = Tensor.transpose_perm t ~perm:[| 2; 0; 1 |] in
  Alcotest.(check (array int)) "permuted shape" [| 4; 2; 3 |] p.Tensor.shape;
  check_float "moved element" (Tensor.get t [| 1; 2; 3 |]) (Tensor.get p [| 3; 1; 2 |]);
  (* reshape is row-major reinterpretation. *)
  let r = Tensor.reshape t ~shape:[| 6; 4 |] in
  check_float "reshape keeps order" (Tensor.get t [| 1; 0; 2 |]) (Tensor.get r [| 3; 2 |]);
  (* expand_dims + broadcast_to. *)
  let e = Tensor.expand_dims (Tensor.reduce_sum t ~axis:2) ~axis:2 in
  Alcotest.(check (array int)) "expanded" [| 2; 3; 1 |] e.Tensor.shape;
  let b = Tensor.broadcast_to e ~shape:[| 2; 3; 4 |] in
  check_float "broadcast copies" (Tensor.get e [| 1; 1; 0 |]) (Tensor.get b [| 1; 1; 3 |])

let test_tensor_cumsum () =
  let t = Tensor.init Dtype.F32 [| 2; 4 |] ~f:(fun c -> Float.of_int (c.(1) + 1)) in
  let c = Tensor.cumsum t ~axis:1 ~reverse:false in
  check_float "forward last" 10. (Tensor.get c [| 0; 3 |]);
  check_float "forward first" 1. (Tensor.get c [| 0; 0 |]);
  let r = Tensor.cumsum t ~axis:1 ~reverse:true in
  check_float "reverse first" 10. (Tensor.get r [| 1; 0 |]);
  check_float "reverse last" 4. (Tensor.get r [| 1; 3 |]);
  (* Scan along the other axis. *)
  let c0 = Tensor.cumsum t ~axis:0 ~reverse:false in
  check_float "axis 0" 2. (Tensor.get c0 [| 1; 0 |])

let test_tensor_gather_join_split () =
  let t = Tensor.init Dtype.F32 [| 4; 2 |] ~f:(fun c -> Float.of_int ((10 * c.(0)) + c.(1))) in
  let idx = Tensor.init Dtype.I32 [| 4; 2 |] ~f:(fun c -> Float.of_int ((c.(0) + 1) mod 4)) in
  let g = Tensor.gather t ~index:idx ~axis:0 in
  check_float "gathered row" 10. (Tensor.get g [| 0; 0 |]);
  check_float "wraps" 1. (Tensor.get g [| 3; 1 |]);
  let j = Tensor.join t g in
  Alcotest.(check (array int)) "joined" [| 4; 2; 2 |] j.Tensor.shape;
  check_bool "split 0 = t" true (Tensor.equal (Tensor.split j ~half:0) t);
  check_bool "split 1 = g" true (Tensor.equal (Tensor.split j ~half:1) g)

let test_low_precision_matmul_differs () =
  (* Quantization must actually change results for f8. *)
  let f c = Float.of_int c.(0) +. (Float.of_int c.(1) /. 7.) +. 0.123 in
  let a32 = Tensor.init Dtype.F32 [| 8; 8 |] ~f in
  let a8 = Tensor.astype a32 Dtype.F8E4M3 in
  check_bool "quantization changes values" true (Tensor.max_abs_diff a32 a8 > 0.)

let prop_quantize_idempotent =
  QCheck.Test.make ~name:"quantize is idempotent" ~count:500
    (QCheck.pair (QCheck.make (QCheck.Gen.oneofl Dtype.all)) (QCheck.float_range (-100.) 100.))
    (fun (t, x) ->
      let q = Dtype.quantize t x in
      Dtype.quantize t q = q)

let prop_quantize_monotone_f8 =
  QCheck.Test.make ~name:"f8 quantization is monotone" ~count:500
    (QCheck.pair (QCheck.float_range (-400.) 400.) (QCheck.float_range (-400.) 400.))
    (fun (a, b) ->
      let a, b = if a <= b then (a, b) else (b, a) in
      Dtype.quantize Dtype.F8E4M3 a <= Dtype.quantize Dtype.F8E4M3 b)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "tensor"
    [
      ( "dtype",
        [
          Alcotest.test_case "bits and names" `Quick test_dtype_bits;
          Alcotest.test_case "exact values" `Quick test_quantize_exact_values;
          Alcotest.test_case "rounding" `Quick test_quantize_rounds;
          Alcotest.test_case "saturation" `Quick test_quantize_saturates;
          Alcotest.test_case "encode/decode roundtrip" `Quick test_encode_decode_roundtrip;
        ] );
      ( "mxfp4",
        [
          Alcotest.test_case "quantize" `Quick test_mxfp4_quantize;
          Alcotest.test_case "power-of-two scales" `Quick test_mxfp4_scales_powers_of_two;
        ] );
      ( "tensor",
        [
          Alcotest.test_case "indexing" `Quick test_tensor_indexing;
          Alcotest.test_case "matmul" `Quick test_tensor_matmul;
          Alcotest.test_case "transpose/reduce" `Quick test_tensor_transpose_reduce;
          Alcotest.test_case "shape ops" `Quick test_tensor_shape_ops;
          Alcotest.test_case "cumsum" `Quick test_tensor_cumsum;
          Alcotest.test_case "gather/join/split" `Quick test_tensor_gather_join_split;
          Alcotest.test_case "low precision differs" `Quick test_low_precision_matmul_differs;
        ] );
      ("properties", q [ prop_quantize_idempotent; prop_quantize_monotone_f8 ]);
    ]
