(* Structural equality of cached plan values, shared by the
   shared-cache, plan-store and server suites.  The plan records carry
   no derived/ephemeral state, so field-wise comparison (layouts via
   [Layout.equal]) is exactly "the cache handed back the same plan a
   fresh planner would produce". *)

open Linear_layout

let shuffle_equal (a : Codegen.Shuffle.t) (b : Codegen.Shuffle.t) =
  Layout.equal a.Codegen.Shuffle.src b.Codegen.Shuffle.src
  && Layout.equal a.Codegen.Shuffle.dst b.Codegen.Shuffle.dst
  && a.Codegen.Shuffle.vec = b.Codegen.Shuffle.vec
  && a.Codegen.Shuffle.common_thr = b.Codegen.Shuffle.common_thr
  && a.Codegen.Shuffle.g = b.Codegen.Shuffle.g
  && a.Codegen.Shuffle.ext = b.Codegen.Shuffle.ext
  && a.Codegen.Shuffle.rounds = b.Codegen.Shuffle.rounds
  && a.Codegen.Shuffle.shuffles_per_round = b.Codegen.Shuffle.shuffles_per_round

let swizzle_equal (a : Codegen.Swizzle_opt.t) (b : Codegen.Swizzle_opt.t) =
  Layout.equal a.Codegen.Swizzle_opt.mem b.Codegen.Swizzle_opt.mem
  && a.Codegen.Swizzle_opt.vec = b.Codegen.Swizzle_opt.vec
  && a.Codegen.Swizzle_opt.seg = b.Codegen.Swizzle_opt.seg
  && a.Codegen.Swizzle_opt.bank = b.Codegen.Swizzle_opt.bank
  && a.Codegen.Swizzle_opt.vec_bits = b.Codegen.Swizzle_opt.vec_bits
  && a.Codegen.Swizzle_opt.store_wavefronts = b.Codegen.Swizzle_opt.store_wavefronts
  && a.Codegen.Swizzle_opt.load_wavefronts = b.Codegen.Swizzle_opt.load_wavefronts

let cost_equal (a : Gpusim.Cost.t) (b : Gpusim.Cost.t) =
  a.Gpusim.Cost.smem_wavefronts = b.Gpusim.Cost.smem_wavefronts
  && a.Gpusim.Cost.smem_insts = b.Gpusim.Cost.smem_insts
  && a.Gpusim.Cost.shuffles = b.Gpusim.Cost.shuffles
  && a.Gpusim.Cost.gmem_transactions = b.Gpusim.Cost.gmem_transactions
  && a.Gpusim.Cost.gmem_insts = b.Gpusim.Cost.gmem_insts
  && a.Gpusim.Cost.ldmatrix = b.Gpusim.Cost.ldmatrix
  && a.Gpusim.Cost.alu = b.Gpusim.Cost.alu
  && a.Gpusim.Cost.mma = b.Gpusim.Cost.mma
  && a.Gpusim.Cost.barriers = b.Gpusim.Cost.barriers

let staging_equal a b =
  match (a, b) with
  | None, None -> true
  | Some (a : Codegen.Operand_staging.t), Some (b : Codegen.Operand_staging.t) ->
      Layout.equal a.Codegen.Operand_staging.mem b.Codegen.Operand_staging.mem
      && a.Codegen.Operand_staging.vec = b.Codegen.Operand_staging.vec
      && a.Codegen.Operand_staging.per_phase = b.Codegen.Operand_staging.per_phase
      && a.Codegen.Operand_staging.max_phase = b.Codegen.Operand_staging.max_phase
      && a.Codegen.Operand_staging.uses_ldmatrix = b.Codegen.Operand_staging.uses_ldmatrix
      && cost_equal a.Codegen.Operand_staging.staging_cost b.Codegen.Operand_staging.staging_cost
  | _ -> false

let mechanism_equal a b =
  match (a, b) with
  | Codegen.Conversion.No_op, Codegen.Conversion.No_op
  | Codegen.Conversion.Register_permute, Codegen.Conversion.Register_permute
  | Codegen.Conversion.Global_roundtrip, Codegen.Conversion.Global_roundtrip ->
      true
  | Codegen.Conversion.Warp_shuffle a, Codegen.Conversion.Warp_shuffle b
  | Codegen.Conversion.Warp_shuffle_compressed a, Codegen.Conversion.Warp_shuffle_compressed b
    ->
      shuffle_equal a b
  | Codegen.Conversion.Shared_memory a, Codegen.Conversion.Shared_memory b -> swizzle_equal a b
  | _ -> false

let plan_equal (a : Codegen.Conversion.plan) (b : Codegen.Conversion.plan) =
  Layout.equal a.Codegen.Conversion.src b.Codegen.Conversion.src
  && Layout.equal a.Codegen.Conversion.dst b.Codegen.Conversion.dst
  && a.Codegen.Conversion.byte_width = b.Codegen.Conversion.byte_width
  && mechanism_equal a.Codegen.Conversion.mechanism b.Codegen.Conversion.mechanism

let shuffle_result_equal a b =
  match (a, b) with
  | Ok a, Ok b -> shuffle_equal a b
  | Error a, Error b -> String.equal a b
  | _ -> false

(* A deterministic pool of CTA-wide blocked pairs (the test_transval
   family): same CTA shape on both sides so every mechanism has a
   warp-level lowering, varied enough to hit no-op, register-permute,
   shuffle and shared-memory plans. *)
let cta_pairs () =
  let mk ~spt1 ~ord ~wpc =
    let spt = if ord.(0) = 1 then [| 1; spt1 |] else [| spt1; 1 |] in
    let tpw = if ord.(0) = 1 then [| 4; 8 |] else [| 8; 4 |] in
    Blocked.make
      {
        shape = [| 32; 32 |];
        size_per_thread = spt;
        threads_per_warp = tpw;
        warps_per_cta = wpc;
        order = ord;
      }
  in
  let layouts =
    List.concat_map
      (fun spt1 ->
        List.concat_map
          (fun ord ->
            List.map (fun wpc -> mk ~spt1 ~ord ~wpc) [ [| 1; 4 |]; [| 4; 1 |]; [| 2; 2 |] ])
          [ [| 1; 0 |]; [| 0; 1 |] ])
      [ 1; 2; 4 ]
  in
  List.concat_map (fun a -> List.filteri (fun i _ -> i mod 5 = 0) (List.map (fun b -> (a, b)) layouts)) layouts
  |> List.filteri (fun i _ -> i mod 4 = 0)
