(* The beam-search layout-assignment strategy (Assign_search):

   - a 216-row golden sweep (kernels x machines x modes, beam 1)
     pinning the greedy/search objectives and the winning script —
     search is never worse than greedy and strictly better on a healthy
     fraction of the rows;
   - a qcheck property on random engine-path programs: the search
     objective never exceeds greedy's, and both assignments pass full
     translation validation;
   - determinism: the winner and its cost are identical for any
     [domains] count.

   Regenerate the golden table after an intentional engine change with

     SEARCH_GOLDEN_REGEN=1 dune exec test/test_search.exe *)

open Tir

let params = { Assign_search.beam = 1; domains = 1 }

let modes = [ (Engine.Linear, "linear"); (Engine.Legacy_mode, "legacy") ]

let machines =
  List.map
    (fun (m : Gpusim.Machine.t) -> (m.Gpusim.Machine.name, m))
    Gpusim.Machine.all_with_extras

let row (m : Gpusim.Machine.t) (k : Kernels.kernel) mode mode_name =
  let size = List.hd k.Kernels.sizes in
  let o = Assign_search.run m ~mode ~params (k.Kernels.build ~size) in
  let s = o.Assign_search.stats in
  Printf.sprintf "%s|%s|%s|%.4f %.4f|%s" k.Kernels.name m.Gpusim.Machine.name mode_name
    s.Assign_search.greedy_cost s.Assign_search.best_cost
    (String.concat "," (List.map string_of_int o.Assign_search.script))

let all_rows () =
  List.concat_map
    (fun (_, m) ->
      List.concat_map
        (fun k -> List.map (fun (mode, name) -> row m k mode name) modes)
        Kernels.all)
    machines

(* {1 The golden table}

   kernel|machine|mode|greedy_objective search_objective|winning script *)

let golden = {golden|
gemm|RTX4090|linear|20416.0000 20344.0000|0,2
gemm|RTX4090|legacy|21196.0000 21196.0000|
bf16xint16_gemm|RTX4090|linear|20420.0000 20348.0000|0,2
bf16xint16_gemm|RTX4090|legacy|21200.0000 21200.0000|
int4_gemm|RTX4090|linear|19396.0000 19216.0000|0,1
int4_gemm|RTX4090|legacy|20618.0000 20618.0000|
fp8_gemm|RTX4090|linear|14956.0000 14776.0000|0,1
fp8_gemm|RTX4090|legacy|16250.0000 16250.0000|
grouped_gemm|RTX4090|linear|63312.0000 63184.0000|0,2,0,2
grouped_gemm|RTX4090|legacy|66528.0000 66528.0000|
addmm|RTX4090|linear|89504.0000 87192.0000|0,0,0,1
addmm|RTX4090|legacy|93472.0000 90456.0000|0,0,0,1
bmm|RTX4090|linear|18424.0000 18360.0000|0,2
bmm|RTX4090|legacy|19672.0000 19672.0000|
template_attention|RTX4090|linear|20636.0000 20500.0000|0,1,0,2
template_attention|RTX4090|legacy|21832.0000 21434.0000|0,0,0,0,1,1
flex_attention|RTX4090|linear|20644.0000 20508.0000|0,1,0,2
flex_attention|RTX4090|legacy|21840.0000 21442.0000|0,0,0,0,1,1
attention_bwd|RTX4090|linear|19160.0000 18120.0000|0,1,2,1
attention_bwd|RTX4090|legacy|21256.0000 20482.0000|0,0,0,1
welford|RTX4090|linear|35360.0000 35360.0000|
welford|RTX4090|legacy|37852.0000 36178.0000|0,1
gather_gemv|RTX4090|linear|69880.0000 67696.0000|2,0,2
gather_gemv|RTX4090|legacy|81862.0000 78526.0000|2,0,2
rope|RTX4090|linear|32368.0000 28528.0000|0,0,1
rope|RTX4090|legacy|28128.0000 26120.0000|1,0,1
embedding|RTX4090|linear|136968.0000 132608.0000|2
embedding|RTX4090|legacy|159768.0000 153104.0000|2
softmax|RTX4090|linear|35344.0000 35344.0000|
softmax|RTX4090|legacy|37836.0000 36162.0000|0,1
layer_norm|RTX4090|linear|35344.0000 35344.0000|
layer_norm|RTX4090|legacy|37836.0000 36162.0000|0,1
rms_norm|RTX4090|linear|34120.0000 34120.0000|
rms_norm|RTX4090|legacy|35366.0000 35306.0000|0,1
cross_entropy|RTX4090|linear|83144.0000 78528.0000|0,1
cross_entropy|RTX4090|legacy|87614.0000 81418.0000|0,1
fused_linear_cross_entropy|RTX4090|linear|95432.0000 88496.0000|0,0,1
fused_linear_cross_entropy|RTX4090|legacy|131722.0000 125526.0000|0,0,1
cumsum|RTX4090|linear|36160.0000 36160.0000|
cumsum|RTX4090|legacy|36160.0000 36160.0000|
jagged_sum|RTX4090|linear|37384.0000 37384.0000|
jagged_sum|RTX4090|legacy|38630.0000 35370.0000|0,1
softmax_bwd|RTX4090|linear|50600.0000 50600.0000|
softmax_bwd|RTX4090|legacy|51846.0000 51846.0000|
jagged_mean|RTX4090|linear|27960.0000 26072.0000|2,2
jagged_mean|RTX4090|legacy|28598.0000 28570.0000|0,0,1
low_mem_dropout|RTX4090|linear|33088.0000 33088.0000|
low_mem_dropout|RTX4090|legacy|33088.0000 33088.0000|
swiglu|RTX4090|linear|49568.0000 49568.0000|
swiglu|RTX4090|legacy|49568.0000 49568.0000|
geglu|RTX4090|linear|49600.0000 49600.0000|
geglu|RTX4090|legacy|49600.0000 49600.0000|
vector_add|RTX4090|linear|49504.0000 49504.0000|
vector_add|RTX4090|legacy|49504.0000 49504.0000|
gemm|GH200|linear|13504.0000 13432.0000|0,2
gemm|GH200|legacy|13388.0000 13388.0000|
bf16xint16_gemm|GH200|linear|13508.0000 13436.0000|0,2
bf16xint16_gemm|GH200|legacy|13392.0000 13392.0000|
int4_gemm|GH200|linear|12868.0000 12688.0000|0,1
int4_gemm|GH200|legacy|12682.0000 12682.0000|
fp8_gemm|GH200|linear|9964.0000 9784.0000|0,1
fp8_gemm|GH200|legacy|9850.0000 9850.0000|
grouped_gemm|GH200|linear|41808.0000 41680.0000|0,2,0,2
grouped_gemm|GH200|legacy|41440.0000 41440.0000|
addmm|GH200|linear|58784.0000 56472.0000|0,0,0,1
addmm|GH200|legacy|59168.0000 56152.0000|0,0,0,1
bmm|GH200|linear|12280.0000 12216.0000|0,2
bmm|GH200|legacy|11736.0000 11736.0000|
template_attention|GH200|linear|14492.0000 14348.0000|0,2,0,2
template_attention|GH200|legacy|13896.0000 13498.0000|0,0,0,0,1,1
flex_attention|GH200|linear|14500.0000 14356.0000|0,2,0,2
flex_attention|GH200|legacy|13904.0000 13506.0000|0,0,0,0,1,1
attention_bwd|GH200|linear|13784.0000 12736.0000|0,2,2,1
attention_bwd|GH200|legacy|13192.0000 12418.0000|0,0,0,1
welford|GH200|linear|23072.0000 23072.0000|
welford|GH200|legacy|25564.0000 23890.0000|0,1
gather_gemv|GH200|linear|45256.0000 43072.0000|2,0,2
gather_gemv|GH200|legacy|57262.0000 53926.0000|2,0,2
rope|GH200|linear|23152.0000 19312.0000|0,0,1
rope|GH200|legacy|18912.0000 16904.0000|1,0,1
embedding|GH200|linear|87816.0000 83456.0000|2
embedding|GH200|legacy|110616.0000 103952.0000|2
softmax|GH200|linear|23056.0000 23056.0000|
softmax|GH200|legacy|25548.0000 23874.0000|0,1
layer_norm|GH200|linear|23056.0000 23056.0000|
layer_norm|GH200|legacy|25548.0000 23874.0000|0,1
rms_norm|GH200|linear|21832.0000 21832.0000|
rms_norm|GH200|legacy|23078.0000 23018.0000|0,1
cross_entropy|GH200|linear|58376.0000 53760.0000|0,1
cross_entropy|GH200|legacy|62942.0000 56746.0000|0,1
fused_linear_cross_entropy|GH200|linear|70040.0000 63104.0000|0,0,1
fused_linear_cross_entropy|GH200|legacy|77610.0000 71414.0000|0,0,1
cumsum|GH200|linear|23872.0000 23872.0000|
cumsum|GH200|legacy|23872.0000 23872.0000|
jagged_sum|GH200|linear|25096.0000 25096.0000|
jagged_sum|GH200|legacy|26342.0000 23082.0000|0,1
softmax_bwd|GH200|linear|32168.0000 32168.0000|
softmax_bwd|GH200|legacy|33414.0000 33414.0000|
jagged_mean|GH200|linear|18744.0000 16856.0000|2,2
jagged_mean|GH200|legacy|19382.0000 19354.0000|0,0,1
low_mem_dropout|GH200|linear|20800.0000 20800.0000|
low_mem_dropout|GH200|legacy|20800.0000 20800.0000|
swiglu|GH200|linear|31136.0000 31136.0000|
swiglu|GH200|legacy|31136.0000 31136.0000|
geglu|GH200|linear|31168.0000 31168.0000|
geglu|GH200|legacy|31168.0000 31168.0000|
vector_add|GH200|linear|31072.0000 31072.0000|
vector_add|GH200|legacy|31072.0000 31072.0000|
gemm|MI250|linear|18050.0000 17742.0000|0,1
gemm|MI250|legacy|18706.0000 18706.0000|
bf16xint16_gemm|MI250|linear|18052.0000 17744.0000|0,1
bf16xint16_gemm|MI250|legacy|18708.0000 18708.0000|
int4_gemm|MI250|linear|17200.0000 16616.0000|0,1
int4_gemm|MI250|legacy|18262.0000 18262.0000|
fp8_gemm|MI250|linear|13240.0000 12656.0000|0,1
fp8_gemm|MI250|legacy|14430.0000 14430.0000|
grouped_gemm|MI250|linear|55648.0000 55112.0000|0,1,0,1
grouped_gemm|MI250|legacy|58696.0000 58696.0000|
addmm|MI250|linear|80400.0000 80008.0000|0,2,0,1
addmm|MI250|legacy|82048.0000 79512.0000|0,0,0,1
bmm|MI250|linear|16508.0000 16240.0000|0,1
bmm|MI250|legacy|17448.0000 17448.0000|
template_attention|MI250|linear|18766.0000 18204.0000|0,1,0,1
template_attention|MI250|legacy|19218.0000 18892.0000|0,0,0,0,1,1
flex_attention|MI250|linear|18770.0000 18208.0000|0,1,0,1
flex_attention|MI250|legacy|19222.0000 18896.0000|0,0,0,0,1,1
attention_bwd|MI250|linear|18590.0000 17762.0000|0,1,1,1
attention_bwd|MI250|legacy|18882.0000 18176.0000|0,0,0,1
welford|MI250|linear|29928.0000 29928.0000|
welford|MI250|legacy|32420.0000 31026.0000|0,1
gather_gemv|MI250|linear|66992.0000 59424.0000|2,0,2
gather_gemv|MI250|legacy|67170.0000 64086.0000|2,0,2
rope|MI250|linear|25912.0000 23736.0000|0,0,1
rope|MI250|legacy|24568.0000 22664.0000|1,0,1
embedding|MI250|linear|121736.0000 115456.0000|2
embedding|MI250|legacy|132120.0000 125712.0000|2
softmax|MI250|linear|29920.0000 29920.0000|
softmax|MI250|legacy|32412.0000 31018.0000|0,1
layer_norm|MI250|linear|29920.0000 29920.0000|
layer_norm|MI250|legacy|32412.0000 31018.0000|0,1
rms_norm|MI250|linear|29328.0000 29328.0000|
rms_norm|MI250|legacy|30574.0000 30546.0000|0,1
cross_entropy|MI250|linear|67416.0000 67416.0000|
cross_entropy|MI250|legacy|74454.0000 68146.0000|0,1
fused_linear_cross_entropy|MI250|linear|107134.0000 94598.0000|0,0,1
fused_linear_cross_entropy|MI250|legacy|116376.0000 110068.0000|0,0,1
cumsum|MI250|linear|31056.0000 30128.0000|3
cumsum|MI250|legacy|31056.0000 30128.0000|3
jagged_sum|MI250|linear|31648.0000 31648.0000|
jagged_sum|MI250|legacy|32894.0000 30978.0000|0,1
softmax_bwd|MI250|linear|43712.0000 43712.0000|
softmax_bwd|MI250|legacy|44958.0000 44958.0000|
jagged_mean|MI250|linear|23192.0000 23192.0000|
jagged_mean|MI250|legacy|23838.0000 23826.0000|0,0,1
low_mem_dropout|MI250|linear|28832.0000 28832.0000|
low_mem_dropout|MI250|legacy|28832.0000 28832.0000|
swiglu|MI250|linear|43216.0000 43216.0000|
swiglu|MI250|legacy|43216.0000 43216.0000|
geglu|MI250|linear|43232.0000 43232.0000|
geglu|MI250|legacy|43232.0000 43232.0000|
vector_add|MI250|linear|43184.0000 43184.0000|
vector_add|MI250|legacy|43184.0000 43184.0000|
gemm|PVC|linear|16048.0000 15992.0000|0,2
gemm|PVC|legacy|17664.0000 17664.0000|
bf16xint16_gemm|PVC|linear|16056.0000 16000.0000|0,2
bf16xint16_gemm|PVC|legacy|17672.0000 17672.0000|
int4_gemm|PVC|linear|15096.0000 15096.0000|
int4_gemm|PVC|legacy|17340.0000 17340.0000|
fp8_gemm|PVC|linear|11368.0000 11368.0000|
fp8_gemm|PVC|legacy|13724.0000 13724.0000|
grouped_gemm|PVC|linear|49024.0000 49024.0000|
grouped_gemm|PVC|legacy|55440.0000 55440.0000|
addmm|PVC|linear|71096.0000 70328.0000|0,0,0,1
addmm|PVC|legacy|77856.0000 72856.0000|0,0,0,1
bmm|PVC|linear|14272.0000 14272.0000|
bmm|PVC|legacy|16408.0000 16408.0000|
template_attention|PVC|linear|20248.0000 16184.0000|0,2,0,0,1
template_attention|PVC|legacy|19796.0000 19238.0000|0,0,0,0,1,1
flex_attention|PVC|linear|20264.0000 16200.0000|0,2,0,0,1
flex_attention|PVC|legacy|19812.0000 19254.0000|0,0,0,0,1,1
attention_bwd|PVC|linear|18944.0000 16968.0000|0,2,0,1
attention_bwd|PVC|legacy|19604.0000 18294.0000|0,0,0,1
welford|PVC|linear|29104.0000 29104.0000|
welford|PVC|legacy|32076.0000 30002.0000|0,1
gather_gemv|PVC|linear|56312.0000 51952.0000|2,0,2
gather_gemv|PVC|legacy|78294.0000 74702.0000|2,0,2
rope|PVC|linear|34016.0000 20456.0000|1
rope|PVC|legacy|25008.0000 20360.0000|1,0,1
embedding|PVC|linear|110088.0000 101376.0000|2
embedding|PVC|legacy|149528.0000 142352.0000|2
softmax|PVC|linear|29072.0000 29072.0000|
softmax|PVC|legacy|32044.0000 29970.0000|0,1
layer_norm|PVC|linear|29072.0000 29072.0000|
layer_norm|PVC|legacy|32044.0000 29970.0000|0,1
rms_norm|PVC|linear|26952.0000 26952.0000|
rms_norm|PVC|legacy|28438.0000 28314.0000|0,1
cross_entropy|PVC|linear|75592.0000 66368.0000|0,1
cross_entropy|PVC|legacy|82142.0000 75434.0000|0,1
fused_linear_cross_entropy|PVC|linear|130560.0000 99840.0000|0,0,1
fused_linear_cross_entropy|PVC|legacy|126526.0000 119818.0000|0,0,1
cumsum|PVC|linear|30048.0000 30048.0000|
cumsum|PVC|legacy|30048.0000 30048.0000|
jagged_sum|PVC|linear|32168.0000 32168.0000|
jagged_sum|PVC|legacy|33654.0000 28410.0000|0,1
softmax_bwd|PVC|linear|39432.0000 39432.0000|
softmax_bwd|PVC|legacy|40918.0000 40918.0000|
jagged_mean|PVC|linear|19880.0000 19880.0000|
jagged_mean|PVC|legacy|25774.0000 25714.0000|0,0,1
low_mem_dropout|PVC|linear|25216.0000 25216.0000|
low_mem_dropout|PVC|legacy|25216.0000 25216.0000|
swiglu|PVC|linear|37696.0000 37696.0000|
swiglu|PVC|legacy|37696.0000 37696.0000|
geglu|PVC|linear|37760.0000 37760.0000|
geglu|PVC|legacy|37760.0000 37760.0000|
vector_add|PVC|linear|37568.0000 37568.0000|
vector_add|PVC|legacy|37568.0000 37568.0000|
|golden}

let golden_lines () =
  String.split_on_char '\n' golden |> List.filter (fun l -> String.trim l <> "")

let test_golden () =
  let expected = golden_lines () in
  Alcotest.(check int)
    "table covers kernels x machines x modes"
    (List.length Kernels.all * List.length machines * 2)
    (List.length expected);
  let got = all_rows () in
  List.iter2
    (fun e g ->
      let label =
        match String.split_on_char '|' e with
        | kernel :: machine :: mode :: _ -> Printf.sprintf "%s on %s (%s)" kernel machine mode
        | _ -> e
      in
      Alcotest.(check string) label e g)
    expected got

let test_never_worse () =
  let wins = ref 0 in
  List.iter
    (fun line ->
      match String.split_on_char '|' line with
      | [ _; _; _; costs; _ ] -> (
          match String.split_on_char ' ' costs with
          | [ greedy; search ] ->
              let greedy = float_of_string greedy and search = float_of_string search in
              if search > greedy then
                Alcotest.failf "search worse than greedy on %s" line;
              if search < greedy then incr wins
          | _ -> Alcotest.failf "malformed cost pair: %s" costs)
      | _ -> Alcotest.failf "malformed golden line: %s" line)
    (golden_lines ());
  if !wins < 3 then
    Alcotest.failf "search strictly better on only %d row(s), expected >= 3" !wins

(* {1 Random programs}

   Same op-DAG shape as test_engine_fuzz's generator: 2-D f32 values,
   elementwise/reduce-broadcast/transpose/scan chains. *)

let gen_program =
  QCheck.Gen.(
    let* rows = oneofl [ 16; 32 ] in
    let* cols = oneofl [ 32; 64 ] in
    let shape = [| rows; cols |] in
    let* n_ops = int_range 3 10 in
    let* seeds = list_repeat n_ops (pair (int_bound 6) (int_bound 1000)) in
    return
      (let p = Program.create () in
       let x = Program.load p ~name:"x" ~shape ~dtype:Tensor_lib.Dtype.F32 () in
       let y = Program.load p ~name:"y" ~shape ~dtype:Tensor_lib.Dtype.F32 () in
       let live = ref [ x; y ] in
       let pick k = List.nth !live (k mod List.length !live) in
       List.iter
         (fun (op, k) ->
           let v = pick k in
           let id =
             match op with
             | 0 | 1 -> Program.elementwise p ~name:"exp" [ v ]
             | 2 -> Program.elementwise p ~name:"add" [ v; pick (k + 1) ]
             | 3 ->
                 let r = Program.reduce p v ~axis:1 in
                 let e = Program.expand_dims p r ~axis:1 in
                 Program.broadcast p e ~shape
             | 4 ->
                 let t = Program.trans p v ~perm:[| 1; 0 |] in
                 Program.trans p t ~perm:[| 1; 0 |]
             | 5 -> Program.scan p v ~axis:1 ~reverse:(k land 1 = 1)
             | _ -> Program.elementwise p ~name:"mul" [ v; pick (k + 7) ]
           in
           live := id :: !live)
         seeds;
       ignore (Program.store p (List.hd !live));
       p))

let arb_program =
  QCheck.make gen_program ~print:(fun p -> Format.asprintf "%a" Program.pp p)

let m = Gpusim.Machine.gh200

let prop_search_never_worse =
  QCheck.Test.make ~name:"search <= greedy on random programs, both certified" ~count:25
    arb_program (fun p ->
      let o = Assign_search.run m ~mode:Engine.Linear ~params p in
      let s = o.Assign_search.stats in
      if s.Assign_search.best_cost > s.Assign_search.greedy_cost then
        QCheck.Test.fail_reportf "search %.4f > greedy %.4f" s.Assign_search.best_cost
          s.Assign_search.greedy_cost;
      let certified chooser =
        let report =
          match chooser with
          | None -> Certify.run m ~mode:Engine.Linear p
          | Some c -> Certify.run m ~mode:Engine.Linear ~chooser:c p
        in
        match Certify.cert_errors report with
        | [] -> true
        | errs ->
            QCheck.Test.fail_reportf "refuted: %a" Linear_layout.Diagnostics.pp_list errs
      in
      certified None
      && certified (Some (Assign_search.chooser_of_script o.Assign_search.script)))

(* {1 Determinism across domains} *)

let test_deterministic () =
  List.iter
    (fun kernel ->
      let k = Kernels.find kernel in
      let size = List.hd k.Kernels.sizes in
      let outcome domains =
        Assign_search.run m ~mode:Engine.Linear
          ~params:{ Assign_search.beam = 2; domains }
          (k.Kernels.build ~size)
      in
      let reference = outcome 1 in
      List.iter
        (fun domains ->
          let o = outcome domains in
          Alcotest.(check (list int))
            (Printf.sprintf "%s: script, %d domain(s)" kernel domains)
            reference.Assign_search.script o.Assign_search.script;
          Alcotest.(check (float 0.))
            (Printf.sprintf "%s: objective, %d domain(s)" kernel domains)
            reference.Assign_search.stats.Assign_search.best_cost
            o.Assign_search.stats.Assign_search.best_cost)
        [ 2; 3; 5 ])
    [ "gemm"; "softmax"; "template_attention" ]

let () =
  match Sys.getenv_opt "SEARCH_GOLDEN_REGEN" with
  | Some _ -> List.iter print_endline (all_rows ())
  | None ->
      Alcotest.run "search"
        [
          ( "golden",
            [
              Alcotest.test_case "search-vs-greedy sweep vs seed" `Slow test_golden;
              Alcotest.test_case "never worse, strictly better >= 3" `Quick
                test_never_worse;
            ] );
          ( "properties",
            [ QCheck_alcotest.to_alcotest prop_search_never_worse ] );
          ( "determinism",
            [ Alcotest.test_case "identical for any domain count" `Quick test_deterministic ]
          );
        ]
