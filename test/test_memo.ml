(* The memoized/hash-consed layout operations (Layout.Memo) and the
   plan cache (Codegen.Plan_cache) must be observationally identical to
   the plain implementations — and must actually get hit. *)

open Linear_layout

let machine = Gpusim.Machine.gh200

(* Random small invertible layouts over a fixed labeled space (same
   construction as test_laws). *)
let gen_permutation_layout ~ins ~outs =
  QCheck.Gen.(
    let total = List.fold_left (fun a (_, b) -> a + b) 0 ins in
    let* perm =
      let* swaps = list_repeat total (int_bound (total - 1)) in
      let a = Array.init total Fun.id in
      List.iteri
        (fun i j ->
          let t = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- t)
        swaps;
      return a
    in
    let cols = Array.map (fun p -> 1 lsl p) perm in
    return (Layout.of_matrix ~ins ~outs (F2.Bitmatrix.make ~rows:total cols)))

let space = [ (Dims.register, 2); (Dims.lane, 3); (Dims.warp, 1) ]
let out_space = [ (Dims.dim 0, 3); (Dims.dim 1, 3) ]

let arb_perm =
  QCheck.make (gen_permutation_layout ~ins:space ~outs:out_space) ~print:Layout.to_string

let arb_endo =
  QCheck.make (gen_permutation_layout ~ins:space ~outs:space) ~print:Layout.to_string

(* {1 Memo agreement} *)

let prop_memo_compose =
  QCheck.Test.make ~name:"Memo.compose = compose" ~count:200
    (QCheck.pair arb_perm arb_endo)
    (fun (g, f) -> Layout.equal (Layout.Memo.compose g f) (Layout.compose g f))

let prop_memo_invert =
  QCheck.Test.make ~name:"Memo.invert = invert" ~count:200 arb_perm (fun l ->
      Layout.equal (Layout.Memo.invert l) (Layout.invert l))

let prop_memo_pseudo_invert =
  QCheck.Test.make ~name:"Memo.pseudo_invert = pseudo_invert" ~count:200 arb_perm (fun l ->
      (* Forget a register bit to exercise the non-invertible path. *)
      let l = Layout.resize_in l Dims.register 3 in
      Layout.equal (Layout.Memo.pseudo_invert l) (Layout.pseudo_invert l))

let prop_memo_flatten_outs =
  QCheck.Test.make ~name:"Memo.flatten_outs = flatten_outs" ~count:200 arb_perm (fun l ->
      Layout.equal (Layout.Memo.flatten_outs l) (Layout.flatten_outs l))

let prop_memo_flat_columns =
  QCheck.Test.make ~name:"Memo.flat_columns = flat_columns" ~count:200 arb_perm (fun l ->
      let flat = Layout.flatten_outs l in
      List.for_all
        (fun d -> Layout.Memo.flat_columns flat d = Layout.flat_columns flat d)
        [ Dims.register; Dims.lane; Dims.warp ])

let prop_memo_num_consecutive =
  QCheck.Test.make ~name:"Memo.num_consecutive = num_consecutive" ~count:200 arb_perm
    (fun l ->
      Layout.Memo.num_consecutive l ~in_dim:Dims.register
      = Layout.num_consecutive l ~in_dim:Dims.register)

let prop_memo_free_masks =
  QCheck.Test.make ~name:"Memo.free_variable_masks = free_variable_masks" ~count:200
    arb_perm (fun l ->
      let l = Sliced.make l ~dim:1 in
      Layout.Memo.free_variable_masks l = Layout.free_variable_masks l)

let prop_memo_to_matrix =
  QCheck.Test.make ~name:"Memo.to_matrix / apply_flat = plain" ~count:200 arb_perm
    (fun l ->
      let flat = Layout.flatten_outs l in
      F2.Bitmatrix.equal (Layout.Memo.to_matrix flat) (Layout.to_matrix flat)
      && List.for_all
           (fun v -> Layout.Memo.apply_flat flat v = Layout.apply_flat flat v)
           [ 0; 1; 17; (1 lsl Layout.total_in_bits flat) - 1 ])

let prop_intern_hash_consing =
  QCheck.Test.make ~name:"intern is idempotent and canonicalizing" ~count:200 arb_perm
    (fun l ->
      let a = Layout.Memo.intern l in
      (* A structurally equal but freshly built layout interns to the
         same physical representative. *)
      let b = Layout.Memo.intern (Layout.invert (Layout.invert l)) in
      a == b && Layout.Memo.intern a == a && Layout.Memo.hash a = Layout.Memo.hash l)

(* {1 Plan cache} *)

let bench_src () = Blocked.default ~elems_per_thread:8 ~warp_size:32 ~num_warps:4 [| 128; 64 |]
let bench_dst () = Mma.operand ~idx:0 ~bitwidth:16 ~warps:[| 4; 1 |] ~shape:[| 128; 64 |] ()

let test_plan_cache_agrees () =
  let src = bench_src () and dst = bench_dst () in
  let direct = Codegen.Conversion.plan machine ~src ~dst ~byte_width:2 in
  Codegen.Plan_cache.clear ();
  Codegen.Plan_cache.reset_stats ();
  let cached = Codegen.Plan_cache.conversion machine ~src ~dst ~byte_width:2 in
  let again = Codegen.Plan_cache.conversion machine ~src ~dst ~byte_width:2 in
  Alcotest.(check string)
    "same mechanism"
    (Codegen.Conversion.mechanism_name direct.Codegen.Conversion.mechanism)
    (Codegen.Conversion.mechanism_name cached.Codegen.Conversion.mechanism);
  Alcotest.(check (float 0.0))
    "same cost estimate"
    (Gpusim.Cost.estimate machine (Codegen.Conversion.cost machine direct))
    (Gpusim.Cost.estimate machine (Codegen.Conversion.cost machine cached));
  Alcotest.(check bool) "second lookup is a hit" true (Codegen.Plan_cache.hits () >= 1);
  Alcotest.(check bool) "first lookup was a miss" true (Codegen.Plan_cache.misses () >= 1);
  (* The cached plan is the very object computed on the miss. *)
  Alcotest.(check bool) "physically shared" true (cached == again)

let test_plan_cache_swizzle_shuffle () =
  let src = bench_src () and dst = bench_dst () in
  let direct = Codegen.Swizzle_opt.optimal machine ~src ~dst ~byte_width:2 in
  let cached = Codegen.Plan_cache.swizzle machine ~src ~dst ~byte_width:2 in
  Alcotest.(check bool)
    "same swizzled memory layout" true
    (Layout.equal direct.Codegen.Swizzle_opt.mem cached.Codegen.Swizzle_opt.mem);
  Alcotest.(check int)
    "same store wavefronts" direct.Codegen.Swizzle_opt.store_wavefronts
    cached.Codegen.Swizzle_opt.store_wavefronts;
  let s_direct = Codegen.Shuffle.plan machine ~src ~dst ~byte_width:2 in
  let s_cached = Codegen.Plan_cache.shuffle machine ~src ~dst ~byte_width:2 in
  Alcotest.(check bool)
    "shuffle plan agrees" true
    (match (s_direct, s_cached) with
    | Ok a, Ok b -> a.Codegen.Shuffle.rounds = b.Codegen.Shuffle.rounds
    | Error a, Error b -> String.equal a b
    | _ -> false)

(* {1 Engine-level cache traffic} *)

let test_engine_memo_hits () =
  Layout.Memo.clear ();
  Layout.Memo.reset_stats ();
  Codegen.Plan_cache.clear ();
  Codegen.Plan_cache.reset_stats ();
  let gemm = Tir.Kernels.find "gemm" in
  ignore (Tir.Engine.run machine ~mode:Tir.Engine.Linear (gemm.Tir.Kernels.build ~size:256));
  Alcotest.(check bool) "memo misses nonzero" true (Layout.Memo.misses () > 0);
  Alcotest.(check bool) "memo hits nonzero" true (Layout.Memo.hits () > 0);
  Alcotest.(check bool) "plan cache populated" true (Codegen.Plan_cache.misses () > 0);
  (* A second identical run plans nothing afresh. *)
  let misses_before = Codegen.Plan_cache.misses () in
  ignore (Tir.Engine.run machine ~mode:Tir.Engine.Linear (gemm.Tir.Kernels.build ~size:256));
  Alcotest.(check int) "warm run adds no plan misses" misses_before
    (Codegen.Plan_cache.misses ());
  Alcotest.(check bool) "warm run hits the plan cache" true (Codegen.Plan_cache.hits () > 0)

(* {1 Autotune determinism across domain counts} *)

let test_autotune_deterministic () =
  let gemm = Tir.Kernels.find "gemm" in
  let build = gemm.Tir.Kernels.build in
  let c1, r1 = Tir.Autotune.best machine ~mode:Tir.Engine.Linear ~build ~size:256 in
  let c4, r4 =
    Tir.Autotune.best ~domains:4 machine ~mode:Tir.Engine.Linear ~build ~size:256
  in
  Alcotest.(check int) "same winning config" c1.Tir.Autotune.num_warps
    c4.Tir.Autotune.num_warps;
  Alcotest.(check (float 0.0))
    "same winning cost"
    (Tir.Engine.time machine r1)
    (Tir.Engine.time machine r4)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "memo"
    [
      ( "layout-memo",
        q
          [
            prop_memo_compose;
            prop_memo_invert;
            prop_memo_pseudo_invert;
            prop_memo_flatten_outs;
            prop_memo_flat_columns;
            prop_memo_num_consecutive;
            prop_memo_free_masks;
            prop_memo_to_matrix;
            prop_intern_hash_consing;
          ] );
      ( "plan-cache",
        [
          Alcotest.test_case "conversion agrees with direct plan" `Quick test_plan_cache_agrees;
          Alcotest.test_case "swizzle and shuffle agree" `Quick test_plan_cache_swizzle_shuffle;
        ] );
      ( "engine",
        [
          Alcotest.test_case "engine run exercises the caches" `Quick test_engine_memo_hits;
          Alcotest.test_case "autotune is domain-count invariant" `Quick
            test_autotune_deterministic;
        ] );
    ]
