(* Tests for the generic mma lowering: the warp-ownership condition of
   Proposition 9.2 and dot execution through layouts. *)

open Linear_layout

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let triple ~warps ~m ~n ~k ~bitwidth =
  ( Mma.output ~bitwidth:32 ~warps ~shape:[| m; n |] (),
    Mma.operand ~idx:0 ~bitwidth ~warps ~shape:[| m; k |] (),
    Mma.operand ~idx:1 ~bitwidth ~warps ~shape:[| k; n |] () )

let test_ownership_holds_for_operand_layouts () =
  List.iter
    (fun (warps, m, n, k, bw) ->
      let out, lhs, rhs = triple ~warps ~m ~n ~k ~bitwidth:bw in
      match Codegen.Mma_lower.check_ownership ~out ~lhs ~rhs with
      | Ok () -> ()
      | Error v ->
          Alcotest.failf "warps=[%d,%d] %dx%dx%d bw=%d: warp %d missing %s" warps.(0)
            warps.(1) m n k bw v.Codegen.Mma_lower.warp v.Codegen.Mma_lower.missing)
    [
      ([| 1; 1 |], 16, 16, 16, 16);
      ([| 2; 1 |], 32, 32, 32, 16);
      ([| 4; 1 |], 64, 64, 64, 16);
      ([| 2; 2 |], 32, 32, 64, 16);
      ([| 2; 2 |], 64, 32, 32, 8);
      ([| 1; 4 |], 16, 64, 32, 32);
    ]

let test_ownership_fails_for_naive_blocked () =
  (* Blocked operands distribute rows of A across warps the same way as
     C, but distribute B by rows too — warps owning C columns they
     don't hold B columns for. *)
  let out = Mma.output ~bitwidth:32 ~warps:[| 1; 4 |] ~shape:[| 32; 64 |] () in
  let lhs = Blocked.default ~elems_per_thread:4 ~warp_size:32 ~num_warps:4 [| 32; 32 |] in
  let rhs = Blocked.default ~elems_per_thread:4 ~warp_size:32 ~num_warps:4 [| 32; 64 |] in
  match Codegen.Mma_lower.check_ownership ~out ~lhs ~rhs with
  | Ok () -> Alcotest.fail "naive blocked operands must violate warp ownership"
  | Error _ -> ()

let test_execute_dot_matches_reference () =
  let m, n, k = (32, 32, 32) in
  let out, lhs, rhs = triple ~warps:[| 2; 1 |] ~m ~n ~k ~bitwidth:16 in
  (* Integer payloads make the check exact. *)
  let a_val i kk = ((i * 3) + kk) mod 7 in
  let b_val kk j = ((kk * 5) + (2 * j)) mod 9 in
  let a = Gpusim.Dist.init lhs ~f:(fun logical -> a_val (logical / k) (logical mod k)) in
  let b = Gpusim.Dist.init rhs ~f:(fun logical -> b_val (logical / n) (logical mod n)) in
  let c = Codegen.Mma_lower.execute_dot ~out a b ~mul:( * ) ~add:( + ) ~zero:0 in
  let expected logical =
    let i = logical / n and j = logical mod n in
    let acc = ref 0 in
    for kk = 0 to k - 1 do
      acc := !acc + (a_val i kk * b_val kk j)
    done;
    !acc
  in
  check_bool "dot through layouts equals reference" true
    (Gpusim.Dist.consistent_with c ~f:expected)

let test_execute_dot_rejects_bad_layouts () =
  let out = Mma.output ~bitwidth:32 ~warps:[| 1; 4 |] ~shape:[| 32; 64 |] () in
  let lhs = Blocked.default ~elems_per_thread:4 ~warp_size:32 ~num_warps:4 [| 32; 32 |] in
  let rhs = Blocked.default ~elems_per_thread:4 ~warp_size:32 ~num_warps:4 [| 32; 64 |] in
  let a = Gpusim.Dist.init lhs ~f:Fun.id in
  let b = Gpusim.Dist.init rhs ~f:Fun.id in
  match Codegen.Mma_lower.execute_dot ~out a b ~mul:( * ) ~add:( + ) ~zero:0 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "must reject layouts violating warp ownership"

let test_instruction_count () =
  let out, lhs, _ = triple ~warps:[| 2; 1 |] ~m:32 ~n:32 ~k:32 ~bitwidth:16 in
  (* 2 warps, each owning a 16x32 slab = 4 m16n8 tiles, k covered in
     two 16-deep steps. *)
  check_int "mma count" (2 * 4 * 2)
    (Codegen.Mma_lower.mma_instructions ~out ~lhs ~bitwidth:16)

let prop_operand_triples_always_own =
  let gen =
    QCheck.Gen.(
      let* wm = oneofl [ 1; 2; 4 ] in
      let* wn = oneofl [ 1; 2 ] in
      let* m = oneofl [ 32; 64 ] and* n = oneofl [ 32; 64 ] and* k = oneofl [ 32; 64 ] in
      let* bw = oneofl [ 8; 16; 32 ] in
      return ([| wm; wn |], m, n, k, bw))
  in
  QCheck.Test.make ~count:60 ~name:"operand layouts always satisfy warp ownership"
    (QCheck.make gen ~print:(fun (w, m, n, k, bw) ->
         Printf.sprintf "warps=[%d,%d] %dx%dx%d bw=%d" w.(0) w.(1) m n k bw))
    (fun (warps, m, n, k, bw) ->
      QCheck.assume (k >= 256 / bw && n >= 16 && m >= 16);
      let out, lhs, rhs = triple ~warps ~m ~n ~k ~bitwidth:bw in
      Codegen.Mma_lower.check_ownership ~out ~lhs ~rhs = Ok ())

let prop_dot_correct =
  let gen =
    QCheck.Gen.(
      let* wm = oneofl [ 1; 2 ] in
      let* m = oneofl [ 16; 32 ] and* n = oneofl [ 16; 32 ] and* k = oneofl [ 16; 32 ] in
      return ([| wm; 1 |], m, n, k))
  in
  QCheck.Test.make ~count:30 ~name:"execute_dot equals reference matmul"
    (QCheck.make gen ~print:(fun (w, m, n, k) ->
         Printf.sprintf "warps=[%d,%d] %dx%dx%d" w.(0) w.(1) m n k))
    (fun (warps, m, n, k) ->
      let out, lhs, rhs = triple ~warps ~m ~n ~k ~bitwidth:16 in
      let a = Gpusim.Dist.init lhs ~f:(fun x -> (x mod 11) - 5) in
      let b = Gpusim.Dist.init rhs ~f:(fun x -> (x mod 13) - 6) in
      let c = Codegen.Mma_lower.execute_dot ~out a b ~mul:( * ) ~add:( + ) ~zero:0 in
      let ta = Result.get_ok (Gpusim.Dist.to_logical a) in
      let tb = Result.get_ok (Gpusim.Dist.to_logical b) in
      Gpusim.Dist.consistent_with c ~f:(fun logical ->
          let i = logical / n and j = logical mod n in
          let acc = ref 0 in
          for kk = 0 to k - 1 do
            acc := !acc + (ta.((i * k) + kk) * tb.((kk * n) + j))
          done;
          !acc))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mma_lower"
    [
      ( "ownership",
        [
          Alcotest.test_case "operand layouts own their fragments" `Quick
            test_ownership_holds_for_operand_layouts;
          Alcotest.test_case "naive blocked violates" `Quick test_ownership_fails_for_naive_blocked;
        ] );
      ( "execution",
        [
          Alcotest.test_case "matches reference" `Quick test_execute_dot_matches_reference;
          Alcotest.test_case "rejects bad layouts" `Quick test_execute_dot_rejects_bad_layouts;
          Alcotest.test_case "instruction count" `Quick test_instruction_count;
        ] );
      ("properties", q [ prop_operand_triples_always_own; prop_dot_correct ]);
    ]
