(* Deterministic test-order shuffling for the order-independence CI
   job.  With TEST_SHUFFLE_SEED unset the suites run in registration
   order; with it set, suites and the cases inside each suite are
   permuted by a seeded Fisher-Yates, so any inter-test state leak
   shows up as a seed-dependent failure that the seed reproduces. *)

let shuffle_list st l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let maybe_shuffle suites =
  match Sys.getenv_opt "TEST_SHUFFLE_SEED" with
  | None -> suites
  | Some s ->
      let seed =
        try int_of_string (String.trim s)
        with _ -> failwith (Printf.sprintf "TEST_SHUFFLE_SEED=%S is not an integer" s)
      in
      let st = Random.State.make [| seed |] in
      shuffle_list st (List.map (fun (name, cases) -> (name, shuffle_list st cases)) suites)
