(* Tests for the extension features: scans, autotuning, multi-CTA
   distribution, and cross-CTA conversions. *)

open Linear_layout

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let m = Gpusim.Machine.gh200

(* {1 Scan} *)

let scan_prog ~reverse ~with_reduce =
  let p = Tir.Program.create () in
  let x = Tir.Program.load p ~shape:[| 32; 512 |] ~dtype:Tensor_lib.Dtype.F32 () in
  let x =
    if with_reduce then begin
      let r = Tir.Program.reduce p x ~axis:1 in
      let rb =
        Tir.Program.broadcast p (Tir.Program.expand_dims p r ~axis:1) ~shape:[| 32; 512 |]
      in
      Tir.Program.elementwise p [ x; rb ]
    end
    else x
  in
  let s = Tir.Program.scan p x ~axis:1 ~reverse in
  ignore (Tir.Program.store p s);
  p

let test_scan_linear () =
  let r = Tir.Engine.run m ~mode:Tir.Engine.Linear (scan_prog ~reverse:false ~with_reduce:false) in
  check_bool "uses warp shuffles" true (r.Tir.Engine.cost.Gpusim.Cost.shuffles > 0);
  check_bool "no failures" true (r.Tir.Engine.unsupported = []);
  (* Reverse scans are free relabelings under affine layouts. *)
  let rr = Tir.Engine.run m ~mode:Tir.Engine.Linear (scan_prog ~reverse:true ~with_reduce:true) in
  check_bool "reverse + reduce fine in linear" true (rr.Tir.Engine.unsupported = [])

let test_scan_legacy_bugs () =
  (* The two cited legacy scan bugs: reverse=True miscompiles, and
     mixing tl.sum with tl.cumsum miscompiles. *)
  let rev = Tir.Engine.run m ~mode:Tir.Engine.Legacy_mode (scan_prog ~reverse:true ~with_reduce:false) in
  check_bool "reverse scan flagged" true (rev.Tir.Engine.unsupported <> []);
  let mixed =
    Tir.Engine.run m ~mode:Tir.Engine.Legacy_mode (scan_prog ~reverse:false ~with_reduce:true)
  in
  check_bool "sum+cumsum flagged" true (mixed.Tir.Engine.unsupported <> []);
  let plain =
    Tir.Engine.run m ~mode:Tir.Engine.Legacy_mode (scan_prog ~reverse:false ~with_reduce:false)
  in
  check_bool "plain scan fine in legacy" true (plain.Tir.Engine.unsupported = [])

(* {1 Autotune} *)

let test_autotune_beats_or_ties_default () =
  List.iter
    (fun name ->
      let k = Tir.Kernels.find name in
      let gain =
        Tir.Autotune.tuning_gain m ~mode:Tir.Engine.Linear ~build:k.Tir.Kernels.build
          ~size:(List.hd k.Tir.Kernels.sizes)
      in
      if gain < 0.999 then Alcotest.failf "%s: tuning made things worse (%.3f)" name gain)
    [ "gemm"; "softmax"; "vector_add"; "cumsum" ]

let test_autotune_picks_valid_config () =
  let k = Tir.Kernels.find "softmax" in
  let cfg, r =
    Tir.Autotune.best m ~mode:Tir.Engine.Linear ~build:k.Tir.Kernels.build ~size:1024
  in
  check_bool "warps in range" true
    (List.exists (fun c -> c = cfg) Tir.Autotune.default_configs);
  check_bool "result populated" true (Tir.Engine.time m r > 0.)

(* {1 CGA / cross-CTA} *)

let test_cga_distribute () =
  let per_cta = Blocked.default ~elems_per_thread:4 ~warp_size:32 ~num_warps:4 [| 64; 64 |] in
  let grid = Cga.distribute per_cta ~blocks:[| 2; 2 |] ~shape:[| 128; 128 |] in
  check_int "4 CTAs" 4 (Cga.num_blocks grid);
  check_bool "covers the big tensor" true (Layout.is_surjective grid);
  check_int "dim0" 128 (Layout.out_size grid (Dims.dim 0));
  check_bool "still distributed" true (Layout.is_distributed grid)

let test_cross_cta_conversion () =
  let per_cta = Blocked.default ~elems_per_thread:4 ~warp_size:32 ~num_warps:4 [| 64; 64 |] in
  let row_blocks = Cga.distribute per_cta ~blocks:[| 4; 1 |] ~shape:[| 256; 64 |] in
  let col_blocks =
    Cga.distribute
      (Blocked.default ~elems_per_thread:4 ~warp_size:32 ~num_warps:4 [| 256; 16 |])
      ~blocks:[| 1; 4 |] ~shape:[| 256; 64 |]
  in
  let plan = Codegen.Conversion.plan m ~src:row_blocks ~dst:col_blocks ~byte_width:4 in
  Alcotest.(check string) "classified cross-CTA" "global memory (cross-CTA)"
    (Codegen.Conversion.mechanism_name plan.mechanism);
  (* Still moves the data correctly (algebraically). *)
  let d = Gpusim.Dist.init row_blocks ~f:(fun i -> i * 3) in
  check_bool "data converted" true
    (Gpusim.Dist.consistent_with (Codegen.Conversion.execute plan d) ~f:(fun i -> i * 3));
  (* And costs more than an intra-CTA conversion of the same volume. *)
  let intra =
    Codegen.Conversion.plan m ~src:per_cta
      ~dst:(Blocked.default ~elems_per_thread:2 ~warp_size:32 ~num_warps:4 [| 64; 64 |])
      ~byte_width:4
  in
  check_bool "global costs more than shared" true
    (Gpusim.Cost.estimate m (Codegen.Conversion.cost m plan)
    > Gpusim.Cost.estimate m (Codegen.Conversion.cost m intra))

let test_shuffle_rejects_cross_cta () =
  let per_cta = Blocked.default ~elems_per_thread:4 ~warp_size:32 ~num_warps:4 [| 64; 64 |] in
  let a = Cga.distribute per_cta ~blocks:[| 2; 1 |] ~shape:[| 128; 64 |] in
  let b =
    Cga.distribute
      (Blocked.default ~elems_per_thread:4 ~warp_size:32 ~num_warps:4 [| 128; 32 |])
      ~blocks:[| 1; 2 |] ~shape:[| 128; 64 |]
  in
  match Codegen.Shuffle.plan m ~src:a ~dst:b ~byte_width:4 with
  | Ok _ -> Alcotest.fail "shuffles cannot cross CTAs"
  | Error _ -> ()

let () =
  Alcotest.run "extensions"
    [
      ( "scan",
        [
          Alcotest.test_case "linear scans" `Quick test_scan_linear;
          Alcotest.test_case "legacy scan bugs" `Quick test_scan_legacy_bugs;
        ] );
      ( "autotune",
        [
          Alcotest.test_case "never worse than default" `Quick test_autotune_beats_or_ties_default;
          Alcotest.test_case "picks valid config" `Quick test_autotune_picks_valid_config;
        ] );
      ( "cga",
        [
          Alcotest.test_case "distribute" `Quick test_cga_distribute;
          Alcotest.test_case "cross-CTA conversion" `Quick test_cross_cta_conversion;
          Alcotest.test_case "shuffle rejects cross-CTA" `Quick test_shuffle_rejects_cross_cta;
        ] );
    ]
