(* The layout-compilation daemon (Tir.Server): golden request/reply
   table over the whole kernel suite (including error replies for
   malformed frames, bad requests and unknown machines/kernels), a
   cold -> restart -> warm-start scripted session asserting the warm
   server serves every request from the persisted store with zero
   planner invocations, and concurrent clients receiving identical
   replies.  Every case spins up its own daemon on its own socket, so
   the suite survives order shuffling. *)

open Linear_layout

let m = Gpusim.Machine.gh200
let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let socket_path tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ll_test_server_%s_%d.sock" tag (Unix.getpid ()))

let engine_request (k : Tir.Kernels.kernel) =
  Printf.sprintf "ENGINE\nkernel=%s\nmachine=%s" k.Tir.Kernels.name m.Gpusim.Machine.name

(* The server's reply, recomputed locally: same engine, same format. *)
let expected_engine_reply (k : Tir.Kernels.kernel) =
  let prog = k.Tir.Kernels.build ~size:(List.hd k.Tir.Kernels.sizes) in
  let r = Tir.Engine.run m ~mode:Tir.Engine.Linear prog in
  Printf.sprintf "OK time=%.0f converts=%d noops=%d loads=%d stores=%d remats=%d unsupported=%d"
    (Tir.Engine.time m r) r.Tir.Engine.converts r.Tir.Engine.noop_converts
    r.Tir.Engine.local_loads r.Tir.Engine.local_stores r.Tir.Engine.remats
    (List.length r.Tir.Engine.unsupported)

let stat reply k =
  String.split_on_char ' ' reply
  |> List.find_map (fun tok ->
         match String.index_opt tok '=' with
         | Some i when String.sub tok 0 i = k ->
             int_of_string_opt (String.sub tok (i + 1) (String.length tok - i - 1))
         | _ -> None)
  |> function
  | Some v -> v
  | None -> Alcotest.failf "STATS reply lacks %s: %s" k reply

(* {1 Cold suite -> restart -> warm-start from the store} *)

let test_cold_warm_restart () =
  let expected =
    List.map (fun k -> (k.Tir.Kernels.name, expected_engine_reply k)) Tir.Kernels.all
  in
  let sock = socket_path "coldwarm" in
  let store = Filename.temp_file "ll_server_store" ".tsv" in
  Sys.remove store;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists store then Sys.remove store)
    (fun () ->
      (* Cold pass: fresh cache, no store file yet. *)
      let srv = Tir.Server.start ~domains:2 ~store ~reset:true ~socket:sock () in
      check_int "no store to load yet" 0
        (Tir.Server.store_report srv).Codegen.Plan_store.loaded;
      let c = Tir.Server.Client.connect sock in
      List.iter
        (fun (k : Tir.Kernels.kernel) ->
          let got = Tir.Server.Client.rpc c (engine_request k) in
          check_string ("cold " ^ k.Tir.Kernels.name)
            (List.assoc k.Tir.Kernels.name expected)
            got)
        Tir.Kernels.all;
      let cold_planner = stat (Tir.Server.Client.rpc c "STATS") "shared_misses" in
      check_bool "cold pass planned" true (cold_planner > 0);
      check_string "shutdown" "OK bye" (Tir.Server.Client.rpc c "SHUTDOWN");
      Tir.Server.Client.close c;
      Tir.Server.wait srv;
      check_bool "store written on shutdown" true (Sys.file_exists store);
      (* Warm pass: same binary, simulated fresh process, store on disk.
         Every plan must come from the store — zero planner
         invocations — and every reply must be byte-identical. *)
      let srv2 = Tir.Server.start ~domains:2 ~store ~reset:true ~socket:sock () in
      let report = Tir.Server.store_report srv2 in
      check_bool "warm start loaded certified plans" true
        (report.Codegen.Plan_store.loaded > 0);
      check_int "no plan rejected on warm start" 0 report.Codegen.Plan_store.rejected;
      let c2 = Tir.Server.Client.connect sock in
      check_int "nothing planned before traffic" 0
        (stat (Tir.Server.Client.rpc c2 "STATS") "shared_misses");
      List.iter
        (fun (k : Tir.Kernels.kernel) ->
          let got = Tir.Server.Client.rpc c2 (engine_request k) in
          check_string ("warm " ^ k.Tir.Kernels.name)
            (List.assoc k.Tir.Kernels.name expected)
            got)
        Tir.Kernels.all;
      check_int "warm suite served with zero planner invocations" 0
        (stat (Tir.Server.Client.rpc c2 "STATS") "shared_misses");
      check_string "shutdown" "OK bye" (Tir.Server.Client.rpc c2 "SHUTDOWN");
      Tir.Server.Client.close c2;
      Tir.Server.wait srv2)

(* {1 Golden error replies and the PLAN verb} *)

let test_protocol_goldens () =
  let sock = socket_path "proto" in
  let srv = Tir.Server.start ~domains:1 ~socket:sock () in
  let c = Tir.Server.Client.connect sock in
  let rpc = Tir.Server.Client.rpc c in
  check_string "empty request" "ERR LL910 empty request" (rpc "");
  check_string "unknown verb" "ERR LL911 unknown verb BOGUS" (rpc "BOGUS");
  check_string "missing key" "ERR LL911 missing key machine" (rpc "PLAN\nsrc=x");
  check_string "bad mode" "ERR LL911 bad mode turbo"
    (rpc (Printf.sprintf "ENGINE\nkernel=gemm\nmachine=%s\nmode=turbo" m.Gpusim.Machine.name));
  check_string "unknown machine" "ERR LL912 unknown machine H100"
    (rpc "ENGINE\nkernel=gemm\nmachine=H100");
  check_string "unknown kernel" "ERR LL914 unknown kernel nope"
    (rpc (Printf.sprintf "ENGINE\nkernel=nope\nmachine=%s" m.Gpusim.Machine.name));
  let bad_layout =
    rpc (Printf.sprintf "PLAN\nmachine=%s\nsrc=bogus\ndst=bogus" m.Gpusim.Machine.name)
  in
  let prefix = "ERR LL913 bad layout src:" in
  check_string "bad layout literal" prefix
    (String.sub bad_layout 0 (min (String.length prefix) (String.length bad_layout)));
  (* PLAN golden: mechanism and certificate recomputed locally. *)
  let src, dst = List.nth (Plan_support.cta_pairs ()) 1 in
  let plan = Codegen.Conversion.plan m ~src ~dst ~byte_width:4 in
  let cert = Analysis.Transval.certify_plan m plan in
  check_string "plan golden"
    (Printf.sprintf "OK mechanism=%s cert=%s points=%d"
       (Codegen.Conversion.mechanism_slug plan.Codegen.Conversion.mechanism)
       (Analysis.Transval.verdict_name cert.Analysis.Transval.verdict)
       cert.Analysis.Transval.points)
    (rpc
       (Printf.sprintf "PLAN\nmachine=%s\nsrc=%s\ndst=%s" m.Gpusim.Machine.name
          (Parse.to_string src) (Parse.to_string dst)));
  (* Malformed frame: a header claiming a frame past the limit gets one
     LL910 reply, then the server drops the connection.  The persistent
     client is closed first: each connection occupies a pool worker for
     its lifetime, and this daemon runs a single worker. *)
  Tir.Server.Client.close c;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let hdr = Bytes.of_string "\x7f\x00\x00\x00" in
  let (_ : int) = Unix.write fd hdr 0 4 in
  (match Tir.Server.recv_frame fd with
  | Some reply -> check_string "oversized frame" "ERR LL910 oversized frame" reply
  | None -> Alcotest.fail "no reply to the malformed frame");
  check_bool "connection dropped after the malformed frame" true
    (match Tir.Server.recv_frame fd with
    | None -> true
    | Some _ -> false
    | exception End_of_file -> true);
  Unix.close fd;
  let c2 = Tir.Server.Client.connect sock in
  check_string "shutdown" "OK bye" (Tir.Server.Client.rpc c2 "SHUTDOWN");
  Tir.Server.Client.close c2;
  Tir.Server.wait srv

(* {1 Concurrent clients} *)

let test_concurrent_clients () =
  let kernels = List.filteri (fun i _ -> i mod 3 = 0) Tir.Kernels.all in
  let expected = List.map (fun k -> expected_engine_reply k) kernels in
  let sock = socket_path "conc" in
  let srv = Tir.Server.start ~domains:4 ~socket:sock () in
  let run_client () =
    let c = Tir.Server.Client.connect sock in
    let replies = List.map (fun k -> Tir.Server.Client.rpc c (engine_request k)) kernels in
    Tir.Server.Client.close c;
    replies
  in
  let handles = List.init 4 (fun _ -> Domain.spawn run_client) in
  let all = List.map Domain.join handles in
  List.iteri
    (fun i replies ->
      List.iter2
        (fun exp got -> check_string (Printf.sprintf "client %d" i) exp got)
        expected replies)
    all;
  let c = Tir.Server.Client.connect sock in
  check_string "shutdown" "OK bye" (Tir.Server.Client.rpc c "SHUTDOWN");
  Tir.Server.Client.close c;
  Tir.Server.wait srv

let () =
  Alcotest.run "server"
    (Shuffle_support.maybe_shuffle
       [
         ( "service",
           [
             Alcotest.test_case "cold suite, restart, warm-start from store" `Quick
               test_cold_warm_restart;
             Alcotest.test_case "golden protocol and error replies" `Quick
               test_protocol_goldens;
             Alcotest.test_case "concurrent clients get identical replies" `Quick
               test_concurrent_clients;
           ] );
       ])
