(* Tests for the core Layout module, anchored on the paper's running
   example (Section 4.1, Table 1). *)

open Linear_layout

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Layout A of Figure 1: a 16x16 tensor tiled by 2x2 registers, 4x8
   threads, 2x1 warps, fastest dimension dim1. *)
let layout_a =
  Blocked.make
    {
      shape = [| 16; 16 |];
      size_per_thread = [| 2; 2 |];
      threads_per_warp = [| 4; 8 |];
      warps_per_cta = [| 2; 1 |];
      order = [| 1; 0 |];
    }

let apply_a reg thr wrp =
  let out = Layout.apply layout_a [ (Dims.register, reg); (Dims.lane, thr); (Dims.warp, wrp) ] in
  (List.assoc (Dims.dim 0) out, List.assoc (Dims.dim 1) out)

let test_table1 () =
  (* Every row of Table 1: location -> (register, thread, warp). *)
  let cases =
    [
      ((0, 0), (0, 0, 0));
      ((0, 1), (1, 0, 0));
      ((0, 2), (0, 1, 0));
      ((0, 3), (1, 1, 0));
      ((1, 0), (2, 0, 0));
      ((1, 1), (3, 0, 0));
      ((2, 2), (0, 9, 0));
      ((2, 3), (1, 9, 0));
      ((3, 2), (2, 9, 0));
      ((3, 3), (3, 9, 0));
    ]
  in
  List.iter
    (fun ((i, j), (reg, thr, wrp)) ->
      let i', j' = apply_a reg thr wrp in
      Alcotest.(check (pair int int))
        (Printf.sprintf "r%d t%d w%d" reg thr wrp)
        (i, j) (i', j'))
    cases

let test_layout_a_shape () =
  check_int "registers" 4 (Layout.in_size layout_a Dims.register);
  check_int "lanes" 32 (Layout.in_size layout_a Dims.lane);
  check_int "warps" 2 (Layout.in_size layout_a Dims.warp);
  check_int "dim0" 16 (Layout.out_size layout_a (Dims.dim 0));
  check_int "dim1" 16 (Layout.out_size layout_a (Dims.dim 1));
  check_bool "distributed" true (Layout.is_distributed layout_a);
  check_bool "invertible" true (Layout.is_invertible layout_a)

let test_matrix_matches_paper () =
  (* The flattened matrix must be exactly the 8x8 matrix A of
     Section 4.1 (j in the low output bits, registers in the low input
     bits). *)
  let m = Layout.to_matrix layout_a in
  let expected =
    [| 0b00000001; 0b00010000; 0b00000010; 0b00000100; 0b00001000; 0b00100000;
       0b01000000; 0b10000000 |]
  in
  Alcotest.(check (array int)) "columns" expected (F2.Bitmatrix.columns m)

let test_identity_zeros () =
  let idl = Layout.identity1d 3 ~in_dim:Dims.register ~out_dim:(Dims.dim 0) in
  check_int "apply" 5 (List.assoc (Dims.dim 0) (Layout.apply idl [ (Dims.register, 5) ]));
  check_bool "invertible" true (Layout.is_invertible idl);
  let z = Layout.zeros1d 2 ~in_dim:Dims.lane ~out_dim:(Dims.dim 0) in
  check_int "zeros out bits" 0 (Layout.out_bits z (Dims.dim 0));
  check_int "zeros apply" 0 (List.assoc (Dims.dim 0) (Layout.apply z [ (Dims.lane, 3) ]))

let test_mul_shifts_shared_dims () =
  let a = Layout.identity1d 2 ~in_dim:Dims.register ~out_dim:(Dims.dim 0) in
  let b = Layout.identity1d 1 ~in_dim:Dims.lane ~out_dim:(Dims.dim 0) in
  let ab = Layout.mul a b in
  check_int "dim0 bits" 3 (Layout.out_bits ab (Dims.dim 0));
  (* The lane basis vector lands above the two register bits. *)
  check_int "lane image" 4 (List.assoc (Dims.dim 0) (Layout.basis ab Dims.lane 0));
  (* Product of disjoint spaces is block-diagonal (Definition 4.3):
     registers (low input bits) hit dim0 (high output bits, since dim1
     is canonically the fastest) and lanes hit dim1. *)
  let c = Layout.identity1d 2 ~in_dim:Dims.lane ~out_dim:(Dims.dim 1) in
  let ac = Layout.mul a c in
  Alcotest.(check (array int))
    "block diagonal columns" [| 4; 8; 1; 2 |]
    (F2.Bitmatrix.columns (Layout.to_matrix ac))

let test_compose_invert () =
  let l = layout_a in
  let li = Layout.invert l in
  let id = Layout.compose l li in
  check_bool "l o l^-1 = id" true (F2.Bitmatrix.is_identity (Layout.to_matrix id));
  let id2 = Layout.compose li l in
  check_bool "l^-1 o l = id" true (F2.Bitmatrix.is_identity (Layout.to_matrix id2))

let test_pseudo_invert () =
  (* A broadcasting layout: 2 lanes hold the same 2 elements. *)
  let l =
    Layout.make
      ~ins:[ (Dims.lane, 2) ]
      ~outs:[ (Dims.dim 0, 1) ]
      ~bases:[ (Dims.lane, [ [ (Dims.dim 0, 1) ]; [] ]) ]
  in
  check_bool "surjective" true (Layout.is_surjective l);
  check_bool "not injective" false (Layout.is_injective l);
  let li = Layout.pseudo_invert l in
  (* Minimal-Hamming-weight choice: element 1 maps back to lane 1, not
     lane 3 (the broadcast copy). *)
  check_int "preimage" 1 (List.assoc Dims.lane (Layout.apply li [ (Dims.dim 0, 1) ]))

let test_project_outs () =
  let sliced = Sliced.make layout_a ~dim:1 in
  check_bool "surjective" true (Layout.is_surjective sliced);
  check_bool "not injective" false (Layout.is_injective sliced);
  check_int "one out dim" 1 (List.length (Layout.out_dims sliced));
  (* Register bit 0 used to map to dim1: now a free (broadcast) bit. *)
  let masks = Layout.free_variable_masks sliced in
  check_bool "register has free bits" true (List.assoc Dims.register masks <> 0)

let test_sliced_compress () =
  let r = Sliced.reduction_result layout_a ~dim:1 in
  (* After summing over dim1 each thread keeps 2 registers (the two
     rows it owned). *)
  check_int "registers" 2 (Layout.in_size r Dims.register);
  check_int "out dim0" 16 (Layout.out_size r (Dims.dim 0));
  check_bool "surjective" true (Layout.is_surjective r)

let test_flatten_reshape () =
  let f = Layout.flatten_outs layout_a in
  check_int "flat bits" 8 (Layout.out_bits f Dims.flat);
  let r = Layout.reshape_outs f [ (Dims.dim 0, 4); (Dims.dim 1, 4) ] in
  check_bool "roundtrip" true (Layout.equal r layout_a);
  let fi = Layout.flatten_ins layout_a in
  check_int "flat in bits" 8 (Layout.total_in_bits fi)

let test_num_consecutive () =
  (* Layout A: registers 0,1 are contiguous along dim1 (row-major
     flattening), register 2 jumps to the next row. *)
  check_int "layout A" 2 (Layout.num_consecutive layout_a ~in_dim:Dims.register);
  (* A [512,1] tensor with 4 elements per thread along dim0: elements
     are contiguous across the dimension boundary. *)
  let skinny =
    Blocked.make
      {
        shape = [| 512; 1 |];
        size_per_thread = [| 4; 1 |];
        threads_per_warp = [| 32; 1 |];
        warps_per_cta = [| 4; 1 |];
        order = [| 0; 1 |];
      }
  in
  check_int "[512,1]" 4 (Layout.num_consecutive skinny ~in_dim:Dims.register)

let test_divide_left_layout () =
  (* A vectorization tile: 2 register bits identical onto the flattened
     output. *)
  let l = Layout.flatten_outs layout_a in
  let tile = Layout.identity1d 1 ~in_dim:Dims.register ~out_dim:Dims.flat in
  (match Layout.divide_left l tile with
  | Some q ->
      check_int "quotient regs" 1 (Layout.in_bits q Dims.register);
      check_int "quotient out" 7 (Layout.out_bits q Dims.flat)
  | None -> Alcotest.fail "tile should divide layout A");
  (* A tile the layout does not contain. *)
  let bad =
    Layout.make ~ins:[ (Dims.register, 1) ] ~outs:[ (Dims.flat, 1) ]
      ~bases:[ (Dims.register, [ [] ]) ]
  in
  check_bool "bad tile" true (Layout.divide_left l bad = None)

let test_exchange_out_names () =
  let t = Layout.exchange_out_names layout_a [ (Dims.dim 0, Dims.dim 1); (Dims.dim 1, Dims.dim 0) ] in
  let out = Layout.apply t [ (Dims.register, 1); (Dims.lane, 9) ] in
  (* Transposition: the image coordinates swap relative to layout A. *)
  let i', j' = apply_a 1 9 0 in
  check_int "dim0 swapped" j' (List.assoc (Dims.dim 0) out);
  check_int "dim1 swapped" i' (List.assoc (Dims.dim 1) out)

let test_resize_in () =
  let grown = Layout.resize_in layout_a Dims.warp 3 in
  check_int "warp bits" 3 (Layout.in_bits grown Dims.warp);
  (* New warp bits broadcast. *)
  check_int "broadcast" 0 (Layout.basis_flat grown Dims.warp 2);
  let shrunk = Layout.resize_in grown Dims.warp 1 in
  check_bool "shrink restores" true (Layout.equal shrunk layout_a)

let test_make_validation () =
  (* Construction rejects malformed inputs with Layout.Error. *)
  let expect_error f =
    match f () with
    | exception Layout.Error _ -> ()
    | _ -> Alcotest.fail "expected Layout.Error"
  in
  (* duplicate dimension *)
  expect_error (fun () ->
      Layout.make
        ~ins:[ (Dims.register, 1); (Dims.register, 1) ]
        ~outs:[ (Dims.dim 0, 2) ]
        ~bases:[ (Dims.register, [ [ (Dims.dim 0, 1) ] ]) ]);
  (* coordinate out of range *)
  expect_error (fun () ->
      Layout.make
        ~ins:[ (Dims.register, 1) ]
        ~outs:[ (Dims.dim 0, 1) ]
        ~bases:[ (Dims.register, [ [ (Dims.dim 0, 2) ] ]) ]);
  (* wrong number of basis images *)
  expect_error (fun () ->
      Layout.make
        ~ins:[ (Dims.register, 2) ]
        ~outs:[ (Dims.dim 0, 2) ]
        ~bases:[ (Dims.register, [ [ (Dims.dim 0, 1) ] ]) ]);
  (* bases for an unknown input dimension *)
  expect_error (fun () ->
      Layout.make
        ~ins:[ (Dims.register, 1) ]
        ~outs:[ (Dims.dim 0, 1) ]
        ~bases:
          [ (Dims.register, [ [ (Dims.dim 0, 1) ] ]); (Dims.lane, [ [ (Dims.dim 0, 1) ] ]) ]);
  (* apply with out-of-range index *)
  expect_error (fun () -> Layout.apply layout_a [ (Dims.register, 4) ]);
  (* compose with mismatched spaces *)
  expect_error (fun () ->
      Layout.compose layout_a (Layout.identity1d 9 ~in_dim:Dims.offset ~out_dim:Dims.register));
  (* invert of a non-invertible layout *)
  expect_error (fun () -> Layout.invert (Sliced.make layout_a ~dim:1))

let test_empty_and_trivial () =
  check_int "empty has no bits" 0 (Layout.total_in_bits Layout.empty);
  let l = Layout.mul Layout.empty layout_a in
  check_bool "empty is a unit for mul" true (Layout.equal l layout_a);
  (* zero-bit dims are preserved until dropped *)
  let z = Layout.mul layout_a (Layout.zeros1d 0 ~in_dim:Dims.block ~out_dim:(Dims.dim 0)) in
  check_bool "trivial dims removable" true
    (Layout.equal (Layout.drop_trivial_dims z) (Layout.drop_trivial_dims layout_a))

(* {1 Properties} *)

let arb_blocked =
  let gen =
    QCheck.Gen.(
      let pow2 hi = map (fun k -> 1 lsl k) (int_range 0 hi) in
      let* m = pow2 5 and* n = pow2 5 in
      let* r0 = pow2 2 and* r1 = pow2 2 in
      let* t0 = pow2 2 and* t1 = pow2 2 in
      let* w0 = pow2 1 and* w1 = pow2 1 in
      let* ord = oneofl [ [| 0; 1 |]; [| 1; 0 |] ] in
      return
        (Blocked.make
           {
             shape = [| max m (r0 * t0 * w0); max n (r1 * t1 * w1) |];
             size_per_thread = [| r0; r1 |];
             threads_per_warp = [| t0; t1 |];
             warps_per_cta = [| w0; w1 |];
             order = ord;
           }))
  in
  QCheck.make gen ~print:Layout.to_string

let prop_blocked_distributed =
  QCheck.Test.make ~name:"blocked layouts are distributed (Def 4.10)" ~count:200 arb_blocked
    (fun l -> Layout.is_distributed l)

let prop_invert_roundtrip =
  QCheck.Test.make ~name:"invert o layout = id" ~count:200 arb_blocked (fun l ->
      QCheck.assume (Layout.is_invertible l);
      F2.Bitmatrix.is_identity (Layout.to_matrix (Layout.compose (Layout.invert l) l)))

let prop_pseudo_invert_section =
  QCheck.Test.make ~name:"layout o pseudo_invert = id on image" ~count:200 arb_blocked
    (fun l ->
      let li = Layout.pseudo_invert l in
      F2.Bitmatrix.is_identity (Layout.to_matrix (Layout.compose l li)))

let prop_slice_surjective =
  QCheck.Test.make ~name:"slices stay surjective (Prop 4.8)" ~count:200 arb_blocked (fun l ->
      Layout.is_surjective (Sliced.make l ~dim:0)
      && Layout.is_surjective (Sliced.make l ~dim:1))

let prop_mul_divide =
  QCheck.Test.make ~name:"(a x b) /l a = b for disjoint layouts" ~count:200
    (QCheck.pair (QCheck.make QCheck.Gen.(int_range 1 3)) (QCheck.make QCheck.Gen.(int_range 1 3)))
    (fun (ka, kb) ->
      let a = Layout.identity1d ka ~in_dim:Dims.register ~out_dim:(Dims.dim 1) in
      let b = Layout.identity1d kb ~in_dim:Dims.lane ~out_dim:(Dims.dim 0) in
      match Layout.divide_left (Layout.mul a b) a with
      | Some q -> Layout.equivalent q b
      | None -> false)

let prop_apply_linear =
  QCheck.Test.make ~name:"apply is linear: L(u xor v) = L(u) xor L(v)" ~count:200
    (QCheck.pair arb_blocked (QCheck.make QCheck.Gen.(pair (int_bound 255) (int_bound 255))))
    (fun (l, (u, v)) ->
      let bits = Layout.total_in_bits l in
      let mask = (1 lsl bits) - 1 in
      let u = u land mask and v = v land mask in
      Layout.apply_flat l (u lxor v) = Layout.apply_flat l u lxor Layout.apply_flat l v)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "layout"
    [
      ( "paper example",
        [
          Alcotest.test_case "Table 1 mapping" `Quick test_table1;
          Alcotest.test_case "layout A shape" `Quick test_layout_a_shape;
          Alcotest.test_case "matrix matches Section 4.1" `Quick test_matrix_matches_paper;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "identity and zeros" `Quick test_identity_zeros;
          Alcotest.test_case "product shifts shared dims" `Quick test_mul_shifts_shared_dims;
          Alcotest.test_case "compose and invert" `Quick test_compose_invert;
          Alcotest.test_case "pseudo inverse broadcast" `Quick test_pseudo_invert;
          Alcotest.test_case "divide left" `Quick test_divide_left_layout;
        ] );
      ( "surgery",
        [
          Alcotest.test_case "project outs / slice" `Quick test_project_outs;
          Alcotest.test_case "sliced compress" `Quick test_sliced_compress;
          Alcotest.test_case "flatten / reshape" `Quick test_flatten_reshape;
          Alcotest.test_case "exchange out names" `Quick test_exchange_out_names;
          Alcotest.test_case "resize in" `Quick test_resize_in;
        ] );
      ( "analyses",
        [ Alcotest.test_case "num consecutive" `Quick test_num_consecutive ] );
      ( "validation",
        [
          Alcotest.test_case "make rejects malformed" `Quick test_make_validation;
          Alcotest.test_case "empty and trivial dims" `Quick test_empty_and_trivial;
        ] );
      ( "properties",
        q
          [
            prop_blocked_distributed;
            prop_invert_roundtrip;
            prop_pseudo_invert_section;
            prop_slice_surjective;
            prop_mul_divide;
            prop_apply_linear;
          ] );
    ]
