(* The disk plan store (Codegen.Plan_store): codec round-trips over all
   four plan kinds, and fault injection in the style of test_transval —
   truncated, bit-flipped and version-bumped files must load as misses
   with the right LL-coded warning, and a stored certificate that no
   longer verifies (checked here with the real Analysis.Transval) must
   be rejected rather than admitted. *)

open Linear_layout

let m = Gpusim.Machine.gh200
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let pairs = Plan_support.cta_pairs ()

let fresh_start () =
  Codegen.Plan_cache.clear ();
  Codegen.Shared_cache.clear ();
  Codegen.Shared_cache.reset_stats ()

let tmpfile () = Filename.temp_file "ll_plan_store" ".tsv"
let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let key ~src ~dst ~byte_width =
  { Codegen.Shared_cache.Key.machine = m.Gpusim.Machine.name; src; dst; byte_width }

let has_code code (r : Codegen.Plan_store.load_report) =
  List.exists (fun (d : Diagnostics.t) -> String.equal d.Diagnostics.code code)
    r.Codegen.Plan_store.diags

(* The lying certifier: stamps "proved" without looking. *)
let fake_proved ~machine:_ _ =
  Some { Codegen.Plan_store.method_ = "symbolic"; points = 0; verdict = "proved" }

(* The real thing, as the server uses it. *)
let transval_verify ~machine plan (_ : Codegen.Plan_store.cert) =
  match
    List.find_opt
      (fun mc -> String.equal mc.Gpusim.Machine.name machine)
      Gpusim.Machine.all_with_extras
  with
  | None -> false
  | Some mc -> (
      match (Analysis.Transval.certify_plan mc plan).Analysis.Transval.verdict with
      | Analysis.Transval.Proved -> true
      | _ -> false)

let transval_certify ~machine plan =
  match
    List.find_opt
      (fun mc -> String.equal mc.Gpusim.Machine.name machine)
      Gpusim.Machine.all_with_extras
  with
  | None -> None
  | Some mc ->
      let c = Analysis.Transval.certify_plan mc plan in
      Some
        {
          Codegen.Plan_store.method_ = Analysis.Transval.method_name c.Analysis.Transval.method_;
          points = c.Analysis.Transval.points;
          verdict = Analysis.Transval.verdict_name c.Analysis.Transval.verdict;
        }

(* Populate all four kinds for a pair through the public cache API. *)
let populate (src, dst) byte_width =
  let p = Codegen.Plan_cache.conversion m ~src ~dst ~byte_width in
  let sh = Codegen.Plan_cache.shuffle m ~src ~dst ~byte_width in
  let sw = Codegen.Plan_cache.swizzle m ~src ~dst ~byte_width in
  let st = Codegen.Plan_cache.staging m ~src ~dst ~byte_width in
  (p, sh, sw, st)

(* {1 Round trip} *)

let prop_roundtrip =
  QCheck.Test.make ~name:"save/load round-trips all four plan kinds" ~count:30
    QCheck.(pair small_nat small_nat)
    (fun (i, j) ->
      let src, dst = List.nth pairs (i mod List.length pairs) in
      let byte_width = [| 2; 4; 8 |].(j mod 3) in
      fresh_start ();
      let p, sh, sw, st = populate (src, dst) byte_width in
      let path = tmpfile () in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let written = Codegen.Plan_store.save path in
          Codegen.Shared_cache.clear ();
          let r = Codegen.Plan_store.load path in
          let k = key ~src ~dst ~byte_width in
          let got_conv = Codegen.Shared_cache.find_conversion k in
          let got_sh = Codegen.Shared_cache.find_shuffle k in
          let got_sw = Codegen.Shared_cache.find_swizzle k in
          let got_st = Codegen.Shared_cache.find_staging k in
          written = 4
          && r.Codegen.Plan_store.loaded = 4
          && r.Codegen.Plan_store.rejected = 0
          && r.Codegen.Plan_store.diags = []
          && (match got_conv with
             | Some p' -> Plan_support.plan_equal p p'
             | None -> false)
          && (match got_sh with
             | Some sh' -> Plan_support.shuffle_result_equal sh sh'
             | None -> false)
          && (match got_sw with
             | Some sw' -> Plan_support.swizzle_equal sw sw'
             | None -> false)
          &&
          match got_st with Some st' -> Plan_support.staging_equal st st' | None -> false))

let test_missing_file_is_cold_start () =
  fresh_start ();
  let r = Codegen.Plan_store.load "/nonexistent/ll_plan_store_missing.tsv" in
  check_int "loaded" 0 r.Codegen.Plan_store.loaded;
  check_int "rejected" 0 r.Codegen.Plan_store.rejected;
  check_int "no diagnostics" 0 (List.length r.Codegen.Plan_store.diags)

(* {1 Fault injection} *)

(* A saved store over a handful of pairs, certified by the liar (so
   certificate-sensitive tests control the verdict text). *)
let saved_store ?(certify = fake_proved) () =
  fresh_start ();
  List.iter
    (fun pr -> ignore (populate pr 4))
    [ List.nth pairs 0; List.nth pairs 3; List.nth pairs 6 ];
  let path = tmpfile () in
  let (_ : int) = Codegen.Plan_store.save ~certify path in
  Codegen.Shared_cache.clear ();
  path

let expect_whole_file_miss what code path =
  let r = Codegen.Plan_store.load path in
  check_int (what ^ ": nothing loaded") 0 r.Codegen.Plan_store.loaded;
  check_bool (what ^ ": " ^ code ^ " warning") true (has_code code r);
  check_bool (what ^ ": warnings only") true
    (not (Diagnostics.has_errors r.Codegen.Plan_store.diags));
  check_int (what ^ ": cache stays empty") 0 (Codegen.Shared_cache.length ())

let test_truncated () =
  let path = saved_store () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let contents = read_file path in
      write_file path (String.sub contents 0 (String.length contents - 40));
      expect_whole_file_miss "truncated" "LL900" path)

let test_bit_flip () =
  let path = saved_store () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let contents = read_file path in
      let b = Bytes.of_string contents in
      let mid = String.index contents '\n' + ((Bytes.length b - String.index contents '\n') / 2) in
      Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 1));
      write_file path (Bytes.to_string b);
      expect_whole_file_miss "bit-flipped" "LL900" path)

let test_version_bump () =
  let path = saved_store () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let contents = read_file path in
      let nl = String.index contents '\n' in
      let header = String.sub contents 0 nl in
      let rest = String.sub contents nl (String.length contents - nl) in
      (match String.split_on_char ' ' header with
      | [ magic; v; n; ck ] ->
          let bumped =
            String.concat " " [ magic; string_of_int (int_of_string v + 1); n; ck ]
          in
          write_file path (bumped ^ rest)
      | _ -> Alcotest.fail "unexpected store header");
      expect_whole_file_miss "version-bumped" "LL901" path)

let test_verify_rejects_all () =
  let path = saved_store () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let r = Codegen.Plan_store.load ~verify:(fun ~machine:_ _ _ -> false) path in
      (* Certified kinds (conversion, shuffle-ok, swizzle) are rejected;
         staging and cached shuffle errors carry no certificate and pass
         on integrity + structure. *)
      check_bool "certified entries rejected" true (r.Codegen.Plan_store.rejected > 0);
      check_bool "LL902 warning" true (has_code "LL902" r);
      check_bool "no conversion admitted" true
        (Codegen.Shared_cache.fold_conversions (fun _ _ _ -> false) true);
      check_bool "no swizzle admitted" true
        (Codegen.Shared_cache.fold_swizzles (fun _ _ _ -> false) true))

let test_uncertified_rejected_when_verifying () =
  fresh_start ();
  let (_ : _ * _ * _ * _) = populate (List.hd pairs) 4 in
  let path = tmpfile () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* Saved without a certifier: a verifying load must not trust it. *)
      let (_ : int) = Codegen.Plan_store.save path in
      Codegen.Shared_cache.clear ();
      let r = Codegen.Plan_store.load ~verify:(fun ~machine:_ _ _ -> true) path in
      check_bool "uncertified conversion rejected" true (r.Codegen.Plan_store.rejected > 0);
      check_bool "LL902 warning" true (has_code "LL902" r))

let test_transval_rejects_tampered_plan () =
  fresh_start ();
  (* A mechanism-tag swap: claim No_op for a pair whose conversion
     really moves data.  (Tampering a plan's layouts or shuffle rounds
     is self-healing — the lowering re-derives the wiring from the
     claimed layouts — so the tag is exactly the field whose corruption
     yields a wrong-but-plausible plan.)  The lying certifier stamps it
     "proved"; only Transval re-verification stands between the store
     and the wrong plan. *)
  let src, dst =
    List.find
      (fun (src, dst) ->
        match
          (Codegen.Conversion.plan m ~src ~dst ~byte_width:4).Codegen.Conversion.mechanism
        with
        | Codegen.Conversion.No_op | Codegen.Conversion.Register_permute -> false
        | _ -> true)
      pairs
  in
  Codegen.Shared_cache.add_conversion
    (key ~src ~dst ~byte_width:4)
    { Codegen.Conversion.src; dst; byte_width = 4; mechanism = Codegen.Conversion.No_op };
  let path = tmpfile () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let (_ : int) = Codegen.Plan_store.save ~certify:fake_proved path in
      Codegen.Shared_cache.clear ();
      let r = Codegen.Plan_store.load ~verify:transval_verify path in
      check_int "tampered plan rejected" 1 r.Codegen.Plan_store.rejected;
      check_bool "LL902 warning" true (has_code "LL902" r);
      check_int "cache stays empty" 0 (Codegen.Shared_cache.length ()))

let test_transval_roundtrip_admits_good_plans () =
  fresh_start ();
  let (_ : _ * _ * _ * _) = populate (List.nth pairs 2) 4 in
  let path = tmpfile () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let (_ : int) = Codegen.Plan_store.save ~certify:transval_certify path in
      Codegen.Shared_cache.clear ();
      let r = Codegen.Plan_store.load ~verify:transval_verify path in
      check_int "all entries re-proved and admitted" 4 r.Codegen.Plan_store.loaded;
      check_int "none rejected" 0 r.Codegen.Plan_store.rejected)

let test_atomic_save_leaves_no_temp () =
  let path = saved_store () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let dir = Filename.dirname path in
      let leftovers =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun f ->
               String.length f >= 10
               && String.sub f 0 10 = "plan_store"
               && Filename.check_suffix f ".tmp")
      in
      check_int "no temp files left behind" 0 (List.length leftovers);
      (* And the rename really landed: the file loads clean. *)
      let r = Codegen.Plan_store.load path in
      check_int "rejected" 0 r.Codegen.Plan_store.rejected;
      check_bool "loaded" true (r.Codegen.Plan_store.loaded > 0))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "plan_store"
    (Shuffle_support.maybe_shuffle
       [
         ( "codec",
           q [ prop_roundtrip ]
           @ [
               Alcotest.test_case "missing file is a clean cold start" `Quick
                 test_missing_file_is_cold_start;
               Alcotest.test_case "atomic save leaves no temp file" `Quick
                 test_atomic_save_leaves_no_temp;
             ] );
         ( "fault-injection",
           [
             Alcotest.test_case "truncated file loads as a miss (LL900)" `Quick test_truncated;
             Alcotest.test_case "bit-flipped file loads as a miss (LL900)" `Quick test_bit_flip;
             Alcotest.test_case "version bump loads as a miss (LL901)" `Quick test_version_bump;
             Alcotest.test_case "verify callback rejects everything (LL902)" `Quick
               test_verify_rejects_all;
             Alcotest.test_case "uncertified entries rejected under verify (LL902)" `Quick
               test_uncertified_rejected_when_verifying;
           ] );
         ( "transval",
           [
             Alcotest.test_case "tampered plan with lying certificate is rejected" `Quick
               test_transval_rejects_tampered_plan;
             Alcotest.test_case "good plans re-prove and round-trip" `Quick
               test_transval_roundtrip_admits_good_plans;
           ] );
       ])
