(* Tests for the Section 5 code-generation algorithms: SIMD matching,
   warp shuffles, optimal swizzling, conversion planning, gather. *)

open Linear_layout

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let m = Gpusim.Machine.gh200

let blocked ?(warps = [| 1; 1 |]) ?(order = [| 1; 0 |]) ~spt ~tpw shape =
  Blocked.make
    {
      shape;
      size_per_thread = spt;
      threads_per_warp = tpw;
      warps_per_cta = warps;
      order;
    }

(* {1 Simd} *)

let test_vec_tile () =
  let t = Codegen.Simd.vec_tile ~bits:128 ~byte_width:4 in
  check_int "4 elements" 4 (Layout.in_size t Dims.register);
  check_int "offset bits" 2 (Layout.out_bits t Dims.offset)

let test_ldmatrix_match () =
  (* f16 elements, each thread holding 2 consecutive, 4-thread groups
     per row: exactly the ldmatrix tile. *)
  let dist = blocked ~spt:[| 1; 2 |] ~tpw:[| 8; 4 |] [| 8; 8 |] in
  let mem = Shared.row_major ~shape:[| 8; 8 |] in
  let reg_to_off =
    Layout.compose (Layout.invert (Layout.flatten_outs mem)) (Layout.flatten_outs dist)
  in
  check_bool "ldmatrix ok" true (Codegen.Simd.can_use_ldmatrix reg_to_off ~byte_width:2);
  (* A column-major access pattern cannot use ldmatrix. *)
  let dist_t = blocked ~order:[| 0; 1 |] ~spt:[| 2; 1 |] ~tpw:[| 4; 8 |] [| 8; 8 |] in
  let l_t =
    Layout.compose (Layout.invert (Layout.flatten_outs mem)) (Layout.flatten_outs dist_t)
  in
  check_bool "ldmatrix rejected" false (Codegen.Simd.can_use_ldmatrix l_t ~byte_width:2)

let test_max_vector_bits () =
  let dist = blocked ~spt:[| 1; 8 |] ~tpw:[| 32; 1 |] [| 32; 8 |] in
  let mem = Shared.row_major ~shape:[| 32; 8 |] in
  let l = Layout.compose (Layout.invert (Layout.flatten_outs mem)) (Layout.flatten_outs dist) in
  check_int "8 x f16 = 128 bits" 128
    (Codegen.Simd.max_vector_bits l ~byte_width:2 ~max_bits:128)

let test_vectorizable_register_bits () =
  (* A register-permuted layout: registers map to offsets out of order. *)
  let l =
    Layout.make
      ~ins:[ (Dims.register, 2) ]
      ~outs:[ (Dims.offset, 2) ]
      ~bases:[ (Dims.register, [ [ (Dims.offset, 2) ]; [ (Dims.offset, 1) ] ]) ]
  in
  (* Offset bit 0 comes from register bit 1, offset bit 1 from bit 0. *)
  Alcotest.(check (list int)) "permutation found" [ 1; 0 ]
    (Codegen.Simd.vectorizable_register_bits l)

(* {1 Shuffle} *)

let unwrap = function Ok x -> x | Error e -> Alcotest.fail e

let test_shuffle_small () =
  (* An 8-element vector: src interleaves lanes at stride 2, dst at
     stride 1 — the Figure 4 style exchange. *)
  let src =
    Layout.make
      ~ins:[ (Dims.register, 1); (Dims.lane, 2) ]
      ~outs:[ (Dims.dim 0, 3) ]
      ~bases:
        [
          (Dims.register, [ [ (Dims.dim 0, 1) ] ]);
          (Dims.lane, [ [ (Dims.dim 0, 2) ]; [ (Dims.dim 0, 4) ] ]);
        ]
  in
  let dst =
    Layout.make
      ~ins:[ (Dims.register, 1); (Dims.lane, 2) ]
      ~outs:[ (Dims.dim 0, 3) ]
      ~bases:
        [
          (Dims.register, [ [ (Dims.dim 0, 4) ] ]);
          (Dims.lane, [ [ (Dims.dim 0, 1) ]; [ (Dims.dim 0, 2) ] ]);
        ]
    in
  let p = unwrap (Codegen.Shuffle.plan m ~src ~dst ~byte_width:4) in
  check_bool "rounds is a power of two" true (p.Codegen.Shuffle.rounds > 0);
  let d = Gpusim.Dist.init src ~f:(fun i -> 100 + i) in
  let d' = Codegen.Shuffle.execute p d in
  check_bool "data lands in dst layout" true
    (Gpusim.Dist.consistent_with d' ~f:(fun i -> 100 + i))

let test_shuffle_mma_to_blocked () =
  (* Convert an mma accumulator to a blocked layout within one warp. *)
  let src = Mma.output ~bitwidth:32 ~warps:[| 1; 1 |] ~shape:[| 16; 16 |] () in
  let dst = blocked ~spt:[| 1; 8 |] ~tpw:[| 16; 2 |] [| 16; 16 |] in
  let p = unwrap (Codegen.Shuffle.plan m ~src ~dst ~byte_width:4) in
  let d = Gpusim.Dist.init src ~f:(fun i -> i * 3) in
  let d' = Codegen.Shuffle.execute p d in
  check_bool "converted" true (Gpusim.Dist.consistent_with d' ~f:(fun i -> i * 3));
  check_bool "dst layout" true (Layout.equal d'.Gpusim.Dist.layout dst)

let test_shuffle_rejects_cross_warp () =
  let src = blocked ~warps:[| 2; 1 |] ~spt:[| 2; 2 |] ~tpw:[| 4; 8 |] [| 16; 16 |] in
  let dst = blocked ~warps:[| 1; 2 |] ~spt:[| 2; 2 |] ~tpw:[| 4; 8 |] [| 16; 16 |] in
  match Codegen.Shuffle.plan m ~src ~dst ~byte_width:4 with
  | Ok _ -> Alcotest.fail "cross-warp conversion must be rejected"
  | Error _ -> ()

let test_shuffle_identity_is_trivial () =
  let l = blocked ~spt:[| 2; 2 |] ~tpw:[| 4; 8 |] [| 16; 16 |] in
  let p = unwrap (Codegen.Shuffle.plan m ~src:l ~dst:l ~byte_width:4) in
  (* All thread bits are common: G is empty, and the vectorized common
     registers keep rounds low. *)
  check_int "no exchanges needed" 0 (List.length p.Codegen.Shuffle.g)

(* {1 Swizzle_opt} *)

let per_inst_check name s ~dist ~byte_width ~expected_free =
  let total, insts =
    Codegen.Swizzle_opt.simulate_wavefronts m ~mem:s.Codegen.Swizzle_opt.mem ~dist ~byte_width
      ~vec:s.Codegen.Swizzle_opt.vec
  in
  if total mod insts <> 0 then
    Alcotest.failf "%s: %d wavefronts not divisible by %d insts" name total insts;
  let per_inst = total / insts in
  let n = max 1 ((1 lsl s.Codegen.Swizzle_opt.vec_bits) * byte_width / 4) in
  if expected_free then check_int (name ^ " conflict-free") n per_inst;
  per_inst

let test_swizzle_transpose_f32 () =
  (* Transposed access: row-major write layout vs column-major read
     layout; unswizzled memory would conflict heavily, the optimal
     swizzle is conflict-free both ways. *)
  let src = blocked ~spt:[| 1; 4 |] ~tpw:[| 8; 4 |] [| 32; 32 |] in
  let dst = blocked ~order:[| 0; 1 |] ~spt:[| 4; 1 |] ~tpw:[| 4; 8 |] [| 32; 32 |] in
  let s = Codegen.Swizzle_opt.optimal m ~src ~dst ~byte_width:4 in
  check_bool "memory layout invertible" true (Layout.is_invertible s.Codegen.Swizzle_opt.mem);
  let st = per_inst_check "store" s ~dist:src ~byte_width:4 ~expected_free:true in
  let ld = per_inst_check "load" s ~dist:dst ~byte_width:4 ~expected_free:true in
  check_int "predicted store" s.Codegen.Swizzle_opt.store_wavefronts st;
  check_int "predicted load" s.Codegen.Swizzle_opt.load_wavefronts ld

let test_swizzle_beats_unswizzled () =
  (* With an unswizzled (row-major) scratch buffer, the column-major
     read has severe conflicts; the optimal layout removes them. *)
  let src = blocked ~spt:[| 1; 4 |] ~tpw:[| 8; 4 |] [| 32; 32 |] in
  let dst = blocked ~order:[| 0; 1 |] ~spt:[| 4; 1 |] ~tpw:[| 4; 8 |] [| 32; 32 |] in
  let s = Codegen.Swizzle_opt.optimal m ~src ~dst ~byte_width:4 in
  let naive_mem = Shared.row_major ~shape:[| 32; 32 |] in
  let naive, _ =
    Codegen.Swizzle_opt.simulate_wavefronts m ~mem:naive_mem ~dist:dst ~byte_width:4 ~vec:[]
  in
  let opt, _ =
    Codegen.Swizzle_opt.simulate_wavefronts m ~mem:s.Codegen.Swizzle_opt.mem ~dist:dst
      ~byte_width:4 ~vec:s.Codegen.Swizzle_opt.vec
  in
  check_bool
    (Printf.sprintf "optimal (%d) < naive (%d)" opt naive)
    true (opt < naive)

let test_swizzle_execute_correct () =
  let src = Mma.output ~bitwidth:32 ~warps:[| 2; 2 |] ~shape:[| 32; 32 |] () in
  let dst = blocked ~warps:[| 4; 1 |] ~spt:[| 1; 4 |] ~tpw:[| 8; 4 |] [| 32; 32 |] in
  let s = Codegen.Swizzle_opt.optimal m ~src ~dst ~byte_width:4 in
  let d = Gpusim.Dist.init src ~f:(fun i -> i + 11) in
  let d' = Codegen.Swizzle_opt.execute ~mem:s.Codegen.Swizzle_opt.mem ~dst d in
  check_bool "converted" true (Gpusim.Dist.consistent_with d' ~f:(fun i -> i + 11))

(* {1 Operand staging (mma swizzle + ldmatrix)} *)

let test_operand_staging_ldmatrix () =
  let src = Blocked.default ~elems_per_thread:8 ~warp_size:32 ~num_warps:4 [| 128; 64 |] in
  let dst = Mma.operand ~idx:0 ~bitwidth:16 ~warps:[| 4; 1 |] ~shape:[| 128; 64 |] () in
  (match Codegen.Operand_staging.plan m ~src ~dst ~byte_width:2 with
  | Some staging ->
      check_bool "ldmatrix used on GH200" true staging.Codegen.Operand_staging.uses_ldmatrix;
      check_bool "ldmatrix instructions counted" true
        (staging.Codegen.Operand_staging.staging_cost.Gpusim.Cost.ldmatrix > 0);
      check_bool "Def 4.11 parameters sane" true
        (staging.Codegen.Operand_staging.vec >= 2
        && staging.Codegen.Operand_staging.per_phase >= 1
        && staging.Codegen.Operand_staging.max_phase >= 1)
  | None -> Alcotest.fail "staging plan expected");
  (* No ldmatrix on AMD: the plan degrades to plain accesses. *)
  match Codegen.Operand_staging.plan Gpusim.Machine.mi250 ~src ~dst ~byte_width:2 with
  | Some staging ->
      check_bool "no ldmatrix on MI250" false staging.Codegen.Operand_staging.uses_ldmatrix
  | None -> ()

let test_operand_staging_rejects_1d () =
  let src = Blocked.default ~elems_per_thread:4 ~warp_size:32 ~num_warps:4 [| 1024 |] in
  check_bool "1-D rejected" true
    (Codegen.Operand_staging.plan m ~src ~dst:src ~byte_width:4 = None)

(* {1 Conversion planning} *)

let test_conversion_classification () =
  let l = blocked ~spt:[| 2; 2 |] ~tpw:[| 4; 8 |] [| 16; 16 |] in
  let p = Codegen.Conversion.plan m ~src:l ~dst:l ~byte_width:4 in
  Alcotest.(check string) "no-op" "no-op" (Codegen.Conversion.mechanism_name p.mechanism);
  (* Register permutation: same lanes/warps, registers reordered. *)
  let reg_perm =
    (* Same as l but with the two register bits swapped: swap dim0/dim1
       per-thread tiles. *)
    Layout.make ~ins:(Layout.in_dims l) ~outs:(Layout.out_dims l)
      ~bases:
        (List.map
           (fun (d, bits) ->
             let images = List.init bits (Layout.basis l d) in
             (d, if d = Dims.register then List.rev images else images))
           (Layout.in_dims l))
  in
  let p2 = Codegen.Conversion.plan m ~src:l ~dst:reg_perm ~byte_width:4 in
  Alcotest.(check string) "register permutation" "register permutation"
    (Codegen.Conversion.mechanism_name p2.mechanism);
  (* Warp columns differ: shared memory. *)
  let src = blocked ~warps:[| 2; 1 |] ~spt:[| 2; 2 |] ~tpw:[| 4; 8 |] [| 16; 16 |] in
  let dst = blocked ~warps:[| 1; 2 |] ~spt:[| 2; 2 |] ~tpw:[| 4; 8 |] [| 16; 16 |] in
  let p3 = Codegen.Conversion.plan m ~src ~dst ~byte_width:4 in
  Alcotest.(check string) "shared memory" "shared memory"
    (Codegen.Conversion.mechanism_name p3.mechanism);
  (* Same warps, different lanes, no broadcast: warp shuffle. *)
  let dst2 = blocked ~spt:[| 1; 4 |] ~tpw:[| 16; 2 |] [| 16; 16 |] in
  let src2 = blocked ~spt:[| 2; 2 |] ~tpw:[| 4; 8 |] [| 16; 16 |] in
  let p4 = Codegen.Conversion.plan m ~src:src2 ~dst:dst2 ~byte_width:4 in
  Alcotest.(check string) "warp shuffle" "warp shuffle"
    (Codegen.Conversion.mechanism_name p4.mechanism)

let test_conversion_execute_all_paths () =
  let check_path src dst =
    let p = Codegen.Conversion.plan m ~src ~dst ~byte_width:4 in
    let d = Gpusim.Dist.init src ~f:(fun i -> i * 13 + 1) in
    let d' = Codegen.Conversion.execute p d in
    check_bool
      (Codegen.Conversion.mechanism_name p.mechanism)
      true
      (Gpusim.Dist.consistent_with d' ~f:(fun i -> i * 13 + 1))
  in
  let a = blocked ~warps:[| 2; 1 |] ~spt:[| 2; 2 |] ~tpw:[| 4; 8 |] [| 16; 16 |] in
  let b = blocked ~warps:[| 1; 2 |] ~spt:[| 1; 4 |] ~tpw:[| 8; 4 |] [| 16; 16 |] in
  check_path a a;
  check_path a b;
  check_path b a;
  let mma = Mma.output ~bitwidth:32 ~warps:[| 2; 1 |] ~shape:[| 16; 16 |] () in
  check_path a mma;
  check_path mma b

let test_conversion_cost_ordering () =
  (* No-op < register permute < shuffle < shared memory, on one warp. *)
  let l = blocked ~spt:[| 2; 2 |] ~tpw:[| 4; 8 |] [| 16; 16 |] in
  let shuffle_dst = blocked ~spt:[| 1; 4 |] ~tpw:[| 16; 2 |] [| 16; 16 |] in
  let cost src dst =
    let p = Codegen.Conversion.plan m ~src ~dst ~byte_width:4 in
    Gpusim.Cost.estimate m (Codegen.Conversion.cost m p)
  in
  let noop = cost l l in
  let shfl = cost l shuffle_dst in
  let src_w = blocked ~warps:[| 2; 1 |] ~spt:[| 2; 2 |] ~tpw:[| 4; 8 |] [| 16; 16 |] in
  let dst_w = blocked ~warps:[| 1; 2 |] ~spt:[| 2; 2 |] ~tpw:[| 4; 8 |] [| 16; 16 |] in
  let smem = cost src_w dst_w in
  check_bool "no-op free" true (noop = 0.);
  check_bool (Printf.sprintf "shuffle (%f) < shared (%f)" shfl smem) true (shfl < smem)

(* {1 Gather} *)

let test_gather_plan () =
  (* Gather along dim0 with one warp: stays in the warp. *)
  let l = blocked ~spt:[| 2; 1 |] ~tpw:[| 8; 4 |] [| 16; 4 |] in
  (match Codegen.Gather.plan l ~axis:0 with
  | Codegen.Gather.Warp_shuffle { rounds; _ } -> check_int "rounds = lanes on axis" 8 rounds
  | Shared_fallback -> Alcotest.fail "should stay in warp");
  (* With warps split along the axis, fall back. *)
  let l2 = blocked ~warps:[| 2; 1 |] ~spt:[| 1; 1 |] ~tpw:[| 8; 4 |] [| 16; 4 |] in
  match Codegen.Gather.plan l2 ~axis:0 with
  | Codegen.Gather.Warp_shuffle _ -> Alcotest.fail "warps own the axis: must fall back"
  | Shared_fallback -> ()

let test_gather_execute () =
  let l = blocked ~spt:[| 2; 1 |] ~tpw:[| 8; 4 |] [| 16; 4 |] in
  (* index[i][j] = (i + 3) mod 16 : a rotation along the axis. *)
  let rows = 16 and cols = 4 in
  ignore cols;
  let src = Gpusim.Dist.init l ~f:(fun v -> v * 2) in
  let index =
    Gpusim.Dist.init l ~f:(fun v ->
        let coords = Layout.unflatten_value (Layout.out_dims l) v in
        (List.assoc (Dims.dim 0) coords + 3) mod rows)
  in
  let out = Codegen.Gather.execute ~src ~index ~axis:0 in
  let expected v =
    let dims = Layout.out_dims l in
    let coords = Layout.unflatten_value dims v in
    let i = List.assoc (Dims.dim 0) coords in
    let coords' =
      List.map (fun (d, c) -> (d, if d = Dims.dim 0 then (i + 3) mod rows else c)) coords
    in
    Layout.flatten_value dims coords' * 2
  in
  check_bool "gathered" true (Gpusim.Dist.consistent_with out ~f:expected)

(* {1 Properties} *)

let arb_layout_pair_same_warp =
  (* Random pairs of single-warp blocked/mma layouts over a 16x16 or
     32x32 tensor: every conversion stays within the warp. *)
  let gen =
    QCheck.Gen.(
      let* size = oneofl [ 16; 32 ] in
      let layout_gen =
        oneof
          [
            (let* spt1 = oneofl [ 1; 2; 4 ] in
             let* ord = oneofl [ [| 1; 0 |]; [| 0; 1 |] ] in
             let spt = if ord.(0) = 1 then [| 1; spt1 |] else [| spt1; 1 |] in
             let tpw = if ord.(0) = 1 then [| 4; 8 |] else [| 8; 4 |] in
             return
               (Blocked.make
                  {
                    shape = [| size; size |];
                    size_per_thread = spt;
                    threads_per_warp = tpw;
                    warps_per_cta = [| 1; 1 |];
                    order = ord;
                  }));
            return (Mma.output ~bitwidth:32 ~warps:[| 1; 1 |] ~shape:[| size; size |] ());
            return (Mma.output ~bitwidth:16 ~warps:[| 1; 1 |] ~shape:[| size; size |] ());
          ]
      in
      let* a = layout_gen and* b = layout_gen in
      return (a, b))
  in
  QCheck.make gen ~print:(fun (a, b) -> Layout.to_string a ^ "\n->\n" ^ Layout.to_string b)

let prop_shuffle_moves_data =
  QCheck.Test.make ~name:"shuffle plans move every element correctly" ~count:100
    arb_layout_pair_same_warp (fun (src, dst) ->
      match Codegen.Shuffle.plan m ~src ~dst ~byte_width:4 with
      | Error _ -> QCheck.assume_fail ()
      | Ok p ->
          let d = Gpusim.Dist.init src ~f:(fun i -> i lxor 0x55) in
          let d' = Codegen.Shuffle.execute p d in
          Gpusim.Dist.consistent_with d' ~f:(fun i -> i lxor 0x55))

let prop_conversion_execute =
  QCheck.Test.make ~name:"conversion execute is correct on all paths" ~count:100
    arb_layout_pair_same_warp (fun (src, dst) ->
      let p = Codegen.Conversion.plan m ~src ~dst ~byte_width:4 in
      let d = Gpusim.Dist.init src ~f:(fun i -> i + 7) in
      Gpusim.Dist.consistent_with (Codegen.Conversion.execute p d) ~f:(fun i -> i + 7))

let prop_swizzle_prediction_matches_simulation =
  QCheck.Test.make ~name:"Lemma 9.4: predicted wavefronts = simulated" ~count:60
    arb_layout_pair_same_warp (fun (src, dst) ->
      let byte_width = 4 in
      let s = Codegen.Swizzle_opt.optimal m ~src ~dst ~byte_width in
      let check dist predicted =
        let total, insts =
          Codegen.Swizzle_opt.simulate_wavefronts m ~mem:s.Codegen.Swizzle_opt.mem ~dist
            ~byte_width ~vec:s.Codegen.Swizzle_opt.vec
        in
        total = insts * predicted
      in
      check src s.Codegen.Swizzle_opt.store_wavefronts
      && check dst s.Codegen.Swizzle_opt.load_wavefronts)

let prop_swizzle_optimality_sampled =
  (* Lemma 9.6 evidence: no randomly sampled invertible memory layout
     beats the greedy optimal's total wavefronts at the same
     vectorization. *)
  QCheck.Test.make ~name:"no sampled memory layout beats the optimal swizzle" ~count:25
    (QCheck.pair arb_layout_pair_same_warp (QCheck.make QCheck.Gen.(list_repeat 8 (int_bound 10000))))
    (fun ((src, dst), seeds) ->
      let byte_width = 4 in
      let s = Codegen.Swizzle_opt.optimal m ~src ~dst ~byte_width in
      let measure mem =
        try
          Some
            (fst
               (Codegen.Swizzle_opt.simulate_wavefronts m ~mem ~dist:src ~byte_width
                  ~vec:s.Codegen.Swizzle_opt.vec)
            + fst
                (Codegen.Swizzle_opt.simulate_wavefronts m ~mem ~dist:dst ~byte_width
                   ~vec:s.Codegen.Swizzle_opt.vec))
        with Invalid_argument _ -> None
      in
      let opt = Option.get (measure s.Codegen.Swizzle_opt.mem) in
      let d = Layout.total_out_bits (Layout.flatten_outs src) in
      let shape =
        Array.of_list (List.rev_map (fun (_, b) -> 1 lsl b) (Layout.out_dims src))
      in
      (* Random candidate: keep the optimal's vec bits (for comparable
         vectorization) and permute the remaining columns randomly. *)
      List.for_all
        (fun seed ->
          let rest =
            List.filter
              (fun c -> not (List.mem c s.Codegen.Swizzle_opt.vec))
              (List.init d (fun k -> 1 lsl k)
              |> List.filter (fun u ->
                     F2.Subspace.independent_from s.Codegen.Swizzle_opt.vec u))
          in
          let shuffled =
            List.mapi (fun i c -> ((Hashtbl.hash (seed + (i * 31)), i), c)) rest
            |> List.sort compare |> List.map snd
          in
          let cols = s.Codegen.Swizzle_opt.vec @ shuffled in
          if F2.Subspace.dim cols < d then true
          else
            let mem = Shared.of_basis_columns ~shape cols in
            match measure mem with Some w -> w >= opt | None -> true)
        seeds)

let prop_swizzle_never_worse_than_row_major =
  QCheck.Test.make ~name:"optimal swizzle <= unswizzled wavefronts" ~count:60
    arb_layout_pair_same_warp (fun (src, dst) ->
      let byte_width = 4 in
      let s = Codegen.Swizzle_opt.optimal m ~src ~dst ~byte_width in
      let shape =
        Array.of_list (List.map (fun (_, b) -> 1 lsl b) (List.rev (Layout.out_dims src)))
      in
      let naive_mem = Shared.row_major ~shape in
      let measure mem vec dist =
        fst (Codegen.Swizzle_opt.simulate_wavefronts m ~mem ~dist ~byte_width ~vec)
      in
      let opt =
        measure s.Codegen.Swizzle_opt.mem s.Codegen.Swizzle_opt.vec src
        + measure s.Codegen.Swizzle_opt.mem s.Codegen.Swizzle_opt.vec dst
      in
      let naive = measure naive_mem [] src + measure naive_mem [] dst in
      (* The optimal swizzle may use wider accesses, so compare total
         wavefronts (transaction count already reflects width). *)
      opt <= naive)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "codegen"
    (Shuffle_support.maybe_shuffle
    [
      ( "simd",
        [
          Alcotest.test_case "vec tile" `Quick test_vec_tile;
          Alcotest.test_case "ldmatrix match" `Quick test_ldmatrix_match;
          Alcotest.test_case "max vector bits" `Quick test_max_vector_bits;
          Alcotest.test_case "generalized vectorization" `Quick test_vectorizable_register_bits;
        ] );
      ( "shuffle",
        [
          Alcotest.test_case "small exchange" `Quick test_shuffle_small;
          Alcotest.test_case "mma to blocked" `Quick test_shuffle_mma_to_blocked;
          Alcotest.test_case "rejects cross-warp" `Quick test_shuffle_rejects_cross_warp;
          Alcotest.test_case "identity is trivial" `Quick test_shuffle_identity_is_trivial;
        ] );
      ( "swizzle",
        [
          Alcotest.test_case "transpose f32 conflict-free" `Quick test_swizzle_transpose_f32;
          Alcotest.test_case "beats unswizzled" `Quick test_swizzle_beats_unswizzled;
          Alcotest.test_case "execute correct" `Quick test_swizzle_execute_correct;
        ] );
      ( "staging",
        [
          Alcotest.test_case "ldmatrix path" `Quick test_operand_staging_ldmatrix;
          Alcotest.test_case "rejects 1-D" `Quick test_operand_staging_rejects_1d;
        ] );
      ( "conversion",
        [
          Alcotest.test_case "classification" `Quick test_conversion_classification;
          Alcotest.test_case "execute all paths" `Quick test_conversion_execute_all_paths;
          Alcotest.test_case "cost ordering" `Quick test_conversion_cost_ordering;
        ] );
      ( "gather",
        [
          Alcotest.test_case "plan" `Quick test_gather_plan;
          Alcotest.test_case "execute" `Quick test_gather_execute;
        ] );
      ( "properties",
        q
          [
            prop_shuffle_moves_data;
            prop_conversion_execute;
            prop_swizzle_prediction_matches_simulation;
            prop_swizzle_never_worse_than_row_major;
            prop_swizzle_optimality_sampled;
          ] );
    ])
