(* Golden equivalence: the pass pipeline must reproduce the pre-split
   monolithic engine bit for bit.  The table below freezes the seed
   engine's stats for every shipped kernel x machine x mode (first
   listed size, num_warps = 4): the nine cost counters followed by the
   converts / noop / local / remat / unsupported / conversion counts,
   then the translation-validation certificate status (linear runs must
   prove, legacy runs are skipped: the padded baseline is costed, never
   lowered).  The runs go through {!Tir.Certify.run}, which also pins
   that certification observes without perturbing the result.
   Regenerate only for a deliberate cost-model change. *)

let golden = {golden|
gemm|RTX4090|linear|576 320 0 1152 72 32 640 32 3|3 0 3 3 0 0 3|proved
gemm|RTX4090|legacy|832 584 0 1152 72 0 1168 32 3|3 0 3 3 0 0 3|skipped
bf16xint16_gemm|RTX4090|linear|576 320 0 1152 72 32 656 32 3|3 0 3 3 0 0 3|proved
bf16xint16_gemm|RTX4090|legacy|832 584 0 1152 72 0 1184 32 3|3 0 3 3 0 0 3|skipped
int4_gemm|RTX4090|linear|560 224 0 1088 68 48 480 32 3|3 0 3 3 0 0 3|proved
int4_gemm|RTX4090|legacy|1056 580 0 1088 68 0 1192 32 3|3 0 3 3 0 1 3|skipped
fp8_gemm|RTX4090|linear|480 208 0 832 52 32 416 32 3|3 0 3 3 0 0 3|proved
fp8_gemm|RTX4090|legacy|992 500 0 832 52 0 1000 32 3|3 0 3 3 0 0 3|skipped
grouped_gemm|RTX4090|linear|1984 640 0 3584 224 64 1280 128 6|6 0 6 6 0 0 6|proved
grouped_gemm|RTX4090|legacy|2688 2016 0 3584 224 0 4032 128 6|6 0 6 6 0 0 6|skipped
addmm|RTX4090|linear|2848 704 0 5120 320 32 1536 128 4|4 0 4 4 0 0 4|proved
addmm|RTX4090|legacy|3456 2496 0 5120 320 0 5120 128 4|4 0 4 4 0 0 4|skipped
bmm|RTX4090|linear|656 304 0 1024 64 16 608 32 3|3 0 3 3 0 0 3|proved
bmm|RTX4090|legacy|960 768 0 1024 64 0 1536 32 3|3 0 3 3 0 0 3|skipped
template_attention|RTX4090|linear|656 464 160 1024 64 16 1360 32 4|6 0 4 4 1 0 6|proved
template_attention|RTX4090|legacy|1704 1192 0 1024 64 0 2240 32 12|10 0 12 12 1 0 10|skipped
flex_attention|RTX4090|linear|656 464 160 1024 64 16 1392 32 4|6 0 4 4 1 0 6|proved
flex_attention|RTX4090|legacy|1704 1192 0 1024 64 0 2272 32 12|10 0 12 12 1 0 10|skipped
attention_bwd|RTX4090|linear|944 480 160 896 56 16 1312 32 5|7 0 5 5 0 0 7|proved
attention_bwd|RTX4090|legacy|2184 1552 0 896 56 0 2880 32 12|10 0 12 12 0 0 10|skipped
welford|RTX4090|linear|256 256 640 2048 128 0 320 0 2|0 0 2 2 0 0 0|proved
welford|RTX4090|legacy|1800 1032 0 2048 128 0 1104 0 6|4 0 6 6 0 0 4|skipped
gather_gemv|RTX4090|linear|1152 384 320 4104 264 0 2304 0 2|1 0 2 2 0 0 1|proved
gather_gemv|RTX4090|legacy|6756 1868 0 4100 260 0 2328 0 5|2 0 4 4 0 0 2|skipped
rope|RTX4090|linear|0 0 256 1536 96 0 576 0 0|2 0 0 0 0 0 2|proved
rope|RTX4090|legacy|1280 576 0 1536 96 0 1216 0 2|2 0 2 2 0 0 2|skipped
embedding|RTX4090|linear|2048 512 0 8192 512 0 4096 0 1|1 0 1 1 0 0 1|proved
embedding|RTX4090|legacy|12288 2560 0 8192 512 0 4096 0 3|1 0 2 2 0 0 1|skipped
softmax|RTX4090|linear|256 256 640 2048 128 0 256 0 2|0 0 2 2 0 0 0|proved
softmax|RTX4090|legacy|1800 1032 0 2048 128 0 1040 0 6|4 0 6 6 0 0 4|skipped
layer_norm|RTX4090|linear|256 256 640 2048 128 0 256 0 2|0 0 2 2 0 0 0|proved
layer_norm|RTX4090|legacy|1800 1032 0 2048 128 0 1040 0 6|4 0 6 6 0 0 4|skipped
rms_norm|RTX4090|linear|128 128 320 2048 128 0 128 0 1|0 0 1 1 0 0 0|proved
rms_norm|RTX4090|legacy|900 516 0 2048 128 0 520 0 3|2 0 3 3 0 0 2|skipped
cross_entropy|RTX4090|linear|4864 1792 1920 4128 288 0 3840 0 5|2 0 5 5 0 0 2|proved
cross_entropy|RTX4090|legacy|7948 4588 0 4112 260 0 4056 0 8|5 0 8 8 0 0 5|skipped
fused_linear_cross_entropy|RTX4090|linear|11312 2824 48 4232 272 16 8208 256 4|4 0 4 4 0 0 4|proved
fused_linear_cross_entropy|RTX4090|legacy|20332 15412 0 4240 268 0 25704 256 11|8 0 11 11 0 0 8|skipped
cumsum|RTX4090|linear|8 8 1280 2048 128 0 128 0 1|0 0 1 1 0 0 0|proved
cumsum|RTX4090|legacy|8 8 1280 2048 128 0 128 0 1|0 0 1 1 0 0 0|skipped
jagged_sum|RTX4090|linear|136 136 1600 2048 128 0 256 0 2|0 0 2 2 0 0 0|proved
jagged_sum|RTX4090|legacy|908 524 1280 2048 128 0 648 0 4|2 0 4 4 0 2 2|skipped
softmax_bwd|RTX4090|linear|128 128 320 3072 192 0 256 0 1|0 0 1 1 0 0 0|proved
softmax_bwd|RTX4090|legacy|900 516 0 3072 192 0 648 0 3|2 0 3 3 0 0 2|skipped
jagged_mean|RTX4090|linear|1216 320 160 1536 96 0 448 0 3|0 0 2 2 0 0 0|proved
jagged_mean|RTX4090|legacy|1604 516 0 1536 96 0 648 0 5|2 0 4 4 0 0 2|skipped
low_mem_dropout|RTX4090|linear|0 0 0 2048 128 0 768 0 0|0 0 0 0 1 0 0|proved
low_mem_dropout|RTX4090|legacy|0 0 0 2048 128 0 768 0 0|0 0 0 0 1 0 0|skipped
swiglu|RTX4090|linear|0 0 0 3072 192 0 896 0 0|0 0 0 0 1 0 0|proved
swiglu|RTX4090|legacy|0 0 0 3072 192 0 896 0 0|0 0 0 0 1 0 0|skipped
geglu|RTX4090|linear|0 0 0 3072 192 0 1024 0 0|0 0 0 0 1 0 0|proved
geglu|RTX4090|legacy|0 0 0 3072 192 0 1024 0 0|0 0 0 0 1 0 0|skipped
vector_add|RTX4090|linear|0 0 0 3072 192 0 640 0 0|0 0 0 0 1 0 0|proved
vector_add|RTX4090|legacy|0 0 0 3072 192 0 640 0 0|0 0 0 0 1 0 0|skipped
gemm|GH200|linear|448 192 0 1152 72 32 384 32 3|3 0 3 3 0 0 3|proved
gemm|GH200|legacy|576 328 0 1152 72 0 656 32 3|3 0 3 3 0 0 3|skipped
bf16xint16_gemm|GH200|linear|448 192 0 1152 72 32 400 32 3|3 0 3 3 0 0 3|proved
bf16xint16_gemm|GH200|legacy|576 328 0 1152 72 0 672 32 3|3 0 3 3 0 0 3|skipped
int4_gemm|GH200|linear|448 192 0 1088 68 32 416 32 3|3 0 3 3 0 0 3|proved
int4_gemm|GH200|legacy|544 324 0 1088 68 0 680 32 3|3 0 3 3 0 1 3|skipped
fp8_gemm|GH200|linear|368 176 0 832 52 16 352 32 3|3 0 3 3 0 0 3|proved
fp8_gemm|GH200|legacy|480 244 0 832 52 0 488 32 3|3 0 3 3 0 0 3|skipped
grouped_gemm|GH200|linear|1472 384 0 3584 224 64 768 128 6|6 0 6 6 0 0 6|proved
grouped_gemm|GH200|legacy|1664 992 0 3584 224 0 1984 128 6|6 0 6 6 0 0 6|skipped
addmm|GH200|linear|2336 576 0 5120 320 32 1280 128 4|4 0 4 4 0 0 4|proved
addmm|GH200|legacy|2432 1472 0 5120 320 0 3072 128 4|4 0 4 4 0 0 4|skipped
bmm|GH200|linear|400 176 0 1024 64 16 352 32 3|3 0 3 3 0 0 3|proved
bmm|GH200|legacy|448 256 0 1024 64 0 512 32 3|3 0 3 3 0 0 3|skipped
template_attention|GH200|linear|400 208 160 1024 64 16 848 32 4|6 0 4 4 1 0 6|proved
template_attention|GH200|legacy|1192 680 0 1024 64 0 1216 32 12|10 0 12 12 1 0 10|skipped
flex_attention|GH200|linear|400 208 160 1024 64 16 880 32 4|6 0 4 4 1 0 6|proved
flex_attention|GH200|legacy|1192 680 0 1024 64 0 1248 32 12|10 0 12 12 1 0 10|skipped
attention_bwd|GH200|linear|560 224 160 896 56 16 800 32 5|7 0 5 5 0 0 7|proved
attention_bwd|GH200|legacy|1416 784 0 896 56 0 1344 32 12|10 0 12 12 0 0 10|skipped
welford|GH200|linear|256 256 640 2048 128 0 320 0 2|0 0 2 2 0 0 0|proved
welford|GH200|legacy|1800 1032 0 2048 128 0 1104 0 6|4 0 6 6 0 0 4|skipped
gather_gemv|GH200|linear|1152 384 320 4104 264 0 2304 0 2|1 0 2 2 0 0 1|proved
gather_gemv|GH200|legacy|6756 1868 0 4100 260 0 2328 0 5|2 0 4 4 0 0 2|skipped
rope|GH200|linear|0 0 256 1536 96 0 576 0 0|2 0 0 0 0 0 2|proved
rope|GH200|legacy|1280 576 0 1536 96 0 1216 0 2|2 0 2 2 0 0 2|skipped
embedding|GH200|linear|2048 512 0 8192 512 0 4096 0 1|1 0 1 1 0 0 1|proved
embedding|GH200|legacy|12288 2560 0 8192 512 0 4096 0 3|1 0 2 2 0 0 1|skipped
softmax|GH200|linear|256 256 640 2048 128 0 256 0 2|0 0 2 2 0 0 0|proved
softmax|GH200|legacy|1800 1032 0 2048 128 0 1040 0 6|4 0 6 6 0 0 4|skipped
layer_norm|GH200|linear|256 256 640 2048 128 0 256 0 2|0 0 2 2 0 0 0|proved
layer_norm|GH200|legacy|1800 1032 0 2048 128 0 1040 0 6|4 0 6 6 0 0 4|skipped
rms_norm|GH200|linear|128 128 320 2048 128 0 128 0 1|0 0 1 1 0 0 0|proved
rms_norm|GH200|legacy|900 516 0 2048 128 0 520 0 3|2 0 3 3 0 0 2|skipped
cross_entropy|GH200|linear|4864 1792 1920 4128 288 0 3840 0 5|2 0 5 5 0 0 2|proved
cross_entropy|GH200|legacy|7948 4588 0 4112 260 0 4056 0 8|5 0 8 8 0 0 5|skipped
fused_linear_cross_entropy|GH200|linear|7216 1800 48 4232 272 16 6160 256 4|4 0 4 4 0 0 4|proved
fused_linear_cross_entropy|GH200|legacy|12140 7220 0 4240 268 0 9320 256 11|8 0 11 11 0 0 8|skipped
cumsum|GH200|linear|8 8 1280 2048 128 0 128 0 1|0 0 1 1 0 0 0|proved
cumsum|GH200|legacy|8 8 1280 2048 128 0 128 0 1|0 0 1 1 0 0 0|skipped
jagged_sum|GH200|linear|136 136 1600 2048 128 0 256 0 2|0 0 2 2 0 0 0|proved
jagged_sum|GH200|legacy|908 524 1280 2048 128 0 648 0 4|2 0 4 4 0 2 2|skipped
softmax_bwd|GH200|linear|128 128 320 3072 192 0 256 0 1|0 0 1 1 0 0 0|proved
softmax_bwd|GH200|legacy|900 516 0 3072 192 0 648 0 3|2 0 3 3 0 0 2|skipped
jagged_mean|GH200|linear|1216 320 160 1536 96 0 448 0 3|0 0 2 2 0 0 0|proved
jagged_mean|GH200|legacy|1604 516 0 1536 96 0 648 0 5|2 0 4 4 0 0 2|skipped
low_mem_dropout|GH200|linear|0 0 0 2048 128 0 768 0 0|0 0 0 0 1 0 0|proved
low_mem_dropout|GH200|legacy|0 0 0 2048 128 0 768 0 0|0 0 0 0 1 0 0|skipped
swiglu|GH200|linear|0 0 0 3072 192 0 896 0 0|0 0 0 0 1 0 0|proved
swiglu|GH200|legacy|0 0 0 3072 192 0 896 0 0|0 0 0 0 1 0 0|skipped
geglu|GH200|linear|0 0 0 3072 192 0 1024 0 0|0 0 0 0 1 0 0|proved
geglu|GH200|legacy|0 0 0 3072 192 0 1024 0 0|0 0 0 0 1 0 0|skipped
vector_add|GH200|linear|0 0 0 3072 192 0 640 0 0|0 0 0 0 1 0 0|proved
vector_add|GH200|legacy|0 0 0 3072 192 0 640 0 0|0 0 0 0 1 0 0|skipped
gemm|MI250|linear|544 404 0 1152 84 0 808 32 2|2 0 2 2 0 0 2|proved
gemm|MI250|legacy|832 484 0 1152 36 0 968 32 3|3 0 3 3 0 0 3|skipped
bf16xint16_gemm|MI250|linear|544 404 0 1152 84 0 816 32 2|2 0 2 2 0 0 2|proved
bf16xint16_gemm|MI250|legacy|832 484 0 1152 36 0 976 32 3|3 0 3 3 0 0 3|skipped
int4_gemm|MI250|linear|544 432 0 1088 84 0 880 32 2|2 0 2 2 0 0 2|proved
int4_gemm|MI250|legacy|1056 484 0 1088 36 0 984 32 3|3 0 3 3 0 1 3|skipped
fp8_gemm|MI250|linear|416 360 0 832 76 0 720 32 2|2 0 2 2 0 0 2|proved
fp8_gemm|MI250|legacy|992 412 0 832 28 0 824 32 3|3 0 3 3 0 0 3|skipped
grouped_gemm|MI250|linear|1664 864 0 3584 304 0 1728 128 4|4 0 4 4 0 0 4|proved
grouped_gemm|MI250|legacy|2688 1648 0 3584 112 0 3296 128 6|6 0 6 6 0 0 6|skipped
addmm|MI250|linear|2432 688 0 5120 352 0 1440 128 3|3 0 3 3 0 0 3|proved
addmm|MI250|legacy|3456 1824 0 5120 160 0 3712 128 4|4 0 4 4 0 0 4|skipped
bmm|MI250|linear|704 360 0 1024 80 0 720 32 2|2 0 2 2 0 0 2|proved
bmm|MI250|legacy|960 672 0 1024 32 0 1344 32 3|3 0 3 3 0 0 3|skipped
template_attention|MI250|linear|832 688 192 1024 80 0 1592 32 4|6 0 4 4 1 0 6|proved
template_attention|MI250|legacy|1632 920 0 1024 32 0 1768 32 12|10 0 12 12 1 0 10|skipped
flex_attention|MI250|linear|832 688 192 1024 80 0 1608 32 4|6 0 4 4 1 0 6|proved
flex_attention|MI250|legacy|1632 920 0 1024 32 0 1784 32 12|10 0 12 12 1 0 10|skipped
attention_bwd|MI250|linear|1376 852 192 896 28 0 1880 32 5|7 0 5 5 0 0 7|proved
attention_bwd|MI250|legacy|2112 1260 0 896 28 0 2408 32 12|10 0 12 12 0 0 10|skipped
welford|MI250|linear|0 0 384 2048 64 0 160 0 0|0 0 0 0 0 0 0|proved
welford|MI250|legacy|1488 520 0 2048 64 0 560 0 6|4 0 6 6 0 0 4|skipped
gather_gemv|MI250|linear|3428 740 192 4100 132 0 1224 0 5|2 0 4 4 0 0 2|proved
gather_gemv|MI250|legacy|4164 964 0 4100 132 0 1224 0 5|2 0 4 4 0 0 2|skipped
rope|MI250|linear|0 0 128 1536 48 0 288 0 0|2 0 0 0 0 0 2|proved
rope|MI250|legacy|1280 288 0 1536 48 0 608 0 2|2 0 2 2 0 0 2|skipped
embedding|MI250|linear|2048 256 0 8192 256 0 2048 0 1|1 0 1 1 0 0 1|proved
embedding|MI250|legacy|7680 1280 0 8192 256 0 2048 0 3|1 0 2 2 0 0 1|skipped
softmax|MI250|linear|0 0 384 2048 64 0 128 0 0|0 0 0 0 0 0 0|proved
softmax|MI250|legacy|1488 520 0 2048 64 0 528 0 6|4 0 6 6 0 0 4|skipped
layer_norm|MI250|linear|0 0 384 2048 64 0 128 0 0|0 0 0 0 0 0 0|proved
layer_norm|MI250|legacy|1488 520 0 2048 64 0 528 0 6|4 0 6 6 0 0 4|skipped
rms_norm|MI250|linear|0 0 192 2048 64 0 64 0 0|0 0 0 0 0 0 0|proved
rms_norm|MI250|legacy|744 260 0 2048 64 0 264 0 3|2 0 3 3 0 0 2|skipped
cross_entropy|MI250|linear|768 768 2304 4128 160 0 896 0 3|0 0 3 3 0 0 0|proved
cross_entropy|MI250|legacy|6808 2540 0 4112 132 0 2136 0 8|5 0 8 8 0 0 5|skipped
fused_linear_cross_entropy|MI250|linear|15456 1988 192 4232 136 0 5256 256 4|4 0 4 4 0 0 4|proved
fused_linear_cross_entropy|MI250|legacy|19192 12080 0 4240 136 0 21216 256 11|8 0 11 11 0 0 8|skipped
cumsum|MI250|linear|0 0 768 2048 64 0 64 0 0|0 0 0 0 0 0 0|proved
cumsum|MI250|legacy|0 0 768 2048 64 0 64 0 0|0 0 0 0 0 0 0|skipped
jagged_sum|MI250|linear|0 0 960 2048 64 0 128 0 0|0 0 0 0 0 0 0|proved
jagged_sum|MI250|legacy|744 260 768 2048 64 0 328 0 3|2 0 3 3 0 2 2|skipped
softmax_bwd|MI250|linear|0 0 192 3072 96 0 128 0 0|0 0 0 0 0 0 0|proved
softmax_bwd|MI250|legacy|744 260 0 3072 96 0 328 0 3|2 0 3 3 0 0 2|skipped
jagged_mean|MI250|linear|576 128 96 1536 48 0 224 0 2|0 0 1 1 0 0 0|proved
jagged_mean|MI250|legacy|952 260 0 1536 48 0 328 0 5|2 0 4 4 0 0 2|skipped
low_mem_dropout|MI250|linear|0 0 0 2048 64 0 384 0 0|0 0 0 0 1 0 0|proved
low_mem_dropout|MI250|legacy|0 0 0 2048 64 0 384 0 0|0 0 0 0 1 0 0|skipped
swiglu|MI250|linear|0 0 0 3072 96 0 448 0 0|0 0 0 0 1 0 0|proved
swiglu|MI250|legacy|0 0 0 3072 96 0 448 0 0|0 0 0 0 1 0 0|skipped
geglu|MI250|linear|0 0 0 3072 96 0 512 0 0|0 0 0 0 1 0 0|proved
geglu|MI250|legacy|0 0 0 3072 96 0 512 0 0|0 0 0 0 1 0 0|skipped
vector_add|MI250|linear|0 0 0 3072 96 0 320 0 0|0 0 0 0 1 0 0|proved
vector_add|MI250|legacy|0 0 0 3072 96 0 320 0 0|0 0 0 0 1 0 0|skipped
gemm|PVC|linear|704 224 0 1152 336 0 448 32 2|2 0 2 2 0 0 2|proved
gemm|PVC|legacy|1088 912 0 1152 144 0 1824 32 3|3 0 3 3 0 0 3|skipped
bf16xint16_gemm|PVC|linear|704 224 0 1152 336 0 480 32 2|2 0 2 2 0 0 2|proved
bf16xint16_gemm|PVC|legacy|1088 912 0 1152 144 0 1856 32 3|3 0 3 3 0 0 3|skipped
int4_gemm|PVC|linear|608 224 0 1088 328 0 512 32 2|2 0 2 2 0 0 2|proved
int4_gemm|PVC|legacy|1312 904 0 1088 136 0 1872 32 3|3 0 3 3 0 1 3|skipped
fp8_gemm|PVC|linear|352 160 0 832 296 0 320 32 2|2 0 2 2 0 0 2|proved
fp8_gemm|PVC|legacy|1184 744 0 832 104 0 1488 32 3|3 0 3 3 0 0 3|skipped
grouped_gemm|PVC|linear|1792 448 0 3584 1216 0 896 128 4|4 0 4 4 0 0 4|proved
grouped_gemm|PVC|legacy|3456 3008 0 3584 448 0 6016 128 6|6 0 6 6 0 0 6|skipped
addmm|PVC|linear|3328 832 0 5120 1408 0 1920 128 3|3 0 3 3 0 0 3|proved
addmm|PVC|legacy|4608 3968 0 5120 640 0 8192 128 4|4 0 4 4 0 0 4|skipped
bmm|PVC|linear|640 160 0 1024 320 0 320 32 2|2 0 2 2 0 0 2|proved
bmm|PVC|legacy|1152 1024 0 1024 128 0 2048 32 3|3 0 3 3 0 0 3|skipped
template_attention|PVC|linear|896 320 768 1024 320 0 1504 32 4|6 0 4 4 1 0 6|proved
template_attention|PVC|legacy|2216 1864 0 1024 128 0 3440 32 12|10 0 12 12 1 0 10|skipped
flex_attention|PVC|linear|896 320 768 1024 320 0 1568 32 4|6 0 4 4 1 0 6|proved
flex_attention|PVC|legacy|2216 1864 0 1024 128 0 3504 32 12|10 0 12 12 1 0 10|skipped
attention_bwd|PVC|linear|1088 320 768 896 208 0 1344 32 4|6 0 4 4 0 0 6|proved
attention_bwd|PVC|legacy|2760 2072 0 896 112 0 3696 32 12|10 0 12 12 0 0 10|skipped
welford|PVC|linear|512 512 1024 2048 256 0 640 0 2|0 0 2 2 0 0 0|proved
welford|PVC|legacy|2440 1864 0 2048 256 0 1808 0 6|4 0 6 6 0 0 4|skipped
gather_gemv|PVC|linear|2176 640 256 4104 520 0 4608 0 2|1 0 2 2 0 0 1|proved
gather_gemv|PVC|legacy|11860 3660 0 4100 516 0 4632 0 5|2 0 4 4 0 0 2|skipped
rope|PVC|linear|0 0 512 1536 192 0 1152 0 0|2 0 0 0 0 0 2|proved
rope|PVC|legacy|2304 1152 0 1536 192 0 2432 0 2|2 0 2 2 0 0 2|skipped
embedding|PVC|linear|4096 1024 0 8192 1024 0 8192 0 1|1 0 1 1 0 0 1|proved
embedding|PVC|legacy|21504 5120 0 8192 1024 0 8192 0 3|1 0 2 2 0 0 1|skipped
softmax|PVC|linear|512 512 1024 2048 256 0 512 0 2|0 0 2 2 0 0 0|proved
softmax|PVC|legacy|2440 1864 0 2048 256 0 1680 0 6|4 0 6 6 0 0 4|skipped
layer_norm|PVC|linear|512 512 1024 2048 256 0 512 0 2|0 0 2 2 0 0 0|proved
layer_norm|PVC|legacy|2440 1864 0 2048 256 0 1680 0 6|4 0 6 6 0 0 4|skipped
rms_norm|PVC|linear|256 256 512 2048 256 0 256 0 1|0 0 1 1 0 0 0|proved
rms_norm|PVC|legacy|1220 932 0 2048 256 0 840 0 3|2 0 3 3 0 0 2|skipped
cross_entropy|PVC|linear|8960 2816 1536 4128 544 0 7680 0 5|2 0 5 5 0 0 2|proved
cross_entropy|PVC|legacy|10828 8684 0 4104 516 0 7896 0 8|5 0 8 8 0 0 5|skipped
fused_linear_cross_entropy|PVC|linear|6240 1616 4480 4232 536 0 15008 256 2|4 0 2 2 0 0 4|proved
fused_linear_cross_entropy|PVC|legacy|23212 20028 0 4232 532 0 30584 256 11|8 0 11 11 0 0 8|skipped
cumsum|PVC|linear|8 8 2048 2048 256 0 256 0 1|0 0 1 1 0 0 0|proved
cumsum|PVC|legacy|8 8 2048 2048 256 0 256 0 1|0 0 1 1 0 0 0|skipped
jagged_sum|PVC|linear|264 264 2560 2048 256 0 512 0 2|0 0 2 2 0 0 0|proved
jagged_sum|PVC|legacy|1228 940 2048 2048 256 0 1096 0 4|2 0 4 4 0 2 2|skipped
softmax_bwd|PVC|linear|256 256 512 3072 384 0 512 0 1|0 0 1 1 0 0 0|proved
softmax_bwd|PVC|legacy|1220 932 0 3072 384 0 1096 0 3|2 0 3 3 0 0 2|skipped
jagged_mean|PVC|linear|128 128 256 1536 192 0 896 0 1|0 0 1 1 0 0 0|proved
jagged_mean|PVC|legacy|2916 980 0 1536 192 0 1192 0 5|2 0 4 4 0 0 2|skipped
low_mem_dropout|PVC|linear|0 0 0 2048 256 0 1536 0 0|0 0 0 0 1 0 0|proved
low_mem_dropout|PVC|legacy|0 0 0 2048 256 0 1536 0 0|0 0 0 0 1 0 0|skipped
swiglu|PVC|linear|0 0 0 3072 384 0 1792 0 0|0 0 0 0 1 0 0|proved
swiglu|PVC|legacy|0 0 0 3072 384 0 1792 0 0|0 0 0 0 1 0 0|skipped
geglu|PVC|linear|0 0 0 3072 384 0 2048 0 0|0 0 0 0 1 0 0|proved
geglu|PVC|legacy|0 0 0 3072 384 0 2048 0 0|0 0 0 0 1 0 0|skipped
vector_add|PVC|linear|0 0 0 3072 384 0 1280 0 0|0 0 0 0 1 0 0|proved
vector_add|PVC|legacy|0 0 0 3072 384 0 1280 0 0|0 0 0 0 1 0 0|skipped
|golden}

let machines =
  List.map (fun (m : Gpusim.Machine.t) -> (m.Gpusim.Machine.name, m)) Gpusim.Machine.all_with_extras

let check_line line =
  match String.split_on_char '|' line with
  | [ kernel; machine_name; mode_name; cost_s; stats_s; status_s ] ->
      let k = Tir.Kernels.find kernel in
      let machine = List.assoc machine_name machines in
      let mode =
        match mode_name with
        | "linear" -> Tir.Engine.Linear
        | "legacy" -> Tir.Engine.Legacy_mode
        | m -> Alcotest.failf "bad mode %s" m
      in
      let size = List.hd k.Tir.Kernels.sizes in
      let report = Tir.Certify.run machine ~mode (k.Tir.Kernels.build ~size) in
      let r = report.Tir.Certify.result in
      let c = r.Tir.Engine.cost in
      let got_cost =
        Printf.sprintf "%d %d %d %d %d %d %d %d %d" c.Gpusim.Cost.smem_wavefronts
          c.Gpusim.Cost.smem_insts c.Gpusim.Cost.shuffles c.Gpusim.Cost.gmem_transactions
          c.Gpusim.Cost.gmem_insts c.Gpusim.Cost.ldmatrix c.Gpusim.Cost.alu
          c.Gpusim.Cost.mma c.Gpusim.Cost.barriers
      in
      let got_stats =
        Printf.sprintf "%d %d %d %d %d %d %d" r.Tir.Engine.converts
          r.Tir.Engine.noop_converts r.Tir.Engine.local_loads r.Tir.Engine.local_stores
          r.Tir.Engine.remats
          (List.length r.Tir.Engine.unsupported)
          (List.length r.Tir.Engine.conversions)
      in
      let label = Printf.sprintf "%s on %s (%s)" kernel machine_name mode_name in
      Alcotest.(check string) (label ^ " cost") cost_s got_cost;
      Alcotest.(check string) (label ^ " stats") stats_s got_stats;
      Alcotest.(check string) (label ^ " certificate") status_s (Tir.Certify.status report)
  | _ -> Alcotest.failf "malformed golden line: %s" line

let test_golden () =
  let lines =
    String.split_on_char '\n' golden |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check bool) "table covers kernels x machines x modes" true
    (List.length lines = List.length Tir.Kernels.all * List.length machines * 2);
  List.iter check_line lines

let () =
  Alcotest.run "pipeline_golden"
    [ ("golden", [ Alcotest.test_case "engine stats vs seed" `Quick test_golden ]) ]
