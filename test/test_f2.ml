(* Tests for the F2 linear-algebra substrate. *)

open F2

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 Bitvec} *)

let test_bitvec_basics () =
  check_int "unit 3" 8 (Bitvec.unit 3);
  check_bool "bit" true (Bitvec.bit 0b1010 1);
  check_bool "bit" false (Bitvec.bit 0b1010 0);
  check_int "add" 0b0110 (Bitvec.add 0b1010 0b1100);
  check_int "popcount" 3 (Bitvec.popcount 0b1011);
  check_bool "dot" true (Bitvec.dot 0b1011 0b0001);
  check_bool "dot even" false (Bitvec.dot 0b1011 0b0011);
  check_int "msb" 3 (Bitvec.msb 0b1010);
  check_int "msb zero" (-1) (Bitvec.msb 0);
  check_int "lsb" 1 (Bitvec.lsb 0b1010);
  check_int "width" 4 (Bitvec.width 0b1010);
  Alcotest.(check (list int)) "support" [ 0; 2; 3 ] (Bitvec.support 0b1101)

let test_bitvec_fields () =
  check_int "extract" 0b101 (Bitvec.extract 0b11010 ~pos:1 ~len:3);
  check_int "insert" 0b10110 (Bitvec.insert 0b10000 ~pos:1 ~len:3 0b011);
  check_int "all length" 8 (List.length (Bitvec.all 3));
  Alcotest.(check string) "to_string" "0101" (Bitvec.to_string ~width:4 0b101)

let test_bitvec_ntz () =
  check_int "ntz" 1 (Bitvec.ntz 0b1010);
  check_int "ntz one" 0 (Bitvec.ntz 1);
  check_int "ntz pow2" 3 (Bitvec.ntz 8);
  check_int "ntz zero" (-1) (Bitvec.ntz 0);
  check_int "ntz = lsb" (Bitvec.lsb 0b101100) (Bitvec.ntz 0b101100);
  check_int "ntz top bit" 62 (Bitvec.ntz (1 lsl 62))

(* {1 Bitmatrix} *)

let m rows cols = Bitmatrix.make ~rows (Array.of_list cols)

let test_matrix_apply () =
  (* The paper's Section 4.1 running example: layout A as an 8x8 matrix.
     Columns (flattened output, j in low 4 bits, i in high 4 bits):
     reg0 -> j bit0; reg1 -> i bit0; thr0 -> j bit1; thr1 -> j bit2;
     thr2 -> j bit3; thr3 -> i bit1; thr4 -> i bit2; wrp0 -> i bit3. *)
  let a =
    m 8 [ 0b00000001; 0b00010000; 0b00000010; 0b00000100; 0b00001000; 0b00100000;
          0b01000000; 0b10000000 ]
  in
  (* Register r1 (0b01) in thread t9 (0b01001) of warp w0: input vector
     reg bits 0-1, thr bits 2-6, wrp bit 7. *)
  let v = 0b0_01001_01 in
  let w = Bitmatrix.apply a v in
  check_int "j = 3" 3 (Bitvec.extract w ~pos:0 ~len:4);
  check_int "i = 2" 2 (Bitvec.extract w ~pos:4 ~len:4);
  check_bool "invertible" true (Bitmatrix.is_invertible a);
  let ai = Bitmatrix.inverse a in
  check_int "roundtrip" v (Bitmatrix.apply ai w)

let test_matrix_mul () =
  let a = m 2 [ 0b01; 0b11 ] in
  let b = m 2 [ 0b10; 0b01 ] in
  let ab = Bitmatrix.mul a b in
  (* column 0 of ab = a * e1 = [1;1]; column 1 = a * e0 = [1;0] *)
  check_int "col0" 0b11 (Bitmatrix.column ab 0);
  check_int "col1" 0b01 (Bitmatrix.column ab 1);
  let i = Bitmatrix.identity 3 in
  check_bool "id*id" true (Bitmatrix.is_identity (Bitmatrix.mul i i))

let test_matrix_rank () =
  check_int "rank id" 4 (Bitmatrix.rank (Bitmatrix.identity 4));
  check_int "rank dup" 1 (Bitmatrix.rank (m 2 [ 0b01; 0b01; 0b01 ]));
  check_int "rank zero" 0 (Bitmatrix.rank (Bitmatrix.zero ~rows:3 ~cols:2));
  check_bool "surjective" true (Bitmatrix.is_surjective (m 2 [ 0b01; 0b11; 0b10 ]));
  check_bool "not injective" false (Bitmatrix.is_injective (m 2 [ 0b01; 0b11; 0b10 ]))

let test_matrix_solve () =
  let a = m 3 [ 0b011; 0b101; 0b110 ] in
  (* Columns sum to 0, so rank is 2 and the kernel is {e0+e1+e2}. *)
  check_int "rank" 2 (Bitmatrix.rank a);
  (match Bitmatrix.solve a 0b110 with
  | Some x -> check_int "solution maps back" 0b110 (Bitmatrix.apply a x)
  | None -> Alcotest.fail "expected a solution");
  (match Bitmatrix.solve a 0b111 with
  | Some _ -> Alcotest.fail "0b111 is not in the image"
  | None -> ());
  Alcotest.(check (list int)) "kernel" [ 0b111 ] (Bitmatrix.kernel a)

let test_right_inverse () =
  (* A surjective 2x3 map. *)
  let a = m 2 [ 0b01; 0b11; 0b10 ] in
  let x = Bitmatrix.right_inverse a in
  check_bool "a x = id" true (Bitmatrix.is_identity (Bitmatrix.mul a x))

let test_block_diag_divide () =
  let a = m 2 [ 0b01; 0b11 ] in
  let b = m 3 [ 0b100; 0b010; 0b001 ] in
  let ab = Bitmatrix.block_diag a b in
  check_int "rows" 5 (Bitmatrix.rows ab);
  check_int "cols" 5 (Bitmatrix.cols ab);
  (match Bitmatrix.divide_left ab a with
  | Some q -> check_bool "quotient" true (Bitmatrix.equal q b)
  | None -> Alcotest.fail "division should succeed");
  (* Division by a mismatched tile fails. *)
  let bad = m 2 [ 0b10; 0b11 ] in
  check_bool "mismatch" true (Bitmatrix.divide_left ab bad = None)

let test_permutation () =
  check_bool "id is perm" true (Bitmatrix.is_permutation (Bitmatrix.identity 4));
  check_bool "zero col ok" true (Bitmatrix.is_permutation (m 2 [ 0b01; 0b00; 0b10 ]));
  check_bool "dup col not" false (Bitmatrix.is_permutation (m 2 [ 0b01; 0b01 ]));
  check_bool "two bits not" false (Bitmatrix.is_permutation (m 2 [ 0b11 ]))

(* {1 Subspace} *)

let test_subspace_basis () =
  let b = Subspace.echelon_basis [ 0b110; 0b011; 0b101 ] in
  check_int "dim" 2 (List.length b);
  check_bool "mem" true (Subspace.mem b 0b101);
  check_bool "not mem" false (Subspace.mem b 0b001);
  check_int "dim fn" 2 (Subspace.dim [ 0b110; 0b011; 0b101 ])

let test_subspace_complete () =
  let ext = Subspace.complete_basis ~dim:4 [ 0b0011; 0b0110 ] in
  check_int "extension size" 2 (List.length ext);
  check_int "full dim" 4 (Subspace.dim (0b0011 :: 0b0110 :: ext))

let test_subspace_intersection () =
  let a = [ 0b001; 0b010 ] and b = [ 0b010; 0b100 ] in
  let i = Subspace.intersection a b in
  check_int "dim 1" 1 (List.length i);
  check_bool "is e1" true (Subspace.mem [ 0b010 ] (List.hd i));
  (* Trivial intersection. *)
  check_int "trivial" 0 (List.length (Subspace.intersection [ 0b001 ] [ 0b010 ]));
  (* Non-axis-aligned intersection: span{e0+e1, e2} and span{e0+e1+e2}
     intersect trivially; span{e0+e1,e2} and span{e0+e1} in dim 1. *)
  check_int "skew" 1 (List.length (Subspace.intersection [ 0b011; 0b100 ] [ 0b111 ]))

let test_subspace_span_elements () =
  let elems = Subspace.span_elements [ 0b011; 0b101 ] in
  Alcotest.(check (list int)) "span" [ 0b000; 0b011; 0b101; 0b110 ]
    (Array.to_list elems |> List.sort compare)

(* {1 Properties} *)

let gen_matrix =
  QCheck.Gen.(
    let* rows = int_range 1 8 in
    let* cols = int_range 1 8 in
    let* data = list_repeat cols (int_bound ((1 lsl rows) - 1)) in
    return (Bitmatrix.make ~rows (Array.of_list data)))

let arb_matrix = QCheck.make gen_matrix ~print:(Format.asprintf "%a" Bitmatrix.pp)

let prop_solve_consistent =
  QCheck.Test.make ~name:"solve returns a valid preimage" ~count:500 arb_matrix (fun a ->
      let b = Bitmatrix.apply a ((1 lsl Bitmatrix.cols a) - 1) in
      match Bitmatrix.solve a b with
      | Some x -> Bitmatrix.apply a x = b
      | None -> false)

let prop_right_inverse =
  QCheck.Test.make ~name:"right inverse of surjective maps" ~count:500 arb_matrix (fun a ->
      QCheck.assume (Bitmatrix.is_surjective a);
      Bitmatrix.is_identity (Bitmatrix.mul a (Bitmatrix.right_inverse a)))

let prop_kernel =
  QCheck.Test.make ~name:"kernel vectors map to zero" ~count:500 arb_matrix (fun a ->
      List.for_all (fun k -> Bitmatrix.apply a k = 0) (Bitmatrix.kernel a))

let prop_rank_nullity =
  QCheck.Test.make ~name:"rank-nullity" ~count:500 arb_matrix (fun a ->
      Bitmatrix.rank a + List.length (Bitmatrix.kernel a) = Bitmatrix.cols a)

let prop_block_diag_divide =
  QCheck.Test.make ~name:"(a x b) /l a = b" ~count:500
    (QCheck.pair arb_matrix arb_matrix) (fun (a, b) ->
      match Bitmatrix.divide_left (Bitmatrix.block_diag a b) a with
      | Some q -> Bitmatrix.equal q b
      | None -> false)

let prop_intersection_dim =
  let gen_basis = QCheck.Gen.(list_size (int_range 0 4) (int_range 1 63)) in
  QCheck.Test.make ~name:"dim(U) + dim(V) = dim(U+V) + dim(U and V)" ~count:500
    (QCheck.make QCheck.Gen.(pair gen_basis gen_basis))
    (fun (a, b) ->
      let da = Subspace.dim a and db = Subspace.dim b in
      let ds = Subspace.dim (a @ b) in
      let di = List.length (Subspace.intersection a b) in
      da + db = ds + di)

(* {2 Echelon reference model}

   The list-of-pivots Gaussian elimination that the MSB-indexed
   [echelonize] replaced, kept as an executable specification: both
   only ever reduce by the pivot whose MSB matches the current value,
   so they must agree bit for bit. *)

let ref_reduce pivots v comb =
  let rec go v comb =
    if v = 0 then (v, comb)
    else
      match List.assoc_opt (Bitvec.msb v) pivots with
      | Some (pv, pc) -> go (v lxor pv) (comb lxor pc)
      | None -> (v, comb)
  in
  go v comb

let ref_pivots a =
  let pivots = ref [] in
  for j = 0 to Bitmatrix.cols a - 1 do
    let v, comb = ref_reduce !pivots (Bitmatrix.column a j) (Bitvec.unit j) in
    if v <> 0 then pivots := (Bitvec.msb v, (v, comb)) :: !pivots
  done;
  !pivots

let ref_solve a b =
  let v, comb = ref_reduce (ref_pivots a) b 0 in
  if v = 0 then Some comb else None

let prop_echelon_rank_matches_reference =
  QCheck.Test.make ~name:"indexed echelon rank = reference rank" ~count:500 arb_matrix
    (fun a ->
      Bitmatrix.echelon_rank (Bitmatrix.echelonize a) = List.length (ref_pivots a))

let prop_solve_matches_reference =
  QCheck.Test.make ~name:"indexed solve = reference solve (all RHS)" ~count:100 arb_matrix
    (fun a ->
      List.for_all
        (fun b -> Bitmatrix.solve a b = ref_solve a b)
        (Bitvec.all (Bitmatrix.rows a)))

let prop_solve_with_multi_rhs =
  QCheck.Test.make ~name:"one echelonize serves every RHS" ~count:100 arb_matrix (fun a ->
      let e = Bitmatrix.echelonize a in
      List.for_all
        (fun b -> Bitmatrix.solve_with e b = Bitmatrix.solve a b)
        (Bitvec.all (Bitmatrix.rows a)))

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose is an involution" ~count:500 arb_matrix (fun a ->
      Bitmatrix.equal (Bitmatrix.transpose (Bitmatrix.transpose a)) a)

let prop_transpose_entries =
  QCheck.Test.make ~name:"transpose entries: t[j,i] = a[i,j]" ~count:500 arb_matrix
    (fun a ->
      let t = Bitmatrix.transpose a in
      List.for_all
        (fun j ->
          List.for_all
            (fun i ->
              Bitvec.bit (Bitmatrix.column a j) i = Bitvec.bit (Bitmatrix.column t i) j)
            (List.init (Bitmatrix.rows a) Fun.id))
        (List.init (Bitmatrix.cols a) Fun.id))

let prop_intersection_members =
  let gen_basis = QCheck.Gen.(list_size (int_range 0 4) (int_range 1 63)) in
  QCheck.Test.make ~name:"intersection vectors lie in both spans" ~count:500
    (QCheck.make QCheck.Gen.(pair gen_basis gen_basis))
    (fun (a, b) ->
      Subspace.intersection a b
      |> List.for_all (fun v -> Subspace.mem a v && Subspace.mem b v))

(* {2 M4RM differential suite}

   [echelonize_m4rm] must be bit-identical to the one-pivot-at-a-time
   [echelonize] — same rank, same pivot (value, combination) pairs, same
   solutions and kernels — because the golden tables downstream pin
   exact solver outputs.  The generator deliberately covers the window
   machinery (tall matrices spanning several k-bit windows) and the
   degenerate shapes (zero columns, duplicated columns, rank
   deficiency) where table bookkeeping is easiest to get wrong. *)

let gen_matrix_struct =
  QCheck.Gen.(
    let* rows = int_range 1 50 in
    let* cols = int_range 1 12 in
    let* data = list_repeat cols (int_bound ((1 lsl rows) - 1)) in
    let* degenerate = bool in
    let* zero_mask = int_bound ((1 lsl cols) - 1) in
    let* dup = int_bound (cols - 1) in
    let arr = Array.of_list data in
    if degenerate then begin
      Array.iteri (fun j _ -> if zero_mask land (1 lsl j) <> 0 then arr.(j) <- 0) arr;
      arr.(dup) <- arr.(0)
    end;
    return (Bitmatrix.make ~rows arr))

let arb_matrix_struct =
  QCheck.make gen_matrix_struct ~print:(Format.asprintf "%a" Bitmatrix.pp)

(* A matrix together with a handful of right-hand sides: half arbitrary
   (usually outside the image of a rank-deficient map), half images of
   random vectors (always solvable). *)
let arb_matrix_rhs =
  let gen =
    QCheck.Gen.(
      let* a = gen_matrix_struct in
      let rows = Bitmatrix.rows a and cols = Bitmatrix.cols a in
      let* raw = list_size (int_range 1 6) (int_bound ((1 lsl rows) - 1)) in
      let* xs = list_size (int_range 1 6) (int_bound ((1 lsl cols) - 1)) in
      let images = List.map (Bitmatrix.apply a) xs in
      return (a, Array.of_list (raw @ images)))
  in
  QCheck.make gen ~print:(fun (a, bs) ->
      Format.asprintf "%a with rhs [%s]" Bitmatrix.pp a
        (String.concat "; " (Array.to_list (Array.map string_of_int bs))))

let prop_m4rm_rank =
  QCheck.Test.make ~name:"m4rm rank = pivot rank" ~count:1000 arb_matrix_struct (fun a ->
      Bitmatrix.echelon_rank (Bitmatrix.echelonize_m4rm a)
      = Bitmatrix.echelon_rank (Bitmatrix.echelonize a))

let prop_m4rm_pivots =
  QCheck.Test.make ~name:"m4rm pivots = pivot pivots (values and combinations)" ~count:1000
    arb_matrix_struct (fun a ->
      Bitmatrix.echelon_pivots (Bitmatrix.echelonize_m4rm a)
      = Bitmatrix.echelon_pivots (Bitmatrix.echelonize a))

let prop_m4rm_solve =
  QCheck.Test.make ~name:"m4rm solve = pivot solve (random and image RHS)" ~count:1000
    arb_matrix_rhs (fun (a, bs) ->
      let em = Bitmatrix.echelonize_m4rm a and ep = Bitmatrix.echelonize a in
      Array.for_all (fun b -> Bitmatrix.solve_with em b = Bitmatrix.solve_with ep b) bs)

let prop_m4rm_kernel =
  QCheck.Test.make ~name:"m4rm kernel = pivot kernel" ~count:1000 arb_matrix_struct (fun a ->
      Bitmatrix.kernel_with (Bitmatrix.echelonize_m4rm a)
      = Bitmatrix.kernel_with (Bitmatrix.echelonize a))

let prop_m4rm_k_sweep =
  QCheck.Test.make ~name:"m4rm pivots invariant across window widths k" ~count:200
    arb_matrix_struct (fun a ->
      let want = Bitmatrix.echelon_pivots (Bitmatrix.echelonize a) in
      List.for_all
        (fun k -> Bitmatrix.echelon_pivots (Bitmatrix.echelonize_m4rm ~k a) = want)
        [ 1; 2; 3; 4; 5; 6; 7; 8 ])

let prop_solve_many =
  QCheck.Test.make ~name:"solve_many = map solve" ~count:1000 arb_matrix_rhs (fun (a, bs) ->
      let e = Bitmatrix.factorize a in
      Bitmatrix.solve_many e bs = Array.map (Bitmatrix.solve a) bs)

let prop_prepare_idempotent =
  QCheck.Test.make ~name:"prepare is idempotent" ~count:1000 arb_matrix_rhs (fun (a, bs) ->
      let e = Bitmatrix.factorize a in
      let before = Array.map (Bitmatrix.solve_with e) bs in
      Bitmatrix.prepare e;
      Bitmatrix.prepare e;
      Array.map (Bitmatrix.solve_with e) bs = before)

let prop_right_inverse_with =
  QCheck.Test.make ~name:"right_inverse_with = right_inverse on surjective maps" ~count:1000
    arb_matrix (fun a ->
      QCheck.assume (Bitmatrix.is_surjective a);
      let x = Bitmatrix.right_inverse_with (Bitmatrix.factorize a) in
      Bitmatrix.equal x (Bitmatrix.right_inverse a)
      && Bitmatrix.is_identity (Bitmatrix.mul a x))

let prop_compose_many =
  let gen =
    QCheck.Gen.(
      let* a = gen_matrix_struct in
      let rows = Bitmatrix.rows a in
      let* n = int_range 1 4 in
      let* bs =
        list_repeat n
          (let* c = int_range 1 6 in
           let* data = list_repeat c (int_bound ((1 lsl rows) - 1)) in
           return (Bitmatrix.make ~rows (Array.of_list data)))
      in
      return (a, Array.of_list bs))
  in
  QCheck.Test.make ~name:"compose_many = map solve_matrix, and solutions compose back"
    ~count:1000
    (QCheck.make gen ~print:(fun (a, _) -> Format.asprintf "%a" Bitmatrix.pp a))
    (fun (a, bs) ->
      let e = Bitmatrix.factorize a in
      let got = Bitmatrix.compose_many e bs in
      got = Array.map (Bitmatrix.solve_matrix e) bs
      && Array.for_all2
           (fun x b ->
             match x with Some x -> Bitmatrix.equal (Bitmatrix.mul a x) b | None -> true)
           got bs)

(* {2 Packed differential} *)

let prop_packed_rank =
  QCheck.Test.make ~name:"Packed.rank = Bitmatrix.rank" ~count:1000 arb_matrix_struct
    (fun a -> Packed.rank (Packed.of_bitmatrix a) = Bitmatrix.rank a)

let prop_packed_roundtrip =
  QCheck.Test.make ~name:"Packed round-trips through Bitmatrix" ~count:1000 arb_matrix_struct
    (fun a -> Bitmatrix.equal (Packed.to_bitmatrix (Packed.of_bitmatrix a)) a)

let test_packed_wide () =
  (* Past the 62-bit single-word ceiling: 80x130 with a shifted diagonal. *)
  let p = Packed.make ~rows:80 ~cols:130 in
  check_int "rows" 80 (Packed.rows p);
  check_int "cols" 130 (Packed.cols p);
  check_bool "fresh is zero" true (Packed.is_zero p);
  for i = 0 to 79 do Packed.set p i (i + 40) true done;
  check_bool "get set bit" true (Packed.get p 7 47);
  check_bool "get clear bit" false (Packed.get p 7 46);
  check_int "rank of shifted diagonal" 80 (Packed.rank p);
  (* xor_rows is an involution; swap_rows twice is the identity. *)
  let q = Packed.copy p in
  Packed.xor_rows q ~src:0 ~dst:1;
  check_bool "xor changed row" false (Packed.equal q p);
  Packed.xor_rows q ~src:0 ~dst:1;
  check_bool "xor undone" true (Packed.equal q p);
  Packed.swap_rows q 3 59;
  Packed.swap_rows q 3 59;
  check_bool "swap undone" true (Packed.equal q p);
  (* Duplicating a row drops the rank by one. *)
  let r = Packed.copy p in
  for j = 0 to 129 do Packed.set r 5 j (Packed.get r 6 j) done;
  check_int "duplicate row rank" 79 (Packed.rank r)

(* {2 Width guards} *)

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  | exception Invalid_argument _ -> ()

let test_width_guards () =
  check_int "unit at max_bits - 1" (1 lsl (Bitvec.max_bits - 1)) (Bitvec.unit (Bitvec.max_bits - 1));
  expect_invalid "unit at max_bits" (fun () -> Bitvec.unit Bitvec.max_bits);
  expect_invalid "unit negative" (fun () -> Bitvec.unit (-1));
  expect_invalid "make beyond max_bits rows" (fun () ->
      Bitmatrix.make ~rows:(Bitvec.max_bits + 1) [| 0 |]);
  (* The widest legal single-word matrix still works end to end. *)
  let wide = Bitmatrix.make ~rows:Bitvec.max_bits [| 1 lsl (Bitvec.max_bits - 1) |] in
  check_int "wide rank" 1 (Bitmatrix.rank wide);
  expect_invalid "transpose past max_bits columns" (fun () ->
      Bitmatrix.transpose (Bitmatrix.zero ~rows:2 ~cols:(Bitvec.max_bits + 1)))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "f2"
    [
      ( "bitvec",
        [
          Alcotest.test_case "basics" `Quick test_bitvec_basics;
          Alcotest.test_case "fields" `Quick test_bitvec_fields;
          Alcotest.test_case "ntz" `Quick test_bitvec_ntz;
        ] );
      ( "bitmatrix",
        [
          Alcotest.test_case "apply (paper layout A)" `Quick test_matrix_apply;
          Alcotest.test_case "mul" `Quick test_matrix_mul;
          Alcotest.test_case "rank" `Quick test_matrix_rank;
          Alcotest.test_case "solve" `Quick test_matrix_solve;
          Alcotest.test_case "right inverse" `Quick test_right_inverse;
          Alcotest.test_case "block diag / divide" `Quick test_block_diag_divide;
          Alcotest.test_case "permutation predicate" `Quick test_permutation;
          Alcotest.test_case "width guards" `Quick test_width_guards;
        ] );
      ("packed", [ Alcotest.test_case "wide matrices" `Quick test_packed_wide ]);
      ( "subspace",
        [
          Alcotest.test_case "echelon basis" `Quick test_subspace_basis;
          Alcotest.test_case "complete basis" `Quick test_subspace_complete;
          Alcotest.test_case "intersection" `Quick test_subspace_intersection;
          Alcotest.test_case "span elements" `Quick test_subspace_span_elements;
        ] );
      ( "properties",
        q
          [
            prop_solve_consistent;
            prop_right_inverse;
            prop_kernel;
            prop_rank_nullity;
            prop_block_diag_divide;
            prop_intersection_dim;
            prop_intersection_members;
            prop_echelon_rank_matches_reference;
            prop_solve_matches_reference;
            prop_solve_with_multi_rhs;
            prop_transpose_involution;
            prop_transpose_entries;
          ] );
      ( "m4rm differential",
        q
          [
            prop_m4rm_rank;
            prop_m4rm_pivots;
            prop_m4rm_solve;
            prop_m4rm_kernel;
            prop_m4rm_k_sweep;
            prop_solve_many;
            prop_prepare_idempotent;
            prop_right_inverse_with;
            prop_compose_many;
            prop_packed_rank;
            prop_packed_roundtrip;
          ] );
    ]
