(* Tests for the F2 linear-algebra substrate. *)

open F2

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 Bitvec} *)

let test_bitvec_basics () =
  check_int "unit 3" 8 (Bitvec.unit 3);
  check_bool "bit" true (Bitvec.bit 0b1010 1);
  check_bool "bit" false (Bitvec.bit 0b1010 0);
  check_int "add" 0b0110 (Bitvec.add 0b1010 0b1100);
  check_int "popcount" 3 (Bitvec.popcount 0b1011);
  check_bool "dot" true (Bitvec.dot 0b1011 0b0001);
  check_bool "dot even" false (Bitvec.dot 0b1011 0b0011);
  check_int "msb" 3 (Bitvec.msb 0b1010);
  check_int "msb zero" (-1) (Bitvec.msb 0);
  check_int "lsb" 1 (Bitvec.lsb 0b1010);
  check_int "width" 4 (Bitvec.width 0b1010);
  Alcotest.(check (list int)) "support" [ 0; 2; 3 ] (Bitvec.support 0b1101)

let test_bitvec_fields () =
  check_int "extract" 0b101 (Bitvec.extract 0b11010 ~pos:1 ~len:3);
  check_int "insert" 0b10110 (Bitvec.insert 0b10000 ~pos:1 ~len:3 0b011);
  check_int "all length" 8 (List.length (Bitvec.all 3));
  Alcotest.(check string) "to_string" "0101" (Bitvec.to_string ~width:4 0b101)

let test_bitvec_ntz () =
  check_int "ntz" 1 (Bitvec.ntz 0b1010);
  check_int "ntz one" 0 (Bitvec.ntz 1);
  check_int "ntz pow2" 3 (Bitvec.ntz 8);
  check_int "ntz zero" (-1) (Bitvec.ntz 0);
  check_int "ntz = lsb" (Bitvec.lsb 0b101100) (Bitvec.ntz 0b101100);
  check_int "ntz top bit" 62 (Bitvec.ntz (1 lsl 62))

(* {1 Bitmatrix} *)

let m rows cols = Bitmatrix.make ~rows (Array.of_list cols)

let test_matrix_apply () =
  (* The paper's Section 4.1 running example: layout A as an 8x8 matrix.
     Columns (flattened output, j in low 4 bits, i in high 4 bits):
     reg0 -> j bit0; reg1 -> i bit0; thr0 -> j bit1; thr1 -> j bit2;
     thr2 -> j bit3; thr3 -> i bit1; thr4 -> i bit2; wrp0 -> i bit3. *)
  let a =
    m 8 [ 0b00000001; 0b00010000; 0b00000010; 0b00000100; 0b00001000; 0b00100000;
          0b01000000; 0b10000000 ]
  in
  (* Register r1 (0b01) in thread t9 (0b01001) of warp w0: input vector
     reg bits 0-1, thr bits 2-6, wrp bit 7. *)
  let v = 0b0_01001_01 in
  let w = Bitmatrix.apply a v in
  check_int "j = 3" 3 (Bitvec.extract w ~pos:0 ~len:4);
  check_int "i = 2" 2 (Bitvec.extract w ~pos:4 ~len:4);
  check_bool "invertible" true (Bitmatrix.is_invertible a);
  let ai = Bitmatrix.inverse a in
  check_int "roundtrip" v (Bitmatrix.apply ai w)

let test_matrix_mul () =
  let a = m 2 [ 0b01; 0b11 ] in
  let b = m 2 [ 0b10; 0b01 ] in
  let ab = Bitmatrix.mul a b in
  (* column 0 of ab = a * e1 = [1;1]; column 1 = a * e0 = [1;0] *)
  check_int "col0" 0b11 (Bitmatrix.column ab 0);
  check_int "col1" 0b01 (Bitmatrix.column ab 1);
  let i = Bitmatrix.identity 3 in
  check_bool "id*id" true (Bitmatrix.is_identity (Bitmatrix.mul i i))

let test_matrix_rank () =
  check_int "rank id" 4 (Bitmatrix.rank (Bitmatrix.identity 4));
  check_int "rank dup" 1 (Bitmatrix.rank (m 2 [ 0b01; 0b01; 0b01 ]));
  check_int "rank zero" 0 (Bitmatrix.rank (Bitmatrix.zero ~rows:3 ~cols:2));
  check_bool "surjective" true (Bitmatrix.is_surjective (m 2 [ 0b01; 0b11; 0b10 ]));
  check_bool "not injective" false (Bitmatrix.is_injective (m 2 [ 0b01; 0b11; 0b10 ]))

let test_matrix_solve () =
  let a = m 3 [ 0b011; 0b101; 0b110 ] in
  (* Columns sum to 0, so rank is 2 and the kernel is {e0+e1+e2}. *)
  check_int "rank" 2 (Bitmatrix.rank a);
  (match Bitmatrix.solve a 0b110 with
  | Some x -> check_int "solution maps back" 0b110 (Bitmatrix.apply a x)
  | None -> Alcotest.fail "expected a solution");
  (match Bitmatrix.solve a 0b111 with
  | Some _ -> Alcotest.fail "0b111 is not in the image"
  | None -> ());
  Alcotest.(check (list int)) "kernel" [ 0b111 ] (Bitmatrix.kernel a)

let test_right_inverse () =
  (* A surjective 2x3 map. *)
  let a = m 2 [ 0b01; 0b11; 0b10 ] in
  let x = Bitmatrix.right_inverse a in
  check_bool "a x = id" true (Bitmatrix.is_identity (Bitmatrix.mul a x))

let test_block_diag_divide () =
  let a = m 2 [ 0b01; 0b11 ] in
  let b = m 3 [ 0b100; 0b010; 0b001 ] in
  let ab = Bitmatrix.block_diag a b in
  check_int "rows" 5 (Bitmatrix.rows ab);
  check_int "cols" 5 (Bitmatrix.cols ab);
  (match Bitmatrix.divide_left ab a with
  | Some q -> check_bool "quotient" true (Bitmatrix.equal q b)
  | None -> Alcotest.fail "division should succeed");
  (* Division by a mismatched tile fails. *)
  let bad = m 2 [ 0b10; 0b11 ] in
  check_bool "mismatch" true (Bitmatrix.divide_left ab bad = None)

let test_permutation () =
  check_bool "id is perm" true (Bitmatrix.is_permutation (Bitmatrix.identity 4));
  check_bool "zero col ok" true (Bitmatrix.is_permutation (m 2 [ 0b01; 0b00; 0b10 ]));
  check_bool "dup col not" false (Bitmatrix.is_permutation (m 2 [ 0b01; 0b01 ]));
  check_bool "two bits not" false (Bitmatrix.is_permutation (m 2 [ 0b11 ]))

(* {1 Subspace} *)

let test_subspace_basis () =
  let b = Subspace.echelon_basis [ 0b110; 0b011; 0b101 ] in
  check_int "dim" 2 (List.length b);
  check_bool "mem" true (Subspace.mem b 0b101);
  check_bool "not mem" false (Subspace.mem b 0b001);
  check_int "dim fn" 2 (Subspace.dim [ 0b110; 0b011; 0b101 ])

let test_subspace_complete () =
  let ext = Subspace.complete_basis ~dim:4 [ 0b0011; 0b0110 ] in
  check_int "extension size" 2 (List.length ext);
  check_int "full dim" 4 (Subspace.dim (0b0011 :: 0b0110 :: ext))

let test_subspace_intersection () =
  let a = [ 0b001; 0b010 ] and b = [ 0b010; 0b100 ] in
  let i = Subspace.intersection a b in
  check_int "dim 1" 1 (List.length i);
  check_bool "is e1" true (Subspace.mem [ 0b010 ] (List.hd i));
  (* Trivial intersection. *)
  check_int "trivial" 0 (List.length (Subspace.intersection [ 0b001 ] [ 0b010 ]));
  (* Non-axis-aligned intersection: span{e0+e1, e2} and span{e0+e1+e2}
     intersect trivially; span{e0+e1,e2} and span{e0+e1} in dim 1. *)
  check_int "skew" 1 (List.length (Subspace.intersection [ 0b011; 0b100 ] [ 0b111 ]))

let test_subspace_span_elements () =
  let elems = Subspace.span_elements [ 0b011; 0b101 ] in
  Alcotest.(check (list int)) "span" [ 0b000; 0b011; 0b101; 0b110 ]
    (Array.to_list elems |> List.sort compare)

(* {1 Properties} *)

let gen_matrix =
  QCheck.Gen.(
    let* rows = int_range 1 8 in
    let* cols = int_range 1 8 in
    let* data = list_repeat cols (int_bound ((1 lsl rows) - 1)) in
    return (Bitmatrix.make ~rows (Array.of_list data)))

let arb_matrix = QCheck.make gen_matrix ~print:(Format.asprintf "%a" Bitmatrix.pp)

let prop_solve_consistent =
  QCheck.Test.make ~name:"solve returns a valid preimage" ~count:500 arb_matrix (fun a ->
      let b = Bitmatrix.apply a ((1 lsl Bitmatrix.cols a) - 1) in
      match Bitmatrix.solve a b with
      | Some x -> Bitmatrix.apply a x = b
      | None -> false)

let prop_right_inverse =
  QCheck.Test.make ~name:"right inverse of surjective maps" ~count:500 arb_matrix (fun a ->
      QCheck.assume (Bitmatrix.is_surjective a);
      Bitmatrix.is_identity (Bitmatrix.mul a (Bitmatrix.right_inverse a)))

let prop_kernel =
  QCheck.Test.make ~name:"kernel vectors map to zero" ~count:500 arb_matrix (fun a ->
      List.for_all (fun k -> Bitmatrix.apply a k = 0) (Bitmatrix.kernel a))

let prop_rank_nullity =
  QCheck.Test.make ~name:"rank-nullity" ~count:500 arb_matrix (fun a ->
      Bitmatrix.rank a + List.length (Bitmatrix.kernel a) = Bitmatrix.cols a)

let prop_block_diag_divide =
  QCheck.Test.make ~name:"(a x b) /l a = b" ~count:500
    (QCheck.pair arb_matrix arb_matrix) (fun (a, b) ->
      match Bitmatrix.divide_left (Bitmatrix.block_diag a b) a with
      | Some q -> Bitmatrix.equal q b
      | None -> false)

let prop_intersection_dim =
  let gen_basis = QCheck.Gen.(list_size (int_range 0 4) (int_range 1 63)) in
  QCheck.Test.make ~name:"dim(U) + dim(V) = dim(U+V) + dim(U and V)" ~count:500
    (QCheck.make QCheck.Gen.(pair gen_basis gen_basis))
    (fun (a, b) ->
      let da = Subspace.dim a and db = Subspace.dim b in
      let ds = Subspace.dim (a @ b) in
      let di = List.length (Subspace.intersection a b) in
      da + db = ds + di)

(* {2 Echelon reference model}

   The list-of-pivots Gaussian elimination that the MSB-indexed
   [echelonize] replaced, kept as an executable specification: both
   only ever reduce by the pivot whose MSB matches the current value,
   so they must agree bit for bit. *)

let ref_reduce pivots v comb =
  let rec go v comb =
    if v = 0 then (v, comb)
    else
      match List.assoc_opt (Bitvec.msb v) pivots with
      | Some (pv, pc) -> go (v lxor pv) (comb lxor pc)
      | None -> (v, comb)
  in
  go v comb

let ref_pivots a =
  let pivots = ref [] in
  for j = 0 to Bitmatrix.cols a - 1 do
    let v, comb = ref_reduce !pivots (Bitmatrix.column a j) (Bitvec.unit j) in
    if v <> 0 then pivots := (Bitvec.msb v, (v, comb)) :: !pivots
  done;
  !pivots

let ref_solve a b =
  let v, comb = ref_reduce (ref_pivots a) b 0 in
  if v = 0 then Some comb else None

let prop_echelon_rank_matches_reference =
  QCheck.Test.make ~name:"indexed echelon rank = reference rank" ~count:500 arb_matrix
    (fun a ->
      Bitmatrix.echelon_rank (Bitmatrix.echelonize a) = List.length (ref_pivots a))

let prop_solve_matches_reference =
  QCheck.Test.make ~name:"indexed solve = reference solve (all RHS)" ~count:100 arb_matrix
    (fun a ->
      List.for_all
        (fun b -> Bitmatrix.solve a b = ref_solve a b)
        (Bitvec.all (Bitmatrix.rows a)))

let prop_solve_with_multi_rhs =
  QCheck.Test.make ~name:"one echelonize serves every RHS" ~count:100 arb_matrix (fun a ->
      let e = Bitmatrix.echelonize a in
      List.for_all
        (fun b -> Bitmatrix.solve_with e b = Bitmatrix.solve a b)
        (Bitvec.all (Bitmatrix.rows a)))

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose is an involution" ~count:500 arb_matrix (fun a ->
      Bitmatrix.equal (Bitmatrix.transpose (Bitmatrix.transpose a)) a)

let prop_transpose_entries =
  QCheck.Test.make ~name:"transpose entries: t[j,i] = a[i,j]" ~count:500 arb_matrix
    (fun a ->
      let t = Bitmatrix.transpose a in
      List.for_all
        (fun j ->
          List.for_all
            (fun i ->
              Bitvec.bit (Bitmatrix.column a j) i = Bitvec.bit (Bitmatrix.column t i) j)
            (List.init (Bitmatrix.rows a) Fun.id))
        (List.init (Bitmatrix.cols a) Fun.id))

let prop_intersection_members =
  let gen_basis = QCheck.Gen.(list_size (int_range 0 4) (int_range 1 63)) in
  QCheck.Test.make ~name:"intersection vectors lie in both spans" ~count:500
    (QCheck.make QCheck.Gen.(pair gen_basis gen_basis))
    (fun (a, b) ->
      Subspace.intersection a b
      |> List.for_all (fun v -> Subspace.mem a v && Subspace.mem b v))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "f2"
    [
      ( "bitvec",
        [
          Alcotest.test_case "basics" `Quick test_bitvec_basics;
          Alcotest.test_case "fields" `Quick test_bitvec_fields;
          Alcotest.test_case "ntz" `Quick test_bitvec_ntz;
        ] );
      ( "bitmatrix",
        [
          Alcotest.test_case "apply (paper layout A)" `Quick test_matrix_apply;
          Alcotest.test_case "mul" `Quick test_matrix_mul;
          Alcotest.test_case "rank" `Quick test_matrix_rank;
          Alcotest.test_case "solve" `Quick test_matrix_solve;
          Alcotest.test_case "right inverse" `Quick test_right_inverse;
          Alcotest.test_case "block diag / divide" `Quick test_block_diag_divide;
          Alcotest.test_case "permutation predicate" `Quick test_permutation;
        ] );
      ( "subspace",
        [
          Alcotest.test_case "echelon basis" `Quick test_subspace_basis;
          Alcotest.test_case "complete basis" `Quick test_subspace_complete;
          Alcotest.test_case "intersection" `Quick test_subspace_intersection;
          Alcotest.test_case "span elements" `Quick test_subspace_span_elements;
        ] );
      ( "properties",
        q
          [
            prop_solve_consistent;
            prop_right_inverse;
            prop_kernel;
            prop_rank_nullity;
            prop_block_diag_divide;
            prop_intersection_dim;
            prop_intersection_members;
            prop_echelon_rank_matches_reference;
            prop_solve_matches_reference;
            prop_solve_with_multi_rhs;
            prop_transpose_involution;
            prop_transpose_entries;
          ] );
    ]
