(* Tests for the legacy-Triton baseline: the contiguity heuristic, the
   padded shared-memory conversion, and the support matrix. *)

open Linear_layout

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let m = Gpusim.Machine.gh200

let params ?(order = [| 1; 0 |]) ~spt ~tpw ~warps shape =
  {
    Blocked.shape;
    size_per_thread = spt;
    threads_per_warp = tpw;
    warps_per_cta = warps;
    order;
  }

(* {1 Contiguity heuristic — the Table 3 discrepancy} *)

let test_contig_fastest_dim_only () =
  (* Per-thread tile of 8x2 over a [512,2] tensor: truly 16 contiguous
     elements, but legacy sees only the 2 along the fastest dim. *)
  let p = params ~spt:[| 8; 2 |] ~tpw:[| 32; 1 |] ~warps:[| 4; 1 |] [| 512; 2 |] in
  check_int "legacy sees 2" 2 (Legacy.Contig.max_contiguous p);
  check_int "linear sees 16" 16
    (Layout.num_consecutive (Blocked.make p) ~in_dim:Dims.register);
  check_int "legacy bits" 16 (Legacy.Contig.vector_bits p ~byte_width:1 ~max_bits:128)

let test_contig_size_one_fallback () =
  (* [512,1]: the fastest dimension has one element; legacy falls back
     to 1-D behaviour and matches the true contiguity. *)
  let p = params ~spt:[| 4; 1 |] ~tpw:[| 32; 1 |] ~warps:[| 4; 1 |] [| 512; 1 |] in
  check_int "legacy 1d fallback" 4 (Legacy.Contig.max_contiguous p);
  check_int "linear agrees" 4 (Layout.num_consecutive (Blocked.make p) ~in_dim:Dims.register)

(* {1 Padded conversion} *)

let test_padded_offset () =
  check_int "no pad" 10 (Legacy.Convert.padded_offset ~cols:8 ~pad:0 1 2);
  check_int "pad 4" 14 (Legacy.Convert.padded_offset ~cols:8 ~pad:4 1 2);
  check_int "default pad f32" 4 (Legacy.Convert.default_pad ~byte_width:4);
  check_int "default pad f8" 16 (Legacy.Convert.default_pad ~byte_width:1)

let test_padding_removes_column_conflicts () =
  (* A column-major read of a row-major scratch: unpadded = 32-way
     conflicts; padding fixes it (that is why legacy used it). *)
  let dst =
    Blocked.make (params ~order:[| 0; 1 |] ~spt:[| 1; 1 |] ~tpw:[| 32; 1 |] ~warps:[| 1; 1 |]
       [| 32; 32 |])
  in
  let unpadded logical = logical in
  let padded =
    let pad = Legacy.Convert.default_pad ~byte_width:4 in
    fun logical -> Legacy.Convert.padded_offset ~cols:32 ~pad (logical / 32) (logical mod 32)
  in
  let wf_un, _, _ = Legacy.Convert.measure m ~dist:dst ~addr_of:unpadded ~byte_width:4 in
  let wf_pad, _, _ = Legacy.Convert.measure m ~dist:dst ~addr_of:padded ~byte_width:4 in
  check_bool
    (Printf.sprintf "padding helps: %d < %d" wf_pad wf_un)
    true (wf_pad < wf_un)

let test_legacy_cost_positive () =
  let src =
    Blocked.make (params ~spt:[| 1; 4 |] ~tpw:[| 8; 4 |] ~warps:[| 1; 1 |] [| 32; 32 |])
  in
  let dst =
    Blocked.make (params ~order:[| 0; 1 |] ~spt:[| 4; 1 |] ~tpw:[| 4; 8 |] ~warps:[| 1; 1 |]
       [| 32; 32 |])
  in
  let c = Legacy.Convert.cost m ~src ~dst ~byte_width:4 in
  check_bool "positive" true (Gpusim.Cost.estimate m c > 0.);
  check_bool "uses shared memory" true (c.Gpusim.Cost.smem_insts > 0);
  check_int "barrier" 1 c.Gpusim.Cost.barriers;
  check_bool "scratch includes padding" true
    (Legacy.Convert.scratch_bytes ~src ~byte_width:4 > 32 * 32 * 4)

let test_legacy_never_beats_optimal_swizzle () =
  (* On transposes, padded legacy conversions should cost at least as
     much as the optimal swizzle (Figure 2's premise). *)
  List.iter
    (fun (spt_s, spt_d) ->
      let src = Blocked.make (params ~spt:spt_s ~tpw:[| 8; 4 |] ~warps:[| 1; 1 |] [| 32; 32 |]) in
      let dst =
        Blocked.make (params ~order:[| 0; 1 |] ~spt:spt_d ~tpw:[| 4; 8 |] ~warps:[| 1; 1 |]
           [| 32; 32 |])
      in
      let legacy_cost = Gpusim.Cost.estimate m (Legacy.Convert.cost m ~src ~dst ~byte_width:1) in
      let s = Codegen.Swizzle_opt.optimal m ~src ~dst ~byte_width:1 in
      let linear_cost =
        Gpusim.Cost.estimate m (Codegen.Swizzle_opt.cost m s ~src ~dst ~byte_width:1)
      in
      check_bool
        (Printf.sprintf "optimal (%f) <= legacy (%f)" linear_cost legacy_cost)
        true (linear_cost <= legacy_cost))
    [ ([| 1; 4 |], [| 4; 1 |]); ([| 1; 8 |], [| 8; 1 |]); ([| 2; 2 |], [| 2; 2 |]) ]

(* {1 The kind-dispatched legacy layer} *)

let blocked_params =
  {
    Blocked.shape = [| 32; 32 |];
    size_per_thread = [| 2; 2 |];
    threads_per_warp = [| 4; 8 |];
    warps_per_cta = [| 2; 1 |];
    order = [| 1; 0 |];
  }

let test_kinds_to_linear () =
  (* Section 3's backward-compatibility utility: every legacy layout is
     a linear layout, and the per-kind methods agree with the generic
     computation wherever legacy had a rule at all. *)
  let b = Legacy.Kinds.Blocked blocked_params in
  let l = Legacy.Kinds.to_linear b in
  check_bool "blocked is distributed" true (Layout.is_distributed l);
  (match Legacy.Kinds.elems_per_thread b with
  | Some n -> check_int "elems agree with linear" (Layout.in_size l Dims.register) n
  | None -> Alcotest.fail "blocked must have a rule");
  (match Legacy.Kinds.contig_per_thread b with
  | Some c ->
      check_int "contig agrees with linear" (Layout.num_consecutive l ~in_dim:Dims.register) c
  | None -> Alcotest.fail "blocked must have a contig rule");
  let mma = Legacy.Kinds.Mma { warps = [| 2; 1 |]; shape = [| 32; 32 |] } in
  let lm = Legacy.Kinds.to_linear mma in
  (match Legacy.Kinds.elems_per_thread mma with
  | Some n -> check_int "mma elems agree" (Layout.in_size lm Dims.register) n
  | None -> Alcotest.fail "mma must have a rule")

let test_kinds_gaps () =
  (* The gaps: operand and sliced layouts have no per-kind rules even
     though the generic linear computation handles them fine. *)
  let op =
    Legacy.Kinds.Mma_operand { idx = 0; bitwidth = 16; warps = [| 2; 1 |]; shape = [| 32; 32 |] }
  in
  check_bool "no legacy elems rule" true (Legacy.Kinds.elems_per_thread op = None);
  check_bool "linear computes it anyway" true
    (Layout.in_size (Legacy.Kinds.to_linear op) Dims.register > 0);
  let sl = Legacy.Kinds.Sliced { parent = op; dim = 1 } in
  check_bool "no reduce over sliced operand" false (Legacy.Kinds.supports_reduce sl);
  check_bool "linear slices it anyway" true
    (Layout.is_surjective (Legacy.Kinds.to_linear sl))

let test_kinds_conversion_matrix () =
  (* The quadratic explosion: count how many ordered kind pairs have a
     hand-written conversion. *)
  let samples =
    [
      Legacy.Kinds.Blocked blocked_params;
      Legacy.Kinds.Mma { warps = [| 2; 1 |]; shape = [| 32; 32 |] };
      Legacy.Kinds.Mma_operand
        { idx = 0; bitwidth = 16; warps = [| 2; 1 |]; shape = [| 32; 32 |] };
      Legacy.Kinds.Sliced { parent = Legacy.Kinds.Blocked blocked_params; dim = 1 };
    ]
  in
  let supported = ref 0 and total = ref 0 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          incr total;
          if Legacy.Kinds.conversion_supported a b then incr supported)
        samples)
    samples;
  check_bool "most pairs unsupported" true (!supported * 2 < !total + 2);
  check_int "total pairs" 16 !total

(* {1 Support matrix} *)

let test_supports_dot () =
  let open Tensor_lib in
  (* Large shapes with >= 16-bit types pass. *)
  check_bool "f16 big" true
    (Legacy.Support.supports_dot ~a:Dtype.F16 ~b:Dtype.F16 ~m:64 ~n:64 ~k:64);
  (* Small shapes with 8-bit types fail (32-bit packed runs don't fit). *)
  check_bool "f8 small" false
    (Legacy.Support.supports_dot ~a:Dtype.F8E4M3 ~b:Dtype.F8E4M3 ~m:16 ~n:16 ~k:16);
  (* Mixed i8 x f16 needs an upcast legacy cannot lay out. *)
  check_bool "i8xf16" false
    (Legacy.Support.supports_dot ~a:Dtype.I8 ~b:Dtype.F16 ~m:64 ~n:64 ~k:64);
  (* Same low-precision type on both sides is handled (native path). *)
  check_bool "i8xi8... via f8 rule" true
    (Legacy.Support.supports_dot ~a:Dtype.I8 ~b:Dtype.I8 ~m:64 ~n:64 ~k:64)

let test_kind_names () =
  check_int "7 kinds" 7 (List.length Legacy.Support.all_kinds);
  check_bool "cross-kind incomparable" false
    (Legacy.Support.can_compare Legacy.Support.Blocked Legacy.Support.Sliced_blocked);
  check_bool "same kind comparable" true
    (Legacy.Support.can_compare Legacy.Support.Mma Legacy.Support.Mma)

let () =
  Alcotest.run "legacy"
    [
      ( "contiguity",
        [
          Alcotest.test_case "fastest dim only" `Quick test_contig_fastest_dim_only;
          Alcotest.test_case "size-1 fallback" `Quick test_contig_size_one_fallback;
        ] );
      ( "padded conversion",
        [
          Alcotest.test_case "padded offsets" `Quick test_padded_offset;
          Alcotest.test_case "padding removes conflicts" `Quick
            test_padding_removes_column_conflicts;
          Alcotest.test_case "cost positive" `Quick test_legacy_cost_positive;
          Alcotest.test_case "never beats optimal swizzle" `Quick
            test_legacy_never_beats_optimal_swizzle;
        ] );
      ( "kinds",
        [
          Alcotest.test_case "to_linear + method agreement" `Quick test_kinds_to_linear;
          Alcotest.test_case "method gaps" `Quick test_kinds_gaps;
          Alcotest.test_case "conversion matrix" `Quick test_kinds_conversion_matrix;
        ] );
      ( "support",
        [
          Alcotest.test_case "dot support" `Quick test_supports_dot;
          Alcotest.test_case "kinds" `Quick test_kind_names;
        ] );
    ]
