(* Tests for the mini-IR and the layout engine (Section 4.4), including
   the legacy-vs-linear behavioural differences the paper measures. *)

open Tir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let m = Gpusim.Machine.gh200

let test_program_builders () =
  let p = Program.create () in
  let x = Program.load p ~shape:[| 32; 64 |] ~dtype:Tensor_lib.Dtype.F16 () in
  let r = Program.reduce p x ~axis:1 in
  check_int "reduced shape" 1 (Array.length (Program.instr p r).Program.shape);
  let e = Program.expand_dims p r ~axis:1 in
  Alcotest.(check (array int)) "expand" [| 32; 1 |] (Program.instr p e).Program.shape;
  let b = Program.broadcast p e ~shape:[| 32; 64 |] in
  Alcotest.(check (array int)) "broadcast" [| 32; 64 |] (Program.instr p b).Program.shape;
  let t = Program.trans p x ~perm:[| 1; 0 |] in
  Alcotest.(check (array int)) "trans" [| 64; 32 |] (Program.instr p t).Program.shape;
  let rs = Program.reshape p x ~shape:[| 64; 32 |] in
  Alcotest.(check (array int)) "reshape" [| 64; 32 |] (Program.instr p rs).Program.shape;
  check_int "instr count" 6 (Program.length p)

let test_engine_assigns_layouts () =
  let p = Program.create () in
  let x = Program.load p ~shape:[| 64; 64 |] ~dtype:Tensor_lib.Dtype.F16 () in
  let y = Program.elementwise p [ x ] in
  ignore (Program.store p y);
  let r = Engine.run m ~mode:Engine.Linear p in
  Array.iter
    (fun ins ->
      match ins.Program.layout with
      | Some l -> check_bool "surjective" true (Linear_layout.Layout.is_surjective l)
      | None -> Alcotest.fail "missing layout")
    (Program.instrs p);
  check_int "no conversions needed" 0 r.Engine.converts

let test_shape_op_propagation_is_free () =
  (* A chain of shape ops must introduce no conversions in linear mode
     (Theorem 9.3: the family is closed under these operations). *)
  let p = Program.create () in
  let x = Program.load p ~shape:[| 32; 64 |] ~dtype:Tensor_lib.Dtype.F32 () in
  let t = Program.trans p x ~perm:[| 1; 0 |] in
  let rs = Program.reshape p t ~shape:[| 16; 128 |] in
  let e = Program.expand_dims p rs ~axis:0 in
  let b = Program.broadcast p e ~shape:[| 4; 16; 128 |] in
  ignore b;
  let r = Engine.run m ~mode:Engine.Linear p in
  check_int "zero conversions" 0 r.Engine.converts;
  (* Every intermediate still has a valid distributed layout. *)
  Array.iter
    (fun ins ->
      match ins.Program.layout with
      | Some l -> check_bool "distributed" true (Linear_layout.Layout.is_distributed l)
      | None -> Alcotest.fail "missing layout")
    (Program.instrs p)

let test_dot_forces_operand_layouts () =
  let p = Program.create () in
  let a = Program.load p ~shape:[| 64; 64 |] ~dtype:Tensor_lib.Dtype.F16 () in
  let b = Program.load p ~shape:[| 64; 64 |] ~dtype:Tensor_lib.Dtype.F16 () in
  let d = Program.dot p ~a ~b ~acc:Tensor_lib.Dtype.F32 in
  ignore (Program.store p d);
  let r = Engine.run m ~mode:Engine.Linear p in
  check_bool "operand conversions materialized" true (r.Engine.converts >= 2);
  check_bool "staged through shared memory" true (r.Engine.local_loads >= 2)

let test_welford_noop_detection () =
  (* The Section 6.2 welford case: conversions between equivalent
     layouts lower to no-ops under linear layouts but not legacy. *)
  let build () = (Kernels.find "welford").Kernels.build ~size:1024 in
  let lin = Engine.run m ~mode:Engine.Linear (build ()) in
  let leg = Engine.run m ~mode:Engine.Legacy_mode (build ()) in
  check_bool "linear folds equivalent-layout conversions" true
    (lin.Engine.converts < leg.Engine.converts);
  check_bool "linear cheaper" true (Engine.time m lin < Engine.time m leg)

let test_legacy_unsupported_dot () =
  let p = Program.create () in
  let a = Program.load p ~shape:[| 16; 16 |] ~dtype:Tensor_lib.Dtype.F8E4M3 () in
  let b = Program.load p ~shape:[| 16; 16 |] ~dtype:Tensor_lib.Dtype.F8E4M3 () in
  let d = Program.dot p ~a ~b ~acc:Tensor_lib.Dtype.F32 in
  ignore (Program.store p d);
  let leg = Engine.run m ~mode:Engine.Legacy_mode p in
  check_bool "legacy rejects small f8 dot" true (leg.Engine.unsupported <> []);
  let lin = Engine.run m ~mode:Engine.Linear p in
  check_bool "linear supports it" true (lin.Engine.unsupported = [])

let test_legacy_reduction_support () =
  (* Reduction directly over a dot output (MMA layout) is supported;
     legacy cannot reduce over MMA-input or custom layouts.  Here we
     check the support matrix wiring. *)
  check_bool "mma ok" true (Legacy.Support.supports_reduction Legacy.Support.Mma);
  check_bool "mma input not" false (Legacy.Support.supports_reduction Legacy.Support.Mma_input);
  check_bool "sliced mma not" false (Legacy.Support.supports_reduction Legacy.Support.Sliced_mma);
  check_bool "custom not" false (Legacy.Support.supports_reduction Legacy.Support.Custom)

let test_all_kernels_run_both_modes () =
  List.iter
    (fun k ->
      let size = List.hd k.Kernels.sizes in
      List.iter
        (fun mode ->
          let prog = k.Kernels.build ~size in
          let r = Engine.run m ~mode prog in
          let t = Engine.time m r in
          if not (t > 0.) then
            Alcotest.failf "%s has nonpositive cost in a mode" k.Kernels.name)
        [ Engine.Linear; Engine.Legacy_mode ])
    Kernels.all

let test_linear_never_slower_overall () =
  (* Across the kernel suite, the linear engine should not lose to the
     legacy one (Figure 9's speedups are >= ~1.0x). *)
  List.iter
    (fun k ->
      let size = List.hd k.Kernels.sizes in
      let lin = Engine.run m ~mode:Engine.Linear (k.Kernels.build ~size) in
      let leg = Engine.run m ~mode:Engine.Legacy_mode (k.Kernels.build ~size) in
      let tl = Engine.time m lin and tg = Engine.time m leg in
      if tl > tg *. 1.05 then
        Alcotest.failf "%s: linear %.1f slower than legacy %.1f" k.Kernels.name tl tg)
    Kernels.all

let test_join_split () =
  let p = Program.create () in
  let a = Program.load p ~shape:[| 16; 32 |] ~dtype:Tensor_lib.Dtype.F16 () in
  let b = Program.load p ~shape:[| 16; 32 |] ~dtype:Tensor_lib.Dtype.F16 () in
  let j = Program.join p ~a ~b in
  Alcotest.(check (array int)) "joined shape" [| 16; 32; 2 |] (Program.instr p j).Program.shape;
  let s0 = Program.split p j ~half:0 in
  Alcotest.(check (array int)) "split shape" [| 16; 32 |] (Program.instr p s0).Program.shape;
  ignore (Program.store p s0);
  let r = Engine.run m ~mode:Engine.Linear p in
  (* Both loads have the same default layout, so the join is free; the
     joined layout pairs elements in consecutive registers. *)
  let jl = Option.get (Program.instr p j).Program.layout in
  check_int "new dim from a register" 1
    (List.assoc (Linear_layout.Dims.dim 2) (Linear_layout.Layout.basis jl Linear_layout.Dims.register 0));
  check_bool "joined layout surjective" true (Linear_layout.Layout.is_surjective jl);
  (* Split restores a layout over the original shape. *)
  let sl = Option.get (Program.instr p s0).Program.layout in
  check_bool "split surjective" true (Linear_layout.Layout.is_surjective sl);
  check_int "no conversions" 0 r.Engine.converts

let test_backward_remat () =
  (* A mask computed from iota feeding an elementwise whose other input
     has a different layout: rematerializing the register-computable
     chain in the needed layout beats any conversion (Section 4.4). *)
  let p = Program.create () in
  let y = Program.load p ~shape:[| 32; 32 |] ~dtype:Tensor_lib.Dtype.F32 () in
  let r = Program.reduce p y ~axis:0 in
  let e = Program.expand_dims p r ~axis:0 in
  let b = Program.broadcast p e ~shape:[| 32; 32 |] in
  let mask = Program.iota p ~shape:[| 32; 32 |] ~axis:1 in
  let mask2 = Program.elementwise p ~name:"cast" [ mask ] in
  let z = Program.elementwise p ~name:"add" [ b; mask2 ] in
  ignore (Program.store p z);
  let res = Engine.run m ~mode:Engine.Linear p in
  check_bool "iota chain rematerialized" true
    (res.Engine.remats >= 1 || res.Engine.converts = 0);
  (* And the program still evaluates correctly through layouts. *)
  let inputs = Interp.synth_inputs p in
  let a = Interp.reference p ~inputs and bl = Interp.through_layouts m p ~inputs in
  List.iter2
    (fun (_, t1) (_, t2) ->
      check_bool "values agree" true (Tensor_lib.Tensor.max_abs_diff t1 t2 = 0.))
    a bl

let test_validate_all_kernels () =
  (* The post-engine verifier accepts every kernel's assignment in
     linear mode. *)
  List.iter
    (fun k ->
      let prog = k.Kernels.build ~size:(List.hd k.Kernels.sizes) in
      ignore (Validate.run_and_validate m ~mode:Engine.Linear prog))
    Kernels.all

let test_validate_catches_bad_assignment () =
  let p = Program.create () in
  let x = Program.load p ~shape:[| 16; 16 |] ~dtype:Tensor_lib.Dtype.F32 () in
  let t = Program.trans p x ~perm:[| 1; 0 |] in
  ignore (Program.store p t);
  ignore (Engine.run m ~mode:Engine.Linear p);
  (* Corrupt the transpose's layout: give it the untransposed one. *)
  (Program.instr p t).Program.layout <- (Program.instr p x).Program.layout;
  check_bool "verifier flags it" true (Validate.program p <> [])

let test_kernel_stats_nontrivial () =
  let r = Engine.run m ~mode:Engine.Linear ((Kernels.find "gemm").Kernels.build ~size:1024) in
  check_bool "gemm uses shared memory" true (r.Engine.local_loads > 0);
  let r2 =
    Engine.run m ~mode:Engine.Linear ((Kernels.find "vector_add").Kernels.build ~size:1024)
  in
  check_int "vector_add has no converts" 0 r2.Engine.converts

let () =
  Alcotest.run "tir"
    (Shuffle_support.maybe_shuffle
    [
      ( "program",
        [ Alcotest.test_case "builders infer shapes" `Quick test_program_builders ] );
      ( "engine",
        [
          Alcotest.test_case "assigns layouts" `Quick test_engine_assigns_layouts;
          Alcotest.test_case "shape ops are free" `Quick test_shape_op_propagation_is_free;
          Alcotest.test_case "dot forces operand layouts" `Quick test_dot_forces_operand_layouts;
          Alcotest.test_case "welford no-op detection" `Quick test_welford_noop_detection;
          Alcotest.test_case "legacy unsupported dot" `Quick test_legacy_unsupported_dot;
          Alcotest.test_case "legacy reduction support" `Quick test_legacy_reduction_support;
          Alcotest.test_case "join/split" `Quick test_join_split;
          Alcotest.test_case "backward remat" `Quick test_backward_remat;
          Alcotest.test_case "verifier accepts kernels" `Quick test_validate_all_kernels;
          Alcotest.test_case "verifier catches corruption" `Quick
            test_validate_catches_bad_assignment;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "all kernels run in both modes" `Quick test_all_kernels_run_both_modes;
          Alcotest.test_case "linear never slower" `Quick test_linear_never_slower_overall;
          Alcotest.test_case "stats are nontrivial" `Quick test_kernel_stats_nontrivial;
        ] );
    ])
