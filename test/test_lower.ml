(* Tests for the pseudo-ISA interpreter and the lowering of conversion
   plans to instruction streams — the end-to-end path: algebra -> plan
   -> instructions -> simulated hardware state. *)

open Linear_layout

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let m = Gpusim.Machine.gh200

let blocked ?(warps = [| 1; 1 |]) ?(order = [| 1; 0 |]) ~spt ~tpw shape =
  Blocked.make
    { shape; size_per_thread = spt; threads_per_warp = tpw; warps_per_cta = warps; order }

(* {1 ISA interpreter} *)

let tiny_program body = { Gpusim.Isa.warps = 1; lanes = 4; smem_elems = 16; body }

let test_isa_mov () =
  let p = tiny_program [ Gpusim.Isa.Mov { dst = 1; src = 0 } ] in
  let st = Gpusim.Isa.make_state p ~slots:2 in
  Array.iteri (fun l regs -> regs.(0) <- 100 + l) st.Gpusim.Isa.regs.(0);
  ignore (Gpusim.Isa.run m p st);
  check_int "lane 2 copied" 102 st.Gpusim.Isa.regs.(0).(2).(1)

let test_isa_shfl () =
  (* Rotate values one lane to the left. *)
  let src_lane = [| [| 1; 2; 3; 0 |] |] in
  let keep = [| Array.make 4 true |] in
  let p = tiny_program [ Gpusim.Isa.Shfl_idx { dst = 1; src = 0; src_lane; keep } ] in
  let st = Gpusim.Isa.make_state p ~slots:2 in
  Array.iteri (fun l regs -> regs.(0) <- 10 * l) st.Gpusim.Isa.regs.(0);
  let cost = Gpusim.Isa.run m p st in
  check_int "lane0 got lane1" 10 st.Gpusim.Isa.regs.(0).(0).(1);
  check_int "lane3 got lane0" 0 st.Gpusim.Isa.regs.(0).(3).(1);
  check_int "one shuffle" 1 cost.Gpusim.Cost.shuffles

let test_isa_sel_scatter () =
  let sel = [| [| 0; -1; 0; 0 |] |] in
  let scat = [| [| 1; 1; -1; 1 |] |] in
  let p =
    tiny_program
      [ Gpusim.Isa.Sel { dst = 2; src_slot = sel }; Gpusim.Isa.Scatter { src = 2; dst_slot = scat } ]
  in
  let st = Gpusim.Isa.make_state p ~slots:3 in
  Array.iteri (fun l regs -> regs.(0) <- l + 1) st.Gpusim.Isa.regs.(0);
  Array.iter (fun regs -> regs.(1) <- -1) st.Gpusim.Isa.regs.(0);
  ignore (Gpusim.Isa.run m p st);
  check_int "lane0 scattered" 1 st.Gpusim.Isa.regs.(0).(0).(1);
  (* Lane 1's select was skipped, so its stage register still holds the
     initial 0 that the scatter then commits. *)
  check_int "lane1 commits stale stage" 0 st.Gpusim.Isa.regs.(0).(1).(1);
  check_int "lane2 scatter skipped" (-1) st.Gpusim.Isa.regs.(0).(2).(1)

let test_isa_smem_roundtrip () =
  let addr = [| [| 0; 2; 4; 6 |] |] in
  let p =
    tiny_program
      [
        Gpusim.Isa.St_shared { slots = [ 0; 1 ]; addr; byte_width = 4 };
        Gpusim.Isa.Bar_sync;
        Gpusim.Isa.Ld_shared { slots = [ 3; 2 ]; addr; byte_width = 4 };
      ]
  in
  let st = Gpusim.Isa.make_state p ~slots:4 in
  Array.iteri
    (fun l regs ->
      regs.(0) <- 100 + l;
      regs.(1) <- 200 + l)
    st.Gpusim.Isa.regs.(0);
  let cost = Gpusim.Isa.run m p st in
  (* Slot order in the load is swapped: slot 3 gets the first element. *)
  check_int "lane1 slot3" 101 st.Gpusim.Isa.regs.(0).(1).(3);
  check_int "lane1 slot2" 201 st.Gpusim.Isa.regs.(0).(1).(2);
  check_int "barrier" 1 cost.Gpusim.Cost.barriers;
  check_int "two smem insts" 2 cost.Gpusim.Cost.smem_insts;
  check_bool "conflict-free" true (cost.Gpusim.Cost.smem_wavefronts = 2)

let test_isa_bounds () =
  let addr = [| [| 100; 0; 0; 0 |] |] in
  let p = tiny_program [ Gpusim.Isa.St_shared { slots = [ 0 ]; addr; byte_width = 4 } ] in
  let st = Gpusim.Isa.make_state p ~slots:1 in
  match Gpusim.Isa.run m p st with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "out-of-range store must fail"

(* {1 Lowering} *)

let roundtrip ?(byte_width = 4) ~src ~dst () =
  let plan = Codegen.Conversion.plan m ~src ~dst ~byte_width in
  let d = Gpusim.Dist.init src ~f:(fun i -> (i * 17) + 3) in
  let d', cost = Codegen.Lower.run m plan d in
  check_bool
    (Codegen.Conversion.mechanism_name plan.mechanism ^ ": data converted")
    true
    (Gpusim.Dist.consistent_with d' ~f:(fun i -> (i * 17) + 3));
  (plan, cost)

let test_lower_noop () =
  let l = blocked ~spt:[| 2; 2 |] ~tpw:[| 4; 8 |] [| 16; 16 |] in
  let plan, cost = roundtrip ~src:l ~dst:l () in
  (match plan.Codegen.Conversion.mechanism with
  | Codegen.Conversion.No_op -> ()
  | _ -> Alcotest.fail "expected no-op");
  check_int "no shuffles" 0 cost.Gpusim.Cost.shuffles;
  check_int "no smem" 0 cost.Gpusim.Cost.smem_insts

let test_lower_register_permute () =
  let l = blocked ~spt:[| 2; 2 |] ~tpw:[| 4; 8 |] [| 16; 16 |] in
  let swapped =
    Layout.make ~ins:(Layout.in_dims l) ~outs:(Layout.out_dims l)
      ~bases:
        (List.map
           (fun (d, bits) ->
             let images = List.init bits (Layout.basis l d) in
             (d, if d = Dims.register then List.rev images else images))
           (Layout.in_dims l))
  in
  let plan, cost = roundtrip ~src:l ~dst:swapped () in
  (match plan.Codegen.Conversion.mechanism with
  | Codegen.Conversion.Register_permute -> ()
  | mech -> Alcotest.failf "expected register permute, got %s" (Codegen.Conversion.mechanism_name mech));
  check_int "no smem traffic" 0 cost.Gpusim.Cost.smem_insts

let test_lower_shuffle () =
  let src = Mma.output ~bitwidth:32 ~warps:[| 1; 1 |] ~shape:[| 16; 16 |] () in
  let dst = blocked ~spt:[| 1; 8 |] ~tpw:[| 16; 2 |] [| 16; 16 |] in
  let plan, cost = roundtrip ~src ~dst () in
  match plan.Codegen.Conversion.mechanism with
  | Codegen.Conversion.Warp_shuffle p ->
      (* Interpreter counts warps x rounds x payload shuffles. *)
      let v = List.length p.Codegen.Shuffle.vec in
      check_int "shuffle count" (p.Codegen.Shuffle.rounds * (1 lsl v)) cost.Gpusim.Cost.shuffles
  | mech -> Alcotest.failf "expected shuffle, got %s" (Codegen.Conversion.mechanism_name mech)

let test_lower_shared () =
  let src = blocked ~warps:[| 2; 1 |] ~spt:[| 2; 2 |] ~tpw:[| 4; 8 |] [| 16; 16 |] in
  let dst = blocked ~warps:[| 1; 2 |] ~spt:[| 1; 4 |] ~tpw:[| 8; 4 |] [| 16; 16 |] in
  let plan, cost = roundtrip ~src ~dst () in
  (match plan.Codegen.Conversion.mechanism with
  | Codegen.Conversion.Shared_memory _ -> ()
  | mech -> Alcotest.failf "expected shared memory, got %s" (Codegen.Conversion.mechanism_name mech));
  check_int "one barrier" 1 cost.Gpusim.Cost.barriers;
  check_bool "stores and loads" true (cost.Gpusim.Cost.smem_insts > 0)

let test_lowered_wavefronts_match_prediction () =
  (* The interpreter's bank accounting must agree with the planner's
     Lemma 9.4 prediction for 4-byte elements. *)
  let src = blocked ~spt:[| 1; 4 |] ~tpw:[| 8; 4 |] [| 32; 32 |] in
  let dst = blocked ~order:[| 0; 1 |] ~spt:[| 4; 1 |] ~tpw:[| 4; 8 |] [| 32; 32 |] in
  let sw = Codegen.Swizzle_opt.optimal m ~src ~dst ~byte_width:4 in
  let plan =
    {
      Codegen.Conversion.src;
      dst;
      byte_width = 4;
      mechanism = Codegen.Conversion.Shared_memory sw;
    }
  in
  (match plan.Codegen.Conversion.mechanism with
  | Codegen.Conversion.Shared_memory sw ->
      let d = Gpusim.Dist.init src ~f:Fun.id in
      let _, cost = Codegen.Lower.run m plan d in
      let insts dist = max 1 (Layout.in_size dist Dims.register / (1 lsl sw.Codegen.Swizzle_opt.vec_bits)) in
      let expected =
        (insts src * sw.Codegen.Swizzle_opt.store_wavefronts)
        + (insts dst * sw.Codegen.Swizzle_opt.load_wavefronts)
      in
      check_int "wavefronts" expected cost.Gpusim.Cost.smem_wavefronts
  | _ -> Alcotest.fail "expected shared memory")

let test_program_printing () =
  let src = blocked ~spt:[| 1; 4 |] ~tpw:[| 8; 4 |] [| 16; 16 |] in
  let dst = blocked ~spt:[| 4; 1 |] ~order:[| 0; 1 |] ~tpw:[| 4; 8 |] [| 16; 16 |] in
  let plan = Codegen.Conversion.plan m ~src ~dst ~byte_width:4 in
  let program, _ = Codegen.Lower.conversion m plan in
  let s = Format.asprintf "%a" Gpusim.Isa.pp program in
  check_bool "mentions warps" true (String.length s > 0);
  let c = Gpusim.Isa.count_classes program in
  check_bool "has stores and loads or shuffles" true
    (c.Gpusim.Isa.shared_stores + c.Gpusim.Isa.shared_loads + c.Gpusim.Isa.shuffles > 0)

let test_lower_compressed_shuffle () =
  (* Layouts that broadcast in registers: the plain shuffle planner
     rejects them, the compressed mechanism handles them. *)
  let grow l = Layout.resize_in l Dims.register (Layout.in_bits l Dims.register + 1) in
  let src = grow (blocked ~spt:[| 2; 2 |] ~tpw:[| 4; 8 |] [| 16; 16 |]) in
  let dst = grow (blocked ~spt:[| 1; 4 |] ~tpw:[| 16; 2 |] [| 16; 16 |]) in
  let plan = Codegen.Conversion.plan m ~src ~dst ~byte_width:4 in
  (match plan.Codegen.Conversion.mechanism with
  | Codegen.Conversion.Warp_shuffle_compressed _ -> ()
  | mech ->
      Alcotest.failf "expected compressed shuffle, got %s"
        (Codegen.Conversion.mechanism_name mech));
  (* Algebraic executor. *)
  let d = Gpusim.Dist.init src ~f:(fun i -> i + 100) in
  check_bool "algebraic execute" true
    (Gpusim.Dist.consistent_with (Codegen.Conversion.execute plan d) ~f:(fun i -> i + 100));
  (* Lowered instruction stream. *)
  let d', cost = Codegen.Lower.run m plan d in
  check_bool "lowered execute" true (Gpusim.Dist.consistent_with d' ~f:(fun i -> i + 100));
  check_bool "used shuffles, not shared memory" true
    (cost.Gpusim.Cost.shuffles > 0 && cost.Gpusim.Cost.smem_insts = 0)

let test_lower_gather () =
  (* A gather staying within the warp: lanes on the feature dim, the
     gathered axis covered by registers and a few lanes. *)
  let l = blocked ~warps:[| 1; 2 |] ~spt:[| 2; 1 |] ~tpw:[| 8; 4 |] [| 16; 8 |] in
  let axis = 0 in
  (match Codegen.Gather.plan l ~axis with
  | Codegen.Gather.Warp_shuffle _ -> ()
  | Codegen.Gather.Shared_fallback -> Alcotest.fail "expected in-warp gather");
  let src = Gpusim.Dist.init l ~f:(fun v -> (v * 7) + 1) in
  let index =
    Gpusim.Dist.init l ~f:(fun v ->
        (* a data-dependent permutation of rows *)
        (v * 5) + 3)
  in
  match Codegen.Lower.gather m ~src ~index ~axis with
  | Error e -> Alcotest.fail e
  | Ok (program, map) ->
      let st = Codegen.Lower.load_state program map src in
      let cost = Gpusim.Isa.run m program st in
      let got = Codegen.Lower.store_dist map ~dst:l st in
      let expected = Codegen.Gather.execute ~src ~index ~axis in
      check_bool "lowered gather equals reference" true
        (got.Gpusim.Dist.data = expected.Gpusim.Dist.data);
      check_bool "used shuffles" true (cost.Gpusim.Cost.shuffles > 0);
      check_int "no shared memory" 0 cost.Gpusim.Cost.smem_insts

let test_lower_reduce () =
  (* Axis split across registers, lanes and warps: the lowering must
     produce an all-reduce whose every copy agrees (checked by reading
     back through the non-injective sliced layout). *)
  let l =
    blocked ~warps:[| 2; 2 |] ~spt:[| 2; 2 |] ~tpw:[| 4; 8 |] [| 16; 64 |]
  in
  let axis = 1 in
  let d = Gpusim.Dist.init l ~f:(fun v -> (v mod 13) + 1) in
  let program, map, sliced = Codegen.Lower.reduce m ~src:d ~axis in
  let st = Codegen.Lower.load_state program map d in
  let cost = Gpusim.Isa.run m program st in
  let out = Codegen.Lower.store_dist map ~dst:sliced st in
  (* Reference row sums. *)
  let rows = 16 and cols = 64 in
  let expected = Array.make rows 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      expected.(i) <- expected.(i) + ((((i * cols) + j) mod 13) + 1)
    done
  done;
  check_bool "all-reduce correct and consistent" true
    (Gpusim.Dist.consistent_with out ~f:(fun logical -> expected.(logical)));
  (* Axis lanes exist, so shuffles were used; warps split the axis, so
     shared memory was used too. *)
  check_bool "used shuffles" true (cost.Gpusim.Cost.shuffles > 0);
  check_bool "used shared memory" true (cost.Gpusim.Cost.smem_insts > 0)

let test_lower_reduce_warp_local () =
  (* Axis confined to registers and lanes: no shared memory at all. *)
  let l = blocked ~warps:[| 4; 1 |] ~spt:[| 1; 4 |] ~tpw:[| 4; 8 |] [| 16; 32 |] in
  let d = Gpusim.Dist.init l ~f:(fun v -> v land 7) in
  let program, map, sliced = Codegen.Lower.reduce m ~src:d ~axis:1 in
  let st = Codegen.Lower.load_state program map d in
  let cost = Gpusim.Isa.run m program st in
  let out = Codegen.Lower.store_dist map ~dst:sliced st in
  let rows = 16 and cols = 32 in
  let expected = Array.make rows 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      expected.(i) <- expected.(i) + (((i * cols) + j) land 7)
    done
  done;
  check_bool "correct" true (Gpusim.Dist.consistent_with out ~f:(fun v -> expected.(v)));
  check_int "no shared memory" 0 cost.Gpusim.Cost.smem_insts

let test_lower_reduce_max () =
  let l = blocked ~warps:[| 2; 2 |] ~spt:[| 2; 2 |] ~tpw:[| 4; 8 |] [| 16; 64 |] in
  let d = Gpusim.Dist.init l ~f:(fun v -> (v * 7919) mod 1000) in
  let program, map, sliced = Codegen.Lower.reduce ~op:`Max m ~src:d ~axis:1 in
  let st = Codegen.Lower.load_state program map d in
  ignore (Gpusim.Isa.run m program st);
  let out = Codegen.Lower.store_dist map ~dst:sliced st in
  let rows = 16 and cols = 64 in
  let expected = Array.make rows min_int in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      expected.(i) <- max expected.(i) ((((i * cols) + j) * 7919) mod 1000)
    done
  done;
  check_bool "row max correct" true
    (Gpusim.Dist.consistent_with out ~f:(fun v -> expected.(v)))

let test_lower_scan () =
  (* Inclusive row scan over a layout whose axis spans registers and
     lanes. *)
  let l = blocked ~warps:[| 4; 1 |] ~spt:[| 1; 4 |] ~tpw:[| 4; 8 |] [| 16; 32 |] in
  let d = Gpusim.Dist.init l ~f:(fun v -> (v mod 5) + 1) in
  match Codegen.Lower.scan m ~src:d ~axis:1 with
  | Error e -> Alcotest.fail e
  | Ok (program, map) ->
      let st = Codegen.Lower.load_state program map d in
      let cost = Gpusim.Isa.run m program st in
      let out = Codegen.Lower.store_dist map ~dst:l st in
      let cols = 32 in
      let expected logical =
        let i = logical / cols and j = logical mod cols in
        let acc = ref 0 in
        for jj = 0 to j do
          acc := !acc + ((((i * cols) + jj) mod 5) + 1)
        done;
        !acc
      in
      check_bool "inclusive scan correct" true (Gpusim.Dist.consistent_with out ~f:expected);
      check_bool "used shuffles" true (cost.Gpusim.Cost.shuffles > 0);
      check_int "no shared memory" 0 cost.Gpusim.Cost.smem_insts

let test_lower_scan_rejects_cross_warp () =
  let l = blocked ~warps:[| 1; 4 |] ~spt:[| 1; 1 |] ~tpw:[| 4; 8 |] [| 16; 32 |] in
  let d = Gpusim.Dist.init l ~f:Fun.id in
  match Codegen.Lower.scan m ~src:d ~axis:1 with
  | Ok _ -> Alcotest.fail "warps on the axis must be rejected"
  | Error _ -> ()

let test_lower_rank3_conversion () =
  (* Conversions and their lowering are rank-generic. *)
  let a = Blocked.default ~elems_per_thread:4 ~warp_size:32 ~num_warps:4 [| 4; 32; 64 |] in
  let b =
    Blocked.default ~order:[| 0; 1; 2 |] ~elems_per_thread:2 ~warp_size:32 ~num_warps:4
      [| 4; 32; 64 |]
  in
  let plan = Codegen.Conversion.plan m ~src:a ~dst:b ~byte_width:4 in
  let d = Gpusim.Dist.init a ~f:(fun i -> i * 3) in
  let d', cost = Codegen.Lower.run m plan d in
  check_bool "rank-3 lowered conversion" true
    (Gpusim.Dist.consistent_with d' ~f:(fun i -> i * 3));
  check_bool "cost accounted" true (Gpusim.Cost.estimate m cost > 0.)

(* {1 Properties} *)

let arb_pair =
  let gen =
    QCheck.Gen.(
      let* size = oneofl [ 16; 32 ] in
      let layout_gen =
        oneof
          [
            (let* spt1 = oneofl [ 1; 2; 4 ] in
             let* ord = oneofl [ [| 1; 0 |]; [| 0; 1 |] ] in
             let spt = if ord.(0) = 1 then [| 1; spt1 |] else [| spt1; 1 |] in
             let tpw = if ord.(0) = 1 then [| 4; 8 |] else [| 8; 4 |] in
             let* warps = oneofl [ [| 1; 1 |]; [| 2; 1 |]; [| 1; 2 |] ] in
             return
               (Blocked.make
                  {
                    shape = [| size; size |];
                    size_per_thread = spt;
                    threads_per_warp = tpw;
                    warps_per_cta = warps;
                    order = ord;
                  }));
            (let* warps = oneofl [ [| 1; 1 |]; [| 2; 1 |] ] in
             return (Mma.output ~bitwidth:32 ~warps ~shape:[| size; size |] ()));
          ]
      in
      let* a = layout_gen and* b = layout_gen in
      return (a, b))
  in
  QCheck.make gen ~print:(fun (a, b) -> Layout.to_string a ^ "\n->\n" ^ Layout.to_string b)

let prop_lowered_gather_correct =
  let gen =
    QCheck.Gen.(
      let* rows = oneofl [ 8; 16 ] in
      let* cols = oneofl [ 128; 256 ] in
      let* warps = oneofl [ 1; 2 ] in
      let* salt = int_bound 1000 in
      return (rows, cols, warps, salt))
  in
  QCheck.Test.make ~name:"lowered gathers equal the reference" ~count:40
    (QCheck.make gen ~print:(fun (r, c, w, s) -> Printf.sprintf "%dx%d w%d salt%d" r c w s))
    (fun (rows, cols, warps, salt) ->
      let l =
        Blocked.default ~elems_per_thread:4 ~warp_size:32 ~num_warps:warps [| rows; cols |]
      in
      match Codegen.Gather.plan l ~axis:0 with
      | Codegen.Gather.Shared_fallback -> QCheck.assume_fail ()
      | Codegen.Gather.Warp_shuffle _ -> (
          let src = Gpusim.Dist.init l ~f:(fun v -> (v * 3) + salt) in
          let index = Gpusim.Dist.init l ~f:(fun v -> (v + salt) mod rows) in
          match Codegen.Lower.gather m ~src ~index ~axis:0 with
          | Error _ -> false
          | Ok (program, map) ->
              let st = Codegen.Lower.load_state program map src in
              ignore (Gpusim.Isa.run m program st);
              let got = Codegen.Lower.store_dist map ~dst:l st in
              let expected = Codegen.Gather.execute ~src ~index ~axis:0 in
              got.Gpusim.Dist.data = expected.Gpusim.Dist.data))

let prop_lowered_conversion_correct =
  QCheck.Test.make ~name:"lowered instruction streams convert correctly" ~count:80 arb_pair
    (fun (src, dst) ->
      QCheck.assume
        (Layout.in_size src Dims.warp = Layout.in_size dst Dims.warp
        && Layout.in_size src Dims.lane = Layout.in_size dst Dims.lane);
      let plan = Codegen.Conversion.plan m ~src ~dst ~byte_width:4 in
      let d = Gpusim.Dist.init src ~f:(fun i -> i lxor 0x1234) in
      let d', _ = Codegen.Lower.run m plan d in
      Gpusim.Dist.consistent_with d' ~f:(fun i -> i lxor 0x1234))

let prop_lowered_matches_algebraic_executor =
  QCheck.Test.make ~name:"lowered result equals algebraic execute" ~count:60 arb_pair
    (fun (src, dst) ->
      QCheck.assume
        (Layout.in_size src Dims.warp = Layout.in_size dst Dims.warp
        && Layout.in_size src Dims.lane = Layout.in_size dst Dims.lane);
      let plan = Codegen.Conversion.plan m ~src ~dst ~byte_width:4 in
      let d = Gpusim.Dist.init src ~f:(fun i -> i * 5) in
      let via_isa, _ = Codegen.Lower.run m plan d in
      let via_algebra = Codegen.Conversion.execute plan d in
      via_isa.Gpusim.Dist.data = via_algebra.Gpusim.Dist.data)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "lower"
    [
      ( "isa",
        [
          Alcotest.test_case "mov" `Quick test_isa_mov;
          Alcotest.test_case "shfl" `Quick test_isa_shfl;
          Alcotest.test_case "sel/scatter" `Quick test_isa_sel_scatter;
          Alcotest.test_case "smem roundtrip" `Quick test_isa_smem_roundtrip;
          Alcotest.test_case "bounds checking" `Quick test_isa_bounds;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "no-op" `Quick test_lower_noop;
          Alcotest.test_case "register permute" `Quick test_lower_register_permute;
          Alcotest.test_case "warp shuffle" `Quick test_lower_shuffle;
          Alcotest.test_case "shared memory" `Quick test_lower_shared;
          Alcotest.test_case "wavefronts match prediction" `Quick
            test_lowered_wavefronts_match_prediction;
          Alcotest.test_case "printing" `Quick test_program_printing;
          Alcotest.test_case "gather" `Quick test_lower_gather;
          Alcotest.test_case "compressed shuffle" `Quick test_lower_compressed_shuffle;
          Alcotest.test_case "reduce all-axes" `Quick test_lower_reduce;
          Alcotest.test_case "reduce warp-local" `Quick test_lower_reduce_warp_local;
          Alcotest.test_case "reduce max" `Quick test_lower_reduce_max;
          Alcotest.test_case "scan" `Quick test_lower_scan;
          Alcotest.test_case "scan rejects cross-warp" `Quick test_lower_scan_rejects_cross_warp;
          Alcotest.test_case "rank-3 conversion" `Quick test_lower_rank3_conversion;
        ] );
      ( "properties",
        q
          [
            prop_lowered_conversion_correct;
            prop_lowered_matches_algebraic_executor;
            prop_lowered_gather_correct;
          ] );
    ]
