(* The pass pipeline itself: manager ordering/disabling/dump hooks,
   per-pass diagnostic attribution, simplify's cost-invariance, and
   engine rerun idempotency. *)

open Tir

let m = Gpusim.Machine.gh200

let tiny_program () =
  let p = Program.create () in
  let x = Program.load p ~name:"x" ~shape:[| 16; 32 |] ~dtype:Tensor_lib.Dtype.F32 () in
  ignore (Program.store p x);
  p

let fake name =
  (module struct
    let name = name
    let description = "test pass"

    let run (st : Pass.state) =
      st.Pass.unsupported <- name :: st.Pass.unsupported
  end : Pass.PASS)

let manager_config ?disabled ?dump_after ?dump_filter passes =
  Pass_manager.config ?disabled ?dump_after ?dump_filter passes

let test_ordering () =
  let st = Pass.init m ~mode:Engine.Linear (tiny_program ()) in
  let report = Pass_manager.run (manager_config [ fake "p1"; fake "p2"; fake "p3" ]) st in
  Alcotest.(check (list string))
    "effects in list order" [ "p1"; "p2"; "p3" ]
    (Pass.result st).Pass.unsupported;
  Alcotest.(check (list string))
    "reports in list order" [ "p1"; "p2"; "p3" ]
    (List.map (fun (p : Pass_manager.pass_report) -> p.Pass_manager.pass) report.Pass_manager.pass_reports)

let test_disabled () =
  let st = Pass.init m ~mode:Engine.Linear (tiny_program ()) in
  let report =
    Pass_manager.run
      (manager_config ~disabled:[ "p2" ] [ fake "p1"; fake "p2"; fake "p3" ])
      st
  in
  Alcotest.(check (list string))
    "disabled pass has no effect" [ "p1"; "p3" ]
    (Pass.result st).Pass.unsupported;
  Alcotest.(check (list string))
    "disabled pass not reported" [ "p1"; "p3" ]
    (List.map (fun (p : Pass_manager.pass_report) -> p.Pass_manager.pass) report.Pass_manager.pass_reports)

let test_dump_hook () =
  let fired = ref [] in
  let st = Pass.init m ~mode:Engine.Linear (tiny_program ()) in
  let hook name _st = fired := name :: !fired in
  ignore (Pass_manager.run (manager_config ~dump_after:hook Passes.default) st);
  Alcotest.(check (list string))
    "hook fires once per pass, in order"
    (List.map Passes.name Passes.default)
    (List.rev !fired);
  fired := [];
  let st = Pass.init m ~mode:Engine.Linear (tiny_program ()) in
  ignore
    (Pass_manager.run
       (manager_config ~dump_after:hook
          ~dump_filter:(fun n -> n = "lower")
          Passes.default)
       st);
  Alcotest.(check (list string)) "filter restricts the hook" [ "lower" ] !fired

let test_diag_pass_names () =
  (* Synthetic: a pass's own warning is attributed to it. *)
  let warner =
    (module struct
      let name = "warner"
      let description = "emits one diagnostic"
      let run st = Pass.warn st ~code:"LL799" "synthetic"
    end : Pass.PASS)
  in
  let st = Pass.init m ~mode:Engine.Linear (tiny_program ()) in
  ignore (Pass_manager.run (manager_config [ warner ]) st);
  Alcotest.(check (list (option string)))
    "synthetic diagnostic tagged" [ Some "warner" ]
    (List.map (fun (d : Linear_layout.Diagnostics.t) -> d.Linear_layout.Diagnostics.pass) st.Pass.diags);
  (* Organic: skipping backward_remat leaves stores unplanned; [lower]
     reports that, and the manager attributes the diagnostic to it. *)
  let st = Pass.init m ~mode:Engine.Linear (tiny_program ()) in
  ignore
    (Pass_manager.run (manager_config ~disabled:[ "backward_remat" ] Passes.default) st);
  Alcotest.(check bool) "lower warned about the unplanned store" true (st.Pass.diags <> []);
  List.iter
    (fun (d : Linear_layout.Diagnostics.t) ->
      Alcotest.(check (option string)) "organic diagnostic tagged" (Some "lower")
        d.Linear_layout.Diagnostics.pass;
      Alcotest.(check string) "code" "LL701" d.Linear_layout.Diagnostics.code)
    st.Pass.diags;
  (* The analyze pass tags the verifier/lint findings. *)
  let k = Kernels.find "gemm" in
  let st =
    Pass.init m ~mode:Engine.Linear (k.Kernels.build ~size:(List.hd k.Kernels.sizes))
  in
  ignore (Pass_manager.run (manager_config Passes.all) st);
  List.iter
    (fun (d : Linear_layout.Diagnostics.t) ->
      Alcotest.(check (option string)) "analyze diagnostics tagged" (Some "analyze")
        d.Linear_layout.Diagnostics.pass)
    st.Pass.diags

(* A compact version of test_engine_fuzz's program generator: random
   2-D f32 op DAGs. *)
let gen_program =
  QCheck.Gen.(
    let* rows = oneofl [ 16; 32 ] in
    let* cols = oneofl [ 32; 64 ] in
    let shape = [| rows; cols |] in
    let* n_ops = int_range 3 10 in
    let* seeds = list_repeat n_ops (pair (int_bound 6) (int_bound 1000)) in
    return
      (let p = Program.create () in
       let x = Program.load p ~name:"x" ~shape ~dtype:Tensor_lib.Dtype.F32 () in
       let y = Program.load p ~name:"y" ~shape ~dtype:Tensor_lib.Dtype.F32 () in
       let live = ref [ x; y ] in
       let pick k = List.nth !live (k mod List.length !live) in
       List.iter
         (fun (op, k) ->
           let v = pick k in
           let id =
             match op with
             | 0 | 1 -> Program.elementwise p ~name:"exp" [ v ]
             | 2 -> Program.elementwise p ~name:"add" [ v; pick (k + 1) ]
             | 3 ->
                 let r = Program.reduce p v ~axis:1 in
                 let e = Program.expand_dims p r ~axis:1 in
                 Program.broadcast p e ~shape
             | 4 ->
                 let t = Program.trans p v ~perm:[| 1; 0 |] in
                 Program.trans p t ~perm:[| 1; 0 |]
             | 5 -> Program.scan p v ~axis:1 ~reverse:(k land 1 = 1)
             | _ -> Program.elementwise p ~name:"mul" [ v; pick (k + 7) ]
           in
           live := id :: !live)
         seeds;
       ignore (Program.store p (List.hd !live));
       p))

let arb_program =
  QCheck.make gen_program ~print:(fun p -> Format.asprintf "%a" Program.pp p)

let cost_sig (c : Gpusim.Cost.t) =
  Printf.sprintf "%d %d %d %d %d %d %d %d %d" c.Gpusim.Cost.smem_wavefronts
    c.Gpusim.Cost.smem_insts c.Gpusim.Cost.shuffles c.Gpusim.Cost.gmem_transactions
    c.Gpusim.Cost.gmem_insts c.Gpusim.Cost.ldmatrix c.Gpusim.Cost.alu c.Gpusim.Cost.mma
    c.Gpusim.Cost.barriers

let result_sig (r : Engine.result) =
  Printf.sprintf "%s | %d %d %d %d %d %d %d" (cost_sig r.Engine.cost) r.Engine.converts
    r.Engine.noop_converts r.Engine.local_loads r.Engine.local_stores r.Engine.remats
    (List.length r.Engine.unsupported)
    (List.length r.Engine.conversions)

(* Folding an equal-layout request removes a plan that would have been
   a zero-cost no-op anyway (in linear mode): disabling [simplify] must
   never change the program cost. *)
let prop_simplify_cost_invariant =
  QCheck.Test.make ~name:"simplify never changes program cost (linear)" ~count:100
    arb_program (fun p ->
      let with_simplify =
        let st = Pass.init m ~mode:Engine.Linear p in
        ignore (Pass_manager.run (manager_config Passes.default) st);
        (Pass.result st).Pass.cost
      in
      let without_simplify =
        let st = Pass.init m ~mode:Engine.Linear p in
        ignore
          (Pass_manager.run (manager_config ~disabled:[ "simplify" ] Passes.default) st);
        (Pass.result st).Pass.cost
      in
      cost_sig with_simplify = cost_sig without_simplify)

let test_rerun_idempotent () =
  List.iter
    (fun (k : Kernels.kernel) ->
      let size = List.hd k.Kernels.sizes in
      let p = k.Kernels.build ~size in
      let first = result_sig (Engine.run m ~mode:Engine.Linear p) in
      let second = result_sig (Engine.run m ~mode:Engine.Linear p) in
      Alcotest.(check string) (k.Kernels.name ^ " rerun") first second;
      (* A legacy run in between must not leak state into a linear one. *)
      ignore (Engine.run m ~mode:Engine.Legacy_mode p);
      let third = result_sig (Engine.run m ~mode:Engine.Linear p) in
      Alcotest.(check string) (k.Kernels.name ^ " after legacy") first third;
      let fresh = result_sig (Engine.run m ~mode:Engine.Linear (k.Kernels.build ~size)) in
      Alcotest.(check string) (k.Kernels.name ^ " vs fresh build") first fresh)
    Kernels.all

let test_registry () =
  Alcotest.(check int) "all = default + analyze + certify"
    (List.length Passes.default + 2)
    (List.length Passes.all);
  let names = List.map Passes.name Passes.all in
  Alcotest.(check (list string)) "registered names"
    [ "anchor"; "forward_propagate"; "simplify"; "backward_remat"; "insert_conversions"; "lower"; "analyze"; "certify" ]
    names;
  List.iter
    (fun n ->
      match Passes.find n with
      | Some p ->
          Alcotest.(check string) "find returns the pass" n (Passes.name p);
          Alcotest.(check bool) "has description" true (Passes.description p <> "")
      | None -> Alcotest.failf "pass %s not found" n)
    names;
  Alcotest.(check bool) "unknown pass" true (Passes.find "nonesuch" = None)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "pipeline"
    [
      ( "manager",
        [
          Alcotest.test_case "ordering respected" `Quick test_ordering;
          Alcotest.test_case "disabled pass skipped" `Quick test_disabled;
          Alcotest.test_case "dump-after hook" `Quick test_dump_hook;
          Alcotest.test_case "diagnostics carry pass names" `Quick test_diag_pass_names;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ("simplify", q [ prop_simplify_cost_invariant ]);
      ( "idempotency",
        [ Alcotest.test_case "rerun and cross-mode" `Quick test_rerun_idempotent ] );
    ]
