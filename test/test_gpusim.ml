(* Tests for the GPU simulator substrate: bank conflicts, coalescing,
   distributed values, cost model. *)

open Linear_layout

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let m = Gpusim.Machine.gh200

let access addr bytes = { Gpusim.Banks.addr; bytes }

let test_conflict_free_row () =
  (* 32 lanes reading consecutive 4-byte words: one wavefront. *)
  let accesses = List.init 32 (fun l -> access (l * 4) 4) in
  check_int "one wavefront" 1 (Gpusim.Banks.wavefronts m accesses)

let test_full_conflict () =
  (* 32 lanes all hitting bank 0 with distinct words: 32 wavefronts. *)
  let accesses = List.init 32 (fun l -> access (l * 128) 4) in
  check_int "32-way conflict" 32 (Gpusim.Banks.wavefronts m accesses)

let test_broadcast () =
  (* All lanes reading the same word: broadcast, one wavefront. *)
  let accesses = List.init 32 (fun _ -> access 64 4) in
  check_int "broadcast" 1 (Gpusim.Banks.wavefronts m accesses)

let test_two_way_conflict () =
  (* Lanes i and i+16 hit the same bank with different words. *)
  let accesses = List.init 32 (fun l -> access (l mod 16 * 4 + l / 16 * 256) 4) in
  check_int "2-way" 2 (Gpusim.Banks.wavefronts m accesses)

let test_vectorized_phases () =
  (* 32 lanes x 16B vectorized = 512B: four 128-byte phases, each
     conflict-free. *)
  let accesses = List.init 32 (fun l -> access (l * 16) 16) in
  check_int "four phases" 4 (Gpusim.Banks.wavefronts m accesses);
  check_bool "conflict free" true (Gpusim.Banks.conflict_free m accesses)

let test_vectorized_conflicting () =
  (* 8-lane phases all hitting the same 4 banks per phase with distinct
     words: stride 512 bytes. *)
  let accesses = List.init 32 (fun l -> access (l * 512) 16) in
  check_int "wavefronts" 32 (Gpusim.Banks.wavefronts m accesses)

let test_coalesce () =
  let tx = Gpusim.Coalesce.transactions (List.init 32 (fun l -> (l * 4, 4))) in
  check_int "coalesced f32 row" 4 tx;
  let tx2 = Gpusim.Coalesce.transactions (List.init 32 (fun l -> (l * 128, 1))) in
  check_int "strided bytes" 32 tx2;
  Alcotest.(check string) "mnemonic 128" "v4.b32" (Gpusim.Coalesce.instruction_name ~bits:128);
  Alcotest.(check string) "mnemonic 16" "v1.b16" (Gpusim.Coalesce.instruction_name ~bits:16)

(* {1 Dist} *)

let layout_a =
  Blocked.make
    {
      shape = [| 16; 16 |];
      size_per_thread = [| 2; 2 |];
      threads_per_warp = [| 4; 8 |];
      warps_per_cta = [| 2; 1 |];
      order = [| 1; 0 |];
    }

let test_dist_roundtrip () =
  let d = Gpusim.Dist.init layout_a ~f:(fun i -> i * 7) in
  check_int "size" 256 (Gpusim.Dist.size d);
  (match Gpusim.Dist.to_logical d with
  | Ok t ->
      check_int "len" 256 (Array.length t);
      Array.iteri (fun i v -> if v <> i * 7 then Alcotest.failf "t.(%d) = %d" i v) t
  | Error e -> Alcotest.fail e);
  check_bool "consistent" true (Gpusim.Dist.consistent_with d ~f:(fun i -> i * 7))

let test_dist_broadcast_mismatch () =
  (* A broadcasting layout where we deliberately corrupt one copy. *)
  let l =
    Blocked.make
      {
        shape = [| 4; 4 |];
        size_per_thread = [| 1; 1 |];
        threads_per_warp = [| 4; 4 |];
        warps_per_cta = [| 2; 1 |];
        order = [| 1; 0 |];
      }
  in
  let d = Gpusim.Dist.init l ~f:Fun.id in
  Gpusim.Dist.set d (Gpusim.Dist.size d - 1) (-42);
  (match Gpusim.Dist.to_logical d with
  | Ok _ -> Alcotest.fail "expected broadcast mismatch"
  | Error _ -> ());
  check_bool "inconsistent" false (Gpusim.Dist.consistent_with d ~f:Fun.id)

let test_cost_model () =
  let c = Gpusim.Cost.zero () in
  c.Gpusim.Cost.shuffles <- 10;
  c.Gpusim.Cost.smem_wavefronts <- 4;
  let t = Gpusim.Cost.estimate m c in
  check_bool "positive" true (t > 0.);
  let c2 = Gpusim.Cost.scale c 3 in
  check_int "scaled" 30 c2.Gpusim.Cost.shuffles;
  Gpusim.Cost.add c c2;
  check_int "accumulated" 40 c.Gpusim.Cost.shuffles

let test_machines () =
  check_int "nvidia warp" 32 Gpusim.Machine.rtx4090.warp_size;
  check_int "amd warp" 64 Gpusim.Machine.mi250.warp_size;
  check_bool "gh200 wgmma" true Gpusim.Machine.gh200.has_wgmma;
  check_bool "4090 no wgmma" false Gpusim.Machine.rtx4090.has_wgmma;
  check_bool "mi250 no ldmatrix" false Gpusim.Machine.mi250.has_ldmatrix;
  check_int "three platforms" 3 (List.length Gpusim.Machine.all)

let () =
  Alcotest.run "gpusim"
    [
      ( "banks",
        [
          Alcotest.test_case "conflict-free row" `Quick test_conflict_free_row;
          Alcotest.test_case "full conflict" `Quick test_full_conflict;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "two-way conflict" `Quick test_two_way_conflict;
          Alcotest.test_case "vectorized phases" `Quick test_vectorized_phases;
          Alcotest.test_case "vectorized conflicts" `Quick test_vectorized_conflicting;
        ] );
      ("coalesce", [ Alcotest.test_case "transactions" `Quick test_coalesce ]);
      ( "dist",
        [
          Alcotest.test_case "roundtrip" `Quick test_dist_roundtrip;
          Alcotest.test_case "broadcast mismatch" `Quick test_dist_broadcast_mismatch;
        ] );
      ( "machine",
        [
          Alcotest.test_case "cost model" `Quick test_cost_model;
          Alcotest.test_case "platforms" `Quick test_machines;
        ] );
    ]
