(* Direct tests of individual engine decision paths: store
   rematerialization, legacy normalization of shape ops, vectorization
   rules, dot layout selection per vendor, conversion accounting. *)

open Tir
open Linear_layout

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let gh = Gpusim.Machine.gh200

let test_store_keeps_coalesced_producer () =
  (* A store fed by the load's own layout: no conversion, full vec. *)
  let p = Program.create () in
  let x = Program.load p ~shape:[| 64; 64 |] ~dtype:Tensor_lib.Dtype.F32 () in
  let st = Program.store p x in
  let r = Engine.run gh ~mode:Engine.Linear p in
  check_int "no conversions" 0 r.Engine.converts;
  let sl = Option.get (Program.instr p st).Program.layout in
  let xl = Option.get (Program.instr p x).Program.layout in
  check_bool "store reuses producer layout" true (Layout.equal sl xl)

let test_store_converts_uncoalesced_producer () =
  (* A store fed by an mma accumulator: direct stores would be
     uncoalesced, so the engine converts to the blocked anchor. *)
  let p = Program.create () in
  let a = Program.load p ~shape:[| 64; 64 |] ~dtype:Tensor_lib.Dtype.F16 () in
  let b = Program.load p ~shape:[| 64; 64 |] ~dtype:Tensor_lib.Dtype.F16 () in
  let d = Program.dot p ~a ~b ~acc:Tensor_lib.Dtype.F32 in
  let st = Program.store p d in
  let r = Engine.run gh ~mode:Engine.Linear p in
  let sl = Option.get (Program.instr p st).Program.layout in
  check_bool "store uses a coalesced layout" true
    (Layout.num_consecutive sl ~in_dim:Dims.register > 1);
  (* Conversions: two operands + the accumulator before the store. *)
  check_bool "3 conversions" true (r.Engine.converts >= 3)

let test_legacy_normalizes_mma_transpose () =
  (* Legacy cannot propagate a transpose through an MMA layout: it
     must convert to blocked first (the Section 4.4 limitation). *)
  let build () =
    let p = Program.create () in
    let a = Program.load p ~shape:[| 64; 64 |] ~dtype:Tensor_lib.Dtype.F16 () in
    let b = Program.load p ~shape:[| 64; 64 |] ~dtype:Tensor_lib.Dtype.F16 () in
    let d = Program.dot p ~a ~b ~acc:Tensor_lib.Dtype.F32 in
    let t = Program.trans p d ~perm:[| 1; 0 |] in
    ignore (Program.store p t);
    p
  in
  let lin = Engine.run gh ~mode:Engine.Linear (build ()) in
  let leg = Engine.run gh ~mode:Engine.Legacy_mode (build ()) in
  check_bool "legacy pays more conversions" true (leg.Engine.converts > lin.Engine.converts);
  check_bool "legacy slower" true (Engine.time gh leg > Engine.time gh lin)

let test_vendor_dot_layouts () =
  (* The dot anchor adapts to the vendor's tensor-core tile. *)
  let check_machine machine expected_lanes =
    let p = Program.create () in
    let a = Program.load p ~shape:[| 64; 64 |] ~dtype:Tensor_lib.Dtype.F16 () in
    let b = Program.load p ~shape:[| 64; 64 |] ~dtype:Tensor_lib.Dtype.F16 () in
    let d = Program.dot p ~a ~b ~acc:Tensor_lib.Dtype.F32 in
    ignore (Program.store p d);
    ignore (Engine.run machine ~mode:Engine.Linear p);
    let dl = Option.get (Program.instr p d).Program.layout in
    check_int
      (machine.Gpusim.Machine.name ^ " accumulator lanes")
      expected_lanes
      (Layout.in_size dl Dims.lane)
  in
  check_machine Gpusim.Machine.gh200 32;
  check_machine Gpusim.Machine.mi250 64;
  check_machine Gpusim.Machine.pvc 16

let test_linear_vec_beats_legacy_vec () =
  (* The [512,2] f8 case of Table 3, at the engine level: the linear
     load issues fewer global instructions. *)
  let build () =
    let p = Program.create () in
    let x = Program.load p ~shape:[| 512; 2 |] ~dtype:Tensor_lib.Dtype.F8E4M3 () in
    ignore (Program.store p x);
    p
  in
  let lin = Engine.run gh ~mode:Engine.Linear (build ()) in
  let leg = Engine.run gh ~mode:Engine.Legacy_mode (build ()) in
  check_bool "fewer global instructions" true
    (lin.Engine.cost.Gpusim.Cost.gmem_insts < leg.Engine.cost.Gpusim.Cost.gmem_insts)

let test_conversion_accounting () =
  (* Each dot operand staged through shared memory counts one
     local_store and one local_load, and one convert. *)
  let p = Program.create () in
  let a = Program.load p ~shape:[| 64; 64 |] ~dtype:Tensor_lib.Dtype.F16 () in
  let b = Program.load p ~shape:[| 64; 64 |] ~dtype:Tensor_lib.Dtype.F16 () in
  let d = Program.dot p ~a ~b ~acc:Tensor_lib.Dtype.F32 in
  ignore d;
  let r = Engine.run gh ~mode:Engine.Linear p in
  check_int "loads = stores" r.Engine.local_loads r.Engine.local_stores;
  check_bool "conversions recorded with mechanisms" true
    (List.for_all (fun c -> c.Engine.mechanism <> "") r.Engine.conversions)

let test_num_warps_respected () =
  let p () =
    let p = Program.create () in
    let x = Program.load p ~shape:[| 64; 64 |] ~dtype:Tensor_lib.Dtype.F32 () in
    ignore (Program.store p x);
    p
  in
  let prog = p () in
  ignore (Engine.run gh ~mode:Engine.Linear ~num_warps:8 prog);
  let l = Option.get (Program.instr prog 0).Program.layout in
  check_int "8 warps" 8 (Layout.in_size l Dims.warp);
  let prog2 = p () in
  ignore (Engine.run gh ~mode:Engine.Linear ~num_warps:1 prog2);
  let l2 = Option.get (Program.instr prog2 0).Program.layout in
  check_int "1 warp" 1 (Layout.in_size l2 Dims.warp)

let test_unsupported_accumulates () =
  (* Legacy failures accumulate rather than abort. *)
  let p = Program.create () in
  let a = Program.load p ~shape:[| 16; 16 |] ~dtype:Tensor_lib.Dtype.F8E4M3 () in
  let b = Program.load p ~shape:[| 16; 16 |] ~dtype:Tensor_lib.Dtype.F8E4M3 () in
  let d = Program.dot p ~a ~b ~acc:Tensor_lib.Dtype.F32 in
  let s = Program.scan p d ~axis:1 ~reverse:true in
  ignore (Program.store p s);
  let leg = Engine.run gh ~mode:Engine.Legacy_mode p in
  check_bool "at least two failures" true (List.length leg.Engine.unsupported >= 2)

let () =
  Alcotest.run "engine_paths"
    [
      ( "stores",
        [
          Alcotest.test_case "keeps coalesced producer" `Quick test_store_keeps_coalesced_producer;
          Alcotest.test_case "converts uncoalesced producer" `Quick
            test_store_converts_uncoalesced_producer;
        ] );
      ( "modes",
        [
          Alcotest.test_case "legacy normalizes mma transpose" `Quick
            test_legacy_normalizes_mma_transpose;
          Alcotest.test_case "vendor dot layouts" `Quick test_vendor_dot_layouts;
          Alcotest.test_case "linear vec beats legacy vec" `Quick test_linear_vec_beats_legacy_vec;
          Alcotest.test_case "unsupported accumulates" `Quick test_unsupported_accumulates;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "conversion accounting" `Quick test_conversion_accounting;
          Alcotest.test_case "num_warps respected" `Quick test_num_warps_respected;
        ] );
    ]
