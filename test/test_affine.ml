(* Tests for the affine-layout extension (Section 8): y = Ax (+) b,
   with flip and aligned slicing built on it. *)

open Linear_layout

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let layout_a =
  Blocked.make
    {
      shape = [| 16; 16 |];
      size_per_thread = [| 2; 2 |];
      threads_per_warp = [| 4; 8 |];
      warps_per_cta = [| 2; 1 |];
      order = [| 1; 0 |];
    }

let get d out = List.assoc d out

let test_of_linear () =
  let a = Affine.of_linear layout_a in
  check_bool "linear" true (Affine.is_linear a);
  let out = Affine.apply a [ (Dims.register, 1); (Dims.lane, 9) ] in
  check_int "same as layout" 2 (get (Dims.dim 0) out);
  check_int "same as layout j" 3 (get (Dims.dim 1) out)

let test_offset_apply () =
  let a = Affine.make layout_a ~offset:[ (Dims.dim 1, 5) ] in
  check_bool "not linear" false (Affine.is_linear a);
  let out = Affine.apply a [ (Dims.register, 1); (Dims.lane, 9) ] in
  check_int "i unchanged" 2 (get (Dims.dim 0) out);
  check_int "j xored" (3 lxor 5) (get (Dims.dim 1) out)

let test_offset_validation () =
  (match Affine.make layout_a ~offset:[ ("nope", 1) ] with
  | exception Layout.Error _ -> ()
  | _ -> Alcotest.fail "unknown dimension must be rejected");
  match Affine.make layout_a ~offset:[ (Dims.dim 0, 16) ] with
  | exception Layout.Error _ -> ()
  | _ -> Alcotest.fail "out-of-range offset must be rejected"

let test_flip_involution () =
  let f = Affine.flip layout_a ~dim:0 in
  (* flip o flip = the identity-on-image: composing the flip's offset
     twice cancels. *)
  let out1 = Affine.apply f [ (Dims.register, 0); (Dims.lane, 0); (Dims.warp, 0) ] in
  check_int "row 0 flips to 15" 15 (get (Dims.dim 0) out1);
  (* Apply the affine inverse and re-apply: roundtrip. *)
  let inv = Affine.invert f in
  let back = Affine.apply inv out1 in
  check_int "roundtrip reg" 0 (get Dims.register back);
  check_int "roundtrip lane" 0 (get Dims.lane back)

let test_compose_offsets () =
  (* Composing a flip (on the tensor) with the identity tensor->tensor
     map carrying another offset XORs the offsets. *)
  let f = Affine.flip layout_a ~dim:1 in
  let id_t =
    Affine.make
      (Layout.mul
         (Layout.identity1d 4 ~in_dim:(Dims.dim 1) ~out_dim:(Dims.dim 1))
         (Layout.identity1d 4 ~in_dim:(Dims.dim 0) ~out_dim:(Dims.dim 0)))
      ~offset:[ (Dims.dim 1, 3) ]
  in
  let c = Affine.compose id_t f in
  let out = Affine.apply c [ (Dims.register, 0); (Dims.lane, 0); (Dims.warp, 0) ] in
  check_int "offsets xor" (15 lxor 3) (get (Dims.dim 1) out)

let test_invert_roundtrip () =
  let a = Affine.make layout_a ~offset:[ (Dims.dim 0, 7); (Dims.dim 1, 2) ] in
  let ai = Affine.invert a in
  (* For every hardware point, invert (apply x) = x. *)
  for hw = 0 to 255 do
    let point =
      [
        (Dims.register, hw land 3);
        (Dims.lane, (hw lsr 2) land 31);
        (Dims.warp, hw lsr 7);
      ]
    in
    let back = Affine.apply ai (Affine.apply a point) in
    List.iter
      (fun (d, v) -> if List.assoc d back <> v then Alcotest.failf "roundtrip failed at %d" hw)
      point
  done

let test_slice () =
  (* Take rows 8..15 of the 16x16 tensor: one warp bit selects the
     window, so the reduced layout loses it. *)
  let s = Affine.slice layout_a ~dim:0 ~start:8 ~size:8 in
  check_int "warp dropped" 0 (Layout.in_bits s.Affine.linear Dims.warp);
  (* The window's element (8, 0) is register 0 of thread 0 in the
     reduced layout, reported in original coordinates. *)
  let out = Affine.apply s [ (Dims.register, 0); (Dims.lane, 0) ] in
  check_int "rebased row" 8 (get (Dims.dim 0) out);
  check_int "col" 0 (get (Dims.dim 1) out);
  (* Unaligned or oversized windows are rejected. *)
  (match Affine.slice layout_a ~dim:0 ~start:4 ~size:8 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unaligned slice must be rejected");
  match Affine.slice layout_a ~dim:0 ~start:16 ~size:8 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range slice must be rejected"

let test_slice_covers_window () =
  let s = Affine.slice layout_a ~dim:0 ~start:8 ~size:8 in
  (* Every element of rows 8..15 is reachable; no element outside. *)
  let seen = Hashtbl.create 128 in
  let bits = Layout.total_in_bits s.Affine.linear in
  for hw = 0 to (1 lsl bits) - 1 do
    let out =
      Affine.apply s (Layout.unflatten_value (Layout.in_dims s.Affine.linear) hw)
    in
    let i = get (Dims.dim 0) out and j = get (Dims.dim 1) out in
    if i < 8 || i > 15 then Alcotest.failf "row %d outside window" i;
    Hashtbl.replace seen (i, j) ()
  done;
  check_int "all 128 window elements covered" 128 (Hashtbl.length seen)

let prop_affine_apply_difference_is_linear =
  QCheck.Test.make ~name:"x -> f(x) xor f(0) is linear" ~count:200
    (QCheck.make QCheck.Gen.(pair (int_bound 255) (int_bound 255)))
    (fun (u, v) ->
      let a = Affine.make layout_a ~offset:[ (Dims.dim 0, 9); (Dims.dim 1, 4) ] in
      let ap x =
        let out =
          Affine.apply a
            [
              (Dims.register, x land 3);
              (Dims.lane, (x lsr 2) land 31);
              (Dims.warp, (x lsr 7) land 1);
            ]
        in
        (get (Dims.dim 0) out lsl 4) lor get (Dims.dim 1) out
      in
      let f0 = ap 0 in
      (ap u lxor f0) lxor (ap v lxor f0) = ap (u lxor v) lxor f0)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "affine"
    [
      ( "basics",
        [
          Alcotest.test_case "of_linear" `Quick test_of_linear;
          Alcotest.test_case "offset apply" `Quick test_offset_apply;
          Alcotest.test_case "offset validation" `Quick test_offset_validation;
        ] );
      ( "operations",
        [
          Alcotest.test_case "flip" `Quick test_flip_involution;
          Alcotest.test_case "compose" `Quick test_compose_offsets;
          Alcotest.test_case "invert roundtrip" `Quick test_invert_roundtrip;
          Alcotest.test_case "slice" `Quick test_slice;
          Alcotest.test_case "slice covers window" `Quick test_slice_covers_window;
        ] );
      ("properties", q [ prop_affine_apply_difference_is_linear ]);
    ]
