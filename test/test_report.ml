(* Tests for the reporting helpers used by the benchmark harness. *)

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let capture f =
  let tmp = Filename.temp_file "report" ".txt" in
  let oc = open_out tmp in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 (Unix.descr_of_out_channel oc) Unix.stdout;
  Fun.protect f ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      close_out oc);
  let ic = open_in tmp in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove tmp;
  s

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_table_alignment () =
  let out =
    capture (fun () ->
        Bench_support.Report.table ~title:"t"
          ~headers:[ "a"; "long-header" ]
          [ [ "xxxx"; "1" ]; [ "y"; "22" ] ])
  in
  check_bool "title" true (contains out "-- t --");
  check_bool "header" true (contains out "long-header");
  (* Every data row has the same width up to trailing spaces. *)
  let lines =
    String.split_on_char '\n' out
    |> List.filter (fun l -> l <> "" && not (contains l "--"))
    |> List.map (fun l ->
           let rec rstrip i = if i > 0 && l.[i - 1] = ' ' then rstrip (i - 1) else i in
           String.sub l 0 (rstrip (String.length l)))
  in
  (match lines with
  | header :: _ -> check_bool "column aligned" true (contains header "long-header")
  | [] -> Alcotest.fail "no output");
  check_bool "separator row" true (contains out "----")

let test_series_bars () =
  let out =
    capture (fun () ->
        Bench_support.Report.series ~title:"s" [ ("big", 2.0); ("small", 0.5) ])
  in
  check_bool "bars scale" true (contains out "########");
  check_bool "values printed" true (contains out "2.00x" && contains out "0.50x")

let test_geomean () =
  check_float "geomean of equal" 2.0 (Bench_support.Report.geomean [ 2.0; 2.0; 2.0 ]);
  check_float "geomean 1,4" 2.0 (Bench_support.Report.geomean [ 1.0; 4.0 ]);
  check_bool "empty is nan" true (Float.is_nan (Bench_support.Report.geomean []))

let test_minmax () =
  let lo, hi = Bench_support.Report.minmax [ 3.0; 1.0; 2.0 ] in
  check_float "min" 1.0 lo;
  check_float "max" 3.0 hi

let () =
  Alcotest.run "report"
    [
      ( "report",
        [
          Alcotest.test_case "table alignment" `Quick test_table_alignment;
          Alcotest.test_case "series bars" `Quick test_series_bars;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "minmax" `Quick test_minmax;
        ] );
    ]
