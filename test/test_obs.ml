(* The observability layer: export round-trips (qcheck), metric-merge
   algebra (qcheck), domain safety of the metrics registry and the trace
   ring, and the fast path staying inert while disabled. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 qcheck: span forest -> Chrome JSON -> same forest} *)

let name_gen =
  QCheck.Gen.(
    oneof
      [
        oneofl
          [
            "pipeline";
            "pass/anchor";
            "a";
            "with space";
            "q\"uote";
            "back\\slash";
            "tab\there";
            "nl\nline";
            "";
          ];
        small_string ~gen:printable;
      ])

let attr_gen = QCheck.Gen.pair name_gen name_gen

let tree_gen =
  QCheck.Gen.(
    sized
    @@ fix (fun self size ->
           map3
             (fun name attrs children -> { Obs.Export.name; attrs; children })
             name_gen
             (list_size (int_bound 3) attr_gen)
             (if size <= 0 then return []
              else list_size (int_bound 3) (self (size / 2)))))

let forest_gen = QCheck.Gen.list_size (QCheck.Gen.int_bound 3) tree_gen

let rec print_tree (t : Obs.Export.tree) =
  Printf.sprintf "{name=%S; attrs=[%s]; children=[%s]}" t.Obs.Export.name
    (String.concat ";"
       (List.map (fun (k, v) -> Printf.sprintf "%S,%S" k v) t.Obs.Export.attrs))
    (String.concat ";" (List.map print_tree t.Obs.Export.children))

let forest_arb =
  QCheck.make ~print:(fun f -> String.concat " " (List.map print_tree f)) forest_gen

let qcheck_roundtrip =
  QCheck.Test.make ~name:"chrome export round-trips span forests" ~count:300 forest_arb
    (fun forest ->
      let json = Obs.Export.chrome_json (Obs.Export.events_of_trees forest) in
      match Obs.Export.parse_chrome json with
      | Error e -> QCheck.Test.fail_reportf "parse_chrome failed: %s" e
      | Ok events -> Obs.Export.tree_of_events events = forest)

(* {1 qcheck: merge is associative and commutative} *)

(* Keys are drawn from a fixed sorted pool so generated snapshots honor
   the sorted-assoc-list invariant of [Obs.Metrics.snapshot]. *)
let keys = [ "alpha"; "beta"; "gamma"; "delta" ]

let assoc_gen vgen =
  QCheck.Gen.(
    map
      (fun l -> List.filter_map Fun.id l)
      (flatten_l
         (List.map
            (fun k -> oneof [ return None; map (fun v -> Some (k, v)) vgen ])
            keys)))

let snapshot_gen =
  QCheck.Gen.(
    map3
      (fun counters gauges histograms -> { Obs.Metrics.counters; gauges; histograms })
      (assoc_gen (int_bound 1000))
      (assoc_gen (map float_of_int (int_bound 100)))
      (assoc_gen (map Array.of_list (list_size (int_bound 6) (int_bound 5)))))

let snapshot_arb = QCheck.make ~print:Obs.Metrics.to_json snapshot_gen

let qcheck_merge_commutative =
  QCheck.Test.make ~name:"metrics merge is commutative" ~count:300
    (QCheck.pair snapshot_arb snapshot_arb) (fun (a, b) ->
      Obs.Metrics.snapshot_equal (Obs.Metrics.merge a b) (Obs.Metrics.merge b a))

let qcheck_merge_associative =
  QCheck.Test.make ~name:"metrics merge is associative" ~count:300
    (QCheck.triple snapshot_arb snapshot_arb snapshot_arb) (fun (a, b, c) ->
      Obs.Metrics.snapshot_equal
        (Obs.Metrics.merge a (Obs.Metrics.merge b c))
        (Obs.Metrics.merge (Obs.Metrics.merge a b) c))

(* {1 Units} *)

let test_disabled_is_inert () =
  Obs.Metrics.reset ();
  Obs.Metrics.incr "off.counter";
  Obs.Metrics.observe "off.histo" 3;
  let span = Obs.Span.enter "off" in
  Obs.Span.exit span;
  check_int "counter untouched" 0 (Obs.Metrics.counter_value "off.counter");
  check_int "no metric names" 0 (List.length (Obs.Metrics.names (Obs.Metrics.snapshot ())));
  check_bool "no sink" true (Obs.Trace.current () = None)

let test_fixed_clock () =
  Fun.protect ~finally:Obs.Clock.reset @@ fun () ->
  Obs.Clock.fixed ();
  Alcotest.(check (float 1e-12)) "starts at 0" 0.0 (Obs.Clock.now ());
  Alcotest.(check (float 1e-12)) "advances 1ms" 0.001 (Obs.Clock.now ());
  Obs.Clock.fixed ~start:2. ~step:0.5 ();
  Alcotest.(check (float 1e-12)) "restart" 2.0 (Obs.Clock.now ());
  Alcotest.(check (float 1e-12)) "custom step" 2.5 (Obs.Clock.now ())

let test_ring_overwrite () =
  let t = Obs.Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Obs.Trace.record t
      {
        Obs.Trace.phase = Obs.Trace.Instant;
        name = string_of_int i;
        ts = 0.;
        tid = 0;
        attrs = [];
      }
  done;
  check_int "length saturates" 4 (Obs.Trace.length t);
  check_int "dropped" 2 (Obs.Trace.dropped t);
  Alcotest.(check (list string))
    "oldest first, oldest dropped" [ "3"; "4"; "5"; "6" ]
    (List.map (fun e -> e.Obs.Trace.name) (Obs.Trace.events t));
  Obs.Trace.clear t;
  check_int "cleared" 0 (Obs.Trace.length t)

let test_span_error_attr () =
  let t = Obs.Trace.create () in
  Obs.Trace.with_sink t (fun () ->
      try Obs.Span.with_ "boom" (fun () -> failwith "kaput") with Failure _ -> ());
  match Obs.Export.tree_of_events (Obs.Trace.events t) with
  | [ node ] ->
      Alcotest.(check string) "span name" "boom" node.Obs.Export.name;
      check_bool "error attribute recorded" true
        (List.mem_assoc "error" node.Obs.Export.attrs)
  | forest -> Alcotest.failf "expected one root span, got %d" (List.length forest)

let test_with_sink_restores () =
  check_bool "disabled before" true (not (Obs.enabled ()));
  let t = Obs.Trace.create () in
  Obs.Trace.with_sink t (fun () ->
      check_bool "enabled inside" true (Obs.enabled ());
      check_bool "sink installed" true (Obs.Trace.current () = Some t));
  check_bool "disabled after" true (not (Obs.enabled ()));
  check_bool "sink removed" true (Obs.Trace.current () = None);
  (* Also restored when the body raises. *)
  (try Obs.Trace.with_sink t (fun () -> failwith "x") with Failure _ -> ());
  check_bool "disabled after exception" true (not (Obs.enabled ()))

(* {1 Domain safety} *)

let test_metrics_two_domain_stress () =
  Obs.Metrics.reset ();
  Obs.with_enabled @@ fun () ->
  let worker () =
    for _ = 1 to 10_000 do
      Obs.Metrics.incr "stress.counter";
      Obs.Metrics.observe "stress.histo" 8
    done;
    Obs.Metrics.snapshot ()
  in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  let s1 = Domain.join d1 and s2 = Domain.join d2 in
  (* Each worker owns a private DLS registry, so both see exactly their
     own 10k increments — no lost updates, no cross-talk. *)
  check_int "worker 1 exact" 10_000 (List.assoc "stress.counter" s1.Obs.Metrics.counters);
  check_int "worker 2 exact" 10_000 (List.assoc "stress.counter" s2.Obs.Metrics.counters);
  check_int "parent unaffected" 0 (Obs.Metrics.counter_value "stress.counter");
  Obs.Metrics.absorb s1;
  Obs.Metrics.absorb s2;
  check_int "absorbed total" 20_000 (Obs.Metrics.counter_value "stress.counter");
  let merged = Obs.Metrics.snapshot () in
  check_int "histogram bucket total" 20_000
    (Array.fold_left ( + ) 0 (List.assoc "stress.histo" merged.Obs.Metrics.histograms))

let test_trace_two_domain_stress () =
  let t = Obs.Trace.create ~capacity:16_384 () in
  Obs.Trace.with_sink t (fun () ->
      let worker () =
        for _ = 1 to 1_000 do
          let s = Obs.Span.enter "worker" in
          Obs.Span.exit s
        done
      in
      let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
      Domain.join d1;
      Domain.join d2);
  check_int "all events recorded" 4_000 (Obs.Trace.length t);
  check_int "nothing dropped" 0 (Obs.Trace.dropped t)

let test_autotune_traced () =
  let gemm = Tir.Kernels.find "gemm" in
  let m = Gpusim.Machine.gh200 in
  let baseline, _ =
    Tir.Autotune.best m ~mode:Tir.Engine.Linear ~build:gemm.Tir.Kernels.build ~size:512
  in
  Obs.Metrics.reset ();
  (* Both plan-cache levels are flushed so the worker domains' planners
     genuinely run: the baseline call above warmed the process-wide L2,
     which would otherwise serve every worker lookup metric-free. *)
  Codegen.Plan_cache.clear ();
  Codegen.Shared_cache.clear ();
  Codegen.Shared_cache.reset_stats ();
  let t = Obs.Trace.create () in
  let cfg, _ =
    Obs.Trace.with_sink t (fun () ->
        Tir.Autotune.best ~domains:2 m ~mode:Tir.Engine.Linear
          ~build:gemm.Tir.Kernels.build ~size:512)
  in
  check_int "same winner with 2 domains and tracing" baseline.Tir.Autotune.num_warps
    cfg.Tir.Autotune.num_warps;
  let names = List.map (fun e -> e.Obs.Trace.name) (Obs.Trace.events t) in
  check_bool "best span present" true (List.mem "autotune/best" names);
  check_int "one candidate span pair per config"
    (2 * List.length Tir.Autotune.default_configs)
    (List.length (List.filter (( = ) "autotune/candidate") names));
  (* Worker-domain planner metrics were absorbed into this domain. *)
  check_bool "planner counters absorbed from workers" true
    (List.exists
       (fun (k, v) ->
         String.length k >= 19 && String.sub k 0 19 = "codegen.conversion." && v > 0)
       (Obs.Metrics.snapshot ()).Obs.Metrics.counters)

let () =
  Alcotest.run "obs"
    (Shuffle_support.maybe_shuffle
       [
         ( "properties",
           List.map QCheck_alcotest.to_alcotest
             [ qcheck_roundtrip; qcheck_merge_commutative; qcheck_merge_associative ] );
         ( "units",
           [
             Alcotest.test_case "disabled layer is inert" `Quick test_disabled_is_inert;
             Alcotest.test_case "fixed clock" `Quick test_fixed_clock;
             Alcotest.test_case "ring overwrite" `Quick test_ring_overwrite;
             Alcotest.test_case "span error attribute" `Quick test_span_error_attr;
             Alcotest.test_case "with_sink restores state" `Quick test_with_sink_restores;
           ] );
         ( "domains",
           [
             Alcotest.test_case "metrics registry, 2-domain stress" `Quick
               test_metrics_two_domain_stress;
             Alcotest.test_case "trace ring, 2-domain stress" `Quick
               test_trace_two_domain_stress;
             Alcotest.test_case "autotune traced across domains" `Quick test_autotune_traced;
           ] );
       ])
