(* Fault injection for the translation validator (Analysis.Transval):
   mutate a proved artifact — flip one F2 matrix entry of the claimed
   destination layout, drop one ISA instruction, swap two shuffle
   rounds — and check the certifier's verdict against ground truth from
   the differential interpreter (a concrete run of the same program
   under Lower's load/store conventions).  Every refutation must come
   with a counterexample point that replays concretely; every proof
   must be confirmed by the concrete run. *)

open Linear_layout

let m = Gpusim.Machine.gh200
let check_bool = Alcotest.(check bool)

(* Nonzero everywhere, injective: an unwritten slot (0) never matches,
   and equal payloads imply equal logical elements. *)
let payload i = i + 1

let lower_plan plan = Codegen.Lower.conversion m plan

(* {1 The differential interpreter} *)

let diff_out ~src ~dst ~map program =
  let d = Gpusim.Dist.init src ~f:payload in
  let st = Codegen.Lower.load_state program map d in
  let (_ : Gpusim.Cost.t) = Gpusim.Isa.run m program st in
  Codegen.Lower.store_dist map ~dst st

let diff_correct ~src ~dst ~map program =
  match diff_out ~src ~dst ~map program with
  | out -> Gpusim.Dist.consistent_with out ~f:payload
  | exception Failure _ -> false

(* A refutation replays iff the concrete run really does produce the
   wrong element at the certifier's counterexample point. *)
let replays ~src ~dst ~map program (r : Analysis.Transval.refutation) =
  match diff_out ~src ~dst ~map program with
  | out ->
      let want = Layout.apply_flat (Layout.flatten_outs dst) r.Analysis.Transval.counterexample in
      out.Gpusim.Dist.data.(r.Analysis.Transval.counterexample) <> payload want
  | exception Failure _ -> true

(* The certifier is sound and complete against the differential
   interpreter on a (possibly mutated) artifact. *)
let verdict_matches_ground_truth ~src ~dst ~map program =
  match (Analysis.Transval.certify_isa ~src ~dst ~map program).Analysis.Transval.verdict with
  | Analysis.Transval.Proved -> diff_correct ~src ~dst ~map program
  | Analysis.Transval.Refuted r -> replays ~src ~dst ~map program r
  | Analysis.Transval.Failed _ -> (
      (* Symbolic execution only crashes where the concrete one does. *)
      match diff_out ~src ~dst ~map program with
      | (_ : Gpusim.Dist.t) -> false
      | exception Failure _ -> true)

(* {1 Fault kinds} *)

let drop_instr k (p : Gpusim.Isa.program) =
  { p with Gpusim.Isa.body = List.filteri (fun i _ -> i <> k) p.Gpusim.Isa.body }

let swap_shuffles (p : Gpusim.Isa.program) =
  let rounds =
    List.filteri
      (fun _ i -> match i with Gpusim.Isa.Shfl_idx _ -> true | _ -> false)
      p.Gpusim.Isa.body
  in
  match rounds with
  | a :: rest when rest <> [] ->
      let b = List.nth rest (List.length rest - 1) in
      Some
        {
          p with
          Gpusim.Isa.body =
            List.map
              (fun i -> if i == a then b else if i == b then a else i)
              p.Gpusim.Isa.body;
        }
  | _ -> None

(* Flip entry (row, col) of a layout's F2 matrix. *)
let flip_bit layout ~row ~col =
  let mat = Layout.to_matrix layout in
  let cols = F2.Bitmatrix.columns mat in
  let cols =
    Array.mapi (fun j c -> if j = col then F2.Bitvec.add c (F2.Bitvec.unit row) else c) cols
  in
  Layout.of_matrix ~ins:(Layout.in_dims layout) ~outs:(Layout.out_dims layout)
    (F2.Bitmatrix.make ~rows:(F2.Bitmatrix.rows mat) cols)

(* {1 Deterministic cases} *)

(* A pair whose conversion stages through shared memory (from
   test_analysis): warps tile rows on one side, columns on the other. *)
let smem_pair () =
  let shape = [| 32; 32 |] in
  let src = Blocked.default ~elems_per_thread:4 ~warp_size:32 ~num_warps:4 shape in
  let dst =
    Blocked.make
      {
        shape;
        size_per_thread = [| 4; 1 |];
        threads_per_warp = [| 8; 4 |];
        warps_per_cta = [| 1; 4 |];
        order = [| 0; 1 |];
      }
  in
  (src, dst)

let test_intact_proved () =
  let src, dst = smem_pair () in
  let plan = Codegen.Conversion.plan m ~src ~dst ~byte_width:4 in
  let program, map = lower_plan plan in
  let cert = Analysis.Transval.certify_isa ~src ~dst ~map program in
  check_bool "intact smem plan proved" true
    (cert.Analysis.Transval.verdict = Analysis.Transval.Proved);
  check_bool "diff interpreter agrees" true (diff_correct ~src ~dst ~map program);
  let cert = Analysis.Transval.certify_plan m plan in
  check_bool "certify_plan proves too" true
    (cert.Analysis.Transval.verdict = Analysis.Transval.Proved)

let test_dropped_store_refuted () =
  let src, dst = smem_pair () in
  let plan = Codegen.Conversion.plan m ~src ~dst ~byte_width:4 in
  let program, map = lower_plan plan in
  let k =
    (* Index of the first shared-memory store. *)
    let rec find i = function
      | Gpusim.Isa.St_shared _ :: _ -> i
      | _ :: rest -> find (i + 1) rest
      | [] -> Alcotest.fail "no St_shared in smem lowering"
    in
    find 0 program.Gpusim.Isa.body
  in
  let mutated = drop_instr k program in
  (match (Analysis.Transval.certify_isa ~src ~dst ~map mutated).Analysis.Transval.verdict with
  | Analysis.Transval.Refuted r ->
      check_bool "counterexample replays concretely" true
        (replays ~src ~dst ~map mutated r)
  | v ->
      Alcotest.failf "expected a refutation, got %s"
        (Analysis.Transval.verdict_name v))

let test_flipped_matrix_refuted () =
  let src, dst = smem_pair () in
  let plan = Codegen.Conversion.plan m ~src ~dst ~byte_width:4 in
  let program, map = lower_plan plan in
  (* The program implements src -> dst; claim it implements src -> dst'
     instead.  The flipped entry changes the flattened map at a basis
     point, so the claim must be refuted and the witness must replay
     against dst'. *)
  let dst' = flip_bit dst ~row:2 ~col:1 in
  (match (Analysis.Transval.certify_isa ~src ~dst:dst' ~map program).Analysis.Transval.verdict with
  | Analysis.Transval.Refuted r ->
      check_bool "counterexample replays concretely" true
        (replays ~src ~dst:dst' ~map program r)
  | v ->
      Alcotest.failf "expected a refutation, got %s"
        (Analysis.Transval.verdict_name v))

(* {1 Properties} *)

(* Random CTA-wide blocked pairs (as in test_analysis): same CTA shape
   on both sides, so every planned mechanism has a warp-level
   lowering. *)
let arb_cta_pair =
  let gen =
    QCheck.Gen.(
      let* size = oneofl [ 32; 64 ] in
      let layout_gen =
        let* spt1 = oneofl [ 1; 2; 4 ] in
        let* ord = oneofl [ [| 1; 0 |]; [| 0; 1 |] ] in
        let* wpc = oneofl [ [| 1; 4 |]; [| 4; 1 |]; [| 2; 2 |] ] in
        let spt = if ord.(0) = 1 then [| 1; spt1 |] else [| spt1; 1 |] in
        let tpw = if ord.(0) = 1 then [| 4; 8 |] else [| 8; 4 |] in
        return
          (Blocked.make
             {
               shape = [| size; size |];
               size_per_thread = spt;
               threads_per_warp = tpw;
               warps_per_cta = wpc;
               order = ord;
             })
      in
      let* a = layout_gen and* b = layout_gen in
      return (a, b))
  in
  QCheck.make gen ~print:(fun (a, b) -> Layout.to_string a ^ "\n->\n" ^ Layout.to_string b)

let plan_of (src, dst) = Codegen.Conversion.plan m ~src ~dst ~byte_width:4

let prop_intact_plans_prove =
  QCheck.Test.make ~name:"intact lowered plans are proved" ~count:60 arb_cta_pair
    (fun pair ->
      let src, dst = pair in
      let program, map = lower_plan (plan_of pair) in
      (Analysis.Transval.certify_isa ~src ~dst ~map program).Analysis.Transval.verdict
      = Analysis.Transval.Proved)

let prop_dropped_instr =
  QCheck.Test.make ~name:"dropped instruction: verdict matches differential interpreter"
    ~count:80
    QCheck.(pair arb_cta_pair (int_bound 1000))
    (fun (pair, seed) ->
      let src, dst = pair in
      let program, map = lower_plan (plan_of pair) in
      let n = List.length program.Gpusim.Isa.body in
      QCheck.assume (n > 0);
      verdict_matches_ground_truth ~src ~dst ~map (drop_instr (seed mod n) program))

let prop_swapped_rounds =
  QCheck.Test.make ~name:"swapped shuffle rounds: verdict matches differential interpreter"
    ~count:60 arb_cta_pair (fun pair ->
      let src, dst = pair in
      let program, map = lower_plan (plan_of pair) in
      match swap_shuffles program with
      | None -> QCheck.assume_fail ()
      | Some mutated -> verdict_matches_ground_truth ~src ~dst ~map mutated)

let prop_flipped_entry =
  QCheck.Test.make ~name:"flipped matrix entry: verdict matches differential interpreter"
    ~count:80
    QCheck.(pair arb_cta_pair (pair small_nat small_nat))
    (fun (pair, (r, c)) ->
      let src, dst = pair in
      let program, map = lower_plan (plan_of pair) in
      let row = r mod Layout.total_out_bits dst in
      let col = c mod Layout.total_in_bits dst in
      let dst' = flip_bit dst ~row ~col in
      (* The mutated claim names the same distribution space, so the
         certifier's symbolic route still applies; ground truth is the
         concrete run read back against the mutated claim. *)
      verdict_matches_ground_truth ~src ~dst:dst' ~map program)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "transval"
    [
      ( "deterministic",
        [
          Alcotest.test_case "intact plan proved" `Quick test_intact_proved;
          Alcotest.test_case "dropped store refuted + replay" `Quick
            test_dropped_store_refuted;
          Alcotest.test_case "flipped matrix refuted + replay" `Quick
            test_flipped_matrix_refuted;
        ] );
      ( "fault-injection",
        q [ prop_intact_plans_prove; prop_dropped_instr; prop_swapped_rounds; prop_flipped_entry ]
      );
    ]
