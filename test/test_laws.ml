(* Property tests for the algebraic laws of the layout algebra —
   the categorical structure Section 4.2 relies on. *)

open Linear_layout

(* Random small invertible layouts over a fixed labeled space, built
   from a random permutation of basis columns. *)
let gen_permutation_layout ~ins ~outs =
  QCheck.Gen.(
    let total = List.fold_left (fun a (_, b) -> a + b) 0 ins in
    let* perm =
      (* Fisher-Yates over [0..total-1] using generated swaps. *)
      let* swaps = list_repeat total (int_bound (total - 1)) in
      let a = Array.init total Fun.id in
      List.iteri
        (fun i j ->
          let t = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- t)
        swaps;
      return a
    in
    let cols = Array.map (fun p -> 1 lsl p) perm in
    return (Layout.of_matrix ~ins ~outs (F2.Bitmatrix.make ~rows:total cols)))

let space = [ (Dims.register, 2); (Dims.lane, 3); (Dims.warp, 1) ]
let out_space = [ (Dims.dim 0, 3); (Dims.dim 1, 3) ]

let arb_perm =
  QCheck.make (gen_permutation_layout ~ins:space ~outs:out_space) ~print:Layout.to_string

let arb_endo =
  (* hardware -> hardware permutations, composable on both sides *)
  QCheck.make (gen_permutation_layout ~ins:space ~outs:space) ~print:Layout.to_string

let prop_compose_assoc =
  QCheck.Test.make ~name:"compose is associative" ~count:200
    (QCheck.triple arb_perm arb_endo arb_endo)
    (fun (h, g, f) ->
      let left = Layout.compose (Layout.compose h g) f in
      let right = Layout.compose h (Layout.compose g f) in
      Layout.equal left right)

let prop_compose_identity =
  QCheck.Test.make ~name:"identity is neutral for compose" ~count:200 arb_endo (fun f ->
      let id =
        List.fold_left
          (fun acc (d, bits) -> Layout.mul acc (Layout.identity1d bits ~in_dim:d ~out_dim:d))
          Layout.empty space
      in
      Layout.equal (Layout.compose f id) f)

let prop_compose_matches_matrix_product =
  QCheck.Test.make ~name:"compose = matrix product (Def 4.2)" ~count:200
    (QCheck.pair arb_perm arb_endo)
    (fun (g, f) ->
      let c = Layout.compose g f in
      F2.Bitmatrix.equal (Layout.to_matrix c)
        (F2.Bitmatrix.mul (Layout.to_matrix g) (Layout.to_matrix f)))

let prop_mul_block_diagonal =
  (* Product of layouts on disjoint labels = block-diagonal matrix
     (Definition 4.3). *)
  QCheck.Test.make ~name:"product on disjoint labels is block diagonal" ~count:200
    (QCheck.make QCheck.Gen.(pair (int_range 1 3) (int_range 1 3)))
    (fun (ka, kb) ->
      let a = Layout.identity1d ka ~in_dim:Dims.register ~out_dim:(Dims.dim 1) in
      let b = Layout.identity1d kb ~in_dim:Dims.lane ~out_dim:(Dims.dim 0) in
      let prod = Layout.mul a b in
      (* dim1 (fastest) occupies the low rows; register the low cols. *)
      F2.Bitmatrix.equal (Layout.to_matrix prod)
        (F2.Bitmatrix.block_diag (Layout.to_matrix a) (Layout.to_matrix b)))

let prop_invert_unique =
  QCheck.Test.make ~name:"inverse inverts on both sides" ~count:200 arb_perm (fun l ->
      let li = Layout.invert l in
      F2.Bitmatrix.is_identity (Layout.to_matrix (Layout.compose li l))
      && F2.Bitmatrix.is_identity (Layout.to_matrix (Layout.compose l li)))

let prop_double_invert =
  QCheck.Test.make ~name:"invert is an involution" ~count:200 arb_perm (fun l ->
      Layout.equal (Layout.invert (Layout.invert l)) l)

let prop_flatten_reshape_roundtrip =
  QCheck.Test.make ~name:"reshape_outs (flatten_outs l) = l" ~count:200 arb_perm (fun l ->
      Layout.equal (Layout.reshape_outs (Layout.flatten_outs l) (Layout.out_dims l)) l)

let prop_exchange_involution =
  QCheck.Test.make ~name:"transposing twice is the identity" ~count:200 arb_perm (fun l ->
      let spec = [ (Dims.dim 0, Dims.dim 1); (Dims.dim 1, Dims.dim 0) ] in
      Layout.equal (Layout.exchange_out_names (Layout.exchange_out_names l spec) spec) l)

let prop_pseudo_invert_idempotent_projector =
  (* B o B^+ is a projector on the logical space: applying it twice
     equals applying it once. *)
  let arb = QCheck.make (gen_permutation_layout ~ins:space ~outs:out_space) in
  QCheck.Test.make ~name:"l o pseudo_invert l is a projector" ~count:200 arb (fun l ->
      (* Make it non-injective by forgetting a register bit. *)
      let l = Layout.resize_in l Dims.register 3 in
      let p = Layout.compose l (Layout.pseudo_invert l) in
      F2.Bitmatrix.equal
        (Layout.to_matrix (Layout.compose p p))
        (Layout.to_matrix p))

let prop_divide_left_recovers =
  QCheck.Test.make ~name:"(t x q) /l t = q (Def 4.4)" ~count:200
    (QCheck.make QCheck.Gen.(pair (int_range 1 2) (int_range 1 2)))
    (fun (kt, kq) ->
      let t = Layout.identity1d kt ~in_dim:Dims.register ~out_dim:Dims.offset in
      let q = Layout.identity1d kq ~in_dim:Dims.lane ~out_dim:Dims.offset in
      let l = Layout.mul t q in
      match Layout.divide_left l t with
      | Some q' -> Layout.equivalent q' q
      | None -> false)

let prop_slice_then_free_bits =
  (* Slicing away a dimension frees exactly the bits that mapped to it. *)
  QCheck.Test.make ~name:"slicing frees the removed dimension's bits" ~count:200 arb_perm
    (fun l ->
      let sliced = Sliced.make l ~dim:1 in
      let freed =
        Layout.free_variable_masks sliced
        |> List.fold_left (fun acc (_, m) -> acc + F2.Bitvec.popcount m) 0
      in
      freed = Layout.out_bits l (Dims.dim 1))

let prop_parse_roundtrip =
  QCheck.Test.make ~name:"Parse.of_string (Parse.to_string l) = l" ~count:200 arb_perm
    (fun l ->
      match Parse.of_string (Parse.to_string l) with
      | Ok l' -> Layout.equal l' l
      | Error _ -> false)

let prop_kernel_dimension =
  QCheck.Test.make ~name:"dim ker + rank = total in bits" ~count:200 arb_perm (fun l ->
      let l = Layout.resize_in l Dims.warp 3 (* add broadcast bits *) in
      let m = Layout.to_matrix l in
      List.length (Layout.kernel l) + F2.Bitmatrix.rank m = Layout.total_in_bits l)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "laws"
    [
      ( "category",
        q
          [
            prop_compose_assoc;
            prop_compose_identity;
            prop_compose_matches_matrix_product;
            prop_mul_block_diagonal;
          ] );
      ( "inverses",
        q
          [
            prop_invert_unique;
            prop_double_invert;
            prop_pseudo_invert_idempotent_projector;
            prop_divide_left_recovers;
          ] );
      ( "structure",
        q
          [
            prop_flatten_reshape_roundtrip;
            prop_exchange_involution;
            prop_slice_then_free_bits;
            prop_kernel_dimension;
            prop_parse_roundtrip;
          ] );
    ]
