(* Shape tests for the experiment reproductions: each table/figure must
   have the qualitative structure the paper reports (who wins, rough
   magnitudes, crossovers), independent of cost-model constants. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Silence the experiment printers during tests. *)
let quiet f =
  let dev_null = open_out (Filename.null) in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 (Unix.descr_of_out_channel dev_null) Unix.stdout;
  Fun.protect f ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      close_out dev_null)

let module_e = ()
let () = ignore module_e

let test_table1_matches_paper () =
  let rows = quiet Bench_support.Experiments.table1 in
  let expected =
    [
      ((0, 0), (0, 0, 0)); ((0, 1), (1, 0, 0)); ((0, 2), (0, 1, 0)); ((0, 3), (1, 1, 0));
      ((1, 0), (2, 0, 0)); ((1, 1), (3, 0, 0)); ((2, 2), (0, 9, 0)); ((2, 3), (1, 9, 0));
      ((3, 2), (2, 9, 0)); ((3, 3), (3, 9, 0));
    ]
  in
  List.iter2
    (fun (loc, v) (loc', v') ->
      if loc <> loc' || v <> v' then Alcotest.failf "row (%d,%d) mismatch" (fst loc) (snd loc))
    expected rows

let test_figure2_shape () =
  let rows = quiet Bench_support.Experiments.figure2 in
  check_bool "all speedups >= 1" true (List.for_all (fun (_, s) -> s >= 1.0) rows);
  let _, hi = Bench_support.Report.minmax (List.map snd rows) in
  check_bool "peak speedup in the paper's ballpark (>= 1.5x)" true (hi >= 1.5);
  check_bool "peak below 4x (sanity)" true (hi < 4.0)

let test_table3_shape () =
  let rows = quiet Bench_support.Experiments.table3 in
  List.iter
    (fun (label, _, _, legacy_bits, linear_bits) ->
      if linear_bits < legacy_bits then
        Alcotest.failf "%s: linear (%d) worse than legacy (%d)" label linear_bits legacy_bits)
    rows;
  (* The narrow-tensor rows are where linear wins. *)
  let gain =
    List.filter (fun (_, _, _, lb, tb) -> tb > lb) rows |> List.length
  in
  check_bool "several rows improve" true (gain >= 4);
  (* The [512,16] rows saturate at 128 bits on both sides. *)
  List.iter
    (fun (label, _, _, lb, tb) ->
      if String.length label >= 8 && String.sub label 0 8 = "[512,16]" then begin
        check_int (label ^ " legacy") 128 lb;
        check_int (label ^ " linear") 128 tb
      end)
    rows

let test_table4_support_matrix () =
  let rows = quiet Bench_support.Experiments.table4 in
  List.iter
    (fun (kind, legacy_pass, total, legacy_smem, linear_smem) ->
      let expected_fail =
        List.mem kind [ "MMA Input"; "Sliced<MMA>"; "Sliced<MMA Input>"; "Custom" ]
      in
      if expected_fail then check_int (kind ^ " legacy fails") 0 legacy_pass
      else check_int (kind ^ " legacy passes") total legacy_pass;
      (match legacy_smem with
      | Some l -> check_bool (kind ^ " linear uses fewer smem ops") true (linear_smem <= l)
      | None -> ());
      check_bool (kind ^ " linear smem positive") true (linear_smem > 0))
    rows

let test_table5_rates () =
  let rows = quiet Bench_support.Experiments.table5 in
  let lg, ln, total =
    List.fold_left (fun (a, b, c) (_, l, n, t) -> (a + l, b + n, c + t)) (0, 0, 0) rows
  in
  check_int "linear passes everything" total ln;
  let rate = float_of_int lg /. float_of_int total in
  check_bool
    (Printf.sprintf "legacy rate %.1f%% near the paper's 46.6%%" (rate *. 100.))
    true
    (rate > 0.30 && rate < 0.60);
  (* The pairs the paper reports as complete failures. *)
  List.iter
    (fun (pair, lg, _, _) ->
      if List.mem pair [ "i8/f16"; "i8/f32"; "i8/f64"; "i16/f8e4m3" ] then
        check_int (pair ^ " fails entirely") 0 lg)
    rows

let test_figure6_ordering () =
  let rows = quiet Bench_support.Experiments.figure6 in
  check_bool "all speedups >= 1" true (List.for_all (fun (_, s) -> s >= 1.0) rows);
  let series prefix =
    List.filter (fun (l, _) -> String.length l >= String.length prefix
                               && String.sub l 0 (String.length prefix) = prefix) rows
    |> List.map snd
  in
  let f16 = Bench_support.Report.geomean (series "mxfp4 x f16") in
  let bf16 = Bench_support.Report.geomean (series "mxfp4 x bf16") in
  check_bool
    (Printf.sprintf "f16 series (%.2f) highest, as in the paper (%.2f bf16)" f16 bf16)
    true (f16 > bf16)

let test_figure7_all_win () =
  let rows = quiet Bench_support.Experiments.figure7 in
  check_bool "nonempty" true (rows <> []);
  check_bool "warp shuffles always beat padded shared memory" true
    (List.for_all (fun (_, s) -> s > 1.0) rows)

let test_figure8_crossover () =
  let rows = quiet Bench_support.Experiments.figure8 in
  check_bool "at least 5 points" true (List.length rows >= 5);
  let first = snd (List.hd rows) in
  let last = snd (List.nth rows (List.length rows - 1)) in
  check_bool "large gain on small gather dims" true (first > 5.0);
  check_bool "declines below 1 for large gather dims" true (last < 1.0);
  (* Monotone decline. *)
  let rec decreasing = function
    | a :: b :: rest -> snd a >= snd b && decreasing (b :: rest)
    | _ -> true
  in
  check_bool "monotone decline" true (decreasing rows)

let test_figure9_ranges () =
  let cases = quiet Bench_support.Experiments.figure9 in
  check_bool "enough cases (>= 200)" true (List.length cases >= 200);
  List.iter
    (fun (machine, kernel, size, s) ->
      if s < 0.90 || s > 2.5 then
        Alcotest.failf "%s/%s@%d speedup %.2f outside sane range" machine kernel size s)
    cases;
  let geo machine =
    Bench_support.Report.geomean
      (List.filter_map (fun (m, _, _, s) -> if m = machine then Some s else None) cases)
  in
  List.iter
    (fun m ->
      let g = geo m in
      check_bool
        (Printf.sprintf "%s geomean %.2f in the paper's range" m g)
        true
        (g >= 1.0 && g <= 1.25))
    [ "RTX4090"; "GH200"; "MI250" ];
  (* GH200 (ldmatrix + stmatrix + wgmma) gains the most, as in the paper. *)
  check_bool "GH200 >= MI250" true (geo "GH200" >= geo "MI250")

let test_table6_distribution () =
  let rows = quiet Bench_support.Experiments.table6 in
  let find name = List.find (fun (n, _, _, _) -> n = name) rows in
  let _, l, s, c = find "gemm" in
  check_bool "gemm uses shared memory and conversions" true (l > 0 && s > 0 && c > 0);
  let _, l2, s2, c2 = find "vector_add" in
  check_int "vector_add local_load" 0 l2;
  check_int "vector_add local_store" 0 s2;
  check_int "vector_add convert" 0 c2;
  (* welford's conversions fold away in linear mode. *)
  let _, _, _, cw = find "welford" in
  let _, _, _, ca = find "template_attention" in
  check_bool "attention converts more than welford" true (ca > cw)

let test_ablation_optimal_wins () =
  let rows = quiet Bench_support.Experiments.ablation_swizzle in
  (* Group by workload: the optimal strategy must have the minimum
     wavefronts in each group. *)
  let workloads =
    List.sort_uniq compare
      (List.map (fun (l, _) -> List.hd (String.split_on_char '/' l)) rows)
  in
  List.iter
    (fun w ->
      let group = List.filter (fun (l, _) -> List.hd (String.split_on_char '/' l) = w) rows in
      let opt =
        List.find
          (fun (l, _) ->
            String.length l >= 8 && String.sub l (String.length l - 8) 8 = "Sec 5.4)")
          group
      in
      List.iter
        (fun (l, v) ->
          if v < snd opt then Alcotest.failf "%s beats optimal (%f < %f)" l v (snd opt))
        group)
    workloads

let () =
  Alcotest.run "experiments"
    [
      ( "tables",
        [
          Alcotest.test_case "table 1 matches paper" `Quick test_table1_matches_paper;
          Alcotest.test_case "table 3 shape" `Quick test_table3_shape;
          Alcotest.test_case "table 4 support matrix" `Quick test_table4_support_matrix;
          Alcotest.test_case "table 5 pass rates" `Quick test_table5_rates;
          Alcotest.test_case "table 6 distribution" `Quick test_table6_distribution;
        ] );
      ( "figures",
        [
          Alcotest.test_case "figure 2 shape" `Quick test_figure2_shape;
          Alcotest.test_case "figure 6 ordering" `Quick test_figure6_ordering;
          Alcotest.test_case "figure 7 all win" `Quick test_figure7_all_win;
          Alcotest.test_case "figure 8 crossover" `Quick test_figure8_crossover;
          Alcotest.test_case "figure 9 ranges" `Quick test_figure9_ranges;
        ] );
      ( "ablations",
        [ Alcotest.test_case "optimal swizzle wins" `Quick test_ablation_optimal_wins ] );
    ]
