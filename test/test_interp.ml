(* End-to-end functional tests: every kernel evaluated through the
   layouts the engine assigns must agree exactly with the plain
   reference evaluator. *)

open Tir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let m = Gpusim.Machine.gh200

let agree ?(machine = m) name prog =
  let inputs = Interp.synth_inputs prog in
  let ref_outs = Interp.reference prog ~inputs in
  let lay_outs = Interp.through_layouts machine prog ~inputs in
  if List.length ref_outs <> List.length lay_outs then
    Alcotest.failf "%s: different number of outputs" name;
  List.iter2
    (fun (i, r) (j, l) ->
      if i <> j then Alcotest.failf "%s: output order differs" name;
      let d = Tensor_lib.Tensor.max_abs_diff r l in
      if d <> 0. then Alcotest.failf "%s: output %%%d differs by %g" name i d)
    ref_outs lay_outs

let test_simple_pipeline () =
  let p = Program.create () in
  let x = Program.load p ~name:"x" ~shape:[| 32; 64 |] ~dtype:Tensor_lib.Dtype.F32 () in
  let y = Program.elementwise p ~name:"exp" [ x ] in
  let s = Program.reduce p y ~axis:1 in
  let sb = Program.broadcast p (Program.expand_dims p s ~axis:1) ~shape:[| 32; 64 |] in
  let z = Program.elementwise p ~name:"div" [ y; sb ] in
  ignore (Program.store p z);
  agree "softmax-like" p

let test_dot_through_tensor_cores () =
  let p = Program.create () in
  let a = Program.load p ~name:"a" ~shape:[| 64; 64 |] ~dtype:Tensor_lib.Dtype.F16 () in
  let b = Program.load p ~name:"b" ~shape:[| 64; 64 |] ~dtype:Tensor_lib.Dtype.F16 () in
  let d = Program.dot p ~a ~b ~acc:Tensor_lib.Dtype.F32 in
  ignore (Program.store p d);
  (* The layout path must actually take the tensor-core route. *)
  ignore (Engine.run m ~mode:Engine.Linear p);
  let la = Option.get (Program.instr p a).Program.layout in
  check_bool "operand got an mma layout" true
    (Linear_layout.Layout.in_size la Linear_layout.Dims.warp > 1
    || Linear_layout.Layout.free_variable_masks la <> []);
  agree "dot" p

let test_small_dot_fallback () =
  let p = Program.create () in
  let a = Program.load p ~name:"a" ~shape:[| 16; 16 |] ~dtype:Tensor_lib.Dtype.F8E4M3 () in
  let b = Program.load p ~name:"b" ~shape:[| 16; 16 |] ~dtype:Tensor_lib.Dtype.F8E4M3 () in
  let d = Program.dot p ~a ~b ~acc:Tensor_lib.Dtype.F32 in
  ignore (Program.store p d);
  agree "small dot (blocked fallback)" p

let test_gather_through_layouts () =
  let p = Program.create () in
  let src = Program.load p ~name:"t" ~shape:[| 16; 2048 |] ~dtype:Tensor_lib.Dtype.F16 () in
  let idx = Program.load p ~name:"i" ~shape:[| 16; 2048 |] ~dtype:Tensor_lib.Dtype.I32 () in
  let g = Program.gather p ~src ~index:idx ~axis:0 in
  ignore (Program.store p g);
  agree "gather" p

let test_scan_and_shapes () =
  let p = Program.create () in
  let x = Program.load p ~name:"x" ~shape:[| 16; 64 |] ~dtype:Tensor_lib.Dtype.F32 () in
  let t = Program.trans p x ~perm:[| 1; 0 |] in
  let r = Program.reshape p t ~shape:[| 32; 32 |] in
  let s = Program.scan p r ~axis:1 ~reverse:true in
  let j = Program.join p ~a:s ~b:s in
  let h = Program.split p j ~half:1 in
  ignore (Program.store p h);
  agree "shape ops + reverse scan" p

let test_all_kernels_agree () =
  List.iter
    (fun k ->
      let prog = k.Kernels.build ~size:(List.hd k.Kernels.sizes) in
      agree k.Kernels.name prog)
    Kernels.all

let test_kernels_agree_on_intel () =
  (* 16-lane subgroups and XMX accumulators: functional results are
     unchanged — the out-of-tree backend case. *)
  List.iter
    (fun name ->
      let k = Kernels.find name in
      agree ~machine:Gpusim.Machine.pvc name (k.Kernels.build ~size:(List.hd k.Kernels.sizes)))
    [ "gemm"; "softmax"; "welford" ]

let test_kernels_agree_on_amd () =
  (* 64-lane warps: same functional results. *)
  List.iter
    (fun name ->
      let k = Kernels.find name in
      agree ~machine:Gpusim.Machine.mi250 name (k.Kernels.build ~size:(List.hd k.Kernels.sizes)))
    [ "gemm"; "softmax"; "welford"; "embedding" ]

let test_missing_input_fails () =
  let p = Program.create () in
  let x = Program.load p ~name:"x" ~shape:[| 4; 4 |] ~dtype:Tensor_lib.Dtype.F32 () in
  ignore (Program.store p x);
  match Interp.reference p ~inputs:[] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "missing input must fail"

let test_outputs_count () =
  let k = Kernels.find "grouped_gemm" in
  let prog = k.Kernels.build ~size:512 in
  let outs = Interp.reference prog ~inputs:(Interp.synth_inputs prog) in
  check_int "two stores" 2 (List.length outs)

let () =
  Alcotest.run "interp"
    [
      ( "units",
        [
          Alcotest.test_case "softmax-like pipeline" `Quick test_simple_pipeline;
          Alcotest.test_case "dot via tensor cores" `Quick test_dot_through_tensor_cores;
          Alcotest.test_case "small dot fallback" `Quick test_small_dot_fallback;
          Alcotest.test_case "gather" `Quick test_gather_through_layouts;
          Alcotest.test_case "shape ops + reverse scan" `Quick test_scan_and_shapes;
          Alcotest.test_case "missing input fails" `Quick test_missing_input_fails;
          Alcotest.test_case "outputs count" `Quick test_outputs_count;
        ] );
      ( "kernel suite",
        [
          Alcotest.test_case "all kernels agree (GH200)" `Quick test_all_kernels_agree;
          Alcotest.test_case "kernels agree on MI250" `Quick test_kernels_agree_on_amd;
          Alcotest.test_case "kernels agree on PVC (Intel)" `Quick test_kernels_agree_on_intel;
        ] );
    ]
