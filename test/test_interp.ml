(* End-to-end functional tests: every kernel evaluated through the
   layouts the engine assigns must agree exactly with the plain
   reference evaluator. *)

open Tir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let m = Gpusim.Machine.gh200

let agree ?(machine = m) name prog =
  let inputs = Interp.synth_inputs prog in
  let ref_outs = Interp.reference prog ~inputs in
  let lay_outs = Interp.through_layouts machine prog ~inputs in
  if List.length ref_outs <> List.length lay_outs then
    Alcotest.failf "%s: different number of outputs" name;
  List.iter2
    (fun (i, r) (j, l) ->
      if i <> j then Alcotest.failf "%s: output order differs" name;
      let d = Tensor_lib.Tensor.max_abs_diff r l in
      if d <> 0. then Alcotest.failf "%s: output %%%d differs by %g" name i d)
    ref_outs lay_outs

let test_simple_pipeline () =
  let p = Program.create () in
  let x = Program.load p ~name:"x" ~shape:[| 32; 64 |] ~dtype:Tensor_lib.Dtype.F32 () in
  let y = Program.elementwise p ~name:"exp" [ x ] in
  let s = Program.reduce p y ~axis:1 in
  let sb = Program.broadcast p (Program.expand_dims p s ~axis:1) ~shape:[| 32; 64 |] in
  let z = Program.elementwise p ~name:"div" [ y; sb ] in
  ignore (Program.store p z);
  agree "softmax-like" p

let test_dot_through_tensor_cores () =
  let p = Program.create () in
  let a = Program.load p ~name:"a" ~shape:[| 64; 64 |] ~dtype:Tensor_lib.Dtype.F16 () in
  let b = Program.load p ~name:"b" ~shape:[| 64; 64 |] ~dtype:Tensor_lib.Dtype.F16 () in
  let d = Program.dot p ~a ~b ~acc:Tensor_lib.Dtype.F32 in
  ignore (Program.store p d);
  (* The layout path must actually take the tensor-core route. *)
  ignore (Engine.run m ~mode:Engine.Linear p);
  let la = Option.get (Program.instr p a).Program.layout in
  check_bool "operand got an mma layout" true
    (Linear_layout.Layout.in_size la Linear_layout.Dims.warp > 1
    || Linear_layout.Layout.free_variable_masks la <> []);
  agree "dot" p

let test_small_dot_fallback () =
  let p = Program.create () in
  let a = Program.load p ~name:"a" ~shape:[| 16; 16 |] ~dtype:Tensor_lib.Dtype.F8E4M3 () in
  let b = Program.load p ~name:"b" ~shape:[| 16; 16 |] ~dtype:Tensor_lib.Dtype.F8E4M3 () in
  let d = Program.dot p ~a ~b ~acc:Tensor_lib.Dtype.F32 in
  ignore (Program.store p d);
  agree "small dot (blocked fallback)" p

let test_gather_through_layouts () =
  let p = Program.create () in
  let src = Program.load p ~name:"t" ~shape:[| 16; 2048 |] ~dtype:Tensor_lib.Dtype.F16 () in
  let idx = Program.load p ~name:"i" ~shape:[| 16; 2048 |] ~dtype:Tensor_lib.Dtype.I32 () in
  let g = Program.gather p ~src ~index:idx ~axis:0 in
  ignore (Program.store p g);
  agree "gather" p

let test_scan_and_shapes () =
  let p = Program.create () in
  let x = Program.load p ~name:"x" ~shape:[| 16; 64 |] ~dtype:Tensor_lib.Dtype.F32 () in
  let t = Program.trans p x ~perm:[| 1; 0 |] in
  let r = Program.reshape p t ~shape:[| 32; 32 |] in
  let s = Program.scan p r ~axis:1 ~reverse:true in
  let j = Program.join p ~a:s ~b:s in
  let h = Program.split p j ~half:1 in
  ignore (Program.store p h);
  agree "shape ops + reverse scan" p

let test_all_kernels_agree () =
  List.iter
    (fun k ->
      let prog = k.Kernels.build ~size:(List.hd k.Kernels.sizes) in
      agree k.Kernels.name prog)
    Kernels.all

let test_kernels_agree_on_intel () =
  (* 16-lane subgroups and XMX accumulators: functional results are
     unchanged — the out-of-tree backend case. *)
  List.iter
    (fun name ->
      let k = Kernels.find name in
      agree ~machine:Gpusim.Machine.pvc name (k.Kernels.build ~size:(List.hd k.Kernels.sizes)))
    [ "gemm"; "softmax"; "welford" ]

let test_kernels_agree_on_amd () =
  (* 64-lane warps: same functional results. *)
  List.iter
    (fun name ->
      let k = Kernels.find name in
      agree ~machine:Gpusim.Machine.mi250 name (k.Kernels.build ~size:(List.hd k.Kernels.sizes)))
    [ "gemm"; "softmax"; "welford"; "embedding" ]

(* {1 Randomized differential fuzzing}

   Random programs mixing elementwise chains, the reduce/broadcast
   motif, gathers and tensor-core dots; each is checked for exact
   agreement between the reference and the layout evaluator.  The seed
   is printed on every run and can be re-injected with
   [INTERP_FUZZ_SEED=N] to replay a failure. *)

let fuzz_seed =
  match Sys.getenv_opt "INTERP_FUZZ_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None -> failwith (Printf.sprintf "INTERP_FUZZ_SEED=%S is not an integer" s))
  | None ->
      Random.self_init ();
      Random.bits ()

let fuzz_program st =
  let p = Program.create () in
  let shape = [| 32; 32 |] in
  let counter = ref 0 in
  let fresh pfx =
    incr counter;
    Printf.sprintf "%s%d" pfx !counter
  in
  let load ~dtype pfx = Program.load p ~name:(fresh pfx) ~shape ~dtype () in
  let pool = ref [ load ~dtype:Tensor_lib.Dtype.F32 "x"; load ~dtype:Tensor_lib.Dtype.F32 "x" ] in
  let pick () = List.nth !pool (Random.State.int st (List.length !pool)) in
  let push id = pool := id :: !pool in
  let unary = [| "exp"; "log"; "relu" |] in
  let binary = [| "add"; "sub"; "mul"; "div" |] in
  let steps = 4 + Random.State.int st 5 in
  for _ = 1 to steps do
    match Random.State.int st 5 with
    | 0 -> push (Program.elementwise p ~name:unary.(Random.State.int st 3) [ pick () ])
    | 1 ->
        push (Program.elementwise p ~name:binary.(Random.State.int st 4) [ pick (); pick () ])
    | 2 ->
        (* reduce -> expand -> broadcast -> combine: the softmax motif. *)
        let axis = Random.State.int st 2 in
        let r = Program.reduce p (pick ()) ~axis in
        let b = Program.broadcast p (Program.expand_dims p r ~axis) ~shape in
        push (Program.elementwise p ~name:"div" [ pick (); b ])
    | 3 ->
        (* synth_inputs caps integer loads at 15, in bounds on both axes. *)
        let idx = load ~dtype:Tensor_lib.Dtype.I32 "idx" in
        push (Program.gather p ~src:(pick ()) ~index:idx ~axis:(Random.State.int st 2))
    | _ ->
        let a = load ~dtype:Tensor_lib.Dtype.F16 "a" in
        let b = load ~dtype:Tensor_lib.Dtype.F16 "b" in
        push (Program.dot p ~a ~b ~acc:Tensor_lib.Dtype.F32)
  done;
  ignore (Program.store p (pick ()));
  p

let test_fuzz_differential () =
  Printf.printf "interp fuzz seed: %d (replay with INTERP_FUZZ_SEED=%d)\n%!" fuzz_seed
    fuzz_seed;
  let st = Random.State.make [| fuzz_seed |] in
  for i = 1 to 12 do
    let p = fuzz_program st in
    try agree (Printf.sprintf "fuzz#%d" i) p
    with e ->
      Alcotest.failf "fuzz program %d failed (replay with INTERP_FUZZ_SEED=%d): %s" i
        fuzz_seed (Printexc.to_string e)
  done

let test_missing_input_fails () =
  let p = Program.create () in
  let x = Program.load p ~name:"x" ~shape:[| 4; 4 |] ~dtype:Tensor_lib.Dtype.F32 () in
  ignore (Program.store p x);
  match Interp.reference p ~inputs:[] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "missing input must fail"

let test_outputs_count () =
  let k = Kernels.find "grouped_gemm" in
  let prog = k.Kernels.build ~size:512 in
  let outs = Interp.reference prog ~inputs:(Interp.synth_inputs prog) in
  check_int "two stores" 2 (List.length outs)

let () =
  Alcotest.run "interp"
    (Shuffle_support.maybe_shuffle
       [
         ( "units",
           [
             Alcotest.test_case "softmax-like pipeline" `Quick test_simple_pipeline;
             Alcotest.test_case "dot via tensor cores" `Quick test_dot_through_tensor_cores;
             Alcotest.test_case "small dot fallback" `Quick test_small_dot_fallback;
             Alcotest.test_case "gather" `Quick test_gather_through_layouts;
             Alcotest.test_case "shape ops + reverse scan" `Quick test_scan_and_shapes;
             Alcotest.test_case "missing input fails" `Quick test_missing_input_fails;
             Alcotest.test_case "outputs count" `Quick test_outputs_count;
           ] );
         ( "fuzz",
           [ Alcotest.test_case "randomized differential programs" `Quick test_fuzz_differential ] );
         ( "kernel suite",
           [
             Alcotest.test_case "all kernels agree (GH200)" `Quick test_all_kernels_agree;
             Alcotest.test_case "kernels agree on MI250" `Quick test_kernels_agree_on_amd;
             Alcotest.test_case "kernels agree on PVC (Intel)" `Quick test_kernels_agree_on_intel;
           ] );
       ])
