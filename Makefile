.PHONY: all test bench examples clean outputs

all:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

examples:
	@for e in quickstart transpose_kernel mixed_precision conversion_explorer \
	          attention_engine layout_gallery reduction_codegen; do \
	  echo "== $$e =="; dune exec examples/$$e.exe; done

outputs:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

clean:
	dune clean
