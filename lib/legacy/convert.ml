open Linear_layout

let padded_offset ~cols ~pad i j = (i * (cols + pad)) + j
(* Pad by one maximal vector (16 bytes) so row starts stay aligned for
   vectorized accesses while successive rows shift banks. *)
let default_pad ~byte_width = max 1 (16 / byte_width)

let measure machine ~dist ~addr_of ~byte_width =
  let flat = Layout.flatten_outs dist in
  let reg_bits = Layout.in_bits dist Dims.register in
  let lane_bits = Layout.in_bits dist Dims.lane in
  let regs = 1 lsl reg_bits and lanes = 1 lsl lane_bits in
  let addr lane r = addr_of (Layout.apply_flat flat (r lor (lane lsl reg_bits))) in
  let max_vec_elems =
    min regs (max 1 (machine.Gpusim.Machine.max_vec_bits / (8 * byte_width)))
  in
  let legal v =
    let ok = ref true in
    for lane = 0 to lanes - 1 do
      let r = ref 0 in
      while !r < regs do
        let base = addr lane !r in
        if base * byte_width mod (v * byte_width) <> 0 then ok := false;
        for i = 1 to v - 1 do
          if addr lane (!r + i) <> base + i then ok := false
        done;
        r := !r + v
      done
    done;
    !ok
  in
  let rec find_vec v = if v = 1 || legal v then v else find_vec (v / 2) in
  let vec = find_vec max_vec_elems in
  let insts = regs / vec in
  let total = ref 0 in
  for g = 0 to insts - 1 do
    let accesses =
      List.init lanes (fun lane ->
          { Gpusim.Banks.addr = addr lane (g * vec) * byte_width; bytes = vec * byte_width })
    in
    total := !total + Gpusim.Banks.wavefronts machine accesses
  done;
  (!total, insts, vec)

(* Output dims are canonically ordered fastest-first, so the head is the
   column (fastest) dimension and the rest are rows. *)
let rows_cols l =
  match Layout.out_dims l with
  | [] -> (1, 1)
  | (_, cols_bits) :: rest ->
      (1 lsl List.fold_left (fun acc (_, b) -> acc + b) 0 rest, 1 lsl cols_bits)

let addr_fn ~src ~byte_width =
  let _, cols = rows_cols src in
  let pad = default_pad ~byte_width in
  fun logical ->
    let j = logical land (cols - 1) and i = logical / cols in
    padded_offset ~cols ~pad i j

let cost machine ~src ~dst ~byte_width =
  let addr_of = addr_fn ~src ~byte_width in
  let st_wf, st_insts, _ = measure machine ~dist:src ~addr_of ~byte_width in
  let ld_wf, ld_insts, _ = measure machine ~dist:dst ~addr_of ~byte_width in
  let warps l = 1 lsl Layout.in_bits l Dims.warp in
  let c = Gpusim.Cost.zero () in
  c.Gpusim.Cost.smem_insts <- (st_insts * warps src) + (ld_insts * warps dst);
  c.Gpusim.Cost.smem_wavefronts <- (st_wf * warps src) + (ld_wf * warps dst);
  c.Gpusim.Cost.barriers <- 1;
  c.Gpusim.Cost.alu <- 2 * ((st_insts * warps src) + (ld_insts * warps dst));
  c

let store_only_cost machine ~src ~dst ~byte_width =
  ignore dst;
  let addr_of = addr_fn ~src ~byte_width in
  let st_wf, st_insts, _ = measure machine ~dist:src ~addr_of ~byte_width in
  let warps = 1 lsl Layout.in_bits src Dims.warp in
  let c = Gpusim.Cost.zero () in
  c.Gpusim.Cost.smem_insts <- st_insts * warps;
  c.Gpusim.Cost.smem_wavefronts <- st_wf * warps;
  c.Gpusim.Cost.barriers <- 1;
  c.Gpusim.Cost.alu <- 2 * st_insts * warps;
  c

let scratch_bytes ~src ~byte_width =
  let rows, cols = rows_cols src in
  rows * (cols + default_pad ~byte_width) * byte_width
