(** Legacy layout conversion: always a shared-memory round trip with the
    row-padding heuristic (the baseline of Figures 2 and 7).

    Legacy Triton does not swizzle generic conversions; instead it pads
    each row of the scratch buffer by a small number of elements so that
    column-wise accesses spread across banks.  Padding is not a linear
    map, so the addresses here are computed directly. *)

open Linear_layout

(** [padded_offset ~cols ~pad i j] is the element offset of coordinate
    [(i, j)] in a scratch buffer whose rows are padded by [pad]
    elements. *)
val padded_offset : cols:int -> pad:int -> int -> int -> int

(** Default padding in elements for a given element width: enough to
    shift successive rows to different banks (4 bytes / width, at least
    1). *)
val default_pad : byte_width:int -> int

(** [measure machine ~dist ~addr_of ~byte_width] brute-forces one warp's
    access cost against an arbitrary element-offset function: finds the
    widest legal vectorization (consecutive registers mapping to
    consecutive addresses, uniformly across lanes), then counts
    wavefronts per instruction.  Returns
    [(wavefronts, instructions, vec_elems)]. *)
val measure :
  Gpusim.Machine.t ->
  dist:Layout.t ->
  addr_of:(int -> int) ->
  byte_width:int ->
  int * int * int

(** Cost of a full legacy conversion (store with padding, barrier,
    load), accumulated over all warps. *)
val cost : Gpusim.Machine.t -> src:Layout.t -> dst:Layout.t -> byte_width:int -> Gpusim.Cost.t

(** Store-only variant, for operands a compute instruction reads
    directly from shared memory (wgmma). *)
val store_only_cost :
  Gpusim.Machine.t -> src:Layout.t -> dst:Layout.t -> byte_width:int -> Gpusim.Cost.t

(** Scratch bytes used, including padding (the paper's Figure 2 kernel
    trades this against bank conflicts). *)
val scratch_bytes : src:Layout.t -> byte_width:int -> int
