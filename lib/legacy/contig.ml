open Linear_layout

let max_contiguous (p : Blocked.params) =
  let fastest = p.order.(0) in
  if p.shape.(fastest) > 1 || Array.length p.order < 2 then
    min p.size_per_thread.(fastest) p.shape.(fastest)
  else
    (* A size-1 fastest dimension: legacy Triton degenerates to the next
       dimension in the order, treating the tensor as 1-D. *)
    let next = p.order.(1) in
    min p.size_per_thread.(next) p.shape.(next)

let vector_bits p ~byte_width ~max_bits = min (max_contiguous p * byte_width * 8) max_bits
