type layout_kind =
  | Blocked
  | Mma
  | Mma_input
  | Sliced_blocked
  | Sliced_mma
  | Sliced_mma_input
  | Custom

let all_kinds = [ Blocked; Mma; Mma_input; Sliced_blocked; Sliced_mma; Sliced_mma_input; Custom ]

let kind_name = function
  | Blocked -> "Blocked"
  | Mma -> "MMA"
  | Mma_input -> "MMA Input"
  | Sliced_blocked -> "Sliced<Blocked>"
  | Sliced_mma -> "Sliced<MMA>"
  | Sliced_mma_input -> "Sliced<MMA Input>"
  | Custom -> "Custom"

let supports_reduction = function
  | Blocked | Mma | Sliced_blocked -> true
  | Mma_input | Sliced_mma | Sliced_mma_input | Custom -> false

let supports_dot ~a ~b ~m ~n ~k =
  let ba = Tensor_lib.Dtype.bits a and bb = Tensor_lib.Dtype.bits b in
  let bmin = min ba bb and bmax = max ba bb in
  (* The lower-precision operand's mma tile packs [32 / bmin]
     consecutive elements into one 32-bit register; dimensions smaller
     than the packed tile would need >32-bit runs, which legacy layouts
     cannot express. *)
  let packed = max 1 (32 / bmin) in
  let tile_m = 16 and tile_n = 8 in
  let fits = m >= tile_m && n >= max tile_n (packed * 2) && k >= packed * 8 in
  (* Software upcasts below 16 bits on only one operand need scale/value
     re-layouts legacy cannot build at all; mixed 16-bit pairs compute
     in the packed mma path and only survive when the reduction and
     column dimensions hold full packed tiles. *)
  let upcast_ok = bmin >= 16 || ba = bb in
  let mixed_16 = a <> b && bmax <= 16 in
  fits && upcast_ok && ((not mixed_16) || (k >= packed * 32 && n >= 32))

let can_compare a b = a = b
