open Linear_layout

type t =
  | Blocked of Linear_layout.Blocked.params
  | Mma of { warps : int array; shape : int array }
  | Mma_operand of { idx : int; bitwidth : int; warps : int array; shape : int array }
  | Sliced of { parent : t; dim : int }

let rec to_linear = function
  | Blocked p -> Linear_layout.Blocked.make p
  | Mma { warps; shape } -> Mma.output ~bitwidth:32 ~warps ~shape ()
  | Mma_operand { idx; bitwidth; warps; shape } -> Mma.operand ~idx ~bitwidth ~warps ~shape ()
  | Sliced { parent; dim } -> Sliced.make (to_linear parent) ~dim

let rec kind = function
  | Blocked _ -> Support.Blocked
  | Mma _ -> Support.Mma
  | Mma_operand _ -> Support.Mma_input
  | Sliced { parent; dim = _ } -> (
      match kind parent with
      | Support.Blocked -> Support.Sliced_blocked
      | Support.Mma -> Support.Sliced_mma
      | Support.Mma_input -> Support.Sliced_mma_input
      | k -> k)

(* {1 Per-kind interface methods, hand-written the legacy way} *)

let ceil_div a b = (a + b - 1) / b

let rec elems_per_thread = function
  | Blocked p ->
      (* size_per_thread times the replication needed to cover the
         tensor — the formula each legacy layout duplicated. *)
      let per_dim d =
        let tile = p.size_per_thread.(d) * p.threads_per_warp.(d) * p.warps_per_cta.(d) in
        p.size_per_thread.(d) * ceil_div p.shape.(d) tile
      in
      Some (Array.to_list (Array.mapi (fun d _ -> per_dim d) p.shape) |> List.fold_left ( * ) 1)
  | Mma { warps; shape } ->
      (* 4 accumulators per m16n8 tile, times tile replication. *)
      let reps0 = ceil_div shape.(0) (16 * warps.(0)) in
      let reps1 = ceil_div shape.(1) (8 * warps.(1)) in
      Some (4 * reps0 * reps1)
  | Mma_operand _ ->
      (* Legacy had no general rule here (small shapes and low-precision
         operand tiling were the Table 5 failures). *)
      None
  | Sliced { parent; dim = _ } -> (
      match parent with
      | Blocked p -> (
          match elems_per_thread (Blocked p) with
          | Some n -> Some (max 1 (n / p.size_per_thread.(1)))
          | None -> None)
      | _ -> None)

let contig_per_thread = function
  | Blocked p -> Some (Contig.max_contiguous p)
  | Mma _ -> Some 2 (* accumulator pairs *)
  | Mma_operand _ | Sliced _ -> None

let supports_reduce l = Support.supports_reduction (kind l)

let conversion_supported a b =
  (* The hand-written conversion matrix: blocked <-> blocked and
     blocked <-> mma existed; everything touching operand or sliced
     layouts did not. *)
  match (a, b) with
  | Blocked _, Blocked _ -> true
  | Blocked _, Mma _ | Mma _, Blocked _ -> true
  | Mma _, Mma _ -> true
  | Blocked _, Mma_operand _ -> true (* via shared memory staging *)
  | _ -> false
