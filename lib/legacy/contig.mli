(** The legacy contiguity heuristic (Section 5.1, Table 3).

    Legacy Triton identifies contiguous elements per thread by looking
    only at the fastest-running dimension: a thread holding a
    [r x c] sub-tile of a row-major tensor is assumed to have [c]
    contiguous elements even when the whole [r x c] tile is contiguous
    in memory (tensors whose rows are narrower than the per-thread
    tile).  Linear layouts compute the true run with
    {!Linear_layout.Layout.num_consecutive}. *)

(** [max_contiguous params] under the legacy rule: the per-thread
    element count along the order's fastest dimension, except that a
    size-1 fastest dimension falls back to treating the tensor as 1-D
    over the next dimension. *)
val max_contiguous : Linear_layout.Blocked.params -> int

(** Vectorized access width in bits under the legacy rule, capped at
    [max_bits]. *)
val vector_bits : Linear_layout.Blocked.params -> byte_width:int -> max_bits:int -> int
