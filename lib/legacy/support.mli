(** The legacy layout system's feature-support matrix.

    Each entry models a limitation the paper documents and measures:

    - reductions over MMA-input and sliced-MMA layouts were unsupported
      because the legacy system could not enumerate duplicated threads
      generically (Table 4);
    - matrix multiplications on small shapes with low-precision types
      were rejected because "Triton does not support any MMA layouts
      with more than 32-bit consecutive elements in the last dimension
      of the tile" (Table 5, §6.1);
    - custom (user-defined permutation) layouts could not be expressed
      at all;
    - layouts of different kinds could not be compared, so equivalent
      layouts were still converted through shared memory (the welford
      case, §6.2). *)

type layout_kind =
  | Blocked
  | Mma
  | Mma_input
  | Sliced_blocked
  | Sliced_mma
  | Sliced_mma_input
  | Custom

val kind_name : layout_kind -> string
val all_kinds : layout_kind list

(** Legacy reduction support (Table 4's pass/fail column). *)
val supports_reduction : layout_kind -> bool

(** Legacy dot support for a [m x k] by [k x n] product of the given
    element types (Table 5). The tile of the lower-precision operand
    needs [32 / bits] consecutive elements; when a tensor dimension is
    smaller than the resulting tile the legacy system has no layout for
    it. Mixed int/float pairs additionally need a software upcast of
    the smaller type, which legacy layouts only provide down to 16
    bits. *)
val supports_dot : a:Tensor_lib.Dtype.t -> b:Tensor_lib.Dtype.t -> m:int -> n:int -> k:int -> bool

(** Legacy layout comparison: layouts of different kinds are never
    recognized as equal, so a conversion is always materialized. *)
val can_compare : layout_kind -> layout_kind -> bool
