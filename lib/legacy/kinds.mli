(** The legacy layout system's shape: one constructor per layout kind,
    each with its own hand-written interface methods — the design the
    paper replaces (Section 3).

    Every kind also converts {e into} a linear layout
    ({!to_linear}) — the backward-compatibility utility Section 3
    describes — which is how the tests show where the per-kind methods
    agree with the generic linear-layout computation and where they
    fall short ([None] = the legacy system had no rule, the bug
    sources the paper catalogues). *)

type t =
  | Blocked of Linear_layout.Blocked.params
  | Mma of { warps : int array; shape : int array }
  | Mma_operand of { idx : int; bitwidth : int; warps : int array; shape : int array }
  | Sliced of { parent : t; dim : int }

(** The Section 3 utility: every legacy layout is a linear layout. *)
val to_linear : t -> Linear_layout.Layout.t

val kind : t -> Support.layout_kind

(** {1 The per-kind interface methods legacy Triton hand-wrote}

    [None] means the legacy implementation had no (correct) rule for
    this kind — exactly the robustness gaps of Tables 3-5. *)

(** Elements each thread holds. *)
val elems_per_thread : t -> int option

(** Contiguous elements per thread (the vectorization width input). *)
val contig_per_thread : t -> int option

(** Whether the legacy backend could emit a reduction over this layout. *)
val supports_reduce : t -> bool

(** Whether a hand-written conversion between the two kinds existed —
    the quadratic explosion of Section 1: most pairs were missing. *)
val conversion_supported : t -> t -> bool
