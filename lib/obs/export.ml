(* Machine-readable trace export.

   The primary format is Chrome's trace_event JSON (loadable in
   chrome://tracing and Perfetto): duration events "B"/"E" plus instant
   events "i", timestamps in microseconds, attributes in "args".

   A minimal JSON parser lives here too, so the qcheck round-trip
   property (span tree -> JSON -> span tree) needs no external
   dependency, and tests can schema-check the tool's output. *)

let escape = Metrics.json_escape

(* {1 Writing} *)

let phase_string = function Trace.Begin -> "B" | Trace.End -> "E" | Trace.Instant -> "i"

let event_json (e : Trace.event) =
  let args =
    match e.Trace.attrs with
    | [] -> ""
    | attrs ->
        Printf.sprintf ",\"args\":{%s}"
          (String.concat ","
             (List.map
                (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
                attrs))
  in
  let scope = match e.Trace.phase with Trace.Instant -> ",\"s\":\"t\"" | _ -> "" in
  Printf.sprintf "{\"name\":\"%s\",\"cat\":\"obs\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":0,\"tid\":%d%s%s}"
    (escape e.Trace.name) (phase_string e.Trace.phase)
    (e.Trace.ts *. 1e6)
    e.Trace.tid scope args

let chrome_json events =
  Printf.sprintf "{\"traceEvents\":[%s],\"displayTimeUnit\":\"ms\"}"
    (String.concat "," (List.map event_json events))

(* {1 A minimal JSON parser} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with Some v -> v | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance ()
          | Some '\\' -> Buffer.add_char b '\\'; advance ()
          | Some '/' -> Buffer.add_char b '/'; advance ()
          | Some 'n' -> Buffer.add_char b '\n'; advance ()
          | Some 'r' -> Buffer.add_char b '\r'; advance ()
          | Some 't' -> Buffer.add_char b '\t'; advance ()
          | Some 'b' -> Buffer.add_char b '\b'; advance ()
          | Some 'f' -> Buffer.add_char b '\012'; advance ()
          | Some 'u' ->
              advance ();
              let v = parse_hex4 () in
              (* Only codepoints below 256 are ever produced by our
                 escaper; encode others as UTF-8. *)
              if v < 0x80 then Buffer.add_char b (Char.chr v)
              else if v < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (v lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (v land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (v lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((v lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (v land 0x3F)))
              end
          | _ -> fail "bad escape");
          go ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad m -> Error m

(* {1 Reading Chrome traces back} *)

let parse_chrome text =
  let field obj k = List.assoc_opt k obj in
  let event_of_json = function
    | Obj o -> (
        let str k = match field o k with Some (Str s) -> Some s | _ -> None in
        let num k = match field o k with Some (Num f) -> Some f | _ -> None in
        match (str "name", str "ph", num "ts") with
        | Some name, Some ph, Some ts ->
            let phase =
              match ph with
              | "B" -> Some Trace.Begin
              | "E" -> Some Trace.End
              | "i" | "I" -> Some Trace.Instant
              | _ -> None
            in
            Option.map
              (fun phase ->
                let tid =
                  match num "tid" with Some f -> int_of_float f | None -> 0
                in
                let attrs =
                  match field o "args" with
                  | Some (Obj args) ->
                      List.filter_map
                        (fun (k, v) -> match v with Str s -> Some (k, s) | _ -> None)
                        args
                  | _ -> []
                in
                { Trace.phase; name; ts = ts /. 1e6; tid; attrs })
              phase
        | _ -> None)
    | _ -> None
  in
  match parse_json text with
  | Error e -> Error e
  | Ok (Obj o) -> (
      match List.assoc_opt "traceEvents" o with
      | Some (Arr events) -> Ok (List.filter_map event_of_json events)
      | _ -> Error "no traceEvents array")
  | Ok _ -> Error "top level is not an object"

(* {1 Span trees} *)

type tree = { name : string; attrs : (string * string) list; children : tree list }

(* Rebuild the span forest from event order, per tid (ascending), the
   same way the Chrome viewer nests B/E pairs.  End-event attributes are
   appended to the node's begin attributes.  Unbalanced traces (ring
   overwrite) degrade gracefully: stray Ends are dropped, unclosed
   Begins are closed at the end of the stream. *)
let tree_of_events events =
  let tids = List.sort_uniq compare (List.map (fun e -> e.Trace.tid) events) in
  List.concat_map
    (fun tid ->
      let events = List.filter (fun e -> e.Trace.tid = tid) events in
      (* stack frames: (name, attrs, children in reverse) *)
      let stack = ref [] and roots = ref [] in
      let push_node node =
        match !stack with
        | [] -> roots := node :: !roots
        | (n, a, kids) :: rest -> stack := (n, a, node :: kids) :: rest
      in
      let close extra_attrs =
        match !stack with
        | [] -> ()
        | (n, a, kids) :: rest ->
            stack := rest;
            push_node { name = n; attrs = a @ extra_attrs; children = List.rev kids }
      in
      List.iter
        (fun (e : Trace.event) ->
          match e.Trace.phase with
          | Trace.Begin -> stack := (e.Trace.name, e.Trace.attrs, []) :: !stack
          | Trace.End -> close e.Trace.attrs
          | Trace.Instant ->
              push_node { name = e.Trace.name; attrs = e.Trace.attrs; children = [] })
        events;
      while !stack <> [] do
        close []
      done;
      List.rev !roots)
    tids

(* The inverse of [tree_of_events] for well-formed forests: emit the
   forest as Begin/End pairs with synthetic strictly-increasing
   timestamps (1 µs apart). *)
let events_of_trees ?(tid = 0) forest =
  let ts = ref 0. in
  let next () =
    let t = !ts in
    ts := t +. 1e-6;
    t
  in
  let rec emit acc t =
    let acc =
      { Trace.phase = Trace.Begin; name = t.name; ts = next (); tid; attrs = t.attrs } :: acc
    in
    let acc = List.fold_left emit acc t.children in
    { Trace.phase = Trace.End; name = t.name; ts = next (); tid; attrs = [] } :: acc
  in
  List.rev (List.fold_left emit [] forest)

let rec render_tree t =
  match t.children with
  | [] -> t.name
  | kids -> t.name ^ "(" ^ String.concat " " (List.map render_tree kids) ^ ")"

let render_forest forest = String.concat " " (List.map render_tree forest)
