(** Pluggable time source for the observability layer.

    All spans and pass timers read time through {!now}.  The default
    source is [Unix.gettimeofday]; tests install a deterministic stub
    with {!set} or {!fixed} so span trees can be compared without
    comparing durations. *)

(** Seconds, from the installed source (default: wall clock). *)
val now : unit -> float

(** Install a replacement time source. *)
val set : (unit -> float) -> unit

(** Restore the wall clock. *)
val reset : unit -> unit

(** Install a deterministic clock that advances [step] (default 1ms)
    seconds on every call, starting at [start] (default 0). *)
val fixed : ?start:float -> ?step:float -> unit -> unit
