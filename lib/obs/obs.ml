(** The observability spine: tracing ({!Span} + {!Trace}), metrics
    ({!Metrics}), a pluggable clock ({!Clock}) and machine-readable
    export ({!Export}).

    Everything is gated on one flag: while {!enabled} is false, every
    instrumentation site in the stack reduces to a load and a branch
    (no allocation).  Installing a trace sink ({!Trace.install} /
    {!Trace.with_sink}) turns the flag on; {!set_enabled} turns on
    metrics-only collection without a trace. *)

module Clock = Clock
module Metrics = Metrics
module Trace = Trace
module Span = Span
module Export = Export

let enabled = Control.enabled
let set_enabled = Control.set_enabled
let with_enabled = Control.with_enabled
