(** Named counters, gauges and log₂-bucketed histograms in a
    global-but-resettable registry.

    The registry lives in [Domain.DLS] (the same approach as
    [Codegen.Plan_cache]), so concurrent domains never race on updates:
    each domain accumulates privately, and a parent merges worker
    {!snapshot}s with {!absorb} after joining them.

    All recording entry points are no-ops while the {!Obs.enabled} flag
    is off, so instrumentation left in hot paths costs one load and one
    branch when nothing is observing. *)

(** Number of histogram buckets; bucket 0 holds values [<= 0], bucket
    [i >= 1] holds [2^(i-1) <= v < 2^i], saturating at the last. *)
val buckets : int

val bucket : int -> int

val incr : ?by:int -> string -> unit
val gauge : string -> float -> unit

(** Record one histogram observation. *)
val observe : string -> int -> unit

(** Current value of a counter in this domain (0 if never bumped). *)
val counter_value : string -> int

(** Clear this domain's registry. *)
val reset : unit -> unit

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * int array) list;
}

val snapshot : unit -> snapshot

(** All metric names in the snapshot, sorted, deduplicated. *)
val names : snapshot -> string list

(** Associative and commutative: counters add, gauges max, histogram
    buckets add pointwise. *)
val merge : snapshot -> snapshot -> snapshot

(** Structural equality up to trailing zero histogram buckets. *)
val snapshot_equal : snapshot -> snapshot -> bool

(** Fold a (typically worker-domain) snapshot into this domain's
    registry, with {!merge} semantics. *)
val absorb : snapshot -> unit

(** Flat metrics JSON:
    [{"counters":{...},"gauges":{...},"histograms":{"name":[b0,...]}}]. *)
val to_json : snapshot -> string

(** JSON string-body escaping shared by the exporters. *)
val json_escape : string -> string
