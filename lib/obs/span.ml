(* Hierarchical timed regions.  A span is a Begin/End event pair in the
   trace; nesting is implied by event order within a domain (the Chrome
   trace viewer and Export.tree_of_events both rebuild the tree from
   that order).

   When instrumentation is disabled, [enter] returns a preallocated
   dummy and [exit] is a branch on it — no allocation on the fast
   path. *)

type t = { name : string; t0 : float; tid : int; live : bool }

let dummy = { name = ""; t0 = 0.; tid = 0; live = false }

let enter ?(attrs = []) name =
  if not (Control.enabled ()) then dummy
  else begin
    let tid = (Domain.self () :> int) in
    let ts = Clock.now () in
    Trace.emit { Trace.phase = Trace.Begin; name; ts; tid; attrs };
    { name; t0 = ts; tid; live = true }
  end

let exit ?(attrs = []) s =
  if s.live then
    Trace.emit { Trace.phase = Trace.End; name = s.name; ts = Clock.now (); tid = s.tid; attrs }

let instant ?(attrs = []) name =
  if Control.enabled () then
    Trace.emit
      {
        Trace.phase = Trace.Instant;
        name;
        ts = Clock.now ();
        tid = (Domain.self () :> int);
        attrs;
      }

let with_ ?attrs name f =
  let s = enter ?attrs name in
  match f () with
  | v ->
      exit s;
      v
  | exception e ->
      exit ~attrs:[ ("error", Printexc.to_string e) ] s;
      raise e
