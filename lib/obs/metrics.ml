(* Named counters, gauges and log2-bucketed histograms.

   The registry is global-but-resettable and lives in [Domain.DLS] — the
   same discipline as Codegen.Plan_cache — so concurrent domains (e.g.
   Autotune.best ?domains) never race on counter updates: each domain
   accumulates privately and the parent merges worker {!snapshot}s with
   {!absorb} after joining. *)

let buckets = 63

(* Bucket 0 holds v <= 0, bucket i >= 1 holds 2^(i-1) <= v < 2^i,
   saturating at the last bucket. *)
let bucket v =
  if v <= 0 then 0
  else begin
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    min (buckets - 1) (bits v 0)
  end

type registry = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, int array) Hashtbl.t;
}

let fresh () =
  { counters = Hashtbl.create 64; gauges = Hashtbl.create 16; histograms = Hashtbl.create 32 }

let dls = Domain.DLS.new_key fresh
let registry () = Domain.DLS.get dls

let incr ?(by = 1) name =
  if Control.enabled () then begin
    let r = registry () in
    match Hashtbl.find_opt r.counters name with
    | Some c -> c := !c + by
    | None -> Hashtbl.add r.counters name (ref by)
  end

let gauge name v =
  if Control.enabled () then begin
    let r = registry () in
    match Hashtbl.find_opt r.gauges name with
    | Some g -> g := v
    | None -> Hashtbl.add r.gauges name (ref v)
  end

let observe name v =
  if Control.enabled () then begin
    let r = registry () in
    let h =
      match Hashtbl.find_opt r.histograms name with
      | Some h -> h
      | None ->
          let h = Array.make buckets 0 in
          Hashtbl.add r.histograms name h;
          h
    in
    let b = bucket v in
    h.(b) <- h.(b) + 1
  end

let counter_value name =
  match Hashtbl.find_opt (registry ()).counters name with Some c -> !c | None -> 0

let reset () =
  let r = registry () in
  Hashtbl.reset r.counters;
  Hashtbl.reset r.gauges;
  Hashtbl.reset r.histograms

(* {1 Snapshots} *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * int array) list;
}

let sorted_assoc tbl ~f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  let r = registry () in
  {
    counters = sorted_assoc r.counters ~f:( ! );
    gauges = sorted_assoc r.gauges ~f:( ! );
    histograms = sorted_assoc r.histograms ~f:Array.copy;
  }

let names s =
  List.map fst s.counters @ List.map fst s.gauges @ List.map fst s.histograms
  |> List.sort_uniq String.compare

(* Merge is associative and commutative: counters add, gauges take the
   max, histogram buckets add pointwise (ragged lengths are padded). *)
let merge_assoc cmp combine a b =
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (ka, va) :: ta, (kb, vb) :: tb ->
        let c = cmp ka kb in
        if c < 0 then (ka, va) :: go ta b
        else if c > 0 then (kb, vb) :: go a tb
        else (ka, combine va vb) :: go ta tb
  in
  go a b

let merge_histo a b =
  let n = max (Array.length a) (Array.length b) in
  Array.init n (fun i ->
      (if i < Array.length a then a.(i) else 0) + if i < Array.length b then b.(i) else 0)

let merge a b =
  {
    counters = merge_assoc String.compare ( + ) a.counters b.counters;
    gauges = merge_assoc String.compare Float.max a.gauges b.gauges;
    histograms = merge_assoc String.compare merge_histo a.histograms b.histograms;
  }

(* Structural equality up to trailing zero buckets (so padding done by
   [merge] is invisible). *)
let trim h =
  let n = ref (Array.length h) in
  while !n > 0 && h.(!n - 1) = 0 do decr n done;
  Array.sub h 0 !n

let snapshot_equal a b =
  a.counters = b.counters && a.gauges = b.gauges
  && List.length a.histograms = List.length b.histograms
  && List.for_all2
       (fun (ka, ha) (kb, hb) -> ka = kb && trim ha = trim hb)
       a.histograms b.histograms

(* Fold a worker domain's snapshot into this domain's registry (with
   [merge]'s semantics). *)
let absorb (s : snapshot) =
  let r = registry () in
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt r.counters k with
      | Some c -> c := !c + v
      | None -> Hashtbl.add r.counters k (ref v))
    s.counters;
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt r.gauges k with
      | Some g -> g := Float.max !g v
      | None -> Hashtbl.add r.gauges k (ref v))
    s.gauges;
  List.iter
    (fun (k, h) ->
      match Hashtbl.find_opt r.histograms k with
      | Some h0 ->
          Array.iteri (fun i v -> if i < Array.length h0 then h0.(i) <- h0.(i) + v) h
      | None -> Hashtbl.add r.histograms k (merge_histo h [||]))
    s.histograms

(* {1 Export} *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json (s : snapshot) =
  let field k v = Printf.sprintf "\"%s\":%s" (json_escape k) v in
  let obj entries = "{" ^ String.concat "," entries ^ "}" in
  obj
    [
      field "counters"
        (obj (List.map (fun (k, v) -> field k (string_of_int v)) s.counters));
      field "gauges"
        (obj (List.map (fun (k, v) -> field k (Printf.sprintf "%.6g" v)) s.gauges));
      field "histograms"
        (obj
           (List.map
              (fun (k, h) ->
                field k
                  ("["
                  ^ String.concat ","
                      (Array.to_list (Array.map string_of_int (trim h)))
                  ^ "]"))
              s.histograms));
    ]
