(* The master instrumentation switch.  A single atomic boolean shared by
   every domain: instrumentation sites read it once and skip all work
   (and all allocation) when it is off, so the disabled cost is one load
   and one branch.  Installing a trace sink (see Trace) turns it on. *)

let flag = Atomic.make false
let enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b

let with_enabled f =
  let prev = Atomic.get flag in
  Atomic.set flag true;
  Fun.protect ~finally:(fun () -> Atomic.set flag prev) f
