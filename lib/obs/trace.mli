(** An in-memory ring buffer of span events, and the global sink the
    instrumentation writes to.

    Recording is domain-safe: the sink is shared by all domains (so
    [Autotune.best ?domains] workers land in the same trace) and guarded
    by a mutex that is only touched while instrumentation is enabled. *)

type phase = Begin | End | Instant

type event = {
  phase : phase;
  name : string;
  ts : float;  (** seconds, read through {!Clock} *)
  tid : int;  (** recording domain id *)
  attrs : (string * string) list;
}

type t

(** [capacity] defaults to 65536 events; older events are overwritten. *)
val create : ?capacity:int -> unit -> t

val record : t -> event -> unit

(** Surviving events, oldest first. *)
val events : t -> event list

(** Number of surviving events. *)
val length : t -> int

(** Events lost to ring overwrite. *)
val dropped : t -> int

val clear : t -> unit

(** Install [t] as the global sink and enable instrumentation. *)
val install : t -> unit

(** Remove the sink and disable instrumentation. *)
val uninstall : unit -> unit

val current : unit -> t option

(** Run [f] with [t] installed (and instrumentation enabled), restoring
    the previous sink and enabled flag afterwards, also on exceptions. *)
val with_sink : t -> (unit -> 'a) -> 'a

(** Record to the current sink, if any. *)
val emit : event -> unit
