(* An in-memory ring buffer of span events, and the global sink the
   instrumentation writes to.

   The sink is shared by every domain (Autotune workers record into the
   same trace as the parent), so [record] takes a mutex; the lock is
   only ever touched when instrumentation is enabled. *)

type phase = Begin | End | Instant

type event = {
  phase : phase;
  name : string;
  ts : float;  (* seconds, from Clock *)
  tid : int;  (* recording domain *)
  attrs : (string * string) list;
}

type t = {
  capacity : int;
  buf : event option array;
  mutable next : int;  (* total events ever recorded *)
  lock : Mutex.t;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Obs.Trace.create: capacity must be positive";
  { capacity; buf = Array.make capacity None; next = 0; lock = Mutex.create () }

let record t e =
  Mutex.lock t.lock;
  t.buf.(t.next mod t.capacity) <- Some e;
  t.next <- t.next + 1;
  Mutex.unlock t.lock

let length t = min t.next t.capacity
let dropped t = max 0 (t.next - t.capacity)

(* Oldest surviving event first. *)
let events t =
  Mutex.lock t.lock;
  let n = length t in
  let start = t.next - n in
  let out = List.init n (fun i -> Option.get t.buf.((start + i) mod t.capacity)) in
  Mutex.unlock t.lock;
  out

let clear t =
  Mutex.lock t.lock;
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  Mutex.unlock t.lock

(* {1 The installed sink} *)

let sink : t option Atomic.t = Atomic.make None
let current () = Atomic.get sink

let install t =
  Atomic.set sink (Some t);
  Control.set_enabled true

let uninstall () =
  Atomic.set sink None;
  Control.set_enabled false

let with_sink t f =
  let prev_sink = Atomic.get sink and prev_enabled = Control.enabled () in
  Atomic.set sink (Some t);
  Control.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set sink prev_sink;
      Control.set_enabled prev_enabled)
    f

let emit e = match Atomic.get sink with Some t -> record t e | None -> ()
