(** Trace export: Chrome [trace_event] JSON (loadable in
    [chrome://tracing] and Perfetto), a minimal JSON parser for
    round-trip tests and schema checks, and span-tree reconstruction. *)

(** Serialize events as a Chrome trace: duration events ["B"]/["E"] and
    instants ["i"], timestamps in microseconds, attributes in ["args"]. *)
val chrome_json : Trace.event list -> string

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse_json : string -> (json, string) result

(** Parse a Chrome trace produced by {!chrome_json} back into events
    (timestamps return to seconds; non-string args are dropped). *)
val parse_chrome : string -> (Trace.event list, string) result

type tree = { name : string; attrs : (string * string) list; children : tree list }

(** Rebuild the span forest from event order per tid (ascending tid),
    nesting [Begin]/[End] pairs the way the Chrome viewer does.
    End-event attributes are appended to the node's attributes.
    Unbalanced traces degrade gracefully. *)
val tree_of_events : Trace.event list -> tree list

(** Inverse of {!tree_of_events} for well-formed forests, with synthetic
    strictly-increasing timestamps. *)
val events_of_trees : ?tid:int -> tree list -> Trace.event list

(** ["root(child leaf(grand))"] rendering, for golden tests. *)
val render_tree : tree -> string

val render_forest : tree list -> string
