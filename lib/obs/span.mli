(** Hierarchical timed regions with key/value attributes.

    A span is a [Begin]/[End] event pair in the installed {!Trace};
    nesting is implied by event order within a domain.  With
    instrumentation disabled, {!enter} returns a preallocated dummy and
    {!exit} reduces to a branch — no allocation on the fast path. *)

type t

(** Open a span; [attrs] are attached to the begin event. *)
val enter : ?attrs:(string * string) list -> string -> t

(** Close a span; [attrs] (e.g. results computed during the region) are
    attached to the end event and merged into the span's attributes by
    {!Export.tree_of_events}. *)
val exit : ?attrs:(string * string) list -> t -> unit

(** A zero-duration marker event. *)
val instant : ?attrs:(string * string) list -> string -> unit

(** [with_ name f] wraps [f] in a span; on exception the span is closed
    with an ["error"] attribute and the exception re-raised. *)
val with_ : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
