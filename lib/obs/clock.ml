(* Pluggable time source.  Everything in the observability layer (spans,
   pass wall-clocks) reads time through [now], so tests can install a
   deterministic stub and pin trace output without pinning durations. *)

let real = Unix.gettimeofday
let source = Atomic.make real
let now () = (Atomic.get source) ()
let set f = Atomic.set source f
let reset () = Atomic.set source real

(* A deterministic clock: every call advances by [step] seconds,
   starting at [start].  The counter is atomic so the stub stays
   well-defined when several domains record concurrently. *)
let fixed ?(start = 0.) ?(step = 0.001) () =
  let ticks = Atomic.make 0 in
  set (fun () -> start +. (float_of_int (Atomic.fetch_and_add ticks 1) *. step))
