open Linear_layout

type t = {
  mem : Layout.t;
  vec : int list;
  seg : int list;
  bank : int list;
  vec_bits : int;
  store_wavefronts : int;
  load_wavefronts : int;
}

let nonzero_cols l d = List.filter (fun c -> c <> 0) (Layout.Memo.flat_columns l d)
let set_diff a b = List.filter (fun x -> not (List.mem x b)) a
let set_inter a b = List.filter (fun x -> List.mem x b) a
let take n l = List.filteri (fun i _ -> i < n) l
let drop_last k l = take (max 0 (List.length l - k)) l

let logical_shape l =
  let dims = Layout.out_dims l in
  let rank = List.length dims in
  let shape = Array.make rank 1 in
  List.iter
    (fun (d, bits) ->
      match Dims.dim_index d with
      | Some i -> shape.(i) <- 1 lsl bits
      | None -> invalid_arg "Swizzle_opt: layouts must map onto logical dimensions")
    dims;
  shape

(* Greedily extend [chosen] with candidates independent from
   [base @ chosen], until [needed] vectors are picked. *)
let pick ~base ~needed candidates =
  List.fold_left
    (fun chosen cand ->
      if List.length chosen >= needed then chosen
      else if cand <> 0 && F2.Subspace.independent_from (base @ chosen) cand then
        chosen @ [ cand ]
      else chosen)
    [] candidates

let banks_per_access ~vec_bits ~byte_width = max 1 ((1 lsl vec_bits) * byte_width / 4)

let predict_wavefronts machine ~vec ~seg ~dist ~byte_width =
  ignore machine;
  let vec_bits = List.length vec in
  let n = banks_per_access ~vec_bits ~byte_width in
  let thr = nonzero_cols (Layout.Memo.flatten_outs dist) Dims.lane in
  let bank_thr = drop_last (Util.log2 n) thr in
  let inter = F2.Subspace.intersection (vec @ seg) bank_thr in
  n * (1 lsl List.length inter)

let optimal machine ~src ~dst ~byte_width =
  let a = Layout.Memo.flatten_outs src and b = Layout.Memo.flatten_outs dst in
  if Layout.out_dims a <> Layout.out_dims b then
    invalid_arg "Swizzle_opt.optimal: layouts cover different logical spaces";
  let d = Layout.total_out_bits a in
  let a_reg = nonzero_cols a Dims.register and b_reg = nonzero_cols b Dims.register in
  let a_thr = nonzero_cols a Dims.lane and b_thr = nonzero_cols b Dims.lane in
  (* V: common register basis, capped at the widest vectorized access. *)
  let max_v = Util.log2 (machine.Gpusim.Machine.max_vec_bits / 8 / byte_width) in
  let vec = take max_v (List.sort compare (set_inter a_reg b_reg)) in
  let v = List.length vec in
  let n = banks_per_access ~vec_bits:v ~byte_width in
  let k = Util.log2 n in
  (* Bank space: vectorized elements needed to cover all 32 banks. *)
  let bank_bytes_total =
    machine.Gpusim.Machine.num_banks * machine.Gpusim.Machine.bank_bytes
  in
  let b_nominal =
    if (1 lsl v) * byte_width >= bank_bytes_total then 0
    else Util.log2 (bank_bytes_total / ((1 lsl v) * byte_width))
  in
  let b_bits = min b_nominal (d - v) in
  let s = d - v - b_bits in
  (* Thread columns that matter for conflicts: vectorized accesses wider
     than a bank are split into phases selected by the last thread
     bits, which therefore cannot conflict. *)
  let a_bank = drop_last k a_thr and b_bank = drop_last k b_thr in
  let e0 = List.sort compare (set_diff a_bank b_bank) in
  let f0 = List.sort compare (set_diff b_bank a_bank) in
  let e, f = if List.length e0 <= List.length f0 then (e0, f0) else (f0, e0) in
  let h = List.map2 ( lxor ) e (take (List.length e) f) in
  let p_basis = vec @ a_bank @ b_bank in
  let c_comp = F2.Subspace.complement ~dim:d p_basis in
  (* Segment basis: prefer H (conflict-free for both sides), then the
     complement C; fall back to A's thread columns (unavoidable
     conflicts), then arbitrary completion. *)
  let seg = pick ~base:vec ~needed:s (h @ c_comp) in
  let seg =
    if List.length seg < s then
      seg @ pick ~base:(vec @ seg) ~needed:(s - List.length seg) a_bank
    else seg
  in
  let seg =
    if List.length seg < s then
      seg
      @ take (s - List.length seg) (F2.Subspace.complete_basis ~dim:d (vec @ seg))
    else seg
  in
  let bank = F2.Subspace.complete_basis ~dim:d (vec @ seg) in
  (* For sub-word element widths the lowest [log2 (4 / w)] offset bits
     select a byte within a 4-byte bank word.  A thread column placed
     there would make lanes that differ in it share a bank while
     differing in the word (via the paired segment bit) — a conflict the
     bank simulator confirms.  Order the bank space so thread columns
     occupy word-address bits and only non-thread columns (typically
     register columns) fill the byte bits. *)
  let bank =
    let byte_bits = if (1 lsl v) * byte_width >= 4 then 0 else Util.log2 (4 / ((1 lsl v) * byte_width)) in
    if byte_bits = 0 then bank
    else
      let is_thread c = List.mem c a_thr || List.mem c b_thr in
      let non_thread, thread = List.partition (fun c -> not (is_thread c)) bank in
      non_thread @ thread
  in
  let mem = Shared.of_basis_columns ~shape:(logical_shape src) (vec @ bank @ seg) in
  let store_wf = predict_wavefronts machine ~vec ~seg ~dist:src ~byte_width in
  let load_wf = predict_wavefronts machine ~vec ~seg ~dist:dst ~byte_width in
  Obs.Metrics.observe "codegen.swizzle.vec_bits" v;
  Obs.Metrics.observe "codegen.swizzle.store_wavefronts" store_wf;
  Obs.Metrics.observe "codegen.swizzle.load_wavefronts" load_wf;
  if store_wf <= 1 && load_wf <= 1 then
    Obs.Metrics.incr "codegen.swizzle.conflict_free";
  {
    mem;
    vec;
    seg;
    bank;
    vec_bits = v;
    store_wavefronts = store_wf;
    load_wavefronts = load_wf;
  }

let simulate_wavefronts machine ~mem ~dist ~byte_width ~vec =
  let flat = Layout.Memo.flatten_outs dist in
  let mem_inv = Layout.Memo.invert (Layout.Memo.flatten_outs mem) in
  let reg_bits = Layout.in_bits dist Dims.register in
  let lane_bits = Layout.in_bits dist Dims.lane in
  (* One instruction covers the same register slots in every lane
     (SIMT): the vectorized registers are those whose columns lie in the
     vectorization basis, the remaining register bits enumerate the
     instructions. *)
  let reg_cols = Array.of_list (Layout.flat_columns flat Dims.register) in
  let vec_idx =
    List.filter (fun k -> List.mem reg_cols.(k) vec) (List.init reg_bits Fun.id)
  in
  let other_idx =
    List.filter (fun k -> not (List.mem k vec_idx)) (List.init reg_bits Fun.id)
  in
  let vec_elems = 1 lsl List.length vec_idx in
  let scatter sel idxs base =
    fst
      (List.fold_left
         (fun (acc, i) k ->
           ((if sel land (1 lsl i) <> 0 then acc lor (1 lsl k) else acc), i + 1))
         (base, 0) idxs)
  in
  let reg_of ~group ~within = scatter within vec_idx (scatter group other_idx 0) in
  let offset_of lane r =
    let hw = r lor (lane lsl reg_bits) in
    Layout.apply_flat mem_inv (Layout.apply_flat flat hw)
  in
  let insts = 1 lsl List.length other_idx in
  let total = ref 0 in
  for g = 0 to insts - 1 do
    let accesses =
      List.init (1 lsl lane_bits) (fun lane ->
          let offsets =
            List.init vec_elems (fun v -> offset_of lane (reg_of ~group:g ~within:v))
            |> List.sort compare
          in
          let base = List.hd offsets in
          (* The vectorized registers must map onto consecutive aligned
             offsets; the planner guarantees this for its own memory
             layouts. *)
          List.iteri
            (fun i o ->
              if o <> base + i then
                invalid_arg "Swizzle_opt.simulate_wavefronts: access is not contiguous")
            offsets;
          { Gpusim.Banks.addr = base * byte_width; bytes = vec_elems * byte_width })
    in
    total := !total + Gpusim.Banks.wavefronts machine accesses
  done;
  (!total, insts)

let execute ~mem ~dst src_dist =
  match Gpusim.Dist.to_logical src_dist with
  | Error e -> failwith ("Swizzle_opt.execute: " ^ e)
  | Ok tensor ->
      let mem_flat = Layout.Memo.flatten_outs mem in
      let smem = Array.make (Array.length tensor) 0 in
      Array.iteri
        (fun off _ -> smem.(off) <- tensor.(Layout.apply_flat mem_flat off))
        smem;
      let mem_inv = Layout.Memo.invert mem_flat in
      Gpusim.Dist.init dst ~f:(fun logical ->
          smem.(Layout.apply_flat mem_inv logical))

let cost machine t ~src ~dst ~byte_width =
  let c = Gpusim.Cost.zero () in
  let insts dist =
    let regs = 1 lsl Layout.in_bits dist Dims.register in
    max 1 (regs / (1 lsl t.vec_bits))
  in
  let warps l = 1 lsl Layout.in_bits l Dims.warp in
  let store_insts = insts src * warps src and load_insts = insts dst * warps dst in
  c.Gpusim.Cost.smem_insts <- store_insts + load_insts;
  c.Gpusim.Cost.smem_wavefronts <-
    (store_insts * t.store_wavefronts) + (load_insts * t.load_wavefronts);
  c.Gpusim.Cost.barriers <- 1;
  c.Gpusim.Cost.alu <- 2 * (store_insts + load_insts);
  ignore (machine, byte_width);
  c
