open Linear_layout

let version = 1
let magic = "LLPLANSTORE"

type cert = { method_ : string; points : int; verdict : string }
type load_report = { loaded : int; rejected : int; diags : Diagnostics.t list }

let empty_report = { loaded = 0; rejected = 0; diags = [] }

(* {1 Field codec}

   One entry per line, fields separated by tabs.  Layout literals (the
   {!Parse} grammar) contain neither tabs nor newlines; free-form
   strings (machine names, cached planner error messages) are
   percent-escaped so they cannot either. *)

let escape s =
  if String.for_all (fun c -> c <> '\t' && c <> '\n' && c <> '\r' && c <> '%') s then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (function
        | '%' -> Buffer.add_string b "%25"
        | '\t' -> Buffer.add_string b "%09"
        | '\n' -> Buffer.add_string b "%0A"
        | '\r' -> Buffer.add_string b "%0D"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let unescape s =
  match String.index_opt s '%' with
  | None -> s
  | Some _ ->
      let b = Buffer.create (String.length s) in
      let n = String.length s in
      let i = ref 0 in
      while !i < n do
        if s.[!i] = '%' && !i + 2 < n then begin
          Buffer.add_char b (Char.chr (int_of_string ("0x" ^ String.sub s (!i + 1) 2)));
          i := !i + 3
        end
        else begin
          Buffer.add_char b s.[!i];
          incr i
        end
      done;
      Buffer.contents b

type cursor = { fields : string array; mutable pos : int }

let next c =
  if c.pos >= Array.length c.fields then failwith "truncated entry";
  let f = c.fields.(c.pos) in
  c.pos <- c.pos + 1;
  f

let next_int c = int_of_string (next c)
let enc_ints = function [] -> "-" | l -> String.concat "," (List.map string_of_int l)
let dec_ints = function "-" -> [] | s -> List.map int_of_string (String.split_on_char ',' s)
let enc_layout l = escape (Parse.to_string l)

let dec_layout s =
  match Parse.of_string (unescape s) with
  | Ok l -> Layout.Memo.intern l
  | Error e -> failwith ("bad layout literal: " ^ e)

let enc_shuffle (sh : Shuffle.t) =
  [
    enc_layout sh.Shuffle.src;
    enc_layout sh.Shuffle.dst;
    enc_ints sh.Shuffle.vec;
    enc_ints sh.Shuffle.common_thr;
    enc_ints sh.Shuffle.g;
    enc_ints sh.Shuffle.ext;
    string_of_int sh.Shuffle.rounds;
    string_of_int sh.Shuffle.shuffles_per_round;
  ]

let dec_shuffle c =
  let src = dec_layout (next c) in
  let dst = dec_layout (next c) in
  let vec = dec_ints (next c) in
  let common_thr = dec_ints (next c) in
  let g = dec_ints (next c) in
  let ext = dec_ints (next c) in
  let rounds = next_int c in
  let shuffles_per_round = next_int c in
  { Shuffle.src; dst; vec; common_thr; g; ext; rounds; shuffles_per_round }

let enc_swizzle (sw : Swizzle_opt.t) =
  [
    enc_layout sw.Swizzle_opt.mem;
    enc_ints sw.Swizzle_opt.vec;
    enc_ints sw.Swizzle_opt.seg;
    enc_ints sw.Swizzle_opt.bank;
    string_of_int sw.Swizzle_opt.vec_bits;
    string_of_int sw.Swizzle_opt.store_wavefronts;
    string_of_int sw.Swizzle_opt.load_wavefronts;
  ]

let dec_swizzle c =
  let mem = dec_layout (next c) in
  let vec = dec_ints (next c) in
  let seg = dec_ints (next c) in
  let bank = dec_ints (next c) in
  let vec_bits = next_int c in
  let store_wavefronts = next_int c in
  let load_wavefronts = next_int c in
  { Swizzle_opt.mem; vec; seg; bank; vec_bits; store_wavefronts; load_wavefronts }

let enc_cost (c : Gpusim.Cost.t) =
  String.concat ","
    (List.map string_of_int
       [
         c.Gpusim.Cost.smem_wavefronts;
         c.Gpusim.Cost.smem_insts;
         c.Gpusim.Cost.shuffles;
         c.Gpusim.Cost.gmem_transactions;
         c.Gpusim.Cost.gmem_insts;
         c.Gpusim.Cost.ldmatrix;
         c.Gpusim.Cost.alu;
         c.Gpusim.Cost.mma;
         c.Gpusim.Cost.barriers;
       ])

let dec_cost s =
  match List.map int_of_string (String.split_on_char ',' s) with
  | [ wf; si; sh; gt; gi; ld; alu; mma; bar ] ->
      {
        Gpusim.Cost.smem_wavefronts = wf;
        smem_insts = si;
        shuffles = sh;
        gmem_transactions = gt;
        gmem_insts = gi;
        ldmatrix = ld;
        alu;
        mma;
        barriers = bar;
      }
  | _ -> failwith "bad cost vector"

let enc_mech = function
  | Conversion.No_op -> [ "noop" ]
  | Conversion.Register_permute -> [ "regperm" ]
  | Conversion.Global_roundtrip -> [ "globalrt" ]
  | Conversion.Warp_shuffle sh -> "shuffle" :: enc_shuffle sh
  | Conversion.Warp_shuffle_compressed sh -> "shuffle_c" :: enc_shuffle sh
  | Conversion.Shared_memory sw -> "smem" :: enc_swizzle sw

let dec_mech c =
  match next c with
  | "noop" -> Conversion.No_op
  | "regperm" -> Conversion.Register_permute
  | "globalrt" -> Conversion.Global_roundtrip
  | "shuffle" -> Conversion.Warp_shuffle (dec_shuffle c)
  | "shuffle_c" -> Conversion.Warp_shuffle_compressed (dec_shuffle c)
  | "smem" -> Conversion.Shared_memory (dec_swizzle c)
  | t -> failwith ("unknown mechanism tag " ^ t)

let enc_staging = function
  | None -> [ "none" ]
  | Some (s : Operand_staging.t) ->
      [
        "some";
        enc_layout s.Operand_staging.mem;
        string_of_int s.Operand_staging.vec;
        string_of_int s.Operand_staging.per_phase;
        string_of_int s.Operand_staging.max_phase;
        string_of_bool s.Operand_staging.uses_ldmatrix;
        enc_cost s.Operand_staging.staging_cost;
      ]

let dec_staging c =
  match next c with
  | "none" -> None
  | "some" ->
      let mem = dec_layout (next c) in
      let vec = next_int c in
      let per_phase = next_int c in
      let max_phase = next_int c in
      let uses_ldmatrix = bool_of_string (next c) in
      let staging_cost = dec_cost (next c) in
      Some { Operand_staging.mem; vec; per_phase; max_phase; uses_ldmatrix; staging_cost }
  | t -> failwith ("unknown staging tag " ^ t)

let enc_cert = function
  | None -> [ "nocert" ]
  | Some ct -> [ "cert"; escape ct.method_; string_of_int ct.points; escape ct.verdict ]

let dec_cert c =
  match next c with
  | "nocert" -> None
  | "cert" ->
      let method_ = unescape (next c) in
      let points = next_int c in
      let verdict = unescape (next c) in
      Some { method_; points; verdict }
  | t -> failwith ("unknown certificate tag " ^ t)

let key_fields (k : Shared_cache.Key.t) =
  [
    escape k.Shared_cache.Key.machine;
    string_of_int k.Shared_cache.Key.byte_width;
    enc_layout k.Shared_cache.Key.src;
    enc_layout k.Shared_cache.Key.dst;
  ]

let dec_key c =
  let machine = unescape (next c) in
  let byte_width = next_int c in
  let src = dec_layout (next c) in
  let dst = dec_layout (next c) in
  { Shared_cache.Key.machine; src; dst; byte_width }

(* Shuffle and swizzle entries are certified through the conversion
   plan they stage: the certifier sees exactly the mechanism the cache
   would hand the lowerer. *)
let wrap_shuffle (k : Shared_cache.Key.t) sh =
  {
    Conversion.src = sh.Shuffle.src;
    dst = sh.Shuffle.dst;
    byte_width = k.Shared_cache.Key.byte_width;
    mechanism = Conversion.Warp_shuffle sh;
  }

let wrap_swizzle (k : Shared_cache.Key.t) sw =
  {
    Conversion.src = k.Shared_cache.Key.src;
    dst = k.Shared_cache.Key.dst;
    byte_width = k.Shared_cache.Key.byte_width;
    mechanism = Conversion.Shared_memory sw;
  }

(* {1 Integrity} *)

(* FNV-1a folded into OCaml's 63-bit int range; strong enough to catch
   the truncations and bit flips a cache file meets, cheap enough to
   run on every load. *)
let checksum s =
  let h = ref 0x1505 in
  String.iter (fun ch -> h := (!h lxor Char.code ch) * 0x01000193 land 0x1FFFFFFFFFFFFFFF) s;
  !h

let atomic_write path contents =
  let tmp = Filename.temp_file ~temp_dir:(Filename.dirname path) "plan_store" ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents);
  Sys.rename tmp path

(* {1 Save} *)

let save ?certify path =
  (* Snapshot under the stripe locks first; certify (which may lower
     and symbolically execute plans) strictly outside them. *)
  let convs = Shared_cache.fold_conversions (fun k v acc -> (k, v) :: acc) [] in
  let shufs = Shared_cache.fold_shuffles (fun k v acc -> (k, v) :: acc) [] in
  let swizs = Shared_cache.fold_swizzles (fun k v acc -> (k, v) :: acc) [] in
  let stages = Shared_cache.fold_stagings (fun k v acc -> (k, v) :: acc) [] in
  let stamp (k : Shared_cache.Key.t) plan =
    enc_cert
      (match certify with
      | None -> None
      | Some f -> f ~machine:k.Shared_cache.Key.machine plan)
  in
  let buf = Buffer.create 4096 in
  let count = ref 0 in
  let line fields =
    Buffer.add_string buf (String.concat "\t" fields);
    Buffer.add_char buf '\n';
    incr count
  in
  List.iter
    (fun (k, (p : Conversion.plan)) ->
      line (("conv" :: key_fields k) @ enc_mech p.Conversion.mechanism @ stamp k p))
    convs;
  List.iter
    (fun (k, r) ->
      match r with
      | Ok sh -> line (("shuf" :: key_fields k) @ ("ok" :: enc_shuffle sh) @ stamp k (wrap_shuffle k sh))
      | Error e -> line (("shuf" :: key_fields k) @ [ "err"; escape e; "nocert" ]))
    shufs;
  List.iter
    (fun (k, sw) -> line (("swiz" :: key_fields k) @ enc_swizzle sw @ stamp k (wrap_swizzle k sw)))
    swizs;
  List.iter (fun (k, st) -> line (("stage" :: key_fields k) @ enc_staging st)) stages;
  let body = Buffer.contents buf in
  atomic_write path (Printf.sprintf "%s %d %d %x\n%s" magic version !count (checksum body) body);
  !count

(* {1 Load} *)

let warn900 path fmt = Diagnostics.warning ~code:"LL900" ("plan store %s: " ^^ fmt) path
let fail900 path fmt = Format.kasprintf (fun m -> { empty_report with diags = [ warn900 path "%s" m ] }) fmt

let decode_entry line =
  let c = { fields = Array.of_list (String.split_on_char '\t' line); pos = 0 } in
  let tag = next c in
  let k = dec_key c in
  let e =
    match tag with
    | "conv" ->
        let mech = dec_mech c in
        let ct = dec_cert c in
        `Conv
          ( k,
            {
              Conversion.src = k.Shared_cache.Key.src;
              dst = k.Shared_cache.Key.dst;
              byte_width = k.Shared_cache.Key.byte_width;
              mechanism = mech;
            },
            ct )
    | "shuf" -> (
        match next c with
        | "ok" ->
            let sh = dec_shuffle c in
            let ct = dec_cert c in
            `Shuf_ok (k, sh, ct)
        | "err" ->
            let e = unescape (next c) in
            let (_ : cert option) = dec_cert c in
            `Shuf_err (k, e)
        | t -> failwith ("unknown shuffle tag " ^ t))
    | "swiz" ->
        let sw = dec_swizzle c in
        let ct = dec_cert c in
        `Swiz (k, sw, ct)
    | "stage" -> `Stage (k, dec_staging c)
    | t -> failwith ("unknown entry tag " ^ t)
  in
  if c.pos <> Array.length c.fields then failwith "trailing fields";
  e

let load ?verify path =
  if not (Sys.file_exists path) then empty_report
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error msg -> fail900 path "unreadable: %s" msg
    | contents -> (
        match String.index_opt contents '\n' with
        | None -> fail900 path "missing header"
        | Some nl -> (
            let header = String.sub contents 0 nl in
            let body = String.sub contents (nl + 1) (String.length contents - nl - 1) in
            match String.split_on_char ' ' header with
            | [ m; v; n; ck ] when m = magic -> (
                match
                  (int_of_string_opt v, int_of_string_opt n, int_of_string_opt ("0x" ^ ck))
                with
                | Some v, _, _ when v <> version ->
                    {
                      empty_report with
                      diags =
                        [
                          Diagnostics.warning ~code:"LL901"
                            "plan store %s: format version %d, this build reads %d; \
                             starting cold"
                            path v version;
                        ];
                    }
                | Some _, Some n, Some ck ->
                    if checksum body <> ck then fail900 path "checksum mismatch (corrupt file)"
                    else begin
                      let lines =
                        List.filter (fun l -> l <> "") (String.split_on_char '\n' body)
                      in
                      if List.length lines <> n then
                        fail900 path "entry count mismatch (%d of %d; truncated?)"
                          (List.length lines) n
                      else begin
                        let loaded = ref 0 and rejected = ref 0 and diags = ref [] in
                        let reject d =
                          incr rejected;
                          diags := d :: !diags
                        in
                        let admit_cert (k : Shared_cache.Key.t) plan stored =
                          match verify with
                          | None -> true
                          | Some f -> (
                              match stored with
                              | Some ct ->
                                  ct.verdict = "proved"
                                  && f ~machine:k.Shared_cache.Key.machine plan ct
                              | None -> false)
                        in
                        let ll902 k what =
                          Diagnostics.warning ~code:"LL902"
                            "plan store %s: %s for %s rejected: certificate missing or no \
                             longer verifies"
                            path what k.Shared_cache.Key.machine
                        in
                        List.iteri
                          (fun i line ->
                            match decode_entry line with
                            | exception Failure msg ->
                                reject (warn900 path "entry %d: %s" i msg)
                            | `Conv (k, plan, ct) ->
                                if admit_cert k plan ct then begin
                                  Shared_cache.add_conversion k plan;
                                  incr loaded
                                end
                                else reject (ll902 k "conversion plan")
                            | `Shuf_ok (k, sh, ct) ->
                                if admit_cert k (wrap_shuffle k sh) ct then begin
                                  Shared_cache.add_shuffle k (Ok sh);
                                  incr loaded
                                end
                                else reject (ll902 k "shuffle plan")
                            | `Shuf_err (k, e) ->
                                (* A cached negative result carries no
                                   certificate; integrity is the
                                   checksum's job. *)
                                Shared_cache.add_shuffle k (Error e);
                                incr loaded
                            | `Swiz (k, sw, ct) ->
                                if admit_cert k (wrap_swizzle k sw) ct then begin
                                  Shared_cache.add_swizzle k sw;
                                  incr loaded
                                end
                                else reject (ll902 k "swizzle plan")
                            | `Stage (k, st) ->
                                let structurally_ok =
                                  match st with
                                  | None -> true
                                  | Some s -> Layout.is_invertible s.Operand_staging.mem
                                in
                                if structurally_ok then begin
                                  Shared_cache.add_staging k st;
                                  incr loaded
                                end
                                else reject (ll902 k "staging plan"))
                          lines;
                        { loaded = !loaded; rejected = !rejected; diags = List.rev !diags }
                      end
                    end
                | _, _, _ -> fail900 path "unparseable header %S" header)
            | _ -> fail900 path "bad magic in header %S" header))
