(** Warp-shuffle codegen for [tl.gather] (Section 5.5).

    When every element along the gathered axis lives within one warp
    ([L_Wrp] has no component on the axis), the gather runs as
    [2^|L_Thr^axis|] rounds of warp shuffles instead of a shared-memory
    round trip. *)

open Linear_layout

type plan =
  | Warp_shuffle of { rounds : int; shuffles : int }
      (** [rounds] per output element; [shuffles] total per warp. *)
  | Shared_fallback

(** [plan layout ~axis] — [layout] is the common layout of [src] and
    [index]. *)
val plan : Layout.t -> axis:int -> plan

(** Reference gather semantics on distributed data: [src] and [index]
    share a layout; the result holds
    [src[..., index[pos], ...]] along [axis]. *)
val execute : src:Gpusim.Dist.t -> index:Gpusim.Dist.t -> axis:int -> Gpusim.Dist.t

val cost : Gpusim.Machine.t -> Layout.t -> axis:int -> plan -> Gpusim.Cost.t
