open Linear_layout

type mechanism =
  | No_op
  | Register_permute
  | Warp_shuffle of Shuffle.t
  | Warp_shuffle_compressed of Shuffle.t
  | Shared_memory of Swizzle_opt.t
  | Global_roundtrip

type plan = { src : Layout.t; dst : Layout.t; byte_width : int; mechanism : mechanism }

let conversion_map ~src ~dst =
  let a = Layout.Memo.flatten_outs src and b = Layout.Memo.flatten_outs dst in
  Layout.Memo.compose (Layout.Memo.pseudo_invert b) a

let mechanism_name = function
  | No_op -> "no-op"
  | Register_permute -> "register permutation"
  | Warp_shuffle _ -> "warp shuffle"
  | Warp_shuffle_compressed _ -> "warp shuffle (broadcast)"
  | Shared_memory _ -> "shared memory"
  | Global_roundtrip -> "global memory (cross-CTA)"

let mechanism_slug = function
  | No_op -> "noop"
  | Register_permute -> "register_permute"
  | Warp_shuffle _ -> "warp_shuffle"
  | Warp_shuffle_compressed _ -> "warp_shuffle_compressed"
  | Shared_memory _ -> "shared_memory"
  | Global_roundtrip -> "global_roundtrip"

let plan machine ~src ~dst ~byte_width =
  let mech =
    if Layout.equal src dst then No_op
    else
      let a = Layout.Memo.flatten_outs src and b = Layout.Memo.flatten_outs dst in
      let same d = Layout.Memo.flat_columns a d = Layout.Memo.flat_columns b d in
      if same Dims.lane && same Dims.warp && same Dims.block then Register_permute
      else if not (same Dims.block) then Global_roundtrip
      else
        match Shuffle.plan machine ~src ~dst ~byte_width with
        | Ok p -> Warp_shuffle p
        | Error _ -> (
            (* Register-only broadcasting: shuffle the representatives. *)
            let src_c = Linear_layout.Sliced.compress src ~in_dim:Dims.register in
            let dst_c = Linear_layout.Sliced.compress dst ~in_dim:Dims.register in
            if Layout.equal src_c src && Layout.equal dst_c dst then
              Shared_memory (Swizzle_opt.optimal machine ~src ~dst ~byte_width)
            else
              match Shuffle.plan machine ~src:src_c ~dst:dst_c ~byte_width with
              | Ok inner -> Warp_shuffle_compressed inner
              | Error _ -> Shared_memory (Swizzle_opt.optimal machine ~src ~dst ~byte_width))
  in
  Obs.Metrics.incr ("codegen.conversion." ^ mechanism_slug mech);
  { src; dst; byte_width; mechanism = mech }

let execute_algebraic plan (d : Gpusim.Dist.t) =
  (* For every destination hardware point, read the value from the
     source point holding the same logical element. *)
  let a = Layout.Memo.flatten_outs plan.src in
  let a_pinv = Layout.Memo.pseudo_invert (Layout.flatten_ins a) in
  let dst_flat = Layout.flatten_outs plan.dst in
  let n = 1 lsl Layout.total_in_bits plan.dst in
  let data =
    Array.init n (fun hw_dst ->
        let logical = Layout.apply_flat dst_flat hw_dst in
        let hw_src = Layout.apply_flat a_pinv logical in
        d.Gpusim.Dist.data.(hw_src))
  in
  { Gpusim.Dist.layout = plan.dst; data }

let execute plan d =
  match plan.mechanism with
  | No_op -> { d with Gpusim.Dist.layout = plan.dst }
  | Warp_shuffle p -> Shuffle.execute p d
  | Warp_shuffle_compressed inner ->
      (* Compress into the shuffle's source layout, exchange the
         representatives on the real executor, then re-broadcast from
         the shuffle's destination into the duplicate registers. *)
      let compressed = execute_algebraic { plan with dst = inner.Shuffle.src; mechanism = No_op } d in
      let compressed = { compressed with Gpusim.Dist.layout = inner.Shuffle.src } in
      let shuffled = Shuffle.execute inner compressed in
      execute_algebraic { plan with src = inner.Shuffle.dst; mechanism = No_op } shuffled
  | Register_permute | Shared_memory _ | Global_roundtrip -> execute_algebraic plan d

let cost machine plan =
  match plan.mechanism with
  | No_op -> Gpusim.Cost.zero ()
  | Register_permute ->
      let c = Gpusim.Cost.zero () in
      c.Gpusim.Cost.alu <- 1 lsl Layout.in_bits plan.src Dims.register;
      c
  | Warp_shuffle p -> Shuffle.cost p
  | Warp_shuffle_compressed inner ->
      let c = Shuffle.cost inner in
      (* Register moves to compress and re-broadcast. *)
      c.Gpusim.Cost.alu <-
        c.Gpusim.Cost.alu
        + (1 lsl Layout.in_bits inner.Shuffle.src Dims.register)
        + (1 lsl Layout.in_bits plan.dst Dims.register);
      c
  | Shared_memory s ->
      (* Per side: ordinary vectorized accesses with the predicted
         wavefronts, or a 4x-ganged matrix instruction when the
         ldmatrix/stmatrix tile divides the register-to-offset map
         (Section 5.3) and the machine has the instruction. *)
      let byte_width = plan.byte_width in
      let mem_inv = Layout.Memo.invert (Layout.Memo.flatten_outs s.Swizzle_opt.mem) in
      let c = Gpusim.Cost.zero () in
      let side ~layout ~predicted ~matrix_cap =
        let warps = 1 lsl Layout.in_bits layout Dims.warp in
        let insts =
          max 1 (1 lsl Layout.in_bits layout Dims.register / (1 lsl s.Swizzle_opt.vec_bits))
          * warps
        in
        let matrix_ok =
          matrix_cap
          && Simd.can_use_ldmatrix
               (Layout.Memo.compose mem_inv (Layout.Memo.flatten_outs layout))
               ~byte_width
        in
        if matrix_ok then begin
          let ganged = max 1 (insts / 4) in
          c.Gpusim.Cost.ldmatrix <- c.Gpusim.Cost.ldmatrix + ganged;
          c.Gpusim.Cost.smem_wavefronts <- c.Gpusim.Cost.smem_wavefronts + ganged
        end
        else begin
          c.Gpusim.Cost.smem_insts <- c.Gpusim.Cost.smem_insts + insts;
          c.Gpusim.Cost.smem_wavefronts <- c.Gpusim.Cost.smem_wavefronts + (insts * predicted);
          c.Gpusim.Cost.alu <- c.Gpusim.Cost.alu + (2 * insts)
        end
      in
      side ~layout:plan.src ~predicted:s.Swizzle_opt.store_wavefronts
        ~matrix_cap:machine.Gpusim.Machine.has_stmatrix;
      side ~layout:plan.dst ~predicted:s.Swizzle_opt.load_wavefronts
        ~matrix_cap:machine.Gpusim.Machine.has_ldmatrix;
      c.Gpusim.Cost.barriers <- 1;
      c
  | Global_roundtrip ->
      (* Spill everything to global memory, grid-synchronize, reload. *)
      let c = Gpusim.Cost.zero () in
      let side l =
        let regs = 1 lsl Layout.in_bits l Dims.register in
        let units =
          (1 lsl Layout.in_bits l Dims.warp) * (1 lsl Layout.in_bits l Dims.block)
        in
        let vec = max 1 (Layout.num_consecutive l ~in_dim:Dims.register) in
        c.Gpusim.Cost.gmem_insts <- c.Gpusim.Cost.gmem_insts + (max 1 (regs / vec) * units);
        c.Gpusim.Cost.gmem_transactions <-
          c.Gpusim.Cost.gmem_transactions
          + ((1 lsl Layout.total_out_bits l) * plan.byte_width / 32)
      in
      side plan.src;
      side plan.dst;
      (* Grid synchronization is far heavier than a CTA barrier. *)
      c.Gpusim.Cost.barriers <- 8;
      c
