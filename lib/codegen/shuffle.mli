(** Warp-shuffle layout conversion (Section 5.4, "Intra-warp Data
    Exchange", illustrated in Figure 4).

    Given distributed layouts [A] (source) and [B] (destination) over
    the same logical tensor with identical warp columns and no
    broadcasting, elements are exchanged in [2^|R|] shuffle rounds:
    [V] is the vectorized common register basis, [I] the common thread
    basis, [G = { e_i xor f_i }] pairs up the differing thread bases,
    and [R] extends [V u I u G] to a basis of the whole space.  Each
    round exchanges the affine subspace [R(i) xor span(V u I u G)], one
    vectorized element per thread. *)

open Linear_layout

type t = {
  src : Layout.t;
  dst : Layout.t;
  vec : int list;  (** V: common register basis exchanged as one payload *)
  common_thr : int list;  (** I *)
  g : int list;  (** G *)
  ext : int list;  (** R: coset representatives basis *)
  rounds : int;  (** [2^|R|] *)
  shuffles_per_round : int;  (** payload split into 4-byte shuffles *)
}

(** [plan machine ~src ~dst ~byte_width] builds the shuffle plan.
    [Error] when the conversion leaves the warp (warp columns differ)
    or either layout broadcasts. *)
val plan : Gpusim.Machine.t -> src:Layout.t -> dst:Layout.t -> byte_width:int -> (t, string) result

(** Total shuffle instructions per warp. *)
val total_shuffles : t -> int

(** [execute plan dist] moves the data and returns it in the
    destination layout, checking on the way that every round is a valid
    warp shuffle (each lane sends exactly one vectorized payload and
    receives exactly one).  Raises [Failure] if the plan is unsound. *)
val execute : t -> Gpusim.Dist.t -> Gpusim.Dist.t

(** Event counts for the cost model. *)
val cost : t -> Gpusim.Cost.t
