(** Disk persistence of certified plans: warm-start for the
    {!Shared_cache}.

    A store file is a snapshot of the shared cache — every conversion,
    shuffle, swizzle and staging entry, serialized with a versioned
    line-oriented codec (layouts in the {!Linear_layout.Parse} grammar)
    together with the F2 translation-validation certificate of the
    producing process.  Files are written atomically (a temp file in
    the same directory, then [Sys.rename]) so a crashed or concurrent
    writer can never leave a half-written store behind, and carry an
    entry count plus a checksum over the payload so truncation and bit
    flips are detected.

    Loading {e never} produces a wrong plan: any corruption degrades to
    a cache miss with an [LL9xx] warning ([LL900] corrupt/unreadable,
    [LL901] version mismatch, [LL902] certificate rejected), and when a
    [verify] callback is supplied — the server passes
    [Analysis.Transval] re-certification — a conversion, shuffle or
    swizzle entry is only admitted if its stored certificate claims
    [proved] {e and} the callback re-proves it.  Certification lives a
    library above this one, so both directions are callbacks: [certify]
    stamps entries at save time, [verify] re-checks them at load time.

    Version policy: {!version} is a single integer; any change to the
    line format bumps it, old files load as misses ([LL901]) and are
    rewritten in the new format by the next save — no migration code,
    because a store is only ever a cache. *)

open Linear_layout

(** Current codec version. *)
val version : int

(** The certificate stamped on a persisted plan: the producing
    process's {!Analysis.Transval} result, reduced to its stable names
    ([method_] is ["symbolic"] or ["algebraic"], [verdict] is
    ["proved"] / ["refuted"] / ["failed"]). *)
type cert = { method_ : string; points : int; verdict : string }

type load_report = {
  loaded : int;  (** entries admitted into the shared cache *)
  rejected : int;  (** entries dropped (corrupt or certificate-rejected) *)
  diags : Diagnostics.t list;  (** LL900-LL902 warnings, empty on a clean load *)
}

val empty_report : load_report

(** [save ?certify path] atomically writes a snapshot of the
    {!Shared_cache} to [path] and returns the number of entries
    written.  [certify] (given the machine {e name} and a conversion
    plan — shuffle and swizzle entries are wrapped as conversion plans
    with the corresponding mechanism) produces the certificate to
    stamp; entries it declines are persisted uncertified and will be
    rejected by a verifying load.  Staging plans carry no certificate:
    they are re-checked structurally at load time. *)
val save : ?certify:(machine:string -> Conversion.plan -> cert option) -> string -> int

(** [load ?verify path] reads a store file and inserts every admitted
    entry into the {!Shared_cache}.  A missing file is a clean cold
    start (empty report, no diagnostics).  With [verify] supplied,
    certified entries are re-proved before admission (see above);
    without it entries are admitted on integrity alone — tests only;
    the server always verifies. *)
val load : ?verify:(machine:string -> Conversion.plan -> cert -> bool) -> string -> load_report
