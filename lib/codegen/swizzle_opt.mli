(** Optimal shared-memory swizzling (Section 5.4, "Optimal Swizzling",
    and Appendix 9.2).

    Given a source distributed layout [A] (which stores to shared
    memory) and a destination layout [B] (which loads from it), computes
    a memory layout [M : Vec x Bank x Seg -> tensor] that maximizes
    read/write vectorization and provably minimizes bank conflicts
    (Lemmas 9.4–9.6). *)

open Linear_layout

type t = {
  mem : Layout.t;  (** invertible offset -> tensor layout *)
  vec : int list;  (** the vectorization basis [V] *)
  seg : int list;  (** the segment basis [S_Idx] *)
  bank : int list;  (** the bank basis [S_Bank] *)
  vec_bits : int;  (** [log2] elements per vectorized access *)
  store_wavefronts : int;  (** predicted wavefronts per store instruction *)
  load_wavefronts : int;  (** predicted per load instruction *)
}

(** [optimal machine ~src ~dst ~byte_width] runs the algorithm of
    Section 5.4. The layouts must be surjective onto the same logical
    space. *)
val optimal : Gpusim.Machine.t -> src:Layout.t -> dst:Layout.t -> byte_width:int -> t

(** [predict_wavefronts machine ~vec ~seg ~dist ~byte_width] is the
    algebraic wavefront count of Lemma 9.4 for one warp-wide access of
    the distributed layout [dist] against a memory layout with
    vectorization basis [vec] and segment basis [seg]:
    [n * 2^dim(span(vec u seg) n span(bank-reduced thread columns))]. *)
val predict_wavefronts :
  Gpusim.Machine.t -> vec:int list -> seg:int list -> dist:Layout.t -> byte_width:int -> int

(** [simulate_wavefronts machine ~mem ~dist ~byte_width ~vec] is the
    brute-force ground truth: one instruction covers the same register
    slots in every lane (the registers whose columns lie in the
    vectorization basis [vec] form the payload), and each instruction
    is fed to the bank simulator.  Returns the total wavefronts across
    all instructions of one warp together with the instruction count. *)
val simulate_wavefronts :
  Gpusim.Machine.t ->
  mem:Layout.t ->
  dist:Layout.t ->
  byte_width:int ->
  vec:int list ->
  int * int

(** Round-trip a distributed tensor through shared memory laid out by
    [mem] (store from [src], barrier, load into [dst]); returns the
    re-distributed data for correctness checks. *)
val execute :
  mem:Layout.t -> dst:Layout.t -> Gpusim.Dist.t -> Gpusim.Dist.t

(** Cost of a full conversion through shared memory with this plan:
    per-warp stores + barrier + loads, each instruction costing its
    wavefronts. *)
val cost : Gpusim.Machine.t -> t -> src:Layout.t -> dst:Layout.t -> byte_width:int -> Gpusim.Cost.t
