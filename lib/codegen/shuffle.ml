open Linear_layout

type t = {
  src : Layout.t;
  dst : Layout.t;
  vec : int list;
  common_thr : int list;
  g : int list;
  ext : int list;
  rounds : int;
  shuffles_per_round : int;
}

let nonzero_cols l d = List.filter (fun c -> c <> 0) (Layout.Memo.flat_columns l d)
let set_diff a b = List.filter (fun x -> not (List.mem x b)) a
let set_inter a b = List.filter (fun x -> List.mem x b) a

let plan machine ~src ~dst ~byte_width =
  let a = Layout.Memo.flatten_outs src and b = Layout.Memo.flatten_outs dst in
  if Layout.out_dims a <> Layout.out_dims b then Error "layouts cover different logical spaces"
  else if Layout.Memo.flat_columns a Dims.warp <> Layout.Memo.flat_columns b Dims.warp then
    Error "conversion crosses warps"
  else if Layout.Memo.flat_columns a Dims.block <> Layout.Memo.flat_columns b Dims.block then
    Error "conversion crosses CTAs"
  else if not (Layout.Memo.is_invertible a && Layout.Memo.is_invertible b) then
    Error "broadcasting layouts need the shared-memory path"
  else begin
    ignore machine;
    let d = Layout.total_out_bits a in
    let a_reg = nonzero_cols a Dims.register and b_reg = nonzero_cols b Dims.register in
    let a_thr = nonzero_cols a Dims.lane and b_thr = nonzero_cols b Dims.lane in
    let vec = set_inter a_reg b_reg in
    let common_thr = set_inter a_thr b_thr in
    let e = List.sort compare (set_diff a_thr common_thr) in
    let f = List.sort compare (set_diff b_thr common_thr) in
    if List.length e <> List.length f then Error "thread spaces of unequal size"
    else begin
      let g = List.map2 ( lxor ) e f in
      let vig = vec @ common_thr @ g in
      if F2.Subspace.dim vig <> List.length vig then
        Error "V u I u G is not independent (unexpected for distributed layouts)"
      else
        let ext = F2.Subspace.complete_basis ~dim:d vig in
        let payload_bytes = (1 lsl List.length vec) * byte_width in
        Obs.Metrics.observe "codegen.shuffle.rounds" (1 lsl List.length ext);
        Obs.Metrics.observe "codegen.shuffle.vec_bits" (List.length vec);
        Ok
          {
            src;
            dst;
            vec;
            common_thr;
            g;
            ext;
            rounds = 1 lsl List.length ext;
            shuffles_per_round = max 1 (payload_bytes / 4);
          }
    end
  end

let total_shuffles p = p.rounds * p.shuffles_per_round

(* Split a flattened hardware index into (register, lane+warp) parts;
   registers occupy the low bits in canonical order. *)
let thread_of_hw layout hw = hw lsr Layout.in_bits layout Dims.register

let execute p (src_dist : Gpusim.Dist.t) =
  if not (Layout.equal src_dist.Gpusim.Dist.layout p.src) then
    failwith "Shuffle.execute: distribution does not match the plan's source layout";
  let a = Layout.Memo.flatten_outs p.src and b = Layout.Memo.flatten_outs p.dst in
  let a_inv = Layout.Memo.invert (Layout.flatten_ins a)
  and b_inv = Layout.Memo.invert (Layout.flatten_ins b) in
  let dst = Array.make (1 lsl Layout.total_in_bits p.dst) 0 in
  let vig = Array.to_list (F2.Subspace.span_elements (p.vec @ p.common_thr @ p.g)) in
  let reps = F2.Subspace.span_elements p.ext in
  let vec_basis = p.vec in
  Array.iter
    (fun rep ->
      (* Check the round is a legal warp shuffle: per thread, exactly one
         vectorized payload sent and one received. *)
      let sends = Hashtbl.create 64 and recvs = Hashtbl.create 64 in
      List.iter
        (fun s ->
          let x = rep lxor s in
          let hw_src = Layout.apply_flat a_inv x and hw_dst = Layout.apply_flat b_inv x in
          dst.(hw_dst) <- src_dist.Gpusim.Dist.data.(hw_src);
          let payload = F2.Subspace.reduce vec_basis x in
          let note tbl thr =
            let prev = match Hashtbl.find_opt tbl thr with Some l -> l | None -> [] in
            if not (List.mem payload prev) then Hashtbl.replace tbl thr (payload :: prev)
          in
          note sends (thread_of_hw p.src hw_src);
          note recvs (thread_of_hw p.dst hw_dst))
        vig;
      Hashtbl.iter
        (fun _ payloads ->
          if List.length payloads <> 1 then
            failwith "Shuffle.execute: a thread sends more than one payload per round")
        sends;
      Hashtbl.iter
        (fun _ payloads ->
          if List.length payloads <> 1 then
            failwith "Shuffle.execute: a thread receives more than one payload per round")
        recvs)
    reps;
  { Gpusim.Dist.layout = p.dst; data = dst }

let cost p =
  let c = Gpusim.Cost.zero () in
  c.Gpusim.Cost.shuffles <- total_shuffles p;
  (* Address computation and predication around each shuffle. *)
  c.Gpusim.Cost.alu <- 2 * total_shuffles p;
  c
