open Linear_layout

type slot_map = { src_regs : int; dst_base : int; dst_regs : int; total_slots : int }

let split_hw ~rb ~lb hw = (hw land ((1 lsl rb) - 1), (hw lsr rb) land ((1 lsl lb) - 1), hw lsr (rb + lb))

let scatter_bits sel positions =
  List.fold_left
    (fun (acc, i) pos -> ((if sel land (1 lsl i) <> 0 then acc lor (1 lsl pos) else acc), i + 1))
    (0, 0) positions
  |> fst

(* Emit the stores or loads of one side of a shared-memory round trip:
   one vectorized instruction per non-vectorized register combination,
   with per-warp/lane element addresses computed through the memory
   layout's inverse. *)
let shared_side ~machine:_ ~mem_inv ~layout ~slot_base ~vec ~byte_width ~warps ~lanes ~is_store =
  let flat = Layout.flatten_outs layout in
  let rb = Layout.in_bits layout Dims.register in
  let reg_cols = Array.of_list (Layout.flat_columns flat Dims.register) in
  let vec_pos =
    List.map
      (fun v ->
        match Array.to_list reg_cols |> List.mapi (fun i c -> (i, c))
              |> List.find_opt (fun (_, c) -> c = v)
        with
        | Some (i, _) -> i
        | None -> failwith "Lower: vectorization column missing from register columns")
      vec
  in
  let other_idx =
    List.filter (fun k -> not (List.mem k vec_pos)) (List.init rb Fun.id)
  in
  let reg_of ~group ~within = scatter_bits within vec_pos lor scatter_bits group other_idx in
  let offset_of w l r =
    let hw = r lor (l lsl rb) lor (w lsl (rb + Layout.in_bits layout Dims.lane)) in
    Layout.apply_flat mem_inv (Layout.apply_flat flat hw)
  in
  List.init (1 lsl List.length other_idx) (fun g ->
      let slots = List.init (1 lsl List.length vec_pos) (fun c -> slot_base + reg_of ~group:g ~within:c) in
      let addr =
        Array.init warps (fun w -> Array.init lanes (fun l -> offset_of w l (reg_of ~group:g ~within:0)))
      in
      if is_store then Gpusim.Isa.St_shared { slots; addr; byte_width }
      else Gpusim.Isa.Ld_shared { slots; addr; byte_width })

(* Emit the Sel/Shfl/Scatter rounds of a warp-shuffle plan, with the
   source value in slots [src_base..] of [src]'s register order and the
   destination written to [dst_base..]. *)
let shuffle_instrs (p : Shuffle.t) ~src ~dst ~src_base ~dst_base ~stage_send ~stage_recv ~warps
    ~lanes =
  let a = Layout.flatten_outs src and b = Layout.flatten_outs dst in
  let a_inv = Layout.invert (Layout.flatten_ins a) in
  let b_inv = Layout.invert (Layout.flatten_ins b) in
  let rb_s = Layout.in_bits src Dims.register in
  let rb_d = Layout.in_bits dst Dims.register in
  let lb = Layout.in_bits src Dims.lane in
  let v = List.length p.Shuffle.vec in
  let vig = F2.Subspace.span_elements (p.Shuffle.vec @ p.Shuffle.common_thr @ p.Shuffle.g) in
  let reps = F2.Subspace.span_elements p.Shuffle.ext in
  Array.to_list reps
  |> List.concat_map (fun rep ->
         List.concat_map
           (fun pv ->
             let sel = Array.make_matrix warps lanes (-1) in
             let lane_tbl = Array.make_matrix warps lanes 0 in
             let keep = Array.make_matrix warps lanes false in
             let scat = Array.make_matrix warps lanes (-1) in
             Array.iteri
               (fun idx sp ->
                 if idx land ((1 lsl v) - 1) = pv then begin
                   let x = rep lxor sp in
                   let r_s, l_s, w_s = split_hw ~rb:rb_s ~lb (Layout.apply_flat a_inv x) in
                   let r_d, l_d, w_d = split_hw ~rb:rb_d ~lb (Layout.apply_flat b_inv x) in
                   if w_s <> w_d then failwith "Lower: shuffle plan crosses warps";
                   sel.(w_s).(l_s) <- src_base + r_s;
                   lane_tbl.(w_d).(l_d) <- l_s;
                   keep.(w_d).(l_d) <- true;
                   scat.(w_d).(l_d) <- dst_base + r_d
                 end)
               vig;
             [
               Gpusim.Isa.Sel { dst = stage_send; src_slot = sel };
               Gpusim.Isa.Shfl_idx
                 { dst = stage_recv; src = stage_send; src_lane = lane_tbl; keep };
               Gpusim.Isa.Scatter { src = stage_recv; dst_slot = scat };
             ])
           (List.init (1 lsl v) Fun.id))

(* Slot index arithmetic for register compression: [kept] lists the
   non-free register bit positions in increasing order. *)
let kept_bits layout =
  let mask =
    try List.assoc Dims.register (Layout.free_variable_masks layout) with Not_found -> 0
  in
  List.filter
    (fun k -> not (F2.Bitvec.bit mask k))
    (List.init (Layout.in_bits layout Dims.register) Fun.id)

let embed_slot kept j = scatter_bits j kept 
let extract_slot kept j =
  fst
    (List.fold_left
       (fun (acc, i) k -> ((if j land (1 lsl k) <> 0 then acc lor (1 lsl i) else acc), i + 1))
       (0, 0) kept)

let conversion machine (plan : Conversion.plan) =
  let src = plan.Conversion.src and dst = plan.Conversion.dst in
  let src_regs = Layout.in_size src Dims.register in
  let dst_regs = Layout.in_size dst Dims.register in
  let lanes = Layout.in_size src Dims.lane in
  let warps = Layout.in_size src Dims.warp in
  if Layout.in_size dst Dims.lane <> lanes || Layout.in_size dst Dims.warp <> warps then
    failwith "Lower.conversion: source and destination CTAs differ";
  let map =
    { src_regs; dst_base = src_regs; dst_regs; total_slots = src_regs + dst_regs + 2 }
  in
  let stage_send = src_regs + dst_regs and stage_recv = src_regs + dst_regs + 1 in
  let smem_elems = 1 lsl Layout.total_out_bits src in
  let body =
    match plan.Conversion.mechanism with
    | Conversion.No_op ->
        List.init src_regs (fun r -> Gpusim.Isa.Mov { dst = map.dst_base + r; src = r })
    | Conversion.Register_permute ->
        (* Map register slots: slot [j] of the destination holds the
           element whose register-part image is the XOR of the basis
           columns selected by [j]'s bits; find the source slot with the
           same image (lane and warp contributions agree by
           classification). *)
        let slot_images layout regs =
          let cols = Array.of_list (Layout.flat_columns (Layout.flatten_outs layout) Dims.register) in
          Array.init regs (fun slot ->
              let acc = ref 0 in
              Array.iteri (fun k c -> if slot land (1 lsl k) <> 0 then acc := !acc lxor c) cols;
              !acc)
        in
        let src_img = slot_images src src_regs and dst_img = slot_images dst dst_regs in
        let find_src image =
          let rec go i =
            if i >= src_regs then None else if src_img.(i) = image then Some i else go (i + 1)
          in
          go 0
        in
        List.init dst_regs (fun j ->
            match find_src dst_img.(j) with
            | Some i -> Gpusim.Isa.Mov { dst = map.dst_base + j; src = i }
            | None -> (
                (* A broadcast destination slot: duplicate the
                   representative already materialized below it. *)
                match
                  List.find_opt (fun j' -> dst_img.(j') = dst_img.(j)) (List.init j Fun.id)
                with
                | Some j' -> Gpusim.Isa.Mov { dst = map.dst_base + j; src = map.dst_base + j' }
                | None -> failwith "Lower: register permutation has no source for a slot"))
    | Conversion.Warp_shuffle p ->
        shuffle_instrs p ~src ~dst ~src_base:0 ~dst_base:map.dst_base ~stage_send ~stage_recv
          ~warps ~lanes
    | Conversion.Warp_shuffle_compressed inner ->
        (* Compress the duplicated source registers into a compact
           staging block, run the shuffle there, then re-broadcast into
           the destination's register file. *)
        let src_c = inner.Shuffle.src and dst_c = inner.Shuffle.dst in
        let sc = Layout.in_size src_c Dims.register in
        let dc = Layout.in_size dst_c Dims.register in
        let base_sc = src_regs + dst_regs + 2 and base_dc = src_regs + dst_regs + 2 + sc in
        let stage_send' = base_dc + dc and stage_recv' = base_dc + dc + 1 in
        let kept_s = kept_bits src and kept_d = kept_bits dst in
        let compress =
          List.init sc (fun j -> Gpusim.Isa.Mov { dst = base_sc + j; src = embed_slot kept_s j })
        in
        let body =
          shuffle_instrs inner ~src:src_c ~dst:dst_c ~src_base:base_sc ~dst_base:base_dc
            ~stage_send:stage_send' ~stage_recv:stage_recv' ~warps ~lanes
        in
        let expand =
          List.init dst_regs (fun j ->
              Gpusim.Isa.Mov
                { dst = map.dst_base + j; src = base_dc + extract_slot kept_d j })
        in
        compress @ body @ expand
    | Conversion.Global_roundtrip ->
        failwith
          "Lower: cross-CTA conversions spill through global memory; the warp-level ISA does \
           not model the grid"
    | Conversion.Shared_memory sw ->
        let mem_inv = Layout.invert (Layout.flatten_outs sw.Swizzle_opt.mem) in
        shared_side ~machine ~mem_inv ~layout:src ~slot_base:0 ~vec:sw.Swizzle_opt.vec
          ~byte_width:plan.Conversion.byte_width ~warps ~lanes ~is_store:true
        @ [ Gpusim.Isa.Bar_sync ]
        @ shared_side ~machine ~mem_inv ~layout:dst ~slot_base:map.dst_base
            ~vec:sw.Swizzle_opt.vec ~byte_width:plan.Conversion.byte_width ~warps ~lanes
            ~is_store:false
  in
  let extra =
    match plan.Conversion.mechanism with
    | Conversion.Warp_shuffle_compressed inner ->
        Layout.in_size inner.Shuffle.src Dims.register
        + Layout.in_size inner.Shuffle.dst Dims.register + 2
    | _ -> 0
  in
  ({ Gpusim.Isa.warps; lanes; smem_elems; body }, { map with total_slots = map.total_slots + extra })

let load_state program map (d : Gpusim.Dist.t) =
  let st = Gpusim.Isa.make_state program ~slots:map.total_slots in
  let lanes = program.Gpusim.Isa.lanes in
  for w = 0 to program.Gpusim.Isa.warps - 1 do
    for l = 0 to lanes - 1 do
      for r = 0 to map.src_regs - 1 do
        let hw = r lor (l * map.src_regs) lor (w * map.src_regs * lanes) in
        st.Gpusim.Isa.regs.(w).(l).(r) <- Gpusim.Dist.get d hw
      done
    done
  done;
  st

let store_dist map ~dst (st : Gpusim.Isa.state) =
  let lanes = Array.length st.Gpusim.Isa.regs.(0) in
  let data =
    Array.init (map.dst_regs * lanes * Array.length st.Gpusim.Isa.regs) (fun hw ->
        let r = hw mod map.dst_regs in
        let l = hw / map.dst_regs mod lanes in
        let w = hw / (map.dst_regs * lanes) in
        st.Gpusim.Isa.regs.(w).(l).(map.dst_base + r))
  in
  { Gpusim.Dist.layout = dst; data }

let run machine plan d =
  let program, map = conversion machine plan in
  let st = load_state program map d in
  let cost = Gpusim.Isa.run machine program st in
  (store_dist map ~dst:plan.Conversion.dst st, cost)

let gather machine ~src ~index ~axis =
  ignore machine;
  let l = src.Gpusim.Dist.layout in
  match Gather.plan l ~axis with
  | Gather.Shared_fallback -> Error "gather leaves the warp: shared-memory fallback"
  | Gather.Warp_shuffle _ ->
      let rb = Layout.in_bits l Dims.register in
      let lb = Layout.in_bits l Dims.lane in
      let regs = 1 lsl rb in
      let lanes = 1 lsl lb in
      let warps = 1 lsl Layout.in_bits l Dims.warp in
      let flat = Layout.flatten_outs l in
      let out_dims = Layout.out_dims l in
      let axis_size = Layout.out_size l (Dims.dim axis) in
      let t_idx =
        match Gpusim.Dist.to_logical index with
        | Ok t -> t
        | Error e -> failwith ("Lower.gather: " ^ e)
      in
      (* Per warp, an owner table: logical element -> (register, lane). *)
      let owners = Array.init warps (fun _ -> Hashtbl.create 256) in
      for hw = 0 to (regs * lanes * warps) - 1 do
        let w = hw lsr (rb + lb) in
        let logical = Layout.apply_flat flat hw in
        if not (Hashtbl.mem owners.(w) logical) then
          Hashtbl.add owners.(w) logical (hw land (regs - 1), (hw lsr rb) land (lanes - 1))
      done;
      let map = { src_regs = regs; dst_base = regs; dst_regs = regs; total_slots = (2 * regs) + 2 } in
      let stage_send = 2 * regs and stage_recv = (2 * regs) + 1 in
      let body = ref [] in
      (* For each destination register slot, serve all lanes' requests in
         rounds: each source lane publishes one register per round. *)
      for r_d = 0 to regs - 1 do
        (* request.(w).(lane) = Some (src_slot, src_lane) until served *)
        let pending =
          Array.init warps (fun w ->
              Array.init lanes (fun lane ->
                  let hw = r_d lor (lane lsl rb) lor (w lsl (rb + lb)) in
                  let logical = Layout.apply_flat flat hw in
                  let coords = Layout.unflatten_value out_dims logical in
                  let idx = t_idx.(logical) land (axis_size - 1) in
                  let coords' =
                    List.map
                      (fun (d, c) -> (d, if d = Dims.dim axis then idx else c))
                      coords
                  in
                  let wanted = Layout.flatten_value out_dims coords' in
                  match Hashtbl.find_opt owners.(w) wanted with
                  | Some (r_s, l_s) -> Some (r_s, l_s)
                  | None -> failwith "Lower.gather: source element not in warp"))
        in
        let remaining () =
          Array.exists (fun row -> Array.exists Option.is_some row) pending
        in
        while remaining () do
          let sel = Array.make_matrix warps lanes (-1) in
          let lane_tbl = Array.make_matrix warps lanes 0 in
          let keep = Array.make_matrix warps lanes false in
          let scat = Array.make_matrix warps lanes (-1) in
          for w = 0 to warps - 1 do
            (* Each source lane serves at most one request this round. *)
            let serving = Array.make lanes None in
            for lane = 0 to lanes - 1 do
              match pending.(w).(lane) with
              | Some (r_s, l_s) when serving.(l_s) = None || serving.(l_s) = Some r_s ->
                  serving.(l_s) <- Some r_s;
                  sel.(w).(l_s) <- r_s;
                  lane_tbl.(w).(lane) <- l_s;
                  keep.(w).(lane) <- true;
                  scat.(w).(lane) <- map.dst_base + r_d;
                  pending.(w).(lane) <- None
              | _ -> ()
            done
          done;
          body :=
            Gpusim.Isa.Scatter { src = stage_recv; dst_slot = scat }
            :: Gpusim.Isa.Shfl_idx
                 { dst = stage_recv; src = stage_send; src_lane = lane_tbl; keep }
            :: Gpusim.Isa.Sel { dst = stage_send; src_slot = sel }
            :: !body
        done
      done;
      Ok
        ( {
            Gpusim.Isa.warps;
            lanes;
            smem_elems = 1;
            body = List.rev !body;
          },
          map )

let reduce ?(op = `Add) machine ~src ~axis =
  ignore machine;
  let l = src.Gpusim.Dist.layout in
  let rb = Layout.in_bits l Dims.register in
  let lb = Layout.in_bits l Dims.lane in
  let wb = Layout.in_bits l Dims.warp in
  let regs = 1 lsl rb and lanes = 1 lsl lb and warps = 1 lsl wb in
  let axis_bits in_dim =
    List.init (Layout.in_bits l in_dim) Fun.id
    |> List.filter (fun k ->
           List.assoc_opt (Dims.dim axis) (Layout.basis l in_dim k)
           |> Option.value ~default:0 <> 0)
  in
  let reg_axis = axis_bits Dims.register in
  let lane_axis = axis_bits Dims.lane in
  let warp_axis = axis_bits Dims.warp in
  (* Slots: [0..regs) source/accumulators (reduced in place), one
     staging slot for shuffle/load traffic. *)
  let stage = regs in
  let map = { src_regs = regs; dst_base = 0; dst_regs = regs; total_slots = regs + 1 } in
  let body = ref [] in
  let emit i = body := i :: !body in
  (* 1. Register tree: fold the axis register bits pairwise. *)
  List.iteri
    (fun step bit ->
      ignore step;
      for r = 0 to regs - 1 do
        if r land (1 lsl bit) = 0 then
          emit (Gpusim.Isa.Bin { op; dst = r; a = r; b = r lor (1 lsl bit) })
      done)
    reg_axis;
  (* Broadcast the partial back into the reduced register positions so
     every register slot carries its group's partial. *)
  List.iter
    (fun bit ->
      for r = 0 to regs - 1 do
        if r land (1 lsl bit) <> 0 then
          emit (Gpusim.Isa.Mov { dst = r; src = r land lnot (1 lsl bit) })
      done)
    reg_axis;
  (* 2. Lane butterfly over the axis lane bits. *)
  List.iter
    (fun bit ->
      let src_lane =
        Array.init warps (fun _ -> Array.init lanes (fun lane -> lane lxor (1 lsl bit)))
      in
      let keep = Array.init warps (fun _ -> Array.make lanes true) in
      for r = 0 to regs - 1 do
        emit (Gpusim.Isa.Shfl_idx { dst = stage; src = r; src_lane; keep });
        emit (Gpusim.Isa.Bin { op; dst = r; a = r; b = stage })
      done)
    lane_axis;
  (* 3. Cross-warp partials via shared memory.  Each warp stores its
     partials; after the barrier everyone accumulates the other warps'
     copies of its own (lane, register) cell. *)
  if warp_axis <> [] then begin
    let cell w lane r = (((w * lanes) + lane) * regs) + r in
    for r = 0 to regs - 1 do
      let addr = Array.init warps (fun w -> Array.init lanes (fun lane -> cell w lane r)) in
      emit (Gpusim.Isa.St_shared { slots = [ r ]; addr; byte_width = 4 })
    done;
    emit Gpusim.Isa.Bar_sync;
    List.iter
      (fun bit ->
        for r = 0 to regs - 1 do
          let addr =
            Array.init warps (fun w ->
                Array.init lanes (fun lane -> cell (w lxor (1 lsl bit)) lane r))
          in
          emit (Gpusim.Isa.Ld_shared { slots = [ stage ]; addr; byte_width = 4 });
          emit (Gpusim.Isa.Bin { op; dst = r; a = r; b = stage })
        done;
        (* Re-publish the grown partials for the next exchange round. *)
        if List.length warp_axis > 1 then begin
          emit Gpusim.Isa.Bar_sync;
          for r = 0 to regs - 1 do
            let addr =
              Array.init warps (fun w -> Array.init lanes (fun lane -> cell w lane r))
            in
            emit (Gpusim.Isa.St_shared { slots = [ r ]; addr; byte_width = 4 })
          done;
          emit Gpusim.Isa.Bar_sync
        end)
      warp_axis
  end;
  let program =
    {
      Gpusim.Isa.warps;
      lanes;
      smem_elems = max 1 (warps * lanes * regs);
      body = List.rev !body;
    }
  in
  (program, map, Layout.remove_out_dim l (Dims.dim axis))

let scan machine ~src ~axis =
  ignore machine;
  let l = src.Gpusim.Dist.layout in
  let rb = Layout.in_bits l Dims.register in
  let lb = Layout.in_bits l Dims.lane in
  let regs = 1 lsl rb and lanes = 1 lsl lb in
  let warps = 1 lsl Layout.in_bits l Dims.warp in
  let axis_bits in_dim =
    List.init (Layout.in_bits l in_dim) Fun.id
    |> List.filter (fun k ->
           List.assoc_opt (Dims.dim axis) (Layout.basis l in_dim k)
           |> Option.value ~default:0 <> 0)
  in
  if axis_bits Dims.warp <> [] then Error "warps split the scanned axis"
  else begin
    let reg_axis = axis_bits Dims.register in
    let lane_axis = axis_bits Dims.lane in
    (* The scan is positional: hardware order along the axis must match
       coordinate order, i.e. axis register/lane bits map to increasing
       coordinates in bit order.  The engine's blocked layouts satisfy
       this; reject otherwise. *)
    let monotone in_dim bits =
      let coords =
        List.map
          (fun k ->
            List.assoc_opt (Dims.dim axis) (Layout.basis l in_dim k)
            |> Option.value ~default:0)
          bits
      in
      List.sort compare coords = coords
    in
    if not (monotone Dims.register reg_axis && monotone Dims.lane lane_axis) then
      Error "axis bits are not in positional order"
    else begin
      let stage = regs in
      (* Slot [regs + 1] is never written: a constant zero used to give
         non-participating lanes a neutral addend. *)
      let zero_slot = regs + 1 in
      let map = { src_regs = regs; dst_base = 0; dst_regs = regs; total_slots = regs + 2 } in
      let body = ref [] in
      let emit i = body := i :: !body in
      (* 1. In-register inclusive scan: for each axis register bit (low
         to high), add the running totals of the lower half into the
         upper half's prefix.  Sequential emulation: iterate positions
         along the register-axis sub-order. *)
      let reg_positions =
        (* register slots sorted by their axis coordinate, grouped by
           non-axis bits *)
        let axis_mask = List.fold_left (fun a b -> a lor (1 lsl b)) 0 reg_axis in
        let groups = Hashtbl.create 16 in
        for r = 0 to regs - 1 do
          let key = r land lnot axis_mask in
          let cur = try Hashtbl.find groups key with Not_found -> [] in
          Hashtbl.replace groups key (r :: cur)
        done;
        Hashtbl.fold (fun _ rs acc -> List.rev rs :: acc) groups []
      in
      List.iter
        (fun group ->
          let rec go = function
            | a :: (b :: _ as rest) ->
                emit (Gpusim.Isa.Bin { op = `Add; dst = b; a = b; b = a });
                go rest
            | _ -> ()
          in
          go group)
        reg_positions;
      (* 2. Hillis-Steele over the axis lane bits: lane [l] adds the
         value from [l - 2^k] (in axis position terms) when its axis
         position has that bit set.  The "last register of the group"
         carries each thread's running total. *)
      let lane_pos lane =
        (* This lane's position along the axis among axis lanes. *)
        List.fold_left
          (fun (acc, i) bit -> ((if lane land (1 lsl bit) <> 0 then acc lor (1 lsl i) else acc), i + 1))
          (0, 0) lane_axis
        |> fst
      in
      let lane_with_pos lane pos =
        List.fold_left
          (fun (acc, i) bit ->
            let cleared = acc land lnot (1 lsl bit) in
            (((if pos land (1 lsl i) <> 0 then cleared lor (1 lsl bit) else cleared), i + 1)))
          (lane, 0) lane_axis
        |> fst
      in
      List.iteri
        (fun step _ ->
          let dist = 1 lsl step in
          (* Every register slot receives the partner's group total.
             The group total of the partner thread is its own prefix in
             the LAST slot of each register group; we add, per slot,
             the partner's total for that slot's group. *)
          let totals_of group = List.nth group (List.length group - 1) in
          let src_lane =
            Array.init warps (fun _ ->
                Array.init lanes (fun lane ->
                    let p = lane_pos lane in
                    if p >= dist then lane_with_pos lane (p - dist) else lane))
          in
          let keep =
            Array.init warps (fun _ -> Array.init lanes (fun lane -> lane_pos lane >= dist))
          in
          List.iter
            (fun group ->
              let total = totals_of group in
              (* Non-participating lanes add zero: reset the stage
                 first, then shuffle with the participation mask. *)
              emit (Gpusim.Isa.Mov { dst = stage; src = zero_slot });
              emit (Gpusim.Isa.Shfl_idx { dst = stage; src = total; src_lane; keep });
              List.iter
                (fun r -> emit (Gpusim.Isa.Bin { op = `Add; dst = r; a = r; b = stage }))
                group)
            reg_positions)
        lane_axis;
      Ok ({ Gpusim.Isa.warps; lanes; smem_elems = 1; body = List.rev !body }, map)
    end
  end
