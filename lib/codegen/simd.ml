open Linear_layout

let vec_tile ~bits ~byte_width =
  let elems = Util.log2 (bits / (byte_width * 8)) in
  Layout.identity1d elems ~in_dim:Dims.register ~out_dim:Dims.offset

let ldmatrix_tile ~byte_width =
  let k = Util.log2 (4 / byte_width) in
  Layout.mul
    (Layout.identity1d k ~in_dim:Dims.register ~out_dim:Dims.offset)
    (Layout.identity1d 2 ~in_dim:Dims.lane ~out_dim:Dims.offset)

let max_vector_bits l ~byte_width ~max_bits =
  let consecutive = Layout.num_consecutive l ~in_dim:Dims.register in
  min (consecutive * byte_width * 8) max_bits

let can_use_ldmatrix ?(permute_registers = true) l ~byte_width =
  if byte_width > 4 || 4 mod byte_width <> 0 then false
  else if Layout.divide_left l (ldmatrix_tile ~byte_width) <> None then true
  else if not permute_registers then false
  else begin
    (* Generalized vectorization (Section 5.3): a register permutation
       P_Reg may expose the tile.  The permuted layout divides the tile
       iff (a) for every low offset bit j < k some register column is
       exactly [e_j], (b) lane bits 0 and 1 map to offset bits k and
       k+1, and (c) every other column avoids the tile's offset bits. *)
    let k = Util.log2 (4 / byte_width) in
    let low_mask = (1 lsl (k + 2)) - 1 in
    let reg_cols = Layout.flat_columns l Dims.register in
    let lane_cols = Layout.flat_columns l Dims.lane in
    let warp_cols = Layout.flat_columns l Dims.warp in
    let chosen = List.init k (fun j -> List.find_opt (fun c -> c = 1 lsl j) reg_cols) in
    let lanes_ok =
      match lane_cols with
      | c0 :: c1 :: _ -> c0 = 1 lsl k && c1 = 1 lsl (k + 1)
      | _ -> false
    in
    List.for_all Option.is_some chosen && lanes_ok
    && List.for_all
         (fun c -> c land low_mask = 0)
         (List.filter (fun c -> not (List.mem (Some c) chosen)) reg_cols
         @ (match lane_cols with _ :: _ :: rest -> rest | _ -> [])
         @ warp_cols)
  end

let vectorizable_register_bits l =
  let cols = Layout.flat_columns l Dims.register in
  let rec go j acc =
    match List.find_index (fun c -> c = 1 lsl j) cols with
    | Some k when not (List.mem k acc) -> go (j + 1) (k :: acc)
    | _ -> List.rev acc
  in
  go 0 []

let instruction_name = Gpusim.Coalesce.instruction_name
