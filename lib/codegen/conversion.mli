(** Layout-to-layout conversion planning (Section 5.4).

    The conversion from distributed layout [A] to [B] is the map
    [B^+ o A] on hardware indices.  The planner picks the cheapest
    mechanism the structure allows:

    - {b No_op} when the layouts are equal (the "equivalent layouts"
      detection that turns welford's conversions into no-ops, §6.2);
    - {b Register_permute} when only register columns differ;
    - {b Warp_shuffle} when warp columns agree and neither layout
      broadcasts (Figure 4);
    - {b Shared_memory} with an optimal swizzle otherwise. *)

open Linear_layout

type mechanism =
  | No_op
  | Register_permute
  | Warp_shuffle of Shuffle.t
  | Warp_shuffle_compressed of Shuffle.t
      (** layouts that broadcast only in registers: duplicate registers
          are compressed away, the shuffle runs on the representatives,
          and the destination's copies are re-materialized with register
          moves — lifting Section 5.4's "no broadcasting" assumption.
          The carried plan's [src]/[dst] fields are the compressed
          (register-deduplicated) layouts that stage the exchange. *)
  | Shared_memory of Swizzle_opt.t
  | Global_roundtrip
      (** the layouts place data in different CTAs: shared memory cannot
          help, the conversion spills through global memory with a grid
          synchronization *)

type plan = { src : Layout.t; dst : Layout.t; byte_width : int; mechanism : mechanism }

val plan : Gpusim.Machine.t -> src:Layout.t -> dst:Layout.t -> byte_width:int -> plan

(** The conversion map [B^+ o A] from source hardware indices to
    destination hardware indices (both flattened over logical space). *)
val conversion_map : src:Layout.t -> dst:Layout.t -> Layout.t

val mechanism_name : mechanism -> string

(** Stable snake_case identifier, used in metric names
    ([codegen.conversion.<slug>]). *)
val mechanism_slug : mechanism -> string

(** Move the data.  Uses the true shuffle executor for warp-shuffle
    plans (validating shuffle semantics) and the algebraic path
    otherwise. *)
val execute : plan -> Gpusim.Dist.t -> Gpusim.Dist.t

val cost : Gpusim.Machine.t -> plan -> Gpusim.Cost.t
