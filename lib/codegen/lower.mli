(** Lowering of conversion plans to the warp-level pseudo-ISA.

    This is the last mile of Section 5: the planner's algebra
    (register permutations, shuffle rounds, swizzled shared-memory
    round trips) becomes an inspectable instruction stream that the
    {!Gpusim.Isa} interpreter executes on concrete register files and
    shared memory.

    Slot convention: the source value occupies slots
    [0 .. src_regs-1] (register [r] of the source layout in slot [r]);
    the destination value lands in slots
    [dst_base .. dst_base + dst_regs - 1]; two staging slots follow for
    shuffle traffic. *)

open Linear_layout

type slot_map = {
  src_regs : int;
  dst_base : int;
  dst_regs : int;
  total_slots : int;
}

(** [conversion machine plan] lowers a {!Conversion.plan}.  The emitted
    program's shape (warps/lanes) comes from the plan's layouts.
    Raises [Failure] on plans whose layouts broadcast across lanes in a
    way the lowering does not support (the planner's shared path always
    works). *)
val conversion : Gpusim.Machine.t -> Conversion.plan -> Gpusim.Isa.program * slot_map

(** [load_state program map ~src dist] builds interpreter state with
    the source slots filled from a distributed tensor. *)
val load_state : Gpusim.Isa.program -> slot_map -> Gpusim.Dist.t -> Gpusim.Isa.state

(** [store_dist map ~dst state] reads the destination slots back into a
    distributed tensor over layout [dst]. *)
val store_dist : slot_map -> dst:Layout.t -> Gpusim.Isa.state -> Gpusim.Dist.t

(** Convenience: lower, execute, and return the converted data plus the
    interpreter-accounted cost — used by tests to cross-check the
    algebraic executors and cost estimates. *)
val run :
  Gpusim.Machine.t -> Conversion.plan -> Gpusim.Dist.t -> Gpusim.Dist.t * Gpusim.Cost.t

(** [gather machine ~src ~index ~axis] lowers a warp-shuffle gather
    (Section 5.5) to instructions: per destination register, rounds of
    publish/shuffle/commit where each source lane serves one request
    per round.  The per-lane tables stand for the address arithmetic
    real code derives from the index registers at run time.  [Error]
    when the gather leaves the warp (the shared-memory fallback). *)
val gather :
  Gpusim.Machine.t ->
  src:Gpusim.Dist.t ->
  index:Gpusim.Dist.t ->
  axis:int ->
  (Gpusim.Isa.program * slot_map, string) result

(** [reduce machine ~src ~axis] lowers an all-reduce (sum) over logical
    dimension [axis] of a distributed tensor:

    + a register tree combining the thread-local elements that differ
      only along the axis;
    + a butterfly of warp shuffles over the lane bits on the axis;
    + a shared-memory exchange of per-warp partials when warps split
      the axis.

    The result distributes the reduced value over the {e sliced} layout
    [Sliced.make src.layout ~dim:axis] with every original hardware
    point holding its row's total — so reading it back through the
    (non-injective) sliced layout also verifies all copies agree.
    Returns the program, the slot map, and the result layout. *)
val reduce :
  ?op:[ `Add | `Max ] ->
  Gpusim.Machine.t ->
  src:Gpusim.Dist.t ->
  axis:int ->
  Gpusim.Isa.program * slot_map * Layout.t

(** [scan machine ~src ~axis] lowers an inclusive prefix sum over
    logical dimension [axis], provided the axis is confined to
    registers and lanes (a warp-local scan): an in-register sequential
    pass followed by a Hillis-Steele shuffle scan over the axis lane
    bits.  The result keeps the source layout.  [Error] when warps
    split the axis. *)
val scan :
  Gpusim.Machine.t ->
  src:Gpusim.Dist.t ->
  axis:int ->
  (Gpusim.Isa.program * slot_map, string) result
