(** Process-wide sharded plan cache: the L2 behind {!Plan_cache}.

    {!Plan_cache}'s [Domain.DLS] tables give every domain a private,
    contention-free L1; this module is the level below it — one cache
    shared by {e every} domain of the process, so a plan computed by
    one engine worker (or preloaded from a {!Plan_store} file) is
    visible to all of them.  The table is split into {!stripe_count}
    stripes selected by the existing FNV structural key hash; each
    stripe is a mutex-guarded hash table with its own hit/miss/insert
    counters.  Critical sections are a single probe or insert, and the
    L1 in front absorbs all repeat lookups, so the stripes only see
    each domain's first miss per key — the read-mostly pattern the
    striping is sized for.

    Plans depend only on immutable layouts and the machine description
    (identified by its [name]), so entries never need invalidation;
    [add] keeps the first value written and drops duplicates, which
    makes concurrent misses on the same key converge on one entry. *)

open Linear_layout

(** The structural key shared with {!Plan_cache}: machines are
    distinguished by name, layouts hashed with {!Layout.Memo.hash}. *)
module Key : sig
  type t = { machine : string; src : Layout.t; dst : Layout.t; byte_width : int }

  val equal : t -> t -> bool
  val hash : t -> int
end

(** Number of stripes (a power of two; see DESIGN.md "Compilation
    service" for the sizing argument). *)
val stripe_count : int

(** {2 Lookups and inserts}

    [find_*] bumps the stripe's hit or miss counter; an L2 miss is
    exactly one planner invocation in {!Plan_cache}, so {!stats}'
    [misses] counts the planning work the whole process has done.
    [add_*] inserts only if the key is absent. *)

val find_conversion : Key.t -> Conversion.plan option
val add_conversion : Key.t -> Conversion.plan -> unit
val find_shuffle : Key.t -> (Shuffle.t, string) result option
val add_shuffle : Key.t -> (Shuffle.t, string) result -> unit
val find_swizzle : Key.t -> Swizzle_opt.t option
val add_swizzle : Key.t -> Swizzle_opt.t -> unit
val find_staging : Key.t -> Operand_staging.t option option
val add_staging : Key.t -> Operand_staging.t option -> unit

(** {2 Snapshots (for {!Plan_store})}

    Folds run stripe by stripe under the stripe lock; [f] must not
    call back into this module. *)

val fold_conversions : (Key.t -> Conversion.plan -> 'a -> 'a) -> 'a -> 'a
val fold_shuffles : (Key.t -> (Shuffle.t, string) result -> 'a -> 'a) -> 'a -> 'a
val fold_swizzles : (Key.t -> Swizzle_opt.t -> 'a -> 'a) -> 'a -> 'a
val fold_stagings : (Key.t -> Operand_staging.t option -> 'a -> 'a) -> 'a -> 'a

(** Entries across all stripes and kinds. *)
val length : unit -> int

(** {2 Statistics} *)

type stats = { hits : int; misses : int; inserts : int }

val zero_stats : stats

(** Pointwise sum — commutative and associative, so per-stripe stats
    merge in any order (like {!Obs.Metrics.merge}). *)
val merge_stats : stats -> stats -> stats

(** Per-stripe counters, index = stripe. *)
val stripe_stats : unit -> stats array

(** All stripes merged. *)
val stats : unit -> stats

val reset_stats : unit -> unit

(** Drop every entry in every stripe (counters are kept).  Simulates a
    process restart in tests and benchmarks; real traffic never needs
    it because plans are immutable. *)
val clear : unit -> unit
