open Linear_layout

type violation = { warp : int; missing : string }

(* Per-warp maps from logical coordinates to held values (or just
   presence), validating that duplicated copies agree. *)
let warp_fragments (d : Gpusim.Dist.t) =
  let l = d.Gpusim.Dist.layout in
  let flat = Layout.flatten_outs l in
  let rb = Layout.in_bits l Dims.register and lb = Layout.in_bits l Dims.lane in
  let warps = 1 lsl Layout.in_bits l Dims.warp in
  let tables = Array.init warps (fun _ -> Hashtbl.create 256) in
  Array.iteri
    (fun hw v ->
      let w = hw lsr (rb + lb) in
      let logical = Layout.apply_flat flat hw in
      match Hashtbl.find_opt tables.(w) logical with
      | Some v' when v' <> v -> failwith "Mma_lower: disagreeing broadcast copies"
      | Some _ -> ()
      | None -> Hashtbl.add tables.(w) logical v)
    d.Gpusim.Dist.data;
  tables

let dims2 l =
  match Dims.sort (Layout.out_dims l) with
  | [ (_, b1); (_, b0) ] -> (1 lsl b0, 1 lsl b1)
  | _ -> invalid_arg "Mma_lower: layouts must be 2-D"

(* Logical flattening used by [Layout.flatten_outs] for a 2-D tensor:
   the last dimension is the fastest. *)
let fl ~cols i j = (i * cols) + j

let out_ownership out =
  (* For each warp, the set of output coordinates it owns. *)
  let flat = Layout.flatten_outs out in
  let rb = Layout.in_bits out Dims.register and lb = Layout.in_bits out Dims.lane in
  let warps = 1 lsl Layout.in_bits out Dims.warp in
  let owned = Array.init warps (fun _ -> Hashtbl.create 256) in
  for hw = 0 to (1 lsl Layout.total_in_bits out) - 1 do
    Hashtbl.replace owned.(hw lsr (rb + lb)) (Layout.apply_flat flat hw) ()
  done;
  owned

let fragment_presence l =
  let flat = Layout.flatten_outs l in
  let rb = Layout.in_bits l Dims.register and lb = Layout.in_bits l Dims.lane in
  let warps = 1 lsl Layout.in_bits l Dims.warp in
  let owned = Array.init warps (fun _ -> Hashtbl.create 256) in
  for hw = 0 to (1 lsl Layout.total_in_bits l) - 1 do
    Hashtbl.replace owned.(hw lsr (rb + lb)) (Layout.apply_flat flat hw) ()
  done;
  owned

let check_ownership ~out ~lhs ~rhs =
  let m, n = dims2 out in
  let m', k = dims2 lhs in
  let k', n' = dims2 rhs in
  if m <> m' || n <> n' || k <> k' then invalid_arg "Mma_lower: inconsistent shapes";
  let out_w = out_ownership out in
  let lhs_w = fragment_presence lhs and rhs_w = fragment_presence rhs in
  let warps_out = Array.length out_w in
  if Array.length lhs_w <> warps_out || Array.length rhs_w <> warps_out then
    invalid_arg "Mma_lower: operand and output warp counts differ";
  let result = ref (Ok ()) in
  for w = 0 to warps_out - 1 do
    if !result = Ok () then
      Hashtbl.iter
        (fun logical () ->
          if !result = Ok () then begin
            let i = logical / n and j = logical mod n in
            let rec scan kk =
              if kk >= k then ()
              else if not (Hashtbl.mem lhs_w.(w) (fl ~cols:k i kk)) then
                result :=
                  Error { warp = w; missing = Printf.sprintf "lhs(%d,%d)" i kk }
              else if not (Hashtbl.mem rhs_w.(w) (fl ~cols:n' kk j)) then
                result :=
                  Error { warp = w; missing = Printf.sprintf "rhs(%d,%d)" kk j }
              else scan (kk + 1)
            in
            scan 0
          end)
        out_w.(w)
  done;
  !result

let execute_dot ~out a b ~mul ~add ~zero =
  let lhs = a.Gpusim.Dist.layout and rhs = b.Gpusim.Dist.layout in
  (match check_ownership ~out ~lhs ~rhs with
  | Ok () -> ()
  | Error v -> failwith (Printf.sprintf "Mma_lower: warp %d is missing %s" v.warp v.missing));
  let _, n = dims2 out in
  let _, k = dims2 lhs in
  let _, n' = dims2 rhs in
  let frag_a = warp_fragments a and frag_b = warp_fragments b in
  let flat = Layout.flatten_outs out in
  let rb = Layout.in_bits out Dims.register and lb = Layout.in_bits out Dims.lane in
  let data =
    Array.init (1 lsl Layout.total_in_bits out) (fun hw ->
        let w = hw lsr (rb + lb) in
        let logical = Layout.apply_flat flat hw in
        let i = logical / n and j = logical mod n in
        let acc = ref zero in
        for kk = 0 to k - 1 do
          let av = Hashtbl.find frag_a.(w) (fl ~cols:k i kk) in
          let bv = Hashtbl.find frag_b.(w) (fl ~cols:n' kk j) in
          acc := add !acc (mul av bv)
        done;
        !acc)
  in
  { Gpusim.Dist.layout = out; data }

let mma_instructions ~out ~lhs ~bitwidth =
  let m, n = dims2 out in
  let _, k = dims2 lhs in
  ignore m;
  ignore n;
  let warps = 1 lsl Layout.in_bits out Dims.warp in
  let elems_per_warp =
    (1 lsl Layout.in_bits out Dims.register) * (1 lsl Layout.in_bits out Dims.lane)
  in
  let tiles_per_warp = max 1 (elems_per_warp / (16 * 8)) in
  let k_steps = max 1 (k / max 1 (256 / bitwidth)) in
  let insts = warps * tiles_per_warp * k_steps in
  Obs.Metrics.observe "codegen.mma.instructions" insts;
  insts
