(** Two-level cache of conversion, shuffle, swizzle and staging plans,
    keyed by [(machine, src, dst, byte_width)].

    Planning a single conversion runs several Gaussian eliminations and
    a swizzle search; the layout engine and the autotuner re-plan
    byte-identical conversions once per program edge per configuration.

    The cache has two levels:

    - {b L1}: a private [Domain.DLS] table per OCaml 5 domain (the same
      approach as {!Linear_layout.Layout.Memo}).  Lookups never
      contend, and repeats within a domain never leave it.
    - {b L2}: the process-wide sharded {!Shared_cache}, probed on an L1
      miss.  A plan computed by any domain — or preloaded from a
      {!Plan_store} file at warm start — is published there and serves
      every other domain's first miss on the key.

    The planner itself only runs on an L2 miss, so
    [Shared_cache.(stats ()).misses] counts the process's planner
    invocations; {!hits}/{!misses} below keep their historic meaning
    (L1 traffic of the calling domain — in a single-domain process with
    an empty L2, identical to the planner's own hit/miss profile).

    Plans depend only on immutable layouts and the machine description,
    so entries never need invalidation.  Machines are distinguished by
    their [name] field. *)

open Linear_layout

(** Cached {!Conversion.plan}. *)
val conversion :
  Gpusim.Machine.t -> src:Layout.t -> dst:Layout.t -> byte_width:int -> Conversion.plan

(** Cached {!Shuffle.plan} (errors are cached too: a conversion that
    cannot shuffle won't re-derive why). *)
val shuffle :
  Gpusim.Machine.t -> src:Layout.t -> dst:Layout.t -> byte_width:int -> (Shuffle.t, string) result

(** Cached {!Swizzle_opt.optimal}. *)
val swizzle :
  Gpusim.Machine.t -> src:Layout.t -> dst:Layout.t -> byte_width:int -> Swizzle_opt.t

(** Cached {!Operand_staging.plan}. *)
val staging :
  Gpusim.Machine.t -> src:Layout.t -> dst:Layout.t -> byte_width:int -> Operand_staging.t option

(** {2 L1 introspection (calling domain only)}

    The shared L2's counters live in {!Shared_cache.stats};
    {!Shared_cache.clear} drops the L2 (e.g. to simulate a process
    restart — {!clear} below only empties the calling domain's L1, so
    after it a lookup can still be served without re-planning). *)

val hits : unit -> int
val misses : unit -> int
val reset_stats : unit -> unit
val clear : unit -> unit
