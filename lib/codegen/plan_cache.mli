(** A per-domain cache of conversion, shuffle, swizzle and staging
    plans, keyed by [(machine, src, dst, byte_width)].

    Planning a single conversion runs several Gaussian eliminations and
    a swizzle search; the layout engine and the autotuner re-plan
    byte-identical conversions once per program edge per configuration.
    This cache pays each distinct planning problem once per domain.

    Like {!Linear_layout.Layout.Memo}, tables live in [Domain.DLS]:
    every OCaml 5 domain (e.g. each parallel autotuner worker) owns a
    private cache, so lookups never contend and results merge
    deterministically.  Plans depend only on immutable layouts and the
    machine description, so entries never need invalidation.  Machines
    are distinguished by their [name] field. *)

open Linear_layout

(** Cached {!Conversion.plan}. *)
val conversion :
  Gpusim.Machine.t -> src:Layout.t -> dst:Layout.t -> byte_width:int -> Conversion.plan

(** Cached {!Shuffle.plan} (errors are cached too: a conversion that
    cannot shuffle won't re-derive why). *)
val shuffle :
  Gpusim.Machine.t -> src:Layout.t -> dst:Layout.t -> byte_width:int -> (Shuffle.t, string) result

(** Cached {!Swizzle_opt.optimal}. *)
val swizzle :
  Gpusim.Machine.t -> src:Layout.t -> dst:Layout.t -> byte_width:int -> Swizzle_opt.t

(** Cached {!Operand_staging.plan}. *)
val staging :
  Gpusim.Machine.t -> src:Layout.t -> dst:Layout.t -> byte_width:int -> Operand_staging.t option

(** {2 Cache introspection (calling domain only)} *)

val hits : unit -> int
val misses : unit -> int
val reset_stats : unit -> unit
val clear : unit -> unit
