open Linear_layout

module Key = struct
  type t = { machine : string; src : Layout.t; dst : Layout.t; byte_width : int }

  let equal a b =
    a.byte_width = b.byte_width
    && String.equal a.machine b.machine
    && Layout.equal a.src b.src
    && Layout.equal a.dst b.dst

  (* FNV-style structural hash: [Layout.Memo.hash] visits every basis
     coordinate, so structurally equal layouts built by different
     domains land in the same stripe. *)
  let hash k =
    (Hashtbl.hash k.machine * 0x01000193)
    lxor (Layout.Memo.hash k.src * 31)
    lxor Layout.Memo.hash k.dst lxor k.byte_width
end

module H = Hashtbl.Make (Key)

(* 16 stripes: a process of N engine domains sees at most N concurrent
   first-miss probes, and the built-in machine x kernel traffic spreads
   over a few hundred distinct keys, so 16 keeps the expected waiters
   per stripe below one for any domain count the autotuner or server
   pool uses (they clamp to the core count). *)
let stripe_count = 16

type stripe = {
  lock : Mutex.t;
  conv : Conversion.plan H.t;
  shuf : (Shuffle.t, string) result H.t;
  swiz : Swizzle_opt.t H.t;
  stage : Operand_staging.t option H.t;
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
}

let stripes =
  Array.init stripe_count (fun _ ->
      {
        lock = Mutex.create ();
        conv = H.create 32;
        shuf = H.create 16;
        swiz = H.create 16;
        stage = H.create 16;
        hits = 0;
        misses = 0;
        inserts = 0;
      })

let stripe_of k = stripes.(Key.hash k land (stripe_count - 1))

let locked s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let find sel k =
  let s = stripe_of k in
  let r =
    locked s (fun () ->
        let r = H.find_opt (sel s) k in
        (match r with
        | Some _ -> s.hits <- s.hits + 1
        | None -> s.misses <- s.misses + 1);
        r)
  in
  (match r with
  | Some _ -> Obs.Metrics.incr "codegen.shared_cache.hits"
  | None -> Obs.Metrics.incr "codegen.shared_cache.misses");
  r

let add sel k v =
  let s = stripe_of k in
  locked s (fun () ->
      if not (H.mem (sel s) k) then begin
        H.add (sel s) k v;
        s.inserts <- s.inserts + 1
      end)

let find_conversion k = find (fun s -> s.conv) k
let add_conversion k v = add (fun s -> s.conv) k v
let find_shuffle k = find (fun s -> s.shuf) k
let add_shuffle k v = add (fun s -> s.shuf) k v
let find_swizzle k = find (fun s -> s.swiz) k
let add_swizzle k v = add (fun s -> s.swiz) k v
let find_staging k = find (fun s -> s.stage) k
let add_staging k v = add (fun s -> s.stage) k v

let fold sel f acc =
  Array.fold_left (fun acc s -> locked s (fun () -> H.fold f (sel s) acc)) acc stripes

let fold_conversions f acc = fold (fun s -> s.conv) f acc
let fold_shuffles f acc = fold (fun s -> s.shuf) f acc
let fold_swizzles f acc = fold (fun s -> s.swiz) f acc
let fold_stagings f acc = fold (fun s -> s.stage) f acc

let length () =
  Array.fold_left
    (fun acc s ->
      locked s (fun () ->
          acc + H.length s.conv + H.length s.shuf + H.length s.swiz + H.length s.stage))
    0 stripes

type stats = { hits : int; misses : int; inserts : int }

let zero_stats = { hits = 0; misses = 0; inserts = 0 }

let merge_stats a b =
  { hits = a.hits + b.hits; misses = a.misses + b.misses; inserts = a.inserts + b.inserts }

let stripe_stats () =
  Array.map
    (fun s -> locked s (fun () -> { hits = s.hits; misses = s.misses; inserts = s.inserts }))
    stripes

let stats () = Array.fold_left merge_stats zero_stats (stripe_stats ())

let reset_stats () =
  Array.iter
    (fun s ->
      locked s (fun () ->
          s.hits <- 0;
          s.misses <- 0;
          s.inserts <- 0))
    stripes

let clear () =
  Array.iter
    (fun s ->
      locked s (fun () ->
          H.reset s.conv;
          H.reset s.shuf;
          H.reset s.swiz;
          H.reset s.stage))
    stripes
