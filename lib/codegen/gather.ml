open Linear_layout

type plan =
  | Warp_shuffle of { rounds : int; shuffles : int }
  | Shared_fallback

let axis_component l in_dim axis k =
  match List.assoc_opt (Dims.dim axis) (Layout.basis l in_dim k) with
  | Some c -> c
  | None -> 0

let plan l ~axis =
  let warp_touches_axis =
    List.exists
      (fun k -> axis_component l Dims.warp axis k <> 0)
      (List.init (Layout.in_bits l Dims.warp) Fun.id)
  in
  if warp_touches_axis then Shared_fallback
  else
    let thr_axis_bits =
      List.length
        (List.filter
           (fun k -> axis_component l Dims.lane axis k <> 0)
           (List.init (Layout.in_bits l Dims.lane) Fun.id))
    in
    let rounds = 1 lsl thr_axis_bits in
    let regs = 1 lsl Layout.in_bits l Dims.register in
    Warp_shuffle { rounds; shuffles = rounds * regs }

let execute ~src ~index ~axis =
  let l = src.Gpusim.Dist.layout in
  if not (Layout.equal l index.Gpusim.Dist.layout) then
    failwith "Gather.execute: src and index layouts differ";
  let ok = function Ok t -> t | Error e -> failwith ("Gather.execute: " ^ e) in
  let t_src = ok (Gpusim.Dist.to_logical src) in
  let t_idx = ok (Gpusim.Dist.to_logical index) in
  let out_dims = Layout.out_dims l in
  let axis_size = Layout.out_size l (Dims.dim axis) in
  Gpusim.Dist.init l ~f:(fun v ->
      let coords = Layout.unflatten_value out_dims v in
      let idx = t_idx.(v) land (axis_size - 1) in
      let coords' =
        List.map (fun (d, c) -> (d, if d = Dims.dim axis then idx else c)) coords
      in
      t_src.(Layout.flatten_value out_dims coords'))

let cost machine l ~axis:_ p =
  let c = Gpusim.Cost.zero () in
  let regs = 1 lsl Layout.in_bits l Dims.register in
  let warps = 1 lsl Layout.in_bits l Dims.warp in
  (match p with
  | Warp_shuffle { rounds; _ } ->
      (* A round that stays within the thread is a predicated register
         move; only cross-lane rounds emit shuffles. *)
      c.Gpusim.Cost.shuffles <- (if rounds > 1 then rounds * regs * warps else 0);
      c.Gpusim.Cost.alu <- 3 * regs * warps
  | Shared_fallback ->
      (* Store everything, barrier, then index-dependent unvectorized
         loads whose random addresses average heavy bank conflicts,
         then a second barrier before the buffer can be reused. *)
      c.Gpusim.Cost.smem_insts <- 2 * regs * warps;
      c.Gpusim.Cost.smem_wavefronts <- (regs + (8 * regs)) * warps;
      c.Gpusim.Cost.alu <- 3 * regs * warps;
      c.Gpusim.Cost.barriers <- 2);
  ignore machine;
  c
