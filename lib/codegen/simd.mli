(** SIMD hardware-primitive matching by left division (Section 5.3).

    An instruction is usable for a register-to-offset mapping [l] when
    its tile [t] divides [l] on the left (Theorem 5.1). *)

open Linear_layout

(** The tile of a vectorized shared-memory access of [2^bits] bits for
    elements of [byte_width] bytes: an identity from registers onto the
    low offset bits. *)
val vec_tile : bits:int -> byte_width:int -> Layout.t

(** The [ldmatrix]/[stmatrix] tile: each thread handles 4 contiguous
    bytes, 8 groups of 4 threads each storing a row —
    [id_k^(Reg,Off) x id_2^(Thr,Off)] with [k = log2 (4 / byte_width)]. *)
val ldmatrix_tile : byte_width:int -> Layout.t

(** [max_vector_bits l ~byte_width ~max_bits] is the widest vectorized
    access usable for the register-to-offset map [l]: the largest
    power-of-two run of registers mapping identically onto consecutive
    offsets, in bits, capped at [max_bits]. *)
val max_vector_bits : Layout.t -> byte_width:int -> max_bits:int -> int

(** [can_use_ldmatrix l ~byte_width] checks the tile divides [l],
    optionally after the generalized-vectorization register permutation
    of Section 5.3 (on by default). *)
val can_use_ldmatrix : ?permute_registers:bool -> Layout.t -> byte_width:int -> bool

(** Generalized vectorization (Section 5.3): find register basis indices
    whose columns are the identity onto the low offset bits in some
    order, i.e. a register permutation [P_Reg] making [P_Reg l]
    divisible by a vector tile.  Returns the indices ordered so that
    index [j] maps to offset bit [j]; the run stops at the first
    missing offset bit. *)
val vectorizable_register_bits : Layout.t -> int list

(** Instruction mnemonic for Table 3, e.g. [v4.b32] for 128 bits. *)
val instruction_name : bits:int -> string
