(** Staging of dot operands through shared memory using the dedicated
    mma swizzling of Definition 4.11, enabling [ldmatrix]/[stmatrix]
    when the tile divides the resulting register-to-offset map
    (Section 5.3).

    This is the specialised path real Triton uses for tensor-core
    operands; the generic optimal swizzle of Section 5.4 remains the
    fallback for arbitrary conversions. *)

open Linear_layout

type t = {
  mem : Layout.t;  (** the swizzled memory layout *)
  vec : int;  (** Def 4.11 [vec] parameter, in elements *)
  per_phase : int;
  max_phase : int;
  uses_ldmatrix : bool;
  staging_cost : Gpusim.Cost.t;  (** store + barrier + load *)
}

(** [plan machine ~src ~dst ~byte_width] stages a 2-D operand held in
    [src] into the tensor-core layout [dst].  [None] when the operand
    is not 2-D or too small for the swizzle pattern. *)
val plan :
  Gpusim.Machine.t -> src:Layout.t -> dst:Layout.t -> byte_width:int -> t option
