open Linear_layout

type t = {
  mem : Layout.t;
  vec : int;
  per_phase : int;
  max_phase : int;
  uses_ldmatrix : bool;
  staging_cost : Gpusim.Cost.t;
}

let shape_2d l =
  match Dims.sort (Layout.out_dims l) with
  | [ (d1, cols_bits); (d0, rows_bits) ]
    when d0 = Dims.dim 0 && d1 = Dims.dim 1 && rows_bits > 0 && cols_bits > 0 ->
      Some (1 lsl rows_bits, 1 lsl cols_bits)
  | _ -> None

(* The vectorization basis used to simulate one side's accesses: the
   contiguous low register run, clipped to [vec] elements. *)
let side_vec dist ~vec =
  let consec = Layout.num_consecutive dist ~in_dim:Dims.register in
  let v = min consec vec in
  List.init (Util.log2 v) (fun j -> 1 lsl j)

(* Evaluate one candidate memory layout: store side simulated from
   [src], load side either ldmatrix (when the tile divides) or
   simulated vectorized loads.  [None] when the candidate cannot host
   [src]'s vectorized stores. *)
let try_candidate machine ~src ~dst ~byte_width ~vec ~per_phase ~max_phase mem =
  try
    let mem_to_reg =
      Layout.Memo.compose
        (Layout.Memo.invert (Layout.Memo.flatten_outs mem))
        (Layout.Memo.flatten_outs dst)
    in
    let uses_ldmatrix =
      machine.Gpusim.Machine.has_ldmatrix && Simd.can_use_ldmatrix mem_to_reg ~byte_width
    in
    let warps l = 1 lsl Layout.in_bits l Dims.warp in
    let store_wf, store_insts =
      (* Fall back to scalar stores when the candidate memory layout
         breaks the source's contiguous runs. *)
      try
        Swizzle_opt.simulate_wavefronts machine ~mem ~dist:src ~byte_width
          ~vec:(side_vec src ~vec)
      with Invalid_argument _ ->
        Swizzle_opt.simulate_wavefronts machine ~mem ~dist:src ~byte_width ~vec:[]
    in
    let c = Gpusim.Cost.zero () in
    c.Gpusim.Cost.smem_insts <- store_insts * warps src;
    c.Gpusim.Cost.smem_wavefronts <- store_wf * warps src;
    c.Gpusim.Cost.barriers <- 1;
    (if uses_ldmatrix then begin
       (* Each ldmatrix instruction moves 16 bytes per lane,
          conflict-free by construction of the swizzle. *)
       let regs = 1 lsl Layout.in_bits dst Dims.register in
       let insts = max 1 (regs * byte_width / 16) * warps dst in
       c.Gpusim.Cost.ldmatrix <- insts;
       c.Gpusim.Cost.smem_wavefronts <- c.Gpusim.Cost.smem_wavefronts + insts
     end
     else
       let load_wf, load_insts =
         try
           Swizzle_opt.simulate_wavefronts machine ~mem ~dist:dst ~byte_width
             ~vec:(side_vec dst ~vec)
         with Invalid_argument _ ->
           Swizzle_opt.simulate_wavefronts machine ~mem ~dist:dst ~byte_width ~vec:[]
       in
       c.Gpusim.Cost.smem_insts <- c.Gpusim.Cost.smem_insts + (load_insts * warps dst);
       c.Gpusim.Cost.smem_wavefronts <- c.Gpusim.Cost.smem_wavefronts + (load_wf * warps dst));
    c.Gpusim.Cost.alu <- 2 * c.Gpusim.Cost.smem_insts;
    Some { mem; vec; per_phase; max_phase; uses_ldmatrix; staging_cost = c }
  with Invalid_argument _ | Layout.Error _ -> None

let plan_exn machine ~src ~dst ~byte_width =
  match shape_2d dst with
  | None -> None
  | Some (rows, cols) ->
      let bank_row_bytes =
        machine.Gpusim.Machine.num_banks * machine.Gpusim.Machine.bank_bytes
      in
      let vec = max 1 (min cols (16 / byte_width)) in
      if vec < 2 then None
      else begin
        let per_phase = max 1 (bank_row_bytes / (cols * byte_width)) in
        let max_phase =
          max 1 (min (bank_row_bytes / (vec * byte_width) / per_phase) (rows / per_phase))
        in
        (* Candidate swizzles: row-major (lhs operands) and transposed
           (rhs operands, whose lanes walk the leading dimension — the
           ldmatrix.trans arrangement). *)
        let row_major_mem = Shared.mma_swizzle ~vec ~per_phase ~max_phase ~rows ~cols in
        let vec_t = max 1 (min rows (16 / byte_width)) in
        let per_phase_t = max 1 (bank_row_bytes / (rows * byte_width)) in
        let max_phase_t =
          max 1
            (min (bank_row_bytes / (vec_t * byte_width) / per_phase_t) (cols / per_phase_t))
        in
        let transposed_mem =
          Layout.exchange_out_names
            (Shared.mma_swizzle ~vec:vec_t ~per_phase:per_phase_t ~max_phase:max_phase_t
               ~rows:cols ~cols:rows)
            [ (Dims.dim 0, Dims.dim 1); (Dims.dim 1, Dims.dim 0) ]
        in
        let candidates =
          List.filter_map Fun.id
            [
              try_candidate machine ~src ~dst ~byte_width ~vec ~per_phase ~max_phase
                row_major_mem;
              try_candidate machine ~src ~dst ~byte_width ~vec:vec_t ~per_phase:per_phase_t
                ~max_phase:max_phase_t transposed_mem;
            ]
        in
        let score s = Gpusim.Cost.estimate machine s.staging_cost in
        match List.sort (fun a b -> compare (score a) (score b)) candidates with
        | best :: _ ->
            Obs.Metrics.incr "codegen.staging.planned";
            if best.uses_ldmatrix then Obs.Metrics.incr "codegen.staging.ldmatrix";
            Obs.Metrics.observe "codegen.staging.vec" best.vec;
            Some best
        | [] -> None
      end

let plan machine ~src ~dst ~byte_width =
  try plan_exn machine ~src ~dst ~byte_width with Invalid_argument _ -> None
