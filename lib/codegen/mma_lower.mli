(** Generic lowering of matrix-multiplication intrinsics over layouts
    (the appendix's Proposition 9.2 construction, executed).

    A warp-level tensor-core instruction can only read fragments the
    warp itself holds, so a valid (output, lhs, rhs) layout triple must
    satisfy: every warp that owns an output element [(i, j)] also owns
    [lhs(i, k)] and [rhs(k, j)] for every [k] — this is exactly the
    broadcast-along-the-inner-dimension condition of the operand
    construction.  [check_ownership] decides it, and [execute_dot]
    computes the product reading operands {e only} through each warp's
    own fragments, so a passing run certifies the layouts. *)

open Linear_layout

type violation = { warp : int; missing : string }

(** [check_ownership ~out ~lhs ~rhs] verifies the warp-ownership
    condition for an [m x k] by [k x n] product. *)
val check_ownership : out:Layout.t -> lhs:Layout.t -> rhs:Layout.t -> (unit, violation) result

(** [execute_dot ~out ~lhs ~rhs a b ~mul ~add ~zero] computes the dot
    product into the output layout, reading each warp's operands only
    from that warp's registers.  Raises [Failure] if ownership is
    violated or operand copies disagree. *)
val execute_dot :
  out:Layout.t ->
  Gpusim.Dist.t ->
  Gpusim.Dist.t ->
  mul:(int -> int -> int) ->
  add:(int -> int -> int) ->
  zero:int ->
  Gpusim.Dist.t

(** Tensor-core instruction count for the triple: warps x k-steps x
    tiles per warp. *)
val mma_instructions : out:Layout.t -> lhs:Layout.t -> bitwidth:int -> int
