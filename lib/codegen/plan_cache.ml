open Linear_layout

type key = Shared_cache.Key.t = {
  machine : string;
  src : Layout.t;
  dst : Layout.t;
  byte_width : int;
}

module H = Hashtbl.Make (Shared_cache.Key)

type stats = { mutable hits : int; mutable misses : int }

type tables = {
  stats : stats;
  conv : Conversion.plan H.t;
  shuf : (Shuffle.t, string) result H.t;
  swiz : Swizzle_opt.t H.t;
  stage : Operand_staging.t option H.t;
}

let fresh () =
  {
    stats = { hits = 0; misses = 0 };
    conv = H.create 128;
    shuf = H.create 64;
    swiz = H.create 64;
    stage = H.create 64;
  }

let dls = Domain.DLS.new_key fresh
let tables () = Domain.DLS.get dls
let hits () = (tables ()).stats.hits
let misses () = (tables ()).stats.misses

let reset_stats () =
  let s = (tables ()).stats in
  s.hits <- 0;
  s.misses <- 0

let clear () =
  let tb = tables () in
  H.reset tb.conv;
  H.reset tb.shuf;
  H.reset tb.swiz;
  H.reset tb.stage

(* Machines are identified by name: the built-in configurations all
   carry distinct names, and a custom machine must be renamed to get its
   own cache entries. *)
let key_of machine ~src ~dst ~byte_width =
  let src = Layout.Memo.intern src and dst = Layout.Memo.intern dst in
  { machine = machine.Gpusim.Machine.name; src; dst; byte_width }

(* L1 (this domain's table) in front of the process-wide sharded L2:
   an L1 miss probes the L2 before computing, and a computed plan is
   published to both levels.  L1 hit/miss counters keep their historic
   meaning (hits and misses of the calling domain); the planner only
   actually runs on an L2 miss, so [Shared_cache.stats ()] counts the
   process's planner invocations. *)
let cached tbl find2 add2 k compute =
  let tb = tables () in
  match H.find_opt (tbl tb) k with
  | Some r ->
      tb.stats.hits <- tb.stats.hits + 1;
      r
  | None ->
      tb.stats.misses <- tb.stats.misses + 1;
      let r =
        match find2 k with
        | Some r -> r
        | None ->
            let r = compute () in
            add2 k r;
            r
      in
      H.add (tbl tb) k r;
      r

let conversion machine ~src ~dst ~byte_width =
  let k = key_of machine ~src ~dst ~byte_width in
  cached
    (fun tb -> tb.conv)
    Shared_cache.find_conversion Shared_cache.add_conversion k
    (fun () -> Conversion.plan machine ~src:k.src ~dst:k.dst ~byte_width)

let shuffle machine ~src ~dst ~byte_width =
  let k = key_of machine ~src ~dst ~byte_width in
  cached
    (fun tb -> tb.shuf)
    Shared_cache.find_shuffle Shared_cache.add_shuffle k
    (fun () -> Shuffle.plan machine ~src:k.src ~dst:k.dst ~byte_width)

let swizzle machine ~src ~dst ~byte_width =
  let k = key_of machine ~src ~dst ~byte_width in
  cached
    (fun tb -> tb.swiz)
    Shared_cache.find_swizzle Shared_cache.add_swizzle k
    (fun () -> Swizzle_opt.optimal machine ~src:k.src ~dst:k.dst ~byte_width)

let staging machine ~src ~dst ~byte_width =
  let k = key_of machine ~src ~dst ~byte_width in
  cached
    (fun tb -> tb.stage)
    Shared_cache.find_staging Shared_cache.add_staging k
    (fun () -> Operand_staging.plan machine ~src:k.src ~dst:k.dst ~byte_width)
