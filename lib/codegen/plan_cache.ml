open Linear_layout

type key = { machine : string; src : Layout.t; dst : Layout.t; byte_width : int }

module K = struct
  type t = key

  let equal a b =
    a.byte_width = b.byte_width
    && String.equal a.machine b.machine
    && Layout.equal a.src b.src
    && Layout.equal a.dst b.dst

  let hash k =
    (Hashtbl.hash k.machine * 0x01000193)
    lxor (Layout.Memo.hash k.src * 31)
    lxor Layout.Memo.hash k.dst lxor k.byte_width
end

module H = Hashtbl.Make (K)

type stats = { mutable hits : int; mutable misses : int }

type tables = {
  stats : stats;
  conv : Conversion.plan H.t;
  shuf : (Shuffle.t, string) result H.t;
  swiz : Swizzle_opt.t H.t;
  stage : Operand_staging.t option H.t;
}

let fresh () =
  {
    stats = { hits = 0; misses = 0 };
    conv = H.create 128;
    shuf = H.create 64;
    swiz = H.create 64;
    stage = H.create 64;
  }

let dls = Domain.DLS.new_key fresh
let tables () = Domain.DLS.get dls
let hits () = (tables ()).stats.hits
let misses () = (tables ()).stats.misses

let reset_stats () =
  let s = (tables ()).stats in
  s.hits <- 0;
  s.misses <- 0

let clear () =
  let tb = tables () in
  H.reset tb.conv;
  H.reset tb.shuf;
  H.reset tb.swiz;
  H.reset tb.stage

(* Machines are identified by name: the built-in configurations all
   carry distinct names, and a custom machine must be renamed to get its
   own cache entries. *)
let key_of machine ~src ~dst ~byte_width =
  let src = Layout.Memo.intern src and dst = Layout.Memo.intern dst in
  { machine = machine.Gpusim.Machine.name; src; dst; byte_width }

let cached tbl k compute =
  let tb = tables () in
  match H.find_opt (tbl tb) k with
  | Some r ->
      tb.stats.hits <- tb.stats.hits + 1;
      r
  | None ->
      let r = compute () in
      tb.stats.misses <- tb.stats.misses + 1;
      H.add (tbl tb) k r;
      r

let conversion machine ~src ~dst ~byte_width =
  let k = key_of machine ~src ~dst ~byte_width in
  cached
    (fun tb -> tb.conv)
    k
    (fun () -> Conversion.plan machine ~src:k.src ~dst:k.dst ~byte_width)

let shuffle machine ~src ~dst ~byte_width =
  let k = key_of machine ~src ~dst ~byte_width in
  cached
    (fun tb -> tb.shuf)
    k
    (fun () -> Shuffle.plan machine ~src:k.src ~dst:k.dst ~byte_width)

let swizzle machine ~src ~dst ~byte_width =
  let k = key_of machine ~src ~dst ~byte_width in
  cached
    (fun tb -> tb.swiz)
    k
    (fun () -> Swizzle_opt.optimal machine ~src:k.src ~dst:k.dst ~byte_width)

let staging machine ~src ~dst ~byte_width =
  let k = key_of machine ~src ~dst ~byte_width in
  cached
    (fun tb -> tb.stage)
    k
    (fun () -> Operand_staging.plan machine ~src:k.src ~dst:k.dst ~byte_width)
