(** ASCII rendering of 2-D layouts in the style of the paper's
    Figures 1 and 3: each tensor cell shows which warp, thread and
    register hold it. *)

(** [grid layout] renders a 2-D distributed layout (up to 64x64 cells)
    as a grid of [w<warp>:t<thread>:r<register>] cells.  For
    non-injective layouts the canonical (minimal-index) holder is
    shown.  Raises [Invalid_argument] for non-2-D or oversized
    layouts. *)
val grid : Layout.t -> string

(** [memory_grid layout] renders a 2-D memory layout (offset -> tensor)
    as a grid of element offsets — useful for eyeballing swizzles. *)
val memory_grid : Layout.t -> string
