(** Layout validation with human-readable diagnostics.

    [Layout.is_distributed] and friends answer yes/no; this module
    explains {e why} a layout fails a family's characterization —
    the kind of error message a compiler built on linear layouts owes
    its users (Section 3's robustness claim).

    Issues are {!Diagnostics.t} values with [LL1xx] codes:
    - [LL101] not surjective, [LL102] multi-bit column, [LL103]
      duplicated column, [LL104] broadcast (zero) column — the
      distributed characterization of Definition 4.10;
    - [LL110] non-square, [LL111] non-invertible, [LL112] zero offset
      column, [LL113] column beyond the xor-swizzle family — the memory
      characterization of Definition 4.14;
    - [LL120]–[LL122] convertibility within a CTA. *)

type severity = Diagnostics.severity = Error | Warning

(** Deprecated alias: new code should use {!Diagnostics.t} directly. *)
type issue = Diagnostics.t = {
  code : string;
  severity : severity;
  loc : Diagnostics.loc;
  message : string;
  pass : string option;
}

(** Check the distributed-layout characterization (Definition 4.10):
    surjective, every column at most one set bit, no repeated non-zero
    columns.  Warnings flag zero (broadcast) columns, which are legal
    but often unintended. *)
val distributed : Layout.t -> issue list

(** Check the memory-layout characterization (Definition 4.14):
    invertible, columns with 1 or 2 set bits. *)
val memory : Layout.t -> issue list

(** Check that two distributed layouts can be converted into each other
    within a CTA: same logical space, same lane/warp footprint. *)
val convertible : src:Layout.t -> dst:Layout.t -> issue list

val errors : issue list -> issue list

(** Deprecated alias for {!Diagnostics.pp_list}. *)
val pp : Format.formatter -> issue list -> unit
