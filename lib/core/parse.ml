let to_string l =
  let buf = Buffer.create 256 in
  List.iter
    (fun (d, bits) ->
      Buffer.add_string buf d;
      Buffer.add_string buf "=[";
      for k = 0 to bits - 1 do
        if k > 0 then Buffer.add_char buf ',';
        match Layout.basis l d k with
        | [] -> Buffer.add_char buf '0'
        | coords ->
            Buffer.add_char buf '(';
            List.iteri
              (fun i (od, c) ->
                if i > 0 then Buffer.add_char buf ',';
                Buffer.add_string buf (Printf.sprintf "%s:%d" od c))
              coords;
            Buffer.add_char buf ')'
      done;
      Buffer.add_string buf "] ")
    (Layout.in_dims l);
  Buffer.add_string buf "-> ";
  List.iteri
    (fun i (d, bits) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "%s:%d" d (1 lsl bits)))
    (Layout.out_dims l);
  Buffer.contents buf

(* {1 Parsing} *)

type token = Name of string | Int of int | Sym of char

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '0' .. '9' ->
          let j = ref i in
          while !j < n && match s.[!j] with '0' .. '9' -> true | _ -> false do
            incr j
          done;
          go !j (Int (int_of_string (String.sub s i (!j - i))) :: acc)
      | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
          let j = ref i in
          while
            !j < n
            && match s.[!j] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false
          do
            incr j
          done;
          go !j (Name (String.sub s i (!j - i)) :: acc)
      | '-' when i + 1 < n && s.[i + 1] = '>' -> go (i + 2) (Sym '>' :: acc)
      | ('=' | '[' | ']' | '(' | ')' | ',' | ':') as c -> go (i + 1) (Sym c :: acc)
      | c -> failwith (Printf.sprintf "unexpected character %C" c)
  in
  go 0 []

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_coord = function
  | Name d :: Sym ':' :: Int v :: rest -> ((d, v), rest)
  | _ -> fail "expected dim:coord"

let rec parse_coords acc toks =
  let coord, toks = parse_coord toks in
  match toks with
  | Sym ',' :: rest -> parse_coords (coord :: acc) rest
  | Sym ')' :: rest -> (List.rev (coord :: acc), rest)
  | _ -> fail "expected ',' or ')' in image"

let parse_image = function
  | Int 0 :: rest -> ([], rest)
  | Sym '(' :: rest -> parse_coords [] rest
  | _ -> fail "expected image '(dim:coord,...)' or '0'"

let rec parse_images acc toks =
  let img, toks = parse_image toks in
  match toks with
  | Sym ',' :: rest -> parse_images (img :: acc) rest
  | Sym ']' :: rest -> (List.rev (img :: acc), rest)
  | _ -> fail "expected ',' or ']' in image list"

let rec parse_indims acc toks =
  match toks with
  | Sym '>' :: rest -> (List.rev acc, rest)
  | Name d :: Sym '=' :: Sym '[' :: rest -> (
      match rest with
      | Sym ']' :: rest' -> parse_indims ((d, []) :: acc) rest'
      | _ ->
          let images, rest' = parse_images [] rest in
          parse_indims ((d, images) :: acc) rest')
  | _ -> fail "expected input dimension 'name=[...]' or '->'"

let rec parse_outdims acc toks =
  match toks with
  | Name d :: Sym ':' :: Int size :: rest -> (
      if not (Util.is_pow2 size) then fail "output size %d is not a power of two" size;
      let acc = (d, Util.log2 size) :: acc in
      match rest with
      | Sym ',' :: rest' -> parse_outdims acc rest'
      | [] -> List.rev acc
      | _ -> fail "expected ',' or end after output dimension")
  | _ -> fail "expected output dimension 'name:size'"

let of_string s =
  try
    let toks = tokenize s in
    let ins, rest = parse_indims [] toks in
    let outs = parse_outdims [] rest in
    let layout =
      Layout.make
        ~ins:(List.map (fun (d, images) -> (d, List.length images)) ins)
        ~outs ~bases:ins
    in
    Ok layout
  with
  | Parse_error e -> Error e
  | Failure e -> Error e
  | Layout.Error e -> Error e
