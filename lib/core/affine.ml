type t = { linear : Layout.t; offset : (string * int) list }

let normalize_offset l offset =
  List.iter
    (fun (d, v) ->
      if not (Layout.has_out_dim l d) then
        raise (Layout.Error (Printf.sprintf "Affine: offset names unknown dimension %s" d));
      if v lsr Layout.out_bits l d <> 0 then
        raise (Layout.Error (Printf.sprintf "Affine: offset out of range for %s" d)))
    offset;
  List.map
    (fun (d, _) -> (d, try List.assoc d offset with Not_found -> 0))
    (Layout.out_dims l)

let make l ~offset = { linear = l; offset = normalize_offset l offset }
let of_linear l = make l ~offset:[]

let xor_assoc a b =
  List.map (fun (d, v) -> (d, v lxor (try List.assoc d b with Not_found -> 0))) a

let apply t point = xor_assoc (Layout.apply t.linear point) t.offset

let compose a2 a1 =
  let linear = Layout.compose a2.linear a1.linear in
  let moved = Layout.apply a2.linear a1.offset in
  { linear; offset = normalize_offset linear (xor_assoc moved a2.offset) }

let invert t =
  let li = Layout.invert t.linear in
  { linear = li; offset = normalize_offset li (Layout.apply li t.offset) }

let flip l ~dim =
  let d = Dims.dim dim in
  make l ~offset:[ (d, Layout.out_size l d - 1) ]

let slice l ~dim ~start ~size =
  if not (Util.is_pow2 size) then invalid_arg "Affine.slice: size must be a power of two";
  if start mod size <> 0 then invalid_arg "Affine.slice: start must be aligned to size";
  let d = Dims.dim dim in
  if start + size > Layout.out_size l d then invalid_arg "Affine.slice: window out of range";
  (* Drop the hardware basis vectors that select which window of [dim]
     an element falls in; the remaining map covers one window, and the
     XOR offset re-bases it at [start]. *)
  let selects_window in_dim k =
    match List.assoc_opt d (Layout.basis l in_dim k) with
    | Some c -> c >= size
    | None -> false
  in
  let ins =
    Layout.in_dims l
    |> List.map (fun (in_dim, bits) ->
           let keep =
             List.filter (fun k -> not (selects_window in_dim k)) (List.init bits Fun.id)
           in
           (in_dim, keep))
  in
  let reduced =
    Layout.make
      ~ins:(List.map (fun (d', keep) -> (d', List.length keep)) ins)
      ~outs:(Layout.out_dims l)
      ~bases:(List.map (fun (d', keep) -> (d', List.map (Layout.basis l d') keep)) ins)
  in
  make reduced ~offset:[ (d, start) ]

let is_linear t = List.for_all (fun (_, v) -> v = 0) t.offset

let equal a b =
  Layout.equal a.linear b.linear
  && List.sort compare a.offset = List.sort compare b.offset

let pp ppf t =
  Format.fprintf ppf "%a@,offset: (%s)" Layout.pp t.linear
    (String.concat ", " (List.map (fun (d, v) -> Printf.sprintf "%s:%d" d v) t.offset))
