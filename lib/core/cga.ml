let distribute layout ~blocks ~shape =
  let shape_bits = Array.map Util.log2 shape in
  let order = Blocked.row_major_order (Array.length shape) in
  Build.cover ~base:layout
    ~levels:[ (Dims.block, Array.map Util.log2 blocks) ]
    ~shape_bits ~order

let num_blocks l = Layout.in_size l Dims.block
