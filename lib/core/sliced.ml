let make parent ~dim = Layout.remove_out_dim parent (Dims.dim dim)

let compress l ~in_dim =
  let mask = try List.assoc in_dim (Layout.free_variable_masks l) with Not_found -> 0 in
  if mask = 0 then l
  else
    let keep =
      List.init (Layout.in_bits l in_dim) Fun.id
      |> List.filter (fun k -> not (F2.Bitvec.bit mask k))
    in
    let bases =
      Layout.in_dims l
      |> List.map (fun (d, bits) ->
             let idxs = if d = in_dim then keep else List.init bits Fun.id in
             (d, List.map (fun k -> Layout.basis l d k) idxs))
    in
    let ins =
      Layout.in_dims l
      |> List.map (fun (d, bits) -> (d, if d = in_dim then List.length keep else bits))
    in
    Layout.make ~ins ~outs:(Layout.out_dims l) ~bases

let reduction_result parent ~dim = compress (make parent ~dim) ~in_dim:Dims.register
