(** Sliced layouts (Proposition 4.8): the result of removing one logical
    dimension from a parent distributed layout, as produced by
    reductions and consumed by broadcasts. *)

(** [make parent ~dim] projects away logical dimension [dim].  The
    result stays surjective but typically stops being injective: the
    hardware indices that used to map along [dim] become free
    (broadcast) bits. *)
val make : Layout.t -> dim:int -> Layout.t

(** [compress l ~in_dim] removes the free basis vectors of [in_dim]
    (per {!Layout.free_variable_masks}), renumbering the dimension.  A
    reduction keeps one register per distinct output element, so its
    result layout is [compress (make parent ~dim) ~in_dim:Dims.register]. *)
val compress : Layout.t -> in_dim:string -> Layout.t

(** [expand l ~dim ~parent] re-inserts dimension [dim] by composing with
    the parent: used to give a broadcast result the parent's layout. *)
val reduction_result : Layout.t -> dim:int -> Layout.t
(** [reduction_result parent ~dim] is [compress (make parent ~dim)
    ~in_dim:Dims.register]: the canonical layout of [tt.sum(parent, dim)]. *)
