(** A textual format for layouts, for CLI use and test fixtures.

    Grammar (whitespace-insensitive):
    {v
      layout  := indim* "->" outdims
      indim   := name "=" "[" image ("," image)* "]"   (or "[]" )
      image   := "0" | "(" coord ("," coord)* ")"
      coord   := name ":" int
      outdims := name ":" int ("," name ":" int)*      (sizes, powers of 2)
    v}

    Example — the paper's Layout A:
    {v
      register=[(dim1:1),(dim0:1)]
      lane=[(dim1:2),(dim1:4),(dim1:8),(dim0:2),(dim0:4)]
      warp=[(dim0:8)]
      -> dim0:16, dim1:16
    v} *)

(** [to_string l] prints in the grammar above; [of_string] parses it
    back ([of_string (to_string l) = Ok l]). *)
val to_string : Layout.t -> string

val of_string : string -> (Layout.t, string) result
