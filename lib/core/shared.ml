let id = Build.id

let fold_dims order shape =
  List.fold_left
    (fun acc d -> Layout.mul acc (id (Util.log2 shape.(d)) ~in_dim:Dims.offset d))
    Layout.empty order

let row_major ~shape =
  let n = Array.length shape in
  fold_dims (List.init n (fun i -> n - 1 - i)) shape

let column_major ~shape =
  let n = Array.length shape in
  fold_dims (List.init n Fun.id) shape

let swizzle_offset ~vec ~per_phase ~max_phase ~cols i j =
  let phase = i / per_phase mod max_phase in
  let within_row = ((phase lxor (j / vec)) * vec) lxor (j mod vec) in
  (i * cols) lxor within_row

let mma_swizzle ~vec ~per_phase ~max_phase ~rows ~cols =
  let m = Util.log2 rows and n = Util.log2 cols in
  let v = Util.log2 vec in
  ignore v;
  let c i = vec * (1 lsl i / per_phase mod max_phase) mod cols in
  let bases =
    List.init n (fun k -> [ (Dims.dim 1, 1 lsl k) ])
    @ List.init m (fun i -> [ (Dims.dim 0, 1 lsl i); (Dims.dim 1, c i) ])
  in
  Layout.make
    ~ins:[ (Dims.offset, m + n) ]
    ~outs:[ (Dims.dim 0, m); (Dims.dim 1, n) ]
    ~bases:[ (Dims.offset, bases) ]

let of_basis_columns ~shape cols =
  let outs = Array.to_list (Array.mapi (fun d s -> (Dims.dim d, Util.log2 s)) shape) in
  let rows = List.fold_left (fun acc (_, b) -> acc + b) 0 outs in
  Layout.of_matrix
    ~ins:[ (Dims.offset, List.length cols) ]
    ~outs
    (F2.Bitmatrix.make ~rows (Array.of_list cols))
