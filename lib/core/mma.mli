(** MMA-family layouts (Proposition 4.7 / 9.2): the register layouts
    required by matrix-multiplication intrinsics.

    The NVIDIA tiles follow the constructions in the paper's appendix:
    for an element bitwidth [b], the lhs/output tile is
    [id_{log2(32/b)}^{Reg,1} x id_2^{Thr,1} x id_3^{Thr,0} x
     id_1^{Reg,0} x id_1^{Reg,1}]
    and the rhs tile its transpose with half the registers.  [wgmma]
    tiles extend the lhs tile across a warp group with
    [id_2^{Wrp,0}].  AMD [mfma] tiles use 64-lane warps. *)

(** Per-warp output (accumulator) tile for [mma] with the given element
    bitwidth. *)
val output_tile : bitwidth:int -> Layout.t

(** Per-warp operand tiles for [mma]; [idx] is 0 for lhs, 1 for rhs. *)
val operand_tile : idx:int -> bitwidth:int -> Layout.t

(** Per-warp-group output tile for [wgmma]. *)
val wgmma_output_tile : bitwidth:int -> Layout.t

(** AMD matrix-core accumulator tiles ([mfma]), 64 lanes per warp. *)
val mfma_output_tile : m:int -> Layout.t
(** [m] is 16 or 32. *)

(** Intel XMX ([dpas]) accumulator tile: an 8 x 16 tile held by a
    16-lane subgroup. Defining it is all an out-of-tree backend needs —
    every generic algorithm (conversion, swizzling, engine) applies
    unchanged. *)
val xmx_output_tile : unit -> Layout.t

(** [output ~bitwidth ~warps ~shape] distributes {!output_tile} over a
    CTA: [warps] gives warps per logical dim; any remaining tensor is
    covered by register replication. *)
val output :
  ?warp_order:int array -> bitwidth:int -> warps:int array -> shape:int array -> unit -> Layout.t

val wgmma_output :
  ?warp_order:int array -> bitwidth:int -> warp_groups:int array -> shape:int array -> unit -> Layout.t

val mfma_output :
  ?warp_order:int array -> m:int -> warps:int array -> shape:int array -> unit -> Layout.t

val xmx_output :
  ?warp_order:int array -> warps:int array -> shape:int array -> unit -> Layout.t

(** [operand ~idx ~bitwidth ~warps ~shape] builds the dot-operand layout
    matching {!output} with the same [warps]: warp bits along the
    operand's outer dimension map identically, warp bits along the inner
    (reduction) dimension broadcast, and the rest of the operand tensor
    is covered by register replication (appendix, Proposition 9.2).
    [shape] is the operand's own shape ([M,K] for idx 0, [K,N] for
    idx 1); [warps] is the output's warp grid over [M,N].  Warp bits
    along the operand's outer dimension select the same coordinates as
    the matching output layout's warp bits (pass [out_tile] when the
    output tile is not the NVIDIA m16n8 accumulator), which may
    duplicate tile columns — benign replication. *)
val operand :
  ?warp_order:int array ->
  ?out_tile:Layout.t ->
  idx:int ->
  bitwidth:int ->
  warps:int array ->
  shape:int array ->
  unit ->
  Layout.t
