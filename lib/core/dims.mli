(** Canonical dimension labels for the labeled vector spaces of linear
    layouts (Section 4.1 of the paper).

    Hardware (input) dimensions describe where an element lives:
    {!register} within a thread, {!lane} within a warp, {!warp} within a
    CTA, {!block} across CTAs, and {!offset} for memory layouts.  The
    shared-memory model of Section 5.4 additionally splits offsets into
    {!vec}, {!bank} and {!seg} spaces.

    Logical (output) dimensions [dim0, dim1, ...] index the logical
    tensor.

    Every dimension list inside a layout is kept in the canonical order
    defined by {!compare}; the first dimension in canonical order
    occupies the least-significant bits of the flattened bit-vector.
    For logical dimensions the canonical order puts {e higher} indices
    first, so a row-major 2-D tensor flattens with [dim1] (the fastest
    moving dimension) in the low bits — exactly the convention of the
    matrix [A] in Section 4.1. *)

val register : string
val lane : string
val warp : string
val block : string
val offset : string
val vec : string
val bank : string
val seg : string

(** The label used by [Layout.flatten_outs]/[flatten_ins]. *)
val flat : string

(** [dim k] is the label of logical tensor dimension [k], e.g. ["dim0"]. *)
val dim : int -> string

(** [dim_index "dim3"] is [Some 3]; [None] for non-logical labels. *)
val dim_index : string -> int option

(** Total order used to canonicalize dimension lists: hardware dims in
    the order register, lane, warp, block, offset, vec, bank, seg; then
    logical dims with higher index first; then anything else
    alphabetically. *)
val compare : string -> string -> int

(** Sorts labels canonically. *)
val sort : (string * 'a) list -> (string * 'a) list
