(** Affine layouts: the Section 8 extension [y = A x (+) b].

    Operations like flipping a dimension or taking an aligned slice are
    not linear (they do not fix 0) but become expressible with a
    constant XOR offset [b] on the output.  Because the offset is just
    a translation, all the structural machinery of linear layouts
    (conversion planning, swizzling) applies to the linear part [a],
    with [b] folded into address computation. *)

type t = {
  linear : Layout.t;
  offset : (string * int) list;  (** XOR-ed onto the output, per dimension *)
}

(** A linear layout viewed as affine with zero offset. *)
val of_linear : Layout.t -> t

(** [make l ~offset] — offsets for absent dimensions are rejected. *)
val make : Layout.t -> offset:(string * int) list -> t

val apply : t -> (string * int) list -> (string * int) list

(** Composition: [(A2, b2) o (A1, b1) = (A2 A1, A2 b1 (+) b2)]. *)
val compose : t -> t -> t

(** Inverse of a bijective affine layout:
    [x = A^-1 y (+) A^-1 b]. *)
val invert : t -> t

(** [flip l ~dim] reverses logical dimension [dim]:
    [i -> (n-1) - i], which over a power-of-two range is the affine map
    [i -> i (+) (n-1)]. *)
val flip : Layout.t -> dim:int -> t

(** [slice l ~dim ~start ~size] re-bases an aligned power-of-two window
    [start, start+size) of dimension [dim] at zero ([start] must be a
    multiple of [size]): the resulting affine layout maps the original
    hardware indices onto window coordinates. *)
val slice : Layout.t -> dim:int -> start:int -> size:int -> t

val is_linear : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
