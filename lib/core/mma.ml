let id = Build.id

let fold_mul = List.fold_left Layout.mul Layout.empty

let reg_packing ~bitwidth =
  if bitwidth > 32 || 32 mod bitwidth <> 0 then
    invalid_arg "Mma: bitwidth must divide 32"
  else Util.log2 (32 / bitwidth)

(* Appendix, Proposition 9.2: lhs/output tile
   id_{log2(32/b)}^{Reg,1} x id_2^{Thr,1} x id_3^{Thr,0}
   x id_1^{Reg,0} x id_1^{Reg,1}. *)
let lhs_tile ~bitwidth =
  let k = reg_packing ~bitwidth in
  fold_mul
    [
      id k ~in_dim:Dims.register 1;
      id 2 ~in_dim:Dims.lane 1;
      id 3 ~in_dim:Dims.lane 0;
      id 1 ~in_dim:Dims.register 0;
      id 1 ~in_dim:Dims.register 1;
    ]

(* The transpose of the lhs tile with half the registers per thread:
   id_{log2(32/b)}^{Reg,0} x id_2^{Thr,0} x id_3^{Thr,1} x id_1^{Reg,1}. *)
let rhs_tile ~bitwidth =
  let k = reg_packing ~bitwidth in
  fold_mul
    [
      id k ~in_dim:Dims.register 0;
      id 2 ~in_dim:Dims.lane 0;
      id 3 ~in_dim:Dims.lane 1;
      id 1 ~in_dim:Dims.register 1;
    ]

let output_tile ~bitwidth = lhs_tile ~bitwidth
let operand_tile ~idx ~bitwidth =
  match idx with
  | 0 -> lhs_tile ~bitwidth
  | 1 -> rhs_tile ~bitwidth
  | _ -> invalid_arg "Mma.operand_tile: idx must be 0 or 1"

let wgmma_output_tile ~bitwidth =
  Layout.mul (lhs_tile ~bitwidth) (id 2 ~in_dim:Dims.warp 0)

let mfma_output_tile ~m =
  match m with
  | 16 ->
      fold_mul
        [ id 2 ~in_dim:Dims.register 0; id 4 ~in_dim:Dims.lane 1; id 2 ~in_dim:Dims.lane 0 ]
  | 32 ->
      fold_mul
        [
          id 2 ~in_dim:Dims.register 0;
          id 5 ~in_dim:Dims.lane 1;
          id 1 ~in_dim:Dims.lane 0;
          id 2 ~in_dim:Dims.register 0;
        ]
  | _ -> invalid_arg "Mma.mfma_output_tile: m must be 16 or 32"

(* Intel XMX (dpas) accumulator tile: a 16-lane subgroup holds an
   8 x 16 tile, one row per register. *)
let xmx_output_tile () =
  fold_mul [ id 4 ~in_dim:Dims.lane 1; id 3 ~in_dim:Dims.register 0 ]

let default_order n = Array.init n Fun.id

let distribute tile ?warp_order ~warps ~shape () =
  let n = Array.length shape in
  let warp_order = match warp_order with Some o -> o | None -> default_order n in
  let shape_bits = Array.map Util.log2 shape in
  let with_warps =
    Build.cover ~base:tile
      ~levels:[ (Dims.warp, Array.map Util.log2 warps) ]
      ~shape_bits ~order:warp_order
  in
  (* Cover the remaining tensor with register replication, fastest
     (last) dimension first. *)
  Build.cover ~base:with_warps ~levels:[] ~shape_bits
    ~order:(Blocked.row_major_order n)

let output ?warp_order ~bitwidth ~warps ~shape () =
  distribute (output_tile ~bitwidth) ?warp_order ~warps ~shape ()

let wgmma_output ?warp_order ~bitwidth ~warp_groups ~shape () =
  distribute (wgmma_output_tile ~bitwidth) ?warp_order ~warps:warp_groups ~shape ()

let mfma_output ?warp_order ~m ~warps ~shape () =
  distribute (mfma_output_tile ~m) ?warp_order ~warps ~shape ()

let xmx_output ?warp_order ~warps ~shape () =
  distribute (xmx_output_tile ()) ?warp_order ~warps ~shape ()

let operand ?warp_order ?out_tile ~idx ~bitwidth ~warps ~shape () =
  let n = Array.length warps in
  let warp_order = match warp_order with Some o -> o | None -> default_order n in
  let out_tile = match out_tile with Some t -> t | None -> output_tile ~bitwidth:32 in
  let tile = operand_tile ~idx ~bitwidth in
  let outer = if idx = 0 then 0 else 1 in
  let inner = 1 - outer in
  let shape_bits = Array.map Util.log2 shape in
  (* Warp bits must select the same coordinates of the outer dimension
     as the matching output layout's warp bits do — otherwise a warp's
     fragment would not cover its own output tile.  The output
     allocates warp bits just above its tile, so the operand's warp bit
     [i] along the outer dim maps to coordinate bit
     [out_tile_bits + i].  When that collides with the (wider) operand
     tile, the column is duplicated — benign replication.  Warp bits
     along the dimension the operand lacks broadcast (zero columns), as
     in the appendix's Proposition 9.2. *)
  let out_tile_bits = Layout.out_bits out_tile (Dims.dim outer) in
  let warp_images =
    Array.to_list warp_order
    |> List.concat_map (fun d ->
           List.init (Util.log2 warps.(d)) (fun i ->
               if d <> outer then []
               else
                 let coord_bit = out_tile_bits + i in
                 if coord_bit >= shape_bits.(outer) then []
                 else [ (Dims.dim outer, 1 lsl coord_bit) ]))
  in
  let with_warps =
    if warp_images = [] then tile
    else
      let needed_outer =
        List.fold_left
          (fun acc img ->
            match img with [ (_, c) ] -> max acc (F2.Bitvec.width c) | _ -> acc)
          (Layout.out_bits tile (Dims.dim outer))
          warp_images
      in
      let grow (d, bits) = (d, if d = Dims.dim outer then max bits needed_outer else bits) in
      Layout.make
        ~ins:(Layout.in_dims tile @ [ (Dims.warp, List.length warp_images) ])
        ~outs:(List.map grow (Layout.out_dims tile))
        ~bases:
          (List.map
             (fun (d, bits) -> (d, List.init bits (Layout.basis tile d)))
             (Layout.in_dims tile)
          @ [ (Dims.warp, warp_images) ])
  in
  (* Replicate registers to cover the reduction dimension first, then
     any leftover rows/columns of the outer dimension. *)
  Build.cover ~base:with_warps ~levels:[] ~shape_bits ~order:[| inner; outer |]
