(** Unified compiler diagnostics.

    Every analysis in the system — the layout well-formedness checks of
    {!Check}, the TIR verifier, and the static-analysis passes over
    lowered instruction streams and conversion plans — reports issues
    through this one type, so renderers, severity filters and the CLI
    see a single format.

    Diagnostic codes are stable identifiers of the form [LLxyz]:

    - [LL1xx] layout well-formedness (distributed / memory /
      convertible characterizations, Definitions 4.10 and 4.14);
    - [LL2xx] races and barriers in lowered instruction streams;
    - [LL3xx] bank-conflict certification of shared-memory plans
      (Lemma 9.4 vs. the brute-force bank simulator);
    - [LL4xx] global-memory coalescing / vectorization lints;
    - [LL5xx] broadcast-redundancy lints (duplicated compute);
    - [LL6xx] TIR layout-assignment verification and translation
      validation ([LL62x] pass-level semantic certificates, [LL65x]
      symbolic certification of lowered conversion plans);
    - [LL7xx] engine pass-pipeline consistency (skipped/misordered
      passes leaving the cost model incomplete). *)

type severity = Error | Warning

(** Where a diagnostic points. *)
type loc =
  | No_loc
  | Tir_instr of int  (** a TIR instruction id ([%3]) *)
  | Isa_instr of int  (** an index into a lowered instruction stream *)
  | Plan of string  (** a named conversion/staging plan *)

type t = {
  code : string;
  severity : severity;
  loc : loc;
  message : string;
  pass : string option;
      (** the engine pass that emitted the diagnostic, when it was
          produced under the pass manager *)
}

val error : code:string -> ?loc:loc -> ('a, Format.formatter, unit, t) format4 -> 'a
val warning : code:string -> ?loc:loc -> ('a, Format.formatter, unit, t) format4 -> 'a

val errors : t list -> t list
val warnings : t list -> t list
val has_errors : t list -> bool

(** [with_loc loc d] replaces [d]'s location when [d] has none. *)
val with_loc : loc -> t -> t

(** [with_pass name d] attributes [d] to a pass when it has no
    attribution yet (the pass manager tags every diagnostic a pass
    appends). *)
val with_pass : string -> t -> t

val pp_loc : Format.formatter -> loc -> unit
val pp : Format.formatter -> t -> unit

(** Renders ["ok"] for the empty list, one diagnostic per line
    otherwise. *)
val pp_list : Format.formatter -> t list -> unit

(** JSON rendering (an array of objects with [code], [severity], [loc],
    [message], [pass] fields) for machine consumers, e.g. the CI
    artifact. *)
val to_json : t list -> string

(** JSON string-content escaping, shared with other JSON emitters. *)
val json_escape : string -> string
