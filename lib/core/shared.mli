(** Memory layouts: maps from shared-memory offsets to logical tensor
    coordinates (Definitions 4.11–4.14). *)

(** [row_major ~shape] is the unswizzled layout: offset [k] holds the
    [k]-th element in row-major order. [shape] gives elements per
    logical dim (powers of two). *)
val row_major : shape:int array -> Layout.t

(** [column_major ~shape] stores the first logical dimension fastest. *)
val column_major : shape:int array -> Layout.t

(** The offset formula of Definition 4.11 (2-D only), for cross-checking
    the layout construction: [swizzle_offset ~vec ~per_phase ~max_phase
    ~cols i j] is the element offset of coordinate [(i, j)]. *)
val swizzle_offset : vec:int -> per_phase:int -> max_phase:int -> cols:int -> int -> int -> int

(** [mma_swizzle ~vec ~per_phase ~max_phase ~rows ~cols] is the linear
    layout of mma swizzling (Proposition 4.12): an invertible map
    [offset -> dim0 x dim1] whose matrix has the
    [[I_n C; 0 I_m]] structure derived in the paper. *)
val mma_swizzle : vec:int -> per_phase:int -> max_phase:int -> rows:int -> cols:int -> Layout.t

(** [of_basis_columns ~shape cols] builds a memory layout for a tensor of
    [shape] from the flattened images of each offset bit; used by the
    optimal-swizzling search of Section 5.4. *)
val of_basis_columns : shape:int array -> int list -> Layout.t
