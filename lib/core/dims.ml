let register = "register"
let lane = "lane"
let warp = "warp"
let block = "block"
let offset = "offset"
let vec = "vec"
let bank = "bank"
let seg = "seg"
let flat = "flat"
let dim k = "dim" ^ string_of_int k

let dim_index name =
  if String.length name > 3 && String.sub name 0 3 = "dim" then
    int_of_string_opt (String.sub name 3 (String.length name - 3))
  else None

(* Sort keys: (group, numeric subkey, name). Hardware dims come first in a
   fixed order; logical dims follow with higher indices first so that the
   fastest-moving (last) logical dimension lands in the low bits of the
   flattened vector; unknown labels sort alphabetically at the end. *)
let key name =
  match name with
  | "register" -> (0, 0, name)
  | "lane" -> (1, 0, name)
  | "warp" -> (2, 0, name)
  | "block" -> (3, 0, name)
  | "offset" -> (4, 0, name)
  | "vec" -> (5, 0, name)
  | "bank" -> (6, 0, name)
  | "seg" -> (7, 0, name)
  | "flat" -> (8, 0, name)
  | _ -> (
      match dim_index name with
      | Some k -> (9, -k, name)
      | None -> (10, 0, name))

let compare a b = Stdlib.compare (key a) (key b)
let sort l = List.sort (fun (a, _) (b, _) -> compare a b) l
