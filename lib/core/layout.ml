exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* Invariants:
   - [ins] and [outs] are sorted by [Dims.compare] and duplicate-free;
   - [bases.(i)] has [snd ins.(i)] entries, each an array indexed like
     [outs], with entry [o] < [2 ^ snd outs.(o)];
   - the first dimension in canonical order occupies the low bits of
     flattened values. *)
type t = {
  ins : (string * int) array;
  outs : (string * int) array;
  bases : int array array array;
}

(* {1 Internal helpers} *)

let check_dims what dims =
  let rec go = function
    | [] | [ _ ] -> ()
    | (a, _) :: ((b, _) :: _ as rest) ->
        if a = b then error "duplicate %s dimension %s" what a;
        go rest
  in
  List.iter (fun (d, bits) -> if bits < 0 then error "%s dim %s has negative bits" what d) dims;
  go (Dims.sort dims)

let find_dim dims d =
  let n = Array.length dims in
  let rec go i = if i >= n then None else if fst dims.(i) = d then Some i else go (i + 1) in
  go 0

let dim_bits dims d = match find_dim dims d with Some i -> snd dims.(i) | None -> 0

let offset_of dims i =
  let acc = ref 0 in
  for j = 0 to i - 1 do
    acc := !acc + snd dims.(j)
  done;
  !acc

let total_bits dims = Array.fold_left (fun acc (_, b) -> acc + b) 0 dims

let flatten dims coords =
  (* [coords] indexed like [dims]. *)
  let acc = ref 0 and pos = ref 0 in
  Array.iteri
    (fun o (_, bits) ->
      acc := !acc lor (coords.(o) lsl !pos);
      pos := !pos + bits)
    dims;
  !acc

let unflatten dims v =
  let pos = ref 0 in
  Array.map
    (fun (_, bits) ->
      let c = F2.Bitvec.extract v ~pos:!pos ~len:bits in
      pos := !pos + bits;
      c)
    dims

let assoc_to_coords what dims assoc =
  let coords = Array.make (Array.length dims) 0 in
  List.iter
    (fun (d, v) ->
      match find_dim dims d with
      | Some o ->
          if v lsr snd dims.(o) <> 0 then
            error "%s: coordinate %d out of range for %s (%d bits)" what v d (snd dims.(o));
          coords.(o) <- coords.(o) lxor v
      | None -> if v <> 0 then error "%s: unknown dimension %s" what d)
    assoc;
  coords

let coords_to_assoc dims coords =
  Array.to_list dims |> List.mapi (fun o (d, _) -> (d, coords.(o)))

(* {1 Observation} *)

let in_dims l = Array.to_list l.ins
let out_dims l = Array.to_list l.outs
let has_in_dim l d = find_dim l.ins d <> None
let has_out_dim l d = find_dim l.outs d <> None
let in_bits l d = dim_bits l.ins d
let out_bits l d = dim_bits l.outs d
let total_in_bits l = total_bits l.ins
let total_out_bits l = total_bits l.outs
let in_size l d = 1 lsl in_bits l d
let out_size l d = 1 lsl out_bits l d

let basis_coords l d k =
  match find_dim l.ins d with
  | None -> error "basis: no input dimension %s" d
  | Some i ->
      if k < 0 || k >= snd l.ins.(i) then error "basis: index %d out of range for %s" k d;
      l.bases.(i).(k)

let basis l d k =
  coords_to_assoc l.outs (basis_coords l d k) |> List.filter (fun (_, c) -> c <> 0)

let basis_flat l d k = flatten l.outs (basis_coords l d k)

let flat_columns l d =
  match find_dim l.ins d with
  | None -> []
  | Some i -> Array.to_list l.bases.(i) |> List.map (flatten l.outs)

let apply l point =
  let out = Array.make (Array.length l.outs) 0 in
  List.iter
    (fun (d, v) ->
      match find_dim l.ins d with
      | Some i ->
          if v lsr snd l.ins.(i) <> 0 then
            error "apply: index %d out of range for %s (%d bits)" v d (snd l.ins.(i));
          for k = 0 to snd l.ins.(i) - 1 do
            if F2.Bitvec.bit v k then
              Array.iteri (fun o c -> out.(o) <- out.(o) lxor c) l.bases.(i).(k)
          done
      | None -> if v <> 0 then error "apply: unknown input dimension %s" d)
    point;
  coords_to_assoc l.outs out

let to_matrix l =
  let cols = ref [] in
  Array.iteri
    (fun i (_, bits) ->
      for k = 0 to bits - 1 do
        cols := flatten l.outs l.bases.(i).(k) :: !cols
      done;
      ignore i)
    l.ins;
  F2.Bitmatrix.make ~rows:(total_bits l.outs) (Array.of_list (List.rev !cols))

let apply_flat l v = F2.Bitmatrix.apply (to_matrix l) v

let flatten_value dims point =
  check_dims "flatten_value" dims;
  let dims = Array.of_list (Dims.sort dims) in
  flatten dims (assoc_to_coords "flatten_value" dims point)

let unflatten_value dims v =
  check_dims "unflatten_value" dims;
  let dims = Array.of_list (Dims.sort dims) in
  coords_to_assoc dims (unflatten dims v)

(* {1 Construction} *)

let empty = { ins = [||]; outs = [||]; bases = [||] }

let make ~ins ~outs ~bases =
  check_dims "input" ins;
  check_dims "output" outs;
  let ins = Array.of_list (Dims.sort ins) and outs = Array.of_list (Dims.sort outs) in
  let base_table =
    Array.map
      (fun (d, bits) ->
        let images = try List.assoc d bases with Not_found -> [] in
        if List.length images <> bits then
          error "make: dimension %s needs %d basis images, got %d" d bits (List.length images);
        Array.of_list (List.map (assoc_to_coords "make" outs) images))
      ins
  in
  List.iter
    (fun (d, _) ->
      if find_dim ins d = None then error "make: bases given for unknown input dimension %s" d)
    bases;
  { ins; outs; bases = base_table }

let identity1d bits ~in_dim ~out_dim =
  make ~ins:[ (in_dim, bits) ] ~outs:[ (out_dim, bits) ]
    ~bases:[ (in_dim, List.init bits (fun k -> [ (out_dim, 1 lsl k) ])) ]

let zeros1d bits ~in_dim ~out_dim =
  make ~ins:[ (in_dim, bits) ] ~outs:[ (out_dim, 0) ]
    ~bases:[ (in_dim, List.init bits (fun _ -> [])) ]

let of_matrix ~ins ~outs m =
  check_dims "input" ins;
  check_dims "output" outs;
  let ins = Array.of_list (Dims.sort ins) and outs = Array.of_list (Dims.sort outs) in
  if F2.Bitmatrix.cols m <> total_bits ins then error "of_matrix: column count mismatch";
  if F2.Bitmatrix.rows m <> total_bits outs then error "of_matrix: row count mismatch";
  let bases =
    Array.mapi
      (fun i (_, bits) ->
        let off = offset_of ins i in
        Array.init bits (fun k -> unflatten outs (F2.Bitmatrix.column m (off + k))))
      ins
  in
  { ins; outs; bases }

(* {1 Algebra} *)

let merge_dims a b =
  (* Union of dimension lists with bits added on shared names. *)
  let tbl = Hashtbl.create 8 in
  Array.iter (fun (d, bits) -> Hashtbl.replace tbl d bits) a;
  Array.iter
    (fun (d, bits) ->
      match Hashtbl.find_opt tbl d with
      | Some prev -> Hashtbl.replace tbl d (prev + bits)
      | None -> Hashtbl.replace tbl d bits)
    b;
  Hashtbl.fold (fun d bits acc -> (d, bits) :: acc) tbl [] |> Dims.sort |> Array.of_list

let mul a b =
  let ins = merge_dims a.ins b.ins and outs = merge_dims a.outs b.outs in
  (* Shift of b's coordinates within each shared output dimension. *)
  let shift_of d = dim_bits a.outs d in
  let lift_image src_outs ~shift coords =
    let out = Array.make (Array.length outs) 0 in
    Array.iteri
      (fun o (d, _) ->
        match find_dim src_outs d with
        | Some so -> out.(o) <- coords.(so) lsl (if shift then shift_of d else 0)
        | None -> ())
      outs;
    out
  in
  let bases =
    Array.map
      (fun (d, _) ->
        let from_a =
          match find_dim a.ins d with
          | Some i -> Array.map (lift_image a.outs ~shift:false) a.bases.(i)
          | None -> [||]
        in
        let from_b =
          match find_dim b.ins d with
          | Some i -> Array.map (lift_image b.outs ~shift:true) b.bases.(i)
          | None -> [||]
        in
        Array.append from_a from_b)
      ins
  in
  { ins; outs; bases }

let compose l2 l1 =
  Array.iter
    (fun (d, bits) ->
      if dim_bits l2.ins d < bits then
        error "compose: output dimension %s of the inner layout (%d bits) exceeds the \
               corresponding input of the outer layout (%d bits)"
          d bits (dim_bits l2.ins d))
    l1.outs;
  let image coords =
    let point = coords_to_assoc l1.outs coords in
    assoc_to_coords "compose" l2.outs (apply l2 point)
  in
  { ins = l1.ins; outs = l2.outs; bases = Array.map (Array.map image) l1.bases }

let is_surjective l = F2.Bitmatrix.is_surjective (to_matrix l)
let is_injective l = F2.Bitmatrix.is_injective (to_matrix l)
let is_invertible l = F2.Bitmatrix.is_invertible (to_matrix l)

(* Both inversions factor once and reuse that factorization for the
   feasibility check and the inverse itself — previously each paid two
   eliminations (predicate + inverse). *)
let invert l =
  let ech = F2.Bitmatrix.factorize (to_matrix l) in
  if not (F2.Bitmatrix.is_invertible_with ech) then error "invert: layout is not invertible";
  of_matrix ~ins:(out_dims l) ~outs:(in_dims l) (F2.Bitmatrix.inverse_with ech)

let pseudo_invert l =
  let ech = F2.Bitmatrix.factorize (to_matrix l) in
  if not (F2.Bitmatrix.is_surjective_with ech) then
    error "pseudo_invert: layout is not surjective";
  of_matrix ~ins:(out_dims l) ~outs:(in_dims l) (F2.Bitmatrix.right_inverse_with ech)

let divide_left l t =
  let exception No in
  try
    Array.iter
      (fun (d, bits) -> if in_bits l d < bits then raise No)
      t.ins;
    Array.iter
      (fun (d, bits) -> if out_bits l d < bits then raise No)
      t.outs;
    (* Check the block structure label-wise. *)
    let tile_out_bits d = dim_bits t.outs d in
    let check_column in_dim k =
      (* The basis [k] of [in_dim] in [l], compared against the tile. *)
      let coords = basis_coords l in_dim k in
      let within_tile = k < dim_bits t.ins in_dim in
      Array.iteri
        (fun o (d, _) ->
          let c = coords.(o) in
          let tb = tile_out_bits d in
          if within_tile then begin
            let expected =
              match find_dim t.ins in_dim with
              | Some i -> (
                  match find_dim t.outs d with Some o' -> t.bases.(i).(k).(o') | None -> 0)
              | None -> 0
            in
            if c <> expected then raise No
          end
          else if c land ((1 lsl tb) - 1) <> 0 then raise No)
        l.outs
    in
    Array.iter (fun (d, bits) -> for k = 0 to bits - 1 do check_column d k done) l.ins;
    (* Quotient: strip the tile's bits from inputs and outputs. *)
    let q_ins =
      Array.to_list l.ins
      |> List.map (fun (d, bits) -> (d, bits - dim_bits t.ins d))
      |> List.filter (fun (_, bits) -> bits > 0)
    in
    let q_outs = Array.to_list l.outs |> List.map (fun (d, bits) -> (d, bits - tile_out_bits d)) in
    let q_bases =
      Array.to_list l.ins
      |> List.filter_map (fun (d, bits) ->
             let skip = dim_bits t.ins d in
             if bits - skip <= 0 then None
             else
               Some
                 ( d,
                   List.init (bits - skip) (fun k ->
                       let coords = basis_coords l d (skip + k) in
                       Array.to_list l.outs
                       |> List.map (fun (od, _) ->
                              let o = Option.get (find_dim l.outs od) in
                              (od, coords.(o) lsr tile_out_bits od))) ))
    in
    Some (make ~ins:q_ins ~outs:q_outs ~bases:q_bases)
  with No -> None

(* {1 Dimension surgery} *)

let select_ins l keep =
  let keep_idx =
    Array.to_list l.ins
    |> List.mapi (fun i (d, _) -> (i, d))
    |> List.filter (fun (_, d) -> List.mem d keep)
  in
  {
    l with
    ins = Array.of_list (List.map (fun (i, _) -> l.ins.(i)) keep_idx);
    bases = Array.of_list (List.map (fun (i, _) -> l.bases.(i)) keep_idx);
  }

let remove_in_dim l d =
  select_ins l (List.filter (fun x -> x <> d) (List.map fst (in_dims l)))

let project_outs l keep =
  let keep_idx =
    Array.to_list l.outs
    |> List.mapi (fun o (d, _) -> (o, d))
    |> List.filter (fun (_, d) -> List.mem d keep)
  in
  let outs = Array.of_list (List.map (fun (o, _) -> l.outs.(o)) keep_idx) in
  let project coords = Array.of_list (List.map (fun (o, _) -> coords.(o)) keep_idx) in
  { l with outs; bases = Array.map (Array.map project) l.bases }

let remove_out_dim l d =
  project_outs l (List.filter (fun x -> x <> d) (List.map fst (out_dims l)))

let rename_dims dims ~old_name ~new_name =
  Array.to_list dims
  |> List.map (fun (d, bits) -> ((if d = old_name then new_name else d), bits))

let rename_out l ~old_name ~new_name =
  if not (has_out_dim l old_name) then error "rename_out: no dimension %s" old_name;
  if has_out_dim l new_name then error "rename_out: dimension %s already exists" new_name;
  let outs = rename_dims l.outs ~old_name ~new_name in
  let bases =
    Array.to_list l.ins
    |> List.mapi (fun i (d, _) ->
           (d, Array.to_list l.bases.(i) |> List.map (fun coords ->
                    List.combine (List.map fst outs)
                      (Array.to_list coords))))
  in
  make ~ins:(in_dims l) ~outs ~bases

let rename_in l ~old_name ~new_name =
  if not (has_in_dim l old_name) then error "rename_in: no dimension %s" old_name;
  if has_in_dim l new_name then error "rename_in: dimension %s already exists" new_name;
  let ins = rename_dims l.ins ~old_name ~new_name in
  let bases =
    ins
    |> List.mapi (fun i (d, _) ->
           (d, Array.to_list l.bases.(i) |> List.map (fun coords ->
                    coords_to_assoc l.outs coords)))
  in
  make ~ins ~outs:(out_dims l) ~bases

let exchange_out_names l spec =
  let target d = match List.assoc_opt d spec with Some d' -> d' | None -> d in
  let outs = Array.to_list l.outs |> List.map (fun (d, bits) -> (target d, bits)) in
  let bases =
    Array.to_list l.ins
    |> List.mapi (fun i (d, _) ->
           ( d,
             Array.to_list l.bases.(i)
             |> List.map (fun coords ->
                    Array.to_list l.outs
                    |> List.mapi (fun o (od, _) -> (target od, coords.(o)))) ))
  in
  make ~ins:(in_dims l) ~outs ~bases

let flatten_outs ?(name = Dims.flat) l =
  let outs = [| (name, total_bits l.outs) |] in
  { l with outs; bases = Array.map (Array.map (fun c -> [| flatten l.outs c |])) l.bases }

let flatten_ins ?(name = Dims.flat) l =
  let bases = Array.concat (Array.to_list l.bases) in
  { l with ins = [| (name, total_bits l.ins) |]; bases = [| bases |] }

let reshape_outs l outs =
  check_dims "reshape_outs" outs;
  if total_bits (Array.of_list outs) <> total_bits l.outs then
    error "reshape_outs: total bits mismatch";
  of_matrix ~ins:(in_dims l) ~outs (to_matrix l)

let reshape_ins l ins =
  check_dims "reshape_ins" ins;
  if total_bits (Array.of_list ins) <> total_bits l.ins then error "reshape_ins: total bits mismatch";
  of_matrix ~ins ~outs:(out_dims l) (to_matrix l)

let resize_in l d bits =
  match find_dim l.ins d with
  | None ->
      if bits = 0 then l
      else
        let zero = make ~ins:[ (d, bits) ] ~outs:[] ~bases:[ (d, List.init bits (fun _ -> [])) ] in
        mul l zero
  | Some i ->
      let cur = snd l.ins.(i) in
      let ins = Array.copy l.ins and bases = Array.copy l.bases in
      ins.(i) <- (d, bits);
      bases.(i) <-
        (if bits <= cur then Array.sub l.bases.(i) 0 bits
         else
           Array.append l.bases.(i)
             (Array.init (bits - cur) (fun _ -> Array.make (Array.length l.outs) 0)));
      { l with ins; bases }

let drop_trivial_dims l =
  let l =
    select_ins l
      (Array.to_list l.ins |> List.filter (fun (_, b) -> b > 0) |> List.map fst)
  in
  project_outs l
    (Array.to_list l.outs |> List.filter (fun (_, b) -> b > 0) |> List.map fst)

(* {1 Predicates and analyses} *)

let equal a b = a.ins = b.ins && a.outs = b.outs && a.bases = b.bases
let equivalent a b = equal (drop_trivial_dims a) (drop_trivial_dims b)
let is_distributed l = is_surjective l && F2.Bitmatrix.is_permutation (to_matrix l)

let is_memory l =
  is_invertible l
  && Array.for_all
       (fun c -> c <> 0 && F2.Bitvec.popcount c <= 2)
       (F2.Bitmatrix.columns (to_matrix l))

let is_trivial_on l dims =
  List.for_all (fun d -> List.for_all (fun c -> c = 0) (flat_columns l d)) dims

let kernel l = F2.Bitmatrix.kernel (to_matrix l)

let free_variable_masks l =
  let pivots = ref [] in
  Array.to_list l.ins
  |> List.mapi (fun i (d, bits) ->
         let mask = ref 0 in
         for k = 0 to bits - 1 do
           let v = flatten l.outs l.bases.(i).(k) in
           if F2.Subspace.independent_from !pivots v then pivots := v :: !pivots
           else mask := !mask lor (1 lsl k)
         done;
         (d, !mask))

let num_consecutive l ~in_dim =
  let rec go k = function
    | c :: rest when c = 1 lsl k -> go (k + 1) rest
    | _ -> 1 lsl k
  in
  go 0 (flat_columns l in_dim)

(* {1 Memoization} *)

(* Layouts are immutable, so every operation on them is a pure function
   of its arguments: memo tables never need invalidation.  Tables are
   domain-local (via [Domain.DLS]) so OCaml 5 domains — e.g. the
   parallel autotuner — each own a private cache and never contend. *)
module Memo = struct
  (* A cheap structural hash: FNV-style fold over the dimension lists
     and basis coordinates.  Polymorphic [Hashtbl.hash] stops after a
     bounded number of nodes, which collides badly on layouts differing
     only deep in [bases]; this visits every coordinate (layouts are
     small: tens of ints). *)
  let hash l =
    let h = ref 0x811c9dc5 in
    let mix x = h := (!h lxor x) * 0x01000193 land max_int in
    Array.iter
      (fun (d, b) ->
        mix (Hashtbl.hash (d : string));
        mix b)
      l.ins;
    Array.iter
      (fun (d, b) ->
        mix (Hashtbl.hash (d : string));
        mix b)
      l.outs;
    Array.iter (Array.iter (Array.iter mix)) l.bases;
    !h

  module H1 = Hashtbl.Make (struct
    type nonrec t = t

    let equal = equal
    let hash = hash
  end)

  module H2 = Hashtbl.Make (struct
    type nonrec t = t * t

    let equal (a1, b1) (a2, b2) = equal a1 a2 && equal b1 b2
    let hash (a, b) = (hash a * 0x01000193) lxor hash b
  end)

  module HS = Hashtbl.Make (struct
    type nonrec t = t * string

    let equal (a1, s1) (a2, s2) = String.equal s1 s2 && equal a1 a2
    let hash (a, s) = hash a lxor Hashtbl.hash s
  end)

  type stats = { mutable hits : int; mutable misses : int }

  type tables = {
    stats : stats;
    interned : t H1.t;
    compose_t : t H2.t;
    invert_t : t H1.t;
    pseudo_invert_t : t H1.t;
    flatten_outs_t : t HS.t;
    flat_columns_t : int list HS.t;
    num_consecutive_t : int HS.t;
    free_masks_t : (string * int) list H1.t;
    matrix_t : F2.Bitmatrix.t H1.t;
    echelon_t : F2.Bitmatrix.echelon H1.t;
  }

  let fresh () =
    {
      stats = { hits = 0; misses = 0 };
      interned = H1.create 256;
      compose_t = H2.create 256;
      invert_t = H1.create 64;
      pseudo_invert_t = H1.create 64;
      flatten_outs_t = HS.create 256;
      flat_columns_t = HS.create 256;
      num_consecutive_t = HS.create 64;
      free_masks_t = H1.create 64;
      matrix_t = H1.create 256;
      echelon_t = H1.create 128;
    }

  let key = Domain.DLS.new_key fresh
  let tables () = Domain.DLS.get key
  let hits () = (tables ()).stats.hits
  let misses () = (tables ()).stats.misses

  let reset_stats () =
    let s = (tables ()).stats in
    s.hits <- 0;
    s.misses <- 0

  let clear () =
    let tb = tables () in
    H1.reset tb.interned;
    H2.reset tb.compose_t;
    H1.reset tb.invert_t;
    H1.reset tb.pseudo_invert_t;
    HS.reset tb.flatten_outs_t;
    HS.reset tb.flat_columns_t;
    HS.reset tb.num_consecutive_t;
    H1.reset tb.free_masks_t;
    H1.reset tb.matrix_t;
    H1.reset tb.echelon_t

  (* Canonical representative without touching the counters — used to
     hash-cons the results stored in the memo tables. *)
  let intern_quiet tb l =
    match H1.find_opt tb.interned l with
    | Some c -> c
    | None ->
        H1.add tb.interned l l;
        l

  let intern l =
    let tb = tables () in
    match H1.find_opt tb.interned l with
    | Some c ->
        tb.stats.hits <- tb.stats.hits + 1;
        c
    | None ->
        tb.stats.misses <- tb.stats.misses + 1;
        H1.add tb.interned l l;
        l

  let hit tb = tb.stats.hits <- tb.stats.hits + 1
  let miss tb = tb.stats.misses <- tb.stats.misses + 1

  (* Memo a layout-valued operation (the result is hash-consed through
     the intern table so chained lookups share representatives). *)
  let memo_layout find add tbl k compute =
    let tb = tables () in
    match find (tbl tb) k with
    | Some r ->
        hit tb;
        r
    | None ->
        let r = intern_quiet tb (compute ()) in
        miss tb;
        add (tbl tb) k r;
        r

  (* Memo a plain-valued operation. *)
  let memo_value find add tbl k compute =
    let tb = tables () in
    match find (tbl tb) k with
    | Some r ->
        hit tb;
        r
    | None ->
        let r = compute () in
        miss tb;
        add (tbl tb) k r;
        r

  let compose l2 l1 =
    memo_layout H2.find_opt H2.add (fun tb -> tb.compose_t) (l2, l1) (fun () -> compose l2 l1)

  let to_matrix_fwd = to_matrix

  let rec to_matrix l =
    memo_value H1.find_opt H1.add (fun tb -> tb.matrix_t) l (fun () -> to_matrix_fwd l)

  (* The memoized factorization: one elimination per distinct layout,
     shared by [invert], [pseudo_invert] and the predicates below.  A
     planner cache miss that checks invertibility and then inverts pays
     one elimination total, not one per question. *)
  and echelon l =
    memo_value H1.find_opt H1.add
      (fun tb -> tb.echelon_t)
      l
      (fun () -> F2.Bitmatrix.factorize (to_matrix l))

  let is_surjective l = F2.Bitmatrix.is_surjective_with (echelon l)
  let is_injective l = F2.Bitmatrix.is_injective_with (echelon l)
  let is_invertible l = F2.Bitmatrix.is_invertible_with (echelon l)

  let invert l =
    memo_layout H1.find_opt H1.add
      (fun tb -> tb.invert_t)
      l
      (fun () ->
        let ech = echelon l in
        if not (F2.Bitmatrix.is_invertible_with ech) then
          error "invert: layout is not invertible";
        of_matrix ~ins:(out_dims l) ~outs:(in_dims l) (F2.Bitmatrix.inverse_with ech))

  let pseudo_invert l =
    memo_layout H1.find_opt H1.add
      (fun tb -> tb.pseudo_invert_t)
      l
      (fun () ->
        let ech = echelon l in
        if not (F2.Bitmatrix.is_surjective_with ech) then
          error "pseudo_invert: layout is not surjective";
        of_matrix ~ins:(out_dims l) ~outs:(in_dims l) (F2.Bitmatrix.right_inverse_with ech))

  let flatten_outs ?(name = Dims.flat) l =
    memo_layout HS.find_opt HS.add
      (fun tb -> tb.flatten_outs_t)
      (l, name)
      (fun () -> flatten_outs ~name l)

  let flat_columns l d =
    memo_value HS.find_opt HS.add (fun tb -> tb.flat_columns_t) (l, d) (fun () -> flat_columns l d)

  let num_consecutive l ~in_dim =
    memo_value HS.find_opt HS.add
      (fun tb -> tb.num_consecutive_t)
      (l, in_dim)
      (fun () -> num_consecutive l ~in_dim)

  let free_variable_masks l =
    memo_value H1.find_opt H1.add
      (fun tb -> tb.free_masks_t)
      l
      (fun () -> free_variable_masks l)

  let apply_flat l v = F2.Bitmatrix.apply (to_matrix l) v
end

(* {1 Printing} *)

let pp ppf l =
  let pp_image ppf assoc =
    let assoc = List.sort (fun (a, _) (b, _) -> String.compare a b) assoc in
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf (d, c) -> Format.fprintf ppf "%s:%d" d c))
      assoc
  in
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i (d, bits) ->
      Format.fprintf ppf "%s[%d] -> [%a]" d (1 lsl bits)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
           pp_image)
        (List.init bits (fun k -> coords_to_assoc l.outs l.bases.(i).(k)));
      if i < Array.length l.ins - 1 then Format.fprintf ppf "@,")
    l.ins;
  Format.fprintf ppf "@,outs: %a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " x ")
       (fun ppf (d, bits) -> Format.fprintf ppf "%s[%d]" d (1 lsl bits)))
    (out_dims l)

let to_string l = Format.asprintf "%a" pp l
