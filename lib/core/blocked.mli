(** Blocked layouts (Proposition 4.6 / 9.1): the workhorse distributed
    layout for coalesced global-memory access.  A blocked layout tiles
    the tensor with a [size_per_thread x threads_per_warp x warps_per_cta]
    brick, fastest dimension first according to [order], replicating
    registers when the brick is smaller than the tensor and broadcasting
    when it is larger. *)

type params = {
  shape : int array;  (** tensor size per logical dim, powers of two *)
  size_per_thread : int array;
  threads_per_warp : int array;
  warps_per_cta : int array;
  order : int array;  (** [order.(0)] is the index of the fastest dim *)
}

(** Row-major order [|n-1; ...; 1; 0|]. *)
val row_major_order : int -> int array

val make : params -> Layout.t

(** [default ?order ?elems_per_thread ~warp_size ~num_warps shape] mimics
    Triton's default blocked encoding: [elems_per_thread] contiguous
    elements along the fastest dimension per thread, lanes and warps
    greedily packed along [order]. *)
val default :
  ?order:int array -> ?elems_per_thread:int -> warp_size:int -> num_warps:int -> int array -> Layout.t
