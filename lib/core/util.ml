let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  if not (is_pow2 n) then invalid_arg (Printf.sprintf "log2: %d is not a power of two" n);
  let rec go k n = if n = 1 then k else go (k + 1) (n lsr 1) in
  go 0 n

let ceil_log2 n =
  if n < 1 then invalid_arg "ceil_log2";
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  go 0

let ceil_div a b = (a + b - 1) / b
