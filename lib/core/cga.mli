(** Multi-CTA (cooperative grid array) distribution: extend a per-CTA
    layout over a larger tensor with {!Dims.block} basis vectors, the
    way Hopper CGAs tile CTAs over a tensor. *)

(** [distribute layout ~blocks ~shape] covers [shape] by tiling
    [layout]'s footprint across [blocks] CTAs per dimension (any still
    uncovered part replicates into registers). *)
val distribute : Layout.t -> blocks:int array -> shape:int array -> Layout.t

val num_blocks : Layout.t -> int
