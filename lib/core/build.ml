let id bits ~in_dim d = Layout.identity1d bits ~in_dim ~out_dim:(Dims.dim d)

let alloc acc ~hw ~d ~bits ~shape_bits =
  (* Extend [acc] with [bits] basis vectors of [hw] onto dimension [d],
     clipped to the dimension's remaining size; the excess broadcasts. *)
  let used = Layout.out_bits acc (Dims.dim d) in
  let take = min bits (max 0 (shape_bits.(d) - used)) in
  let acc = if take > 0 then Layout.mul acc (id take ~in_dim:hw d) else acc in
  if bits > take then
    Layout.mul acc (Layout.zeros1d (bits - take) ~in_dim:hw ~out_dim:(Dims.dim d))
  else acc

let cover ~base ~levels ~shape_bits ~order =
  let acc =
    List.fold_left
      (fun acc (hw, per_dim) ->
        Array.fold_left (fun acc d -> alloc acc ~hw ~d ~bits:per_dim.(d) ~shape_bits) acc order)
      base levels
  in
  (* Wrap any remaining logical bits into extra registers. *)
  Array.fold_left
    (fun acc d ->
      let rem = shape_bits.(d) - Layout.out_bits acc (Dims.dim d) in
      if rem > 0 then Layout.mul acc (id rem ~in_dim:Dims.register d) else acc)
    acc order
