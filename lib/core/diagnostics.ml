type severity = Error | Warning

type loc = No_loc | Tir_instr of int | Isa_instr of int | Plan of string

type t = {
  code : string;
  severity : severity;
  loc : loc;
  message : string;
  pass : string option;
}

let make severity ~code ?(loc = No_loc) fmt =
  Format.kasprintf (fun message -> { code; severity; loc; message; pass = None }) fmt

let error ~code ?loc fmt = make Error ~code ?loc fmt
let warning ~code ?loc fmt = make Warning ~code ?loc fmt

let errors = List.filter (fun d -> d.severity = Error)
let warnings = List.filter (fun d -> d.severity = Warning)
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let with_loc loc d = if d.loc = No_loc then { d with loc } else d
let with_pass pass d = if d.pass = None then { d with pass = Some pass } else d

let pp_loc ppf = function
  | No_loc -> ()
  | Tir_instr i -> Format.fprintf ppf "%%%d: " i
  | Isa_instr i -> Format.fprintf ppf "[%d]: " i
  | Plan name -> Format.fprintf ppf "{%s}: " name

let pp ppf d =
  Format.fprintf ppf "%s[%s]: %a%s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    d.code pp_loc d.loc d.message;
  match d.pass with
  | None -> ()
  | Some pass -> Format.fprintf ppf " (pass %s)" pass

let pp_list ppf = function
  | [] -> Format.fprintf ppf "ok"
  | ds -> Format.pp_print_list ~pp_sep:Format.pp_print_newline pp ppf ds

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let loc_json = function
  | No_loc -> "null"
  | Tir_instr i -> Printf.sprintf "{\"tir_instr\":%d}" i
  | Isa_instr i -> Printf.sprintf "{\"isa_instr\":%d}" i
  | Plan name -> Printf.sprintf "{\"plan\":\"%s\"}" (json_escape name)

let to_json ds =
  let one d =
    Printf.sprintf "{\"code\":\"%s\",\"severity\":\"%s\",\"loc\":%s,\"message\":\"%s\",\"pass\":%s}"
      (json_escape d.code)
      (match d.severity with Error -> "error" | Warning -> "warning")
      (loc_json d.loc) (json_escape d.message)
      (match d.pass with
      | None -> "null"
      | Some p -> Printf.sprintf "\"%s\"" (json_escape p))
  in
  "[" ^ String.concat "," (List.map one ds) ^ "]"
