let dims2 l =
  match Dims.sort (Layout.out_dims l) with
  | [ (d1, b1); (d0, b0) ] when Dims.dim_index d0 = Some 0 && Dims.dim_index d1 = Some 1 ->
      (1 lsl b0, 1 lsl b1)
  | _ -> invalid_arg "Render: layout must map onto dim0 x dim1"

let check_size rows cols =
  if rows > 64 || cols > 64 then invalid_arg "Render: grid larger than 64x64"

let render_cells ~rows ~cols cell =
  let cells = Array.init rows (fun i -> Array.init cols (cell i)) in
  let width =
    Array.fold_left
      (fun acc row -> Array.fold_left (fun acc c -> max acc (String.length c)) acc row)
      1 cells
  in
  let buf = Buffer.create (rows * cols * (width + 1)) in
  Array.iter
    (fun row ->
      Array.iteri
        (fun j c ->
          Buffer.add_string buf (Printf.sprintf "%-*s" width c);
          if j < cols - 1 then Buffer.add_char buf ' ')
        row;
      Buffer.add_char buf '\n')
    cells;
  Buffer.contents buf

let grid l =
  let rows, cols = dims2 l in
  check_size rows cols;
  let inv = Layout.pseudo_invert l in
  render_cells ~rows ~cols (fun i j ->
      let hw = Layout.apply inv [ (Dims.dim 0, i); (Dims.dim 1, j) ] in
      let get d = try List.assoc d hw with Not_found -> 0 in
      Printf.sprintf "w%d:t%02d:r%d" (get Dims.warp) (get Dims.lane) (get Dims.register))

let memory_grid l =
  let rows, cols = dims2 l in
  check_size rows cols;
  let inv = Layout.invert l in
  render_cells ~rows ~cols (fun i j ->
      let hw = Layout.apply inv [ (Dims.dim 0, i); (Dims.dim 1, j) ] in
      Printf.sprintf "%4d" (try List.assoc Dims.offset hw with Not_found -> 0))
