(** Linear layouts: linear maps between labeled vector spaces over [F2]
    (Definition 4.1 of the paper).

    A layout maps a product of labeled input spaces (e.g.
    [register x lane x warp]) to a product of labeled output spaces
    (e.g. the logical tensor dimensions [dim0 x dim1]).  Each space
    [F2^k] holds indices [0 .. 2^k - 1]; [k] is called the {e bits} of
    the dimension.

    Dimension lists are canonicalized with {!Dims.compare}; the first
    dimension in canonical order occupies the least-significant bits of
    the flattened representation.  Two layouts over the same labeled
    spaces therefore always flatten compatibly. *)

type t

exception Error of string

(** {1 Construction} *)

(** The empty layout: no input and no output dimensions. *)
val empty : t

(** [identity1d bits ~in_dim ~out_dim] maps [in_dim] identically onto
    [out_dim], both of size [2^bits]. *)
val identity1d : int -> in_dim:string -> out_dim:string -> t

(** [zeros1d bits ~in_dim ~out_dim] maps all [2^bits] points of [in_dim]
    to index 0 of [out_dim] (which gets size 1, i.e. 0 bits). This is
    the broadcasting building block of Section 5.1. *)
val zeros1d : int -> in_dim:string -> out_dim:string -> t

(** [make ~ins ~outs ~bases] builds a layout explicitly. [ins] and
    [outs] give [(label, bits)] pairs in any order; [bases] gives, for
    each input label, the images of its basis vectors as
    [(out_label, coordinate)] associations (absent labels map to 0).
    Raises {!Error} on inconsistent data. *)
val make :
  ins:(string * int) list ->
  outs:(string * int) list ->
  bases:(string * (string * int) list list) list ->
  t

(** [of_matrix ~ins ~outs m] unflattens a bit-matrix whose column [j]
    (resp. row [i]) corresponds to bit [j] of the canonically flattened
    input (resp. output). *)
val of_matrix : ins:(string * int) list -> outs:(string * int) list -> F2.Bitmatrix.t -> t

(** {1 Observation} *)

val in_dims : t -> (string * int) list
val out_dims : t -> (string * int) list
val has_in_dim : t -> string -> bool
val has_out_dim : t -> string -> bool

(** Bits of a dimension; [0] when the dimension is absent. *)
val in_bits : t -> string -> int

val out_bits : t -> string -> int
val total_in_bits : t -> int
val total_out_bits : t -> int

(** Number of points in an input dimension, [2^bits] ([1] if absent). *)
val in_size : t -> string -> int

val out_size : t -> string -> int

(** [basis l d k] is the image of basis vector [k] of input dimension
    [d], as [(out_label, coordinate)] pairs (zero coordinates omitted). *)
val basis : t -> string -> int -> (string * int) list

(** [basis_flat l d k] is the same image, flattened canonically. *)
val basis_flat : t -> string -> int -> int

(** Flattened images of all basis vectors of an input dimension —
    the column sets [L_Reg], [L_Thr], ... of Section 5.4. *)
val flat_columns : t -> string -> int list

(** [apply l point] maps a point given as [(in_label, index)] pairs
    (absent labels are 0) to [(out_label, index)] pairs. *)
val apply : t -> (string * int) list -> (string * int) list

(** [apply_flat l v] applies the layout to a canonically flattened input. *)
val apply_flat : t -> int -> int

(** The matrix of the layout under canonical flattening. *)
val to_matrix : t -> F2.Bitmatrix.t

(** [flatten_value dims point] packs per-dimension coordinates into the
    canonical flat representation for the given dimension list, and
    [unflatten_value dims v] unpacks it. *)
val flatten_value : (string * int) list -> (string * int) list -> int

val unflatten_value : (string * int) list -> int -> (string * int) list

(** {1 Algebra} *)

(** [mul a b] is the product layout (Definition 4.3): inputs and outputs
    are unions of the operands'; on dimensions both operands share, [a]
    occupies the low bits and [b] the high bits. *)
val mul : t -> t -> t

(** [compose l2 l1] is [l2 o l1] (Definition 4.2): every output
    dimension of [l1] must be an input dimension of [l2] with at least
    as many bits. *)
val compose : t -> t -> t

(** Inverse of a bijective layout. Raises {!Error} if not invertible. *)
val invert : t -> t

(** Least-squares right inverse of a surjective layout (Definition 4.5):
    free variables are set to zero, so among all preimages the one with
    minimal Hamming weight built from pivots is chosen — the broadcast-
    promoting choice of Section 5.4. Raises {!Error} if not surjective. *)
val pseudo_invert : t -> t

(** [divide_left l t] is the label-wise left division [l /_l t]
    (Definition 4.4): [Some q] with [l = t x q] (label-wise block
    diagonal) when it exists. *)
val divide_left : t -> t -> t option

(** {1 Dimension surgery} *)

(** Keep only the listed input dimensions. *)
val select_ins : t -> string list -> t

val remove_in_dim : t -> string -> t

(** Keep only the listed output dimensions, {e projecting away} the
    rest — the slice of Proposition 4.8. *)
val project_outs : t -> string list -> t

val remove_out_dim : t -> string -> t
val rename_in : t -> old_name:string -> new_name:string -> t
val rename_out : t -> old_name:string -> new_name:string -> t

(** [exchange_out_names l spec] relabels output dimensions simultaneously
    (e.g. a transpose swaps ["dim0"] and ["dim1"]). *)
val exchange_out_names : t -> (string * string) list -> t

(** Replace output dimensions by a single dimension (default label
    {!Dims.flat}) holding the canonical flattening. *)
val flatten_outs : ?name:string -> t -> t

val flatten_ins : ?name:string -> t -> t

(** [reshape_outs l outs] reinterprets the flattened output bits
    according to a new dimension list with the same total bits. *)
val reshape_outs : t -> (string * int) list -> t

val reshape_ins : t -> (string * int) list -> t

(** [resize_in l d bits] grows (with zero columns, i.e. broadcasting) or
    shrinks (dropping high basis vectors) an input dimension. *)
val resize_in : t -> string -> int -> t

(** Remove input and output dimensions of size 1 (0 bits). *)
val drop_trivial_dims : t -> t

(** {1 Predicates and analyses} *)

val equal : t -> t -> bool

(** Equality after {!drop_trivial_dims} on both sides. *)
val equivalent : t -> t -> bool
val is_surjective : t -> bool
val is_injective : t -> bool
val is_invertible : t -> bool

(** Definition 4.10: surjective, every column has at most one set bit,
    and no two non-zero columns repeat. *)
val is_distributed : t -> bool

(** Definition 4.14: invertible with columns of 1 or 2 set bits. *)
val is_memory : t -> bool

(** [is_trivial_on l dims] holds when each listed input dimension is
    absent or has only zero columns. *)
val is_trivial_on : t -> string list -> bool

(** Basis of the kernel, flattened: differences between hardware points
    holding the same tensor element (broadcasting structure, §5.1). *)
val kernel : t -> int list

(** Per-input-dimension masks of "free" basis vectors: bits that can be
    zeroed without losing surjectivity because their columns are
    dependent on earlier ones.  Threads/registers with a free bit set
    hold duplicated data (Section 5.1). *)
val free_variable_masks : t -> (string * int) list

(** [num_consecutive l ~in_dim] is [2^k] for the largest [k] such that
    the first [k] basis vectors of [in_dim] map identically onto the low
    bits of the flattened output — the contiguity analysis of
    Section 5.1 that drives vectorization. *)
val num_consecutive : t -> in_dim:string -> int

(** {1 Memoization}

    Layouts are immutable, so every operation is a pure function of its
    arguments and memo results never need invalidation.  [Memo] mirrors
    the hot operations of the plain API behind per-domain
    ([Domain.DLS]) hash tables keyed by a cheap structural hash: two
    structurally equal layouts built independently (as the engine does
    per instruction) share one cache entry.  Layout-valued results are
    hash-consed through {!Memo.intern}'s table.

    Each OCaml 5 domain owns a private set of tables — the parallel
    autotuner's worker domains warm their own caches and never contend
    — so counters and [clear] act on the calling domain only. *)
module Memo : sig
  (** Cheap structural hash visiting every dimension and basis
      coordinate (unlike polymorphic [Hashtbl.hash], which truncates). *)
  val hash : t -> int

  (** Canonical representative: structurally equal layouts intern to
      one physically shared value. *)
  val intern : t -> t

  (** Memoized counterparts of the plain operations. *)

  val compose : t -> t -> t
  val invert : t -> t
  val pseudo_invert : t -> t
  val flatten_outs : ?name:string -> t -> t
  val flat_columns : t -> string -> int list
  val num_consecutive : t -> in_dim:string -> int
  val free_variable_masks : t -> (string * int) list
  val to_matrix : t -> F2.Bitmatrix.t

  (** [echelon l] is the memoized factorization of [l]'s matrix: one
      elimination per distinct layout, shared by {!invert},
      {!pseudo_invert} and the predicates below — and available to
      callers with their own batches of right-hand sides (pair it with
      {!F2.Bitmatrix.solve_many} / {!F2.Bitmatrix.compose_many}). *)
  val echelon : t -> F2.Bitmatrix.echelon

  (** Predicates answered from {!echelon}'s cached factorization
      instead of a fresh elimination per call. *)

  val is_surjective : t -> bool

  val is_injective : t -> bool
  val is_invertible : t -> bool

  (** [apply_flat l v] like {!Layout.apply_flat}, but the matrix is
      built once per distinct layout instead of once per call. *)
  val apply_flat : t -> int -> int

  (** {2 Cache introspection} *)

  val hits : unit -> int
  val misses : unit -> int
  val reset_stats : unit -> unit

  (** Drop all memo tables of the calling domain (counters are kept). *)
  val clear : unit -> unit
end

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
