type params = {
  shape : int array;
  size_per_thread : int array;
  threads_per_warp : int array;
  warps_per_cta : int array;
  order : int array;
}

let row_major_order n = Array.init n (fun i -> n - 1 - i)

let check p =
  let n = Array.length p.shape in
  if
    Array.length p.size_per_thread <> n
    || Array.length p.threads_per_warp <> n
    || Array.length p.warps_per_cta <> n
    || Array.length p.order <> n
  then invalid_arg "Blocked.make: rank mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun d ->
      if d < 0 || d >= n || seen.(d) then invalid_arg "Blocked.make: invalid order";
      seen.(d) <- true)
    p.order

let bits = Array.map Util.log2

let make p =
  check p;
  Build.cover ~base:Layout.empty
    ~levels:
      [
        (Dims.register, bits p.size_per_thread);
        (Dims.lane, bits p.threads_per_warp);
        (Dims.warp, bits p.warps_per_cta);
      ]
    ~shape_bits:(bits p.shape) ~order:p.order

(* Greedy split of [budget_bits] across dimensions following [order],
   clipped per dimension to the bits still available. *)
let greedy ~order ~avail budget_bits =
  let n = Array.length avail in
  let out = Array.make n 0 in
  let rem = ref budget_bits in
  Array.iter
    (fun d ->
      let take = min !rem avail.(d) in
      out.(d) <- take;
      avail.(d) <- avail.(d) - take;
      rem := !rem - take)
    order;
  out

let default ?order ?(elems_per_thread = 1) ~warp_size ~num_warps shape =
  let n = Array.length shape in
  let order = match order with Some o -> o | None -> row_major_order n in
  let shape_bits = bits shape in
  let avail = Array.copy shape_bits in
  (* Per-thread elements fill dimensions greedily along [order], so a
     tensor narrower than the requested run still gets a contiguous 2-D
     sub-tile per thread (the cross-dimension contiguity of
     Section 5.1). *)
  let reg = greedy ~order ~avail (Util.log2 elems_per_thread) in
  let lanes = greedy ~order ~avail (Util.log2 warp_size) in
  let warps = greedy ~order ~avail (Util.log2 num_warps) in
  let to_sizes = Array.map (fun b -> 1 lsl b) in
  let base =
    make
      {
        shape;
        size_per_thread = to_sizes reg;
        threads_per_warp = to_sizes lanes;
        warps_per_cta = to_sizes warps;
        order;
      }
  in
  (* When the tensor is too small to occupy every lane or warp, pad the
     hardware dimension to its nominal size with broadcast (zero)
     columns so all execution units stay accounted for. *)
  let ensure layout dim want = Layout.resize_in layout dim (max want (Layout.in_bits layout dim)) in
  let base = ensure base Dims.lane (Util.log2 warp_size) in
  ensure base Dims.warp (Util.log2 num_warps)
