(** Small numeric helpers shared across the library. *)

val is_pow2 : int -> bool

(** [log2 n] for a positive power of two; raises [Invalid_argument]
    otherwise. *)
val log2 : int -> int

(** [ceil_log2 n] is the smallest [k] with [2^k >= n]; requires [n >= 1]. *)
val ceil_log2 : int -> int

val ceil_div : int -> int -> int
