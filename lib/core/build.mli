(** Shared machinery for constructing distributed layouts by tiling
    hardware levels over a logical shape, as in the proofs of
    Propositions 9.1 and 9.2. *)

(** [id bits ~in_dim d] is the identity from [in_dim] onto logical
    dimension [d] ([Dims.dim d]). *)
val id : int -> in_dim:string -> int -> Layout.t

(** [alloc acc ~hw ~d ~bits ~shape_bits] extends [acc] with [bits] basis
    vectors of hardware dimension [hw] mapped identically onto the next
    unused bits of logical dimension [d]; bits beyond the dimension's
    size become zero (broadcast) columns. *)
val alloc : Layout.t -> hw:string -> d:int -> bits:int -> shape_bits:int array -> Layout.t

(** [cover ~base ~levels ~shape_bits ~order] extends [base] by
    allocating, for each [(hw_dim, bits_per_logical_dim)] level in turn
    and for each logical dimension in [order] (fastest first), identity
    basis vectors onto the next unused bits of that dimension.  Bits
    requested beyond the dimension's size become zero (broadcast)
    columns.  After all levels, any logical bits still uncovered are
    wrapped into extra {!Dims.register} basis vectors, again following
    [order], so the result is always surjective onto the full shape. *)
val cover :
  base:Layout.t ->
  levels:(string * int array) list ->
  shape_bits:int array ->
  order:int array ->
  Layout.t
