type severity = Diagnostics.severity = Error | Warning

type issue = Diagnostics.t = {
  code : string;
  severity : severity;
  loc : Diagnostics.loc;
  message : string;
  pass : string option;
}

let err ~code fmt = Diagnostics.error ~code fmt
let warn ~code fmt = Diagnostics.warning ~code fmt

let columns_with_names l =
  Layout.in_dims l
  |> List.concat_map (fun (d, bits) ->
         List.init bits (fun k -> ((d, k), Layout.basis_flat l d k)))

(* Which logical elements a non-surjective layout misses: sample the
   first few coset representatives outside the image. *)
let missing_elements l =
  let cols = List.map snd (columns_with_names l) in
  let image = F2.Subspace.echelon_basis cols in
  let d = Layout.total_out_bits l in
  let rec scan v acc =
    if v >= 1 lsl d || List.length acc >= 3 then List.rev acc
    else scan (v + 1) (if F2.Subspace.mem image v then acc else v :: acc)
  in
  scan 1 []

let describe_flat l v =
  Layout.unflatten_value (Layout.out_dims l) v
  |> List.map (fun (d, c) -> Printf.sprintf "%s=%d" d c)
  |> String.concat ", "

let distributed l =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  if not (Layout.is_surjective l) then begin
    let misses = missing_elements l in
    add
      (err ~code:"LL101" "layout is not surjective: no hardware point holds %s%s"
         (match misses with v :: _ -> describe_flat l v | [] -> "some elements")
         (if List.length misses > 1 then " (and others)" else ""))
  end;
  let cols = columns_with_names l in
  List.iter
    (fun ((d, k), c) ->
      if F2.Bitvec.popcount c > 1 then
        add
          (err ~code:"LL102"
             "column %s[%d] has %d set bits (%s) — distributed layouts are index \
              permutations (Def 4.10)"
             d k (F2.Bitvec.popcount c) (describe_flat l c)))
    cols;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun ((d, k), c) ->
      if c <> 0 then begin
        (match Hashtbl.find_opt seen c with
        | Some (d', k') ->
            add
              (err ~code:"LL103"
                 "columns %s[%d] and %s[%d] both map to %s — duplicated data outside \
                  broadcasting"
                 d' k' d k (describe_flat l c))
        | None -> ());
        Hashtbl.replace seen c (d, k)
      end
      else
        add
          (warn ~code:"LL104" "column %s[%d] is zero: this bit broadcasts (duplicated data)" d
             k))
    cols;
  List.rev !issues

let memory l =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  if Layout.total_in_bits l <> Layout.total_out_bits l then
    add
      (err ~code:"LL110" "memory layout must be square: %d offset bits vs %d tensor bits"
         (Layout.total_in_bits l) (Layout.total_out_bits l))
  else if not (Layout.is_invertible l) then
    add
      (err ~code:"LL111"
         "memory layout is not invertible: distinct offsets alias the same element");
  List.iter
    (fun ((d, k), c) ->
      let pc = F2.Bitvec.popcount c in
      if pc = 0 then add (err ~code:"LL112" "offset bit %s[%d] maps to nothing" d k)
      else if pc > 2 then
        add
          (warn ~code:"LL113"
             "offset bit %s[%d] has %d set bits — beyond the xor-swizzle family \
              (Def 4.14 allows 1 or 2)"
             d k pc))
    (columns_with_names l);
  List.rev !issues

let convertible ~src ~dst =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  if Layout.out_dims src <> Layout.out_dims dst then
    add
      (err ~code:"LL120" "layouts cover different logical spaces (%s vs %s)"
         (String.concat "x" (List.map fst (Layout.out_dims src)))
         (String.concat "x" (List.map fst (Layout.out_dims dst))));
  List.iter
    (fun d ->
      if Layout.in_size src d <> Layout.in_size dst d then
        add
          (err ~code:"LL121"
             "%s footprint differs: %d vs %d — conversions cannot change the CTA shape" d
             (Layout.in_size src d) (Layout.in_size dst d)))
    [ Dims.lane; Dims.warp; Dims.block ];
  if !issues = [] && Layout.flat_columns src Dims.block <> Layout.flat_columns dst Dims.block
  then
    add
      (warn ~code:"LL122" "CTA columns differ: the conversion needs distributed (global) memory");
  List.rev !issues

let errors = Diagnostics.errors
let pp = Diagnostics.pp_list
