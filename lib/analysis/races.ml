open Linear_layout

(* Per-address access history since the last barrier. *)
type history = {
  writers : (int, int * int * int) Hashtbl.t;  (* addr -> instr, warp, lane *)
  readers : (int, int * int) Hashtbl.t;  (* addr -> instr, warp *)
}

let check ?(duplicate_stores_benign = false) (p : Gpusim.Isa.program) =
  let h = { writers = Hashtbl.create 256; readers = Hashtbl.create 256 } in
  let diags = ref [] in
  (* One report per (kind, instruction pair): a single missing barrier
     would otherwise repeat once per lane. *)
  let seen = Hashtbl.create 16 in
  let add key d =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      diags := d :: !diags
    end
  in
  let smem_since_bar = ref false in
  let iter_addrs slots addr f =
    for w = 0 to p.Gpusim.Isa.warps - 1 do
      for l = 0 to p.Gpusim.Isa.lanes - 1 do
        List.iteri (fun i _ -> f ~warp:w ~lane:l (addr.(w).(l) + i)) slots
      done
    done
  in
  List.iteri
    (fun idx instr ->
      match instr with
      | Gpusim.Isa.Bar_sync ->
          if not !smem_since_bar then
            add (`Bar idx)
              (Diagnostics.warning ~code:"LL210" ~loc:(Diagnostics.Isa_instr idx)
                 "redundant bar.sync: no shared-memory traffic since the previous \
                  synchronization point");
          Hashtbl.reset h.writers;
          Hashtbl.reset h.readers;
          smem_since_bar := false
      | Gpusim.Isa.St_shared { slots; addr; byte_width = _ } ->
          smem_since_bar := true;
          iter_addrs slots addr (fun ~warp ~lane a ->
              (match Hashtbl.find_opt h.writers a with
              | _ when duplicate_stores_benign -> ()
              | Some (idx', warp', _) when warp' <> warp ->
                  add
                    (`Ww (idx', idx))
                    (Diagnostics.error ~code:"LL202" ~loc:(Diagnostics.Isa_instr idx)
                       "write-write race on smem[%d]: warp %d (instr %d) and warp %d both \
                        store with no intervening bar.sync"
                       a warp' idx' warp)
              | Some (idx', _, lane') when idx' = idx && lane' <> lane ->
                  add (`Wwl idx)
                    (Diagnostics.error ~code:"LL203" ~loc:(Diagnostics.Isa_instr idx)
                       "lanes %d and %d of warp %d store to smem[%d] in the same \
                        instruction: the committed value is undefined"
                       lane' lane warp a)
              | _ -> ());
              (match Hashtbl.find_opt h.readers a with
              | Some (idx', warp') when warp' <> warp ->
                  add
                    (`War (idx', idx))
                    (Diagnostics.error ~code:"LL204" ~loc:(Diagnostics.Isa_instr idx)
                       "write-after-read race on smem[%d]: warp %d stores over a value \
                        warp %d loaded at instr %d with no intervening bar.sync"
                       a warp warp' idx')
              | _ -> ());
              Hashtbl.replace h.writers a (idx, warp, lane))
      | Gpusim.Isa.Ld_shared { slots; addr; byte_width = _ } ->
          smem_since_bar := true;
          iter_addrs slots addr (fun ~warp ~lane:_ a ->
              (match Hashtbl.find_opt h.writers a with
              | Some (idx', warp', _) when warp' <> warp ->
                  add
                    (`Raw (idx', idx))
                    (Diagnostics.error ~code:"LL201" ~loc:(Diagnostics.Isa_instr idx)
                       "read-after-write race on smem[%d]: warp %d loads a value stored \
                        by warp %d (instr %d) with no intervening bar.sync"
                       a warp warp' idx')
              | _ -> ());
              if not (Hashtbl.mem h.readers a) then Hashtbl.replace h.readers a (idx, warp))
      | Gpusim.Isa.Mov _ | Gpusim.Isa.Sel _ | Gpusim.Isa.Scatter _ | Gpusim.Isa.Shfl_idx _
      | Gpusim.Isa.Bin _ ->
          ())
    p.Gpusim.Isa.body;
  List.rev !diags

let span_of_map l =
  F2.Subspace.echelon_basis
    (List.concat_map (fun (d, _) -> Layout.flat_columns l d) (Layout.in_dims l))

let alias_dim ~mem ~src ~dst =
  let mem_inv = Layout.Memo.invert (Layout.Memo.flatten_outs mem) in
  let addr_span layout =
    span_of_map (Layout.Memo.compose mem_inv (Layout.Memo.flatten_outs layout))
  in
  F2.Subspace.dim (F2.Subspace.intersection (addr_span src) (addr_span dst))

(* Plan-level phase check: from the layouts alone, the store and load
   address images are subspaces and always intersect, so any store
   phase followed by a load phase must be separated by a barrier. *)
let phase_check ~alias (p : Gpusim.Isa.program) =
  let rec scan idx last_store = function
    | [] -> []
    | Gpusim.Isa.Bar_sync :: rest -> scan (idx + 1) None rest
    | Gpusim.Isa.St_shared _ :: rest -> scan (idx + 1) (Some idx) rest
    | Gpusim.Isa.Ld_shared _ :: rest -> (
        match last_store with
        | Some st ->
            [
              Diagnostics.error ~code:"LL205" ~loc:(Diagnostics.Isa_instr idx)
                "store phase (instr %d) and load phase share a %d-dimensional set of \
                 shared-memory addresses but no bar.sync separates them"
                st alias;
            ]
        | None -> scan (idx + 1) last_store rest)
    | _ :: rest -> scan (idx + 1) last_store rest
  in
  scan 0 None p.Gpusim.Isa.body

let check_plan machine (plan : Codegen.Conversion.plan) =
  (* Same guard as {!Static_cost.lower_plan} and {!Transval}: plans
     whose CTA shapes differ between the two sides have no warp-level
     lowering — the engine executes them algebraically, so there is no
     instruction stream to race-check. *)
  let cta_mismatch =
    let src = plan.Codegen.Conversion.src and dst = plan.Codegen.Conversion.dst in
    Layout.in_size src Dims.lane <> Layout.in_size dst Dims.lane
    || Layout.in_size src Dims.warp <> Layout.in_size dst Dims.warp
  in
  match plan.Codegen.Conversion.mechanism with
  | Codegen.Conversion.Global_roundtrip -> []
  | _ when cta_mismatch -> []
  | Codegen.Conversion.Shared_memory sw ->
      let program, _ = Codegen.Lower.conversion machine plan in
      let alias =
        alias_dim ~mem:sw.Codegen.Swizzle_opt.mem ~src:plan.Codegen.Conversion.src
          ~dst:plan.Codegen.Conversion.dst
      in
      (* The memory layout is invertible, so two stores colliding on an
         address provably hold the same logical element — i.e. the same
         value (the source layout replicates it across the colliding
         warps/lanes).  Such collisions are redundant, not racy; the
         broadcast lint reports the redundancy at the value's source. *)
      let duplicate_stores_benign = Layout.is_invertible sw.Codegen.Swizzle_opt.mem in
      phase_check ~alias program @ check ~duplicate_stores_benign program
  | _ ->
      let program, _ = Codegen.Lower.conversion machine plan in
      check program
