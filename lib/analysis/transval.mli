(** Translation validation of lowered plans over F2 (Necula-style
    per-translation proofs; cf. Alive2's per-pass verification).

    A conversion plan claims to re-distribute a tensor from a source
    layout to a destination layout, i.e. to implement the conversion map
    [pseudo_invert(flatten dst) . flatten src].  This module recovers
    the map a lowered {!Gpusim.Isa} program {e actually} implements by
    symbolic execution over a provenance domain — every register slot
    and shared-memory cell holds the flattened source hardware point
    whose value it contains, or bottom — and compares it against the
    claim by Gaussian elimination over F2.  The comparison is decidable
    and a disagreement always yields a counterexample bit-vector of
    Hamming weight at most 1 when the realized map is affine.

    Soundness: with the injective payload [value(hw) = hw] the concrete
    interpreter computes exactly the provenance function, so a [Proved]
    certificate implies the lowered program moves every logical element
    to every destination point that claims it, for {e all} payloads
    (the ISA is data-oblivious: no instruction's control depends on
    payload values).  Completeness on the same domain: any refutation
    replays as a concrete miscompare under the differential
    interpreter. *)

open Linear_layout

(** Affine maps [h -> c + M h] over flattened F2 bit-vectors. *)
module Affine : sig
  type t = { in_bits : int; out_bits : int; cols : int array; const : int }

  val apply : t -> int -> int

  (** The flattened (hardware -> logical) map of a layout; linear, so
      [const = 0]. *)
  val of_layout : Layout.t -> t

  (** Fit an affine map to [f] on the basis and verify the fit
      exhaustively; [Error h] is the first input where [f] is not
      affine. *)
  val of_fun : in_bits:int -> out_bits:int -> (int -> int) -> (t, int) result

  val matrix : t -> F2.Bitmatrix.t
  val rank : t -> int
  val equal : t -> t -> bool

  (** Minimal-weight input where two maps disagree ([None] when equal);
      by linearity the witness is [0] or a basis vector. *)
  val counterexample : t -> t -> int option
end

type refutation = {
  counterexample : int;  (** flattened destination hardware point *)
  got : int option;  (** logical element actually held; [None] = never written *)
  want : int;  (** logical element the conversion map requires *)
}

type verdict =
  | Proved
  | Refuted of refutation
  | Failed of string  (** lowering or symbolic execution crashed *)

type method_ =
  | Symbolic  (** provenance execution of the lowered ISA program *)
  | Algebraic  (** matrix-level proof (cross-CTA global round trips) *)

type cert = {
  mechanism : string;
  method_ : method_;
  points : int;  (** destination hardware points covered *)
  verdict : verdict;
}

val method_name : method_ -> string
val verdict_name : verdict -> string

(** Certify an arbitrary lowered program against claimed source and
    destination layouts: the pre-state follows
    {!Codegen.Lower.load_state}'s slot convention, the post-state is
    read back with {!Codegen.Lower.store_dist}'s. *)
val certify_isa :
  src:Layout.t -> dst:Layout.t -> map:Codegen.Lower.slot_map -> Gpusim.Isa.program -> cert

(** Certify a conversion plan: lowers it with {!Codegen.Lower.conversion}
    and runs the symbolic checker (register permutes, warp shuffles —
    plain and broadcast-compressed — and swizzled shared-memory round
    trips, including their vectorized ld/st addressing); cross-CTA
    global round trips have no warp-level lowering and are proved
    algebraically.  Increments the [transval.certificates.*] metrics
    when observability is enabled. *)
val certify_plan : Gpusim.Machine.t -> Codegen.Conversion.plan -> cert

(** Certify a lowered warp-shuffle gather against the index-dependent
    gather semantics (destination point [h] holds the source element at
    [h]'s coordinates with the gathered axis replaced by the index
    value). *)
val certify_gather :
  Gpusim.Machine.t -> src:Gpusim.Dist.t -> index:Gpusim.Dist.t -> axis:int -> cert

(** Render a certificate as LL6xx diagnostics: [LL650] wrong element at
    a destination point, [LL651] destination point never written,
    [LL652] uncertifiable (lowering/execution failure); [Proved] yields
    no diagnostics. *)
val diagnostics : ?loc:Diagnostics.loc -> cert -> Diagnostics.t list
