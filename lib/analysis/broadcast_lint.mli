(** Broadcast-redundancy lint.

    A layout's free variables ({!Linear_layout.Layout.free_variable_masks})
    are the hardware bits whose columns are linearly dependent on
    earlier ones: flipping them reaches the same logical element, so the
    lanes/warps they index hold {e duplicated} data and any computation
    producing the value is repeated.  That duplication is the point when
    a reduction follows (the deduplicated cross-warp exchange of
    Section 5.2) or when the value is deliberately broadcast; otherwise
    it is wasted parallelism.

    - [LL501] (warning): duplicate values across lanes with no
      downstream reduction;
    - [LL502] (warning): duplicate values across warps with no
      downstream reduction. *)

open Linear_layout

(** [value ?loc ~op ~reduced_later layout] lints one computed value.
    [reduced_later] means the value (transitively) feeds a reduction,
    which deduplicates the copies. *)
val value :
  ?loc:Diagnostics.loc -> op:string -> reduced_later:bool -> Layout.t -> Diagnostics.t list
