open Linear_layout

let access machine ?loc ~op ~layout ~byte_width () =
  let cap = max 1 (machine.Gpusim.Machine.max_vec_bits / (8 * byte_width)) in
  let regs = Layout.in_size layout Dims.register in
  let achieved = min (Layout.Memo.num_consecutive layout ~in_dim:Dims.register) cap in
  let achievable = min regs cap in
  let vec_lint =
    if achieved < achievable then
      [
        Diagnostics.warning ~code:"LL401" ?loc
          "%s vectorizes at %d x b%d but %d x b%d is achievable: only %d consecutive \
           element(s) per thread — map the lowest register basis vectors to consecutive \
           logical addresses (size_per_thread along the fastest-varying dimension)"
          op achieved (8 * byte_width) achievable (8 * byte_width)
          (Layout.Memo.num_consecutive layout ~in_dim:Dims.register);
      ]
    else []
  in
  (* Transaction audit of one warp: each instruction covers [achieved]
     consecutive elements per lane; count the 32-byte sectors touched
     and compare with the bytes actually moved. *)
  let tx_lint =
    let m = Layout.Memo.to_matrix (Layout.Memo.flatten_outs layout) in
    let reg_bits = Layout.in_bits layout Dims.register in
    let lanes = 1 lsl Layout.in_bits layout Dims.lane in
    let insts = max 1 (max 1 regs / achieved) in
    let tx = ref 0 in
    for g = 0 to insts - 1 do
      let accesses =
        List.init lanes (fun lane ->
            let hw = g * achieved lor (lane lsl reg_bits) in
            (F2.Bitmatrix.apply m hw * byte_width, achieved * byte_width))
      in
      tx := !tx + Gpusim.Coalesce.transactions accesses
    done;
    let ideal_total = max insts ((insts * lanes * achieved * byte_width + 31) / 32) in
    if !tx > ideal_total then
      [
        Diagnostics.warning ~code:"LL402" ?loc
          "%s is uncoalesced: one warp touches %d 32-byte sectors where %d would move the \
           same bytes — lanes do not cover consecutive addresses"
          op !tx ideal_total;
      ]
    else []
  in
  vec_lint @ tx_lint
