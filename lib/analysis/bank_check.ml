open Linear_layout

let memory_errors ~code ~plan_name mem =
  Check.memory mem |> Diagnostics.errors
  |> List.map (fun (d : Diagnostics.t) ->
         Diagnostics.error ~code ~loc:(Diagnostics.Plan plan_name) "memory layout: %s"
           d.Diagnostics.message)

let swizzle machine ~src ~dst ~byte_width (s : Codegen.Swizzle_opt.t) =
  let mem = s.Codegen.Swizzle_opt.mem in
  match memory_errors ~code:"LL304" ~plan_name:"swizzle" mem with
  | _ :: _ as errs -> errs
  | [] ->
      (* One 128-byte phase per wavefront is the conflict-free floor:
         [n] phases for an access of [2^vec_bits] elements. *)
      let ideal =
        max 1 (1 lsl s.Codegen.Swizzle_opt.vec_bits * byte_width / machine.Gpusim.Machine.bank_bytes)
      in
      let side name dist predicted =
        match
          Codegen.Swizzle_opt.simulate_wavefronts machine ~mem ~dist ~byte_width
            ~vec:s.Codegen.Swizzle_opt.vec
        with
        | exception Invalid_argument msg ->
            [
              Diagnostics.error ~code:"LL304" ~loc:(Diagnostics.Plan "swizzle")
                "%s side is not simulatable: %s" name msg;
            ]
        | total, insts ->
            if total <> insts * predicted then
              [
                Diagnostics.error ~code:"LL301" ~loc:(Diagnostics.Plan "swizzle")
                  "analyzer error on the %s side: Lemma 9.4 predicts %d wavefronts per \
                   instruction but the bank simulator measures %d over %d instructions"
                  name predicted (total / max 1 insts) insts;
              ]
            else if predicted > ideal then
              [
                Diagnostics.warning ~code:"LL302" ~loc:(Diagnostics.Plan "swizzle")
                  "%s side is certified at %d wavefronts per instruction but conflict-free \
                   would be %d: no swizzle of this layout pair can do better, yet the \
                   conversion pays %dx bank conflicts"
                  name predicted ideal (predicted / ideal);
              ]
            else []
      in
      side "store" src s.Codegen.Swizzle_opt.store_wavefronts
      @ side "load" dst s.Codegen.Swizzle_opt.load_wavefronts

let staging _machine (st : Codegen.Operand_staging.t) =
  memory_errors ~code:"LL303" ~plan_name:"operand staging" st.Codegen.Operand_staging.mem

let conversion machine (plan : Codegen.Conversion.plan) =
  match plan.Codegen.Conversion.mechanism with
  | Codegen.Conversion.Shared_memory s ->
      swizzle machine ~src:plan.Codegen.Conversion.src ~dst:plan.Codegen.Conversion.dst
        ~byte_width:plan.Codegen.Conversion.byte_width s
  | Codegen.Conversion.No_op | Codegen.Conversion.Register_permute
  | Codegen.Conversion.Warp_shuffle _ | Codegen.Conversion.Warp_shuffle_compressed _
  | Codegen.Conversion.Global_roundtrip ->
      []
