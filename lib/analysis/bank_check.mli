(** Bank-conflict certification of shared-memory plans.

    The planner {e predicts} wavefronts algebraically (Lemma 9.4:
    [n * 2^dim(span(V u S) n span(bank-reduced thread columns))]); the
    {!Gpusim.Banks} simulator {e measures} them by brute force.  The
    certifier proves the plan's bound by recomputing both sides:

    - [LL301] (error): prediction and simulation disagree — by
      construction this is a bug in the planner or the analyzer, not in
      the plan, and must never be shipped;
    - [LL302] (warning): the bound is certified but worse than the
      conflict-free minimum (one wavefront per 128-byte phase) — the
      swizzle is provably as good as its basis allows, yet the
      conversion pays real bank conflicts;
    - [LL303] (error): an operand-staging memory layout fails the
      memory characterization (Definition 4.14);
    - [LL304] (error): a swizzle memory layout fails the memory
      characterization or vectorized registers are not contiguous in
      it. *)

open Linear_layout

(** Certify one optimal-swizzle plan for the given distributed
    endpoints.  [src] stores, [dst] loads. *)
val swizzle :
  Gpusim.Machine.t ->
  src:Layout.t ->
  dst:Layout.t ->
  byte_width:int ->
  Codegen.Swizzle_opt.t ->
  Diagnostics.t list

(** Certify an operand-staging plan (Definition 4.11 swizzles). *)
val staging : Gpusim.Machine.t -> Codegen.Operand_staging.t -> Diagnostics.t list

(** Certify whatever shared-memory plan a conversion carries;
    mechanisms that never touch shared memory yield no diagnostics. *)
val conversion : Gpusim.Machine.t -> Codegen.Conversion.plan -> Diagnostics.t list
