open Linear_layout

let value ?loc ~op ~reduced_later layout =
  if reduced_later then []
  else
    let masks = Layout.Memo.free_variable_masks layout in
    let mask d = Option.value ~default:0 (List.assoc_opt d masks) in
    let lint code d what =
      let m = mask d in
      if m = 0 then []
      else
        [
          Diagnostics.warning ~code ?loc
            "%s computes every value %d times across %s (free %s bits 0x%x) and no \
             reduction deduplicates the copies — compute on the sliced layout and \
             broadcast the result instead"
            op
            (1 lsl F2.Bitvec.popcount m)
            what d m;
        ]
    in
    lint "LL501" Dims.lane "lanes" @ lint "LL502" Dims.warp "warps"
