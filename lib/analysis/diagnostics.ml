(* The diagnostics core physically lives in [Linear_layout] so that the
   layout well-formedness checks ([Check]) report through it without a
   dependency cycle; [Analysis.Diagnostics] is the canonical name for
   analysis passes and their consumers. *)
include Linear_layout.Diagnostics
