(** Coalescing / vectorization lint for global-memory anchors
    (Section 5.1's contiguity analysis, applied as a checker).

    - [LL401] (warning): the layout admits narrower vectorization than
      the machine and register count allow ([num_consecutive] < the
      achievable width); the message carries a fix-it hint.
    - [LL402] (warning): the access wastes global-memory bandwidth —
      the warp touches more 32-byte sectors per instruction than the
      bytes it moves require. *)

open Linear_layout

(** [access machine ?loc ~op ~layout ~byte_width ()] lints one
    load/store anchor with the given distributed layout.  [op] names
    the operation in messages (["load"]/["store"]). *)
val access :
  Gpusim.Machine.t ->
  ?loc:Diagnostics.loc ->
  op:string ->
  layout:Layout.t ->
  byte_width:int ->
  unit ->
  Diagnostics.t list
