open Linear_layout
module Isa = Gpusim.Isa

type attribution = { index : int; class_ : string; cost : Gpusim.Cost.t }
type t = { total : Gpusim.Cost.t; per_instr : attribution list; estimate : float }

(* The checks below reproduce the interpreter's failure modes verbatim
   (same conditions, same messages), so [cost] and [Isa.run] agree even
   on malformed programs: both raise, or both return equal counters. *)
let check_lane_table (p : Isa.program) name a =
  if
    Array.length a <> p.Isa.warps
    || Array.exists (fun row -> Array.length row <> p.Isa.lanes) a
  then failwith (name ^ ": per-warp/lane table has wrong shape")

let check_smem_addr (p : Isa.program) name ~slots ~addr =
  (* The interpreter touches [a0 + i] for each vector slot i and fails
     on the first out-of-range element; the raise/no-raise decision is
     equivalent to a per-lane range check on the whole span, which is
     what matters for parity (the exception aborts the run either
     way). *)
  let n = List.length slots in
  if n > 0 then
    Array.iter
      (fun row ->
        Array.iter
          (fun a0 ->
            if a0 < 0 || a0 + n - 1 >= p.Isa.smem_elems then
              failwith (name ^ ": address out of range"))
          row)
      addr

(* {2 Wavefront memoization}

   [Banks.wavefronts] depends only on [bank_bytes], [num_banks] and the
   byte-address/width sequence — and it is invariant under shifting
   every address by a multiple of [num_banks * bank_bytes] bytes (the
   phase split ignores addresses entirely, and each touched word moves
   by the same multiple of [num_banks], preserving per-bank
   distinctness).  The analyzer only needs the count, not the data
   movement, so it can normalize each warp's address row to that period
   and memoize: conversion streams repeat the same bank pattern across
   warps and register chunks at shifted bases, and autotuning re-prices
   the same streams many times.  The interpreter cannot take this
   shortcut — it has to execute every lane — which is exactly why
   static pricing is the cheap side of the differential.  Correctness
   is not taken on faith: the memoized cost is held equal to the
   interpreted cost by [differential] on every golden row and fuzz
   program. *)
let wavefront_memo : (int * int * int * int array, int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 512)

let warp_wavefronts machine ~bytes ~byte_width (addr_row : int array) =
  let nb = machine.Gpusim.Machine.num_banks in
  let wb = machine.Gpusim.Machine.bank_bytes in
  let lanes = Array.length addr_row in
  let row = Array.make lanes 0 in
  let mn = ref max_int in
  for l = 0 to lanes - 1 do
    let a = addr_row.(l) * byte_width in
    row.(l) <- a;
    if a < !mn then mn := a
  done;
  let period = nb * wb in
  if lanes = 0 || period <= 0 || !mn < 0 then
    Gpusim.Banks.wavefronts machine
      (List.init lanes (fun l -> { Gpusim.Banks.addr = row.(l); bytes }))
  else begin
    let shift = !mn / period * period in
    if shift > 0 then
      for l = 0 to lanes - 1 do
        row.(l) <- row.(l) - shift
      done;
    let tbl = Domain.DLS.get wavefront_memo in
    let key = (nb, wb, bytes, row) in
    match Hashtbl.find_opt tbl key with
    | Some v -> v
    | None ->
        let v =
          Gpusim.Banks.wavefronts machine
            (List.init lanes (fun l -> { Gpusim.Banks.addr = row.(l); bytes }))
        in
        Hashtbl.add tbl key v;
        v
  end

(* Accumulate one instruction's cost into [c]; mirrors the increments of
   [Isa.run] case by case. *)
let add_instr machine (p : Isa.program) c instr =
  match instr with
  | Isa.Mov _ | Isa.Bin _ -> c.Gpusim.Cost.alu <- c.Gpusim.Cost.alu + p.Isa.warps
  | Isa.Sel { src_slot; _ } ->
      check_lane_table p "sel" src_slot;
      c.Gpusim.Cost.alu <- c.Gpusim.Cost.alu + (2 * p.Isa.warps)
  | Isa.Scatter { dst_slot; _ } ->
      check_lane_table p "scatter" dst_slot;
      c.Gpusim.Cost.alu <- c.Gpusim.Cost.alu + (2 * p.Isa.warps)
  | Isa.Shfl_idx { src_lane; keep; _ } ->
      check_lane_table p "shfl" src_lane;
      check_lane_table p "shfl" keep;
      Array.iter
        (Array.iter (fun s ->
             if s < 0 || s >= p.Isa.lanes then failwith "shfl: source lane out of range"))
        src_lane;
      c.Gpusim.Cost.shuffles <- c.Gpusim.Cost.shuffles + p.Isa.warps;
      c.Gpusim.Cost.alu <- c.Gpusim.Cost.alu + p.Isa.warps
  | Isa.St_shared { slots; addr; byte_width } ->
      check_lane_table p "st.shared" addr;
      check_smem_addr p "st.shared" ~slots ~addr;
      let bytes = List.length slots * byte_width in
      for w = 0 to p.Isa.warps - 1 do
        c.Gpusim.Cost.smem_wavefronts <-
          c.Gpusim.Cost.smem_wavefronts + warp_wavefronts machine ~bytes ~byte_width addr.(w)
      done;
      c.Gpusim.Cost.smem_insts <- c.Gpusim.Cost.smem_insts + p.Isa.warps
  | Isa.Ld_shared { slots; addr; byte_width } ->
      check_lane_table p "ld.shared" addr;
      check_smem_addr p "ld.shared" ~slots ~addr;
      let bytes = List.length slots * byte_width in
      for w = 0 to p.Isa.warps - 1 do
        c.Gpusim.Cost.smem_wavefronts <-
          c.Gpusim.Cost.smem_wavefronts + warp_wavefronts machine ~bytes ~byte_width addr.(w)
      done;
      c.Gpusim.Cost.smem_insts <- c.Gpusim.Cost.smem_insts + p.Isa.warps
  | Isa.Bar_sync -> c.Gpusim.Cost.barriers <- c.Gpusim.Cost.barriers + 1

let cost machine (p : Isa.program) =
  let c = Gpusim.Cost.zero () in
  List.iter (add_instr machine p c) p.Isa.body;
  c

let analyze machine (p : Isa.program) =
  let total = Gpusim.Cost.zero () in
  let per_instr =
    List.mapi
      (fun index instr ->
        let cost = Gpusim.Cost.zero () in
        add_instr machine p cost instr;
        Gpusim.Cost.add total cost;
        { index; class_ = Isa.instr_class instr; cost })
      p.Isa.body
  in
  let estimate = Gpusim.Cost.estimate machine total in
  if Obs.enabled () then begin
    Obs.Metrics.incr "analysis.static_cost.programs";
    Obs.Metrics.incr ~by:(List.length per_instr) "analysis.static_cost.instrs";
    Obs.Metrics.observe "analysis.static_cost.estimate" (int_of_float (ceil estimate))
  end;
  { total; per_instr; estimate }

let differential machine ~slots (p : Isa.program) =
  let static_total = cost machine p in
  let interp = Isa.run machine p (Isa.make_state p ~slots) in
  if static_total = interp then []
  else
    [
      Diagnostics.error ~code:"LL810"
        "static cost diverges from interpreted cost: static %a vs interpreted %a"
        Gpusim.Cost.pp static_total Gpusim.Cost.pp interp;
    ]

type lowered = {
  program : Isa.program;
  slots : Codegen.Lower.slot_map;
  analysis : t;
}

(* Same guard as the engine's executor and Transval: global round trips
   are algebraic by design, and plans whose CTA shapes differ between
   the two sides (e.g. post-reduction layouts with fewer live lane
   bits) have no warp-level lowering. *)
let lower_plan machine (pl : Codegen.Conversion.plan) =
  let src = pl.Codegen.Conversion.src and dst = pl.Codegen.Conversion.dst in
  let cta_mismatch =
    Layout.in_size src Dims.lane <> Layout.in_size dst Dims.lane
    || Layout.in_size src Dims.warp <> Layout.in_size dst Dims.warp
  in
  match pl.Codegen.Conversion.mechanism with
  | Codegen.Conversion.Global_roundtrip -> None
  | _ when cta_mismatch -> None
  | _ -> (
      match Codegen.Lower.conversion machine pl with
      | exception Failure _ -> None
      | program, slots -> Some (program, slots))

let plan machine (pl : Codegen.Conversion.plan) =
  match lower_plan machine pl with
  | None -> None
  | Some (program, slots) -> Some { program; slots; analysis = analyze machine program }

(* The layout-search objective hook: the exact cost of the plan's
   lowered instruction stream, with the static≡dynamic differential
   asserted per plan so a search can never rank candidates with a
   mispriced stream. *)
let reprice_conversion machine (pl : Codegen.Conversion.plan) =
  match lower_plan machine pl with
  | None -> None
  | Some (program, sm) ->
      let slots = sm.Codegen.Lower.total_slots in
      (match differential machine ~slots program with
      | [] -> ()
      | d :: _ ->
          failwith
            (Format.asprintf "Static_cost.reprice_conversion: %a" Diagnostics.pp d));
      Some (cost machine program)

let pp ppf t =
  Format.fprintf ppf "static cost %a = %.2f units@," Gpusim.Cost.pp t.total t.estimate;
  List.iter
    (fun a ->
      Format.fprintf ppf "  [%2d] %-10s %a@," a.index a.class_ Gpusim.Cost.pp a.cost)
    t.per_instr
