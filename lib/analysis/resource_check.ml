open Linear_layout
module Isa = Gpusim.Isa

type region = {
  first_elem : int;
  last_elem : int;
  first_def : int option;
  last_use : int option;
}

type report = {
  diagnostics : Diagnostics.t list;
  footprint_bytes : int;
  regions : region list;
  peak_live_slots : int;
}

let shape_ok (p : Isa.program) a =
  Array.length a = p.Isa.warps
  && Array.for_all (fun row -> Array.length row = p.Isa.lanes) a

(* Lane tables of an instruction, for the LL800 shape gate. *)
let lane_tables = function
  | Isa.Sel { src_slot; _ } -> [ src_slot ]
  | Isa.Scatter { dst_slot; _ } -> [ dst_slot ]
  | Isa.Shfl_idx { src_lane; keep; _ } ->
      [ src_lane; Array.map (Array.map Bool.to_int) keep ]
  | Isa.St_shared { addr; _ } | Isa.Ld_shared { addr; _ } -> [ addr ]
  | Isa.Mov _ | Isa.Bin _ | Isa.Bar_sync -> []

(* Iterate the in-range shared-memory element offsets of a store/load;
   [oob] receives each out-of-range one. *)
let iter_elems (p : Isa.program) ~slots ~addr ~oob f =
  let n = List.length slots in
  for w = 0 to p.Isa.warps - 1 do
    for l = 0 to p.Isa.lanes - 1 do
      for i = 0 to n - 1 do
        let a = addr.(w).(l) + i in
        if a < 0 || a >= p.Isa.smem_elems then oob a else f a
      done
    done
  done

type agg = { mutable lanes : int; mutable flagged : int }

let bump tbl key flagged =
  let a =
    match Hashtbl.find_opt tbl key with
    | Some a -> a
    | None ->
        let a = { lanes = 0; flagged = 0 } in
        Hashtbl.add tbl key a;
        a
  in
  a.lanes <- a.lanes + 1;
  if flagged then a.flagged <- a.flagged + 1

let program machine ?(live_in = []) ?live_out (p : Isa.program) =
  let body = Array.of_list p.Isa.body in
  let n = Array.length body in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let loc i = Diagnostics.Isa_instr i in
  (* LL800 / LL807: structural validity; malformed instructions are
     excluded from the dataflow below. *)
  let skip = Array.make n false in
  Array.iteri
    (fun i instr ->
      if List.exists (fun t -> not (shape_ok p t)) (lane_tables instr) then begin
        skip.(i) <- true;
        emit
          (Diagnostics.error ~code:"LL800" ~loc:(loc i)
             "%s: per-warp/lane table has wrong shape (expected %dx%d)"
             (Isa.instr_class instr) p.Isa.warps p.Isa.lanes)
      end
      else
        match instr with
        | Isa.Shfl_idx { src_lane; _ } ->
            let bad = ref None in
            Array.iter
              (Array.iter (fun s ->
                   if (s < 0 || s >= p.Isa.lanes) && !bad = None then bad := Some s))
              src_lane;
            Option.iter
              (fun s ->
                emit
                  (Diagnostics.error ~code:"LL807" ~loc:(loc i)
                     "shuffle source lane %d out of range (program has %d lanes)" s
                     p.Isa.lanes))
              !bad
        | _ -> ())
    body;
  (* Shared memory, forward: bounds, footprint, read-before-store,
     region def/use extents. *)
  let stored = Array.make (max 1 p.Isa.smem_elems) false in
  let touched = Array.make (max 1 p.Isa.smem_elems) false in
  let first_def = Array.make (max 1 p.Isa.smem_elems) None in
  let last_use = Array.make (max 1 p.Isa.smem_elems) None in
  let footprint = ref 0 in
  Array.iteri
    (fun i instr ->
      if not skip.(i) then
        let oob_example = ref None in
        let oob a = if !oob_example = None then oob_example := Some a in
        let report_oob name =
          Option.iter
            (fun a ->
              emit
                (Diagnostics.error ~code:"LL801" ~loc:(loc i)
                   "%s: element offset %d out of range (program declares %d elements)" name
                   a p.Isa.smem_elems))
            !oob_example
        in
        match instr with
        | Isa.St_shared { slots; addr; byte_width } ->
            iter_elems p ~slots ~addr ~oob (fun a ->
                stored.(a) <- true;
                touched.(a) <- true;
                if first_def.(a) = None then first_def.(a) <- Some i;
                footprint := max !footprint ((a + 1) * byte_width));
            report_oob "st.shared"
        | Isa.Ld_shared { slots; addr; byte_width } ->
            let unwritten = ref None in
            iter_elems p ~slots ~addr ~oob (fun a ->
                touched.(a) <- true;
                last_use.(a) <- Some i;
                footprint := max !footprint ((a + 1) * byte_width);
                if (not stored.(a)) && !unwritten = None then unwritten := Some a);
            report_oob "ld.shared";
            Option.iter
              (fun a ->
                emit
                  (Diagnostics.warning ~code:"LL803" ~loc:(loc i)
                     "ld.shared reads element %d before any store has written it \
                      (interpreter state is zero-initialised)"
                     a))
              !unwritten
        | _ -> ())
    body;
  if !footprint > machine.Gpusim.Machine.smem_bytes then
    emit
      (Diagnostics.warning ~code:"LL802"
         "shared-memory footprint %d bytes exceeds the machine budget %d bytes" !footprint
         machine.Gpusim.Machine.smem_bytes);
  (* Dead stores, backward: a store none of whose elements is loaded
     again before being overwritten (or before program end) is dead. *)
  let will_read = Array.make (max 1 p.Isa.smem_elems) false in
  for i = n - 1 downto 0 do
    if not skip.(i) then
      match body.(i) with
      | Isa.Ld_shared { slots; addr; _ } ->
          iter_elems p ~slots ~addr ~oob:ignore (fun a -> will_read.(a) <- true)
      | Isa.St_shared { slots; addr; _ } ->
          let read = ref false in
          iter_elems p ~slots ~addr ~oob:ignore (fun a -> if will_read.(a) then read := true);
          if not !read then
            emit
              (Diagnostics.warning ~code:"LL804" ~loc:(loc i)
                 "st.shared is dead: no element it writes is loaded again");
          iter_elems p ~slots ~addr ~oob:ignore (fun a -> will_read.(a) <- false)
      | _ -> ()
  done;
  (* Registers.  Per-lane exact dataflow; LL805/LL806 fire only when
     every lane using (resp. defining) the slot at that instruction
     agrees, so per-lane predication never false-positives. *)
  let nslots =
    let m = ref (-1) in
    let see s = if s > !m then m := s in
    List.iter see live_in;
    Option.iter (List.iter see) live_out;
    Array.iteri
      (fun i instr ->
        if not skip.(i) then
          match instr with
          | Isa.Mov { dst; src } ->
              see dst;
              see src
          | Isa.Sel { dst; src_slot } ->
              see dst;
              Array.iter (Array.iter (fun s -> if s >= 0 then see s)) src_slot
          | Isa.Scatter { src; dst_slot } ->
              see src;
              Array.iter (Array.iter (fun s -> if s >= 0 then see s)) dst_slot
          | Isa.Shfl_idx { dst; src; _ } ->
              see dst;
              see src
          | Isa.St_shared { slots; _ } | Isa.Ld_shared { slots; _ } -> List.iter see slots
          | Isa.Bin { dst; a; b; _ } ->
              see dst;
              see a;
              see b
          | Isa.Bar_sync -> ())
      body;
    !m + 1
  in
  (* served.(i).(w).(l): does some lane of warp [w] receive shuffle [i]'s
     value from source lane [l]?  That is the condition under which lane
     [l]'s published slot is used. *)
  let served =
    Array.mapi
      (fun i instr ->
        if skip.(i) then None
        else
          match instr with
          | Isa.Shfl_idx { src_lane; keep; _ } ->
              let t = Array.make_matrix p.Isa.warps p.Isa.lanes false in
              for w = 0 to p.Isa.warps - 1 do
                for l = 0 to p.Isa.lanes - 1 do
                  let s = src_lane.(w).(l) in
                  if keep.(w).(l) && s >= 0 && s < p.Isa.lanes then t.(w).(s) <- true
                done
              done;
              Some t
          | _ -> None)
      body
  in
  let iter_uses i instr w l f =
    match instr with
    | Isa.Mov { src; _ } -> f src
    | Isa.Sel { src_slot; _ } ->
        let s = src_slot.(w).(l) in
        if s >= 0 then f s
    | Isa.Scatter { src; dst_slot } -> if dst_slot.(w).(l) >= 0 then f src
    | Isa.Shfl_idx { src; _ } -> (
        match served.(i) with Some t when t.(w).(l) -> f src | _ -> ())
    | Isa.St_shared { slots; _ } -> List.iter f slots
    | Isa.Ld_shared _ -> ()
    | Isa.Bin { a; b; _ } ->
        f a;
        f b
    | Isa.Bar_sync -> ()
  in
  let iter_defs _i instr w l f =
    match instr with
    | Isa.Mov { dst; _ } -> f dst
    | Isa.Sel { dst; src_slot } -> if src_slot.(w).(l) >= 0 then f dst
    | Isa.Scatter { dst_slot; _ } ->
        let s = dst_slot.(w).(l) in
        if s >= 0 then f s
    | Isa.Shfl_idx { dst; keep; _ } -> if keep.(w).(l) then f dst
    | Isa.Ld_shared { slots; _ } -> List.iter f slots
    | Isa.St_shared _ | Isa.Bar_sync -> ()
    | Isa.Bin { dst; _ } -> f dst
  in
  let undef_uses : (int * int, agg) Hashtbl.t = Hashtbl.create 16 in
  let dead_defs : (int * int, agg) Hashtbl.t = Hashtbl.create 16 in
  let defined = Array.make (max 1 nslots) false in
  let live = Array.make (max 1 nslots) false in
  let peak = ref 0 in
  for w = 0 to p.Isa.warps - 1 do
    for l = 0 to p.Isa.lanes - 1 do
      (* Forward: use before def (LL805). *)
      Array.fill defined 0 nslots false;
      List.iter (fun s -> defined.(s) <- true) live_in;
      Array.iteri
        (fun i instr ->
          if not skip.(i) then begin
            iter_uses i instr w l (fun s -> bump undef_uses (i, s) (not defined.(s)));
            iter_defs i instr w l (fun s -> defined.(s) <- true)
          end)
        body;
      (* Backward: dead writes (LL806) + peak pressure. *)
      Array.fill live 0 nslots false;
      let count = ref 0 in
      let set_live s v =
        if live.(s) <> v then begin
          live.(s) <- v;
          count := !count + (if v then 1 else -1)
        end
      in
      Option.iter (List.iter (fun s -> set_live s true)) live_out;
      if !count > !peak then peak := !count;
      for i = n - 1 downto 0 do
        if not skip.(i) then begin
          (match live_out with
          | None -> ()
          | Some _ ->
              iter_defs i body.(i) w l (fun s -> bump dead_defs (i, s) (not live.(s))));
          iter_defs i body.(i) w l (fun s -> set_live s false);
          iter_uses i body.(i) w l (fun s -> set_live s true);
          if !count > !peak then peak := !count
        end
      done
    done
  done;
  let collect tbl make =
    Hashtbl.fold
      (fun (i, s) a acc -> if a.lanes > 0 && a.flagged = a.lanes then (i, s) :: acc else acc)
      tbl []
    |> List.sort compare
    |> List.iter (fun (i, s) -> emit (make i s))
  in
  collect undef_uses (fun i s ->
      Diagnostics.warning ~code:"LL805" ~loc:(loc i)
        "slot r%d is read before any definition (interpreter registers are \
         zero-initialised)"
        s);
  collect dead_defs (fun i s ->
      Diagnostics.warning ~code:"LL806" ~loc:(loc i)
        "write to slot r%d is dead: never read before overwrite or program end" s);
  (* Maximal contiguous touched runs, with def/use extents. *)
  let regions = ref [] in
  let flush lo hi =
    let fd = ref None and lu = ref None in
    for a = lo to hi do
      (match (!fd, first_def.(a)) with
      | None, d -> fd := d
      | Some x, Some d -> fd := Some (min x d)
      | Some _, None -> ());
      match (!lu, last_use.(a)) with
      | None, u -> lu := u
      | Some x, Some u -> lu := Some (max x u)
      | Some _, None -> ()
    done;
    regions := { first_elem = lo; last_elem = hi; first_def = !fd; last_use = !lu } :: !regions
  in
  let run_start = ref None in
  for a = 0 to p.Isa.smem_elems - 1 do
    match (!run_start, touched.(a)) with
    | None, true -> run_start := Some a
    | Some lo, false ->
        flush lo (a - 1);
        run_start := None
    | _ -> ()
  done;
  Option.iter (fun lo -> flush lo (p.Isa.smem_elems - 1)) !run_start;
  if Obs.enabled () then begin
    Obs.Metrics.incr "analysis.resource_check.programs";
    Obs.Metrics.incr ~by:(List.length !diags) "analysis.resource_check.diagnostics"
  end;
  {
    diagnostics = List.rev !diags;
    footprint_bytes = !footprint;
    regions = List.rev !regions;
    peak_live_slots = !peak;
  }

let plan machine (pl : Codegen.Conversion.plan) =
  match Static_cost.lower_plan machine pl with
  | None -> None
  | Some (prog, sm) ->
      let live_in = List.init sm.Codegen.Lower.src_regs Fun.id in
      let live_out =
        List.init sm.Codegen.Lower.dst_regs (fun r -> sm.Codegen.Lower.dst_base + r)
      in
      Some (program machine ~live_in ~live_out prog)

let pp ppf r =
  Format.fprintf ppf "footprint %d B, peak %d live slots" r.footprint_bytes
    r.peak_live_slots;
  List.iter
    (fun rg ->
      Format.fprintf ppf "@,  smem [%d..%d] def@%s use@%s" rg.first_elem rg.last_elem
        (match rg.first_def with Some i -> string_of_int i | None -> "-")
        (match rg.last_use with Some i -> string_of_int i | None -> "-"))
    r.regions;
  if r.diagnostics <> [] then Format.fprintf ppf "@,%a" Diagnostics.pp_list r.diagnostics
