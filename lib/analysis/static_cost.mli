(** Exact static cost of ISA programs, without execution.

    Every address and lane-selection operand of {!Gpusim.Isa} is a
    precomputed immediate, so the cost the interpreter would account —
    shared-memory wavefronts through {!Gpusim.Banks}, shuffles, ALU
    work, barriers — is a pure function of the instruction stream.
    This module recomputes it by abstract interpretation, with the
    contract (enforced by the test suite's 216-row golden table and
    qcheck differential):

    {v Static_cost.cost m p = Gpusim.Isa.run m p (make_state p) v}

    cost-for-cost, for every well-formed program.  Malformed programs
    raise [Failure] with the same messages the interpreter would (wrong
    lane-table shape, shuffle source lane or shared-memory address out
    of range), so the equation extends to the failure modes; the
    graceful LL8xx reporting of the same conditions lives in
    {!Resource_check}. *)

open Linear_layout

(** One row of the per-instruction cost attribution table. *)
type attribution = {
  index : int;  (** position in [program.body] *)
  class_ : string;  (** {!Gpusim.Isa.instr_class} *)
  cost : Gpusim.Cost.t;  (** this instruction's contribution *)
}

type t = {
  total : Gpusim.Cost.t;
  per_instr : attribution list;
  estimate : float;  (** [Cost.estimate] of [total] on the machine *)
}

(** Fast path: the total cost only, no attribution table. *)
val cost : Gpusim.Machine.t -> Gpusim.Isa.program -> Gpusim.Cost.t

val analyze : Gpusim.Machine.t -> Gpusim.Isa.program -> t

(** [differential m ~slots p] runs the interpreter on a fresh
    [slots]-slot state and compares counter-for-counter against the
    static cost: an LL810 error on any divergence, [] when they agree
    (the expected outcome — a non-empty result means either module has
    a bug, which is exactly what the fault-injection suite simulates). *)
val differential :
  Gpusim.Machine.t -> slots:int -> Gpusim.Isa.program -> Diagnostics.t list

(** A lowered conversion plan together with its static analysis. *)
type lowered = {
  program : Gpusim.Isa.program;
  slots : Codegen.Lower.slot_map;
  analysis : t;
}

(** [lower_plan m plan] is {!Codegen.Lower.conversion} behind the same
    guard the engine uses: [None] for plans with no warp-level lowering
    (global round trips, CTA-shape mismatches, lowering failures) —
    those are executed algebraically and carry only planner costs. *)
val lower_plan :
  Gpusim.Machine.t ->
  Codegen.Conversion.plan ->
  (Gpusim.Isa.program * Codegen.Lower.slot_map) option

(** [plan m p] lowers (guarded as {!lower_plan}) and analyzes. *)
val plan : Gpusim.Machine.t -> Codegen.Conversion.plan -> lowered option

(** The layout-search objective hook: the exact static cost of the
    plan's lowered instruction stream, [None] when the plan has no
    warp-level lowering (keep the planner cost then).  The
    static≡dynamic differential is asserted per plan ([Failure] on any
    LL810 divergence), so search rankings are backed by the proven
    pricing. *)
val reprice_conversion :
  Gpusim.Machine.t -> Codegen.Conversion.plan -> Gpusim.Cost.t option

val pp : Format.formatter -> t -> unit
