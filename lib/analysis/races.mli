(** Race and barrier checking over lowered {!Gpusim.Isa} programs.

    A CTA-wide [bar.sync] is the only ordering between shared-memory
    accesses of different warps; within one warp, lanes run in lockstep
    and program order already orders accesses.  The checker is a single
    forward dataflow over the instruction stream that tracks, per
    shared-memory address, the stores and loads issued since the last
    barrier, and reports:

    - [LL201] (error) read-after-write: a warp loads an address another
      warp stored with no intervening barrier;
    - [LL202] (error) write-after-write across warps without a barrier;
    - [LL203] (error) two lanes of one warp store the same address in
      the same instruction (the committed value is undefined);
    - [LL204] (error) write-after-read across warps without a barrier
      (the store may clobber a value the other warp is still reading);
    - [LL205] (error) plan-level: the store-side and load-side address
      images through the swizzle intersect (they always share address 0,
      and generally much more) but no barrier separates the phases;
    - [LL210] (warning) a barrier with no shared-memory traffic since
      the previous one (redundant synchronization).

    Diagnostics carry {!Diagnostics.Isa_instr} locations indexing into
    [program.body]. *)

open Linear_layout

(** Check a concrete lowered program.  Addresses are read off the
    instruction stream (the lowering precomputes them), so the analysis
    is exact: a reported race really is two unordered accesses to one
    address.  [duplicate_stores_benign] (default [false]) suppresses
    [LL202]/[LL203] when the caller has {e proved} that colliding stores
    always write the same value — e.g. a swizzle round trip whose
    invertible memory layout makes an address collision imply the same
    logical element. *)
val check : ?duplicate_stores_benign:bool -> Gpusim.Isa.program -> Diagnostics.t list

(** [may_alias ~mem ~src ~dst] decides algebraically whether the
    store-side (from [src]) and load-side (into [dst]) shared-memory
    address sets of a round trip through memory layout [mem] can
    overlap: both sets are images of linear maps, so they are subspaces
    of the offset space and always intersect (at least in address 0).
    Returns the dimension of the intersection — [>= 0] always, i.e. a
    barrier is always required between the phases. *)
val alias_dim : mem:Layout.t -> src:Layout.t -> dst:Layout.t -> int

(** Lower a conversion plan and check it.  Combines the algebraic
    phase check ([LL205], from the plan's layouts alone) with the exact
    instruction-level dataflow.  Cross-CTA plans ([Global_roundtrip])
    do not lower to the warp ISA and yield no diagnostics. *)
val check_plan : Gpusim.Machine.t -> Codegen.Conversion.plan -> Diagnostics.t list
