open Linear_layout

(* Translation validation of lowered plans (the paper's Section 4 claim
   made operational): every layout is a linear map over F2, so the map a
   lowered ISA program *actually implements* can be recovered by
   symbolic execution and compared against the map the plan *claims* by
   Gaussian elimination.  Equality of affine F2 maps is decidable, and a
   disagreement always has a counterexample of Hamming weight <= 1 (the
   zero vector if the constants differ, a basis vector otherwise). *)

module Affine = struct
  type t = { in_bits : int; out_bits : int; cols : int array; const : int }

  let apply t h =
    let acc = ref t.const in
    for k = 0 to t.in_bits - 1 do
      if h land (1 lsl k) <> 0 then acc := !acc lxor t.cols.(k)
    done;
    !acc

  let of_layout l =
    let f = Layout.Memo.flatten_outs l in
    {
      in_bits = Layout.total_in_bits f;
      out_bits = Layout.total_out_bits f;
      cols = Array.init (Layout.total_in_bits f) (fun k -> Layout.apply_flat f (1 lsl k));
      const = 0;
    }

  let of_fun ~in_bits ~out_bits f =
    let const = f 0 in
    let t =
      { in_bits; out_bits; cols = Array.init in_bits (fun k -> f (1 lsl k) lxor const); const }
    in
    let rec go h =
      if h >= 1 lsl in_bits then Ok t
      else if f h <> apply t h then Error h
      else go (h + 1)
    in
    go 0

  let matrix t = F2.Bitmatrix.make ~rows:(max 1 t.out_bits) t.cols
  let rank t = F2.Bitmatrix.echelon_rank (F2.Bitmatrix.factorize (matrix t))

  let equal a b =
    a.in_bits = b.in_bits && a.out_bits = b.out_bits && a.const = b.const
    && F2.Bitmatrix.equal (matrix a) (matrix b)

  (* Minimal-weight input where the two maps disagree; [None] when they
     agree everywhere.  Weight <= 1 by linearity. *)
  let counterexample a b =
    if a.in_bits <> b.in_bits || a.out_bits <> b.out_bits then Some 0
    else if a.const <> b.const then Some 0
    else
      let rec go k =
        if k >= a.in_bits then None
        else if a.cols.(k) <> b.cols.(k) then Some (1 lsl k)
        else go (k + 1)
      in
      go 0
end

(* {1 Symbolic provenance evaluator}

   Every register slot and shared-memory cell holds either the flattened
   source hardware index whose value it contains, or [bot] (undefined /
   opaque).  Running the pseudo-ISA over this domain mirrors
   {!Gpusim.Isa.run} instruction by instruction; [Bin] results are
   opaque (conversions never compute).  The domain is exact for
   data-movement programs: with the injective test payload
   [value(hw) = hw], the concrete interpreter and the provenance
   evaluator compute the same function, so a plan is correct iff every
   destination point's provenance maps to the required logical
   element. *)

let bot = -1

type sym_state = { regs : int array array array; smem : int array }

let sym_state (p : Gpusim.Isa.program) ~slots =
  {
    regs =
      Array.init p.Gpusim.Isa.warps (fun _ ->
          Array.init p.Gpusim.Isa.lanes (fun _ -> Array.make slots bot));
    smem = Array.make p.Gpusim.Isa.smem_elems bot;
  }

let sym_run (p : Gpusim.Isa.program) st =
  let check_lane_table name a =
    if
      Array.length a <> p.Gpusim.Isa.warps
      || Array.exists (fun row -> Array.length row <> p.Gpusim.Isa.lanes) a
    then failwith (name ^ ": per-warp/lane table has wrong shape")
  in
  List.iter
    (fun instr ->
      match instr with
      | Gpusim.Isa.Mov { dst; src } ->
          for w = 0 to p.Gpusim.Isa.warps - 1 do
            for l = 0 to p.Gpusim.Isa.lanes - 1 do
              st.regs.(w).(l).(dst) <- st.regs.(w).(l).(src)
            done
          done
      | Gpusim.Isa.Sel { dst; src_slot } ->
          check_lane_table "sel" src_slot;
          for w = 0 to p.Gpusim.Isa.warps - 1 do
            for l = 0 to p.Gpusim.Isa.lanes - 1 do
              let s = src_slot.(w).(l) in
              if s >= 0 then st.regs.(w).(l).(dst) <- st.regs.(w).(l).(s)
            done
          done
      | Gpusim.Isa.Scatter { src; dst_slot } ->
          check_lane_table "scatter" dst_slot;
          for w = 0 to p.Gpusim.Isa.warps - 1 do
            for l = 0 to p.Gpusim.Isa.lanes - 1 do
              let s = dst_slot.(w).(l) in
              if s >= 0 then st.regs.(w).(l).(s) <- st.regs.(w).(l).(src)
            done
          done
      | Gpusim.Isa.Shfl_idx { dst; src; src_lane; keep } ->
          check_lane_table "shfl" src_lane;
          check_lane_table "shfl" keep;
          for w = 0 to p.Gpusim.Isa.warps - 1 do
            let published =
              Array.init p.Gpusim.Isa.lanes (fun l -> st.regs.(w).(l).(src))
            in
            for l = 0 to p.Gpusim.Isa.lanes - 1 do
              let s = src_lane.(w).(l) in
              if s < 0 || s >= p.Gpusim.Isa.lanes then
                failwith "shfl: source lane out of range";
              if keep.(w).(l) then st.regs.(w).(l).(dst) <- published.(s)
            done
          done
      | Gpusim.Isa.St_shared { slots; addr; byte_width = _ } ->
          check_lane_table "st.shared" addr;
          for w = 0 to p.Gpusim.Isa.warps - 1 do
            for l = 0 to p.Gpusim.Isa.lanes - 1 do
              List.iteri
                (fun i slot ->
                  let a = addr.(w).(l) + i in
                  if a < 0 || a >= p.Gpusim.Isa.smem_elems then
                    failwith "st.shared: address out of range";
                  st.smem.(a) <- st.regs.(w).(l).(slot))
                slots
            done
          done
      | Gpusim.Isa.Ld_shared { slots; addr; byte_width = _ } ->
          check_lane_table "ld.shared" addr;
          for w = 0 to p.Gpusim.Isa.warps - 1 do
            for l = 0 to p.Gpusim.Isa.lanes - 1 do
              List.iteri
                (fun i slot ->
                  let a = addr.(w).(l) + i in
                  if a < 0 || a >= p.Gpusim.Isa.smem_elems then
                    failwith "ld.shared: address out of range";
                  st.regs.(w).(l).(slot) <- st.smem.(a))
                slots
            done
          done
      | Gpusim.Isa.Bin { op = _; dst; a = _; b = _ } ->
          (* Arithmetic destroys provenance: a conversion plan must never
             route payload data through it. *)
          for w = 0 to p.Gpusim.Isa.warps - 1 do
            for l = 0 to p.Gpusim.Isa.lanes - 1 do
              st.regs.(w).(l).(dst) <- bot
            done
          done
      | Gpusim.Isa.Bar_sync -> ())
    p.Gpusim.Isa.body

(* {1 Certificates} *)

type refutation = { counterexample : int; got : int option; want : int }
type verdict = Proved | Refuted of refutation | Failed of string
type method_ = Symbolic | Algebraic

type cert = {
  mechanism : string;
  method_ : method_;
  points : int;  (** destination hardware points covered by the proof *)
  verdict : verdict;
}

let method_name = function Symbolic -> "symbolic" | Algebraic -> "algebraic"

(* Load the canonical conversion pre-state: slot [r] of lane [l] in warp
   [w] holds the source hardware point [r | l<<rb | w<<(rb+lb)] — the
   same convention as {!Codegen.Lower.load_state}. *)
let init_conversion st ~(map : Codegen.Lower.slot_map) ~lanes ~warps =
  for w = 0 to warps - 1 do
    for l = 0 to lanes - 1 do
      for r = 0 to map.Codegen.Lower.src_regs - 1 do
        st.regs.(w).(l).(r) <-
          r lor (l * map.Codegen.Lower.src_regs) lor (w * map.Codegen.Lower.src_regs * lanes)
      done
    done
  done

(* The shared core: symbolically execute [program], then require, for
   every destination hardware point [h] (decoded with
   {!Codegen.Lower.store_dist}'s convention), that the provenance [p] of
   its register slot satisfies [src_flat p = want h].  [want] is the
   logical element [h] must hold; broadcasting sources are handled for
   free because any source point of the same element is acceptable. *)
let check_program ~src ~(map : Codegen.Lower.slot_map) ~want ~mechanism
    (program : Gpusim.Isa.program) =
  let lanes = program.Gpusim.Isa.lanes and warps = program.Gpusim.Isa.warps in
  let dst_regs = map.Codegen.Lower.dst_regs in
  let points = dst_regs * lanes * warps in
  match
    let st = sym_state program ~slots:map.Codegen.Lower.total_slots in
    init_conversion st ~map ~lanes ~warps;
    sym_run program st;
    st
  with
  | exception Failure msg -> { mechanism; method_ = Symbolic; points; verdict = Failed msg }
  | st -> (
      let src_flat = Layout.Memo.flatten_outs src in
      let prov h =
        let r = h mod dst_regs in
        let l = h / dst_regs mod lanes in
        let w = h / (dst_regs * lanes) in
        st.regs.(w).(l).(map.Codegen.Lower.dst_base + r)
      in
      (* First undefined destination point, if any. *)
      let rec undef h =
        if h >= points then None else if prov h < 0 then Some h else undef (h + 1)
      in
      match undef 0 with
      | Some h ->
          {
            mechanism;
            method_ = Symbolic;
            points;
            verdict = Refuted { counterexample = h; got = None; want = want h };
          }
      | None -> (
          let got h = Layout.apply_flat src_flat (prov h) in
          let in_bits = Util.log2 points in
          let out_bits = Layout.total_out_bits src_flat in
          (* Fit the realized map as a canonical affine map and compare;
             a weight-<=1 counterexample falls out when it is affine,
             otherwise the first disagreeing point is reported. *)
          let scan () =
            let rec go h =
              if h >= points then { mechanism; method_ = Symbolic; points; verdict = Proved }
              else if got h <> want h then
                {
                  mechanism;
                  method_ = Symbolic;
                  points;
                  verdict = Refuted { counterexample = h; got = Some (got h); want = want h };
                }
              else go (h + 1)
            in
            go 0
          in
          match
            ( Affine.of_fun ~in_bits ~out_bits got,
              Affine.of_fun ~in_bits ~out_bits want )
          with
          | Ok g, Ok w -> (
              match Affine.counterexample g w with
              | None -> { mechanism; method_ = Symbolic; points; verdict = Proved }
              | Some h ->
                  {
                    mechanism;
                    method_ = Symbolic;
                    points;
                    verdict =
                      Refuted { counterexample = h; got = Some (got h); want = want h };
                  })
          | _ -> scan ()))

let certify_isa ~src ~dst ~map program =
  let dst_flat = Layout.Memo.flatten_outs dst in
  check_program ~src ~map
    ~want:(fun h -> Layout.apply_flat dst_flat h)
    ~mechanism:"isa" program

(* Cross-CTA conversions spill through global memory and are executed
   algebraically ({!Codegen.Conversion.execute_algebraic}): destination
   point [h] reads source point [pseudo_invert(src_flat)(dst_flat h)].
   That is correct by construction whenever the two layouts cover the
   same logical space and the source is surjective onto it — both
   decidable by elimination on the F2 matrices. *)
let certify_algebraic ~src ~dst ~mechanism =
  let a = Layout.Memo.flatten_outs src and b = Layout.Memo.flatten_outs dst in
  let points = 1 lsl Layout.total_in_bits dst in
  if Layout.out_dims a <> Layout.out_dims b then
    {
      mechanism;
      method_ = Algebraic;
      points;
      verdict =
        Failed
          (Printf.sprintf "layouts cover different logical spaces (%s vs %s)"
             (String.concat "x" (List.map (fun (d, n) -> Printf.sprintf "%s:%d" d n) (Layout.out_dims a)))
             (String.concat "x" (List.map (fun (d, n) -> Printf.sprintf "%s:%d" d n) (Layout.out_dims b))));
    }
  else
    let ech = Layout.Memo.echelon a in
    (* A surjective source solves every right-hand side, so the
       per-point scan below cannot refute — prove in O(1) from the
       factorization's rank (the verdict is identical by construction). *)
    if F2.Bitmatrix.is_surjective_with ech then
      { mechanism; method_ = Algebraic; points; verdict = Proved }
    else begin
      F2.Bitmatrix.prepare ech;
      let rec go h =
        if h >= points then { mechanism; method_ = Algebraic; points; verdict = Proved }
        else
          let want = Layout.apply_flat b h in
          match F2.Bitmatrix.solve_with ech want with
          | Some _ -> go (h + 1)
          | None ->
              {
                mechanism;
                method_ = Algebraic;
                points;
                verdict = Refuted { counterexample = h; got = None; want };
              }
      in
      go 0
    end

let certify_plan machine (plan : Codegen.Conversion.plan) =
  let mechanism = Codegen.Conversion.mechanism_name plan.Codegen.Conversion.mechanism in
  let src = plan.Codegen.Conversion.src and dst = plan.Codegen.Conversion.dst in
  let cta_mismatch =
    Layout.in_size src Dims.lane <> Layout.in_size dst Dims.lane
    || Layout.in_size src Dims.warp <> Layout.in_size dst Dims.warp
  in
  let cert =
    match plan.Codegen.Conversion.mechanism with
    | Codegen.Conversion.Global_roundtrip ->
        certify_algebraic ~src:plan.Codegen.Conversion.src ~dst:plan.Codegen.Conversion.dst
          ~mechanism
    | _ when cta_mismatch ->
        (* {!Codegen.Lower.conversion} has no warp-level lowering when
           the CTA shapes differ (e.g. a post-reduction layout with
           fewer live lane bits): the engine executes those plans
           algebraically, so that is the artifact to certify. *)
        certify_algebraic ~src:plan.Codegen.Conversion.src ~dst:plan.Codegen.Conversion.dst
          ~mechanism
    | _ -> (
        match Codegen.Lower.conversion machine plan with
        | exception Failure msg ->
            {
              mechanism;
              method_ = Symbolic;
              points = 1 lsl Layout.total_in_bits plan.Codegen.Conversion.dst;
              verdict = Failed ("lowering failed: " ^ msg);
            }
        | program, map ->
            {
              (certify_isa ~src:plan.Codegen.Conversion.src ~dst:plan.Codegen.Conversion.dst
                 ~map program)
              with
              mechanism;
            })
  in
  if Obs.enabled () then begin
    Obs.Metrics.incr "transval.certificates.checked";
    Obs.Metrics.incr
      (match cert.verdict with
      | Proved -> "transval.certificates.proved"
      | Refuted _ | Failed _ -> "transval.certificates.refuted")
  end;
  cert

(* Gather plans are index-dependent: destination point [h] must hold the
   source element at [h]'s logical coordinates with the gathered axis
   replaced by the index tensor's value there.  The spec is not affine
   in general (it depends on the index data), so the checker falls back
   to the exhaustive scan. *)
let certify_gather machine ~src ~index ~axis =
  match Codegen.Lower.gather machine ~src ~index ~axis with
  | Error msg -> { mechanism = "gather"; method_ = Symbolic; points = 0; verdict = Failed msg }
  | exception Failure msg ->
      { mechanism = "gather"; method_ = Symbolic; points = 0; verdict = Failed msg }
  | Ok (program, map) ->
      let l = src.Gpusim.Dist.layout in
      let flat = Layout.Memo.flatten_outs l in
      let out_dims = Layout.out_dims l in
      let axis_size = Layout.out_size l (Dims.dim axis) in
      let t_idx =
        match Gpusim.Dist.to_logical index with
        | Ok t -> t
        | Error e -> failwith ("Transval.certify_gather: " ^ e)
      in
      let want h =
        let logical = Layout.apply_flat flat h in
        let coords = Layout.unflatten_value out_dims logical in
        let idx = t_idx.(logical) land (axis_size - 1) in
        let coords' =
          List.map (fun (d, c) -> (d, if d = Dims.dim axis then idx else c)) coords
        in
        Layout.flatten_value out_dims coords'
      in
      { (check_program ~src:l ~map ~want ~mechanism:"gather" program) with mechanism = "gather" }

(* {1 Diagnostics} *)

let pp_point ~bits ppf h = F2.Bitvec.pp ~width:(max 1 bits) ppf h

let diagnostics ?(loc = Diagnostics.No_loc) cert =
  let bits = Util.log2 (max 1 cert.points) in
  match cert.verdict with
  | Proved -> []
  | Refuted { counterexample; got = Some got; want } ->
      [
        Diagnostics.error ~code:"LL650" ~loc
          "plan certificate refuted (%s, %s): destination hw point %a holds logical element \
           %d, the conversion map requires %d"
          cert.mechanism (method_name cert.method_) (pp_point ~bits) counterexample got want;
      ]
  | Refuted { counterexample; got = None; want } ->
      [
        Diagnostics.error ~code:"LL651" ~loc
          "plan certificate refuted (%s, %s): destination hw point %a is never written \
           (required logical element %d)"
          cert.mechanism (method_name cert.method_) (pp_point ~bits) counterexample want;
      ]
  | Failed msg ->
      [
        Diagnostics.error ~code:"LL652" ~loc "plan could not be certified (%s): %s"
          cert.mechanism msg;
      ]

let verdict_name = function
  | Proved -> "proved"
  | Refuted _ -> "refuted"
  | Failed _ -> "failed"
