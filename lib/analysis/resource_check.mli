(** Resource analysis of ISA programs: the LL8xx diagnostics family.

    Where {!Static_cost} prices a program, this module checks that it
    is {e well-resourced}: shared-memory accesses stay in bounds and
    within the machine's budget, every load reads data some store
    produced, stores are not dead, and register slots are defined
    before use.  All properties are decidable exactly — the ISA is
    straight-line and every operand is an immediate — so the passes
    below are precise dataflow, not approximations.

    Codes:
    - [LL800] (error): per-warp/lane immediate table has the wrong shape
    - [LL801] (error): shared-memory address out of range
    - [LL802] (warning): shared-memory footprint exceeds
      [machine.smem_bytes] — the simulated lowering still runs (the
      interpreter has no capacity notion), but the conversion would not
      fit on the real part without tiling
    - [LL803] (warning): load reads an element no store has written
    - [LL804] (warning): store is dead (no element read before overwrite
      or program end)
    - [LL805] (warning): register slot read before any definition
    - [LL806] (warning): register write is dead
    - [LL807] (error): shuffle source lane out of range

    Per-lane predication (Sel/Scatter skip lanes, shuffles keep subsets)
    means a slot can be defined in one lane and not another; to stay
    false-positive-free on such lowerings, LL805/LL806 fire only when
    the condition holds in {e every} lane that uses (resp. defines) the
    slot at that instruction.  Reads of never-written slots observe the
    interpreter's zero-initialised registers — code may rely on that
    (e.g. the scan lowering's zero slot), which is what [live_in] is
    for. *)

open Linear_layout

(** A maximal contiguous run of touched shared-memory elements. *)
type region = {
  first_elem : int;
  last_elem : int;  (** inclusive element offsets *)
  first_def : int option;  (** index of the first store into the region *)
  last_use : int option;  (** index of the last load from the region *)
}

type report = {
  diagnostics : Diagnostics.t list;
  footprint_bytes : int;
      (** highest byte touched + 1 (0 when no shared-memory traffic) *)
  regions : region list;
  peak_live_slots : int;
      (** maximum, over lanes and program points, of simultaneously
          live register slots *)
}

(** [program machine ?live_in ?live_out p] analyzes a raw program.
    [live_in] lists slots holding meaningful data on entry (reads
    before any store are then legitimate); defaults to none.
    [live_out] lists slots read after the program; when omitted, the
    dead-write analysis (LL806) is skipped and liveness treats nothing
    as live-out. *)
val program :
  Gpusim.Machine.t ->
  ?live_in:int list ->
  ?live_out:int list ->
  Gpusim.Isa.program ->
  report

(** [plan machine p] lowers the conversion plan (guarded exactly as
    {!Static_cost.lower_plan}; [None] when there is no warp-level
    lowering) and analyzes it with the slot map's source registers as
    [live_in] and destination registers as [live_out]. *)
val plan : Gpusim.Machine.t -> Codegen.Conversion.plan -> report option

val pp : Format.formatter -> report -> unit
