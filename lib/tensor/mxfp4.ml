let block_size = 32

type t = { length : int; nibbles : int array; scales : int array }

(* e2m1: values 0, 0.5, 1, 1.5, 2, 3, 4, 6 (and negatives). *)
let e2m1_max = 6.0

let e8m0_bias = 127

let quantize xs =
  let n = Array.length xs in
  let blocks = (n + block_size - 1) / block_size in
  let scales = Array.make blocks 0 in
  let nibbles = Array.make n 0 in
  for b = 0 to blocks - 1 do
    let lo = b * block_size and hi = min n ((b + 1) * block_size) in
    let maxabs = ref 0. in
    for i = lo to hi - 1 do
      maxabs := Float.max !maxabs (Float.abs xs.(i))
    done;
    (* Smallest power-of-two scale s with maxabs / s <= e2m1_max. *)
    let exp =
      if !maxabs = 0. then 0
      else
        let rec go e = if !maxabs /. Float.ldexp 1. e <= e2m1_max then e else go (e + 1) in
        let rec down e =
          if e > -100 && !maxabs /. Float.ldexp 1. (e - 1) <= e2m1_max then down (e - 1) else e
        in
        down (go 0)
    in
    scales.(b) <- exp + e8m0_bias;
    let s = Float.ldexp 1. exp in
    for i = lo to hi - 1 do
      nibbles.(i) <- Dtype.encode Dtype.MXFP4 (xs.(i) /. s)
    done
  done;
  { length = n; nibbles; scales }

let get t i =
  let s = Float.ldexp 1. (t.scales.(i / block_size) - e8m0_bias) in
  Dtype.decode Dtype.MXFP4 t.nibbles.(i) *. s

let dequantize t = Array.init t.length (get t)
let upcast_to t dtype = Array.map (Dtype.quantize dtype) (dequantize t)
