(** Element types used by the mixed-precision experiments (Section 5.2,
    Tables 3 and 5, Figure 6).

    Floating-point formats are emulated by quantization: a value is
    encoded to the format's bit pattern and decoded back, so arithmetic
    on "f16" data is ordinary [float] arithmetic on quantized inputs —
    deterministic and faithful enough for correctness comparisons. *)

type t =
  | F8E4M3
  | F8E5M2
  | F16
  | BF16
  | F32
  | F64
  | I8
  | I16
  | I32
  | I64
  | MXFP4  (** 4-bit e2m1 values; scales handled by {!Mxfp4} *)

val name : t -> string
val of_name : string -> t option

(** Storage width in bits (MXFP4 is 4). *)
val bits : t -> int

(** Storage width in bytes; raises for MXFP4 (sub-byte, packed). *)
val byte_width : t -> int

val is_float : t -> bool
val is_int : t -> bool

(** [quantize t x] rounds [x] to the nearest representable value
    (round-to-nearest-even on the mantissa, saturating at the format's
    maximum; integers truncate toward zero and saturate). *)
val quantize : t -> float -> float

(** [encode t x] is the bit pattern of [quantize t x];
    [decode t bits] recovers the value. *)
val encode : t -> float -> int

val decode : t -> int -> float

val all : t list
val pp : Format.formatter -> t -> unit
