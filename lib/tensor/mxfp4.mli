(** MXFP4 microscaling emulation (Section 5.2).

    A quantized block format per the OCP MX specification: groups of
    [block_size = 32] fp4 (e2m1) elements share one 8-bit power-of-two
    scale (e8m0).  New GPUs support it natively; everywhere else Triton
    upcasts to bf16 in software, which is the path the paper's Figure 6
    benchmarks — and the path we emulate. *)

val block_size : int

type t = {
  length : int;
  nibbles : int array;  (** one fp4 (e2m1) code per element *)
  scales : int array;  (** one e8m0 exponent per 32-element block *)
}

(** Quantize a float vector: per block, pick the largest power-of-two
    scale keeping the max magnitude representable in e2m1, then encode
    each element. *)
val quantize : float array -> t

val dequantize : t -> float array

(** Decode a single element. *)
val get : t -> int -> float

(** Largest finite magnitude of e2m1 times a unit scale. *)
val e2m1_max : float

(** [upcast_to t dtype] dequantizes and re-quantizes each element into
    [dtype] — the software-emulation upcast (e.g. to bf16). *)
val upcast_to : t -> Dtype.t -> float array
