type t = { dtype : Dtype.t; shape : int array; data : float array }

let numel_of shape = Array.fold_left ( * ) 1 shape
let numel t = numel_of t.shape
let create dtype shape = { dtype; shape; data = Array.make (numel_of shape) 0. }

let index t coords =
  if Array.length coords <> Array.length t.shape then invalid_arg "Tensor.index: rank mismatch";
  let idx = ref 0 in
  Array.iteri
    (fun d c ->
      if c < 0 || c >= t.shape.(d) then invalid_arg "Tensor.index: out of bounds";
      idx := (!idx * t.shape.(d)) + c)
    coords;
  !idx

let coords_of shape i =
  let n = Array.length shape in
  let out = Array.make n 0 in
  let rem = ref i in
  for d = n - 1 downto 0 do
    out.(d) <- !rem mod shape.(d);
    rem := !rem / shape.(d)
  done;
  out

let init dtype shape ~f =
  {
    dtype;
    shape;
    data = Array.init (numel_of shape) (fun i -> Dtype.quantize dtype (f (coords_of shape i)));
  }

let get t coords = t.data.(index t coords)
let set t coords v = t.data.(index t coords) <- Dtype.quantize t.dtype v
let astype t dtype = { dtype; shape = t.shape; data = Array.map (Dtype.quantize dtype) t.data }

let matmul a b ~acc =
  match (a.shape, b.shape) with
  | [| m; k |], [| k'; n |] when k = k' ->
      let out = create acc [| m; n |] in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          let s = ref 0. in
          for l = 0 to k - 1 do
            s := Dtype.quantize acc (!s +. (a.data.((i * k) + l) *. b.data.((l * n) + j)))
          done;
          out.data.((i * n) + j) <- !s
        done
      done;
      out
  | _ -> invalid_arg "Tensor.matmul: shapes must be [m;k] x [k;n]"

let transpose t =
  match t.shape with
  | [| m; n |] ->
      let out = create t.dtype [| n; m |] in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          out.data.((j * m) + i) <- t.data.((i * n) + j)
        done
      done;
      out
  | _ -> invalid_arg "Tensor.transpose: rank-2 only"

let transpose_perm t ~perm =
  let rank = Array.length t.shape in
  if Array.length perm <> rank then invalid_arg "Tensor.transpose_perm: rank mismatch";
  let out_shape = Array.map (fun d -> t.shape.(d)) perm in
  let out = create t.dtype out_shape in
  for i = 0 to numel t - 1 do
    let coords = coords_of t.shape i in
    let out_coords = Array.map (fun d -> coords.(d)) perm in
    out.data.(index out out_coords) <- t.data.(i)
  done;
  out

let reshape t ~shape =
  if Array.fold_left ( * ) 1 shape <> numel t then
    invalid_arg "Tensor.reshape: element count mismatch";
  { t with shape; data = Array.copy t.data }

let broadcast_to t ~shape =
  let rank = Array.length t.shape in
  if Array.length shape <> rank then invalid_arg "Tensor.broadcast_to: rank mismatch";
  Array.iteri
    (fun d s ->
      if t.shape.(d) <> s && t.shape.(d) <> 1 then
        invalid_arg "Tensor.broadcast_to: only size-1 dims can grow")
    shape;
  let out = create t.dtype shape in
  for i = 0 to numel out - 1 do
    let coords = coords_of shape i in
    let src = Array.mapi (fun d c -> if t.shape.(d) = 1 then 0 else c) coords in
    out.data.(i) <- t.data.(index t src)
  done;
  out

let expand_dims t ~axis =
  let rank = Array.length t.shape in
  if axis < 0 || axis > rank then invalid_arg "Tensor.expand_dims: bad axis";
  let shape =
    Array.init (rank + 1) (fun d ->
        if d < axis then t.shape.(d) else if d = axis then 1 else t.shape.(d - 1))
  in
  { t with shape; data = Array.copy t.data }

let reduce_sum t ~axis =
  let rank = Array.length t.shape in
  if axis < 0 || axis >= rank then invalid_arg "Tensor.reduce_sum: bad axis";
  let out_shape = Array.of_list (List.filteri (fun d _ -> d <> axis) (Array.to_list t.shape)) in
  let out = create t.dtype out_shape in
  for i = 0 to numel t - 1 do
    let coords = coords_of t.shape i in
    let out_coords =
      Array.of_list (List.filteri (fun d _ -> d <> axis) (Array.to_list coords))
    in
    let j = index out out_coords in
    out.data.(j) <- Dtype.quantize t.dtype (out.data.(j) +. t.data.(i))
  done;
  out

let cumsum t ~axis ~reverse =
  let rank = Array.length t.shape in
  if axis < 0 || axis >= rank then invalid_arg "Tensor.cumsum: bad axis";
  let out = { t with data = Array.copy t.data } in
  let n = t.shape.(axis) in
  (* Walk every line along [axis] sequentially. *)
  for i = 0 to numel t - 1 do
    let coords = coords_of t.shape i in
    if coords.(axis) = 0 then begin
      let acc = ref 0. in
      for step = 0 to n - 1 do
        let p = if reverse then n - 1 - step else step in
        coords.(axis) <- p;
        let j = index t coords in
        acc := Dtype.quantize t.dtype (!acc +. t.data.(j));
        out.data.(j) <- !acc
      done;
      coords.(axis) <- 0
    end
  done;
  out

let gather t ~index:indices ~axis =
  if t.shape <> indices.shape then invalid_arg "Tensor.gather: shape mismatch";
  let n = t.shape.(axis) in
  let out = create t.dtype t.shape in
  for i = 0 to numel t - 1 do
    let coords = coords_of t.shape i in
    let idx = ((int_of_float indices.data.(i) mod n) + n) mod n in
    coords.(axis) <- idx;
    out.data.(i) <- t.data.(index t coords)
  done;
  out

let join a b =
  if a.shape <> b.shape || a.dtype <> b.dtype then invalid_arg "Tensor.join: mismatch";
  let shape = Array.append a.shape [| 2 |] in
  let out = create a.dtype shape in
  Array.iteri
    (fun i v ->
      out.data.(2 * i) <- v;
      out.data.((2 * i) + 1) <- b.data.(i))
    a.data;
  out

let split t ~half =
  let rank = Array.length t.shape in
  if rank = 0 || t.shape.(rank - 1) <> 2 then invalid_arg "Tensor.split: bad shape";
  let shape = Array.sub t.shape 0 (rank - 1) in
  let out = create t.dtype shape in
  Array.iteri (fun i _ -> out.data.(i) <- t.data.((2 * i) + half)) out.data;
  out

let equal a b = a.dtype = b.dtype && a.shape = b.shape && a.data = b.data

let max_abs_diff a b =
  if a.shape <> b.shape then invalid_arg "Tensor.max_abs_diff: shape mismatch";
  let m = ref 0. in
  Array.iteri (fun i v -> m := Float.max !m (Float.abs (v -. b.data.(i)))) a.data;
  !m

let pp ppf t =
  Format.fprintf ppf "tensor<%a>[%s]" Dtype.pp t.dtype
    (String.concat "x" (Array.to_list (Array.map string_of_int t.shape)))
