(** Logical tensors on quantized float payloads, row-major.

    Values are stored as [float]s already quantized to the tensor's
    dtype, so arithmetic emulates low-precision computation
    deterministically. *)

type t = { dtype : Dtype.t; shape : int array; data : float array }

val create : Dtype.t -> int array -> t
val init : Dtype.t -> int array -> f:(int array -> float) -> t
val numel : t -> int

(** Row-major linear index of a coordinate. *)
val index : t -> int array -> int

val get : t -> int array -> float
val set : t -> int array -> float -> unit

(** Re-quantize into another dtype. *)
val astype : t -> Dtype.t -> t

(** [matmul a b ~acc] multiplies [MxK] by [KxN], accumulating in [acc]
    precision and producing an [acc]-typed result. *)
val matmul : t -> t -> acc:Dtype.t -> t

(** Reference kernels for the benchmark suite. *)
val transpose : t -> t

(** [transpose_perm t ~perm] permutes dimensions: output dim [i] is
    input dim [perm.(i)]. *)
val transpose_perm : t -> perm:int array -> t

(** Row-major reinterpretation (element count preserved). *)
val reshape : t -> shape:int array -> t

(** Grow size-1 dimensions to [shape]. *)
val broadcast_to : t -> shape:int array -> t

(** Insert a size-1 dimension at [axis]. *)
val expand_dims : t -> axis:int -> t

val reduce_sum : t -> axis:int -> t

(** Inclusive cumulative sum along [axis]; [reverse] scans from the
    high end. *)
val cumsum : t -> axis:int -> reverse:bool -> t

(** [gather t ~index ~axis] with [index] of [t]'s shape:
    [out[...,p,...] = t[..., index[...,p,...] mod n, ...]]. *)
val gather : t -> index:t -> axis:int -> t

(** Stack two equal-shaped tensors along a new trailing dim of size 2,
    and its inverse. *)
val join : t -> t -> t

val split : t -> half:int -> t
val equal : t -> t -> bool
val max_abs_diff : t -> t -> float
val pp : Format.formatter -> t -> unit
