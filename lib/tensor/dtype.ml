type t = F8E4M3 | F8E5M2 | F16 | BF16 | F32 | F64 | I8 | I16 | I32 | I64 | MXFP4

let all = [ F8E4M3; F8E5M2; F16; BF16; F32; F64; I8; I16; I32; I64; MXFP4 ]

let name = function
  | F8E4M3 -> "f8e4m3"
  | F8E5M2 -> "f8e5m2"
  | F16 -> "f16"
  | BF16 -> "bf16"
  | F32 -> "f32"
  | F64 -> "f64"
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | MXFP4 -> "mxfp4"

let of_name s =
  List.find_opt (fun t -> name t = s) all
  |> function
  | Some t -> Some t
  | None -> if s = "f8" then Some F8E4M3 else None

let bits = function
  | MXFP4 -> 4
  | F8E4M3 | F8E5M2 | I8 -> 8
  | F16 | BF16 | I16 -> 16
  | F32 | I32 -> 32
  | F64 | I64 -> 64

let byte_width t =
  match t with
  | MXFP4 -> invalid_arg "Dtype.byte_width: mxfp4 is sub-byte"
  | _ -> bits t / 8

let is_int = function I8 | I16 | I32 | I64 -> true | _ -> false
let is_float t = not (is_int t)

(* Generic small-float codec: [e] exponent bits, [m] mantissa bits, no
   infinities (all encodings finite, like e4m3); saturates at the
   format's largest magnitude. *)
let small_float_encode ~e ~m x =
  let bias = (1 lsl (e - 1)) - 1 in
  let max_field = (1 lsl e) - 1 in
  let sign = if x < 0. || (x = 0. && 1. /. x < 0.) then 1 else 0 in
  let a = Float.abs x in
  if a <> a (* nan: saturate *) then
    (sign lsl (e + m)) lor (max_field lsl m) lor ((1 lsl m) - 1)
  else if a = 0. then sign lsl (e + m)
  else
    let mant, ex = Float.frexp a in
    (* a = mant * 2^ex, mant in [0.5, 1). Normalized: 1.f * 2^(ex-1). *)
    let exp = ex - 1 in
    let field = exp + bias in
    let max_val = Float.of_int ((2 lsl m) - 1) *. Float.ldexp 1. (max_field - bias - m) in
    if a >= max_val then (sign lsl (e + m)) lor (max_field lsl m) lor ((1 lsl m) - 1)
    else if field <= 0 then begin
      (* Subnormal: value = frac * 2^(1 - bias - m). *)
      let frac = Float.round (Float.ldexp a (bias - 1 + m)) in
      let frac = int_of_float frac in
      if frac >= 1 lsl m then (sign lsl (e + m)) lor (1 lsl m)
      else (sign lsl (e + m)) lor frac
    end
    else
      let frac = Float.round (Float.ldexp (mant -. 0.5) (m + 1)) in
      let frac = int_of_float frac in
      if frac >= 1 lsl m then
        if field + 1 > max_field then (sign lsl (e + m)) lor (max_field lsl m) lor ((1 lsl m) - 1)
        else (sign lsl (e + m)) lor ((field + 1) lsl m)
      else (sign lsl (e + m)) lor (field lsl m) lor frac

let small_float_decode ~e ~m v =
  let bias = (1 lsl (e - 1)) - 1 in
  let sign = if v lsr (e + m) land 1 = 1 then -1. else 1. in
  let field = (v lsr m) land ((1 lsl e) - 1) in
  let frac = v land ((1 lsl m) - 1) in
  if field = 0 then sign *. Float.ldexp (Float.of_int frac) (1 - bias - m)
  else sign *. Float.ldexp (Float.of_int ((1 lsl m) + frac)) (field - bias - m)

let int_saturate ~bits x =
  let lo = -(1 lsl (bits - 1)) and hi = (1 lsl (bits - 1)) - 1 in
  let v = if x <> x then 0 else int_of_float x in
  max lo (min hi v)

let float_params = function
  | F8E4M3 -> Some (4, 3)
  | F8E5M2 -> Some (5, 2)
  | F16 -> Some (5, 10)
  | BF16 -> Some (8, 7)
  | MXFP4 -> Some (2, 1)
  | _ -> None

let encode t x =
  match t with
  | F8E4M3 | F8E5M2 | F16 | BF16 | MXFP4 ->
      let e, m = Option.get (float_params t) in
      small_float_encode ~e ~m x
  | F32 -> Int32.to_int (Int32.bits_of_float x) land 0xFFFFFFFF
  | F64 ->
      (* OCaml ints are 63 bits: drop the lowest mantissa bit.  The
         half-ulp loss is irrelevant for the emulation. *)
      Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float x) 1)
  | I8 | I16 | I32 | I64 ->
      let b = bits t in
      int_saturate ~bits:(min b 62) x land ((1 lsl min b 62) - 1)

let decode t v =
  match t with
  | F8E4M3 | F8E5M2 | F16 | BF16 | MXFP4 ->
      let e, m = Option.get (float_params t) in
      small_float_decode ~e ~m v
  | F32 -> Int32.float_of_bits (Int32.of_int v)
  | F64 -> Int64.float_of_bits (Int64.shift_left (Int64.of_int v) 1)
  | I8 | I16 | I32 | I64 ->
      let b = min (bits t) 62 in
      let v = v land ((1 lsl b) - 1) in
      let v = if v >= 1 lsl (b - 1) then v - (1 lsl b) else v in
      Float.of_int v

let quantize t x =
  match t with
  | F64 -> x
  | _ -> decode t (encode t x)

let pp ppf t = Format.pp_print_string ppf (name t)
