(** Bit-vectors over the field [F2] of two elements.

    A vector in [F2^n] is represented as the low [n] bits of a non-negative
    OCaml [int]; bit [k] of the integer is coordinate [k] of the vector.
    This limits dimensions to 62 bits, far more than any tensor layout
    needs (GPU tensors have at most ~32 address bits). *)

type t = int

val zero : t

(** Number of usable coordinates in a single-word vector:
    [Sys.int_size - 1], i.e. 62 on 64-bit platforms.  Operations that
    mint a coordinate at or past this width raise [Invalid_argument]
    instead of silently wrapping; use {!Packed} for wider spaces. *)
val max_bits : int

(** [unit k] is the basis vector [e_k]. Raises [Invalid_argument] when
    [k < 0] or [k >= max_bits]. *)
val unit : int -> t

(** [bit v k] is coordinate [k] of [v]. *)
val bit : t -> int -> bool

(** Vector addition in [F2], i.e. bitwise XOR. *)
val add : t -> t -> t

(** Pointwise multiplication in [F2], i.e. bitwise AND. *)
val pointwise_mul : t -> t -> t

(** [dot a b] is the inner product [sum_k a_k * b_k] in [F2]. *)
val dot : t -> t -> bool

(** Number of set coordinates (Hamming weight). *)
val popcount : t -> int

(** [parity v] is [popcount v mod 2]. *)
val parity : t -> bool

(** Position of the most significant set bit, or [-1] for the zero vector. *)
val msb : t -> int

(** Position of the least significant set bit, or [-1] for the zero vector. *)
val lsb : t -> int

(** Number of trailing zeros; same as {!lsb} (and [-1] on zero).  The
    name matches the hardware instruction the word-parallel loops in
    {!Bitmatrix} are written against. *)
val ntz : t -> int

(** Number of bits needed to represent [v], i.e. [msb v + 1]. *)
val width : t -> int

(** Indices of set coordinates, in increasing order. *)
val support : t -> int list

(** [extract v ~pos ~len] is the [len]-bit field of [v] starting at [pos]. *)
val extract : t -> pos:int -> len:int -> t

(** [insert v ~pos ~len field] overwrites the [len]-bit field at [pos]. *)
val insert : t -> pos:int -> len:int -> t -> t

(** All vectors of [F2^n], i.e. [0 .. 2^n - 1], as a list. *)
val all : int -> t list

val equal : t -> t -> bool
val compare : t -> t -> int

(** Render as a binary literal, e.g. [0b1011]; width pads with zeros. *)
val pp : width:int -> Format.formatter -> t -> unit

val to_string : width:int -> t -> string
