let echelon_basis vs =
  let rec insert pivots v =
    if v = 0 then pivots
    else
      match List.find_opt (fun p -> Bitvec.msb p = Bitvec.msb v) pivots with
      | Some p -> insert pivots (v lxor p)
      | None -> v :: pivots
  in
  List.fold_left insert [] vs
  |> List.sort (fun a b -> Int.compare (Bitvec.msb b) (Bitvec.msb a))

let dim vs = List.length (echelon_basis vs)

let reduce basis v =
  (* Full reduction to the canonical coset representative: clear the
     pivot position of every echelon basis vector, in decreasing pivot
     order. *)
  let pivots = echelon_basis basis in
  List.fold_left (fun v p -> if Bitvec.bit v (Bitvec.msb p) then v lxor p else v) v pivots

let mem basis v = reduce basis v = 0
let independent_from basis v = reduce basis v <> 0

let complete_basis ~dim:d basis =
  let rec go k acc cur =
    if k >= d then List.rev acc
    else
      let e = Bitvec.unit k in
      if independent_from cur e then go (k + 1) (e :: acc) (e :: cur)
      else go (k + 1) acc cur
  in
  go 0 [] basis

let complement = complete_basis

let sum a b = echelon_basis (a @ b)

let intersection a b =
  (* Zassenhaus: echelonize rows [(v, v)] for v in a and [(w, 0)] for w in b
     over F2^(2d); reduced rows whose left block is zero have right blocks
     forming a basis of the intersection. *)
  let d =
    List.fold_left (fun acc v -> max acc (Bitvec.width v)) 0 (a @ b)
  in
  let paired = List.map (fun v -> (v lsl d) lor v) a @ List.map (fun w -> w lsl d) b in
  let rec insert pivots v =
    if v = 0 then pivots
    else
      match List.find_opt (fun p -> Bitvec.msb p = Bitvec.msb v) pivots with
      | Some p -> insert pivots (v lxor p)
      | None -> v :: pivots
  in
  let pivots = List.fold_left insert [] paired in
  List.filter_map
    (fun p -> if p lsr d = 0 then (if p = 0 then None else Some p) else None)
    pivots

let span_elements basis =
  let bs = Array.of_list basis in
  let k = Array.length bs in
  Array.init (1 lsl k) (fun i ->
      let acc = ref 0 in
      Array.iteri (fun j b -> if Bitvec.bit i j then acc := !acc lxor b) bs;
      !acc)

let equal_span a b =
  List.for_all (mem a) b && List.for_all (mem b) a
