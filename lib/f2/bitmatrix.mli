(** Matrices over [F2], stored column-major.

    A matrix with [rows] rows and [n] columns represents a linear map
    [F2^n -> F2^rows]; column [j] is the image of the basis vector [e_j],
    stored as a {!Bitvec.t}. *)

type t

(** [make ~rows cols] builds a matrix from its columns. Raises
    [Invalid_argument] if a column has a set bit at or above [rows], or
    if [rows] exceeds {!Bitvec.max_bits} (62 on 64-bit platforms) —
    oversized dimensions used to wrap silently through out-of-range
    shifts; they now fail loudly.  Use {!Packed} for wider matrices. *)
val make : rows:int -> Bitvec.t array -> t

val rows : t -> int
val cols : t -> int

(** [column m j] is the [j]-th column as a bit-vector. *)
val column : t -> int -> Bitvec.t

val columns : t -> Bitvec.t array

(** [get m i j] is entry (row [i], column [j]). *)
val get : t -> int -> int -> bool

val identity : int -> t
val zero : rows:int -> cols:int -> t

(** [apply m v] is the matrix-vector product [m v] over [F2]. *)
val apply : t -> Bitvec.t -> Bitvec.t

(** [mul a b] is the matrix product [a b]; requires [cols a = rows b]. *)
val mul : t -> t -> t

val transpose : t -> t

(** [hconcat a b] places the columns of [b] after those of [a];
    requires equal row counts. *)
val hconcat : t -> t -> t

(** [block_diag a b] is [[a 0; 0 b]], the matrix of the product layout
    (Definition 4.3 of the paper). *)
val block_diag : t -> t -> t

(** [divide_left m a] is the unique [b] with [m = block_diag a b] if [m]
    has that block structure (Definition 4.4), and [None] otherwise. *)
val divide_left : t -> t -> t option

val rank : t -> int
val is_surjective : t -> bool
val is_injective : t -> bool
val is_invertible : t -> bool
val is_identity : t -> bool
val is_zero : t -> bool

(** [is_permutation m] holds when every column has {e at most} one set
    bit and no two non-zero columns coincide — the shape of a
    distributed layout matrix (Definition 4.10).  Zero columns are
    accepted by design: they are the broadcasting inputs of a
    distributed layout (a lane or warp bit that owns no element maps
    everything to index 0), so e.g. the matrix of [Layout.zeros1d]
    passes.  Callers that need every column non-zero must additionally
    check {!is_injective}. *)
val is_permutation : t -> bool

(** The result of one Gaussian elimination: an MSB-indexed pivot table
    with combination tracking, optionally carrying Method-of-Four-
    Russians lookup tables (see {!prepare}).  Computing it once and
    solving many right-hand sides against it costs one elimination
    total instead of one per side — the pattern {!right_inverse} uses
    internally and callers with batches of RHS should use too, via
    {!solve_many} / {!compose_many}. *)
type echelon

(** [echelonize m] runs one-pivot-at-a-time Gaussian elimination: the
    reference algorithm, kept as the baseline of the m4rm-vs-pivot
    benchmark pair.  Production callers should prefer {!factorize}. *)
val echelonize : t -> echelon

(** [echelonize_m4rm ?k m] runs table-driven (Method of Four Russians)
    elimination: pivot slots are grouped into windows of [k] bits
    (auto-selected from the matrix size when omitted, clamped to
    [1..8]) and each window precomputes the 2^k XOR-combinations of its
    pivots, so reducing a column costs one table lookup per window
    instead of one XOR per pivot.  The resulting factorization is
    bit-identical to {!echelonize}'s — same rank, pivot values,
    combinations, solutions and kernels (a qcheck differential suite
    pins this) — so it is a drop-in replacement everywhere. *)
val echelonize_m4rm : ?k:int -> t -> echelon

(** [factorize m] is the production elimination: {!echelonize_m4rm}
    with the auto-selected window width. *)
val factorize : t -> echelon

val echelon_rank : echelon -> int

(** Predicate variants on an existing factorization — callers that
    already hold an [echelon] must not pay a fresh elimination per
    predicate (as [is_surjective]/[is_injective]/[is_invertible] each
    do). *)

val is_surjective_with : echelon -> bool

val is_injective_with : echelon -> bool
val is_invertible_with : echelon -> bool

(** The pivots as [(value, combination)] pairs in increasing
    most-significant-bit order — exposed for differential tests and
    introspection. *)
val echelon_pivots : echelon -> (Bitvec.t * Bitvec.t) list

(** [prepare ech] builds (or refreshes) the factorization's M4RM
    lookup tables so subsequent solves cost one lookup per window
    instead of one XOR per pivot.  Idempotent and cheap when already
    prepared; {!solve_many}, {!right_inverse_with} and
    {!compose_many} call it for you. *)
val prepare : echelon -> unit

(** [solve_with ech b] solves against a precomputed factorization, with
    the same zero-free-variable convention as {!solve}. *)
val solve_with : echelon -> Bitvec.t -> Bitvec.t option

(** [solve_many ech bs] solves every right-hand side against one
    factorization (building its lookup tables once):
    [solve_many ech bs = Array.map (solve_with ech) bs], batched. *)
val solve_many : echelon -> Bitvec.t array -> Bitvec.t option array

(** [solve m b] finds [x] with [m x = b], setting all free variables to
    zero so the solution has minimal support among the coset of solutions
    built from pivot columns. [None] if [b] is outside the image. *)
val solve : t -> Bitvec.t -> Bitvec.t option

(** [right_inverse m] is the least-squares right inverse of Definition 4.5:
    a [cols m x rows m] matrix [x] with [m x = identity (rows m)], computed
    with zero free variables. Requires [m] surjective. *)
val right_inverse : t -> t

(** [right_inverse_with ech] as {!right_inverse}, against an existing
    factorization — one elimination serves the surjectivity check and
    every unit-vector solve. *)
val right_inverse_with : echelon -> t

(** [inverse m] for square invertible [m]. Raises [Invalid_argument]
    otherwise. *)
val inverse : t -> t

(** [inverse_with ech] as {!inverse}, against an existing factorization. *)
val inverse_with : echelon -> t

(** [solve_matrix ech b] is the matrix [x] with [a x = b] (zero free
    variables), where [a] is the factored matrix — i.e. the
    composition [a⁻¹ ∘ b] generalized to non-square [a]. [None] when
    some column of [b] is outside the image. *)
val solve_matrix : echelon -> t -> t option

(** [compose_many ech bs] left-divides every matrix in [bs] by the
    factored matrix against one factorization:
    [compose_many ech bs = Array.map (solve_matrix ech) bs], batched. *)
val compose_many : echelon -> t array -> t option array

(** Basis of the kernel (null space) of the map. *)
val kernel : t -> Bitvec.t list

(** [kernel_with ech] as {!kernel}, against an existing factorization. *)
val kernel_with : echelon -> Bitvec.t list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
