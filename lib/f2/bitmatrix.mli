(** Matrices over [F2], stored column-major.

    A matrix with [rows] rows and [n] columns represents a linear map
    [F2^n -> F2^rows]; column [j] is the image of the basis vector [e_j],
    stored as a {!Bitvec.t}. *)

type t

(** [make ~rows cols] builds a matrix from its columns. Raises
    [Invalid_argument] if a column has a set bit at or above [rows]. *)
val make : rows:int -> Bitvec.t array -> t

val rows : t -> int
val cols : t -> int

(** [column m j] is the [j]-th column as a bit-vector. *)
val column : t -> int -> Bitvec.t

val columns : t -> Bitvec.t array

(** [get m i j] is entry (row [i], column [j]). *)
val get : t -> int -> int -> bool

val identity : int -> t
val zero : rows:int -> cols:int -> t

(** [apply m v] is the matrix-vector product [m v] over [F2]. *)
val apply : t -> Bitvec.t -> Bitvec.t

(** [mul a b] is the matrix product [a b]; requires [cols a = rows b]. *)
val mul : t -> t -> t

val transpose : t -> t

(** [hconcat a b] places the columns of [b] after those of [a];
    requires equal row counts. *)
val hconcat : t -> t -> t

(** [block_diag a b] is [[a 0; 0 b]], the matrix of the product layout
    (Definition 4.3 of the paper). *)
val block_diag : t -> t -> t

(** [divide_left m a] is the unique [b] with [m = block_diag a b] if [m]
    has that block structure (Definition 4.4), and [None] otherwise. *)
val divide_left : t -> t -> t option

val rank : t -> int
val is_surjective : t -> bool
val is_injective : t -> bool
val is_invertible : t -> bool
val is_identity : t -> bool
val is_zero : t -> bool

(** [is_permutation m] holds when every column has at most one set bit and
    no two non-zero columns coincide — the shape of a distributed layout
    matrix (Definition 4.10). *)
val is_permutation : t -> bool

(** The result of one Gaussian elimination: an MSB-indexed pivot table
    with combination tracking.  Computing it once and solving many
    right-hand sides against it (with {!solve_with}) costs one
    elimination total instead of one per side — the pattern
    {!right_inverse} uses internally and callers with batches of RHS
    should use too. *)
type echelon

(** [echelonize m] runs Gaussian elimination once, producing a reusable
    factorization. *)
val echelonize : t -> echelon

val echelon_rank : echelon -> int

(** [solve_with ech b] solves against a precomputed factorization, with
    the same zero-free-variable convention as {!solve}. *)
val solve_with : echelon -> Bitvec.t -> Bitvec.t option

(** [solve m b] finds [x] with [m x = b], setting all free variables to
    zero so the solution has minimal support among the coset of solutions
    built from pivot columns. [None] if [b] is outside the image. *)
val solve : t -> Bitvec.t -> Bitvec.t option

(** [right_inverse m] is the least-squares right inverse of Definition 4.5:
    a [cols m x rows m] matrix [x] with [m x = identity (rows m)], computed
    with zero free variables. Requires [m] surjective. *)
val right_inverse : t -> t

(** [inverse m] for square invertible [m]. Raises [Invalid_argument]
    otherwise. *)
val inverse : t -> t

(** Basis of the kernel (null space) of the map. *)
val kernel : t -> Bitvec.t list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
