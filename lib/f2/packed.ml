(* A packed bit-matrix over [Bytes]: the growth path past the 62-bit
   single-word limit of {!Bitvec}/{!Bitmatrix}.  Rows are stored
   contiguously as little-endian 64-bit words, so row combination — the
   inner loop of elimination — is a straight word-XOR sweep with no
   boxing and no per-element bounds checks: the checks happen once per
   row operation, then the word loop runs on the unsafe primitives. *)

type t = { rows : int; cols : int; words_per_row : int; data : Bytes.t }

(* Unaligned 64-bit access primitives.  These skip the bounds check, so
   they are only ever reached through wrappers that have validated the
   row index; the word offsets they derive are in range by
   construction ([words_per_row * 8] bytes per row). *)
external unsafe_get_64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set_64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let make ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Packed.make: negative dimension";
  let words_per_row = (cols + 63) / 64 in
  { rows; cols; words_per_row; data = Bytes.make (max 8 (rows * words_per_row * 8)) '\000' }

let rows m = m.rows
let cols m = m.cols

let check_row m name i =
  if i < 0 || i >= m.rows then
    invalid_arg (Printf.sprintf "Packed.%s: row %d out of range [0, %d)" name i m.rows)

let check_col m name j =
  if j < 0 || j >= m.cols then
    invalid_arg (Printf.sprintf "Packed.%s: column %d out of range [0, %d)" name j m.cols)

let get m i j =
  check_row m "get" i;
  check_col m "get" j;
  let byte = (i * m.words_per_row * 8) + (j lsr 3) in
  Char.code (Bytes.get m.data byte) land (1 lsl (j land 7)) <> 0

let set m i j b =
  check_row m "set" i;
  check_col m "set" j;
  let byte = (i * m.words_per_row * 8) + (j lsr 3) in
  let cur = Char.code (Bytes.get m.data byte) in
  let mask = 1 lsl (j land 7) in
  Bytes.set m.data byte (Char.chr (if b then cur lor mask else cur land lnot mask))

let copy m = { m with data = Bytes.copy m.data }

(* [xor_rows m ~src ~dst] adds row [src] into row [dst] (over F2).  The
   bounds are validated once, then the word sweep is unchecked. *)
let xor_rows m ~src ~dst =
  check_row m "xor_rows" src;
  check_row m "xor_rows" dst;
  let s = src * m.words_per_row * 8 and d = dst * m.words_per_row * 8 in
  for w = 0 to m.words_per_row - 1 do
    let off = w * 8 in
    unsafe_set_64 m.data (d + off)
      (Int64.logxor (unsafe_get_64 m.data (d + off)) (unsafe_get_64 m.data (s + off)))
  done

let swap_rows m i j =
  check_row m "swap_rows" i;
  check_row m "swap_rows" j;
  if i <> j then begin
    let a = i * m.words_per_row * 8 and b = j * m.words_per_row * 8 in
    for w = 0 to m.words_per_row - 1 do
      let off = w * 8 in
      let x = unsafe_get_64 m.data (a + off) in
      unsafe_set_64 m.data (a + off) (unsafe_get_64 m.data (b + off));
      unsafe_set_64 m.data (b + off) x
    done
  end

let row_is_zero m i =
  check_row m "row_is_zero" i;
  let base = i * m.words_per_row * 8 in
  let zero = ref true in
  for w = 0 to m.words_per_row - 1 do
    if unsafe_get_64 m.data (base + (w * 8)) <> 0L then zero := false
  done;
  !zero

let is_zero m =
  let zero = ref true in
  for i = 0 to m.rows - 1 do
    if not (row_is_zero m i) then zero := false
  done;
  !zero

(* Row-echelon rank on a scratch copy: for each column find a pivot row
   at or below the frontier, swap it up, clear the column below with
   word-parallel row XORs. *)
let rank m =
  let m = copy m in
  let r = ref 0 in
  let j = ref 0 in
  while !r < m.rows && !j < m.cols do
    let pivot = ref (-1) in
    let i = ref !r in
    while !pivot < 0 && !i < m.rows do
      if get m !i !j then pivot := !i;
      incr i
    done;
    (match !pivot with
    | -1 -> ()
    | p ->
        swap_rows m p !r;
        for i = !r + 1 to m.rows - 1 do
          if get m i !j then xor_rows m ~src:!r ~dst:i
        done;
        incr r);
    incr j
  done;
  !r

let of_bitmatrix b =
  let m = make ~rows:(Bitmatrix.rows b) ~cols:(Bitmatrix.cols b) in
  for j = 0 to Bitmatrix.cols b - 1 do
    let c = ref (Bitmatrix.column b j) in
    while !c <> 0 do
      let i = Bitvec.ntz !c in
      set m i j true;
      c := !c land (!c - 1)
    done
  done;
  m

let to_bitmatrix m =
  if m.rows > Bitvec.max_bits || m.cols > Bitvec.max_bits then
    invalid_arg
      (Printf.sprintf "Packed.to_bitmatrix: %dx%d exceeds the %d-bit single-word limit"
         m.rows m.cols Bitvec.max_bits);
  let cols =
    Array.init m.cols (fun j ->
        let c = ref 0 in
        for i = 0 to m.rows - 1 do
          if get m i j then c := !c lor (1 lsl i)
        done;
        !c)
  in
  Bitmatrix.make ~rows:m.rows cols

let equal a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let same = ref true in
  for i = 0 to a.rows - 1 do
    for j = 0 to a.cols - 1 do
      if get a i j <> get b i j then same := false
    done
  done;
  !same

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = m.rows - 1 downto 0 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      Format.fprintf ppf "%d%s" (if get m i j then 1 else 0)
        (if j = m.cols - 1 then "" else " ")
    done;
    Format.fprintf ppf "]";
    if i > 0 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
