type t = { rows : int; cols : Bitvec.t array }

let make ~rows cols =
  if rows < 0 || rows > Bitvec.max_bits then
    invalid_arg
      (Printf.sprintf
         "Bitmatrix.make: %d rows exceed the %d-bit single-word limit (Sys.int_size = %d); \
          use F2.Packed for wider matrices"
         rows Bitvec.max_bits Sys.int_size);
  Array.iter
    (fun c ->
      if c lsr rows <> 0 then invalid_arg "Bitmatrix.make: column exceeds row count")
    cols;
  { rows; cols }

let rows m = m.rows
let cols m = Array.length m.cols
let column m j = m.cols.(j)
let columns m = Array.copy m.cols
let get m i j = Bitvec.bit m.cols.(j) i
let identity n = { rows = n; cols = Array.init n Bitvec.unit }
let zero ~rows ~cols = make ~rows (Array.make cols 0)

let apply m v =
  let acc = ref 0 in
  Array.iteri (fun j c -> if Bitvec.bit v j then acc := !acc lxor c) m.cols;
  !acc

let mul a b =
  if cols a <> rows b then invalid_arg "Bitmatrix.mul: dimension mismatch";
  { rows = a.rows; cols = Array.map (apply a) b.cols }

let transpose m =
  (* Word-parallel: instead of probing every (i, j) entry, scan each
     column's set bits with [v land -v], touching only the non-zero
     entries — O(cols + popcount) rather than O(rows * cols). *)
  let n = cols m in
  if n > Bitvec.max_bits then
    invalid_arg
      (Printf.sprintf
         "Bitmatrix.transpose: %d columns exceed the %d-bit single-word limit; use F2.Packed"
         n Bitvec.max_bits);
  let out = Array.make (max 1 m.rows) 0 in
  Array.iteri
    (fun j c ->
      let bit = 1 lsl j in
      let c = ref c in
      while !c <> 0 do
        let i = Bitvec.ntz !c in
        out.(i) <- out.(i) lor bit;
        c := !c land (!c - 1)
      done)
    m.cols;
  { rows = n; cols = (if m.rows = 0 then [||] else Array.sub out 0 m.rows) }

let hconcat a b =
  if a.rows <> b.rows then invalid_arg "Bitmatrix.hconcat: row mismatch";
  { rows = a.rows; cols = Array.append a.cols b.cols }

let block_diag a b =
  let shifted = Array.map (fun c -> c lsl a.rows) b.cols in
  { rows = a.rows + b.rows; cols = Array.append a.cols shifted }

let divide_left m a =
  let na = cols a and ra = rows a in
  if cols m < na || m.rows < ra then None
  else
    let top_left_ok = ref true in
    for j = 0 to na - 1 do
      if m.cols.(j) <> a.cols.(j) then top_left_ok := false
    done;
    if not !top_left_ok then None
    else
      let nb = cols m - na in
      let b = Array.make nb 0 in
      let ok = ref true in
      for j = 0 to nb - 1 do
        let c = m.cols.(na + j) in
        (* The remaining columns must live entirely in the high rows. *)
        if c land ((1 lsl ra) - 1) <> 0 then ok := false else b.(j) <- c lsr ra
      done;
      if !ok then Some { rows = m.rows - ra; cols = b } else None

(* {1 Echelon factorizations}

   Column echelon form with combination tracking.  The pivot with most
   significant bit [k] lives in slot [k] of two flat [int] arrays
   ([pivot_val]/[pivot_comb]; 0 in [pivot_val] marks an empty slot — a
   pivot value always has its slot bit set, so 0 is never a pivot), so
   reducing a vector is a single downward scan.  [comb] records which
   original columns were XOR-ed to obtain each value.

   The same factorization can carry Method-of-Four-Russians lookup
   tables: pivot slots are grouped into windows of [t_k] consecutive
   bits, and for each window every 2^t_k pattern of those bits maps to
   the accumulated (value, comb) XOR that the one-pivot-at-a-time
   reduction would apply across the whole window — one table lookup
   instead of up to [t_k] pivot steps.  Tables are an acceleration
   only: they replay the naive reduction exactly (including its
   stop-at-first-uncovered-bit rule), so every result — pivot values,
   combinations, solutions, kernels — is bit-identical with and
   without them.  The qcheck differential suite in [test_f2.ml] pins
   this equivalence. *)

type tables = {
  t_k : int;  (** window width in bits, 1..8 *)
  t_built : int array;
      (** per-window pivot count at table-build time, or -1 for "no
          table yet".  A window whose live pivot count moved past this
          is stale: lookups then fall back to single pivot steps for
          the missing pivots, which keeps stale tables exact. *)
  t_debt : int array;
      (** naive pivot steps spent crossing each window since its last
          build — the amortization counter that triggers (re)builds
          during elimination (see {!echelonize_m4rm}) *)
  t_val : int array;  (** [(w lsl t_k) lor pattern] -> value XOR *)
  t_comb : int array;
  t_stop : int array;
      (** bit position where the naive reduction halts inside the
          window (its table knew no pivot there), or -1 when the whole
          window pattern reduces away.  Kept as three flat arrays: an
          interleaved stride-4 store was measured slower here — the
          extra index shift costs more than locality buys while the
          whole table set fits in L1. *)
}

type echelon = {
  e_rank : int;
  e_rows : int;
  e_cols : int;
  e_pivot_cols : int;  (** bitmask of the column indices that became pivots *)
  e_src : int array;  (** the factored matrix's columns (defensive copy) *)
  pivot_val : int array;
  pivot_comb : int array;
  mutable tables : tables option;
      (** lazily built / refreshed M4RM tables; see {!prepare} *)
}

let echelon_rank e = e.e_rank
let is_surjective_with e = e.e_rank = e.e_rows
let is_injective_with e = e.e_rank = e.e_cols
let is_invertible_with e = e.e_rows = e.e_cols && e.e_rank = e.e_rows

let echelon_pivots e =
  let out = ref [] in
  for k = Array.length e.pivot_val - 1 downto 0 do
    if e.pivot_val.(k) <> 0 then out := (e.pivot_val.(k), e.pivot_comb.(k)) :: !out
  done;
  !out

(* Reduce [v] (tracking [comb]) against unboxed pivot arrays: XOR away
   the pivot stored at slot [msb v] until a set bit has no pivot (the
   stopping rule shared by every reduction in this module).  The slot
   index is always [< Array.length pval] because pivot values and the
   vectors reduced against them carry bits below [e_rows] only, so the
   unchecked accesses cannot go out of bounds. *)
let reduce_flat pval pcomb v comb =
  let v = ref v and comb = ref comb in
  let stop = ref false in
  while (not !stop) && !v <> 0 do
    let m = Bitvec.msb !v in
    let pv = Array.unsafe_get pval m in
    if pv = 0 then stop := true
    else begin
      v := !v lxor pv;
      comb := !comb lxor Array.unsafe_get pcomb m
    end
  done;
  (!v, !comb)

(* Tabled reduction: walk the windows from the top one down.  A pivot's
   most significant bit is its slot, so applying pivots from window [w]
   never sets bits above [w] — once the windows above are clear they
   stay clear, and each occupied window costs one table lookup (plus
   exact fallbacks: a window without a table does single pivot steps,
   and a stale entry that halts on a slot which has since gained a live
   pivot applies that pivot from the live arrays and re-enters the
   window).  Every branch replays the naive step sequence verbatim, so
   the fixed point is bit-identical to {!reduce_flat}'s. *)
let reduce_tabled t pval pcomb v comb =
  if v = 0 then (v, comb)
  else begin
    let kk = t.t_k in
    let mask = (1 lsl kk) - 1 in
    let tv = t.t_val and tc = t.t_comb and ts = t.t_stop in
    let w = ref (Bitvec.msb v / kk) in
    let v = ref v and comb = ref comb in
    let stop = ref false in
    while (not !stop) && !w >= 0 do
      let base = !w * kk in
      let p = (!v lsr base) land mask in
      if p = 0 then decr w
      else if Array.unsafe_get t.t_built !w < 0 then begin
        (* No table for this window yet: single naive step at the
           window's top set bit (= [msb v], since higher windows are
           clear). *)
        let m = base + Bitvec.msb p in
        let pv = Array.unsafe_get pval m in
        if pv = 0 then stop := true
        else begin
          Array.unsafe_set t.t_debt !w (Array.unsafe_get t.t_debt !w + 1);
          v := !v lxor pv;
          comb := !comb lxor Array.unsafe_get pcomb m
        end
      end
      else begin
        let idx = (!w lsl kk) lor p in
        v := !v lxor Array.unsafe_get tv idx;
        comb := !comb lxor Array.unsafe_get tc idx;
        let halt = Array.unsafe_get ts idx in
        if halt < 0 then decr w (* the whole window pattern reduced away *)
        else begin
          (* The table believed slot [halt] uncovered; a pivot inserted
             after the build covers the staleness exactly. *)
          let pv = Array.unsafe_get pval halt in
          if pv = 0 then stop := true
          else begin
            Array.unsafe_set t.t_debt !w (Array.unsafe_get t.t_debt !w + 1);
            v := !v lxor pv;
            comb := !comb lxor Array.unsafe_get pcomb halt
          end
        end
      end
    done;
    (!v, !comb)
  end

let reduce_best tables pval pcomb v comb =
  match tables with
  | None -> reduce_flat pval pcomb v comb
  | Some t -> reduce_tabled t pval pcomb v comb

(* (Re)build window [w]'s lookup table from the current pivots.  Entry
   [p] is defined by recursion on the naive reduction: clear the top
   set bit of [p] with its pivot (whose in-window bits are all at or
   below that bit, so the reduced pattern is strictly smaller and
   already tabled), or record the halt position.  Iterating slots
   bottom-up and, per slot [b], the patterns whose top bit is [b]
   visits patterns in increasing order with no per-entry bit search;
   the unchecked accesses stay in bounds because every index is
   [off + p] with [p <= mask].  Patterns with bits at or above the row
   count are unreachable (reduced vectors carry bits below [e_rows])
   and keep their zero initialization. *)
let build_window t pval pcomb ~w =
  let kk = t.t_k in
  let base = w * kk in
  let off = w lsl kk in
  let mask = (1 lsl kk) - 1 in
  let tv = t.t_val and tc = t.t_comb and ts = t.t_stop in
  Array.unsafe_set tv off 0;
  Array.unsafe_set tc off 0;
  Array.unsafe_set ts off (-1);
  let count = ref 0 in
  let hi = min kk (Array.length pval - base) in
  (* A full window never halts — every entry's chain ends at the empty
     pattern — so its halt column is uniformly -1: already true on a
     first build (-1 is the fresh-table initialization) and restorable
     with one flat fill on a rebuild over a stale partial table.
     Either way the live loops below then skip halt entries entirely,
     which makes the once-per-window fill build (the common case for
     full-rank matrices) the cheapest build form.  *)
  let virgin = Array.unsafe_get t.t_built w < 0 in
  let fullwin =
    let all = ref (hi > 0) in
    for b = 0 to hi - 1 do
      if Array.unsafe_get pval (base + b) = 0 then all := false
    done;
    !all
  in
  if fullwin && not virgin then Array.fill ts off (1 lsl kk) (-1);
  for b = 0 to hi - 1 do
    let slot = base + b in
    let pv = Array.unsafe_get pval slot in
    if pv = 0 then begin
      (* Value and combination entries under an empty top slot are
         invariantly zero: they start zero and, pivot slots being
         write-once, every earlier build of this window saw the slot
         empty too and wrote zero.  Only the halt position needs
         setting, and only on the first build (later builds see the
         slot still empty, so the halt entry is already in place). *)
      if virgin then
        for p = 1 lsl b to (1 lsl (b + 1)) - 1 do
          Array.unsafe_set ts (off + p) slot
        done
    end
    else begin
      incr count;
      let pc = Array.unsafe_get pcomb slot in
      let pw = (pv lsr base) land mask in
      if fullwin then
        for p = 1 lsl b to (1 lsl (b + 1)) - 1 do
          let idx = off + p in
          let p' = p lxor pw in
          Array.unsafe_set tv idx (pv lxor Array.unsafe_get tv (off + p'));
          Array.unsafe_set tc idx (pc lxor Array.unsafe_get tc (off + p'))
        done
      else
        for p = 1 lsl b to (1 lsl (b + 1)) - 1 do
          let idx = off + p in
          let p' = p lxor pw in
          Array.unsafe_set tv idx (pv lxor Array.unsafe_get tv (off + p'));
          Array.unsafe_set tc idx (pc lxor Array.unsafe_get tc (off + p'));
          Array.unsafe_set ts idx (Array.unsafe_get ts (off + p'))
        done
    end
  done;
  t.t_debt.(w) <- 0;
  t.t_built.(w) <- !count

(* Auto-selected window width: M4RI's ~0.75 log2 heuristic clamped to
   the 62-bit single-word regime.  Small matrices keep narrow windows
   so table construction never dominates. *)
let auto_k rows = if rows <= 20 then 3 else 4

let fresh_tables ~rows ~k =
  let kk = max 1 (min 8 k) in
  let wins = max 1 ((max 1 rows + kk - 1) / kk) in
  {
    t_k = kk;
    t_built = Array.make wins (-1);
    t_debt = Array.make wins 0;
    t_val = Array.make (wins lsl kk) 0;
    t_comb = Array.make (wins lsl kk) 0;
    t_stop = Array.make (wins lsl kk) (-1);
  }

let live_window_count pval ~kk ~w =
  let base = w * kk in
  let count = ref 0 in
  for b = base to min (base + kk) (Array.length pval) - 1 do
    if pval.(b) <> 0 then incr count
  done;
  !count

(* Build (or refresh) every window table from the final pivot set.
   Idempotent and cheap when nothing changed: a window is rebuilt only
   when its live pivot count differs from the count at build time
   (pivots are only ever added, never removed or replaced). *)
let prepare e =
  let t =
    match e.tables with
    | Some t -> t
    | None ->
        let t = fresh_tables ~rows:e.e_rows ~k:(auto_k e.e_rows) in
        e.tables <- Some t;
        t
  in
  for w = 0 to Array.length t.t_built - 1 do
    if t.t_built.(w) <> live_window_count e.pivot_val ~kk:t.t_k ~w then
      build_window t e.pivot_val e.pivot_comb ~w
  done

(* {2 The two elimination algorithms} *)

(* Reference pivot-at-a-time elimination: the historical algorithm,
   kept verbatim as the baseline half of the m4rm-vs-pivot benchmark
   pair and as the semantic reference the differential suite compares
   against.  Pivots live in a boxed option array exactly as before. *)
let reduce_pivots pivots v comb =
  let v = ref v and comb = ref comb in
  let k = ref (Bitvec.msb !v) in
  let reduced = ref false in
  while !k >= 0 && not !reduced do
    match pivots.(!k) with
    | Some (pv, pc) ->
        v := !v lxor pv;
        comb := !comb lxor pc;
        while !k >= 0 && not (Bitvec.bit !v !k) do
          decr k
        done
    | None -> reduced := true
  done;
  (!v, !comb)

let guard_comb_width name m =
  if cols m > Bitvec.max_bits then
    invalid_arg
      (Printf.sprintf
         "Bitmatrix.%s: %d columns exceed the %d-bit combination-tracking limit; use \
          F2.Packed for wider matrices"
         name (cols m) Bitvec.max_bits)

let echelonize m =
  guard_comb_width "echelonize" m;
  let pivots = Array.make (max 1 m.rows) None in
  let rank = ref 0 in
  let pivot_cols = ref 0 in
  Array.iteri
    (fun j c ->
      let v, comb = reduce_pivots pivots c (Bitvec.unit j) in
      if v <> 0 then begin
        pivots.(Bitvec.msb v) <- Some (v, comb);
        pivot_cols := !pivot_cols lor (1 lsl j);
        incr rank
      end)
    m.cols;
  let n = Array.length pivots in
  let pivot_val = Array.make n 0 and pivot_comb = Array.make n 0 in
  Array.iteri
    (fun k p ->
      match p with
      | Some (pv, pc) ->
          pivot_val.(k) <- pv;
          pivot_comb.(k) <- pc
      | None -> ())
    pivots;
  {
    e_rank = !rank;
    e_rows = m.rows;
    e_cols = cols m;
    e_pivot_cols = !pivot_cols;
    e_src = Array.copy m.cols;
    pivot_val;
    pivot_comb;
    tables = None;
  }

(* Table-driven (Method of Four Russians) elimination.  Columns are
   processed in the same left-to-right order as {!echelonize} and every
   reduction replays the naive step sequence (via the exact table
   fallbacks above), so the resulting factorization — pivot values,
   combinations, rank, pivot columns — is identical; only the cost per
   reduced column drops from one XOR per pivot to one lookup per
   window.  Two triggers pay for a window's 2^k-entry build: the window
   filling (every slot holds a pivot — the table then never goes stale,
   pivot slots being write-once), or the window's accumulated naive
   steps exceeding the build cost (the [t_debt] counter).  The second
   trigger is the amortization guarantee: table construction never
   costs more than the naive work it replaces, so rank-deficient
   matrices — whose windows may never fill — still table their busy
   windows and degrade gracefully elsewhere. *)
let echelonize_m4rm ?k m =
  guard_comb_width "echelonize_m4rm" m;
  let rows = m.rows in
  let kk = max 1 (min 8 (match k with Some k -> k | None -> auto_k rows)) in
  let n = max 1 rows in
  let pivot_val = Array.make n 0 and pivot_comb = Array.make n 0 in
  let t = fresh_tables ~rows ~k:kk in
  (* Live pivots per window, against each window's slot capacity. *)
  let wins = Array.length t.t_built in
  let pivn = Array.make wins 0 in
  let capacity w = min kk (n - (w * kk)) in
  let tv = t.t_val and tc = t.t_comb and ts = t.t_stop in
  let tb = t.t_built and td = t.t_debt in
  let mask = (1 lsl kk) - 1 in
  (* Count of windows holding a table; once every window has one the
     per-column walk drops its table-presence test entirely. *)
  let nbuilt = ref 0 in
  (* Set whenever a naive step charged debt somewhere — the amortized
     rebuild scan below only runs then, so debt-free factorizations
     (every steady-state column) never pay for it. *)
  let debt_dirty = ref false in
  let rank = ref 0 in
  let pivot_cols = ref 0 in
  let ncols = Array.length m.cols in
  for j = 0 to ncols - 1 do
    (* The window-walking reduction of {!reduce_tabled}, inlined with
       the table arrays hoisted and the window base kept as a running
       counter — this loop is the whole cost of the factorization, and
       the differential suite pins it against the boxed reference. *)
    let v = ref (Array.unsafe_get m.cols j) and comb = ref (1 lsl j) in
    if !v <> 0 && !nbuilt = wins then begin
      (* Steady state: every window is tabled, so the walk is pure
         lookups (plus the exact stale-halt fallback).  For a full-rank
         62x62 matrix this loop carries most columns. *)
      let w = ref (Bitvec.msb !v / kk) in
      let base = ref (!w * kk) in
      let stop = ref false in
      while (not !stop) && !w >= 0 do
        let p = (!v lsr !base) land mask in
        if p = 0 then begin
          decr w;
          base := !base - kk
        end
        else begin
          let idx = (!w lsl kk) lor p in
          v := !v lxor Array.unsafe_get tv idx;
          comb := !comb lxor Array.unsafe_get tc idx;
          let halt = Array.unsafe_get ts idx in
          if halt < 0 then begin
            decr w;
            base := !base - kk
          end
          else begin
            let pv = Array.unsafe_get pivot_val halt in
            if pv = 0 then stop := true
            else begin
              Array.unsafe_set td !w (Array.unsafe_get td !w + 1);
              debt_dirty := true;
              v := !v lxor pv;
              comb := !comb lxor Array.unsafe_get pivot_comb halt
            end
          end
        end
      done
    end
    else if !v <> 0 then begin
      let w = ref (Bitvec.msb !v / kk) in
      let base = ref (!w * kk) in
      let stop = ref false in
      while (not !stop) && !w >= 0 do
        let p = (!v lsr !base) land mask in
        if p = 0 then begin
          decr w;
          base := !base - kk
        end
        else if Array.unsafe_get tb !w < 0 then begin
          let slot = !base + Bitvec.msb p in
          let pv = Array.unsafe_get pivot_val slot in
          if pv = 0 then stop := true
          else begin
            Array.unsafe_set td !w (Array.unsafe_get td !w + 1);
            debt_dirty := true;
            v := !v lxor pv;
            comb := !comb lxor Array.unsafe_get pivot_comb slot
          end
        end
        else begin
          let idx = (!w lsl kk) lor p in
          v := !v lxor Array.unsafe_get tv idx;
          comb := !comb lxor Array.unsafe_get tc idx;
          let halt = Array.unsafe_get ts idx in
          if halt < 0 then begin
            decr w;
            base := !base - kk
          end
          else begin
            let pv = Array.unsafe_get pivot_val halt in
            if pv = 0 then stop := true
            else begin
              Array.unsafe_set td !w (Array.unsafe_get td !w + 1);
              debt_dirty := true;
              v := !v lxor pv;
              comb := !comb lxor Array.unsafe_get pivot_comb halt
            end
          end
        end
      done
    end;
    if !v <> 0 then begin
      let slot = Bitvec.msb !v in
      pivot_val.(slot) <- !v;
      pivot_comb.(slot) <- !comb;
      pivot_cols := !pivot_cols lor (1 lsl j);
      incr rank;
      let w = slot / kk in
      pivn.(w) <- pivn.(w) + 1;
      (* Build early (2 pivots already amortize a 2^k build at these
         window widths) and again when the window fills — the filled
         table is final, pivot slots being write-once.  (Building only
         at fill was measured slower: the naive steps every column
         spends crossing not-yet-tabled windows outweigh the saved
         builds.) *)
      if pivn.(w) = 2 || pivn.(w) = capacity w then begin
        if Array.unsafe_get tb w < 0 then incr nbuilt;
        build_window t pivot_val pivot_comb ~w
      end
    end;
    (* Amortized (re)builds: a window that cost more naive steps than a
       table build since its last build gets (re)tabled.  Checked every
       few columns — deferral only delays the build by a bounded number
       of extra naive steps. *)
    if !debt_dirty && j land 3 = 3 then begin
      debt_dirty := false;
      for w = 0 to wins - 1 do
        if Array.unsafe_get td w >= 1 lsl (kk - 1)
           && Array.unsafe_get tb w < Array.unsafe_get pivn w
        then begin
          if Array.unsafe_get tb w < 0 then incr nbuilt;
          build_window t pivot_val pivot_comb ~w
        end
      done
    end
  done;
  {
    e_rank = !rank;
    e_rows = rows;
    e_cols = cols m;
    e_pivot_cols = !pivot_cols;
    e_src = Array.copy m.cols;
    pivot_val;
    pivot_comb;
    tables = Some t;
  }

(* The production entry point: table-driven elimination with the
   auto-selected window width.  [echelonize] remains the reference. *)
let factorize m = echelonize_m4rm m

(* {2 Solving against a factorization} *)

let solve_with e b =
  let v, comb = reduce_best e.tables e.pivot_val e.pivot_comb b 0 in
  if v = 0 then Some comb else None

let solve_many e bs =
  prepare e;
  Array.map (fun b -> solve_with e b) bs

let solve m b = solve_with (factorize m) b

let kernel_with e =
  (* A non-pivot column lies in the span of the pivots built from
     earlier columns, so reducing it (tracking its own unit
     combination) reaches zero and yields the unique kernel vector
     supported on the pivot columns plus itself — exactly what the
     incremental replay used to produce, one elimination cheaper. *)
  prepare e;
  let ker = ref [] in
  for j = Array.length e.e_src - 1 downto 0 do
    if e.e_pivot_cols land (1 lsl j) = 0 then begin
      let v, comb =
        reduce_best e.tables e.pivot_val e.pivot_comb e.e_src.(j) (Bitvec.unit j)
      in
      assert (v = 0);
      ker := comb :: !ker
    end
  done;
  !ker

let kernel m = kernel_with (factorize m)

let rank m = (factorize m).e_rank
let is_surjective m = is_surjective_with (factorize m)
let is_injective m = is_injective_with (factorize m)
let is_invertible m = is_invertible_with (factorize m)

let is_identity m =
  m.rows = cols m && Array.for_all Fun.id (Array.mapi (fun j c -> c = Bitvec.unit j) m.cols)

let is_zero m = Array.for_all (fun c -> c = 0) m.cols

let is_permutation m =
  (* Zero columns are allowed by design: they are the broadcasting
     inputs of a distributed layout (Definition 4.10) — a lane or warp
     bit that owns no element maps to 0.  Only the non-zero columns
     must be distinct one-hot vectors. *)
  let seen = Hashtbl.create 16 in
  Array.for_all
    (fun c ->
      if c = 0 then true
      else if Bitvec.popcount c <> 1 then false
      else if Hashtbl.mem seen c then false
      else (
        Hashtbl.add seen c ();
        true))
    m.cols

let right_inverse_with e =
  if not (is_surjective_with e) then
    invalid_arg "Bitmatrix.right_inverse: matrix is not surjective";
  prepare e;
  let cols_out =
    Array.init e.e_rows (fun i ->
        match solve_with e (Bitvec.unit i) with
        | Some x -> x
        | None -> assert false)
  in
  { rows = e.e_cols; cols = cols_out }

let right_inverse m = right_inverse_with (factorize m)

let inverse_with e =
  if e.e_rows <> e.e_cols then invalid_arg "Bitmatrix.inverse: not square";
  right_inverse_with e

let inverse m =
  if m.rows <> cols m then invalid_arg "Bitmatrix.inverse: not square";
  right_inverse m

let solve_matrix e b =
  if b.rows <> e.e_rows then invalid_arg "Bitmatrix.solve_matrix: dimension mismatch";
  prepare e;
  let n = cols b in
  let out = Array.make n 0 in
  let ok = ref true in
  for j = 0 to n - 1 do
    match solve_with e b.cols.(j) with
    | Some x -> out.(j) <- x
    | None -> ok := false
  done;
  if !ok then Some { rows = e.e_cols; cols = out } else None

let compose_many e bs = Array.map (fun b -> solve_matrix e b) bs

let equal a b = a.rows = b.rows && a.cols = b.cols

let pp ppf m =
  let n = cols m in
  Format.fprintf ppf "@[<v>";
  for i = m.rows - 1 downto 0 do
    Format.fprintf ppf "[";
    for j = 0 to n - 1 do
      Format.fprintf ppf "%d%s" (if get m i j then 1 else 0) (if j = n - 1 then "" else " ")
    done;
    Format.fprintf ppf "]";
    if i > 0 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
