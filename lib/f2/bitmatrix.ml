type t = { rows : int; cols : Bitvec.t array }

let make ~rows cols =
  Array.iter
    (fun c ->
      if c lsr rows <> 0 then invalid_arg "Bitmatrix.make: column exceeds row count")
    cols;
  { rows; cols }

let rows m = m.rows
let cols m = Array.length m.cols
let column m j = m.cols.(j)
let columns m = Array.copy m.cols
let get m i j = Bitvec.bit m.cols.(j) i
let identity n = { rows = n; cols = Array.init n Bitvec.unit }
let zero ~rows ~cols = { rows; cols = Array.make cols 0 }

let apply m v =
  let acc = ref 0 in
  Array.iteri (fun j c -> if Bitvec.bit v j then acc := !acc lxor c) m.cols;
  !acc

let mul a b =
  if cols a <> rows b then invalid_arg "Bitmatrix.mul: dimension mismatch";
  { rows = a.rows; cols = Array.map (apply a) b.cols }

let transpose m =
  (* Word-parallel: instead of probing every (i, j) entry, scan each
     column's set bits with [v land -v], touching only the non-zero
     entries — O(cols + popcount) rather than O(rows * cols). *)
  let n = cols m in
  let out = Array.make (max 1 m.rows) 0 in
  Array.iteri
    (fun j c ->
      let bit = 1 lsl j in
      let c = ref c in
      while !c <> 0 do
        let i = Bitvec.ntz !c in
        out.(i) <- out.(i) lor bit;
        c := !c land (!c - 1)
      done)
    m.cols;
  { rows = n; cols = (if m.rows = 0 then [||] else Array.sub out 0 m.rows) }

let hconcat a b =
  if a.rows <> b.rows then invalid_arg "Bitmatrix.hconcat: row mismatch";
  { rows = a.rows; cols = Array.append a.cols b.cols }

let block_diag a b =
  let shifted = Array.map (fun c -> c lsl a.rows) b.cols in
  { rows = a.rows + b.rows; cols = Array.append a.cols shifted }

let divide_left m a =
  let na = cols a and ra = rows a in
  if cols m < na || m.rows < ra then None
  else
    let top_left_ok = ref true in
    for j = 0 to na - 1 do
      if m.cols.(j) <> a.cols.(j) then top_left_ok := false
    done;
    if not !top_left_ok then None
    else
      let nb = cols m - na in
      let b = Array.make nb 0 in
      let ok = ref true in
      for j = 0 to nb - 1 do
        let c = m.cols.(na + j) in
        (* The remaining columns must live entirely in the high rows. *)
        if c land ((1 lsl ra) - 1) <> 0 then ok := false else b.(j) <- c lsr ra
      done;
      if !ok then Some { rows = m.rows - ra; cols = b } else None

(* Column echelon form with combination tracking.  Each pivot is a pair
   [(value, comb)] where [value] is a reduced column and [comb] records
   which original columns were XOR-ed to obtain it.  Pivots live in an
   array indexed by the most significant set bit of [value], so reducing
   a vector is a single downward scan — O(rows) lookups — instead of the
   restart-the-pivot-list scan (quadratic in rank) this replaces. *)
type echelon = {
  e_rank : int;
  pivots : (Bitvec.t * Bitvec.t) option array;  (** slot [k] = pivot with msb [k] *)
}

(* Reduce [v] (tracking [comb]) against the pivot table.  Every XOR with
   the pivot stored at slot [msb v] clears that bit, so the cursor [k]
   only ever moves downward; the loop stops at the first set bit without
   a pivot (the same stopping rule as the list-based reduction: only
   msb-matching pivots are applied). *)
let reduce_pivots pivots v comb =
  let v = ref v and comb = ref comb in
  let k = ref (Bitvec.msb !v) in
  let reduced = ref false in
  while !k >= 0 && not !reduced do
    match pivots.(!k) with
    | Some (pv, pc) ->
        v := !v lxor pv;
        comb := !comb lxor pc;
        while !k >= 0 && not (Bitvec.bit !v !k) do
          decr k
        done
    | None -> reduced := true
  done;
  (!v, !comb)

let echelonize m =
  let pivots = Array.make (max 1 m.rows) None in
  let rank = ref 0 in
  Array.iteri
    (fun j c ->
      let v, comb = reduce_pivots pivots c (Bitvec.unit j) in
      if v <> 0 then begin
        pivots.(Bitvec.msb v) <- Some (v, comb);
        incr rank
      end)
    m.cols;
  { e_rank = !rank; pivots }

let echelon_rank ech = ech.e_rank
let rank m = (echelonize m).e_rank
let is_surjective m = rank m = m.rows
let is_injective m = rank m = cols m
let is_invertible m = m.rows = cols m && rank m = m.rows

let is_identity m =
  m.rows = cols m && Array.for_all Fun.id (Array.mapi (fun j c -> c = Bitvec.unit j) m.cols)

let is_zero m = Array.for_all (fun c -> c = 0) m.cols

let is_permutation m =
  let seen = Hashtbl.create 16 in
  Array.for_all
    (fun c ->
      if c = 0 then true
      else if Bitvec.popcount c <> 1 then false
      else if Hashtbl.mem seen c then false
      else (
        Hashtbl.add seen c ();
        true))
    m.cols

let solve_with ech b =
  let v, comb = reduce_pivots ech.pivots b 0 in
  if v = 0 then Some comb else None

let solve m b = solve_with (echelonize m) b

let right_inverse m =
  let ech = echelonize m in
  let cols_out =
    Array.init m.rows (fun i ->
        match solve_with ech (Bitvec.unit i) with
        | Some x -> x
        | None -> invalid_arg "Bitmatrix.right_inverse: matrix is not surjective")
  in
  { rows = cols m; cols = cols_out }

let inverse m =
  if m.rows <> cols m then invalid_arg "Bitmatrix.inverse: not square";
  right_inverse m

let kernel m =
  (* A column that reduces to zero yields a kernel combination; also track
     combinations: replay echelonization and collect the zero reductions. *)
  let pivots = Array.make (max 1 m.rows) None in
  let ker = ref [] in
  Array.iteri
    (fun j c ->
      let v, comb = reduce_pivots pivots c (Bitvec.unit j) in
      if v = 0 then ker := comb :: !ker else pivots.(Bitvec.msb v) <- Some (v, comb))
    m.cols;
  List.rev !ker

let equal a b = a.rows = b.rows && a.cols = b.cols

let pp ppf m =
  let n = cols m in
  Format.fprintf ppf "@[<v>";
  for i = m.rows - 1 downto 0 do
    Format.fprintf ppf "[";
    for j = 0 to n - 1 do
      Format.fprintf ppf "%d%s" (if get m i j then 1 else 0) (if j = n - 1 then "" else " ")
    done;
    Format.fprintf ppf "]";
    if i > 0 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
