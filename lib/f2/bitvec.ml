type t = int

let zero = 0

(* The payload is a non-negative OCaml [int]: [Sys.int_size - 1] usable
   bits (62 on 64-bit platforms).  Shifting at or past that width is
   unspecified in OCaml and used to wrap silently into wrong answers;
   every entry point that mints a coordinate checks it loudly instead. *)
let max_bits = Sys.int_size - 1

let unit k =
  if k < 0 || k >= max_bits then
    invalid_arg
      (Printf.sprintf
         "Bitvec.unit: coordinate %d out of range (single-word F2 vectors hold %d bits; use \
          F2.Packed for wider spaces)"
         k max_bits)
  else 1 lsl k
let bit v k = v land (1 lsl k) <> 0
let add = ( lxor )
let pointwise_mul = ( land )

(* SWAR popcount on the 63-bit payload: fold pairs, nibbles, then sum
   bytes with a multiply. *)
let popcount v =
  let v = v - ((v lsr 1) land 0x5555555555555555) in
  let v = (v land 0x3333333333333333) + ((v lsr 2) land 0x3333333333333333) in
  let v = (v + (v lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (v * 0x0101010101010101) lsr 56 land 0xFF

let parity v = popcount v land 1 = 1
let dot a b = parity (a land b)

(* Branchy binary search instead of a per-bit loop: O(log w). *)
let msb v =
  if v = 0 then -1
  else begin
    let v = ref v and k = ref 0 in
    if !v lsr 32 <> 0 then begin k := !k + 32; v := !v lsr 32 end;
    if !v lsr 16 <> 0 then begin k := !k + 16; v := !v lsr 16 end;
    if !v lsr 8 <> 0 then begin k := !k + 8; v := !v lsr 8 end;
    if !v lsr 4 <> 0 then begin k := !k + 4; v := !v lsr 4 end;
    if !v lsr 2 <> 0 then begin k := !k + 2; v := !v lsr 2 end;
    if !v lsr 1 <> 0 then incr k;
    !k
  end

(* Number of trailing zeros: position of the least significant set bit. *)
let ntz v = if v = 0 then -1 else msb (v land -v)
let lsb = ntz
let width v = msb v + 1

let support v =
  let rec go k acc = if k < 0 then acc else go (k - 1) (if bit v k then k :: acc else acc) in
  go (msb v) []

let extract v ~pos ~len = (v lsr pos) land ((1 lsl len) - 1)

let insert v ~pos ~len field =
  let mask = ((1 lsl len) - 1) lsl pos in
  v land lnot mask lor ((field lsl pos) land mask)

let all n = List.init (1 lsl n) Fun.id
let equal = Int.equal
let compare = Int.compare

let to_string ~width:w v =
  let w = max w 1 in
  String.init w (fun i -> if bit v (w - 1 - i) then '1' else '0')

let pp ~width:w ppf v = Format.fprintf ppf "0b%s" (to_string ~width:w v)
