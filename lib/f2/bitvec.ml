type t = int

let zero = 0
let unit k = 1 lsl k
let bit v k = v land (1 lsl k) <> 0
let add = ( lxor )
let pointwise_mul = ( land )

let popcount v =
  let rec go acc v = if v = 0 then acc else go (acc + (v land 1)) (v lsr 1) in
  go 0 v

let parity v = popcount v land 1 = 1
let dot a b = parity (a land b)

let msb v =
  let rec go k v = if v = 0 then k else go (k + 1) (v lsr 1) in
  go (-1) v

let lsb v = if v = 0 then -1 else msb (v land -v)
let width v = msb v + 1

let support v =
  let rec go k acc = if k < 0 then acc else go (k - 1) (if bit v k then k :: acc else acc) in
  go (msb v) []

let extract v ~pos ~len = (v lsr pos) land ((1 lsl len) - 1)

let insert v ~pos ~len field =
  let mask = ((1 lsl len) - 1) lsl pos in
  v land lnot mask lor ((field lsl pos) land mask)

let all n = List.init (1 lsl n) Fun.id
let equal = Int.equal
let compare = Int.compare

let to_string ~width:w v =
  let w = max w 1 in
  String.init w (fun i -> if bit v (w - 1 - i) then '1' else '0')

let pp ~width:w ppf v = Format.fprintf ppf "0b%s" (to_string ~width:w v)
