(** Packed bit-matrices over [Bytes]: the growth path past the
    {!Bitvec.max_bits} (62-bit) single-word limit of {!Bitmatrix}.

    Rows are stored contiguously as little-endian 64-bit words, so row
    combination — the inner loop of elimination — is a boxed-free
    word-XOR sweep.  Bounds are checked once per row operation at the
    public entry points; the word loops inside run on unchecked
    accessors. *)

type t

(** [make ~rows ~cols] is the all-zero [rows x cols] matrix.  Unlike
    {!Bitmatrix.make} there is no width ceiling. *)
val make : rows:int -> cols:int -> t

val rows : t -> int
val cols : t -> int

(** [get m i j] is entry (row [i], column [j]).  Raises
    [Invalid_argument] out of range. *)
val get : t -> int -> int -> bool

val set : t -> int -> int -> bool -> unit
val copy : t -> t

(** [xor_rows m ~src ~dst] adds row [src] into row [dst] over [F2],
    in place. *)
val xor_rows : t -> src:int -> dst:int -> unit

val swap_rows : t -> int -> int -> unit
val row_is_zero : t -> int -> bool
val is_zero : t -> bool

(** Rank over [F2], by row elimination on a scratch copy. *)
val rank : t -> int

(** Lossless embedding of a single-word matrix. *)
val of_bitmatrix : Bitmatrix.t -> t

(** Inverse of {!of_bitmatrix}; raises [Invalid_argument] when either
    dimension exceeds {!Bitvec.max_bits}. *)
val to_bitmatrix : t -> Bitmatrix.t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
