(** Subspaces of [F2^d] given by generating sets of bit-vectors.

    These are the set-level operations of Section 5.4 of the paper:
    spans, basis completion, intersections, and complements, all used by
    the warp-shuffle planner and the optimal-swizzling search. *)

(** [echelon_basis vs] is a basis of [span vs] in column-echelon form:
    independent vectors with strictly decreasing most-significant bits. *)
val echelon_basis : Bitvec.t list -> Bitvec.t list

(** Dimension of the span. *)
val dim : Bitvec.t list -> int

(** [reduce basis v] is the residual of [v] after eliminating against
    [basis] (which need not be echelonized). Zero iff [v] is in the span. *)
val reduce : Bitvec.t list -> Bitvec.t -> Bitvec.t

val mem : Bitvec.t list -> Bitvec.t -> bool

(** [independent_from basis v] holds iff adding [v] increases the span. *)
val independent_from : Bitvec.t list -> Bitvec.t -> bool

(** [complete_basis ~dim basis] returns vectors [r_1 ... r_k], drawn from
    the canonical basis, such that [basis @ [r_1; ...; r_k]] spans
    [F2^dim]. This is the extension [R] of Section 5.4. *)
val complete_basis : dim:int -> Bitvec.t list -> Bitvec.t list

(** [complement ~dim basis] is a basis of a complement of [span basis]
    inside [F2^dim]: same as {!complete_basis}. *)
val complement : dim:int -> Bitvec.t list -> Bitvec.t list

(** [intersection a b] is a basis of the intersection of the two spans
    (Zassenhaus
    algorithm). Requires the ambient dimension to satisfy [2*dim <= 62]. *)
val intersection : Bitvec.t list -> Bitvec.t list -> Bitvec.t list

(** [sum a b] is a basis of [span a + span b]. *)
val sum : Bitvec.t list -> Bitvec.t list -> Bitvec.t list

(** All [2^k] elements of the span of a [k]-element independent set,
    indexed by the characteristic vector of the chosen combination:
    element [i] XORs together the basis vectors selected by the bits
    of [i]. *)
val span_elements : Bitvec.t list -> Bitvec.t array

(** [equal_span a b] holds iff the two generating sets span the same
    subspace. *)
val equal_span : Bitvec.t list -> Bitvec.t list -> bool
