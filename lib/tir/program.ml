type id = int

type node =
  | Load of { name : string }
  | Iota of { axis : int }
  | Full of { value : float }
  | Store of { src : id }
  | Elementwise of { name : string; srcs : id list }
  | Dot of { a : id; b : id }
  | Reduce of { src : id; axis : int }
  | Expand_dims of { src : id; axis : int }
  | Broadcast of { src : id }
  | Trans of { src : id; perm : int array }
  | Reshape of { src : id }
  | Gather of { src : id; index : id; axis : int }
  | Join of { a : id; b : id }
  | Split of { src : id; half : int }
  | Scan of { src : id; axis : int; reverse : bool }
  | Convert of { src : id }

type instr = {
  node : node;
  shape : int array;
  dtype : Tensor_lib.Dtype.t;
  mutable layout : Linear_layout.Layout.t option;
  mutable kind : Legacy.Support.layout_kind;
}

type t = { mutable buf : instr option array; mutable len : int }

let create () = { buf = Array.make 8 None; len = 0 }

(* Nodes, shapes and dtypes are immutable and shared; only the mutable
   layout assignment is duplicated, so engine runs on the copy leave
   the original untouched (parallel strategy evaluation). *)
let copy t =
  {
    buf =
      Array.map
        (Option.map (fun i ->
             {
               node = i.node;
               shape = i.shape;
               dtype = i.dtype;
               layout = i.layout;
               kind = i.kind;
             }))
        t.buf;
    len = t.len;
  }
let length t = t.len
let instr t i = Option.get t.buf.(i)
let instrs t = Array.init t.len (instr t)

let add t node ~shape ~dtype =
  if t.len = Array.length t.buf then begin
    let bigger = Array.make (2 * t.len) None in
    Array.blit t.buf 0 bigger 0 t.len;
    t.buf <- bigger
  end;
  t.buf.(t.len) <- Some { node; shape; dtype; layout = None; kind = Legacy.Support.Blocked };
  t.len <- t.len + 1;
  t.len - 1

let load t ?(name = "x") ~shape ~dtype () = add t (Load { name }) ~shape ~dtype

let iota t ~shape ~axis =
  if axis < 0 || axis >= Array.length shape then invalid_arg "Program.iota: bad axis";
  add t (Iota { axis }) ~shape ~dtype:Tensor_lib.Dtype.I32

let full t ~shape ~dtype value = add t (Full { value }) ~shape ~dtype

let store t src =
  let s = instr t src in
  add t (Store { src }) ~shape:s.shape ~dtype:s.dtype

let elementwise t ?(name = "ew") srcs =
  match srcs with
  | [] -> invalid_arg "Program.elementwise: no sources"
  | first :: _ ->
      let s = instr t first in
      add t (Elementwise { name; srcs }) ~shape:s.shape ~dtype:s.dtype

let dot t ~a ~b ~acc =
  let sa = (instr t a).shape and sb = (instr t b).shape in
  (match (sa, sb) with
  | [| _; k |], [| k'; _ |] when k = k' -> ()
  | _ -> invalid_arg "Program.dot: shapes must be [m;k] x [k;n]");
  add t (Dot { a; b }) ~shape:[| sa.(0); sb.(1) |] ~dtype:acc

let reduce t src ~axis =
  let s = instr t src in
  let shape =
    Array.of_list (List.filteri (fun d _ -> d <> axis) (Array.to_list s.shape))
  in
  add t (Reduce { src; axis }) ~shape ~dtype:s.dtype

let expand_dims t src ~axis =
  let s = instr t src in
  let lst = Array.to_list s.shape in
  let rec ins i = function
    | rest when i = axis -> 1 :: rest
    | [] -> invalid_arg "Program.expand_dims: bad axis"
    | x :: rest -> x :: ins (i + 1) rest
  in
  add t (Expand_dims { src; axis }) ~shape:(Array.of_list (ins 0 lst)) ~dtype:s.dtype

let broadcast t src ~shape =
  let s = instr t src in
  if Array.length shape <> Array.length s.shape then
    invalid_arg "Program.broadcast: rank mismatch";
  Array.iteri
    (fun d sz ->
      if s.shape.(d) <> sz && s.shape.(d) <> 1 then
        invalid_arg "Program.broadcast: only size-1 dims can grow")
    shape;
  add t (Broadcast { src }) ~shape ~dtype:s.dtype

let trans t src ~perm =
  let s = instr t src in
  add t (Trans { src; perm }) ~shape:(Array.map (fun d -> s.shape.(d)) perm) ~dtype:s.dtype

let reshape t src ~shape =
  let s = instr t src in
  if Array.fold_left ( * ) 1 shape <> Array.fold_left ( * ) 1 s.shape then
    invalid_arg "Program.reshape: element count mismatch";
  add t (Reshape { src }) ~shape ~dtype:s.dtype

let gather t ~src ~index ~axis =
  let s = instr t src in
  add t (Gather { src; index; axis }) ~shape:s.shape ~dtype:s.dtype

let join t ~a ~b =
  let sa = (instr t a).shape and sb = (instr t b).shape in
  if sa <> sb then invalid_arg "Program.join: shape mismatch";
  add t (Join { a; b }) ~shape:(Array.append sa [| 2 |]) ~dtype:(instr t a).dtype

let split t src ~half =
  let s = instr t src in
  let n = Array.length s.shape in
  if n = 0 || s.shape.(n - 1) <> 2 then
    invalid_arg "Program.split: last dimension must have size 2";
  if half <> 0 && half <> 1 then invalid_arg "Program.split: half must be 0 or 1";
  add t (Split { src; half }) ~shape:(Array.sub s.shape 0 (n - 1)) ~dtype:s.dtype

let scan t src ~axis ~reverse =
  let s = instr t src in
  if axis < 0 || axis >= Array.length s.shape then invalid_arg "Program.scan: bad axis";
  add t (Scan { src; axis; reverse }) ~shape:s.shape ~dtype:s.dtype

let insert_convert t src ~dtype =
  let s = instr t src in
  add t (Convert { src }) ~shape:s.shape ~dtype

let count t pred =
  let n = ref 0 in
  Array.iter (fun i -> if pred i.node then incr n) (instrs t);
  !n

let node_name = function
  | Load { name } -> "load:" ^ name
  | Iota { axis } -> Printf.sprintf "iota[%d]" axis
  | Full { value } -> Printf.sprintf "full(%g)" value
  | Store _ -> "store"
  | Elementwise { name; _ } -> "ew:" ^ name
  | Dot _ -> "dot"
  | Reduce { axis; _ } -> Printf.sprintf "reduce[%d]" axis
  | Expand_dims { axis; _ } -> Printf.sprintf "expand_dims[%d]" axis
  | Broadcast _ -> "broadcast"
  | Trans _ -> "trans"
  | Reshape _ -> "reshape"
  | Gather { axis; _ } -> Printf.sprintf "gather[%d]" axis
  | Join _ -> "join"
  | Split { half; _ } -> Printf.sprintf "split[%d]" half
  | Scan { axis; reverse; _ } ->
      Printf.sprintf "%scumsum[%d]" (if reverse then "reverse_" else "") axis
  | Convert _ -> "convert_layout"

let pp ppf t =
  Array.iteri
    (fun i ins ->
      Format.fprintf ppf "%%%d = %s : %s<%s>@." i (node_name ins.node)
        (Tensor_lib.Dtype.name ins.dtype)
        (String.concat "x" (Array.to_list (Array.map string_of_int ins.shape))))
    (instrs t)
