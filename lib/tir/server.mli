(** Layout-compilation service: a Unix-domain-socket daemon in front of
    the shared plan cache.

    One process owns the {!Codegen.Shared_cache} and the
    {!Codegen.Plan_store} file; clients connect over a Unix socket and
    speak a length-prefixed request protocol.  Requests are served by a
    {!Par_eval.Pool} of worker domains, so concurrent clients share
    every plan through the cache's L2 while keeping their DLS L1s.

    {2 Protocol}

    Every frame — both directions — is a 4-byte big-endian payload
    length followed by that many bytes of UTF-8 text.  A request is a
    verb on the first line and [key=value] pairs on the following
    lines:

    - [PLAN] with [machine], [src], [dst] (layout literals in the
      {!Linear_layout.Parse} grammar) and optional [byte_width]
      (default 4): plans the conversion through the cache and replies
      [OK mechanism=<slug> cert=<verdict> points=<n>] — the plan is
      certified by {!Analysis.Transval} before the reply, so every
      served plan carries a verified F2 certificate.
    - [ENGINE] with [kernel], [machine], optional [mode]
      ([linear]/[legacy], default linear) and [size] (default: the
      kernel's smallest): runs the layout engine on the kernel tile and
      replies [OK time=<t> converts=<n> noops=<n> loads=<n> stores=<n>
      remats=<n> unsupported=<n>].
    - [STATS]: replies [OK served=... plan=... engine=... errors=...
      shared_hits=... shared_misses=... shared_inserts=...
      store_loaded=... store_rejected=... domains=...].
      [shared_misses] counts the process's planner invocations (see
      {!Codegen.Plan_cache}) — a warm-started server that re-plans
      nothing shows a delta of zero.
    - [SHUTDOWN]: replies [OK bye] and begins a graceful stop:
      the listener closes, in-flight requests drain, and the store (if
      configured) is saved with fresh certificates.

    Errors are single-line replies [ERR <code> <message>] with the
    LL91x codes: [LL910] malformed/empty/oversized frame, [LL911] bad
    request (unknown verb, missing or unparseable key), [LL912] unknown
    machine, [LL913] bad layout literal, [LL914] unknown kernel.  Every
    request runs under an [Obs] span and records its latency in the
    ["tir.server.latency_us"] histogram. *)

(** {2 Framing} (exposed for clients and tests) *)

(** Frames larger than this are rejected with [LL910]. *)
val max_frame : int

val send_frame : Unix.file_descr -> string -> unit

(** [None] on clean EOF; raises on a torn read. *)
val recv_frame : Unix.file_descr -> string option

(** {2 Daemon} *)

type t

(** [start ~socket ()] binds [socket] (replacing a stale file) and
    serves until {!stop}.  [domains] sizes the worker pool (default 1).
    [store] names a {!Codegen.Plan_store} file: it is loaded — with
    {!Analysis.Transval} re-verification — before serving, and saved
    back on shutdown.  [reset] (default false) clears the in-process
    shared cache and its counters first, simulating a fresh process in
    tests and benchmarks that restart the server in one binary. *)
val start : ?domains:int -> ?store:string -> ?reset:bool -> socket:string -> unit -> t

(** The load report of the warm start ({!Codegen.Plan_store.empty_report}
    when no store was configured). *)
val store_report : t -> Codegen.Plan_store.load_report

(** Block until the server has stopped (a [SHUTDOWN] request, or
    {!stop} from another thread), draining in-flight requests, joining
    the pool and saving the store.  Idempotent. *)
val wait : t -> unit

(** Request a stop and {!wait}. *)
val stop : t -> unit

(** {2 Client} *)

module Client : sig
  type conn

  val connect : string -> conn

  (** One request frame out, one reply frame back. *)
  val rpc : conn -> string -> string

  val close : conn -> unit
end
