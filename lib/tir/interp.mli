(** Functional evaluation of programs — the end-to-end correctness
    harness.

    Two evaluators share one operator semantics:

    - {!reference}: plain tensor evaluation, no layouts anywhere;
    - {!through_layouts}: the engine assigns layouts first, then every
      intermediate value is round-tripped through its layout (which
      verifies that all broadcast copies agree and the layout covers
      the tensor), matrix multiplications execute on the certified
      per-warp tensor-core path ({!Codegen.Mma_lower}) whenever the
      ownership condition holds, and gathers run through the
      layout-aware executor.

    The two must agree exactly on every program; `test_interp.ml`
    checks this for the whole kernel suite. *)

type outputs = (Program.id * Tensor_lib.Tensor.t) list
(** One entry per [Store], in program order. *)

(** [reference prog ~inputs] evaluates with plain tensor semantics;
    [inputs] maps load names to tensors (shape and dtype must match the
    load). *)
val reference : Program.t -> inputs:(string * Tensor_lib.Tensor.t) list -> outputs

(** [through_layouts machine prog ~inputs] evaluates through the
    layouts the linear engine assigns. Raises [Failure] when a layout
    is inconsistent (disagreeing broadcast copies, non-surjective
    coverage, or violated mma warp ownership). *)
val through_layouts :
  Gpusim.Machine.t ->
  ?num_warps:int ->
  Program.t ->
  inputs:(string * Tensor_lib.Tensor.t) list ->
  outputs

(** Deterministic pseudo-random inputs for a program's loads. *)
val synth_inputs : Program.t -> (string * Tensor_lib.Tensor.t) list
