open Linear_layout

let err at ~code fmt = Diagnostics.error ~code ~loc:(Diagnostics.Tir_instr at) fmt

let shape_of_layout l =
  Layout.out_dims l
  |> List.filter_map (fun (d, bits) ->
         Option.map (fun k -> (k, 1 lsl bits)) (Dims.dim_index d))
  |> List.sort compare

let covers_shape l shape =
  let dims = shape_of_layout l in
  List.length dims = Array.length shape
  && List.for_all (fun (k, size) -> k < Array.length shape && shape.(k) = size) dims

(* The layouts of [a] and [b] must agree up to the logical index map
   [f : b-coords -> a-coords]: every hardware point holds, under [b]'s
   layout, the [f]-image of some point... we check the stronger and
   simpler property used by the engine: [b = rename/reshape of a], i.e.
   the flattened matrices agree after the index transformation. *)
let same_matrix la lb = F2.Bitmatrix.equal (Layout.to_matrix la) (Layout.to_matrix lb)

let program prog =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  let layout_of i = (Program.instr prog i).Program.layout in
  Array.iteri
    (fun i (ins : Program.instr) ->
      match layout_of i with
      | None -> add (err i ~code:"LL601" "no layout assigned")
      | Some l -> (
          if not (covers_shape l ins.Program.shape) then
            add (err i ~code:"LL602" "layout does not cover the instruction's shape");
          if not (Layout.is_surjective l) then
            add (err i ~code:"LL603" "layout is not surjective");
          List.iter
            (fun iss ->
              add (Diagnostics.with_loc (Diagnostics.Tir_instr i) iss))
            (Check.errors (Check.distributed l));
          match ins.Program.node with
          | Program.Trans { src; perm } -> (
              match layout_of src with
              | Some ls ->
                  let spec =
                    Array.to_list perm
                    |> List.mapi (fun out_d in_d -> (Dims.dim in_d, Dims.dim out_d))
                    |> List.filter (fun (a, b) -> a <> b)
                  in
                  let expected = if spec = [] then ls else Layout.exchange_out_names ls spec in
                  if not (Layout.equal l expected) then
                    add (err i ~code:"LL605" "transpose layout is not the renamed input layout")
              | None -> ())
          | Program.Reshape { src } -> (
              match layout_of src with
              | Some ls ->
                  if not (same_matrix l ls) then
                    add (err i ~code:"LL606" "reshape changed the flattened layout matrix")
              | None -> ())
          | Program.Expand_dims { src; _ } | Program.Split { src; _ } -> (
              (* The flattened matrix may only lose columns (split) or
                 stay equal (expand): check the image is preserved up
                 to the removed dimension by surjectivity (already
                 checked) and rank monotonicity. *)
              match layout_of src with
              | Some ls ->
                  if
                    F2.Bitmatrix.rank (Layout.to_matrix l)
                    > F2.Bitmatrix.rank (Layout.to_matrix ls)
                  then add (err i ~code:"LL607" "shape op increased the layout's rank")
              | None -> ())
          | Program.Reduce { src; axis } -> (
              match layout_of src with
              | Some ls ->
                  (* The result must be (a compression of) the slice of
                     the input: every hardware point of the result maps
                     to the slice of some input point's coordinates. *)
                  let sliced = Layout.remove_out_dim ls (Dims.dim axis) in
                  let cols l' d = Layout.flat_columns l' d in
                  let rename k = if k > axis then k - 1 else k in
                  let sliced =
                    Layout.exchange_out_names sliced
                      (Layout.out_dims sliced
                      |> List.filter_map (fun (d, _) ->
                             match Dims.dim_index d with
                             | Some k when rename k <> k -> Some (d, Dims.dim (rename k))
                             | _ -> None))
                  in
                  let subset a b = List.for_all (fun c -> c = 0 || List.mem c b) a in
                  if
                    not
                      (subset (cols l Dims.lane) (cols sliced Dims.lane)
                      && subset (cols l Dims.warp) (cols sliced Dims.warp))
                  then add (err i ~code:"LL608" "reduction result does not slice the input layout")
              | None -> ())
          | Program.Broadcast { src } -> (
              match layout_of src with
              | Some ls ->
                  (* Slicing the broadcast dimensions back must recover
                     (the surjective core of) the input layout's image. *)
                  let grown =
                    Array.to_list
                      (Array.mapi (fun d s -> (d, s)) ins.Program.shape)
                    |> List.filter (fun (d, s) ->
                           s > 1 && Layout.out_bits ls (Dims.dim d) = 0)
                    |> List.map fst
                  in
                  let back =
                    List.fold_left (fun acc d -> Layout.remove_out_dim acc (Dims.dim d)) l grown
                  in
                  let img l' =
                    F2.Subspace.echelon_basis
                      (List.concat_map (fun (d, _) -> Layout.flat_columns l' d)
                         (Layout.in_dims l'))
                  in
                  let back_img = img back in
                  let src_img =
                    img (List.fold_left (fun acc d -> Layout.remove_out_dim acc (Dims.dim d)) ls grown)
                  in
                  if not (F2.Subspace.equal_span back_img src_img) then
                    add (err i ~code:"LL609" "broadcast does not extend the input layout")
              | None -> ())
          | _ -> ()))
    (Program.instrs prog);
  List.rev !issues
