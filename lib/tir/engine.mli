(** Triton's layout engine over the mini-IR (Section 4.4), with both
    layout systems selectable:

    - [Linear]: anchors (blocked for global memory, mma for dot) are
      propagated forward through shape operations using the linear
      transfer functions; conversions are classified and costed with
      the Section 5 algorithms (no-op detection, register permutation,
      warp shuffles, optimal swizzling, ldmatrix).
    - [Legacy]: the same anchors, but conversions always go through
      padded shared memory, layouts of different kinds are never
      recognized as equal, reductions skip broadcast deduplication, and
      several layout/dtype combinations are unsupported.

    The engine is structured as a pass pipeline: {!run} is a thin
    wrapper that executes {!Passes.default} through the
    {!Pass_manager}.  Drive the pipeline directly (custom pass lists,
    per-pass instrumentation, dump-after-pass) via {!Pass.init} +
    {!Pass_manager.run}; the types below are re-exports of the
    pipeline's {!Pass} types, so both APIs interoperate. *)

type mode = Pass.mode = Linear | Legacy_mode

type conversion_info = Pass.conversion_info = {
  at : Program.id;
  mechanism : string;
  conv_cost : Gpusim.Cost.t;
  plan : Codegen.Conversion.plan option;
      (** the full plan in [Linear] mode, for downstream static
          analysis; [None] for the legacy baseline's padded round trips *)
}

type result = Pass.result = {
  cost : Gpusim.Cost.t;  (** whole-program data-movement cost *)
  conversions : conversion_info list;  (** materialized conversions *)
  converts : int;  (** conversions that were not no-ops *)
  noop_converts : int;  (** conversions folded away (equivalent layouts) *)
  local_loads : int;  (** static shared-memory load ops *)
  local_stores : int;  (** static shared-memory store ops *)
  remats : int;
      (** conversions avoided by rematerializing cheap load/elementwise
          chains in the consumer's layout (Section 4.4's backward pass) *)
  unsupported : string list;  (** legacy feature failures, empty = pass *)
}

(** Abstract time for the result on a machine. *)
val time : Gpusim.Machine.t -> result -> float

(** How layout-assignment decisions are committed: [Greedy] is the
    Section 4.4 walk ({!Assign_greedy}); [Search] explores the decision
    tree by beam search with exact static re-pricing of the short-list
    ({!Assign_search}) — never worse than greedy on the search
    objective. *)
type strategy = Greedy | Search of Assign_search.params

(** [run machine ~mode program] assigns layouts (mutating the program's
    [layout] fields; any previous assignment is reset first, so reruns
    are idempotent) and returns the accumulated statistics.
    [num_warps] defaults to 4.  [trace], if given, is installed as the
    observability sink for the duration of the run, collecting per-pass
    spans and planner metrics (see {!Obs}).  [strategy] defaults to
    [Greedy]. *)
val run :
  Gpusim.Machine.t ->
  mode:mode ->
  ?num_warps:int ->
  ?trace:Obs.Trace.t ->
  ?strategy:strategy ->
  Program.t ->
  result
