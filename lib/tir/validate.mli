(** Post-engine validation: run the engine and check its assignment
    with the {!Verifier} (codes [LL6xx]; see that module for the full
    list), optionally with the {!Lint} sweep.  [run_and_validate]
    drives the pass pipeline directly, running the verifier + lints as
    the [analyze] pass when requested. *)

open Linear_layout

type issue = Diagnostics.t
(** @deprecated alias kept for callers of the pre-diagnostics API. *)

val program : Program.t -> Diagnostics.t list
(** Alias of {!Verifier.program}. *)

(** [analyze machine prog ~result] = {!program} plus the full
    {!Lint.passes} sweep (coalescing, broadcast redundancy, bank
    certification, race checking) plus {!Pass_certify} translation
    validation of every materialized conversion plan, over the
    assignment recorded by [result = Engine.run ... prog]. *)
val analyze : Gpusim.Machine.t -> Program.t -> result:Engine.result -> Diagnostics.t list

(** The LL2xx–LL5xx lint sweep as a {!Pass_manager} hook, for per-pass
    analysis at any dump-after point (the lints tolerate partially
    assigned programs); pass it as [after_pass] or [dump_after]. *)
val lint_hook : Pass_manager.hook

(** Raised by {!run_and_validate} with the error-severity diagnostics;
    the registered printer renders them with codes and instruction
    ids. *)
exception Invalid of Diagnostics.t list

(** [run_and_validate machine ~mode prog] = engine + validation; raises
    {!Invalid} with the rendered diagnostics if any check fails.  With
    [~analyze:true] (default [false]) the {!Lint} passes also run and
    their error-severity findings fail validation too.  Only linear-mode
    assignments are verified: the legacy baseline rewrites unsupported
    layouts in place (its forced normalization conversions), so the
    per-op relations are not observable on its final state.  [chooser]
    selects the layout-assignment strategy (greedy by default) — e.g.
    {!Assign_search.chooser_of_script} to validate a search winner. *)
val run_and_validate :
  Gpusim.Machine.t ->
  mode:Engine.mode ->
  ?num_warps:int ->
  ?chooser:Strategy.t ->
  ?analyze:bool ->
  Program.t ->
  Engine.result

(** @deprecated use {!Linear_layout.Diagnostics.pp_list}. *)
val pp : Format.formatter -> Diagnostics.t list -> unit
