(** Post-engine validation: re-derive every instruction's layout
    obligations from its operation and check the engine's assignment —
    the kind of verifier pass a production compiler runs after layout
    assignment.

    Checks per instruction (codes [LL6xx], plus re-emitted [LL1xx]
    well-formedness errors from {!Linear_layout.Check.distributed}):
    - [LL601] no layout assigned;
    - [LL602] the layout does not cover the instruction's shape;
    - [LL603] the layout is not surjective;
    - [LL605] a transpose's layout is not the renamed input layout;
    - [LL606] a reshape changed the flattened layout matrix;
    - [LL607] an expand/split increased the layout's rank;
    - [LL608] a reduction's result does not slice the input layout;
    - [LL609] a broadcast does not extend the input layout. *)

open Linear_layout

type issue = Diagnostics.t
(** @deprecated alias kept for callers of the pre-diagnostics API. *)

val program : Program.t -> Diagnostics.t list

(** [analyze machine prog ~result] = {!program} plus the full
    {!Lint.passes} sweep (coalescing, broadcast redundancy, bank
    certification, race checking) over the assignment recorded by
    [result = Engine.run ... prog]. *)
val analyze : Gpusim.Machine.t -> Program.t -> result:Engine.result -> Diagnostics.t list

(** Raised by {!run_and_validate} with the error-severity diagnostics;
    the registered printer renders them with codes and instruction
    ids. *)
exception Invalid of Diagnostics.t list

(** [run_and_validate machine ~mode prog] = engine + validation; raises
    {!Invalid} with the rendered diagnostics if any check fails.  With
    [~analyze:true] (default [false]) the {!Lint} passes also run and
    their error-severity findings fail validation too.  Only linear-mode
    assignments are verified: the legacy baseline rewrites unsupported
    layouts in place (its forced normalization conversions), so the
    per-op relations are not observable on its final state. *)
val run_and_validate :
  Gpusim.Machine.t ->
  mode:Engine.mode ->
  ?num_warps:int ->
  ?analyze:bool ->
  Program.t ->
  Engine.result

(** @deprecated use {!Linear_layout.Diagnostics.pp_list}. *)
val pp : Format.formatter -> Diagnostics.t list -> unit
