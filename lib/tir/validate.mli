(** Post-engine validation: re-derive every instruction's layout
    obligations from its operation and check the engine's assignment —
    the kind of verifier pass a production compiler runs after layout
    assignment.

    Checks per instruction:
    - a layout exists, covers the instruction's shape, and is
      surjective;
    - shape operations relate input and output layouts by the
      operation's index map (transposes rename, reshapes flatten,
      expand/broadcast/slice preserve the non-broadcast structure);
    - reductions produce a slice of the input's layout;
    - every layout passes {!Linear_layout.Check.distributed} without
      errors. *)

type issue = { at : Program.id; message : string }

val program : Program.t -> issue list

(** [run_and_validate machine ~mode prog] = engine + validation;
    raises [Failure] listing the issues if any.  Only linear-mode
    assignments are verified: the legacy baseline rewrites unsupported
    layouts in place (its forced normalization conversions), so the
    per-op relations are not observable on its final state. *)
val run_and_validate :
  Gpusim.Machine.t -> mode:Engine.mode -> ?num_warps:int -> Program.t -> Engine.result

val pp : Format.formatter -> issue list -> unit
