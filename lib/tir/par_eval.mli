(** Deterministic domain-parallel evaluation.

    [map ~domains n f] computes [Array.init n f], evaluating indices
    round-robin across [domains] worker domains and merging results in
    index order — so any index-ordered reduction downstream (winner
    selection with a strict [<], beam truncation) is identical for any
    domain count.  Worker metrics snapshots are absorbed into the
    calling domain's registry; [domains] is clamped to [[1, n]]. *)
val map : ?domains:int -> int -> (int -> 'a) -> 'a array

(** Persistent worker-domain pool for request-serving workloads
    ({!Server}): [map] pays a [Domain.spawn] per call, a pool pays it
    once at {!Pool.create}.  Tasks are run in submission order by
    whichever worker frees first; a task that raises is counted in the
    ["tir.pool.task_errors"] metric and the worker keeps serving. *)
module Pool : sig
  type t

  (** [create ~domains ()] spawns [max 1 domains] worker domains. *)
  val create : ?domains:int -> unit -> t

  val domains : t -> int

  (** [submit p task] enqueues [task]; returns [false] (task dropped)
      iff {!shutdown} has begun. *)
  val submit : t -> (unit -> unit) -> bool

  (** Graceful shutdown: refuses new tasks, drains the queue, joins the
      workers and absorbs their metric snapshots into the calling
      domain's registry. *)
  val shutdown : t -> unit
end
