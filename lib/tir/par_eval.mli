(** Deterministic domain-parallel evaluation.

    [map ~domains n f] computes [Array.init n f], evaluating indices
    round-robin across [domains] worker domains and merging results in
    index order — so any index-ordered reduction downstream (winner
    selection with a strict [<], beam truncation) is identical for any
    domain count.  Worker metrics snapshots are absorbed into the
    calling domain's registry; [domains] is clamped to [[1, n]]. *)
val map : ?domains:int -> int -> (int -> 'a) -> 'a array
