(* See server.mli for the protocol.  The daemon is one acceptor domain
   (a [select] loop polling the stop flag, so shutdown never hangs on a
   blocking [accept]) feeding connections to a {!Par_eval.Pool}; all
   cross-domain request counters are atomics, while plan data flows
   through the {!Codegen.Shared_cache} mutex stripes. *)

let max_frame = 1 lsl 20

(* {1 Framing} *)

let read_exact fd n =
  let b = Bytes.create n in
  let rec go off =
    if off < n then begin
      let r = Unix.read fd b off (n - off) in
      if r = 0 then raise End_of_file;
      go (off + r)
    end
  in
  go 0;
  b

let recv_frame fd =
  let hdr = Bytes.create 4 in
  let first = Unix.read fd hdr 0 4 in
  if first = 0 then None
  else begin
    let rec go off =
      if off < 4 then begin
        let r = Unix.read fd hdr off (4 - off) in
        if r = 0 then raise End_of_file;
        go (off + r)
      end
    in
    go first;
    let len =
      (Char.code (Bytes.get hdr 0) lsl 24)
      lor (Char.code (Bytes.get hdr 1) lsl 16)
      lor (Char.code (Bytes.get hdr 2) lsl 8)
      lor Char.code (Bytes.get hdr 3)
    in
    if len > max_frame then failwith "oversized frame";
    Some (Bytes.to_string (read_exact fd len))
  end

let send_frame fd s =
  let n = String.length s in
  if n > max_frame then invalid_arg "Server.send_frame: oversized frame";
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string s 0 b 4 n;
  let total = 4 + n in
  let rec go off = if off < total then go (off + Unix.write fd b off (total - off)) in
  go 0

(* {1 Requests} *)

type t = {
  socket_path : string;
  listen_fd : Unix.file_descr;
  pool : Par_eval.Pool.t;
  stopping : bool Atomic.t;
  served : int Atomic.t;
  plan_reqs : int Atomic.t;
  engine_reqs : int Atomic.t;
  errors : int Atomic.t;
  store : string option;
  report : Codegen.Plan_store.load_report;
  mutable acceptor : unit Domain.t option;
  join_lock : Mutex.t;
  mutable joined : bool;
}

exception Err of string

let err code fmt =
  Printf.ksprintf (fun m -> raise (Err (Printf.sprintf "ERR %s %s" code m))) fmt

let find_machine name =
  List.find_opt (fun m -> String.equal m.Gpusim.Machine.name name) Gpusim.Machine.all_with_extras

let cert_of (c : Analysis.Transval.cert) =
  {
    Codegen.Plan_store.method_ = Analysis.Transval.method_name c.Analysis.Transval.method_;
    points = c.Analysis.Transval.points;
    verdict = Analysis.Transval.verdict_name c.Analysis.Transval.verdict;
  }

let certify ~machine plan =
  match find_machine machine with
  | None -> None
  | Some m -> Some (cert_of (Analysis.Transval.certify_plan m plan))

let verify ~machine plan (_ : Codegen.Plan_store.cert) =
  match find_machine machine with
  | None -> false
  | Some m -> (
      match (Analysis.Transval.certify_plan m plan).Analysis.Transval.verdict with
      | Analysis.Transval.Proved -> true
      | Analysis.Transval.Refuted _ | Analysis.Transval.Failed _ -> false)

let kv_of lines =
  List.filter_map
    (fun l ->
      match String.index_opt l '=' with
      | None -> None
      | Some i -> Some (String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1)))
    lines

let handle srv payload =
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' payload) in
  match lines with
  | [] -> "ERR LL910 empty request"
  | verb :: rest -> (
      let kv = kv_of rest in
      let get k =
        match List.assoc_opt k kv with
        | Some v -> v
        | None -> err "LL911" "missing key %s" k
      in
      let get_int ?default k =
        match (List.assoc_opt k kv, default) with
        | None, Some d -> d
        | None, None -> err "LL911" "missing key %s" k
        | Some v, _ -> (
            match int_of_string_opt v with
            | Some n -> n
            | None -> err "LL911" "bad integer %s for %s" v k)
      in
      let machine () =
        let name = get "machine" in
        match find_machine name with
        | Some m -> m
        | None -> err "LL912" "unknown machine %s" name
      in
      try
        match verb with
        | "PLAN" ->
            Atomic.incr srv.plan_reqs;
            let m = machine () in
            let layout k =
              match Linear_layout.Parse.of_string (get k) with
              | Ok l -> l
              | Error e -> err "LL913" "bad layout %s: %s" k e
            in
            let src = layout "src" and dst = layout "dst" in
            let byte_width = get_int ~default:4 "byte_width" in
            let plan = Codegen.Plan_cache.conversion m ~src ~dst ~byte_width in
            let cert = Analysis.Transval.certify_plan m plan in
            Printf.sprintf "OK mechanism=%s cert=%s points=%d"
              (Codegen.Conversion.mechanism_slug plan.Codegen.Conversion.mechanism)
              (Analysis.Transval.verdict_name cert.Analysis.Transval.verdict)
              cert.Analysis.Transval.points
        | "ENGINE" ->
            Atomic.incr srv.engine_reqs;
            let kname = get "kernel" in
            let k =
              match
                List.find_opt (fun k -> String.equal k.Kernels.name kname) Kernels.all
              with
              | Some k -> k
              | None -> err "LL914" "unknown kernel %s" kname
            in
            let m = machine () in
            let mode =
              match List.assoc_opt "mode" kv with
              | None | Some "linear" -> Engine.Linear
              | Some "legacy" -> Engine.Legacy_mode
              | Some v -> err "LL911" "bad mode %s" v
            in
            let size = get_int ~default:(List.hd k.Kernels.sizes) "size" in
            if k.Kernels.needs_wgmma && not m.Gpusim.Machine.has_wgmma then
              err "LL911" "kernel %s needs wgmma, machine %s has none" kname
                m.Gpusim.Machine.name;
            let r = Engine.run m ~mode (k.Kernels.build ~size) in
            Printf.sprintf
              "OK time=%.0f converts=%d noops=%d loads=%d stores=%d remats=%d unsupported=%d"
              (Engine.time m r) r.Engine.converts r.Engine.noop_converts r.Engine.local_loads
              r.Engine.local_stores r.Engine.remats
              (List.length r.Engine.unsupported)
        | "STATS" ->
            let s = Codegen.Shared_cache.stats () in
            Printf.sprintf
              "OK served=%d plan=%d engine=%d errors=%d shared_hits=%d shared_misses=%d \
               shared_inserts=%d store_loaded=%d store_rejected=%d domains=%d"
              (Atomic.get srv.served) (Atomic.get srv.plan_reqs) (Atomic.get srv.engine_reqs)
              (Atomic.get srv.errors) s.Codegen.Shared_cache.hits s.Codegen.Shared_cache.misses
              s.Codegen.Shared_cache.inserts srv.report.Codegen.Plan_store.loaded
              srv.report.Codegen.Plan_store.rejected
              (Par_eval.Pool.domains srv.pool)
        | "SHUTDOWN" ->
            Atomic.set srv.stopping true;
            "OK bye"
        | v -> err "LL911" "unknown verb %s" v
      with
      | Err m ->
          Atomic.incr srv.errors;
          m
      | e ->
          Atomic.incr srv.errors;
          Printf.sprintf "ERR LL911 request failed: %s" (Printexc.to_string e))

let handle_conn srv fd =
  let rec loop () =
    match recv_frame fd with
    | None -> ()
    | Some payload ->
        let t0 = Obs.Clock.now () in
        let verb =
          match String.index_opt payload '\n' with
          | Some i -> String.sub payload 0 i
          | None -> payload
        in
        let reply =
          Obs.Span.with_ ~attrs:[ ("verb", verb) ] "server.request" (fun () ->
              handle srv payload)
        in
        Atomic.incr srv.served;
        Obs.Metrics.incr "tir.server.requests";
        Obs.Metrics.observe "tir.server.latency_us"
          (int_of_float ((Obs.Clock.now () -. t0) *. 1e6));
        send_frame fd reply;
        loop ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try loop () with
      | End_of_file | Unix.Unix_error _ -> ()
      | Failure msg -> (
          (* torn or oversized frame: answer once, then drop the
             connection — the stream offset is no longer trustworthy *)
          Atomic.incr srv.errors;
          try send_frame fd (Printf.sprintf "ERR LL910 %s" msg)
          with Unix.Unix_error _ -> ()))

(* {1 Lifecycle} *)

let acceptor srv () =
  let rec loop () =
    if not (Atomic.get srv.stopping) then begin
      (match Unix.select [ srv.listen_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept srv.listen_fd with
          | fd, _ ->
              if not (Par_eval.Pool.submit srv.pool (fun () -> handle_conn srv fd)) then (
                try Unix.close fd with Unix.Unix_error _ -> ())
          | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  (try loop () with _ -> ());
  try Unix.close srv.listen_fd with Unix.Unix_error _ -> ()

let store_report srv = srv.report

let start ?(domains = 1) ?store ?(reset = false) ~socket () =
  if reset then begin
    Codegen.Shared_cache.clear ();
    Codegen.Shared_cache.reset_stats ()
  end;
  let report =
    match store with
    | None -> Codegen.Plan_store.empty_report
    | Some path -> Codegen.Plan_store.load ~verify path
  in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.listen fd 64;
  let srv =
    {
      socket_path = socket;
      listen_fd = fd;
      pool = Par_eval.Pool.create ~domains ();
      stopping = Atomic.make false;
      served = Atomic.make 0;
      plan_reqs = Atomic.make 0;
      engine_reqs = Atomic.make 0;
      errors = Atomic.make 0;
      store;
      report;
      acceptor = None;
      join_lock = Mutex.create ();
      joined = false;
    }
  in
  srv.acceptor <- Some (Domain.spawn (acceptor srv));
  srv

let wait srv =
  Mutex.lock srv.join_lock;
  let mine = not srv.joined in
  if mine then srv.joined <- true;
  Mutex.unlock srv.join_lock;
  if mine then begin
    (match srv.acceptor with Some d -> Domain.join d | None -> ());
    Par_eval.Pool.shutdown srv.pool;
    (try Unix.unlink srv.socket_path with Unix.Unix_error _ -> ());
    match srv.store with
    | None -> ()
    | Some path -> ignore (Codegen.Plan_store.save ~certify path : int)
  end

let stop srv =
  Atomic.set srv.stopping true;
  wait srv

(* {1 Client} *)

module Client = struct
  type conn = Unix.file_descr

  let connect path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd

  let rpc fd req =
    send_frame fd req;
    match recv_frame fd with
    | Some r -> r
    | None -> failwith "Server.Client.rpc: server closed the connection"

  let close fd = try Unix.close fd with Unix.Unix_error _ -> ()
end
