(** Pipeline-level translation validation.

    Two layers of certificates over one run of the engine:

    - {e pass certificates}: before/after snapshots of the layout
      assignment and the pending work-list around every pass, diffed
      over the flattened F2 maps.  An in-place re-layout must be covered
      by conversion requests recording the move ([LL620] otherwise, with
      a minimal counterexample bit-vector), an assignment must never be
      dropped ([LL621]), and a discharged work item must be a semantic
      no-op or replaced by an equivalent decision ([LL622]);
    - {e plan certificates}: every materialized conversion plan is
      lowered and symbolically executed by {!Analysis.Transval}
      ([LL650]/[LL651]/[LL652]), and every surviving layout-changing
      request must have been materialized ([LL623]).

    The observer plugs into {!Pass_manager.config}'s [before_pass] /
    [after_pass] hooks, so refutations are attributed to the offending
    pass. *)

open Linear_layout

(** Assignment + work-list state captured before a pass runs. *)
type snapshot

type pass_cert = {
  pass : string;
  relayouts : int;  (** justified in-place layout changes *)
  discharged : int;  (** work items folded, remat-swapped or resolved *)
  refuted : int;  (** LL62x errors this pass triggered *)
}

val take_snapshot : Pass.state -> snapshot

(** Diff a pre-pass snapshot against the current state; appends nothing,
    returns the certificate and any refutation diagnostics. *)
val certify_pass : pass:string -> snapshot -> Pass.state -> pass_cert * Diagnostics.t list

(** A stateful observer pairing the two hooks: [before_pass] snapshots,
    [after_pass] diffs, accumulates certificates and appends refutation
    diagnostics to the state (inside the manager's attribution window,
    so they are tagged with the offending pass). *)
type observer

val observer : unit -> observer
val before_pass : observer -> Pass_manager.hook
val after_pass : observer -> Pass_manager.hook

type report = {
  mode : Pass.mode;
  result : Pass.result;  (** identical to what {!Engine.run} returns *)
  pass_certs : pass_cert list;
  plan_certs : (Program.id * Analysis.Transval.cert) list;
  diags : Diagnostics.t list;
}

(** The certificate-bearing errors ([LL620]–[LL623], [LL650]–[LL652])
    in the report. *)
val cert_errors : report -> Diagnostics.t list

val proved : report -> bool

(** ["proved"], ["refuted"], or ["skipped"] (legacy mode: the padded
    baseline is costed, never lowered, so there is nothing to certify
    beyond the pass diffs). *)
val status : report -> string

(** Run the engine pipeline under full certification: per-pass
    snapshot/diff observation plus plan certification of every
    materialized conversion.  [result] is bit-for-bit what
    {!Engine.run} computes — the observer only reads the state.
    [chooser] selects the layout-assignment strategy (greedy by
    default); pass {!Assign_search.chooser_of_script} with a winning
    script to certify a search assignment. *)
val run :
  Gpusim.Machine.t ->
  mode:Pass.mode ->
  ?num_warps:int ->
  ?trace:Obs.Trace.t ->
  ?chooser:Strategy.t ->
  Program.t ->
  report

val pp : Format.formatter -> report -> unit

(** One JSON object per engine run, the CI [certificates.json] row
    format. *)
val to_json : kernel:string -> machine:string -> report -> string
