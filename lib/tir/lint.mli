(** Lint driver: runs the {!Analysis} passes over a layout-assigned
    program and the conversions the engine materialized for it.

    Per instruction (located with {!Linear_layout.Diagnostics.Tir_instr}):
    - load/store anchors go through {!Analysis.Coalesce_lint} ([LL4xx]);
    - elementwise/scan values go through {!Analysis.Broadcast_lint}
      ([LL5xx]), suppressed when the value feeds a reduction or a dot
      (whose deduplicated exchange / replicated operands are the point
      of the redundancy);

    Per materialized conversion (from {!Pass.conversion_info.plan} —
    the type {!Engine.conversion_info} re-exports):
    - the bank-conflict certifier {!Analysis.Bank_check} ([LL3xx]);
    - the race/barrier checker {!Analysis.Races} ([LL2xx]).

    Diagnostics that carry no finer location are attributed to the
    conversion's instruction. *)

open Linear_layout

(** [passes machine prog ~result] — [prog] must already have layouts
    assigned (i.e. [result = Engine.run ... prog] was called on it). *)
val passes : Gpusim.Machine.t -> Program.t -> result:Pass.result -> Diagnostics.t list
