type config = { num_warps : int }

let default_configs = [ { num_warps = 1 }; { num_warps = 2 }; { num_warps = 4 }; { num_warps = 8 } ]

let run_config machine ~mode ?(strategy = Engine.Greedy) ~build ~size cfg =
  let prog = build ~size in
  Engine.run machine ~mode ~num_warps:cfg.num_warps ~strategy prog

type rank = [ `Model | `Static | `Interp ]

(* The ranking functional.  [`Model] prices a result by the planners'
   cost model ({!Engine.time}).  [`Static] re-prices every conversion
   that has a warp-level lowering with the exact static cost of its
   instruction stream — this is the layout-search objective
   ({!Assign_search.objective}, LL810-asserted per plan); [`Interp]
   does the same by actually interpreting the stream.  The two are
   provably equal, so they always rank identically; [`Static] is the
   executable stepping stone to layout search without interpreter
   runs.  Conversions with no lowering (legacy round trips, cross-CTA
   plans) keep their model cost. *)
let candidate_time ?(rank = `Model) machine (r : Engine.result) =
  match rank with
  | `Model -> Engine.time machine r
  | `Static -> Assign_search.objective machine r
  | `Interp ->
      List.fold_left
        (fun t (c : Engine.conversion_info) ->
          match c.Engine.plan with
          | None -> t
          | Some plan -> (
              match Analysis.Static_cost.lower_plan machine plan with
              | None -> t
              | Some (prog, sm) ->
                  let slots = sm.Codegen.Lower.total_slots in
                  let measured =
                    Gpusim.Isa.run machine prog (Gpusim.Isa.make_state prog ~slots)
                  in
                  t
                  -. Gpusim.Cost.estimate machine c.Engine.conv_cost
                  +. Gpusim.Cost.estimate machine measured))
        (Engine.time machine r) r.Engine.conversions

(* Configurations are evaluated through {!Par_eval.map} (round-robin by
   index, merged in index order) and reduced with a strict [<], so the
   winner — and every tie-break — is identical for any domain count. *)
let best ?(domains = 1) ?(rank = `Model) ?strategy machine ~mode ~build ~size =
  let configs = Array.of_list default_configs in
  let n = Array.length configs in
  if n = 0 then invalid_arg "Autotune.best: no configurations";
  let eval i =
    let span =
      Obs.Span.enter "autotune/candidate"
        ~attrs:[ ("num_warps", string_of_int configs.(i).num_warps) ]
    in
    let r = run_config machine ~mode ?strategy ~build ~size configs.(i) in
    let t = candidate_time ~rank machine r in
    Obs.Span.exit span ~attrs:[ ("time", Printf.sprintf "%.6f" t) ];
    (t, (configs.(i), r))
  in
  let span = Obs.Span.enter "autotune/best" in
  let results = Par_eval.map ~domains n eval in
  let best_t = ref (fst results.(0)) and best_v = ref (snd results.(0)) in
  for i = 1 to n - 1 do
    let t, v = results.(i) in
    if t < !best_t then begin
      best_t := t;
      best_v := v
    end
  done;
  Obs.Span.exit span
    ~attrs:
      [
        ("candidates", string_of_int n);
        ("winner.num_warps", string_of_int (fst !best_v).num_warps);
      ];
  !best_v

let tuning_gain machine ~mode ~build ~size =
  let default = run_config machine ~mode ~build ~size { num_warps = 4 } in
  let _, tuned = best machine ~mode ~build ~size in
  Engine.time machine default /. Engine.time machine tuned
