type config = { num_warps : int }

let default_configs = [ { num_warps = 1 }; { num_warps = 2 }; { num_warps = 4 }; { num_warps = 8 } ]

let run_config machine ~mode ~build ~size cfg =
  let prog = build ~size in
  Engine.run machine ~mode ~num_warps:cfg.num_warps prog

let best machine ~mode ~build ~size =
  match
    List.map
      (fun cfg ->
        let r = run_config machine ~mode ~build ~size cfg in
        (Engine.time machine r, (cfg, r)))
      default_configs
  with
  | [] -> invalid_arg "Autotune.best: no configurations"
  | first :: rest ->
      snd (List.fold_left (fun (t, b) (t', b') -> if t' < t then (t', b') else (t, b)) first rest)

let tuning_gain machine ~mode ~build ~size =
  let default = run_config machine ~mode ~build ~size { num_warps = 4 } in
  let _, tuned = best machine ~mode ~build ~size in
  Engine.time machine default /. Engine.time machine tuned
