type config = { num_warps : int }

let default_configs = [ { num_warps = 1 }; { num_warps = 2 }; { num_warps = 4 }; { num_warps = 8 } ]

let run_config machine ~mode ~build ~size cfg =
  let prog = build ~size in
  Engine.run machine ~mode ~num_warps:cfg.num_warps prog

type rank = [ `Model | `Static | `Interp ]

(* The ranking functional.  [`Model] prices a result by the planners'
   cost model ({!Engine.time}).  [`Static] re-prices every conversion
   that has a warp-level lowering with the exact static cost of its
   instruction stream ({!Analysis.Static_cost}); [`Interp] does the
   same by actually interpreting the stream.  The two are provably
   equal — [`Static] asserts it per plan — so they always rank
   identically; [`Static] is the executable stepping stone to layout
   search without interpreter runs.  Conversions with no lowering
   (legacy round trips, cross-CTA plans) keep their model cost. *)
let candidate_time ?(rank = `Model) machine (r : Engine.result) =
  match rank with
  | `Model -> Engine.time machine r
  | (`Static | `Interp) as rank ->
      List.fold_left
        (fun t (c : Engine.conversion_info) ->
          match c.Engine.plan with
          | None -> t
          | Some plan -> (
              match Analysis.Static_cost.lower_plan machine plan with
              | None -> t
              | Some (prog, sm) ->
                  let slots = sm.Codegen.Lower.total_slots in
                  let measured =
                    match rank with
                    | `Static ->
                        (match Analysis.Static_cost.differential machine ~slots prog with
                        | [] -> ()
                        | d :: _ ->
                            failwith
                              (Format.asprintf "Autotune.best ~rank:`Static: %a"
                                 Linear_layout.Diagnostics.pp d));
                        Analysis.Static_cost.cost machine prog
                    | `Interp ->
                        Gpusim.Isa.run machine prog (Gpusim.Isa.make_state prog ~slots)
                  in
                  t
                  -. Gpusim.Cost.estimate machine c.Engine.conv_cost
                  +. Gpusim.Cost.estimate machine measured))
        (Engine.time machine r) r.Engine.conversions

(* Configurations are evaluated round-robin by index ([i mod domains])
   and merged in index order with a strict [<], so the winner — and
   every tie-break — is identical for any domain count.  Each domain
   owns private Layout.Memo / Plan_cache tables (they live in
   [Domain.DLS]), so workers never contend on the caches. *)
let best ?(domains = 1) ?(rank = `Model) machine ~mode ~build ~size =
  let configs = Array.of_list default_configs in
  let n = Array.length configs in
  if n = 0 then invalid_arg "Autotune.best: no configurations";
  let eval i =
    let span =
      Obs.Span.enter "autotune/candidate"
        ~attrs:[ ("num_warps", string_of_int configs.(i).num_warps) ]
    in
    let r = run_config machine ~mode ~build ~size configs.(i) in
    let t = candidate_time ~rank machine r in
    Obs.Span.exit span ~attrs:[ ("time", Printf.sprintf "%.6f" t) ];
    (t, (configs.(i), r))
  in
  let domains = max 1 (min domains n) in
  let span = Obs.Span.enter "autotune/best" in
  let results =
    if domains = 1 then Array.init n eval
    else begin
      (* The trace sink and enabled flag are cross-domain (atomics), so
         worker spans land in the shared ring directly; the metrics
         registry is per-domain (Domain.DLS), so each worker hands its
         snapshot back for the parent to absorb. *)
      let chunk d =
        let rec go i acc = if i >= n then acc else go (i + domains) ((i, eval i) :: acc) in
        let rows = go d [] in
        (rows, Obs.Metrics.snapshot ())
      in
      let parts =
        List.init domains (fun d -> Domain.spawn (fun () -> chunk d))
        |> List.map Domain.join
      in
      let out = Array.make n None in
      List.iter
        (fun (rows, snap) ->
          Obs.Metrics.absorb snap;
          List.iter (fun (i, r) -> out.(i) <- Some r) rows)
        parts;
      Array.map Option.get out
    end
  in
  let best_t = ref (fst results.(0)) and best_v = ref (snd results.(0)) in
  for i = 1 to n - 1 do
    let t, v = results.(i) in
    if t < !best_t then begin
      best_t := t;
      best_v := v
    end
  done;
  Obs.Span.exit span
    ~attrs:
      [
        ("candidates", string_of_int n);
        ("winner.num_warps", string_of_int (fst !best_v).num_warps);
      ];
  !best_v

let tuning_gain machine ~mode ~build ~size =
  let default = run_config machine ~mode ~build ~size { num_warps = 4 } in
  let _, tuned = best machine ~mode ~build ~size in
  Engine.time machine default /. Engine.time machine tuned
