(** The layout-assignment verifier: re-derives every instruction's
    layout obligations from its operation and checks the engine's
    assignment — the kind of verifier pass a production compiler runs
    after layout assignment.  Runs standalone (via {!Validate}) or as
    the [analyze] pipeline pass.

    Checks per instruction (codes [LL6xx], plus re-emitted [LL1xx]
    well-formedness errors from {!Linear_layout.Check.distributed}):
    - [LL601] no layout assigned;
    - [LL602] the layout does not cover the instruction's shape;
    - [LL603] the layout is not surjective;
    - [LL605] a transpose's layout is not the renamed input layout;
    - [LL606] a reshape changed the flattened layout matrix;
    - [LL607] an expand/split increased the layout's rank;
    - [LL608] a reduction's result does not slice the input layout;
    - [LL609] a broadcast does not extend the input layout. *)

open Linear_layout

val program : Program.t -> Diagnostics.t list
