(* Deterministic domain-parallel evaluation, shared by {!Autotune.best}
   and {!Assign_search}.  Indices are distributed round-robin
   ([i mod domains]) and the results merged back in index order, so any
   index-ordered reduction downstream — winner selection with a strict
   [<], beam truncation — is identical for any domain count.  The trace
   sink and enabled flag are cross-domain (atomics), so worker spans
   land in the shared ring directly; the metrics registry is per-domain
   (Domain.DLS), so each worker hands its snapshot back for the parent
   to absorb.  Per-domain Layout.Memo / Plan_cache tables also live in
   Domain.DLS, so workers never contend on the caches. *)

module Pool = struct
  (* A persistent variant of the same worker model for request-serving
     workloads ({!Server}): [map] pays a [Domain.spawn] per call, a
     pool pays it once.  Metrics accounting matches [map] — workers
     accumulate in their own DLS registry and hand a snapshot back when
     they exit, so [shutdown] leaves the parent's registry as if every
     task had run locally. *)

  type t = {
    lock : Mutex.t;
    nonempty : Condition.t;
    queue : (unit -> unit) Queue.t;
    mutable stopping : bool;
    mutable workers : Obs.Metrics.snapshot Domain.t array;
  }

  let worker p () =
    let rec loop () =
      Mutex.lock p.lock;
      while Queue.is_empty p.queue && not p.stopping do
        Condition.wait p.nonempty p.lock
      done;
      match Queue.take_opt p.queue with
      | None ->
          (* stopping and drained *)
          Mutex.unlock p.lock;
          Obs.Metrics.snapshot ()
      | Some task ->
          Mutex.unlock p.lock;
          (try task () with _ -> Obs.Metrics.incr "tir.pool.task_errors");
          loop ()
    in
    loop ()

  let create ?(domains = 1) () =
    let domains = max 1 domains in
    let p =
      {
        lock = Mutex.create ();
        nonempty = Condition.create ();
        queue = Queue.create ();
        stopping = false;
        workers = [||];
      }
    in
    p.workers <- Array.init domains (fun _ -> Domain.spawn (worker p));
    p

  let domains p = Array.length p.workers

  let submit p task =
    Mutex.lock p.lock;
    let accepted = not p.stopping in
    if accepted then begin
      Queue.add task p.queue;
      Condition.signal p.nonempty
    end;
    Mutex.unlock p.lock;
    accepted

  let shutdown p =
    Mutex.lock p.lock;
    p.stopping <- true;
    Condition.broadcast p.nonempty;
    Mutex.unlock p.lock;
    Array.iter (fun d -> Obs.Metrics.absorb (Domain.join d)) p.workers
end

let map ?(domains = 1) n f =
  if n < 0 then invalid_arg "Par_eval.map: negative length";
  let domains = max 1 (min domains n) in
  if domains <= 1 then Array.init n f
  else begin
    let chunk d =
      let rec go i acc = if i >= n then acc else go (i + domains) ((i, f i) :: acc) in
      let rows = go d [] in
      (rows, Obs.Metrics.snapshot ())
    in
    let parts =
      List.init domains (fun d -> Domain.spawn (fun () -> chunk d))
      |> List.map Domain.join
    in
    let out = Array.make n None in
    List.iter
      (fun (rows, snap) ->
        Obs.Metrics.absorb snap;
        List.iter (fun (i, r) -> out.(i) <- Some r) rows)
      parts;
    Array.map Option.get out
  end
