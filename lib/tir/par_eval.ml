(* Deterministic domain-parallel evaluation, shared by {!Autotune.best}
   and {!Assign_search}.  Indices are distributed round-robin
   ([i mod domains]) and the results merged back in index order, so any
   index-ordered reduction downstream — winner selection with a strict
   [<], beam truncation — is identical for any domain count.  The trace
   sink and enabled flag are cross-domain (atomics), so worker spans
   land in the shared ring directly; the metrics registry is per-domain
   (Domain.DLS), so each worker hands its snapshot back for the parent
   to absorb.  Per-domain Layout.Memo / Plan_cache tables also live in
   Domain.DLS, so workers never contend on the caches. *)

let map ?(domains = 1) n f =
  if n < 0 then invalid_arg "Par_eval.map: negative length";
  let domains = max 1 (min domains n) in
  if domains <= 1 then Array.init n f
  else begin
    let chunk d =
      let rec go i acc = if i >= n then acc else go (i + domains) ((i, f i) :: acc) in
      let rows = go d [] in
      (rows, Obs.Metrics.snapshot ())
    in
    let parts =
      List.init domains (fun d -> Domain.spawn (fun () -> chunk d))
      |> List.map Domain.join
    in
    let out = Array.make n None in
    List.iter
      (fun (rows, snap) ->
        Obs.Metrics.absorb snap;
        List.iter (fun (i, r) -> out.(i) <- Some r) rows)
      parts;
    Array.map Option.get out
  end
