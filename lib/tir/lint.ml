open Linear_layout

(* Backward may-feed-a-reduction dataflow: a value whose copies are
   deduplicated by a downstream reduce (or consumed by a dot, whose
   operands are deliberately replicated across the k fragments) is not
   redundantly broadcast.  One reverse pass suffices because programs
   are SSA and uses always have larger ids than defs. *)
let feeds_reduction prog =
  let n = Program.length prog in
  let feeds = Array.make n false in
  for i = n - 1 downto 0 do
    let mark s = feeds.(s) <- true in
    match (Program.instr prog i).Program.node with
    | Program.Reduce { src; _ } | Program.Scan { src; _ } -> mark src
    | Program.Dot { a; b } ->
        mark a;
        mark b
    | node when feeds.(i) -> (
        match node with
        | Program.Elementwise { srcs; _ } -> List.iter mark srcs
        | Program.Trans { src; _ }
        | Program.Reshape { src }
        | Program.Expand_dims { src; _ }
        | Program.Broadcast { src }
        | Program.Split { src; _ }
        | Program.Convert { src } ->
            mark src
        | Program.Join { a; b } ->
            mark a;
            mark b
        | Program.Gather { src; index; _ } ->
            mark src;
            mark index
        | _ -> ())
    | _ -> ()
  done;
  feeds

let instruction_passes machine prog =
  let feeds = feeds_reduction prog in
  let diags = ref [] in
  let add ds = diags := List.rev_append ds !diags in
  Array.iteri
    (fun i (ins : Program.instr) ->
      match ins.Program.layout with
      | None -> ()
      | Some layout -> (
          let loc = Diagnostics.Tir_instr i in
          let byte_width = max 1 (Tensor_lib.Dtype.bits ins.Program.dtype / 8) in
          match ins.Program.node with
          | Program.Load _ ->
              add (Analysis.Coalesce_lint.access machine ~loc ~op:"load" ~layout ~byte_width ())
          | Program.Store _ ->
              add (Analysis.Coalesce_lint.access machine ~loc ~op:"store" ~layout ~byte_width ())
          | Program.Elementwise { name; _ } ->
              add
                (Analysis.Broadcast_lint.value ~loc
                   ~op:(Printf.sprintf "elementwise %s" name)
                   ~reduced_later:feeds.(i) layout)
          | Program.Scan _ ->
              add
                (Analysis.Broadcast_lint.value ~loc ~op:"scan" ~reduced_later:feeds.(i)
                   layout)
          | _ -> ()))
    (Program.instrs prog);
  List.rev !diags

let conversion_passes machine (result : Pass.result) =
  List.concat_map
    (fun (c : Pass.conversion_info) ->
      match c.Pass.plan with
      | None -> []
      | Some plan ->
          let resource =
            match Analysis.Resource_check.plan machine plan with
            | None -> []
            | Some r -> r.Analysis.Resource_check.diagnostics
          in
          Analysis.Bank_check.conversion machine plan
          @ Analysis.Races.check_plan machine plan
          @ resource
          |> List.map (Diagnostics.with_loc (Diagnostics.Tir_instr c.Pass.at)))
    result.Pass.conversions

let passes machine prog ~result =
  instruction_passes machine prog @ conversion_passes machine result
