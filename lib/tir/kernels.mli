(** Tile-level models of the 21 TritonBench kernels evaluated in
    Section 6.2 (Figure 9, Table 6).

    Each builder produces the mini-IR of one program instance (one CTA
    tile) of the kernel; [trip] scales the per-tile cost by the number
    of tile iterations (e.g. the K loop of a GEMM) so that relative
    costs between the two layout systems reflect whole-kernel
    behaviour. *)

type kernel = {
  name : string;
  sizes : int list;  (** problem sizes (power-of-two edge length) *)
  build : size:int -> Program.t;
  trip : size:int -> int;  (** loop iterations the tile cost is scaled by *)
  needs_wgmma : bool;  (** skipped on machines without wgmma (e.g. TMA-class kernels) *)
  needs_large_smem : bool;
}

val all : kernel list
val find : string -> kernel
