open Linear_layout

type issue = Diagnostics.t

let program = Verifier.program
let pp = Diagnostics.pp_list

exception Invalid of Diagnostics.t list

let () =
  Printexc.register_printer (function
    | Invalid ds ->
        Some (Format.asprintf "layout validation failed:@.%a" Diagnostics.pp_list ds)
    | _ -> None)

let analyze machine prog ~result =
  Verifier.program prog
  @ Lint.passes machine prog ~result
  @ snd (Pass_certify.certify_conversions machine result.Engine.conversions)

(* A [Pass_manager] hook running the LL2xx–LL5xx lint sweep over the
   state as it stands, for per-pass analysis at any dump-after point
   (the lints tolerate partially assigned programs). *)
let lint_hook : Pass_manager.hook =
 fun _name st ->
  st.Pass.diags <-
    st.Pass.diags @ Lint.passes st.Pass.machine st.Pass.prog ~result:(Pass.result st)

let run_and_validate machine ~mode ?num_warps ?chooser ?(analyze = false) prog =
  (* Drive the pipeline directly so the analyze variant runs the
     verifier + lint sweep as the [analyze] pass, with its diagnostics
     attributed in the pipeline state.  The analyze variant also runs
     under the {!Certify} observer, so pass-level translation validation
     failures (LL62x) surface as validation errors. *)
  let st = Pass.init machine ~mode ?num_warps ?chooser prog in
  let passes =
    if analyze && mode = Pass.Linear then Passes.all else Passes.default
  in
  let config =
    if analyze then begin
      let obs = Certify.observer () in
      Pass_manager.config ~before_pass:(Certify.before_pass obs)
        ~after_pass:(Certify.after_pass obs) passes
    end
    else Pass_manager.config passes
  in
  let (_ : Pass_manager.report) = Pass_manager.run config st in
  let r = Pass.result st in
  match mode with
  | Engine.Legacy_mode ->
      (* The legacy baseline normalizes unsupported layouts in place
         (modelling its forced conversions), so the per-op relations are
         not observable on the final state; only linear assignments are
         verified. *)
      r
  | Engine.Linear -> (
      let diags = if analyze then st.Pass.diags else Verifier.program prog in
      match Diagnostics.errors diags with [] -> r | errors -> raise (Invalid errors))
