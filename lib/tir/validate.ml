open Linear_layout

type issue = Diagnostics.t

let program = Verifier.program
let pp = Diagnostics.pp_list

exception Invalid of Diagnostics.t list

let () =
  Printexc.register_printer (function
    | Invalid ds ->
        Some (Format.asprintf "layout validation failed:@.%a" Diagnostics.pp_list ds)
    | _ -> None)

let analyze machine prog ~result = Verifier.program prog @ Lint.passes machine prog ~result

let run_and_validate machine ~mode ?num_warps ?(analyze = false) prog =
  (* Drive the pipeline directly so the analyze variant runs the
     verifier + lint sweep as the [analyze] pass, with its diagnostics
     attributed in the pipeline state. *)
  let st = Pass.init machine ~mode ?num_warps prog in
  let passes =
    if analyze && mode = Pass.Linear then Passes.all else Passes.default
  in
  let (_ : Pass_manager.report) = Pass_manager.run (Pass_manager.config passes) st in
  let r = Pass.result st in
  match mode with
  | Engine.Legacy_mode ->
      (* The legacy baseline normalizes unsupported layouts in place
         (modelling its forced conversions), so the per-op relations are
         not observable on the final state; only linear assignments are
         verified. *)
      r
  | Engine.Linear -> (
      let diags = if analyze then st.Pass.diags else Verifier.program prog in
      match Diagnostics.errors diags with [] -> r | errors -> raise (Invalid errors))
