open Linear_layout

type mode = Linear | Legacy_mode

type conversion_info = {
  at : Program.id;
  mechanism : string;
  conv_cost : Gpusim.Cost.t;
  plan : Codegen.Conversion.plan option;
}

type result = {
  cost : Gpusim.Cost.t;
  conversions : conversion_info list;
  converts : int;
  noop_converts : int;
  local_loads : int;
  local_stores : int;
  remats : int;  (** conversions avoided by rematerializing cheap chains *)
  unsupported : string list;
}

let time machine r = Gpusim.Cost.estimate machine r.cost

(* {1 Layout construction helpers} *)

let bits_of dtype = Tensor_lib.Dtype.bits dtype
let byte_width_of dtype = max 1 (bits_of dtype / 8)

let pow2_floor n =
  let rec go k = if 1 lsl (k + 1) > n then 1 lsl k else go (k + 1) in
  if n < 1 then 1 else go 0

let default_blocked machine ~num_warps ~shape ~dtype =
  let numel = Array.fold_left ( * ) 1 shape in
  let threads = machine.Gpusim.Machine.warp_size * num_warps in
  let ept = pow2_floor (max 1 (min (128 / bits_of dtype) (numel / threads))) in
  Blocked.default ~elems_per_thread:ept ~warp_size:machine.Gpusim.Machine.warp_size ~num_warps
    shape

let mma_bitwidth dtype = min 32 (max 4 (bits_of dtype))

(* The mma path requires each tensor dimension to hold at least one
   operand/output tile; tile sizes depend on the element bitwidths
   (an f8 lhs tile is 16 x 32, an f16 one 16 x 16, ...). *)
let dot_fits ~m ~n ~k ~a_bits ~b_bits =
  let size t d = Layout.out_size t (Dims.dim d) in
  let lhs = Mma.operand_tile ~idx:0 ~bitwidth:a_bits in
  let rhs = Mma.operand_tile ~idx:1 ~bitwidth:b_bits in
  let out = Mma.output_tile ~bitwidth:32 in
  m >= max (size lhs 0) (size out 0)
  && n >= max (size rhs 1) (size out 1)
  && k >= max (size lhs 1) (size rhs 0)

let dot_layouts machine ~num_warps ~m ~n ~k ~a_dtype ~b_dtype =
  let warps = [| num_warps; 1 |] in
  let a_bits = mma_bitwidth a_dtype and b_bits = mma_bitwidth b_dtype in
  if not (dot_fits ~m ~n ~k ~a_bits ~b_bits) then
    (* Small shapes: linear layouts still provide a valid distributed
       layout via blocked encodings (Section 6.1's point is that legacy
       cannot). *)
    let bl shape dt = default_blocked machine ~num_warps ~shape ~dtype:dt in
    (bl [| m; n |] a_dtype, bl [| m; k |] a_dtype, bl [| k; n |] b_dtype)
  else
    let out_tile =
      match machine.Gpusim.Machine.vendor with
      | Gpusim.Machine.Amd -> Mma.mfma_output_tile ~m:16
      | Gpusim.Machine.Intel -> Mma.xmx_output_tile ()
      | Gpusim.Machine.Nvidia -> Mma.output_tile ~bitwidth:32
    in
    let out =
      match machine.Gpusim.Machine.vendor with
      | Gpusim.Machine.Amd -> Mma.mfma_output ~m:16 ~warps ~shape:[| m; n |] ()
      | Gpusim.Machine.Intel -> Mma.xmx_output ~warps ~shape:[| m; n |] ()
      | Gpusim.Machine.Nvidia -> Mma.output ~bitwidth:32 ~warps ~shape:[| m; n |] ()
    in
    let a = Mma.operand ~out_tile ~idx:0 ~bitwidth:a_bits ~warps ~shape:[| m; k |] () in
    let b = Mma.operand ~out_tile ~idx:1 ~bitwidth:b_bits ~warps ~shape:[| k; n |] () in
    (out, a, b)

(* Legacy vectorization: contiguity is only recognized within the
   fastest dimension (Section 5.1). *)
let legacy_vec layout =
  let consec = Layout.Memo.num_consecutive layout ~in_dim:Dims.register in
  match Layout.out_dims layout with
  | (_, cols_bits) :: _ :: _ when cols_bits > 0 -> min consec (1 lsl cols_bits)
  | _ -> consec

let linear_vec machine layout ~byte_width =
  let cap = machine.Gpusim.Machine.max_vec_bits / (8 * byte_width) in
  min (Layout.Memo.num_consecutive layout ~in_dim:Dims.register) (max 1 cap)

(* {1 The engine} *)

type state = {
  machine : Gpusim.Machine.t;
  mode : mode;
  num_warps : int;
  total : Gpusim.Cost.t;
  mutable convs : conversion_info list;
  mutable converts : int;
  mutable noops : int;
  mutable local_loads : int;
  mutable local_stores : int;
  mutable unsupported : string list;
  mutable saw_reduce : bool;
  mutable remats : int;
  (* Per-instruction cost of recomputing the value from loads through
     elementwise ops, when such a cheap chain exists. *)
  chain_cost : (Program.id, Gpusim.Cost.t) Hashtbl.t;
}

let layout_of prog i =
  match (Program.instr prog i).Program.layout with
  | Some l -> l
  | None -> failwith "Engine: source instruction has no layout (use-before-def?)"

(* Instruction and transaction counts for a warp-level global access
   under the given vectorization, summed over all warps. *)
let global_access_counts layout ~byte_width ~vec =
  (* Hoist the F2 matrix of the flattened layout: [apply] per address is
     then a handful of word ops, and both the flatten and the matrix are
     memoized across calls on the same layout. *)
  let m = Layout.Memo.to_matrix (Layout.Memo.flatten_outs layout) in
  let reg_bits = Layout.in_bits layout Dims.register in
  let lane_bits = Layout.in_bits layout Dims.lane in
  let warps = 1 lsl Layout.in_bits layout Dims.warp in
  let regs = 1 lsl reg_bits in
  let insts = max 1 (regs / vec) in
  let tx = ref 0 in
  for g = 0 to insts - 1 do
    let accesses =
      List.init (1 lsl lane_bits) (fun lane ->
          let hw = (g * vec) lor (lane lsl reg_bits) in
          (F2.Bitmatrix.apply m hw * byte_width, vec * byte_width))
    in
    tx := !tx + Gpusim.Coalesce.transactions accesses
  done;
  (insts * warps, !tx * warps)

let global_cost st layout ~byte_width ~vec =
  let insts, tx = global_access_counts layout ~byte_width ~vec in
  st.total.Gpusim.Cost.gmem_insts <- st.total.Gpusim.Cost.gmem_insts + insts;
  st.total.Gpusim.Cost.gmem_transactions <- st.total.Gpusim.Cost.gmem_transactions + tx

(* Record a conversion from [src_instr]'s layout to [dst]; returns unit
   but accumulates cost and static-op statistics. [ldmatrix_ok] marks
   conversions feeding tensor-core operands, where NVIDIA machines can
   use ldmatrix on the load side. *)
let convert_to ?(smem_resident = false) st prog ~at ~src ~dst ~dst_kind ~ldmatrix_ok =
  let s = Program.instr prog src in
  let src_layout = Option.get s.Program.layout in
  let byte_width = byte_width_of s.Program.dtype in
  match st.mode with
  | Linear ->
      let plan = Codegen.Plan_cache.conversion st.machine ~src:src_layout ~dst ~byte_width in
      let c = Codegen.Conversion.cost st.machine plan in
      (match plan.Codegen.Conversion.mechanism with
      | Codegen.Conversion.No_op -> st.noops <- st.noops + 1
      | Codegen.Conversion.Register_permute | Codegen.Conversion.Warp_shuffle _
      | Codegen.Conversion.Warp_shuffle_compressed _ ->
          st.converts <- st.converts + 1
      | Codegen.Conversion.Global_roundtrip -> st.converts <- st.converts + 1
      | Codegen.Conversion.Shared_memory _ ->
          st.converts <- st.converts + 1;
          st.local_stores <- st.local_stores + 1;
          st.local_loads <- st.local_loads + 1);
      (* Tensor-core operands prefer the dedicated mma swizzle, which
         admits ldmatrix on NVIDIA hardware (Section 5.3). *)
      let c =
        match plan.Codegen.Conversion.mechanism with
        | Codegen.Conversion.Shared_memory sw when smem_resident ->
            (* wgmma reads this operand directly from shared memory: only
               the store side of the staging is paid (Section 6.2's
               template_attention observation). *)
            let warps = 1 lsl Layout.in_bits src_layout Dims.warp in
            let insts =
              max 1
                (1 lsl Layout.in_bits src_layout Dims.register
                / (1 lsl sw.Codegen.Swizzle_opt.vec_bits))
              * warps
            in
            let c' = Gpusim.Cost.zero () in
            c'.Gpusim.Cost.smem_insts <- insts;
            c'.Gpusim.Cost.smem_wavefronts <- insts * sw.Codegen.Swizzle_opt.store_wavefronts;
            c'.Gpusim.Cost.barriers <- 1;
            c'.Gpusim.Cost.alu <- 2 * insts;
            c'
        | Codegen.Conversion.Shared_memory _ when ldmatrix_ok -> (
            match
              Codegen.Plan_cache.staging st.machine ~src:src_layout ~dst ~byte_width
            with
            | Some staging
              when Gpusim.Cost.estimate st.machine
                     staging.Codegen.Operand_staging.staging_cost
                   < Gpusim.Cost.estimate st.machine c ->
                staging.Codegen.Operand_staging.staging_cost
            | _ -> c)
        | _ -> c
      in
      Gpusim.Cost.add st.total c;
      if plan.Codegen.Conversion.mechanism <> Codegen.Conversion.No_op then
        st.convs <-
          {
            at;
            mechanism = Codegen.Conversion.mechanism_name plan.Codegen.Conversion.mechanism;
            conv_cost = c;
            plan = Some plan;
          }
          :: st.convs
  | Legacy_mode ->
      if s.Program.kind = dst_kind && Layout.equal src_layout dst then
        st.noops <- st.noops + 1
      else begin
        let c =
          if smem_resident then
            Legacy.Convert.store_only_cost st.machine ~src:src_layout ~dst ~byte_width
          else Legacy.Convert.cost st.machine ~src:src_layout ~dst ~byte_width
        in
        st.converts <- st.converts + 1;
        st.local_stores <- st.local_stores + 1;
        st.local_loads <- st.local_loads + 1;
        Gpusim.Cost.add st.total c;
        st.convs <-
          { at; mechanism = "shared memory (padded)"; conv_cost = c; plan = None } :: st.convs
      end

let sliced_kind = function
  | Legacy.Support.Blocked -> Legacy.Support.Sliced_blocked
  | Legacy.Support.Mma -> Legacy.Support.Sliced_mma
  | Legacy.Support.Mma_input -> Legacy.Support.Sliced_mma_input
  | k -> k

let rename_dims_above l ~axis ~delta =
  (* Renames dimK -> dimK+delta for K >= axis (delta = +1/-1). *)
  let spec =
    Layout.out_dims l
    |> List.filter_map (fun (d, _) ->
           match Dims.dim_index d with
           | Some k when k >= axis -> Some (d, Dims.dim (k + delta))
           | _ -> None)
  in
  if spec = [] then l else Layout.exchange_out_names l spec

(* Broadcast transfer: grow size-1 output dimensions to [shape].  The
   new elements are assigned, per dimension (fastest first), to the
   input's *free* lane and warp bits — the bits a reduction freed — with
   fresh registers covering the remainder at the low end, mirroring the
   blocked construction.  When the input is the slice of a blocked
   layout this reconstructs the parent exactly, so conversions against
   the original tensor fold to no-ops (the welford case, Section 6.2). *)
let broadcast_layout l ~shape =
  let rank = Array.length shape in
  let masks = Layout.Memo.free_variable_masks l in
  let free_bits dim =
    let mask = try List.assoc dim masks with Not_found -> 0 in
    ref (F2.Bitvec.support mask)
  in
  let free_lane = free_bits Dims.lane and free_warp = free_bits Dims.warp in
  let image_of in_dim k = Layout.basis l in_dim k in
  let lane_images =
    Array.init (Layout.in_bits l Dims.lane) (image_of Dims.lane)
  in
  let warp_images =
    Array.init (Layout.in_bits l Dims.warp) (image_of Dims.warp)
  in
  let reg_existing =
    List.init (Layout.in_bits l Dims.register) (image_of Dims.register)
  in
  let reg_prepends = ref [] (* fastest dim first *) in
  for di = 0 to rank - 1 do
    let d = rank - 1 - di (* fastest (last) dimension first *) in
    let have = Layout.out_bits l (Dims.dim d) in
    let want = Util.log2 shape.(d) in
    if want > have then begin
      let need = want - have in
      let lanes_take = min (List.length !free_lane) need in
      let warps_take = min (List.length !free_warp) (need - lanes_take) in
      let reg_low = need - lanes_take - warps_take in
      let coord j = [ (Dims.dim d, 1 lsl (have + j)) ] in
      reg_prepends := !reg_prepends @ [ List.init reg_low coord ];
      List.iteri
        (fun idx bit ->
          if idx < lanes_take then lane_images.(bit) <- coord (reg_low + idx))
        !free_lane;
      List.iteri
        (fun idx bit ->
          if idx < warps_take then warp_images.(bit) <- coord (reg_low + lanes_take + idx))
        !free_warp;
      let drop n lst = List.filteri (fun i _ -> i >= n) lst in
      free_lane := drop lanes_take !free_lane;
      free_warp := drop warps_take !free_warp
    end
  done;
  let reg_images = List.concat !reg_prepends @ reg_existing in
  let outs = Array.to_list (Array.mapi (fun d s -> (Dims.dim d, Util.log2 s)) shape) in
  let ins =
    [
      (Dims.register, List.length reg_images);
      (Dims.lane, Array.length lane_images);
      (Dims.warp, Array.length warp_images);
    ]
    |> List.filter (fun (_, b) -> b > 0)
  in
  let bases =
    [
      (Dims.register, reg_images);
      (Dims.lane, Array.to_list lane_images);
      (Dims.warp, Array.to_list warp_images);
    ]
    |> List.filter (fun (d, _) -> List.mem_assoc d ins)
  in
  Layout.make ~ins ~outs ~bases

let run machine ~mode ?(num_warps = 4) prog =
  let st =
    {
      machine;
      mode;
      num_warps;
      total = Gpusim.Cost.zero ();
      convs = [];
      converts = 0;
      noops = 0;
      local_loads = 0;
      local_stores = 0;
      unsupported = [];
      saw_reduce = false;
      remats = 0;
      chain_cost = Hashtbl.create 32;
    }
  in
  let set i layout kind =
    let ins = Program.instr prog i in
    ins.Program.layout <- Some layout;
    ins.Program.kind <- kind
  in
  let kind_of i = (Program.instr prog i).Program.kind in
  (* In legacy mode, shape operations on non-blocked layouts cannot be
     propagated (e.g. the transpose of an MMA layout is not a legacy
     layout): materialize a conversion to a blocked layout first. *)
  let legacy_normalize i =
    let ins = Program.instr prog i in
    if st.mode = Legacy_mode && ins.Program.kind <> Legacy.Support.Blocked then begin
      let bl =
        default_blocked machine ~num_warps ~shape:ins.Program.shape ~dtype:ins.Program.dtype
      in
      convert_to st prog ~at:i ~src:i ~dst:bl ~dst_kind:Legacy.Support.Blocked
        ~ldmatrix_ok:false;
      ins.Program.layout <- Some bl;
      ins.Program.kind <- Legacy.Support.Blocked
    end
  in
  Array.iteri
    (fun i ins ->
      let shape = ins.Program.shape and dtype = ins.Program.dtype in
      let byte_width = byte_width_of dtype in
      match ins.Program.node with
      | Program.Load _ ->
          let l = default_blocked machine ~num_warps ~shape ~dtype in
          set i l Legacy.Support.Blocked;
          let vec =
            match st.mode with
            | Linear -> linear_vec machine l ~byte_width
            | Legacy_mode -> legacy_vec l
          in
          global_cost st l ~byte_width ~vec;
          (let c = Gpusim.Cost.zero () in
           let insts, tx = global_access_counts l ~byte_width ~vec in
           c.Gpusim.Cost.gmem_insts <- insts;
           c.Gpusim.Cost.gmem_transactions <- tx;
           Hashtbl.replace st.chain_cost i c)
      | Program.Iota _ | Program.Full _ ->
          (* Register-computable values: the canonical rematerialization
             targets (computed from the lane/register id, no memory). *)
          let l = default_blocked machine ~num_warps ~shape ~dtype in
          set i l Legacy.Support.Blocked;
          let regs = 1 lsl Layout.in_bits l Dims.register in
          st.total.Gpusim.Cost.alu <- st.total.Gpusim.Cost.alu + regs;
          let c = Gpusim.Cost.zero () in
          c.Gpusim.Cost.alu <- regs;
          Hashtbl.replace st.chain_cost i c
      | Program.Store { src } ->
          let anchor = default_blocked machine ~num_warps ~shape ~dtype in
          let src_layout = layout_of prog src in
          let vec_of l =
            match st.mode with
            | Linear -> linear_vec machine l ~byte_width
            | Legacy_mode -> legacy_vec l
          in
          (* Backward rematerialization: keep the producer's layout when
             storing through it is no more expensive than converting to
             the coalesced anchor first. *)
          let store_estimate l =
            let insts, tx = global_access_counts l ~byte_width ~vec:(vec_of l) in
            (float_of_int insts *. machine.Gpusim.Machine.cost_smem_inst)
            +. (float_of_int tx *. machine.Gpusim.Machine.cost_gmem_transaction)
          in
          let convert_estimate () =
            match st.mode with
            | Linear ->
                let plan =
                  Codegen.Plan_cache.conversion machine ~src:src_layout ~dst:anchor ~byte_width
                in
                Gpusim.Cost.estimate machine (Codegen.Conversion.cost machine plan)
            | Legacy_mode ->
                if kind_of src = Legacy.Support.Blocked && Layout.equal src_layout anchor then 0.
                else
                  Gpusim.Cost.estimate machine
                    (Legacy.Convert.cost machine ~src:src_layout ~dst:anchor ~byte_width)
          in
          let direct_ok =
            (match st.mode with
            | Linear -> true
            | Legacy_mode -> kind_of src = Legacy.Support.Blocked)
            && store_estimate src_layout <= convert_estimate () +. store_estimate anchor
          in
          let l = if direct_ok then src_layout else anchor in
          if not direct_ok then
            convert_to st prog ~at:i ~src ~dst:anchor ~dst_kind:Legacy.Support.Blocked
              ~ldmatrix_ok:false;
          set i l Legacy.Support.Blocked;
          global_cost st l ~byte_width ~vec:(vec_of l)
      | Program.Elementwise { srcs; _ } ->
          let first = List.hd srcs in
          let l = layout_of prog first in
          List.iter
            (fun s ->
              let sl = layout_of prog s in
              if not (Layout.equal sl l) then begin
                (* Backward rematerialization (Section 4.4): if the
                   mismatched input is a cheap chain of loads and
                   elementwise ops, recomputing it directly in the
                   needed layout can beat a conversion. *)
                let convert_estimate () =
                  match st.mode with
                  | Linear ->
                      Gpusim.Cost.estimate machine
                        (Codegen.Conversion.cost machine
                           (Codegen.Plan_cache.conversion machine ~src:sl ~dst:l ~byte_width))
                  | Legacy_mode ->
                      Gpusim.Cost.estimate machine
                        (Legacy.Convert.cost machine ~src:sl ~dst:l ~byte_width)
                in
                match Hashtbl.find_opt st.chain_cost s with
                | Some chain when Gpusim.Cost.estimate machine chain < convert_estimate () ->
                    st.remats <- st.remats + 1;
                    Gpusim.Cost.add st.total chain
                | _ ->
                    convert_to st prog ~at:i ~src:s ~dst:l ~dst_kind:(kind_of first)
                      ~ldmatrix_ok:false
              end)
            (List.tl srcs);
          set i l (kind_of first);
          let own_alu =
            max 1
              (Array.fold_left ( * ) 1 shape / (machine.Gpusim.Machine.warp_size * num_warps))
          in
          st.total.Gpusim.Cost.alu <- st.total.Gpusim.Cost.alu + own_alu;
          (* Propagate chain cost: cheap iff every source is cheap. *)
          (match
             List.fold_left
               (fun acc s ->
                 match (acc, Hashtbl.find_opt st.chain_cost s) with
                 | Some acc, Some c ->
                     let sum = Gpusim.Cost.zero () in
                     Gpusim.Cost.add sum acc;
                     Gpusim.Cost.add sum c;
                     Some sum
                 | _ -> None)
               (Some (Gpusim.Cost.zero ()))
               srcs
           with
          | Some chain ->
              chain.Gpusim.Cost.alu <- chain.Gpusim.Cost.alu + own_alu;
              Hashtbl.replace st.chain_cost i chain
          | None -> ())
      | Program.Dot { a; b } ->
          let sa = (Program.instr prog a).Program.shape in
          let sb = (Program.instr prog b).Program.shape in
          let m = sa.(0) and k = sa.(1) and n = sb.(1) in
          let a_dtype = (Program.instr prog a).Program.dtype in
          let b_dtype = (Program.instr prog b).Program.dtype in
          if
            st.mode = Legacy_mode
            && not (Legacy.Support.supports_dot ~a:a_dtype ~b:b_dtype ~m ~n ~k)
          then
            st.unsupported <-
              Printf.sprintf "dot %s x %s on %dx%dx%d has no legacy layout"
                (Tensor_lib.Dtype.name a_dtype) (Tensor_lib.Dtype.name b_dtype) m n k
              :: st.unsupported;
          let out_l, a_l, b_l = dot_layouts machine ~num_warps ~m ~n ~k ~a_dtype ~b_dtype in
          let opk = Legacy.Support.Mma_input in
          if not (Layout.equal (layout_of prog a) a_l) then
            convert_to st prog ~at:i ~src:a ~dst:a_l ~dst_kind:opk ~ldmatrix_ok:true;
          let b_smem_resident =
            st.machine.Gpusim.Machine.has_wgmma
            && dot_fits ~m ~n ~k ~a_bits:(mma_bitwidth a_dtype) ~b_bits:(mma_bitwidth b_dtype)
          in
          if not (Layout.equal (layout_of prog b) b_l) then
            convert_to ~smem_resident:b_smem_resident st prog ~at:i ~src:b ~dst:b_l
              ~dst_kind:opk ~ldmatrix_ok:true;
          (Program.instr prog a).Program.layout <- Some a_l;
          (Program.instr prog a).Program.kind <- opk;
          (Program.instr prog b).Program.layout <- Some b_l;
          (Program.instr prog b).Program.kind <- opk;
          set i out_l
            (if
               dot_fits ~m ~n ~k ~a_bits:(mma_bitwidth a_dtype) ~b_bits:(mma_bitwidth b_dtype)
             then Legacy.Support.Mma
             else Legacy.Support.Blocked);
          st.total.Gpusim.Cost.mma <-
            st.total.Gpusim.Cost.mma + max 1 (m * n * k / (16 * 8 * 16) / num_warps)
      | Program.Reduce { src; axis } ->
          st.saw_reduce <- true;
          legacy_normalize src;
          let parent = layout_of prog src in
          if
            st.mode = Legacy_mode
            && not (Legacy.Support.supports_reduction (kind_of src))
          then
            st.unsupported <-
              Printf.sprintf "reduction over %s layout unsupported"
                (Legacy.Support.kind_name (kind_of src))
              :: st.unsupported;
          let res = rename_dims_above (Sliced.reduction_result parent ~dim:axis) ~axis ~delta:(-1) in
          set i res (sliced_kind (kind_of src));
          (* In-thread accumulation. *)
          let regs_src = 1 lsl Layout.in_bits parent Dims.register in
          let warps = 1 lsl Layout.in_bits parent Dims.warp in
          st.total.Gpusim.Cost.alu <- st.total.Gpusim.Cost.alu + regs_src;
          let axis_comp in_dim =
            List.init (Layout.in_bits parent in_dim) Fun.id
            |> List.filter (fun kbit ->
                   List.assoc_opt (Dims.dim axis) (Layout.basis parent in_dim kbit)
                   |> Option.value ~default:0 <> 0)
            |> List.length
          in
          let lane_rounds = axis_comp Dims.lane and warp_rounds = axis_comp Dims.warp in
          let regs_res = 1 lsl Layout.in_bits res Dims.register in
          (match st.mode with
          | Linear ->
              st.total.Gpusim.Cost.shuffles <-
                st.total.Gpusim.Cost.shuffles + (lane_rounds * regs_res * warps);
              if warp_rounds > 0 then begin
                st.local_stores <- st.local_stores + 1;
                st.local_loads <- st.local_loads + 1;
                (* Deduplicated: only distinct elements cross warps. *)
                st.total.Gpusim.Cost.smem_insts <-
                  st.total.Gpusim.Cost.smem_insts + (2 * regs_res * warps);
                st.total.Gpusim.Cost.smem_wavefronts <-
                  st.total.Gpusim.Cost.smem_wavefronts + (2 * regs_res * warps);
                st.total.Gpusim.Cost.barriers <- st.total.Gpusim.Cost.barriers + 1
              end
          | Legacy_mode ->
              (* Always through shared memory, without broadcast
                 deduplication: every register element is stored. *)
              st.local_stores <- st.local_stores + 1;
              st.local_loads <- st.local_loads + 1;
              st.total.Gpusim.Cost.smem_insts <-
                st.total.Gpusim.Cost.smem_insts + ((regs_src + regs_res) * warps);
              st.total.Gpusim.Cost.smem_wavefronts <-
                st.total.Gpusim.Cost.smem_wavefronts + ((regs_src + regs_res) * warps);
              st.total.Gpusim.Cost.barriers <- st.total.Gpusim.Cost.barriers + 1)
      | Program.Expand_dims { src; axis } ->
          legacy_normalize src;
          let l = rename_dims_above (layout_of prog src) ~axis ~delta:1 in
          let l =
            Layout.mul l (Layout.zeros1d 0 ~in_dim:Dims.register ~out_dim:(Dims.dim axis))
          in
          set i l (kind_of src)
      | Program.Broadcast { src } ->
          legacy_normalize src;
          let l = layout_of prog src in
          set i (broadcast_layout l ~shape) (kind_of src)
      | Program.Trans { src; perm } ->
          legacy_normalize src;
          let l = layout_of prog src in
          let spec =
            Array.to_list perm
            |> List.mapi (fun out_d in_d -> (Dims.dim in_d, Dims.dim out_d))
            |> List.filter (fun (a, b) -> a <> b)
          in
          set i (if spec = [] then l else Layout.exchange_out_names l spec) (kind_of src)
      | Program.Reshape { src } ->
          legacy_normalize src;
          let l = layout_of prog src in
          let outs = Array.to_list (Array.mapi (fun d s -> (Dims.dim d, Util.log2 s)) shape) in
          set i (Layout.reshape_outs (Layout.flatten_outs l) outs) (kind_of src)
      | Program.Gather { src; index; axis } ->
          let l = layout_of prog src in
          let il = layout_of prog index in
          if not (Layout.equal il l) then
            convert_to st prog ~at:i ~src:index ~dst:l ~dst_kind:(kind_of src)
              ~ldmatrix_ok:false;
          set i l (kind_of src);
          let plan =
            match st.mode with
            | Linear -> Codegen.Gather.plan l ~axis
            | Legacy_mode -> Codegen.Gather.Shared_fallback
          in
          (match plan with
          | Codegen.Gather.Shared_fallback ->
              st.local_stores <- st.local_stores + 1;
              st.local_loads <- st.local_loads + 1
          | Codegen.Gather.Warp_shuffle _ -> ());
          Gpusim.Cost.add st.total (Codegen.Gather.cost machine l ~axis plan)
      | Program.Join { a; b } ->
          legacy_normalize a;
          let la = layout_of prog a in
          let lb = layout_of prog b in
          if not (Layout.equal lb la) then
            convert_to st prog ~at:i ~src:b ~dst:la ~dst_kind:(kind_of a) ~ldmatrix_ok:false;
          (* The new trailing dimension of size 2 is selected by a fresh
             lowest register bit, so the joined pair sits in consecutive
             registers. *)
          let new_dim = Array.length shape - 1 in
          let joined =
            Layout.make
              ~ins:
                (List.map
                   (fun (d, bits) ->
                     (d, if d = Dims.register then bits + 1 else bits))
                   (if Layout.has_in_dim la Dims.register then Layout.in_dims la
                    else (Dims.register, 0) :: Layout.in_dims la))
              ~outs:((Dims.dim new_dim, 1) :: Layout.out_dims la)
              ~bases:
                (List.map
                   (fun (d, bits) ->
                     let images = List.init bits (Layout.basis la d) in
                     ( d,
                       if d = Dims.register then [ (Dims.dim new_dim, 1) ] :: images
                       else images ))
                   (if Layout.has_in_dim la Dims.register then Layout.in_dims la
                    else (Dims.register, 0) :: Layout.in_dims la))
          in
          set i joined (kind_of a)
      | Program.Split { src; half = _ } ->
          legacy_normalize src;
          let l = layout_of prog src in
          let last = Array.length shape in
          let reduced =
            Sliced.compress (Layout.remove_out_dim l (Dims.dim last)) ~in_dim:Dims.register
          in
          set i reduced (kind_of src)
      | Program.Scan { src; axis; reverse } ->
          legacy_normalize src;
          let l = layout_of prog src in
          (* Scans are layout-preserving: an in-register sequential part,
             a Hillis-Steele warp scan over the lane bits on the axis,
             then partial sums through shared memory across warps.
             Reverse scans relabel indices with the affine flip
             (Section 8) at zero cost in the linear system; legacy
             Triton miscompiled them (the associative_scan reverse=True
             bug cited in Section 5.1). *)
          set i l (kind_of src);
          if st.mode = Legacy_mode && reverse then
            st.unsupported <-
              Printf.sprintf "reverse scan over %s layout miscompiles in legacy Triton"
                (Legacy.Support.kind_name (kind_of src))
              :: st.unsupported;
          if st.mode = Legacy_mode && st.saw_reduce then
            st.unsupported <-
              "mixing tl.sum and tl.cumsum in one kernel miscompiles in legacy Triton"
              :: st.unsupported;
          let axis_comp in_dim =
            List.init (Layout.in_bits l in_dim) Fun.id
            |> List.filter (fun kbit ->
                   List.assoc_opt (Dims.dim axis) (Layout.basis l in_dim kbit)
                   |> Option.value ~default:0 <> 0)
            |> List.length
          in
          let regs = 1 lsl Layout.in_bits l Dims.register in
          let warps = 1 lsl Layout.in_bits l Dims.warp in
          let lane_rounds = axis_comp Dims.lane and warp_rounds = axis_comp Dims.warp in
          st.total.Gpusim.Cost.alu <- st.total.Gpusim.Cost.alu + (2 * regs);
          st.total.Gpusim.Cost.shuffles <-
            st.total.Gpusim.Cost.shuffles + (lane_rounds * regs * warps);
          if warp_rounds > 0 then begin
            st.local_stores <- st.local_stores + 1;
            st.local_loads <- st.local_loads + 1;
            st.total.Gpusim.Cost.smem_insts <- st.total.Gpusim.Cost.smem_insts + (2 * warps);
            st.total.Gpusim.Cost.smem_wavefronts <-
              st.total.Gpusim.Cost.smem_wavefronts + (2 * warps);
            st.total.Gpusim.Cost.barriers <- st.total.Gpusim.Cost.barriers + 1
          end
      | Program.Convert { src } ->
          (* Explicit conversions carry no target here; keep the source
             layout (the engine inserts its own accounting elsewhere). *)
          set i (layout_of prog src) (kind_of src))
    (Program.instrs prog);
  {
    cost = st.total;
    conversions = List.rev st.convs;
    converts = st.converts;
    noop_converts = st.noops;
    local_loads = st.local_loads;
    local_stores = st.local_stores;
    remats = st.remats;
    unsupported = List.rev st.unsupported;
  }
