(* The engine is a pass pipeline (see Pass, Passes, Pass_manager); this
   module is the stable entry point, re-exporting the pipeline's types
   so call sites predating the split compile unchanged. *)

type mode = Pass.mode = Linear | Legacy_mode

type conversion_info = Pass.conversion_info = {
  at : Program.id;
  mechanism : string;
  conv_cost : Gpusim.Cost.t;
  plan : Codegen.Conversion.plan option;
}

type result = Pass.result = {
  cost : Gpusim.Cost.t;
  conversions : conversion_info list;
  converts : int;
  noop_converts : int;
  local_loads : int;
  local_stores : int;
  remats : int;
  unsupported : string list;
}

let time machine r = Gpusim.Cost.estimate machine r.cost

type strategy = Greedy | Search of Assign_search.params

let run machine ~mode ?num_warps ?trace ?(strategy = Greedy) prog =
  match strategy with
  | Greedy ->
      let st = Pass.init machine ~mode ?num_warps ?trace prog in
      let (_ : Pass_manager.report) =
        Pass_manager.run (Pass_manager.config Passes.default) st
      in
      Pass.result st
  | Search params ->
      (Assign_search.run machine ~mode ?num_warps ?trace ~params prog)
        .Assign_search.result
