(** A miniature tile-level tensor IR mirroring Triton's op categories
    (Section 4.4): memory ops, computation ops, shape ops, and layout
    conversions.  Programs are SSA: an instruction is identified by its
    index. *)

type id = int

type node =
  | Load of { name : string }  (** global-memory load (anchor) *)
  | Iota of { axis : int }  (** [tl.arange]: the coordinate along [axis] *)
  | Full of { value : float }  (** a constant tensor *)
  | Store of { src : id }  (** global-memory store (anchor) *)
  | Elementwise of { name : string; srcs : id list }
  | Dot of { a : id; b : id }  (** [m,k] x [k,n] -> [m,n] *)
  | Reduce of { src : id; axis : int }
  | Expand_dims of { src : id; axis : int }
  | Broadcast of { src : id }  (** size-1 dims grown to the instr shape *)
  | Trans of { src : id; perm : int array }
  | Reshape of { src : id }
  | Gather of { src : id; index : id; axis : int }
  | Join of { a : id; b : id }
      (** stack two equal-shaped values along a new trailing dim of 2 *)
  | Split of { src : id; half : int }
      (** take half [0] or [1] of a trailing dimension of size 2 *)
  | Scan of { src : id; axis : int; reverse : bool }
      (** inclusive associative scan (cumsum) along [axis] *)
  | Convert of { src : id }  (** engine-inserted layout conversion *)

type instr = {
  node : node;
  shape : int array;
  dtype : Tensor_lib.Dtype.t;
  mutable layout : Linear_layout.Layout.t option;
  mutable kind : Legacy.Support.layout_kind;
      (** which legacy layout family would carry this value; used by the
          legacy baseline, which cannot compare across kinds *)
}

type t

val create : unit -> t

(** An independent copy of the layout assignment: nodes/shapes/dtypes
    are shared (immutable), the mutable [layout]/[kind] fields are
    duplicated, so engine runs on the copy leave the original
    untouched. *)
val copy : t -> t

val instrs : t -> instr array
val instr : t -> id -> instr
val length : t -> int

(** {1 Builders} — each returns the new instruction's [id] and infers
    shape and dtype. *)

val load : t -> ?name:string -> shape:int array -> dtype:Tensor_lib.Dtype.t -> unit -> id
val iota : t -> shape:int array -> axis:int -> id
val full : t -> shape:int array -> dtype:Tensor_lib.Dtype.t -> float -> id
val store : t -> id -> id
val elementwise : t -> ?name:string -> id list -> id
val dot : t -> a:id -> b:id -> acc:Tensor_lib.Dtype.t -> id
val reduce : t -> id -> axis:int -> id
val expand_dims : t -> id -> axis:int -> id
val broadcast : t -> id -> shape:int array -> id
val trans : t -> id -> perm:int array -> id
val reshape : t -> id -> shape:int array -> id
val gather : t -> src:id -> index:id -> axis:int -> id
val join : t -> a:id -> b:id -> id
val split : t -> id -> half:int -> id
val scan : t -> id -> axis:int -> reverse:bool -> id

(** Used by the engine only. *)
val insert_convert : t -> id -> dtype:Tensor_lib.Dtype.t -> id

(** Counts of IR ops by category, for the Table 6 style statistics. *)
val count : t -> (node -> bool) -> int

val pp : Format.formatter -> t -> unit
