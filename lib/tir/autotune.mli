(** Cost-model-driven configuration search — the "holistic performance
    model for autotuning" the paper names as future work, over the knobs
    our engine exposes. *)

type config = { num_warps : int }

val default_configs : config list

(** How a candidate's result is priced:
    - [`Model] (default): the planners' cost model, {!Engine.time};
    - [`Static]: conversions with a warp-level lowering are re-priced
      with the exact static cost of their instruction streams
      ({!Analysis.Static_cost}), with a differential assertion that the
      static cost equals what the interpreter would account (raises
      [Failure] on divergence — i.e. on an analyzer bug);
    - [`Interp]: the same, but by interpreting each stream on concrete
      state — the expensive ground truth [`Static] replaces.

    [`Static] and [`Interp] therefore always pick the same winner. *)
type rank = [ `Model | `Static | `Interp ]

(** [candidate_time ?rank machine result] is the scalar the search
    minimizes. *)
val candidate_time : ?rank:rank -> Gpusim.Machine.t -> Engine.result -> float

(** [best machine ~mode ~build ~size] runs the layout engine under each
    configuration and returns the cheapest one with its result.

    [domains] (default 1) evaluates configurations on that many OCaml 5
    domains through {!Par_eval.map}.  Configurations are assigned
    round-robin by index and the results merged in index order with a
    strict comparison, so the returned configuration and cost are
    identical for any domain count; each domain owns private
    layout/plan caches (see {!Linear_layout.Layout.Memo} and
    {!Codegen.Plan_cache}).  [strategy] selects the layout-assignment
    strategy each candidate runs under (default [Engine.Greedy]). *)
val best :
  ?domains:int ->
  ?rank:rank ->
  ?strategy:Engine.strategy ->
  Gpusim.Machine.t ->
  mode:Engine.mode ->
  build:(size:int -> Program.t) ->
  size:int ->
  config * Engine.result

(** Speedup of the tuned configuration over the 4-warp default. *)
val tuning_gain :
  Gpusim.Machine.t -> mode:Engine.mode -> build:(size:int -> Program.t) -> size:int -> float
