(** Cost-model-driven configuration search — the "holistic performance
    model for autotuning" the paper names as future work, over the knobs
    our engine exposes. *)

type config = { num_warps : int }

val default_configs : config list

(** [best machine ~mode ~build ~size] runs the layout engine under each
    configuration and returns the cheapest one with its result.

    [domains] (default 1) evaluates configurations on that many OCaml 5
    domains.  Configurations are assigned round-robin by index and the
    results merged in index order with a strict comparison, so the
    returned configuration and cost are identical for any domain count;
    each domain owns private layout/plan caches (see
    {!Linear_layout.Layout.Memo} and {!Codegen.Plan_cache}). *)
val best :
  ?domains:int ->
  Gpusim.Machine.t ->
  mode:Engine.mode ->
  build:(size:int -> Program.t) ->
  size:int ->
  config * Engine.result

(** Speedup of the tuned configuration over the 4-warp default. *)
val tuning_gain :
  Gpusim.Machine.t -> mode:Engine.mode -> build:(size:int -> Program.t) -> size:int -> float
