open Linear_layout
module Affine = Analysis.Transval.Affine

(* {1 Per-pass certification}

   A pass is semantics-preserving iff every change it makes to the
   blackboard is justified: an in-place re-layout must be covered by a
   conversion request recording the move, and a discharged work item
   must either be a semantic no-op or be replaced by an equivalent
   decision (a remat, a store-layout commitment).  Everything is decided
   over the flattened F2 maps, so an unjustified change always comes
   with a minimal counterexample bit-vector (weight at most 1). *)

type snapshot = { layouts : Layout.t option array; pending : Pass.pending list }

type pass_cert = {
  pass : string;
  relayouts : int;  (** justified in-place layout changes *)
  discharged : int;  (** work items folded, remat-swapped or resolved *)
  refuted : int;  (** LL62x errors this pass triggered *)
}

(* Work items are tracked by the physical identity of their payload, not
   of the variant cell: a pass rebuilding its pending list with
   [List.filter_map] re-wraps the records it keeps (e.g.
   [backward_remat] returning [Some (Convert r)]), so only the inner
   record is stable across the pass.  Remats carry no payload record and
   are compared structurally — two remats of the same source at the same
   site are interchangeable. *)
let same_item a b =
  match (a, b) with
  | Pass.Convert r1, Pass.Convert r2 -> r1 == r2
  | Pass.Store_decision s1, Pass.Store_decision s2 -> s1 == s2
  | ( Pass.Remat { remat_at = a1; remat_src = s1 },
      Pass.Remat { remat_at = a2; remat_src = s2 } ) ->
      a1 = a2 && s1 = s2
  | _ -> false

let mem_item p l = List.exists (same_item p) l

let take_snapshot (st : Pass.state) =
  {
    layouts =
      Array.map (fun (ins : Program.instr) -> ins.Program.layout)
        (Program.instrs st.Pass.prog);
    pending = st.Pass.pending;
  }

let pp_witness ppf (h, bits) = F2.Bitvec.pp ~width:(max 1 bits) ppf h

(* Added requests with source [i] form a rewrite system over layouts
   (src_layout -> dst); an in-place re-layout from [a] to [b] is
   justified iff [b] is reachable from [a] through it.  The closure
   matters: one operand consumed by two dots is re-layouted twice in a
   single forward walk, each step covered by its own request. *)
let reachable ~added ~src:i a b =
  let steps =
    List.filter_map
      (function
        | Pass.Convert (r : Pass.request) when r.Pass.src = i ->
            Some (r.Pass.src_layout, r.Pass.dst)
        | _ -> None)
      added
  in
  let rec close frontier seen =
    match frontier with
    | [] -> false
    | l :: rest ->
        if Layout.equal l b then true
        else
          let nexts =
            List.filter_map
              (fun (s, d) ->
                if Layout.equal s l && not (List.exists (Layout.equal d) seen) then
                  Some d
                else None)
              steps
          in
          close (nexts @ rest) (nexts @ seen)
  in
  close [ a ] [ a ]

let diff_layouts ~pass snap (st : Pass.state) ~added =
  let relayouts = ref 0 and diags = ref [] in
  Array.iteri
    (fun i (ins : Program.instr) ->
      match (snap.layouts.(i), ins.Program.layout) with
      | Some _, None ->
          diags :=
            Diagnostics.error ~code:"LL621" ~loc:(Diagnostics.Tir_instr i)
              "pass %s dropped the layout assignment of %%%d" pass i
            :: !diags
      | Some a, Some b when not (Layout.equal a b) ->
          if reachable ~added ~src:i a b then incr relayouts
          else begin
            match Affine.counterexample (Affine.of_layout a) (Affine.of_layout b) with
            | None ->
                (* Same flattened map: a pure relabeling of the logical
                   dims, semantically the identity. *)
                incr relayouts
            | Some h ->
                diags :=
                  Diagnostics.error ~code:"LL620" ~loc:(Diagnostics.Tir_instr i)
                    "pass %s changed the layout of %%%d without a recorded conversion: \
                     hardware point %a maps to different logical elements"
                    pass i pp_witness
                    (h, Layout.total_in_bits a)
                  :: !diags
          end
      | _ -> ())
    (Program.instrs st.Pass.prog);
  (!relayouts, List.rev !diags)

let diff_pending ~pass snap (st : Pass.state) ~added =
  let discharged = ref 0 and diags = ref [] in
  let refute ~loc fmt =
    Format.kasprintf
      (fun m -> diags := Diagnostics.error ~code:"LL622" ~loc "%s" m :: !diags)
      fmt
  in
  let final_layout i = (Program.instr st.Pass.prog i).Program.layout in
  List.iter
    (fun p ->
      if not (mem_item p st.Pass.pending) then
        match p with
        | Pass.Convert r ->
            let folded =
              (* [simplify]: structurally equal layouts need no code. *)
              Layout.equal r.Pass.src_layout r.Pass.dst
              || Affine.counterexample
                   (Affine.of_layout r.Pass.src_layout)
                   (Affine.of_layout r.Pass.dst)
                 = None
            in
            let remat_swapped =
              List.exists
                (function
                  | Pass.Remat { remat_at; remat_src } ->
                      remat_at = r.Pass.at && remat_src = r.Pass.src
                  | _ -> false)
                added
            in
            if folded || remat_swapped then incr discharged
            else
              let h =
                Option.value ~default:0
                  (Affine.counterexample
                     (Affine.of_layout r.Pass.src_layout)
                     (Affine.of_layout r.Pass.dst))
              in
              refute ~loc:(Diagnostics.Tir_instr r.Pass.at)
                "pass %s dropped the conversion request for %%%d without \
                 justification: hardware point %a still disagrees"
                pass r.Pass.src pp_witness
                (h, Layout.total_in_bits r.Pass.src_layout)
        | Pass.Store_decision sc -> (
            match final_layout sc.Pass.store_at with
            | Some l when Layout.equal l sc.Pass.store_src_layout ->
                (* Direct store through the producer's layout. *)
                incr discharged
            | Some l
              when Layout.equal l sc.Pass.store_anchor
                   && List.exists
                        (function
                          | Pass.Convert (r : Pass.request) ->
                              r.Pass.at = sc.Pass.store_at
                              && Layout.equal r.Pass.src_layout
                                   sc.Pass.store_src_layout
                              && Layout.equal r.Pass.dst sc.Pass.store_anchor
                          | _ -> false)
                        added ->
                (* Store through the coalesced anchor, conversion queued. *)
                incr discharged
            | _ ->
                refute ~loc:(Diagnostics.Tir_instr sc.Pass.store_at)
                  "pass %s resolved the store decision at %%%d to a layout that \
                   is neither the producer's nor the anchor with a queued \
                   conversion"
                  pass sc.Pass.store_at)
        | Pass.Remat { remat_at; remat_src } ->
            refute ~loc:(Diagnostics.Tir_instr remat_at)
              "pass %s dropped the rematerialization of %%%d at %%%d" pass remat_src
              remat_at)
    snap.pending;
  (!discharged, List.rev !diags)

let certify_pass ~pass snap (st : Pass.state) =
  let added =
    List.filter (fun p -> not (mem_item p snap.pending)) st.Pass.pending
  in
  let relayouts, d1 = diff_layouts ~pass snap st ~added in
  let discharged, d2 = diff_pending ~pass snap st ~added in
  let diags = d1 @ d2 in
  if Obs.enabled () then begin
    Obs.Metrics.incr "transval.passes.checked";
    if diags <> [] then
      Obs.Metrics.incr ~by:(List.length diags) "transval.passes.refuted"
  end;
  ({ pass; relayouts; discharged; refuted = List.length diags }, diags)

(* {1 The observer} *)

type observer = {
  mutable snap : snapshot option;
  mutable certs : pass_cert list;  (* reverse pass order *)
}

let observer () = { snap = None; certs = [] }
let before_pass obs : Pass_manager.hook = fun _ st -> obs.snap <- Some (take_snapshot st)

(* Runs inside the pass manager's attribution window, so the LL62x
   diagnostics appended here are tagged with the offending pass. *)
let after_pass obs : Pass_manager.hook =
 fun pass st ->
  match obs.snap with
  | None -> ()
  | Some snap ->
      obs.snap <- None;
      let cert, diags = certify_pass ~pass snap st in
      obs.certs <- cert :: obs.certs;
      if diags <> [] then st.Pass.diags <- st.Pass.diags @ diags

(* {1 The driver} *)

type report = {
  mode : Pass.mode;
  result : Pass.result;
  pass_certs : pass_cert list;
  plan_certs : (Program.id * Analysis.Transval.cert) list;
  diags : Diagnostics.t list;
}

let cert_codes = [ "LL620"; "LL621"; "LL622"; "LL623"; "LL650"; "LL651"; "LL652" ]

let cert_errors r =
  List.filter
    (fun (d : Diagnostics.t) ->
      d.Diagnostics.severity = Diagnostics.Error && List.mem d.Diagnostics.code cert_codes)
    r.diags

let proved r = cert_errors r = []

let status r =
  if cert_errors r <> [] then "refuted"
  else match r.mode with Pass.Legacy_mode -> "skipped" | Pass.Linear -> "proved"

let run machine ~mode ?num_warps ?trace ?chooser prog =
  Obs.Span.with_ "certify"
    ~attrs:[ ("mode", match mode with Pass.Linear -> "linear" | _ -> "legacy") ]
    (fun () ->
      let st = Pass.init machine ~mode ?num_warps ?trace ?chooser prog in
      let obs = observer () in
      let (_ : Pass_manager.report) =
        Pass_manager.run
          (Pass_manager.config ~before_pass:(before_pass obs)
             ~after_pass:(after_pass obs) Passes.default)
          st
      in
      let plan_certs, plan_diags = Pass_certify.certs_of st in
      {
        mode;
        result = Pass.result st;
        pass_certs = List.rev obs.certs;
        plan_certs;
        diags = st.Pass.diags @ plan_diags;
      })

(* {1 Rendering} *)

let pp ppf r =
  Format.fprintf ppf "%-20s %9s %10s %7s@." "pass" "relayouts" "discharged" "refuted";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-20s %9d %10d %7d@." c.pass c.relayouts c.discharged
        c.refuted)
    r.pass_certs;
  List.iter
    (fun (at, (c : Analysis.Transval.cert)) ->
      Format.fprintf ppf "plan %%%-3d %-24s %-9s %6d points  %s@." at c.mechanism
        (Analysis.Transval.method_name c.Analysis.Transval.method_)
        c.Analysis.Transval.points
        (Analysis.Transval.verdict_name c.Analysis.Transval.verdict))
    r.plan_certs;
  Format.fprintf ppf "status: %s@." (status r);
  match cert_errors r with [] -> () | errs -> Diagnostics.pp_list ppf errs

let to_json ~kernel ~machine r =
  let e = Diagnostics.json_escape in
  let pass c =
    Printf.sprintf "{\"pass\":\"%s\",\"relayouts\":%d,\"discharged\":%d,\"refuted\":%d}"
      (e c.pass) c.relayouts c.discharged c.refuted
  in
  let plan (at, (c : Analysis.Transval.cert)) =
    Printf.sprintf
      "{\"at\":%d,\"mechanism\":\"%s\",\"method\":\"%s\",\"points\":%d,\"verdict\":\"%s\"}"
      at (e c.Analysis.Transval.mechanism)
      (Analysis.Transval.method_name c.Analysis.Transval.method_)
      c.Analysis.Transval.points
      (Analysis.Transval.verdict_name c.Analysis.Transval.verdict)
  in
  Printf.sprintf
    "{\"kernel\":\"%s\",\"machine\":\"%s\",\"mode\":\"%s\",\"status\":\"%s\",\"passes\":[%s],\"plans\":[%s],\"diagnostics\":%s}"
    (e kernel) (e machine)
    (match r.mode with Pass.Linear -> "linear" | Pass.Legacy_mode -> "legacy")
    (status r)
    (String.concat "," (List.map pass r.pass_certs))
    (String.concat "," (List.map plan r.plan_certs))
    (Diagnostics.to_json (cert_errors r))
