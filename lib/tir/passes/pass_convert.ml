open Linear_layout

let name = "insert_conversions"

let description =
  "classify and cost the surviving conversion requests (no-op / permute / \
   shuffle / swizzled smem)"

(* Materialize each surviving request with the Section 5 algorithms:
   plan the conversion (through the {!Codegen.Plan_cache}), classify its
   mechanism, and accumulate its cost and static-op statistics.
   [ldmatrix_ok] marks conversions feeding tensor-core operands, where
   NVIDIA machines can use ldmatrix on the load side; [smem_resident]
   marks wgmma operands read directly from shared memory, where only the
   store side of the staging is paid.  In legacy mode every conversion
   is a padded shared-memory round trip. *)
let convert (st : Pass.state) (r : Pass.request) =
  let machine = st.Pass.machine in
  let s = Program.instr st.Pass.prog r.Pass.src in
  let src_layout = r.Pass.src_layout in
  let dst = r.Pass.dst in
  let byte_width = Pass_util.byte_width_of s.Program.dtype in
  match st.Pass.mode with
  | Pass.Linear ->
      let plan = Codegen.Plan_cache.conversion machine ~src:src_layout ~dst ~byte_width in
      let c = Codegen.Conversion.cost machine plan in
      (match plan.Codegen.Conversion.mechanism with
      | Codegen.Conversion.No_op -> st.Pass.noops <- st.Pass.noops + 1
      | Codegen.Conversion.Register_permute | Codegen.Conversion.Warp_shuffle _
      | Codegen.Conversion.Warp_shuffle_compressed _ ->
          st.Pass.converts <- st.Pass.converts + 1
      | Codegen.Conversion.Global_roundtrip -> st.Pass.converts <- st.Pass.converts + 1
      | Codegen.Conversion.Shared_memory _ ->
          st.Pass.converts <- st.Pass.converts + 1;
          st.Pass.local_stores <- st.Pass.local_stores + 1;
          st.Pass.local_loads <- st.Pass.local_loads + 1);
      (* Tensor-core operands prefer the dedicated mma swizzle, which
         admits ldmatrix on NVIDIA hardware (Section 5.3). *)
      let c =
        match plan.Codegen.Conversion.mechanism with
        | Codegen.Conversion.Shared_memory sw when r.Pass.smem_resident ->
            (* wgmma reads this operand directly from shared memory: only
               the store side of the staging is paid (Section 6.2's
               template_attention observation). *)
            let warps = 1 lsl Layout.in_bits src_layout Dims.warp in
            let insts =
              max 1
                (1 lsl Layout.in_bits src_layout Dims.register
                / (1 lsl sw.Codegen.Swizzle_opt.vec_bits))
              * warps
            in
            let c' = Gpusim.Cost.zero () in
            c'.Gpusim.Cost.smem_insts <- insts;
            c'.Gpusim.Cost.smem_wavefronts <- insts * sw.Codegen.Swizzle_opt.store_wavefronts;
            c'.Gpusim.Cost.barriers <- 1;
            c'.Gpusim.Cost.alu <- 2 * insts;
            c'
        | Codegen.Conversion.Shared_memory _ when r.Pass.ldmatrix_ok -> (
            match Codegen.Plan_cache.staging machine ~src:src_layout ~dst ~byte_width with
            | Some staging
              when Gpusim.Cost.estimate machine
                     staging.Codegen.Operand_staging.staging_cost
                   < Gpusim.Cost.estimate machine c ->
                staging.Codegen.Operand_staging.staging_cost
            | _ -> c)
        | _ -> c
      in
      Gpusim.Cost.add st.Pass.total c;
      if plan.Codegen.Conversion.mechanism <> Codegen.Conversion.No_op then
        st.Pass.convs <-
          {
            Pass.at = r.Pass.at;
            mechanism = Codegen.Conversion.mechanism_name plan.Codegen.Conversion.mechanism;
            conv_cost = c;
            plan = Some plan;
          }
          :: st.Pass.convs
  | Pass.Legacy_mode ->
      if r.Pass.src_kind = r.Pass.dst_kind && Layout.equal src_layout dst then
        st.Pass.noops <- st.Pass.noops + 1
      else begin
        let c =
          if r.Pass.smem_resident then
            Legacy.Convert.store_only_cost machine ~src:src_layout ~dst ~byte_width
          else Legacy.Convert.cost machine ~src:src_layout ~dst ~byte_width
        in
        st.Pass.converts <- st.Pass.converts + 1;
        st.Pass.local_stores <- st.Pass.local_stores + 1;
        st.Pass.local_loads <- st.Pass.local_loads + 1;
        Gpusim.Cost.add st.Pass.total c;
        st.Pass.convs <-
          {
            Pass.at = r.Pass.at;
            mechanism = "shared memory (padded)";
            conv_cost = c;
            plan = None;
          }
          :: st.Pass.convs
      end

let run (st : Pass.state) =
  List.iter
    (function
      | Pass.Convert r -> convert st r
      | Pass.Store_decision _ | Pass.Remat _ ->
          (* Store decisions are resolved by [backward_remat]; remats
             are already paid for. *)
          ())
    (List.rev st.Pass.pending)
