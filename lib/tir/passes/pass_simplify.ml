open Linear_layout

let name = "simplify"
let description = "fold conversion requests whose source already has the target layout"

(* Equal-layout folding: a foldable request whose snapshot source layout
   structurally equals its destination needs no code at all — not even a
   no-op plan.  This runs before [backward_remat] on purpose: a folded
   request must not be considered for rematerialization (in legacy mode
   the padded-roundtrip estimate for an equal-layout pair is nonzero, so
   a cheap chain could otherwise "win" against a conversion that never
   needed to exist). *)
let run (st : Pass.state) =
  st.Pass.pending <-
    List.filter
      (function
        | Pass.Convert r when r.Pass.foldable && Layout.equal r.Pass.src_layout r.Pass.dst
          ->
            st.Pass.folded <- st.Pass.folded + 1;
            false
        | _ -> true)
      st.Pass.pending
