(** Conversion insertion: plans, classifies and costs every surviving
    conversion request with the Section 5 algorithms (no-op detection,
    register permutation, warp shuffles, optimal swizzling, ldmatrix
    staging), or the legacy padded shared-memory round trip. *)

val name : string
val description : string
val run : Pass.state -> unit
