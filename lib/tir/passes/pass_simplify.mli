(** Equal-layout folding: drops foldable conversion requests whose
    source already carries the requested layout, before the backward
    pass can consider them for rematerialization. *)

val name : string
val description : string
val run : Pass.state -> unit
