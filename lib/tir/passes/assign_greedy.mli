(** The default strategy: the paper's Section 4.4 greedy walk.

    Commits the default anchor, the first operand's layout at
    elementwise ties, rematerialization exactly when the chain estimate
    beats the conversion estimate, and direct stores unless the
    anchor route is strictly cheaper — bit-identical to the engine
    before the strategy split. *)

val choose : Strategy.site -> int
val strategy : Strategy.t
