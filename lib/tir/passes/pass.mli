(** The typed pipeline state shared by the layout-engine passes, and
    the uniform signature every pass implements.

    The engine of Section 4.4 is staged as a pass pipeline (see
    {!Passes} for the registry and {!Pass_manager} for the driver):
    passes communicate exclusively through {!state} — the program with
    its in-place layout assignment, the pending conversion work-list,
    the recorded global/register access events, accumulated cost and
    statistics, and diagnostics. *)

open Linear_layout

type mode = Linear | Legacy_mode

type conversion_info = {
  at : Program.id;
  mechanism : string;
  conv_cost : Gpusim.Cost.t;
  plan : Codegen.Conversion.plan option;
}

type result = {
  cost : Gpusim.Cost.t;
  conversions : conversion_info list;
  converts : int;
  noop_converts : int;
  local_loads : int;
  local_stores : int;
  remats : int;
  unsupported : string list;
}

type request = {
  at : Program.id;  (** instruction requiring the converted value *)
  src : Program.id;
  src_layout : Layout.t;
      (** snapshot of [src]'s layout when the request was created: the
          dot pass and legacy normalization mutate layouts in place
          after requests referring to the old value were issued *)
  src_kind : Legacy.Support.layout_kind;  (** snapshot, like [src_layout] *)
  dst : Layout.t;
  dst_kind : Legacy.Support.layout_kind;
  ldmatrix_ok : bool;  (** feeds a tensor-core operand (Section 5.3) *)
  smem_resident : bool;  (** wgmma reads the operand from shared memory *)
  foldable : bool;
      (** equal-layout requests may be dropped by [simplify]; legacy
          normalization requests are unconditional and not foldable *)
  remat_candidate : bool;
      (** eligible for backward rematerialization (Section 4.4) *)
}

type store_candidate = {
  store_at : Program.id;
  store_src : Program.id;
  store_src_layout : Layout.t;  (** snapshot, as in {!request} *)
  store_src_kind : Legacy.Support.layout_kind;
  store_anchor : Layout.t;  (** the coalesced blocked anchor layout *)
}

type pending =
  | Convert of request
  | Store_decision of store_candidate
      (** resolved by [backward_remat] into a direct store or a
          [Convert] to the anchor *)
  | Remat of { remat_at : Program.id; remat_src : Program.id }
      (** a conversion replaced by recomputing [remat_src]'s cheap
          load/elementwise chain in the consumer's layout *)

type access_kind = Global_load | Global_store | Register_materialize

type access = {
  access_at : Program.id;
  access_kind : access_kind;
  access_layout : Layout.t;
      (** snapshot at anchor/decision time (dot may re-layout the
          instruction later; the access was planned against this) *)
  access_byte_width : int;
}

type state = {
  machine : Gpusim.Machine.t;
  mode : mode;
  num_warps : int;
  trace : Obs.Trace.t option;
      (** when set, the {!Pass_manager} installs this sink (enabling
          spans and metrics) for the duration of the run *)
  chooser : Strategy.t;
      (** commits one candidate per layout-assignment decision site
          (see {!Strategy}); {!Assign_greedy.strategy} by default *)
  prog : Program.t;
  total : Gpusim.Cost.t;
  chain_cost : (Program.id, Gpusim.Cost.t) Hashtbl.t;
      (** per-instruction cost of recomputing the value from loads
          through elementwise ops, when such a cheap chain exists *)
  mutable pending : pending list;  (** reverse creation order *)
  mutable accesses : access list;  (** reverse creation order *)
  mutable convs : conversion_info list;  (** reverse creation order *)
  mutable converts : int;
  mutable noops : int;
  mutable local_loads : int;
  mutable local_stores : int;
  mutable remats : int;
  mutable folded : int;  (** requests dropped by [simplify] *)
  mutable unsupported : string list;  (** reverse creation order *)
  mutable saw_reduce : bool;
  mutable decisions : (Strategy.site * int) list;
      (** every decision site observed this run with the committed
          choice, reverse site order *)
  mutable diags : Diagnostics.t list;  (** emission order *)
}

(** The uniform pass interface. [run] mutates the {!state}; the
    {!Pass_manager} provides instrumentation around it. *)
module type PASS = sig
  val name : string
  val description : string
  val run : state -> unit
end

type t = (module PASS)

(** [init machine ~mode prog] resets the program's layout assignment
    (making engine reruns idempotent) and returns a fresh state.
    [num_warps] defaults to 4.  [trace], if given, is installed as the
    observability sink while the {!Pass_manager} runs this state.
    [chooser] selects the layout-assignment strategy (greedy by
    default). *)
val init :
  Gpusim.Machine.t ->
  mode:mode ->
  ?num_warps:int ->
  ?trace:Obs.Trace.t ->
  ?chooser:Strategy.t ->
  Program.t ->
  state

(** Ask the state's strategy to commit a candidate for [site],
    recording the decision in {!state.decisions}. *)
val decide : state -> Strategy.site -> int

(** Package the accumulated statistics (restoring creation order of the
    conversion and unsupported lists). *)
val result : state -> result

(** Layout of instruction [i]; raises if no pass assigned one yet. *)
val layout_of : state -> Program.id -> Layout.t

val kind_of : state -> Program.id -> Legacy.Support.layout_kind
val set : state -> Program.id -> Layout.t -> Legacy.Support.layout_kind -> unit

(** Append a warning diagnostic to the state (tagged with the running
    pass's name by the {!Pass_manager}). *)
val warn :
  state ->
  code:string ->
  ?loc:Diagnostics.loc ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
