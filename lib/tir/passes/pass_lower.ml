open Linear_layout

let name = "lower"

let description =
  "lower recorded global/register accesses through the coalescing model into \
   instruction and transaction counts"

(* Every global access event recorded by [anchor] and [backward_remat]
   is lowered here: the layout's flattened F2 matrix gives the byte
   address of each (register, lane) pair, the machine's coalescer groups
   them into transactions, and register materializations cost one ALU op
   per register element.  Kept separate from the walks that planned the
   accesses so the planning passes stay target-cost free and the per-op
   coalescing work shows up in its own timing bucket. *)
let run (st : Pass.state) =
  List.iter
    (fun (a : Pass.access) ->
      match a.Pass.access_kind with
      | Pass.Register_materialize ->
          st.Pass.total.Gpusim.Cost.alu <-
            st.Pass.total.Gpusim.Cost.alu
            + (1 lsl Layout.in_bits a.Pass.access_layout Dims.register)
      | Pass.Global_load | Pass.Global_store ->
          let byte_width = a.Pass.access_byte_width in
          let vec = Pass_util.vec_for st a.Pass.access_layout ~byte_width in
          let insts, tx =
            Pass_util.global_access_counts a.Pass.access_layout ~byte_width ~vec
          in
          st.Pass.total.Gpusim.Cost.gmem_insts <-
            st.Pass.total.Gpusim.Cost.gmem_insts + insts;
          st.Pass.total.Gpusim.Cost.gmem_transactions <-
            st.Pass.total.Gpusim.Cost.gmem_transactions + tx)
    (List.rev st.Pass.accesses);
  (* A store with no layout means no access was planned for it — the
     backward pass was skipped.  The cost model is then incomplete. *)
  Array.iteri
    (fun i (ins : Program.instr) ->
      match (ins.Program.node, ins.Program.layout) with
      | Program.Store _, None ->
          Pass.warn st ~code:"LL701" ~loc:(Diagnostics.Tir_instr i)
            "store has no layout: no global access lowered (was backward_remat \
             disabled?)"
      | _ -> ())
    (Program.instrs st.Pass.prog)
