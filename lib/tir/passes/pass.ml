open Linear_layout

type mode = Linear | Legacy_mode

type conversion_info = {
  at : Program.id;
  mechanism : string;
  conv_cost : Gpusim.Cost.t;
  plan : Codegen.Conversion.plan option;
}

type result = {
  cost : Gpusim.Cost.t;
  conversions : conversion_info list;
  converts : int;
  noop_converts : int;
  local_loads : int;
  local_stores : int;
  remats : int;
  unsupported : string list;
}

type request = {
  at : Program.id;
  src : Program.id;
  src_layout : Layout.t;
  src_kind : Legacy.Support.layout_kind;
  dst : Layout.t;
  dst_kind : Legacy.Support.layout_kind;
  ldmatrix_ok : bool;
  smem_resident : bool;
  foldable : bool;
  remat_candidate : bool;
}

type store_candidate = {
  store_at : Program.id;
  store_src : Program.id;
  store_src_layout : Layout.t;
  store_src_kind : Legacy.Support.layout_kind;
  store_anchor : Layout.t;
}

type pending =
  | Convert of request
  | Store_decision of store_candidate
  | Remat of { remat_at : Program.id; remat_src : Program.id }

type access_kind = Global_load | Global_store | Register_materialize

type access = {
  access_at : Program.id;
  access_kind : access_kind;
  access_layout : Layout.t;
  access_byte_width : int;
}

type state = {
  machine : Gpusim.Machine.t;
  mode : mode;
  num_warps : int;
  trace : Obs.Trace.t option;
      (* sink the Pass_manager installs for the duration of the run *)
  chooser : Strategy.t;
      (* commits one candidate per decision site; greedy by default *)
  prog : Program.t;
  total : Gpusim.Cost.t;
  chain_cost : (Program.id, Gpusim.Cost.t) Hashtbl.t;
  mutable pending : pending list;  (* reverse creation order *)
  mutable accesses : access list;  (* reverse creation order *)
  mutable convs : conversion_info list;  (* reverse creation order *)
  mutable converts : int;
  mutable noops : int;
  mutable local_loads : int;
  mutable local_stores : int;
  mutable remats : int;
  mutable folded : int;
  mutable unsupported : string list;  (* reverse creation order *)
  mutable saw_reduce : bool;
  mutable decisions : (Strategy.site * int) list;  (* reverse site order *)
  mutable diags : Diagnostics.t list;  (* emission order *)
}

module type PASS = sig
  val name : string
  val description : string
  val run : state -> unit
end

type t = (module PASS)

let init machine ~mode ?(num_warps = 4) ?trace
    ?(chooser = Assign_greedy.strategy) prog =
  (* Engine reruns must be idempotent: the passes mutate the program's
     layout fields in place, so start every run from the unassigned
     state rather than whatever a previous run (possibly in the other
     mode) left behind. *)
  Array.iter
    (fun (ins : Program.instr) ->
      ins.Program.layout <- None;
      ins.Program.kind <- Legacy.Support.Blocked)
    (Program.instrs prog);
  {
    machine;
    mode;
    num_warps;
    trace;
    chooser;
    prog;
    total = Gpusim.Cost.zero ();
    chain_cost = Hashtbl.create 32;
    pending = [];
    accesses = [];
    convs = [];
    converts = 0;
    noops = 0;
    local_loads = 0;
    local_stores = 0;
    remats = 0;
    folded = 0;
    unsupported = [];
    saw_reduce = false;
    decisions = [];
    diags = [];
  }

let decide st site =
  let c = st.chooser.Strategy.choose site in
  st.decisions <- (site, c) :: st.decisions;
  c

let result st =
  {
    cost = st.total;
    conversions = List.rev st.convs;
    converts = st.converts;
    noop_converts = st.noops;
    local_loads = st.local_loads;
    local_stores = st.local_stores;
    remats = st.remats;
    unsupported = List.rev st.unsupported;
  }

let layout_of st i =
  match (Program.instr st.prog i).Program.layout with
  | Some l -> l
  | None -> failwith "Engine: source instruction has no layout (use-before-def?)"

let kind_of st i = (Program.instr st.prog i).Program.kind

let set st i layout kind =
  let ins = Program.instr st.prog i in
  ins.Program.layout <- Some layout;
  ins.Program.kind <- kind

let warn st ~code ?loc fmt =
  Format.kasprintf
    (fun message ->
      st.diags <- st.diags @ [ Diagnostics.warning ~code ?loc "%s" message ])
    fmt
