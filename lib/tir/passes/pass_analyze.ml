let name = "analyze"

let description =
  "run the verifier and static-analysis lints over the final assignment \
   (linear mode)"

(* The lib/analysis checkers as a pipeline citizen: the LL6xx verifier
   re-derives every instruction's layout obligations, and the Lint
   driver sweeps coalescing, broadcast redundancy, bank certification
   and race checks over the materialized conversions.  Legacy-mode
   assignments are not verified: the baseline rewrites unsupported
   layouts in place (its forced normalization conversions), so the
   per-op relations are not observable on the final state. *)
let run (st : Pass.state) =
  match st.Pass.mode with
  | Pass.Legacy_mode -> ()
  | Pass.Linear ->
      let ds =
        Verifier.program st.Pass.prog
        @ Lint.passes st.Pass.machine st.Pass.prog ~result:(Pass.result st)
      in
      st.Pass.diags <- st.Pass.diags @ ds
