(** Lowering of recorded access events: global loads/stores through the
    machine's coalescing model into instruction/transaction counts, and
    register materializations into ALU ops.  Emits [LL701] when a store
    was never planned (backward pass skipped). *)

val name : string
val description : string
val run : Pass.state -> unit
