(** Anchor assignment: coalesced blocked layouts for global loads and
    register-computable values, access-event recording, and chain-cost
    seeds for backward rematerialization (Section 4.4). *)

val name : string
val description : string
val run : Pass.state -> unit
