let anchor : Pass.t = (module Pass_anchor)
let forward_propagate : Pass.t = (module Pass_forward)
let simplify : Pass.t = (module Pass_simplify)
let backward_remat : Pass.t = (module Pass_remat)
let insert_conversions : Pass.t = (module Pass_convert)
let lower : Pass.t = (module Pass_lower)
let analyze : Pass.t = (module Pass_analyze)
let certify : Pass.t = (module Pass_certify)

(* [simplify] must precede [backward_remat]: folded requests must never
   be considered for rematerialization (see Pass_simplify). *)
let default =
  [ anchor; forward_propagate; simplify; backward_remat; insert_conversions; lower ]

let all = default @ [ analyze; certify ]
let name (module P : Pass.PASS) = P.name
let description (module P : Pass.PASS) = P.description
let find n = List.find_opt (fun p -> name p = n) all
