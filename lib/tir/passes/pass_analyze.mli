(** The {!Verifier} and {!Lint} checkers as a pipeline pass: appends
    their diagnostics to the state (linear mode only; legacy
    assignments are normalized in place and not verifiable). *)

val name : string
val description : string
val run : Pass.state -> unit
