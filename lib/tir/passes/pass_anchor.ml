open Linear_layout

let name = "anchor"

let description =
  "assign blocked anchor layouts to loads/iota/full and seed remat chain costs"

(* Anchors are the instructions whose layout is chosen from the memory
   system alone: global loads get the coalesced blocked layout, and
   register-computable values (iota/full — the canonical
   rematerialization targets, computed from the lane/register id with no
   memory traffic) get the same blocked default.  Their access events
   are recorded against the anchor layout — the [lower] pass turns them
   into instruction/transaction counts — and their chain costs seed the
   backward pass's rematerialization table. *)
let run (st : Pass.state) =
  let machine = st.Pass.machine and num_warps = st.Pass.num_warps in
  Array.iteri
    (fun i (ins : Program.instr) ->
      let shape = ins.Program.shape and dtype = ins.Program.dtype in
      match ins.Program.node with
      | Program.Load _ ->
          let default = Pass_util.default_blocked machine ~num_warps ~shape ~dtype in
          let l = Pass_util.choose_anchor st ~at:i ~shape ~dtype ~default in
          Pass.set st i l Legacy.Support.Blocked;
          let byte_width = Pass_util.byte_width_of dtype in
          st.Pass.accesses <-
            {
              Pass.access_at = i;
              access_kind = Pass.Global_load;
              access_layout = l;
              access_byte_width = byte_width;
            }
            :: st.Pass.accesses;
          let vec = Pass_util.vec_for st l ~byte_width in
          let insts, tx = Pass_util.global_access_counts l ~byte_width ~vec in
          let c = Gpusim.Cost.zero () in
          c.Gpusim.Cost.gmem_insts <- insts;
          c.Gpusim.Cost.gmem_transactions <- tx;
          Hashtbl.replace st.Pass.chain_cost i c
      | Program.Iota _ | Program.Full _ ->
          let default = Pass_util.default_blocked machine ~num_warps ~shape ~dtype in
          let l = Pass_util.choose_anchor st ~at:i ~shape ~dtype ~default in
          Pass.set st i l Legacy.Support.Blocked;
          st.Pass.accesses <-
            {
              Pass.access_at = i;
              access_kind = Pass.Register_materialize;
              access_layout = l;
              access_byte_width = Pass_util.byte_width_of dtype;
            }
            :: st.Pass.accesses;
          let regs = 1 lsl Layout.in_bits l Dims.register in
          let c = Gpusim.Cost.zero () in
          c.Gpusim.Cost.alu <- regs;
          Hashtbl.replace st.Pass.chain_cost i c
      | _ -> ())
    (Program.instrs st.Pass.prog)
