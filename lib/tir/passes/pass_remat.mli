(** Backward rematerialization and store-anchor decisions
    (Section 4.4): completes the chain-cost table through elementwise
    ops, replaces conversions by cheap recomputation chains where that
    wins, and fixes each store's layout (producer layout vs coalesced
    anchor). *)

val name : string
val description : string
val run : Pass.state -> unit
