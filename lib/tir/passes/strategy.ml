open Linear_layout

(* {1 Layout-assignment decision sites}

   The Section 4.4 walk makes four kinds of choices.  Each is reified
   as a [site] the moment the pass reaches it: the pass computes the
   candidate set (and the exact estimates the greedy comparison would
   use), asks the state's strategy to commit one index, and proceeds
   with the committed candidate.  The greedy strategy reproduces
   today's engine bit for bit; a search strategy replays a prefix of
   forced choices and completes greedily (see Assign_search). *)

type anchor_site = {
  anchor_at : Program.id;
  anchor_default : Layout.t;
      (* the coalesced blocked default — choice [0], what greedy picks *)
  anchor_alternatives : (Layout.t list * int) Lazy.t;
      (* feasibility-pruned, deduplicated variants (excluding the
         default) paired with the number of candidates pruned; lazy so
         greedy runs never pay for candidate enumeration *)
}

type tie_site = {
  tie_at : Program.id;
  tie_choices : Program.id list;
      (* source ids with pairwise distinct (layout, kind); the head is
         the first source — what greedy propagates *)
}

type remat_site = {
  remat_site_at : Program.id;
  remat_site_src : Program.id;
  chain_estimate : float;  (* recomputing the source in the target layout *)
  convert_estimate : float;  (* materializing the conversion instead *)
}

type store_site = {
  store_site_at : Program.id;
  direct_estimate : float;  (* storing through the producer's layout *)
  via_anchor_estimate : float;  (* converting to the anchor, then storing *)
}

type site =
  | Anchor of anchor_site
  | Elementwise_tie of tie_site
  | Remat_or_convert of remat_site
      (* choice [0] = materialize the conversion, [1] = rematerialize *)
  | Store_direct_or_anchor of store_site
      (* choice [0] = direct store, [1] = convert to the anchor first *)

(* Forces the anchor alternatives. *)
let arity = function
  | Anchor a -> 1 + List.length (fst (Lazy.force a.anchor_alternatives))
  | Elementwise_tie t -> List.length t.tie_choices
  | Remat_or_convert _ | Store_direct_or_anchor _ -> 2

let site_at = function
  | Anchor a -> a.anchor_at
  | Elementwise_tie t -> t.tie_at
  | Remat_or_convert r -> r.remat_site_at
  | Store_direct_or_anchor s -> s.store_site_at

let site_name = function
  | Anchor _ -> "anchor"
  | Elementwise_tie _ -> "elementwise-tie"
  | Remat_or_convert _ -> "remat-or-convert"
  | Store_direct_or_anchor _ -> "store-direct-or-anchor"

(* A strategy observes one site at a time, in pipeline order, and
   commits a candidate index in [0, arity site).  It may keep private
   state across sites of one run (the replay chooser does), so a fresh
   value is built per engine run. *)
type t = { name : string; choose : site -> int }
