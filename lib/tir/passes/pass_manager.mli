(** The pipeline driver: runs a configured pass list over a
    {!Pass.state} with per-pass instrumentation — wall-clock timing,
    diagnostic attribution (each diagnostic a pass emits is tagged with
    the pass name), {!Codegen.Plan_cache} and
    {!Linear_layout.Layout.Memo} hit/miss deltas, and an optional
    dump-after-pass hook. *)

type pass_report = {
  pass : string;
  wall_ms : float;
  diagnostics : int;  (** diagnostics this pass appended *)
  cost_delta : float;
      (** change in the statically estimated cost of the accumulated
          plan ([Cost.estimate] of [state.total]) across the pass *)
  plan_cache_hits : int;  (** {!Codegen.Plan_cache} delta during the pass *)
  plan_cache_misses : int;
  memo_hits : int;  (** {!Linear_layout.Layout.Memo} delta during the pass *)
  memo_misses : int;
}

type report = { pass_reports : pass_report list; total_ms : float }

type hook = string -> Pass.state -> unit
(** Called as [hook pass_name state] after each (enabled, filtered)
    pass finishes. *)

type config = {
  passes : Pass.t list;
  disabled : string list;  (** pass names to skip *)
  dump_after : hook option;
  dump_filter : string -> bool;  (** which passes trigger the hook *)
  before_pass : hook option;
      (** called before every enabled pass runs (unfiltered) — e.g. the
          {!Certify} observer snapshotting the pre-pass assignment *)
  after_pass : hook option;
      (** called after every enabled pass, {e before} diagnostic
          attribution, so appended diagnostics are tagged with the pass;
          used for per-pass analysis (lints at any dump-after point,
          translation validation) *)
}

val config :
  ?disabled:string list ->
  ?dump_after:hook ->
  ?dump_filter:(string -> bool) ->
  ?before_pass:hook ->
  ?after_pass:hook ->
  Pass.t list ->
  config

(** Run the enabled passes in list order, instrumenting each. *)
val run : config -> Pass.state -> report

val pp_report : Format.formatter -> report -> unit

(** The report as a JSON object:
    [{"total_ms":..., "passes":[{"pass":..., "wall_ms":...,
    "diagnostics":..., "plan_cache":{...}, "memo":{...}}, ...]}]. *)
val to_json : report -> string

(** Default dump-after printer: per-instruction layout assignment and
    running totals. *)
val pp_state : Format.formatter -> Pass.state -> unit
