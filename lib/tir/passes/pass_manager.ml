open Linear_layout

type pass_report = {
  pass : string;
  wall_ms : float;
  diagnostics : int;
  cost_delta : float;
  plan_cache_hits : int;
  plan_cache_misses : int;
  memo_hits : int;
  memo_misses : int;
}

type report = { pass_reports : pass_report list; total_ms : float }
type hook = string -> Pass.state -> unit

type config = {
  passes : Pass.t list;
  disabled : string list;
  dump_after : hook option;
  dump_filter : string -> bool;
  before_pass : hook option;
  after_pass : hook option;
}

let config ?(disabled = []) ?dump_after ?(dump_filter = fun _ -> true) ?before_pass
    ?after_pass passes =
  { passes; disabled; dump_after; dump_filter; before_pass; after_pass }

let run_instrumented config (st : Pass.state) =
  let t0 = Obs.Clock.now () in
  let pipeline = Obs.Span.enter "pipeline" in
  let reports =
    List.filter_map
      (fun ((module P : Pass.PASS) as _p) ->
        if List.mem P.name config.disabled then None
        else begin
          let d0 = List.length st.Pass.diags in
          let plan_hits0 = Codegen.Plan_cache.hits ()
          and plan_misses0 = Codegen.Plan_cache.misses () in
          let memo_hits0 = Layout.Memo.hits () and memo_misses0 = Layout.Memo.misses () in
          let cost0 = Gpusim.Cost.estimate st.Pass.machine st.Pass.total in
          Option.iter (fun hook -> hook P.name st) config.before_pass;
          let span = Obs.Span.enter ("pass/" ^ P.name) in
          let p0 = Obs.Clock.now () in
          P.run st;
          let wall_ms = 1000. *. (Obs.Clock.now () -. p0) in
          (* The after hook runs before diagnostic attribution so that
             anything it appends (e.g. per-pass lints or translation
             validation refutations) is tagged with this pass's name. *)
          Option.iter (fun hook -> hook P.name st) config.after_pass;
          (* Attribute the diagnostics this pass appended to it. *)
          st.Pass.diags <-
            List.mapi
              (fun idx d -> if idx >= d0 then Diagnostics.with_pass P.name d else d)
              st.Pass.diags;
          Option.iter
            (fun hook -> if config.dump_filter P.name then hook P.name st)
            config.dump_after;
          let r =
            {
              pass = P.name;
              wall_ms;
              diagnostics = List.length st.Pass.diags - d0;
              cost_delta = Gpusim.Cost.estimate st.Pass.machine st.Pass.total -. cost0;
              plan_cache_hits = Codegen.Plan_cache.hits () - plan_hits0;
              plan_cache_misses = Codegen.Plan_cache.misses () - plan_misses0;
              memo_hits = Layout.Memo.hits () - memo_hits0;
              memo_misses = Layout.Memo.misses () - memo_misses0;
            }
          in
          Obs.Span.exit span
            ~attrs:
              [
                ("diagnostics", string_of_int r.diagnostics);
                ("cost_delta", Printf.sprintf "%.1f" r.cost_delta);
                ("plan_cache.hits", string_of_int r.plan_cache_hits);
                ("plan_cache.misses", string_of_int r.plan_cache_misses);
                ("memo.hits", string_of_int r.memo_hits);
                ("memo.misses", string_of_int r.memo_misses);
              ];
          Some r
        end)
      config.passes
  in
  Obs.Span.exit pipeline
    ~attrs:
      [
        ("passes", string_of_int (List.length reports));
        ("strategy", st.Pass.chooser.Strategy.name);
        ("decisions", string_of_int (List.length st.Pass.decisions));
      ];
  { pass_reports = reports; total_ms = 1000. *. (Obs.Clock.now () -. t0) }

let run config (st : Pass.state) =
  match st.Pass.trace with
  | None -> run_instrumented config st
  | Some sink ->
      (* The caller asked for a trace of this run specifically: install
         its sink (enabling instrumentation) for the duration. *)
      Obs.Trace.with_sink sink (fun () -> run_instrumented config st)

(* {1 Reporting} *)

let pp_report ppf r =
  Format.fprintf ppf "%-20s %9s %6s %10s %11s %11s@."
    "pass" "ms" "diags" "cost-delta" "plan h/m" "memo h/m";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-20s %9.3f %6d %10.1f %5d/%-5d %5d/%-5d@." p.pass p.wall_ms
        p.diagnostics p.cost_delta p.plan_cache_hits p.plan_cache_misses p.memo_hits
        p.memo_misses)
    r.pass_reports;
  Format.fprintf ppf "%-20s %9.3f@." "total" r.total_ms

let to_json r =
  let pass p =
    Printf.sprintf
      "{\"pass\":\"%s\",\"wall_ms\":%.6f,\"diagnostics\":%d,\"cost_delta\":%.6f,\"plan_cache\":{\"hits\":%d,\"misses\":%d},\"memo\":{\"hits\":%d,\"misses\":%d}}"
      (Diagnostics.json_escape p.pass)
      p.wall_ms p.diagnostics p.cost_delta p.plan_cache_hits p.plan_cache_misses
      p.memo_hits p.memo_misses
  in
  Printf.sprintf "{\"total_ms\":%.6f,\"passes\":[%s]}" r.total_ms
    (String.concat "," (List.map pass r.pass_reports))

(* Default dump-after printer: the per-instruction layout assignment as
   it stands, plus the running totals. *)
let pp_state ppf (st : Pass.state) =
  Array.iteri
    (fun i (ins : Program.instr) ->
      Format.fprintf ppf "%%%d %s : %s@." i
        (Legacy.Support.kind_name ins.Program.kind)
        (match ins.Program.layout with
        | None -> "(no layout)"
        | Some l -> Layout.to_string l))
    (Program.instrs st.Pass.prog);
  Format.fprintf ppf
    "cost so far: %a@.pending %d, conversions %d, converts %d, noops %d, folded %d, \
     remats %d@."
    Gpusim.Cost.pp st.Pass.total
    (List.length st.Pass.pending)
    (List.length st.Pass.convs)
    st.Pass.converts st.Pass.noops st.Pass.folded st.Pass.remats
