(** Pure layout/cost helpers shared by the engine passes: default
    blocked anchors, mma operand/output layouts, vectorization widths,
    the coalescing model for global accesses, and the shape-op layout
    transfer functions (Section 4.4). *)

open Linear_layout

val bits_of : Tensor_lib.Dtype.t -> int
val byte_width_of : Tensor_lib.Dtype.t -> int
val pow2_floor : int -> int

(** The coalesced blocked anchor layout for a tensor (Section 4.4). *)
val default_blocked :
  Gpusim.Machine.t ->
  num_warps:int ->
  shape:int array ->
  dtype:Tensor_lib.Dtype.t ->
  Layout.t

(** Alternative anchor candidates around the greedy default (scalar,
    half- and full-vector runs plus the order-flipped variant),
    feasibility-pruned and deduplicated, paired with the number of
    candidates cut. *)
val anchor_candidates :
  Gpusim.Machine.t ->
  num_warps:int ->
  shape:int array ->
  dtype:Tensor_lib.Dtype.t ->
  default:Layout.t ->
  Layout.t list * int

(** Reify the anchor choice as a {!Strategy.Anchor} site (alternatives
    lazily enumerated) and return the committed layout. *)
val choose_anchor :
  Pass.state ->
  at:Program.id ->
  shape:int array ->
  dtype:Tensor_lib.Dtype.t ->
  default:Layout.t ->
  Layout.t

val mma_bitwidth : Tensor_lib.Dtype.t -> int

(** Whether every tensor dimension holds at least one mma tile. *)
val dot_fits : m:int -> n:int -> k:int -> a_bits:int -> b_bits:int -> bool

(** [(out, a, b)] layouts for a dot of the given problem shape; blocked
    fallbacks when the shape is below one mma tile. *)
val dot_layouts :
  Gpusim.Machine.t ->
  num_warps:int ->
  m:int ->
  n:int ->
  k:int ->
  a_dtype:Tensor_lib.Dtype.t ->
  b_dtype:Tensor_lib.Dtype.t ->
  Layout.t * Layout.t * Layout.t

val legacy_vec : Layout.t -> int
val linear_vec : Gpusim.Machine.t -> Layout.t -> byte_width:int -> int

(** Mode-dispatching vectorization width. *)
val vec_for : Pass.state -> Layout.t -> byte_width:int -> int

(** [(instructions, transactions)] for a global access of the layout
    under the given vectorization, summed over all warps. *)
val global_access_counts : Layout.t -> byte_width:int -> vec:int -> int * int

(** Abstract time of a [src] -> [dst] conversion in the state's mode,
    for the backward pass's remat / direct-store comparisons. *)
val convert_estimate :
  Pass.state -> src:Layout.t -> dst:Layout.t -> byte_width:int -> float

val sliced_kind : Legacy.Support.layout_kind -> Legacy.Support.layout_kind

(** Renames dimK -> dimK+delta for K >= axis (delta = +1/-1). *)
val rename_dims_above : Layout.t -> axis:int -> delta:int -> Layout.t

(** Broadcast transfer function: grow size-1 output dimensions to
    [shape] through the input's free lane/warp bits (Section 6.2). *)
val broadcast_layout : Layout.t -> shape:int array -> Layout.t
