open Linear_layout

let name = "backward_remat"

let description =
  "backward pass: propagate remat chain costs, decide remat-vs-convert and \
   direct-store-vs-anchor"

(* The backward pass of Section 4.4.  First complete the chain-cost
   table the [anchor] pass seeded: an elementwise value is cheap to
   recompute iff every source is, and the chain costs are
   layout-independent, so one in-order walk suffices.  Then resolve the
   pending work-list in place:

   - a remat-candidate conversion whose source has a cheap chain
     (cheaper than the conversion estimate) becomes a {!Pass.Remat} —
     the chain cost is paid instead of the conversion;
   - a store decision keeps the producer's layout when storing through
     it is no more expensive than converting to the coalesced anchor
     first, otherwise it becomes a conversion to the anchor.  Either
     way the store's layout is fixed here and its global-access event
     recorded for [lower]. *)
let run (st : Pass.state) =
  let machine = st.Pass.machine and num_warps = st.Pass.num_warps in
  let prog = st.Pass.prog in
  Array.iteri
    (fun i (ins : Program.instr) ->
      match ins.Program.node with
      | Program.Elementwise { srcs; _ } -> (
          let own_alu =
            max 1
              (Array.fold_left ( * ) 1 ins.Program.shape
              / (machine.Gpusim.Machine.warp_size * num_warps))
          in
          match
            List.fold_left
              (fun acc s ->
                match (acc, Hashtbl.find_opt st.Pass.chain_cost s) with
                | Some acc, Some c ->
                    let sum = Gpusim.Cost.zero () in
                    Gpusim.Cost.add sum acc;
                    Gpusim.Cost.add sum c;
                    Some sum
                | _ -> None)
              (Some (Gpusim.Cost.zero ()))
              srcs
          with
          | Some chain ->
              chain.Gpusim.Cost.alu <- chain.Gpusim.Cost.alu + own_alu;
              Hashtbl.replace st.Pass.chain_cost i chain
          | None -> ())
      | _ -> ())
    (Program.instrs prog);
  st.Pass.pending <-
    List.filter_map
      (function
        | Pass.Convert r when r.Pass.remat_candidate -> (
            let byte_width =
              Pass_util.byte_width_of (Program.instr prog r.Pass.at).Program.dtype
            in
            let estimate =
              Pass_util.convert_estimate st ~src:r.Pass.src_layout ~dst:r.Pass.dst
                ~byte_width
            in
            match Hashtbl.find_opt st.Pass.chain_cost r.Pass.src with
            | Some chain ->
                (* Both options are genuinely available: reify the
                   choice.  Greedy rematerializes exactly when the
                   chain estimate beats the conversion estimate. *)
                let c =
                  Pass.decide st
                    (Strategy.Remat_or_convert
                       {
                         Strategy.remat_site_at = r.Pass.at;
                         remat_site_src = r.Pass.src;
                         chain_estimate = Gpusim.Cost.estimate machine chain;
                         convert_estimate = estimate;
                       })
                in
                if c = 1 then begin
                  st.Pass.remats <- st.Pass.remats + 1;
                  Gpusim.Cost.add st.Pass.total chain;
                  Some (Pass.Remat { remat_at = r.Pass.at; remat_src = r.Pass.src })
                end
                else Some (Pass.Convert r)
            | None -> Some (Pass.Convert r))
        | Pass.Store_decision sc ->
            let at = sc.Pass.store_at in
            let byte_width =
              Pass_util.byte_width_of (Program.instr prog at).Program.dtype
            in
            let store_estimate l =
              let vec = Pass_util.vec_for st l ~byte_width in
              let insts, tx = Pass_util.global_access_counts l ~byte_width ~vec in
              (float_of_int insts *. machine.Gpusim.Machine.cost_smem_inst)
              +. (float_of_int tx *. machine.Gpusim.Machine.cost_gmem_transaction)
            in
            let convert_estimate () =
              match st.Pass.mode with
              | Pass.Linear ->
                  Pass_util.convert_estimate st ~src:sc.Pass.store_src_layout
                    ~dst:sc.Pass.store_anchor ~byte_width
              | Pass.Legacy_mode ->
                  if
                    sc.Pass.store_src_kind = Legacy.Support.Blocked
                    && Layout.equal sc.Pass.store_src_layout sc.Pass.store_anchor
                  then 0.
                  else
                    Pass_util.convert_estimate st ~src:sc.Pass.store_src_layout
                      ~dst:sc.Pass.store_anchor ~byte_width
            in
            let kind_ok =
              match st.Pass.mode with
              | Pass.Linear -> true
              | Pass.Legacy_mode -> sc.Pass.store_src_kind = Legacy.Support.Blocked
            in
            let direct_ok =
              (* Only a real choice when the producer's layout may carry
                 the store at all (legacy cannot store through
                 non-blocked kinds); greedy stores directly unless the
                 anchor route is strictly cheaper. *)
              kind_ok
              &&
              let c =
                Pass.decide st
                  (Strategy.Store_direct_or_anchor
                     {
                       Strategy.store_site_at = at;
                       direct_estimate = store_estimate sc.Pass.store_src_layout;
                       via_anchor_estimate =
                         convert_estimate () +. store_estimate sc.Pass.store_anchor;
                     })
              in
              c = 0
            in
            let l = if direct_ok then sc.Pass.store_src_layout else sc.Pass.store_anchor in
            Pass.set st at l Legacy.Support.Blocked;
            st.Pass.accesses <-
              {
                Pass.access_at = at;
                access_kind = Pass.Global_store;
                access_layout = l;
                access_byte_width = byte_width;
              }
              :: st.Pass.accesses;
            if direct_ok then None
            else
              Some
                (Pass.Convert
                   {
                     Pass.at;
                     src = sc.Pass.store_src;
                     src_layout = sc.Pass.store_src_layout;
                     src_kind = sc.Pass.store_src_kind;
                     dst = sc.Pass.store_anchor;
                     dst_kind = Legacy.Support.Blocked;
                     ldmatrix_ok = false;
                     smem_resident = false;
                     foldable = false;
                     remat_candidate = false;
                   })
        | p -> Some p)
      st.Pass.pending
