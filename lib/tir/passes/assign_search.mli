(** Cost-driven beam search over the layout-assignment decision tree.

    A {e script} forces a prefix of decision-site choices (greedy
    completion beyond); beam search keeps the [beam] cheapest partial
    assignments per depth under the planner cost model, branching in
    parallel via {!Par_eval} (deterministic for any [domains] count),
    pruning candidates that are infeasible as distributed linear
    layouts, and finally re-pricing the short-list with the exact
    {!Analysis.Static_cost} objective.  The greedy root always stays in
    the short-list, so the winner's objective is never above greedy's;
    a short-list candidate is additionally vetoed when it has more
    error-severity {!Lint} findings than the greedy baseline, so search
    never trades analyzer cleanliness for cost. *)

type params = { beam : int; domains : int }

val default_params : params
(** [{ beam = 4; domains = 1 }] *)

type stats = {
  sites : int;  (** decision sites along the winning path *)
  explored : int;  (** full pipeline evaluations *)
  pruned : int;
      (** beam-cut partial assignments plus infeasible/duplicate
          anchor candidates cut before costing *)
  greedy_cost : float;  (** objective of the greedy assignment *)
  best_cost : float;  (** objective of the winner ([<= greedy_cost]) *)
}

type outcome = {
  result : Pass.result;  (** the winner, replayed onto the caller's program *)
  script : int list;  (** the winning forced prefix (replayable) *)
  stats : stats;
}

(** A strategy replaying a forced prefix with greedy completion.  Build
    a fresh value per engine run (the cursor is private run state);
    replaying an {!outcome.script} through {!Pass.init} — or
    {!Certify.run} — reproduces the winning assignment exactly. *)
val chooser_of_script : int list -> Strategy.t

(** The search objective: planner model cost with every lowerable
    conversion re-priced by the exact static cost of its lowered
    stream (see {!Analysis.Static_cost.reprice_conversion}). *)
val objective : Gpusim.Machine.t -> Pass.result -> float

val run :
  Gpusim.Machine.t ->
  mode:Pass.mode ->
  ?num_warps:int ->
  ?trace:Obs.Trace.t ->
  ?params:params ->
  Program.t ->
  outcome
