open Linear_layout

(* {1 Layout construction helpers} *)

let bits_of dtype = Tensor_lib.Dtype.bits dtype
let byte_width_of dtype = max 1 (bits_of dtype / 8)

let pow2_floor n =
  let rec go k = if 1 lsl (k + 1) > n then 1 lsl k else go (k + 1) in
  if n < 1 then 1 else go 0

let default_blocked machine ~num_warps ~shape ~dtype =
  let numel = Array.fold_left ( * ) 1 shape in
  let threads = machine.Gpusim.Machine.warp_size * num_warps in
  let ept = pow2_floor (max 1 (min (128 / bits_of dtype) (numel / threads))) in
  Blocked.default ~elems_per_thread:ept ~warp_size:machine.Gpusim.Machine.warp_size ~num_warps
    shape

(* The anchor candidate set explored by search strategies: a small
   neighborhood around the greedy pick — scalar, half-vector and
   full-vector runs at the coalesced (row-major) order, plus the
   order-flipped full-vector variant.  Candidates are cut before
   costing when inexpressible as a distributed linear layout
   (Definition 4.10) or when they duplicate the default/each other;
   the returned count records how many were cut. *)
let anchor_candidates machine ~num_warps ~shape ~dtype ~default =
  let warp_size = machine.Gpusim.Machine.warp_size in
  let numel = Array.fold_left ( * ) 1 shape in
  let threads = warp_size * num_warps in
  let cap = pow2_floor (max 1 (min (128 / bits_of dtype) (numel / threads))) in
  let n = Array.length shape in
  let fwd_order = Array.init n (fun i -> n - 1 - i) in
  let rev_order = Array.init n (fun i -> i) in
  let bl ~order ~ept = Blocked.default ~order ~elems_per_thread:ept ~warp_size ~num_warps shape in
  let raw =
    [
      bl ~order:fwd_order ~ept:1;
      bl ~order:fwd_order ~ept:(max 1 (cap / 2));
      bl ~order:fwd_order ~ept:cap;
      bl ~order:rev_order ~ept:cap;
    ]
  in
  let pruned = ref 0 in
  let keep =
    List.fold_left
      (fun acc l ->
        if
          Layout.is_distributed l
          && (not (Layout.equal l default))
          && not (List.exists (Layout.equal l) acc)
        then l :: acc
        else begin
          incr pruned;
          acc
        end)
      [] raw
  in
  (List.rev keep, !pruned)

(* Reify the anchor choice as a decision site and commit the strategy's
   pick.  The alternatives stay an unforced lazy under the greedy
   strategy (choice [0] without inspecting the arity). *)
let choose_anchor (st : Pass.state) ~at ~shape ~dtype ~default =
  let alternatives =
    lazy
      (anchor_candidates st.Pass.machine ~num_warps:st.Pass.num_warps ~shape ~dtype
         ~default)
  in
  let c =
    Pass.decide st
      (Strategy.Anchor
         {
           Strategy.anchor_at = at;
           anchor_default = default;
           anchor_alternatives = alternatives;
         })
  in
  if c = 0 then default else List.nth (fst (Lazy.force alternatives)) (c - 1)

let mma_bitwidth dtype = min 32 (max 4 (bits_of dtype))

(* The mma path requires each tensor dimension to hold at least one
   operand/output tile; tile sizes depend on the element bitwidths
   (an f8 lhs tile is 16 x 32, an f16 one 16 x 16, ...). *)
let dot_fits ~m ~n ~k ~a_bits ~b_bits =
  let size t d = Layout.out_size t (Dims.dim d) in
  let lhs = Mma.operand_tile ~idx:0 ~bitwidth:a_bits in
  let rhs = Mma.operand_tile ~idx:1 ~bitwidth:b_bits in
  let out = Mma.output_tile ~bitwidth:32 in
  m >= max (size lhs 0) (size out 0)
  && n >= max (size rhs 1) (size out 1)
  && k >= max (size lhs 1) (size rhs 0)

let dot_layouts machine ~num_warps ~m ~n ~k ~a_dtype ~b_dtype =
  let warps = [| num_warps; 1 |] in
  let a_bits = mma_bitwidth a_dtype and b_bits = mma_bitwidth b_dtype in
  if not (dot_fits ~m ~n ~k ~a_bits ~b_bits) then
    (* Small shapes: linear layouts still provide a valid distributed
       layout via blocked encodings (Section 6.1's point is that legacy
       cannot). *)
    let bl shape dt = default_blocked machine ~num_warps ~shape ~dtype:dt in
    (bl [| m; n |] a_dtype, bl [| m; k |] a_dtype, bl [| k; n |] b_dtype)
  else
    let out_tile =
      match machine.Gpusim.Machine.vendor with
      | Gpusim.Machine.Amd -> Mma.mfma_output_tile ~m:16
      | Gpusim.Machine.Intel -> Mma.xmx_output_tile ()
      | Gpusim.Machine.Nvidia -> Mma.output_tile ~bitwidth:32
    in
    let out =
      match machine.Gpusim.Machine.vendor with
      | Gpusim.Machine.Amd -> Mma.mfma_output ~m:16 ~warps ~shape:[| m; n |] ()
      | Gpusim.Machine.Intel -> Mma.xmx_output ~warps ~shape:[| m; n |] ()
      | Gpusim.Machine.Nvidia -> Mma.output ~bitwidth:32 ~warps ~shape:[| m; n |] ()
    in
    let a = Mma.operand ~out_tile ~idx:0 ~bitwidth:a_bits ~warps ~shape:[| m; k |] () in
    let b = Mma.operand ~out_tile ~idx:1 ~bitwidth:b_bits ~warps ~shape:[| k; n |] () in
    (out, a, b)

(* Legacy vectorization: contiguity is only recognized within the
   fastest dimension (Section 5.1). *)
let legacy_vec layout =
  let consec = Layout.Memo.num_consecutive layout ~in_dim:Dims.register in
  match Layout.out_dims layout with
  | (_, cols_bits) :: _ :: _ when cols_bits > 0 -> min consec (1 lsl cols_bits)
  | _ -> consec

let linear_vec machine layout ~byte_width =
  let cap = machine.Gpusim.Machine.max_vec_bits / (8 * byte_width) in
  min (Layout.Memo.num_consecutive layout ~in_dim:Dims.register) (max 1 cap)

let vec_for (st : Pass.state) layout ~byte_width =
  match st.Pass.mode with
  | Pass.Linear -> linear_vec st.Pass.machine layout ~byte_width
  | Pass.Legacy_mode -> legacy_vec layout

(* Instruction and transaction counts for a warp-level global access
   under the given vectorization, summed over all warps. *)
let global_access_counts layout ~byte_width ~vec =
  (* Hoist the F2 matrix of the flattened layout: [apply] per address is
     then a handful of word ops, and both the flatten and the matrix are
     memoized across calls on the same layout. *)
  let m = Layout.Memo.to_matrix (Layout.Memo.flatten_outs layout) in
  let reg_bits = Layout.in_bits layout Dims.register in
  let lane_bits = Layout.in_bits layout Dims.lane in
  let warps = 1 lsl Layout.in_bits layout Dims.warp in
  let regs = 1 lsl reg_bits in
  let insts = max 1 (regs / vec) in
  let tx = ref 0 in
  for g = 0 to insts - 1 do
    let accesses =
      List.init (1 lsl lane_bits) (fun lane ->
          let hw = (g * vec) lor (lane lsl reg_bits) in
          (F2.Bitmatrix.apply m hw * byte_width, vec * byte_width))
    in
    tx := !tx + Gpusim.Coalesce.transactions accesses
  done;
  (insts * warps, !tx * warps)

(* Abstract time of converting [src] to [dst], used by the backward
   pass's remat-vs-convert and direct-store-vs-anchor comparisons. *)
let convert_estimate (st : Pass.state) ~src ~dst ~byte_width =
  let machine = st.Pass.machine in
  match st.Pass.mode with
  | Pass.Linear ->
      Gpusim.Cost.estimate machine
        (Codegen.Conversion.cost machine
           (Codegen.Plan_cache.conversion machine ~src ~dst ~byte_width))
  | Pass.Legacy_mode ->
      Gpusim.Cost.estimate machine (Legacy.Convert.cost machine ~src ~dst ~byte_width)

let sliced_kind = function
  | Legacy.Support.Blocked -> Legacy.Support.Sliced_blocked
  | Legacy.Support.Mma -> Legacy.Support.Sliced_mma
  | Legacy.Support.Mma_input -> Legacy.Support.Sliced_mma_input
  | k -> k

let rename_dims_above l ~axis ~delta =
  (* Renames dimK -> dimK+delta for K >= axis (delta = +1/-1). *)
  let spec =
    Layout.out_dims l
    |> List.filter_map (fun (d, _) ->
           match Dims.dim_index d with
           | Some k when k >= axis -> Some (d, Dims.dim (k + delta))
           | _ -> None)
  in
  if spec = [] then l else Layout.exchange_out_names l spec

(* Broadcast transfer: grow size-1 output dimensions to [shape].  The
   new elements are assigned, per dimension (fastest first), to the
   input's *free* lane and warp bits — the bits a reduction freed — with
   fresh registers covering the remainder at the low end, mirroring the
   blocked construction.  When the input is the slice of a blocked
   layout this reconstructs the parent exactly, so conversions against
   the original tensor fold to no-ops (the welford case, Section 6.2). *)
let broadcast_layout l ~shape =
  let rank = Array.length shape in
  let masks = Layout.Memo.free_variable_masks l in
  let free_bits dim =
    let mask = try List.assoc dim masks with Not_found -> 0 in
    ref (F2.Bitvec.support mask)
  in
  let free_lane = free_bits Dims.lane and free_warp = free_bits Dims.warp in
  let image_of in_dim k = Layout.basis l in_dim k in
  let lane_images =
    Array.init (Layout.in_bits l Dims.lane) (image_of Dims.lane)
  in
  let warp_images =
    Array.init (Layout.in_bits l Dims.warp) (image_of Dims.warp)
  in
  let reg_existing =
    List.init (Layout.in_bits l Dims.register) (image_of Dims.register)
  in
  let reg_prepends = ref [] (* fastest dim first *) in
  for di = 0 to rank - 1 do
    let d = rank - 1 - di (* fastest (last) dimension first *) in
    let have = Layout.out_bits l (Dims.dim d) in
    let want = Util.log2 shape.(d) in
    if want > have then begin
      let need = want - have in
      let lanes_take = min (List.length !free_lane) need in
      let warps_take = min (List.length !free_warp) (need - lanes_take) in
      let reg_low = need - lanes_take - warps_take in
      let coord j = [ (Dims.dim d, 1 lsl (have + j)) ] in
      reg_prepends := !reg_prepends @ [ List.init reg_low coord ];
      List.iteri
        (fun idx bit ->
          if idx < lanes_take then lane_images.(bit) <- coord (reg_low + idx))
        !free_lane;
      List.iteri
        (fun idx bit ->
          if idx < warps_take then warp_images.(bit) <- coord (reg_low + lanes_take + idx))
        !free_warp;
      let drop n lst = List.filteri (fun i _ -> i >= n) lst in
      free_lane := drop lanes_take !free_lane;
      free_warp := drop warps_take !free_warp
    end
  done;
  let reg_images = List.concat !reg_prepends @ reg_existing in
  let outs = Array.to_list (Array.mapi (fun d s -> (Dims.dim d, Util.log2 s)) shape) in
  let ins =
    [
      (Dims.register, List.length reg_images);
      (Dims.lane, Array.length lane_images);
      (Dims.warp, Array.length warp_images);
    ]
    |> List.filter (fun (_, b) -> b > 0)
  in
  let bases =
    [
      (Dims.register, reg_images);
      (Dims.lane, Array.to_list lane_images);
      (Dims.warp, Array.to_list warp_images);
    ]
    |> List.filter (fun (d, _) -> List.mem_assoc d ins)
  in
  Layout.make ~ins ~outs ~bases
