(** Forward layout propagation (Section 4.4): one in-order walk
    assigning every non-anchor instruction's layout via the linear
    transfer functions, queueing snapshotted conversion requests and
    store decisions into {!Pass.state.pending}, and accounting
    compute-op costs (elementwise ALU, mma, reduction/scan exchange,
    gather plans). *)

val name : string
val description : string
val run : Pass.state -> unit
