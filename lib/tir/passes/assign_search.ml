(* {1 Cost-driven beam search over layout-assignment decisions}

   The greedy walk (Assign_greedy) commits every decision site locally.
   This module instead explores the decision tree: a {e script} is a
   forced prefix of choices — site [k] takes the scripted candidate for
   [k < |script|], greedy completion beyond — and every script is
   evaluated by running the full pass pipeline on a private copy of the
   program.  Beam search keeps the [beam] cheapest partial assignments
   per depth (planner model cost), branches each at its next site, and
   finally re-prices the short-list with the exact {!Analysis.Static_cost}
   pricing of every lowerable conversion (the proven static≡dynamic
   objective).  The greedy root is always in the short-list, so search
   is never worse than greedy on the objective.

   Determinism: scripts are generated in frontier×choice order,
   evaluated via {!Par_eval.map} (round-robin, index-order merge), the
   beam is cut by a stable sort on cost, and the winner is taken with a
   strict [<] in short-list order — so the winner and its cost are
   identical for any [domains] count. *)

type params = { beam : int; domains : int }

let default_params = { beam = 4; domains = 1 }

type stats = {
  sites : int;  (* decision sites along the winning path *)
  explored : int;  (* full pipeline evaluations *)
  pruned : int;  (* beam-cut partial assignments + infeasible/duplicate candidates *)
  greedy_cost : float;  (* objective of the greedy assignment *)
  best_cost : float;  (* objective of the winner (<= greedy_cost) *)
}

type outcome = { result : Pass.result; script : int list; stats : stats }

(* Replays a forced prefix, completes greedily.  Fresh per run: the
   cursor is private state across the sites of one pipeline walk. *)
let chooser_of_script script =
  let rem = ref script in
  {
    Strategy.name = "search";
    choose =
      (fun site ->
        match !rem with
        | c :: tl ->
            rem := tl;
            c
        | [] -> Assign_greedy.choose site);
  }

(* The search objective: planner model cost with every lowerable
   conversion re-priced by the exact static cost of its instruction
   stream (LL810-asserted, see {!Analysis.Static_cost.reprice_conversion}).
   Conversions with no warp-level lowering — legacy round trips,
   cross-CTA plans — keep their model cost. *)
let objective machine (r : Pass.result) =
  List.fold_left
    (fun t (c : Pass.conversion_info) ->
      match c.Pass.plan with
      | None -> t
      | Some plan -> (
          match Analysis.Static_cost.reprice_conversion machine plan with
          | None -> t
          | Some m ->
              t
              -. Gpusim.Cost.estimate machine c.Pass.conv_cost
              +. Gpusim.Cost.estimate machine m))
    (Gpusim.Cost.estimate machine r.Pass.cost)
    r.Pass.conversions

type entry = {
  script : int list;  (* forced prefix *)
  model_cost : float;
  result : Pass.result;
  prog : Program.t;  (* the private copy the script was evaluated on *)
  choices : (Strategy.site * int) array;  (* every site of the run, in order *)
}

let rec take k = function
  | [] -> []
  | x :: tl -> if k <= 0 then [] else x :: take (k - 1) tl

let run machine ~mode ?num_warps ?trace ?(params = default_params) prog =
  let beam = max 1 params.beam in
  let span =
    Obs.Span.enter "search/beam" ~attrs:[ ("beam", string_of_int beam) ]
  in
  let pipeline st =
    let (_ : Pass_manager.report) =
      Pass_manager.run (Pass_manager.config Passes.default) st
    in
    ()
  in
  let eval script =
    let p = Program.copy prog in
    let st =
      Pass.init machine ~mode ?num_warps ?trace ~chooser:(chooser_of_script script) p
    in
    pipeline st;
    let r = Pass.result st in
    {
      script;
      model_cost = Gpusim.Cost.estimate machine r.Pass.cost;
      result = r;
      prog = p;
      choices = Array.of_list (List.rev st.Pass.decisions);
    }
  in
  let root = eval [] in
  let explored = ref 1 and pruned = ref 0 in
  let pool = ref [ root ] (* reverse evaluation order *) in
  let frontier = ref [ root ] in
  let depth = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let d = !depth in
    (* Branch every frontier entry at its site of index [d]: one child
       per non-taken candidate, the parent itself carries the taken
       one forward.  Distinct entries differ in an earlier effective
       choice, so child scripts never collide. *)
    let child_scripts =
      List.concat_map
        (fun e ->
          if Array.length e.choices <= d then []
          else begin
            let site, taken = e.choices.(d) in
            (match site with
            | Strategy.Anchor a ->
                pruned := !pruned + snd (Lazy.force a.anchor_alternatives)
            | _ -> ());
            let prefix = List.init d (fun k -> snd e.choices.(k)) in
            List.init (Strategy.arity site) Fun.id
            |> List.filter (fun c -> c <> taken)
            |> List.map (fun c -> prefix @ [ c ])
          end)
        !frontier
    in
    match child_scripts with
    | [] -> continue_ := false
    | _ ->
        let scripts = Array.of_list child_scripts in
        let children =
          Par_eval.map ~domains:params.domains (Array.length scripts) (fun i ->
              eval scripts.(i))
          |> Array.to_list
        in
        explored := !explored + List.length children;
        pool := List.rev_append children !pool;
        let candidates =
          List.filter
            (fun e -> Array.length e.choices > d + 1)
            (!frontier @ children)
        in
        let ranked =
          List.stable_sort (fun a b -> compare a.model_cost b.model_cost) candidates
        in
        let kept = take beam ranked in
        pruned := !pruned + (List.length ranked - List.length kept);
        frontier := kept;
        incr depth;
        if kept = [] then continue_ := false
  done;
  (* Exact re-pricing of the short-list: the model ranks the pool, the
     proven static pricing picks the winner.  The greedy root leads the
     short-list and ties break on strict [<], so the winner's objective
     is never above greedy's.  A candidate must also not regress the
     lint sweep relative to the greedy baseline — a cheaper assignment
     that trips more analyzer errors (e.g. extra LL301s from an anchor
     the bank certifier cannot predict) is rejected. *)
  let shortlist =
    List.rev !pool
    |> List.stable_sort (fun a b -> compare a.model_cost b.model_cost)
    |> take (max beam 4)
    |> List.filter (fun e -> e != root)
  in
  let lint_errors e =
    List.length
      (Linear_layout.Diagnostics.errors (Lint.passes machine e.prog ~result:e.result))
  in
  let baseline_lint = lazy (lint_errors root) in
  let score e = (objective machine e.result, e.model_cost) in
  let root_score = score root in
  let best = ref root and best_score = ref root_score in
  List.iter
    (fun e ->
      let s = score e in
      if s < !best_score && lint_errors e <= Lazy.force baseline_lint then begin
        best := e;
        best_score := s
      end)
    shortlist;
  let winner = !best in
  (* Replay the winner on the caller's program — the {!Engine.run}
     contract is an in-place assignment — and hand its result back. *)
  let st =
    Pass.init machine ~mode ?num_warps ?trace
      ~chooser:(chooser_of_script winner.script)
      prog
  in
  pipeline st;
  let result = Pass.result st in
  let stats =
    {
      sites = Array.length winner.choices;
      explored = !explored;
      pruned = !pruned;
      greedy_cost = fst root_score;
      best_cost = fst !best_score;
    }
  in
  if Obs.enabled () then begin
    Obs.Metrics.incr ~by:stats.explored "engine.search.explored";
    Obs.Metrics.incr ~by:stats.pruned "engine.search.pruned"
  end;
  Obs.Span.exit span
    ~attrs:
      [
        ("explored", string_of_int stats.explored);
        ("pruned", string_of_int stats.pruned);
        ("greedy.cost", Printf.sprintf "%.4f" stats.greedy_cost);
        ("winner.cost", Printf.sprintf "%.4f" stats.best_cost);
      ];
  { result; script = winner.script; stats }
