(* The paper's Section 4.4 heuristic, expressed as a strategy: keep the
   default anchor, propagate the first operand's layout, rematerialize
   exactly when the chain estimate beats the conversion estimate, store
   directly unless converting to the coalesced anchor first is strictly
   cheaper.  These are the very comparisons the passes performed before
   the strategy split, so this chooser is bit-identical to the historic
   engine (pinned by the 216-row golden table). *)

let choose (site : Strategy.site) =
  match site with
  | Strategy.Anchor _ -> 0
  | Strategy.Elementwise_tie _ -> 0
  | Strategy.Remat_or_convert r ->
      if r.Strategy.chain_estimate < r.Strategy.convert_estimate then 1 else 0
  | Strategy.Store_direct_or_anchor s ->
      if s.Strategy.direct_estimate <= s.Strategy.via_anchor_estimate then 0 else 1

let strategy = { Strategy.name = "greedy"; choose }
