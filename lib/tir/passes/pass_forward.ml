open Linear_layout

let name = "forward_propagate"
let default_blocked' = Pass_util.default_blocked

let description =
  "propagate layouts through shape/compute ops, queue conversion requests, \
   account compute costs"

(* The forward dataflow of Section 4.4: walk the (SSA, topologically
   ordered) program once, assign each non-anchor instruction's layout
   from its sources via the linear transfer functions, and queue a
   {!Pass.pending} entry wherever a source may need converting.  The
   requests snapshot the source layout/kind at walk time because the dot
   transfer (and legacy normalization) re-layout operands in place —
   later passes must see the value as it was when the requirement arose.
   Compute-op costs (elementwise ALU, mma issues, reduction/scan
   shuffle + shared-memory traffic, gather plans) are also accounted
   here, where the walk-time layouts they depend on are available. *)
let run (st : Pass.state) =
  let machine = st.Pass.machine and num_warps = st.Pass.num_warps in
  let prog = st.Pass.prog in
  let layout_of = Pass.layout_of st in
  let kind_of = Pass.kind_of st in
  let set = Pass.set st in
  let request ?(ldmatrix_ok = false) ?(smem_resident = false) ?(foldable = true)
      ?(remat_candidate = false) ~at ~src ~dst ~dst_kind () =
    st.Pass.pending <-
      Pass.Convert
        {
          Pass.at;
          src;
          src_layout = layout_of src;
          src_kind = kind_of src;
          dst;
          dst_kind;
          ldmatrix_ok;
          smem_resident;
          foldable;
          remat_candidate;
        }
      :: st.Pass.pending
  in
  (* In legacy mode, shape operations on non-blocked layouts cannot be
     propagated (e.g. the transpose of an MMA layout is not a legacy
     layout): materialize a conversion to a blocked layout first.
     Unconditional — not foldable by [simplify] — exactly like the
     baseline's forced normalization. *)
  let legacy_normalize i =
    let ins = Program.instr prog i in
    if st.Pass.mode = Pass.Legacy_mode && ins.Program.kind <> Legacy.Support.Blocked
    then begin
      let bl =
        default_blocked' machine ~num_warps ~shape:ins.Program.shape
          ~dtype:ins.Program.dtype
      in
      request ~foldable:false ~at:i ~src:i ~dst:bl ~dst_kind:Legacy.Support.Blocked ();
      ins.Program.layout <- Some bl;
      ins.Program.kind <- Legacy.Support.Blocked
    end
  in
  Array.iteri
    (fun i (ins : Program.instr) ->
      let shape = ins.Program.shape in
      match ins.Program.node with
      | Program.Load _ | Program.Iota _ | Program.Full _ ->
          (* Anchors: handled by the [anchor] pass. *)
          ()
      | Program.Store { src } ->
          let anchor =
            default_blocked' machine ~num_warps ~shape ~dtype:ins.Program.dtype
          in
          st.Pass.pending <-
            Pass.Store_decision
              {
                Pass.store_at = i;
                store_src = src;
                store_src_layout = layout_of src;
                store_src_kind = kind_of src;
                store_anchor = anchor;
              }
            :: st.Pass.pending
      | Program.Elementwise { srcs; _ } ->
          (* The propagation tie-break: when operands disagree on
             (layout, kind), any of the distinct candidates could carry
             the result and the others be converted.  Greedy keeps the
             first operand (the historic behaviour); a search strategy
             may commit any candidate.  One occurrence of the chosen
             source is skipped when queueing requests, so the greedy
             path issues exactly the requests it always has (including
             foldable duplicates). *)
          let distinct =
            List.fold_left
              (fun acc s ->
                if
                  List.exists
                    (fun s' ->
                      Layout.equal (layout_of s') (layout_of s)
                      && kind_of s' = kind_of s)
                    acc
                then acc
                else s :: acc)
              [] srcs
            |> List.rev
          in
          let chosen =
            match distinct with
            | _ :: _ :: _ ->
                let c =
                  Pass.decide st
                    (Strategy.Elementwise_tie
                       { Strategy.tie_at = i; tie_choices = distinct })
                in
                List.nth distinct c
            | _ -> List.hd srcs
          in
          let l = layout_of chosen and k = kind_of chosen in
          let skipped = ref false in
          List.iter
            (fun s ->
              if s = chosen && not !skipped then skipped := true
              else request ~remat_candidate:true ~at:i ~src:s ~dst:l ~dst_kind:k ())
            srcs;
          set i l k;
          let own_alu =
            max 1
              (Array.fold_left ( * ) 1 shape / (machine.Gpusim.Machine.warp_size * num_warps))
          in
          st.Pass.total.Gpusim.Cost.alu <- st.Pass.total.Gpusim.Cost.alu + own_alu
      | Program.Dot { a; b } ->
          let sa = (Program.instr prog a).Program.shape in
          let sb = (Program.instr prog b).Program.shape in
          let m = sa.(0) and k = sa.(1) and n = sb.(1) in
          let a_dtype = (Program.instr prog a).Program.dtype in
          let b_dtype = (Program.instr prog b).Program.dtype in
          if
            st.Pass.mode = Pass.Legacy_mode
            && not (Legacy.Support.supports_dot ~a:a_dtype ~b:b_dtype ~m ~n ~k)
          then
            st.Pass.unsupported <-
              Printf.sprintf "dot %s x %s on %dx%dx%d has no legacy layout"
                (Tensor_lib.Dtype.name a_dtype) (Tensor_lib.Dtype.name b_dtype) m n k
              :: st.Pass.unsupported;
          let out_l, a_l, b_l =
            Pass_util.dot_layouts machine ~num_warps ~m ~n ~k ~a_dtype ~b_dtype
          in
          let opk = Legacy.Support.Mma_input in
          request ~ldmatrix_ok:true ~at:i ~src:a ~dst:a_l ~dst_kind:opk ();
          let b_smem_resident =
            machine.Gpusim.Machine.has_wgmma
            && Pass_util.dot_fits ~m ~n ~k
                 ~a_bits:(Pass_util.mma_bitwidth a_dtype)
                 ~b_bits:(Pass_util.mma_bitwidth b_dtype)
          in
          request ~ldmatrix_ok:true ~smem_resident:b_smem_resident ~at:i ~src:b
            ~dst:b_l ~dst_kind:opk ();
          (Program.instr prog a).Program.layout <- Some a_l;
          (Program.instr prog a).Program.kind <- opk;
          (Program.instr prog b).Program.layout <- Some b_l;
          (Program.instr prog b).Program.kind <- opk;
          set i out_l
            (if
               Pass_util.dot_fits ~m ~n ~k
                 ~a_bits:(Pass_util.mma_bitwidth a_dtype)
                 ~b_bits:(Pass_util.mma_bitwidth b_dtype)
             then Legacy.Support.Mma
             else Legacy.Support.Blocked);
          st.Pass.total.Gpusim.Cost.mma <-
            st.Pass.total.Gpusim.Cost.mma + max 1 (m * n * k / (16 * 8 * 16) / num_warps)
      | Program.Reduce { src; axis } ->
          st.Pass.saw_reduce <- true;
          legacy_normalize src;
          let parent = layout_of src in
          if
            st.Pass.mode = Pass.Legacy_mode
            && not (Legacy.Support.supports_reduction (kind_of src))
          then
            st.Pass.unsupported <-
              Printf.sprintf "reduction over %s layout unsupported"
                (Legacy.Support.kind_name (kind_of src))
              :: st.Pass.unsupported;
          let res =
            Pass_util.rename_dims_above (Sliced.reduction_result parent ~dim:axis) ~axis
              ~delta:(-1)
          in
          set i res (Pass_util.sliced_kind (kind_of src));
          (* In-thread accumulation. *)
          let regs_src = 1 lsl Layout.in_bits parent Dims.register in
          let warps = 1 lsl Layout.in_bits parent Dims.warp in
          st.Pass.total.Gpusim.Cost.alu <- st.Pass.total.Gpusim.Cost.alu + regs_src;
          let axis_comp in_dim =
            List.init (Layout.in_bits parent in_dim) Fun.id
            |> List.filter (fun kbit ->
                   List.assoc_opt (Dims.dim axis) (Layout.basis parent in_dim kbit)
                   |> Option.value ~default:0 <> 0)
            |> List.length
          in
          let lane_rounds = axis_comp Dims.lane and warp_rounds = axis_comp Dims.warp in
          let regs_res = 1 lsl Layout.in_bits res Dims.register in
          (match st.Pass.mode with
          | Pass.Linear ->
              st.Pass.total.Gpusim.Cost.shuffles <-
                st.Pass.total.Gpusim.Cost.shuffles + (lane_rounds * regs_res * warps);
              if warp_rounds > 0 then begin
                st.Pass.local_stores <- st.Pass.local_stores + 1;
                st.Pass.local_loads <- st.Pass.local_loads + 1;
                (* Deduplicated: only distinct elements cross warps. *)
                st.Pass.total.Gpusim.Cost.smem_insts <-
                  st.Pass.total.Gpusim.Cost.smem_insts + (2 * regs_res * warps);
                st.Pass.total.Gpusim.Cost.smem_wavefronts <-
                  st.Pass.total.Gpusim.Cost.smem_wavefronts + (2 * regs_res * warps);
                st.Pass.total.Gpusim.Cost.barriers <- st.Pass.total.Gpusim.Cost.barriers + 1
              end
          | Pass.Legacy_mode ->
              (* Always through shared memory, without broadcast
                 deduplication: every register element is stored. *)
              st.Pass.local_stores <- st.Pass.local_stores + 1;
              st.Pass.local_loads <- st.Pass.local_loads + 1;
              st.Pass.total.Gpusim.Cost.smem_insts <-
                st.Pass.total.Gpusim.Cost.smem_insts + ((regs_src + regs_res) * warps);
              st.Pass.total.Gpusim.Cost.smem_wavefronts <-
                st.Pass.total.Gpusim.Cost.smem_wavefronts + ((regs_src + regs_res) * warps);
              st.Pass.total.Gpusim.Cost.barriers <- st.Pass.total.Gpusim.Cost.barriers + 1)
      | Program.Expand_dims { src; axis } ->
          legacy_normalize src;
          let l = Pass_util.rename_dims_above (layout_of src) ~axis ~delta:1 in
          let l =
            Layout.mul l (Layout.zeros1d 0 ~in_dim:Dims.register ~out_dim:(Dims.dim axis))
          in
          set i l (kind_of src)
      | Program.Broadcast { src } ->
          legacy_normalize src;
          let l = layout_of src in
          set i (Pass_util.broadcast_layout l ~shape) (kind_of src)
      | Program.Trans { src; perm } ->
          legacy_normalize src;
          let l = layout_of src in
          let spec =
            Array.to_list perm
            |> List.mapi (fun out_d in_d -> (Dims.dim in_d, Dims.dim out_d))
            |> List.filter (fun (a, b) -> a <> b)
          in
          set i (if spec = [] then l else Layout.exchange_out_names l spec) (kind_of src)
      | Program.Reshape { src } ->
          legacy_normalize src;
          let l = layout_of src in
          let outs = Array.to_list (Array.mapi (fun d s -> (Dims.dim d, Util.log2 s)) shape) in
          set i (Layout.reshape_outs (Layout.flatten_outs l) outs) (kind_of src)
      | Program.Gather { src; index; axis } ->
          let l = layout_of src in
          request ~at:i ~src:index ~dst:l ~dst_kind:(kind_of src) ();
          set i l (kind_of src);
          let plan =
            match st.Pass.mode with
            | Pass.Linear -> Codegen.Gather.plan l ~axis
            | Pass.Legacy_mode -> Codegen.Gather.Shared_fallback
          in
          (match plan with
          | Codegen.Gather.Shared_fallback ->
              st.Pass.local_stores <- st.Pass.local_stores + 1;
              st.Pass.local_loads <- st.Pass.local_loads + 1
          | Codegen.Gather.Warp_shuffle _ -> ());
          Gpusim.Cost.add st.Pass.total (Codegen.Gather.cost machine l ~axis plan)
      | Program.Join { a; b } ->
          legacy_normalize a;
          let la = layout_of a in
          request ~at:i ~src:b ~dst:la ~dst_kind:(kind_of a) ();
          (* The new trailing dimension of size 2 is selected by a fresh
             lowest register bit, so the joined pair sits in consecutive
             registers. *)
          let new_dim = Array.length shape - 1 in
          let joined =
            Layout.make
              ~ins:
                (List.map
                   (fun (d, bits) ->
                     (d, if d = Dims.register then bits + 1 else bits))
                   (if Layout.has_in_dim la Dims.register then Layout.in_dims la
                    else (Dims.register, 0) :: Layout.in_dims la))
              ~outs:((Dims.dim new_dim, 1) :: Layout.out_dims la)
              ~bases:
                (List.map
                   (fun (d, bits) ->
                     let images = List.init bits (Layout.basis la d) in
                     ( d,
                       if d = Dims.register then [ (Dims.dim new_dim, 1) ] :: images
                       else images ))
                   (if Layout.has_in_dim la Dims.register then Layout.in_dims la
                    else (Dims.register, 0) :: Layout.in_dims la))
          in
          set i joined (kind_of a)
      | Program.Split { src; half = _ } ->
          legacy_normalize src;
          let l = layout_of src in
          let last = Array.length shape in
          let reduced =
            Sliced.compress (Layout.remove_out_dim l (Dims.dim last)) ~in_dim:Dims.register
          in
          set i reduced (kind_of src)
      | Program.Scan { src; axis; reverse } ->
          legacy_normalize src;
          let l = layout_of src in
          (* Scans are layout-preserving: an in-register sequential part,
             a Hillis-Steele warp scan over the lane bits on the axis,
             then partial sums through shared memory across warps.
             Reverse scans relabel indices with the affine flip
             (Section 8) at zero cost in the linear system; legacy
             Triton miscompiled them (the associative_scan reverse=True
             bug cited in Section 5.1). *)
          set i l (kind_of src);
          if st.Pass.mode = Pass.Legacy_mode && reverse then
            st.Pass.unsupported <-
              Printf.sprintf "reverse scan over %s layout miscompiles in legacy Triton"
                (Legacy.Support.kind_name (kind_of src))
              :: st.Pass.unsupported;
          if st.Pass.mode = Pass.Legacy_mode && st.Pass.saw_reduce then
            st.Pass.unsupported <-
              "mixing tl.sum and tl.cumsum in one kernel miscompiles in legacy Triton"
              :: st.Pass.unsupported;
          let axis_comp in_dim =
            List.init (Layout.in_bits l in_dim) Fun.id
            |> List.filter (fun kbit ->
                   List.assoc_opt (Dims.dim axis) (Layout.basis l in_dim kbit)
                   |> Option.value ~default:0 <> 0)
            |> List.length
          in
          let regs = 1 lsl Layout.in_bits l Dims.register in
          let warps = 1 lsl Layout.in_bits l Dims.warp in
          let lane_rounds = axis_comp Dims.lane and warp_rounds = axis_comp Dims.warp in
          st.Pass.total.Gpusim.Cost.alu <- st.Pass.total.Gpusim.Cost.alu + (2 * regs);
          st.Pass.total.Gpusim.Cost.shuffles <-
            st.Pass.total.Gpusim.Cost.shuffles + (lane_rounds * regs * warps);
          if warp_rounds > 0 then begin
            st.Pass.local_stores <- st.Pass.local_stores + 1;
            st.Pass.local_loads <- st.Pass.local_loads + 1;
            st.Pass.total.Gpusim.Cost.smem_insts <-
              st.Pass.total.Gpusim.Cost.smem_insts + (2 * warps);
            st.Pass.total.Gpusim.Cost.smem_wavefronts <-
              st.Pass.total.Gpusim.Cost.smem_wavefronts + (2 * warps);
            st.Pass.total.Gpusim.Cost.barriers <- st.Pass.total.Gpusim.Cost.barriers + 1
          end
      | Program.Convert { src } ->
          (* Explicit conversions carry no target here; keep the source
             layout (the engine inserts its own accounting elsewhere). *)
          set i (layout_of src) (kind_of src))
    (Program.instrs prog)
