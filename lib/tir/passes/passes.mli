(** The pass registry: every engine pass, the default pipeline
    {!Engine.run} executes, and name-based lookup for the CLI. *)

val anchor : Pass.t
val forward_propagate : Pass.t
val simplify : Pass.t
val backward_remat : Pass.t
val insert_conversions : Pass.t
val lower : Pass.t
val analyze : Pass.t
val certify : Pass.t

(** The behaviour-preserving engine pipeline, in execution order:
    [anchor; forward_propagate; simplify; backward_remat;
    insert_conversions; lower]. *)
val default : Pass.t list

(** {!default} plus [analyze] (the verifier + lint sweep) and [certify]
    (translation validation of every materialized conversion plan). *)
val all : Pass.t list

val name : Pass.t -> string
val description : Pass.t -> string

(** Look up a registered pass by name. *)
val find : string -> Pass.t option
