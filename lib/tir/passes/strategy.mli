(** First-class layout-assignment decisions.

    The Section 4.4 engine makes four kinds of choices while walking the
    program: which blocked variant anchors a memory/register
    materialization, which operand layout an elementwise op adopts,
    whether a conversion is replaced by rematerialization, and whether a
    store goes through the producer's layout or the coalesced anchor.
    Each choice point is reified as a {!site} carrying the candidate set
    and the exact estimates the greedy comparison uses; the strategy
    stored in {!Pass.state} commits one candidate index per site (see
    {!Assign_greedy} for the default and {!Assign_search} for the
    beam search over these sites). *)

open Linear_layout

type anchor_site = {
  anchor_at : Program.id;
  anchor_default : Layout.t;
      (** the coalesced blocked default — choice [0], the greedy pick *)
  anchor_alternatives : (Layout.t list * int) Lazy.t;
      (** feasibility-pruned, deduplicated variants (excluding the
          default) paired with the number of candidates pruned; lazy so
          greedy runs never pay for candidate enumeration *)
}

type tie_site = {
  tie_at : Program.id;
  tie_choices : Program.id list;
      (** source ids with pairwise distinct (layout, kind); the head is
          the first source — what greedy propagates *)
}

type remat_site = {
  remat_site_at : Program.id;
  remat_site_src : Program.id;
  chain_estimate : float;
  convert_estimate : float;
}

type store_site = {
  store_site_at : Program.id;
  direct_estimate : float;
  via_anchor_estimate : float;
}

type site =
  | Anchor of anchor_site
  | Elementwise_tie of tie_site
  | Remat_or_convert of remat_site
      (** choice [0] = materialize the conversion, [1] = rematerialize *)
  | Store_direct_or_anchor of store_site
      (** choice [0] = direct store, [1] = convert to the anchor first *)

(** Number of candidates at the site (forces anchor alternatives). *)
val arity : site -> int

val site_at : site -> Program.id
val site_name : site -> string

(** A strategy commits a candidate index in [\[0, arity site)] for each
    site, observed in pipeline order.  It may keep private state across
    the sites of one run, so build a fresh value per engine run. *)
type t = { name : string; choose : site -> int }
