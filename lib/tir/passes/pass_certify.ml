open Linear_layout

let name = "certify"

let description =
  "translation validation: prove every materialized conversion plan implements \
   its claimed F2 map (linear mode)"

(* Certify a list of materialized conversions: one {!Analysis.Transval}
   certificate per plan, with refutations rendered as LL65x diagnostics
   located at the conversion's instruction.  Legacy-mode conversions
   carry no plan ([plan = None]) and are skipped — the padded
   shared-memory baseline is costed, never lowered. *)
let certify_conversions machine (convs : Pass.conversion_info list) =
  let certs =
    List.filter_map
      (fun (c : Pass.conversion_info) ->
        match c.Pass.plan with
        | None -> None
        | Some plan -> Some (c.Pass.at, Analysis.Transval.certify_plan machine plan))
      convs
  in
  let diags =
    List.concat_map
      (fun (at, cert) ->
        Analysis.Transval.diagnostics ~loc:(Diagnostics.Tir_instr at) cert)
      certs
  in
  (certs, diags)

(* Coverage: after [insert_conversions] every surviving request that
   still changes the layout must have been materialized as a conversion
   whose plan matches the request's snapshot layouts — a silently
   dropped request would leave the consumer reading data in the wrong
   distribution with no certificate ever looking at it. *)
let coverage_diags (st : Pass.state) =
  List.filter_map
    (function
      | Pass.Convert (r : Pass.request)
        when not (Layout.equal r.Pass.src_layout r.Pass.dst) ->
          let materialized =
            List.exists
              (fun (c : Pass.conversion_info) ->
                c.Pass.at = r.Pass.at
                &&
                match c.Pass.plan with
                | Some p ->
                    Layout.equal p.Codegen.Conversion.src r.Pass.src_layout
                    && Layout.equal p.Codegen.Conversion.dst r.Pass.dst
                | None -> true)
              st.Pass.convs
          in
          if materialized then None
          else
            Some
              (Diagnostics.error ~code:"LL623" ~loc:(Diagnostics.Tir_instr r.Pass.at)
                 "conversion request for %%%d was never materialized: the consumer reads \
                  the value in an unconverted distribution"
                 r.Pass.src)
      | _ -> None)
    st.Pass.pending

let certs_of (st : Pass.state) =
  let certs, diags = certify_conversions st.Pass.machine (List.rev st.Pass.convs) in
  (certs, diags @ coverage_diags st)

let run (st : Pass.state) =
  match st.Pass.mode with
  | Pass.Legacy_mode -> ()
  | Pass.Linear ->
      let _, diags = certs_of st in
      st.Pass.diags <- st.Pass.diags @ diags
