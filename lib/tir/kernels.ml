open Tensor_lib

type kernel = {
  name : string;
  sizes : int list;
  build : size:int -> Program.t;
  trip : size:int -> int;
  needs_wgmma : bool;
  needs_large_smem : bool;
}

let k_tile = 64

(* A tile of a GEMM: load an [tile_m x k_tile] A tile and a
   [k_tile x tile_n] B tile, multiply, add into the accumulator. *)
let gemm_tile p ~tile_m ~tile_n ~a_dtype ~b_dtype =
  let a = Program.load p ~name:"a" ~shape:[| tile_m; k_tile |] ~dtype:a_dtype () in
  let b = Program.load p ~name:"b" ~shape:[| k_tile; tile_n |] ~dtype:b_dtype () in
  Program.dot p ~a ~b ~acc:Dtype.F32

let softmax_tile p x =
  let mx = Program.reduce p x ~axis:1 in
  let shape = (Program.instr p x).Program.shape in
  let mx = Program.expand_dims p mx ~axis:1 in
  let mx = Program.broadcast p mx ~shape in
  let centered = Program.elementwise p ~name:"sub" [ x; mx ] in
  let e = Program.elementwise p ~name:"exp" [ centered ] in
  let s = Program.reduce p e ~axis:1 in
  let s = Program.expand_dims p s ~axis:1 in
  let s = Program.broadcast p s ~shape in
  Program.elementwise p ~name:"div" [ e; s ]

let simple name ?(sizes = [ 1024; 2048; 4096; 8192 ]) ?(trip = fun ~size -> size / 64)
    ?(needs_wgmma = false) ?(needs_large_smem = false) build =
  { name; sizes; build; trip; needs_wgmma; needs_large_smem }

let gemm_like name ~a_dtype ~b_dtype ?(pre_b = fun _ b -> b) () =
  simple name ~sizes:[ 512; 1024; 2048; 4096 ]
    ~trip:(fun ~size -> size / k_tile)
    (fun ~size ->
      let tile_n = min 128 (max 32 (size / 16)) in
      let p = Program.create () in
      let a = Program.load p ~name:"a" ~shape:[| 128; k_tile |] ~dtype:a_dtype () in
      let b0 = Program.load p ~name:"b" ~shape:[| k_tile; tile_n |] ~dtype:b_dtype () in
      let b = pre_b p b0 in
      let d = Program.dot p ~a ~b ~acc:Dtype.F32 in
      ignore (Program.store p d);
      p)

let attention name ~extra_score_ops =
  simple name ~sizes:[ 1024; 2048; 4096 ]
    ~trip:(fun ~size -> size / 64)
    ~needs_large_smem:(name = "flex_attention")
    (fun ~size ->
      let seq = min 128 (max 32 (size / 32)) in
      let p = Program.create () in
      let q = Program.load p ~name:"q" ~shape:[| 64; 64 |] ~dtype:Dtype.F16 () in
      let kt = Program.load p ~name:"k" ~shape:[| 64; seq |] ~dtype:Dtype.F16 () in
      let scores = Program.dot p ~a:q ~b:kt ~acc:Dtype.F32 in
      (* Score modifiers use position indices (tl.arange), the classic
         rematerialization target: computed in whatever layout the
         scores carry, never converted. *)
      let pos = Program.iota p ~shape:[| 64; seq |] ~axis:1 in
      let posf = Program.elementwise p ~name:"cast" [ pos ] in
      let scores = ref (Program.elementwise p ~name:"mask" [ scores; posf ]) in
      for _ = 2 to extra_score_ops do
        scores := Program.elementwise p ~name:"mod" [ !scores ]
      done;
      let probs = softmax_tile p !scores in
      let probs16 = Program.elementwise p ~name:"cast" [ probs ] in
      let v = Program.load p ~name:"v" ~shape:[| seq; 64 |] ~dtype:Dtype.F16 () in
      let out = Program.dot p ~a:probs16 ~b:v ~acc:Dtype.F32 in
      ignore (Program.store p out);
      p)

let reduction_kernel name ~extra_passes =
  simple name ~sizes:[ 1024; 2048; 4096; 8192 ]
    ~trip:(fun ~size -> size / 1024)
    (fun ~size ->
      let cols = min 2048 (max 256 (size / 4)) in
      let p = Program.create () in
      let x = Program.load p ~name:"x" ~shape:[| 32; cols |] ~dtype:Dtype.F32 () in
      let shape = [| 32; cols |] in
      let acc = ref x in
      for _ = 1 to extra_passes do
        let m = Program.reduce p !acc ~axis:1 in
        let m = Program.expand_dims p m ~axis:1 in
        let m = Program.broadcast p m ~shape in
        acc := Program.elementwise p ~name:"norm" [ !acc; m ]
      done;
      ignore (Program.store p !acc);
      p)

let elementwise_kernel name ~inputs ~ops =
  simple name
    ~trip:(fun ~size -> size / 1024)
    (fun ~size ->
      let cols = min 2048 (max 256 (size / 4)) in
      let p = Program.create () in
      let xs =
        List.init inputs (fun j ->
            Program.load p
              ~name:(Printf.sprintf "x%d" j)
              ~shape:[| 64; cols |] ~dtype:Dtype.F16 ())
      in
      (* A register-computed mask mixes in, as dropout kernels do. *)
      let mask = Program.iota p ~shape:[| 64; cols |] ~axis:1 in
      let maskf = Program.elementwise p ~name:"cast" [ mask ] in
      let xs = xs @ [ maskf ] in
      let v = ref (Program.elementwise p ~name:"op0" xs) in
      for j = 1 to ops - 1 do
        v := Program.elementwise p ~name:(Printf.sprintf "op%d" j) [ !v ]
      done;
      ignore (Program.store p !v);
      p)

let all =
  [
    gemm_like "gemm" ~a_dtype:Dtype.F16 ~b_dtype:Dtype.F16 ();
    gemm_like "bf16xint16_gemm" ~a_dtype:Dtype.BF16 ~b_dtype:Dtype.I16
      ~pre_b:(fun p b -> Program.elementwise p ~name:"upcast" [ b ])
      ();
    gemm_like "int4_gemm" ~a_dtype:Dtype.F16 ~b_dtype:Dtype.I8
      ~pre_b:(fun p b ->
        let unpacked = Program.elementwise p ~name:"unpack" [ b ] in
        Program.elementwise p ~name:"scale" [ unpacked ])
      ();
    gemm_like "fp8_gemm" ~a_dtype:Dtype.F8E4M3 ~b_dtype:Dtype.F8E4M3 ();
    simple "grouped_gemm" ~sizes:[ 512; 1024; 2048; 4096 ]
      ~trip:(fun ~size -> 2 * size / k_tile)
      (fun ~size ->
        ignore size;
        let p = Program.create () in
        let d1 = gemm_tile p ~tile_m:128 ~tile_n:64 ~a_dtype:Dtype.F16 ~b_dtype:Dtype.F16 in
        let d2 = gemm_tile p ~tile_m:128 ~tile_n:64 ~a_dtype:Dtype.F16 ~b_dtype:Dtype.F16 in
        ignore (Program.store p d1);
        ignore (Program.store p d2);
        p);
    simple "addmm" ~sizes:[ 512; 1024; 2048; 4096 ]
      ~trip:(fun ~size -> size / k_tile)
      (fun ~size ->
        ignore size;
        let p = Program.create () in
        let d = gemm_tile p ~tile_m:128 ~tile_n:128 ~a_dtype:Dtype.F16 ~b_dtype:Dtype.F16 in
        let c = Program.load p ~name:"c" ~shape:[| 128; 128 |] ~dtype:Dtype.F32 () in
        let s = Program.elementwise p ~name:"add" [ d; c ] in
        ignore (Program.store p s);
        p);
    simple "bmm" ~sizes:[ 256; 512; 1024; 2048 ]
      ~trip:(fun ~size -> 4 * size / k_tile)
      (fun ~size ->
        ignore size;
        let p = Program.create () in
        let d = gemm_tile p ~tile_m:64 ~tile_n:64 ~a_dtype:Dtype.F16 ~b_dtype:Dtype.F16 in
        ignore (Program.store p d);
        p);
    attention "template_attention" ~extra_score_ops:1;
    attention "flex_attention" ~extra_score_ops:3;
    simple "attention_bwd" ~sizes:[ 1024; 2048; 4096; 8192 ]
      ~trip:(fun ~size -> size / 64)
      (fun ~size ->
        (* dV = P^T @ dO: the probabilities carry an MMA layout, and the
           transpose of an MMA layout is not a legacy layout — legacy
           must round-trip through shared memory before it can even
           express the operand (Section 4.4). *)
        let seq = min 128 (max 32 (size / 32)) in
        let p = Program.create () in
        let q = Program.load p ~name:"q" ~shape:[| 64; 64 |] ~dtype:Dtype.F16 () in
        let kt = Program.load p ~name:"k" ~shape:[| 64; seq |] ~dtype:Dtype.F16 () in
        let scores = Program.dot p ~a:q ~b:kt ~acc:Dtype.F32 in
        let probs = softmax_tile p scores in
        let pt = Program.trans p probs ~perm:[| 1; 0 |] in
        let pt16 = Program.elementwise p ~name:"cast" [ pt ] in
        let d_o = Program.load p ~name:"do" ~shape:[| 64; 64 |] ~dtype:Dtype.F16 () in
        let dv = Program.dot p ~a:pt16 ~b:d_o ~acc:Dtype.F32 in
        ignore (Program.store p dv);
        p);
    simple "welford" ~sizes:[ 1024; 2048; 4096; 8192 ]
      ~trip:(fun ~size -> size / 1024)
      (fun ~size ->
        (* Running mean/variance: the conversions between the sliced
           mean and the blocked input are between *equivalent* layouts;
           linear layouts fold them to no-ops (Section 6.2). *)
        let p = Program.create () in
        let cols = min 2048 (max 256 (size / 4)) in
        let x = Program.load p ~name:"x" ~shape:[| 32; cols |] ~dtype:Dtype.F32 () in
        let shape = [| 32; cols |] in
        let mean = Program.reduce p x ~axis:1 in
        let mean_b = Program.broadcast p (Program.expand_dims p mean ~axis:1) ~shape in
        let delta = Program.elementwise p ~name:"sub" [ x; mean_b ] in
        let sq = Program.elementwise p ~name:"mul" [ delta; delta ] in
        let var = Program.reduce p sq ~axis:1 in
        let var_b = Program.broadcast p (Program.expand_dims p var ~axis:1) ~shape in
        let out = Program.elementwise p ~name:"scale" [ delta; var_b ] in
        ignore (Program.store p out);
        p);
    simple "gather_gemv" ~sizes:[ 1024; 2048; 4096; 8192 ]
      ~trip:(fun ~size -> size / 256)
      (fun ~size ->
        ignore size;
        let p = Program.create () in
        let w = Program.load p ~name:"w" ~shape:[| 16; 1024 |] ~dtype:Dtype.F16 () in
        let idx = Program.load p ~name:"idx" ~shape:[| 16; 1024 |] ~dtype:Dtype.I32 () in
        let g = Program.gather p ~src:w ~index:idx ~axis:0 in
        let x = Program.load p ~name:"x" ~shape:[| 16; 1024 |] ~dtype:Dtype.F16 () in
        let prod = Program.elementwise p ~name:"mul" [ g; x ] in
        let s = Program.reduce p prod ~axis:1 in
        ignore (Program.store p s);
        p);
    simple "rope" ~sizes:[ 1024; 2048; 4096; 8192 ]
      ~trip:(fun ~size -> size / 1024)
      (fun ~size ->
        ignore size;
        let p = Program.create () in
        let x = Program.load p ~name:"x" ~shape:[| 64; 128 |] ~dtype:Dtype.F16 () in
        let cos = Program.load p ~name:"cos" ~shape:[| 64; 128 |] ~dtype:Dtype.F16 () in
        (* Rotate halves: model as a reshape + transpose round trip. *)
        let r = Program.reshape p x ~shape:[| 64; 2; 64 |] in
        let t = Program.trans p r ~perm:[| 0; 2; 1 |] in
        let back = Program.reshape p t ~shape:[| 64; 128 |] in
        let rot = Program.elementwise p ~name:"rotate" [ back; cos ] in
        ignore (Program.store p rot);
        p);
    simple "embedding" ~sizes:[ 1024; 2048; 4096; 8192 ]
      ~trip:(fun ~size -> size / 1024)
      (fun ~size ->
        ignore size;
        let p = Program.create () in
        (* Rows gathered within a warp: lanes and warps live on the
           feature dimension, so the linear path uses warp shuffles. *)
        let table = Program.load p ~name:"table" ~shape:[| 16; 2048 |] ~dtype:Dtype.F16 () in
        let idx = Program.load p ~name:"idx" ~shape:[| 16; 2048 |] ~dtype:Dtype.I32 () in
        let g = Program.gather p ~src:table ~index:idx ~axis:0 in
        ignore (Program.store p g);
        p);
    reduction_kernel "softmax" ~extra_passes:2;
    reduction_kernel "layer_norm" ~extra_passes:2;
    reduction_kernel "rms_norm" ~extra_passes:1;
    simple "cross_entropy" ~sizes:[ 512; 1024; 2048; 4096 ]
      ~trip:(fun ~size -> size / 1024)
      (fun ~size ->
        ignore size;
        let p = Program.create () in
        let x = Program.load p ~name:"logits" ~shape:[| 32; 1024 |] ~dtype:Dtype.F32 () in
        let probs = softmax_tile p x in
        let lp = Program.elementwise p ~name:"log" [ probs ] in
        let loss = Program.reduce p lp ~axis:1 in
        ignore (Program.store p loss);
        p);
    simple "fused_linear_cross_entropy" ~sizes:[ 1024; 2048 ] ~needs_large_smem:true
      ~trip:(fun ~size -> size / k_tile)
      (fun ~size ->
        ignore size;
        let p = Program.create () in
        let d = gemm_tile p ~tile_m:32 ~tile_n:1024 ~a_dtype:Dtype.F16 ~b_dtype:Dtype.F16 in
        let probs = softmax_tile p d in
        let lp = Program.elementwise p ~name:"log" [ probs ] in
        let loss = Program.reduce p lp ~axis:1 in
        ignore (Program.store p loss);
        p);
    simple "cumsum" ~sizes:[ 1024; 2048; 4096; 8192 ]
      ~trip:(fun ~size -> size / 1024)
      (fun ~size ->
        let cols = min 2048 (max 256 (size / 4)) in
        let p = Program.create () in
        let x = Program.load p ~name:"x" ~shape:[| 32; cols |] ~dtype:Dtype.F32 () in
        let s = Program.scan p x ~axis:1 ~reverse:false in
        ignore (Program.store p s);
        p);
    simple "jagged_sum" ~sizes:[ 1024; 2048; 4096 ]
      ~trip:(fun ~size -> size / 1024)
      (fun ~size ->
        (* A reverse cumulative scan feeding a reduction: the op mix the
           legacy scan bugs bit on (Section 5.1's cited issues). *)
        let cols = min 2048 (max 256 (size / 4)) in
        let p = Program.create () in
        let x = Program.load p ~name:"x" ~shape:[| 32; cols |] ~dtype:Dtype.F32 () in
        let r = Program.reduce p x ~axis:1 in
        let rb = Program.broadcast p (Program.expand_dims p r ~axis:1) ~shape:[| 32; cols |] in
        let scaled = Program.elementwise p ~name:"div" [ x; rb ] in
        let s = Program.scan p scaled ~axis:1 ~reverse:true in
        ignore (Program.store p s);
        p);
    simple "softmax_bwd" ~sizes:[ 1024; 2048; 4096 ]
      ~trip:(fun ~size -> size / 1024)
      (fun ~size ->
        (* dx = p * (dy - sum(p * dy)): two elementwise products around
           a reduction, all in one layout. *)
        let cols = min 2048 (max 256 (size / 4)) in
        let p = Program.create () in
        let probs = Program.load p ~name:"p" ~shape:[| 32; cols |] ~dtype:Dtype.F32 () in
        let dy = Program.load p ~name:"dy" ~shape:[| 32; cols |] ~dtype:Dtype.F32 () in
        let pdy = Program.elementwise p ~name:"mul" [ probs; dy ] in
        let s = Program.reduce p pdy ~axis:1 in
        let sb =
          Program.broadcast p (Program.expand_dims p s ~axis:1) ~shape:[| 32; cols |]
        in
        let centered = Program.elementwise p ~name:"sub" [ dy; sb ] in
        let dx = Program.elementwise p ~name:"mul" [ probs; centered ] in
        ignore (Program.store p dx);
        p);
    simple "jagged_mean" ~sizes:[ 1024; 2048; 4096 ]
      ~trip:(fun ~size -> size / 1024)
      (fun ~size ->
        (* Gather variable-length rows then average them: gather +
           reduce + broadcast-divide. *)
        let cols = min 1024 (max 256 (size / 4)) in
        let p = Program.create () in
        let values = Program.load p ~name:"v" ~shape:[| 16; cols |] ~dtype:Dtype.F32 () in
        let idx = Program.load p ~name:"offsets" ~shape:[| 16; cols |] ~dtype:Dtype.I32 () in
        let g = Program.gather p ~src:values ~index:idx ~axis:0 in
        let s = Program.reduce p g ~axis:1 in
        let sb =
          Program.broadcast p (Program.expand_dims p s ~axis:1) ~shape:[| 16; cols |]
        in
        let out = Program.elementwise p ~name:"div" [ g; sb ] in
        ignore (Program.store p out);
        p);
    elementwise_kernel "low_mem_dropout" ~inputs:1 ~ops:2;
    elementwise_kernel "swiglu" ~inputs:2 ~ops:3;
    elementwise_kernel "geglu" ~inputs:2 ~ops:4;
    elementwise_kernel "vector_add" ~inputs:2 ~ops:1;
  ]

let find name =
  match List.find_opt (fun k -> k.name = name) all with
  | Some k -> k
  | None -> invalid_arg ("Kernels.find: unknown kernel " ^ name)
