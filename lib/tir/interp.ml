open Tensor_lib

type outputs = (Program.id * Tensor.t) list

(* {1 Shared operator semantics}

   The specific functions are stand-ins (the IR only carries names);
   what matters is that both evaluators use exactly the same table. *)

let unary_fn = function
  | "exp" -> fun x -> Float.exp (Float.min x 20.)
  | "log" -> fun x -> Float.log (Float.abs x +. 1.)
  | "cast" | "upcast" -> Fun.id
  | _ -> fun x -> (0.5 *. x) +. 0.25

let binary_fn = function
  | "add" -> ( +. )
  | "sub" | "norm" -> ( -. )
  | "mul" -> ( *. )
  | "div" | "scale" -> fun a b -> a /. (Float.abs b +. 1.)
  | _ -> fun a b -> (0.5 *. a) +. (0.25 *. b)

let apply_ew ~name ~dtype args out_shape =
  let f =
    match args with
    | [ x ] -> fun i -> unary_fn name x.Tensor.data.(i)
    | [ a; b ] -> fun i -> binary_fn name a.Tensor.data.(i) b.Tensor.data.(i)
    | x :: rest ->
        fun i ->
          List.fold_left
            (fun acc t -> binary_fn name acc t.Tensor.data.(i))
            x.Tensor.data.(i) rest
    | [] -> invalid_arg "Interp: elementwise without sources"
  in
  {
    Tensor.dtype;
    shape = out_shape;
    data = Array.init (Array.fold_left ( * ) 1 out_shape) (fun i -> Dtype.quantize dtype (f i));
  }

(* Matrix multiplication with the exact quantization order of the
   layout-level path: quantize the product to f32, then the running sum
   to f32. *)
let qf32 = Dtype.quantize Dtype.F32

let dot_ref a b =
  match (a.Tensor.shape, b.Tensor.shape) with
  | [| m; k |], [| k'; n |] when k = k' ->
      let out = Tensor.create Dtype.F32 [| m; n |] in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          let s = ref 0. in
          for l = 0 to k - 1 do
            s := qf32 (!s +. qf32 (a.Tensor.data.((i * k) + l) *. b.Tensor.data.((l * n) + j)))
          done;
          out.Tensor.data.((i * n) + j) <- !s
        done
      done;
      out
  | _ -> invalid_arg "Interp: dot shapes"

(* {1 Evaluation core} *)

let input_for inputs name shape dtype =
  match List.assoc_opt name inputs with
  | Some t ->
      if t.Tensor.shape <> shape then failwith ("Interp: input shape mismatch for " ^ name);
      Tensor.astype t dtype
  | None -> failwith ("Interp: missing input " ^ name)

let eval ~dot ~gather ~checkpoint prog ~inputs =
  let values = Array.make (Program.length prog) None in
  let value i = Option.get values.(i) in
  let outs = ref [] in
  Array.iteri
    (fun i (ins : Program.instr) ->
      let shape = ins.Program.shape and dtype = ins.Program.dtype in
      let v =
        match ins.Program.node with
        | Program.Load { name } -> input_for inputs name shape dtype
        | Program.Iota { axis } ->
            Tensor.init dtype shape ~f:(fun c -> Float.of_int c.(axis))
        | Program.Full { value } -> Tensor.init dtype shape ~f:(fun _ -> value)
        | Program.Store { src } ->
            let t = value src in
            outs := (i, t) :: !outs;
            t
        | Program.Elementwise { name; srcs } ->
            apply_ew ~name ~dtype (List.map value srcs) shape
        | Program.Dot { a; b } -> dot i (value a) (value b)
        | Program.Reduce { src; axis } -> Tensor.reduce_sum (value src) ~axis
        | Program.Expand_dims { src; axis } -> Tensor.expand_dims (value src) ~axis
        | Program.Broadcast { src } -> Tensor.broadcast_to (value src) ~shape
        | Program.Trans { src; perm } -> Tensor.transpose_perm (value src) ~perm
        | Program.Reshape { src } -> Tensor.reshape (value src) ~shape
        | Program.Gather { src; index; axis } -> gather i (value src) (value index) ~axis
        | Program.Join { a; b } -> Tensor.join (value a) (value b)
        | Program.Split { src; half } -> Tensor.split (value src) ~half
        | Program.Scan { src; axis; reverse } -> Tensor.cumsum (value src) ~axis ~reverse
        | Program.Convert { src } -> value src
      in
      let v = checkpoint i v in
      values.(i) <- Some v)
    (Program.instrs prog);
  List.rev !outs

let reference prog ~inputs =
  eval prog ~inputs
    ~dot:(fun _ a b -> dot_ref a b)
    ~gather:(fun _ src index ~axis -> Tensor.gather src ~index ~axis)
    ~checkpoint:(fun _ v -> v)

(* {1 Layout-aware evaluation} *)

let to_dist layout (t : Tensor.t) =
  Gpusim.Dist.init layout ~f:(fun logical -> Dtype.encode t.Tensor.dtype t.Tensor.data.(logical))

let of_dist (d : Gpusim.Dist.t) ~shape ~dtype =
  match Gpusim.Dist.to_logical d with
  | Error e -> failwith ("Interp: inconsistent layout value: " ^ e)
  | Ok data -> { Tensor.dtype; shape; data = Array.map (Dtype.decode dtype) data }

let through_layouts machine ?(num_warps = 4) prog ~inputs =
  ignore (Engine.run machine ~mode:Engine.Linear ~num_warps prog);
  let layout_of i =
    match (Program.instr prog i).Program.layout with
    | Some l -> l
    | None -> failwith "Interp: engine left an instruction without a layout"
  in
  let checkpoint i (t : Tensor.t) =
    (* Round-trip through the assigned layout: verifies coverage and
       broadcast consistency at every step. *)
    of_dist (to_dist (layout_of i) t) ~shape:t.Tensor.shape ~dtype:t.Tensor.dtype
  in
  let dot i a b =
    let prog_i = Program.instr prog i in
    let out_layout = Option.get prog_i.Program.layout in
    let a_id, b_id =
      match prog_i.Program.node with
      | Program.Dot { a; b } -> (a, b)
      | _ -> assert false
    in
    let la = layout_of a_id and lb = layout_of b_id in
    let tensor_core =
      Codegen.Mma_lower.check_ownership ~out:out_layout ~lhs:la ~rhs:lb = Ok ()
    in
    if not tensor_core then dot_ref a b
    else begin
      let da = to_dist la a and db = to_dist lb b in
      let mul x y =
        Dtype.encode Dtype.F32
          (qf32 (Dtype.decode a.Tensor.dtype x *. Dtype.decode b.Tensor.dtype y))
      in
      let add x y =
        Dtype.encode Dtype.F32 (qf32 (Dtype.decode Dtype.F32 x +. Dtype.decode Dtype.F32 y))
      in
      let c =
        Codegen.Mma_lower.execute_dot ~out:out_layout da db ~mul ~add
          ~zero:(Dtype.encode Dtype.F32 0.)
      in
      of_dist c ~shape:prog_i.Program.shape ~dtype:Dtype.F32
    end
  in
  let gather i src index ~axis =
    let prog_i = Program.instr prog i in
    let src_id, idx_id =
      match prog_i.Program.node with
      | Program.Gather { src; index; axis = _ } -> (src, index)
      | _ -> assert false
    in
    let l = layout_of src_id in
    let d_src = to_dist l src in
    (* The engine forces the index into the source's layout. *)
    let d_idx =
      to_dist l { index with Tensor.dtype = (Program.instr prog idx_id).Program.dtype }
    in
    let out = Codegen.Gather.execute ~src:d_src ~index:d_idx ~axis in
    of_dist out ~shape:prog_i.Program.shape ~dtype:prog_i.Program.dtype
  in
  eval prog ~inputs ~dot ~gather ~checkpoint

let synth_inputs prog =
  Array.to_list (Program.instrs prog)
  |> List.filter_map (fun (ins : Program.instr) ->
         match ins.Program.node with
         | Program.Load { name } ->
             let seed = Hashtbl.hash name land 0xffff in
             Some
               ( name,
                 Tensor.init ins.Program.dtype ins.Program.shape ~f:(fun c ->
                     let h =
                       Array.fold_left (fun acc x -> (acc * 31) + x) seed c land 1023
                     in
                     if Dtype.is_int ins.Program.dtype then Float.of_int (h land 15)
                     else (Float.of_int h /. 256.) -. 2.) )
         | _ -> None)
