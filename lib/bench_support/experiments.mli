(** Reproductions of every table and figure in the paper's evaluation
    (Section 6), driven by the cost model of {!Gpusim} — see
    EXPERIMENTS.md for the paper-vs-measured record.

    Each function prints its table/figure and returns the underlying
    data so tests can assert the qualitative shape (who wins, by
    roughly what factor, where crossovers fall). *)

(** Table 1: the bit-level mapping of Layout A (Figure 1a). Returns the
    [(location, (register, thread, warp))] rows. *)
val table1 : unit -> ((int * int) * (int * int * int)) list

(** Table 2: the simulated hardware platforms. *)
val table2 : unit -> Gpusim.Machine.t list

(** Figure 2: f8 transpose — speedup of the optimal swizzle over the
    padding heuristic across tensor shapes. Returns
    [(label, speedup)]. *)
val figure2 : unit -> (string * float) list

(** Table 3: load/store instruction and bitwidth comparison across
    shapes and dtypes. Returns rows
    [(shape_label, legacy_inst, linear_inst, legacy_bits, linear_bits)]. *)
val table3 : unit -> (string * string * string * int * int) list

(** Table 4: reduction support and shared-memory instruction counts per
    layout family. Returns
    [(kind, legacy_pass, total, legacy_smem, linear_smem)]. *)
val table4 : unit -> (string * int * int * int option * int) list

(** Table 5: mixed-precision matmul pass rates per dtype pair. Returns
    [(pair_label, legacy_pass, linear_pass, total)]. *)
val table5 : unit -> (string * int * int * int) list

(** Figure 6: MXFP4 matmul speedups (data-shuffling optimization). *)
val figure6 : unit -> (string * float) list

(** Figure 7: layout conversion via warp shuffles vs shared memory. *)
val figure7 : unit -> (string * float) list

(** Figure 8: gather via warp shuffles vs shared memory. *)
val figure8 : unit -> (string * float) list

(** Figure 9: kernel-level speedups on the three platforms. Returns
    [(machine, kernel, size, speedup)] for every case. *)
val figure9 : unit -> (string * string * int * float) list

(** Table 6: distribution of local_load / local_store / convert_layout
    ops per kernel (linear engine, GH200). Returns
    [(kernel, loads, stores, converts)]. *)
val table6 : unit -> (string * int * int * int) list

(** Ablations: swizzling strategies (unswizzled / padded / Def 4.11 /
    optimal) and the effect of the vectorization cap. *)
val ablation_swizzle : unit -> (string * float) list

val ablation_vector_cap : unit -> (string * float) list
val run_ablations : unit -> unit

(** Supplementary: per-kernel autotuning gains over the 4-warp default. *)
val extra_autotune : unit -> (string * float) list

val run_all : unit -> unit
